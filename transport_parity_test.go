package anonlead

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// TestTransportParity is the PR's acceptance criterion: for the same seed,
// every real backend — including TCP sockets over localhost — must elect
// the same leader in the same number of rounds with the same cost metrics
// as the in-memory simulator, for a baseline (floodmax) and both
// round-bounded paper protocols (ire, walknotify).
func TestTransportParity(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up full TCP clusters")
	}
	nets := map[string]func(t *testing.T) *Network{
		"cycle16": func(t *testing.T) *Network { return mustNetwork(t, "cycle", 16, 0) },
		"rr16d4":  func(t *testing.T) *Network { return mustNetwork(t, "regular4", 16, 7) },
	}
	for nname, mk := range nets {
		for _, protocol := range []string{ProtoFloodMax, ProtoIRE, ProtoWalkNotify} {
			nw := mk(t)
			const seed = 12345
			want, err := nw.Run(context.Background(), protocol, WithSeed(seed))
			if err != nil {
				t.Fatalf("%s/%s sim: %v", nname, protocol, err)
			}
			for _, backend := range []Transport{TransportChan, TransportPipe, TransportTCP} {
				t.Run(nname+"/"+protocol+"/"+backend.String(), func(t *testing.T) {
					got, err := nw.Run(context.Background(), protocol,
						WithSeed(seed), WithTransport(backend))
					if err != nil {
						t.Fatalf("%s backend: %v", backend, err)
					}
					if got.LeaderID != want.LeaderID {
						t.Errorf("leader: %s elected %d, sim elected %d", backend, got.LeaderID, want.LeaderID)
					}
					if !reflect.DeepEqual(got.Leaders, want.Leaders) {
						t.Errorf("leader set: %s %v, sim %v", backend, got.Leaders, want.Leaders)
					}
					if got.Rounds != want.Rounds {
						t.Errorf("rounds: %s %d, sim %d", backend, got.Rounds, want.Rounds)
					}
					if !reflect.DeepEqual(got.Metrics, want.Metrics) {
						t.Errorf("metrics diverge:\n  %s: %+v\n  sim: %+v", backend, got.Metrics, want.Metrics)
					}
				})
			}
		}
	}
}

// TestTransportRevocableConvergence runs the open-ended revocable protocol
// on every real backend, exercising RunUntilContext's convergence-check
// path through real transports (including TCP framing of the revocation
// certificates).
func TestTransportRevocableConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("long revocable run")
	}
	nw := mustNetwork(t, "complete", 4, 1)
	const seed = 2
	iso := nw.Stats().Isoperimetric
	want, err := nw.Run(context.Background(), ProtoRevocable, WithSeed(seed), WithIsoperimetric(iso))
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	for _, backend := range []Transport{TransportChan, TransportPipe, TransportTCP} {
		t.Run(backend.String(), func(t *testing.T) {
			got, err := nw.Run(context.Background(), ProtoRevocable,
				WithSeed(seed), WithIsoperimetric(iso), WithTransport(backend))
			if err != nil {
				t.Fatalf("%s backend: %v", backend, err)
			}
			if got.Rounds != want.Rounds || got.LeaderID != want.LeaderID {
				t.Fatalf("revocable diverges: %s (leader %d, %d rounds) vs sim (leader %d, %d rounds)",
					backend, got.LeaderID, got.Rounds, want.LeaderID, want.Rounds)
			}
			if want.Certificate == nil || got.Certificate == nil || *got.Certificate != *want.Certificate {
				t.Fatalf("certificates diverge: %s %+v vs sim %+v", backend, got.Certificate, want.Certificate)
			}
		})
	}
}

// TestTransportRejectsAdversary pins the guard: transport-level runs have
// no router, so simulated adversaries are an explicit configuration error
// rather than a silent no-op.
func TestTransportRejectsAdversary(t *testing.T) {
	nw := mustNetwork(t, "cycle", 8, 0)
	_, err := nw.Run(context.Background(), ProtoFloodMax,
		WithTransport(TransportChan), WithAdversary(AdversarySpec{Loss: 0.1}))
	if err == nil || !strings.Contains(err.Error(), "WithAdversary requires TransportSim") {
		t.Fatalf("got %v, want the WithAdversary/TransportSim error", err)
	}
}

func mustNetwork(t *testing.T, family string, n int, seed uint64) *Network {
	t.Helper()
	nw, err := NewNetwork(family, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}
