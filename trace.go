package anonlead

import "anonlead/internal/trace"

// TraceEvent is one protocol event streamed to a WithTrace recorder: the
// protocols annotate decision points (e.g. the ire protocol's "candidate"
// and "leader" events, the revocable protocol's "choose") so runs can be
// debugged and asserted on without widening any protocol API. Tracing is
// observation-only: nothing a recorder does flows back into the election.
type TraceEvent struct {
	// Round is the synchronous round of the event (-1 for events emitted
	// during node initialization).
	Round int
	// Node is the emitting node's index — simulation-side observability;
	// the anonymous protocols themselves never see indices.
	Node int
	// Kind groups events for counting and filtering (e.g. "candidate",
	// "leader", "choose").
	Kind string
	// Detail is free-form context.
	Detail string
}

// TraceRecorder receives protocol trace events. Implementations must be
// safe for concurrent RecordTrace calls: the parallel schedulers emit
// from worker goroutines.
type TraceRecorder interface {
	RecordTrace(TraceEvent)
}

// TraceFunc adapts a function to a TraceRecorder. The function must be
// safe for concurrent calls.
type TraceFunc func(TraceEvent)

// RecordTrace implements TraceRecorder.
func (f TraceFunc) RecordTrace(e TraceEvent) { f(e) }

// traceAdapter bridges a public TraceRecorder onto the internal
// trace.Recorder interface the simulator consumes.
type traceAdapter struct{ r TraceRecorder }

func (a traceAdapter) Record(e trace.Event) {
	a.r.RecordTrace(TraceEvent{Round: e.Round, Node: e.Node, Kind: e.Kind, Detail: e.Detail})
}
