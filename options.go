package anonlead

import "math"

// options aggregates all election tunables; zero values select the
// defaults documented on the With* constructors.
type options struct {
	seed          uint64
	parallel      bool
	constant      float64
	walks         int
	walkFactor    float64
	mixingTime    int
	conductance   float64
	epsilon       float64
	xi            float64
	isoperimetric float64
	fMult         float64
	rMult         float64
	maxRounds     int
}

// Option customizes an election. Options are applied in order; later
// options win.
type Option func(*options)

func buildOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithSeed fixes the root random seed. Elections are deterministic in the
// seed; distinct seeds give independent elections. Default 0.
func WithSeed(seed uint64) Option {
	return func(o *options) { o.seed = seed }
}

// WithParallel runs node steps on a goroutine worker pool. Results are
// bit-identical to the sequential scheduler.
func WithParallel(parallel bool) Option {
	return func(o *options) { o.parallel = parallel }
}

// WithConstant sets the analysis constant c scaling candidate rate, walk
// length and broadcast length in Elect (paper Section 4, "sufficiently
// large c"). Default 2.
func WithConstant(c float64) Option {
	return func(o *options) { o.constant = c }
}

// WithWalks overrides the number x of random walks per candidate in Elect.
// Default: the paper's x = √(n·log n/(Φ·tmix)).
func WithWalks(x int) Option {
	return func(o *options) { o.walks = x }
}

// WithWalkFactor scales the automatic walk count (ignored after
// WithWalks). Default 1.
func WithWalkFactor(f float64) Option {
	return func(o *options) { o.walkFactor = f }
}

// WithMixingTime overrides the mixing-time input of Elect (the paper
// needs only a linear upper bound). Default: the network's profiled tmix.
func WithMixingTime(t int) Option {
	return func(o *options) { o.mixingTime = t }
}

// WithConductance overrides the conductance input of Elect. Default: the
// network's profiled Φ.
func WithConductance(phi float64) Option {
	return func(o *options) { o.conductance = phi }
}

// WithEpsilon sets the paper's ε ∈ (0,1] for ElectRevocable. Default 0.5.
func WithEpsilon(eps float64) Option {
	return func(o *options) { o.epsilon = eps }
}

// WithXi sets the paper's error parameter ξ ∈ (0,1) in f(k) for
// ElectRevocable. Default 0.5.
func WithXi(xi float64) Option {
	return func(o *options) { o.xi = xi }
}

// WithIsoperimetric provides a known lower bound on i(G) to
// ElectRevocable, selecting the Theorem 3 diffusion schedule instead of
// the fully blind Corollary 1 schedule.
func WithIsoperimetric(iso float64) Option {
	return func(o *options) { o.isoperimetric = iso }
}

// WithCalibration scales the revocable protocol's certification count f(k)
// and diffusion length r(k); 1,1 is the faithful schedule. Calibrated runs
// (see EXPERIMENTS.md) keep success rates while making larger networks
// simulable.
func WithCalibration(fMult, rMult float64) Option {
	return func(o *options) { o.fMult, o.rMult = fMult, rMult }
}

// WithMaxRounds caps the rounds ElectRevocable will simulate before
// reporting a stabilization failure. Default 2e8.
func WithMaxRounds(rounds int) Option {
	return func(o *options) { o.maxRounds = rounds }
}

// pow1e returns x^(1+eps), shared by the stabilization predicate.
func pow1e(x, eps float64) float64 { return math.Pow(x, 1+eps) }
