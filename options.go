package anonlead

import (
	"anonlead/internal/core"
	"anonlead/internal/transport"
)

// options aggregates all election tunables; zero values select the
// defaults documented on the With* constructors. The protocol scalars
// live in one shared core.ProtoConfig, the configuration currency the
// registry consumes — Run overlays the network's profiled quantities onto
// whatever the options left at zero, which is the single default-filling
// path every protocol (and every Elect* wrapper) goes through.
type options struct {
	seed      uint64
	parallel  bool
	scheduler Scheduler
	transport Transport
	adversary *AdversarySpec
	observer  func(RoundInfo)
	tracer    TraceRecorder
	profile   ProfileMode
	proto     core.ProtoConfig

	// Epoch options, consumed by RunEpochs only (Run ignores them).
	epochs     int
	epochFault EpochFault
	epochCarry bool
}

// Option customizes an election. Options are applied in order; later
// options win.
type Option func(*options)

func buildOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithSeed fixes the root random seed. Elections are deterministic in the
// seed; distinct seeds give independent elections. Default 0.
func WithSeed(seed uint64) Option {
	return func(o *options) { o.seed = seed }
}

// WithParallel runs node steps on a goroutine worker pool, a shorthand
// for WithScheduler(WorkerPool). Results are bit-identical to the
// sequential scheduler.
func WithParallel(parallel bool) Option {
	return func(o *options) { o.parallel = parallel }
}

// WithScheduler selects the execution engine (Sequential, WorkerPool or
// Actors). All engines produce bit-identical results; the choice is a
// throughput knob. Default Sequential.
func WithScheduler(s Scheduler) Option {
	return func(o *options) { o.scheduler = s }
}

// Transport selects the execution substrate of a Run.
type Transport int

const (
	// TransportSim runs on the in-memory simulator: one process-local
	// router, no per-node goroutines. The default, and the only backend
	// that supports WithAdversary and the parallel schedulers.
	TransportSim Transport = iota
	// TransportChan runs every node as a real message-passing goroutine;
	// links are in-process channels carrying framed messages.
	TransportChan
	// TransportPipe is TransportChan with links as synchronous byte
	// streams (net.Pipe): the full wire encoding without sockets.
	TransportPipe
	// TransportTCP connects the nodes over localhost TCP sockets,
	// established through a seed-derived anonymous handshake.
	TransportTCP
)

// internal maps the public selector onto a transport backend (nil for the
// simulator).
func (t Transport) internal() transport.Transport {
	switch t {
	case TransportChan:
		return transport.ChanTransport{}
	case TransportPipe:
		return transport.PipeTransport{}
	case TransportTCP:
		return transport.TCPTransport{}
	default:
		return nil
	}
}

// String names the backend ("sim", "chan", "pipe", "tcp").
func (t Transport) String() string {
	if t == TransportSim {
		return "sim"
	}
	if tr := t.internal(); tr != nil {
		return tr.Name()
	}
	return "transport(?)"
}

// WithTransport selects the execution backend. With the default
// TransportSim the election runs on the in-memory simulator; the other
// backends run each node as an actual concurrent entity exchanging
// length-prefixed framed messages over per-port links, with a coordinator
// barrier enforcing CONGEST synchrony. Execution is bit-compatible across
// backends: the same seed elects the same leader in the same number of
// rounds with the same cost metrics. Non-simulator backends require the
// protocol to have a registered wire codec (all built-in protocols do)
// and cannot be combined with WithAdversary — simulated faults live in
// the simulator's router; transport-level frame faults are a separate
// seam (see internal/transport).
func WithTransport(t Transport) Option {
	return func(o *options) { o.transport = t }
}

// WithAdversary injects deterministic faults into the run as described by
// the spec (message loss, crash-stop, link churn, delivery jitter — see
// AdversarySpec). The adversary's random streams are split from the run
// seed under a dedicated label, so the protocol machines' randomness is
// untouched and a zero spec is byte-identical to no adversary at all.
func WithAdversary(spec AdversarySpec) Option {
	return func(o *options) { o.adversary = &spec }
}

// WithEpochs sets the number of chained elections a RunEpochs scenario
// executes (default 1). Run ignores it.
func WithEpochs(k int) Option {
	return func(o *options) { o.epochs = k }
}

// WithEpochFault selects how a leader is removed between RunEpochs epochs:
// EpochCrash (the default) crash-stops the old leader permanently,
// EpochRevoke makes it step down but stay alive. Run ignores it.
func WithEpochFault(f EpochFault) Option {
	return func(o *options) { o.epochFault = f }
}

// WithEpochCarry carries knowledge across RunEpochs epochs: every
// re-election after a crash is told the surviving node count (as if by
// WithPresumedN), modelling the Dieudonné–Pelc claim that knowledge from
// epoch k makes epoch k+1 cheaper. Default false: each epoch re-elects
// with the original presumed size. Run ignores it.
func WithEpochCarry(carry bool) Option {
	return func(o *options) { o.epochCarry = carry }
}

// WithObserver streams per-round cost metrics to fn while the election
// runs: fn is invoked after every executed round from the simulator's
// single-threaded coordination path (so it needs no locking, but it also
// delays the round — keep it cheap). Observation is read-only: nothing fn
// does flows back into the election.
func WithObserver(fn func(RoundInfo)) Option {
	return func(o *options) { o.observer = fn }
}

// WithTrace streams protocol trace events to rec while the election
// runs: protocols annotate their decision points (candidate draws, leader
// declarations, revocable choices) through the simulator's tracing hook,
// and rec receives each as a TraceEvent. rec must be safe for concurrent
// calls under the parallel schedulers — TraceFunc wrappers around a
// mutex-guarded collector are the easy way. Tracing is read-only and
// opt-in; without this option the protocol-side trace calls are no-ops.
func WithTrace(rec TraceRecorder) Option {
	return func(o *options) { o.tracer = rec }
}

// WithProfileMode selects the regime used to compute any profiled
// protocol inputs (mixing time, conductance, diameter) the caller did not
// supply explicitly: ProfileExact is the legacy dense path, byte-identical
// to pre-mode releases; ProfileEstimate is the streaming path that scales
// to millions of nodes; ProfileAuto (the default) picks exact for n ≤ 256
// and estimate above. Profiles are cached per resolved regime on the
// Network, so repeated runs share one computation. The resolved mode is
// recorded in bench artifact cell descriptors.
func WithProfileMode(mode ProfileMode) Option {
	return func(o *options) { o.profile = mode }
}

// WithPresumedN misreports the network size to the protocol: the topology
// keeps its true size, only the size the nodes are told changes. This is
// the knowledge ablation of Dieudonné & Pelc ("Impact of Knowledge on
// Election Time in Anonymous Networks") — election degrades as presumed n
// drifts from the truth. Protocols that estimate n themselves (revocable)
// ignore it. Default: the true size.
func WithPresumedN(n int) Option {
	return func(o *options) { o.proto.N = n }
}

// WithConstant sets the analysis constant c scaling candidate rate, walk
// length and broadcast length (paper Section 4, "sufficiently large c")
// for every protocol that samples candidates. Default 2.
func WithConstant(c float64) Option {
	return func(o *options) { o.proto.C = c }
}

// WithWalks overrides the number x of random walks per candidate in the
// ire/explicit protocols. Default: the paper's x = √(n·log n/(Φ·tmix)).
func WithWalks(x int) Option {
	return func(o *options) { o.proto.X = x }
}

// WithWalkFactor scales the automatic walk count (ignored after
// WithWalks). Default 1.
func WithWalkFactor(f float64) Option {
	return func(o *options) { o.proto.XFactor = f }
}

// WithMixingTime overrides the mixing-time input of the ire, explicit and
// walknotify protocols (the paper needs only a linear upper bound).
// Default: the network's profiled tmix.
func WithMixingTime(t int) Option {
	return func(o *options) { o.proto.TMix = t }
}

// WithConductance overrides the conductance input of the ire and explicit
// protocols. Default: the network's profiled Φ.
func WithConductance(phi float64) Option {
	return func(o *options) { o.proto.Phi = phi }
}

// WithDiameter overrides the diameter bound the floodmax baselines flood
// for. Default: the network's profiled exact diameter.
func WithDiameter(d int) Option {
	return func(o *options) { o.proto.Diam = d }
}

// WithIDSpace overrides the candidate ID space: IDs are drawn uniformly
// from [1, maxID]. Default n⁴ (collision probability ≤ 1/n² by the
// paper's birthday argument).
func WithIDSpace(maxID uint64) Option {
	return func(o *options) { o.proto.MaxID = maxID }
}

// WithEpsilon sets the paper's ε ∈ (0,1] for the revocable protocol.
// Default 0.5.
func WithEpsilon(eps float64) Option {
	return func(o *options) { o.proto.Epsilon = eps }
}

// WithXi sets the paper's error parameter ξ ∈ (0,1) in f(k) for the
// revocable protocol. Default 0.5.
func WithXi(xi float64) Option {
	return func(o *options) { o.proto.Xi = xi }
}

// WithIsoperimetric provides a known lower bound on i(G) to the revocable
// protocol, selecting the Theorem 3 diffusion schedule instead of the
// fully blind Corollary 1 schedule.
func WithIsoperimetric(iso float64) Option {
	return func(o *options) { o.proto.Iso = iso }
}

// WithCalibration scales the revocable protocol's certification count f(k)
// and diffusion length r(k); 1,1 is the faithful schedule. Calibrated runs
// (see EXPERIMENTS.md) keep success rates while making larger networks
// simulable.
func WithCalibration(fMult, rMult float64) Option {
	return func(o *options) { o.proto.FMult, o.proto.RMult = fMult, rMult }
}

// WithMaxRounds caps the rounds an open-ended (revocable) election will
// simulate before reporting ErrNotStabilized. Default 2e8 fault-free,
// 1e6 under an adversary (faults can make convergence unreachable).
func WithMaxRounds(rounds int) Option {
	return func(o *options) { o.proto.MaxRounds = rounds }
}

// WithProtoConfig overlays a fully resolved protocol configuration
// wholesale, replacing every protocol scalar set by earlier options. Its
// parameter type lives in an internal package, so it is callable only
// from inside this module: the experiment harness uses it to drive the
// public Run path with exact per-trial inputs (which is what keeps the
// published bench artifacts byte-identical to the pre-registry sweeps).
// External callers compose the individual With* options instead.
func WithProtoConfig(pc core.ProtoConfig) Option {
	return func(o *options) { o.proto = pc }
}
