package anonlead

import (
	"context"
	"errors"
	"fmt"

	"anonlead/internal/rng"
)

// EpochFault selects what ends a leader's reign between RunEpochs epochs.
type EpochFault int

const (
	// EpochCrash crash-stops the old leader at the start of the next
	// epoch: it is dead for every later epoch (injected as a round-0 crash
	// schedule entry), and re-elections run among the survivors.
	EpochCrash EpochFault = iota
	// EpochRevoke ends the reign without killing the node: every epoch
	// re-elects over the full network, modelling voluntary step-down.
	EpochRevoke
)

// String names the fault mode ("crash", "revoke").
func (f EpochFault) String() string {
	if f == EpochRevoke {
		return "revoke"
	}
	return "crash"
}

// EpochResult records one epoch of a RunEpochs scenario.
type EpochResult struct {
	// Epoch is the 0-based epoch index.
	Epoch int
	// Seed is the run seed this epoch's election used. Epoch 0 runs on
	// the caller's seed; later epochs derive theirs from the previous
	// epoch's outcome (see RunEpochs).
	Seed uint64
	// Elected reports whether this epoch elected a unique leader.
	Elected bool
	// Leader is the elected leader's node index (-1 when !Elected).
	Leader int
	// LeaderID is the elected leader's random ID (0 when !Elected).
	LeaderID uint64
	// Rounds is the rounds this epoch's election ran. For epochs after a
	// leader loss this is exactly the time-to-recover.
	Rounds int
	// ChargedRounds, Messages and Bits are this epoch's CONGEST cost.
	ChargedRounds int64
	Messages      int64
	Bits          int64
	// Crashed is the number of crash-stopped nodes during this epoch
	// (accumulated dead leaders plus any adversary crashes).
	Crashed int
}

// EpochOutcome is the result of a RunEpochs scenario: the per-epoch
// history plus the amortized totals the repeated-election literature
// cares about.
type EpochOutcome struct {
	// Protocol is the canonical protocol name.
	Protocol string
	// Fault is the leader-removal mode the scenario ran under.
	Fault EpochFault
	// Epochs is the per-epoch history, in order.
	Epochs []EpochResult
	// Elected counts the epochs that elected a unique leader.
	Elected int
	// Dead lists the nodes crash-stopped as ex-leaders (EpochCrash mode),
	// in death order.
	Dead []int
	// TotalRounds, TotalCharged, TotalMessages and TotalBits sum the
	// epochs' costs.
	TotalRounds   int
	TotalCharged  int64
	TotalMessages int64
	TotalBits     int64
	// AmortizedMessages and AmortizedRounds are the per-epoch averages —
	// the steady-state cost of keeping a leader over time.
	AmortizedMessages float64
	AmortizedRounds   float64
	// MeanRecover is the mean rounds of the successful re-elections
	// (epochs after the first), i.e. the mean time-to-recover from a
	// leader loss; 0 when no re-election succeeded.
	MeanRecover float64
}

// chainEpochSeed derives the next epoch's run seed from the previous
// epoch's: a labeled split of the old seed folded with the outcome's
// observable identity (leader ID, rounds, surviving-leader count), the
// BFT-MVBA idiom of deriving per-epoch leader sequences from a combined
// seed. Pure, so whole multi-epoch histories are bit-identical across
// schedulers and orchestrators.
func chainEpochSeed(prev uint64, out Outcome) uint64 {
	r := rng.New(prev).SplitString("epoch")
	r = r.Split(out.LeaderID)
	r = r.Split(uint64(out.Rounds))
	return r.DeriveSeed(uint64(len(out.Leaders)))
}

// RunEpochs executes a repeated-election scenario on the network: epochs
// of (elect → lead → leader crashes or revokes → re-elect), configured by
// WithEpochs, WithEpochFault and WithEpochCarry on top of the ordinary
// Run options. One persistent topology hosts the whole history; each
// epoch is a full election whose run seed derives from the previous
// epoch's outcome through the deterministic seed chain, so a scenario is
// reproducible from (network, protocol, seed, options) alone and
// bit-identical across all schedulers.
//
// In EpochCrash mode every elected leader is dead from the next epoch on
// (injected as a round-0 entry of the adversary's crash schedule, merged
// with any caller-specified adversary); with WithEpochCarry the
// re-elections are told the surviving node count. Epochs that fail to
// elect (ErrNotHalted/ErrNotStabilized, or a non-unique leader set) are
// recorded as failed and the scenario continues — degradation is data,
// not an error. Context cancellation and configuration errors abort and
// return the partial history alongside the error.
func (nw *Network) RunEpochs(ctx context.Context, protocol string, opts ...Option) (EpochOutcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := buildOptions(opts)
	k := o.epochs
	if k <= 0 {
		k = 1
	}
	if o.transport != TransportSim && o.epochFault == EpochCrash {
		return EpochOutcome{}, fmt.Errorf("anonlead: RunEpochs crash mode requires TransportSim (dead leaders are injected through the simulated adversary)")
	}

	eo := EpochOutcome{Fault: o.epochFault}
	deadSet := make(map[int]bool)
	seed := o.seed
	for e := 0; e < k; e++ {
		eopts := append(append([]Option(nil), opts...), WithSeed(seed))
		if len(eo.Dead) > 0 {
			var spec AdversarySpec
			if o.adversary != nil {
				spec = *o.adversary
			}
			sched := make(map[int]int, len(spec.CrashSchedule)+len(eo.Dead))
			for v, r := range spec.CrashSchedule {
				sched[v] = r
			}
			for _, v := range eo.Dead {
				sched[v] = 0
			}
			spec.CrashSchedule = sched
			eopts = append(eopts, WithAdversary(spec))
			if o.epochCarry {
				eopts = append(eopts, WithPresumedN(nw.N()-len(eo.Dead)))
			}
		}

		out, err := nw.Run(ctx, protocol, eopts...)
		eo.Protocol = out.Protocol
		res := EpochResult{
			Epoch:         e,
			Seed:          seed,
			Leader:        -1,
			Rounds:        out.Rounds,
			ChargedRounds: out.ChargedRounds,
			Messages:      out.Messages,
			Bits:          out.Bits,
			Crashed:       out.Metrics.Crashed,
		}
		if err != nil && !errors.Is(err, ErrNotHalted) && !errors.Is(err, ErrNotStabilized) {
			eo.Epochs = append(eo.Epochs, res)
			eo.finish()
			return eo, err
		}
		if err == nil && out.Unique {
			res.Elected = true
			res.Leader = out.Leaders[0]
			res.LeaderID = out.LeaderID
			eo.Elected++
		}
		eo.Epochs = append(eo.Epochs, res)
		if o.epochFault == EpochCrash {
			for _, v := range out.Leaders {
				if !deadSet[v] {
					deadSet[v] = true
					eo.Dead = append(eo.Dead, v)
				}
			}
		}
		seed = chainEpochSeed(seed, out)
	}
	eo.finish()
	return eo, nil
}

// finish fills the aggregate fields from the per-epoch history.
func (eo *EpochOutcome) finish() {
	recovered, recoverRounds := 0, 0
	for _, r := range eo.Epochs {
		eo.TotalRounds += r.Rounds
		eo.TotalCharged += r.ChargedRounds
		eo.TotalMessages += r.Messages
		eo.TotalBits += r.Bits
		if r.Epoch > 0 && r.Elected {
			recovered++
			recoverRounds += r.Rounds
		}
	}
	if n := len(eo.Epochs); n > 0 {
		eo.AmortizedMessages = float64(eo.TotalMessages) / float64(n)
		eo.AmortizedRounds = float64(eo.TotalRounds) / float64(n)
	}
	if recovered > 0 {
		eo.MeanRecover = float64(recoverRounds) / float64(recovered)
	}
}
