package anonlead

import (
	"reflect"
	"strings"
	"testing"

	"anonlead/internal/spectral"
)

// TestProfileMirrorParity guards the hand-written field-copy bridge
// between spectral.Profile and the public Profile, in the style of the
// adversary-spec mirror test: every internal field must appear in the
// public mirror (same type, same order) and survive a round trip with a
// distinct sentinel value, so a field added internally but dropped from
// the copy functions fails loudly instead of silently zeroing.
func TestProfileMirrorParity(t *testing.T) {
	// The one deliberate rename: the public surface spells out
	// "Isoperimetric" (matching NetworkStats), the internal type abbreviates.
	rename := map[string]string{"Isoperim": "Isoperimetric"}

	it := reflect.TypeOf(spectral.Profile{})
	pt := reflect.TypeOf(Profile{})
	if it.NumField() != pt.NumField() {
		t.Fatalf("field count mismatch: internal %d vs public %d", it.NumField(), pt.NumField())
	}
	for i := 0; i < it.NumField(); i++ {
		in, pub := it.Field(i), pt.Field(i)
		want := in.Name
		if r, ok := rename[want]; ok {
			want = r
		}
		if pub.Name != want || pub.Type != in.Type {
			t.Fatalf("field %d: internal %s %v vs public %s %v", i, in.Name, in.Type, pub.Name, pub.Type)
		}
	}

	// Round trip with distinct non-zero sentinels in every field.
	var sp spectral.Profile
	sv := reflect.ValueOf(&sp).Elem()
	for i := 0; i < sv.NumField(); i++ {
		f := sv.Field(i)
		switch f.Kind() {
		case reflect.Int:
			f.SetInt(int64(i + 1))
		case reflect.Float64:
			f.SetFloat(float64(i) + 0.5)
		case reflect.Bool:
			f.SetBool(true)
		default:
			t.Fatalf("unhandled field kind %v — extend the parity test", f.Kind())
		}
	}
	got := publicProfile(&sp).internal()
	if *got != sp {
		t.Fatalf("profile round trip lost fields:\nin  %+v\nout %+v", sp, *got)
	}
}

// TestNetworkProfileModes pins the public accessor: exact and estimate
// regimes are both reachable, cached per regime, and auto resolves to
// exact on a small network.
func TestNetworkProfileModes(t *testing.T) {
	nw, err := NewNetwork("expander", 96, 4)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := nw.Profile(ProfileExact)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Estimated || exact.Mode() != ProfileExact {
		t.Fatalf("exact profile flagged estimated: %+v", exact)
	}
	auto, err := nw.Profile(ProfileAuto)
	if err != nil {
		t.Fatal(err)
	}
	if auto != exact {
		t.Fatalf("auto at n=96 diverged from exact:\n%+v\n%+v", auto, exact)
	}
	est, err := nw.Profile(ProfileEstimate)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Estimated || est.Mode() != ProfileEstimate {
		t.Fatalf("estimate profile not flagged: %+v", est)
	}
	if est.Diameter > exact.Diameter {
		t.Fatalf("estimated diameter %d exceeds exact %d (must be a lower bound)", est.Diameter, exact.Diameter)
	}
	if !strings.Contains(est.String(), "diameter>=") {
		t.Fatalf("estimated profile String lacks lower-bound marker:\n%s", est.String())
	}
}

// TestOutcomeProfileAttachment pins when Run attaches a profile: present
// when the protocol consumed profiled defaults, absent when every input
// was supplied explicitly.
func TestOutcomeProfileAttachment(t *testing.T) {
	nw, err := NewNetwork("cycle", 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := nw.Run(nil, ProtoFloodMax, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if out.Profile == nil {
		t.Fatal("floodmax with profiled diameter returned no Outcome.Profile")
	}
	if out.Profile.Estimated {
		t.Fatalf("small-n auto profile flagged estimated: %+v", out.Profile)
	}

	fresh, err := NewNetwork("cycle", 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := fresh.Run(nil, ProtoFloodMax, WithSeed(2), WithDiameter(12))
	if err != nil {
		t.Fatal(err)
	}
	if out2.Profile != nil {
		t.Fatalf("explicit-diameter run forced a profile: %+v", out2.Profile)
	}
}

// TestParseProfileModeRoundTrips pins the canonical public mode strings
// against the internal ones.
func TestParseProfileModeRoundTrips(t *testing.T) {
	for _, m := range []ProfileMode{ProfileAuto, ProfileExact, ProfileEstimate} {
		got, err := ParseProfileMode(m.String())
		if err != nil || got != m {
			t.Fatalf("mode %v: parse(%q) = %v, %v", m, m.String(), got, err)
		}
		if m.internal().String() != m.String() {
			t.Fatalf("mode %v: public string %q diverges from internal %q", m, m.String(), m.internal().String())
		}
	}
	if _, err := ParseProfileMode("dense"); err == nil {
		t.Fatal("invalid mode accepted")
	}
}
