package anonlead

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"anonlead/internal/adversary"
	_ "anonlead/internal/baseline" // registers floodmax/allflood/walknotify
	"anonlead/internal/core"
	"anonlead/internal/sim"
	"anonlead/internal/spectral"
	"anonlead/internal/trace"
	"anonlead/internal/transport"
)

// Canonical names of the registered protocols (see the package docs for
// what each one runs). Run also accepts the legacy alias "flood" for
// ProtoFloodMax.
const (
	ProtoIRE        = "ire"
	ProtoExplicit   = "explicit"
	ProtoRevocable  = "revocable"
	ProtoFloodMax   = "floodmax"
	ProtoAllFlood   = "allflood"
	ProtoWalkNotify = "walknotify"
)

// Sentinel errors Run wraps into its failures; test with errors.Is. When
// either is returned, the accompanying Outcome still carries the rounds
// executed and the full cost accounting of the partial run.
var (
	// ErrNotHalted reports a fixed-budget protocol that failed to halt
	// within its round budget.
	ErrNotHalted = errors.New("protocol did not halt within its round budget")
	// ErrNotStabilized reports a revocable election that failed to reach
	// the Theorem 3 stabilization point within its round cap.
	ErrNotStabilized = errors.New("revocable election did not stabilize")
)

var errEmptyGraph = errors.New("anonlead: network requires a non-empty graph")

// Protocols returns the canonical names of every registered protocol, the
// paper's protocols first, then the promoted baselines. Any returned name
// is accepted by Run.
func Protocols() []string { return core.Names() }

// ProtocolInfo returns a one-line description of a registered protocol
// ("" for unknown names).
func ProtocolInfo(name string) string {
	if e, ok := core.Lookup(name); ok {
		return e.Info
	}
	return ""
}

// Outcome is the unified result of Run: the election outcome and CONGEST
// cost accounting shared by every protocol, plus the per-protocol extras
// (announcement spanning tree, revocable certificate).
type Outcome struct {
	Result

	// Protocol is the canonical name of the protocol that ran (aliases
	// resolved).
	Protocol string

	// LeaderID is the elected leader's random ID (0 if no leader). For
	// revocable elections it is the agreed certificate ID.
	LeaderID uint64

	// AllKnow reports whether every surviving node learned the leader.
	// Only the explicit protocol has an announcement phase; for the other
	// protocols AllKnow is vacuously true.
	AllKnow bool

	// Parents[v] is v's parent node in the leader-rooted announcement BFS
	// tree, -1 at the leader and at unreached nodes (explicit only; nil
	// otherwise).
	Parents []int
	// Depths[v] is v's hop distance from the leader in that tree.
	Depths []int

	// Certificate is the network-wide agreed revocable leader certificate
	// (revocable only; nil otherwise).
	Certificate *Certificate
	// FinalEstimate is the revocable size estimate at stabilization.
	FinalEstimate uint64

	// Profile is the structural profile the run was parameterized by, when
	// one was computed (nil when every profiled input was supplied
	// explicitly, e.g. via WithMixingTime/WithConductance/WithDiameter —
	// the run never forces a profile it did not need). The regime follows
	// WithProfileMode.
	Profile *Profile

	// Metrics is the simulator's full cost accounting (the headline
	// counters are also flattened into the embedded Result).
	Metrics Metrics
}

// Metrics mirrors the simulator's complete cost accounting.
type Metrics struct {
	// Rounds is the number of logical synchronous rounds executed.
	Rounds int
	// ChargedRounds is the CONGEST-model time: per logical round, the
	// maximum over links of the number of budget-sized slots needed to
	// serialize that link's traffic, at least 1 per executed round.
	ChargedRounds int64
	// Messages is the number of point-to-point payloads sent.
	Messages int64
	// Bits is the total payload bits sent.
	Bits int64
	// CongestBits is the per-link per-round budget B used for slotting.
	CongestBits int
	// MaxLinkSlots is the worst per-link slot count observed in any round.
	MaxLinkSlots int
	// MaxChannels is the maximum number of distinct logical channels
	// active on a single link in a single round.
	MaxChannels int
	// Dropped counts packets destroyed by the configured adversary.
	Dropped int64
	// Delayed counts packets the adversary deferred past their normal
	// next-round delivery.
	Delayed int64
	// Crashed counts nodes crash-stopped by the adversary.
	Crashed int
}

func metricsFromSim(m sim.Metrics) Metrics {
	return Metrics{
		Rounds:        m.Rounds,
		ChargedRounds: m.ChargedRounds,
		Messages:      m.Messages,
		Bits:          m.Bits,
		CongestBits:   m.CongestBits,
		MaxLinkSlots:  m.MaxLinkSlots,
		MaxChannels:   m.MaxChannels,
		Dropped:       m.Dropped,
		Delayed:       m.Delayed,
		Crashed:       m.Crashes,
	}
}

// RoundInfo is the per-round snapshot streamed to a WithObserver callback.
type RoundInfo struct {
	// Round is the index of the round just executed (0-based).
	Round int
	// Halted is the number of nodes stopped so far (protocol halts plus
	// adversary crash-stops).
	Halted int
	// Metrics is the cumulative cost accounting after this round.
	Metrics Metrics
}

// Run executes a registered protocol on the network and returns the
// unified Outcome. protocol is any name listed by Protocols() (or the
// legacy alias "flood"). A nil ctx means context.Background(); a
// cancelled context stops the simulation between rounds and returns the
// context's error alongside an Outcome holding the cost accounting so
// far. Runs are deterministic in (network, protocol, seed, options) and
// bit-identical across every scheduler.
func (nw *Network) Run(ctx context.Context, protocol string, opts ...Option) (Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := buildOptions(opts)
	entry, ok := core.Lookup(protocol)
	if !ok {
		return Outcome{}, fmt.Errorf("anonlead: unknown protocol %q (registered: %s)",
			protocol, strings.Join(Protocols(), ", "))
	}

	// The one shared config-assembly path: overlay the network's truth and
	// profiled defaults onto the options' protocol tunables.
	pc := o.proto
	pc.TrueN = nw.N()
	if pc.N == 0 {
		pc.N = nw.N()
	}
	var adv sim.Adversary
	if o.adversary != nil {
		spec := o.adversary.internal()
		var err error
		adv, err = spec.Build(nw.g, adversary.DeriveRunSeed(o.seed))
		if err != nil {
			return Outcome{}, fmt.Errorf("anonlead: %w", err)
		}
	}
	if adv != nil {
		pc.MaxDelay = adv.MaxDelay()
		pc.Faulted = true
	}
	if err := nw.fillProfiled(&pc, entry.Needs, o.profile.internal()); err != nil {
		return Outcome{}, err
	}

	runner, err := entry.Build(pc)
	if err != nil {
		return Outcome{}, err
	}

	var observer func(sim.RoundInfo)
	if o.observer != nil {
		obs := o.observer
		observer = func(ri sim.RoundInfo) {
			obs(RoundInfo{Round: ri.Round, Halted: ri.Halted, Metrics: metricsFromSim(ri.Metrics)})
		}
	}
	var tracer trace.Recorder
	if o.tracer != nil {
		tracer = traceAdapter{o.tracer}
	}

	// Both backends present the same Runtime surface, so everything below
	// the construction branch — the run loop, halt checks, metric and
	// outcome collection — is backend-agnostic.
	var eng transport.Runtime
	if backend := o.transport.internal(); backend == nil {
		net := sim.New(sim.Config{
			Graph:     nw.g,
			Seed:      o.seed,
			Parallel:  o.parallel,
			Scheduler: o.scheduler.toSim(),
			Adversary: adv,
			Observer:  observer,
			Trace:     tracer,
		}, runner.Factory)
		eng = net
	} else {
		if entry.Wire == nil {
			return Outcome{}, fmt.Errorf("anonlead: protocol %s has no wire codec; it runs only on TransportSim", entry.Name)
		}
		if adv != nil {
			return Outcome{}, fmt.Errorf("anonlead: WithAdversary requires TransportSim (transport-level faults are a frame-layer seam, not a router feature)")
		}
		cluster, err := transport.NewCluster(ctx, transport.Config{
			Graph:     nw.g,
			Seed:      o.seed,
			Transport: backend,
			Trace:     tracer,
			Observer:  observer,
		}, runner.Factory, entry.Wire)
		if err != nil {
			return Outcome{}, fmt.Errorf("anonlead: %w", err)
		}
		eng = cluster
	}
	defer eng.Close()

	var rounds int
	var runErr error
	if runner.Budget > 0 {
		rounds, runErr = eng.RunContext(ctx, runner.Budget)
	} else {
		every := runner.CheckEvery
		if every < 1 {
			every = 1
		}
		rounds, runErr = eng.RunUntilContext(ctx, runner.MaxRounds, func(completed int) bool {
			return completed%every == 0 && runner.Converged(eng)
		})
	}

	out := Outcome{Protocol: entry.Name, Result: Result{Rounds: rounds}}
	if sp := nw.cachedProfile(o.profile.internal()); sp != nil {
		pub := publicProfile(sp)
		out.Profile = &pub
	}
	m := eng.Metrics()
	fillMetrics(&out.Result, m)
	out.Metrics = metricsFromSim(m)
	if runErr != nil {
		return out, fmt.Errorf("anonlead: %s stopped after %d rounds: %w", entry.Name, rounds, runErr)
	}
	if runner.Budget > 0 {
		if !eng.AllHalted() {
			return out, fmt.Errorf("anonlead: %s did not halt within %d rounds: %w",
				entry.Name, runner.Budget, ErrNotHalted)
		}
	} else if !runner.Converged(eng) {
		return out, fmt.Errorf("anonlead: %s did not stabilize within %d rounds: %w",
			entry.Name, rounds, ErrNotStabilized)
	}

	co := runner.Collect(eng)
	out.Leaders = co.Leaders
	out.Unique = len(co.Leaders) == 1
	out.LeaderID = co.LeaderID
	out.AllKnow = co.AllKnow
	out.Parents = co.Parents
	out.Depths = co.Depths
	if co.HasCertificate {
		out.Certificate = &Certificate{ID: co.CertID, Estimate: co.CertEstimate}
		out.FinalEstimate = co.FinalEstimate
	}
	return out, nil
}

// fillProfiled fills the profiled graph quantities the protocol declared
// it needs and the caller did not supply, computing the spectral profile
// lazily on first use under the run's profile mode.
func (nw *Network) fillProfiled(pc *core.ProtoConfig, needs core.Needs, mode spectral.Mode) error {
	if needs&core.NeedTMix != 0 && pc.TMix == 0 {
		prof, err := nw.profileMode(mode)
		if err != nil {
			return err
		}
		pc.TMix = prof.MixingTime
	}
	if needs&core.NeedPhi != 0 && pc.Phi == 0 {
		prof, err := nw.profileMode(mode)
		if err != nil {
			return err
		}
		pc.Phi = prof.Conductance
	}
	if needs&core.NeedDiam != 0 && pc.Diam == 0 {
		prof, err := nw.profileMode(mode)
		if err != nil {
			return err
		}
		pc.Diam = prof.Diameter
	}
	return nil
}
