// Command lesweep runs the artifact sweep matrix as a distributed job: it
// plans the same cell matrix as `lebench -exp sweeps`, cuts it into
// contiguous shards, runs one worker per shard, and merges the partial
// artifacts into a single schema-v5 BENCH file.
//
// Per-trial seeds are pure functions of the root seed and the cell, so
// the merged artifact is byte-identical to a single-process
// `lebench -exp sweeps -strip-timings` run of the same seed — which is
// how CI's dist-sweep job verifies it, with cmp:
//
//	lesweep -workers 2 -quick -json BENCH_dist.json
//	lebench -exp sweeps -quick -parallel -strip-timings -json BENCH_local.json
//	cmp BENCH_dist.json BENCH_local.json
//
// By default workers run in-process (goroutine shards over one
// GOMAXPROCS pool — cheapest, no subprocess spawn). -exec switches to
// process workers: each shard becomes a `lebench -cells i:j` subprocess
// whose partial artifact the coordinator collects, which is the mode
// that generalizes to many machines. Crashed workers are retried
// (-retries) before the sweep fails.
//
// -debug-addr serves the live sweep view while it runs: /metrics is the
// Prometheus registry (per-worker spans, cells done, ETA gauges),
// /debug/progress is the coordinator's JSON progress (per-worker state,
// elapsed, retries, running ETA), /debug/pprof/* the standard profiles.
// -trace-out and -metrics-out flush the phase spans (Chrome trace-event
// JSON) and the registry snapshot after the merge.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"anonlead/internal/obs"
	"anonlead/internal/spectral"
	"anonlead/internal/sweep"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lesweep:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		workers    = flag.Int("workers", 2, "number of shards to cut the plan into")
		parallel   = flag.Int("parallel", 0, "max workers running at once (0 = all; in-process workers share one pool anyway)")
		retries    = flag.Int("retries", 1, "reruns of a crashed worker before the sweep fails")
		local      = flag.Bool("local", true, "run workers in-process (goroutine shards)")
		execCmd    = flag.String("exec", "", "run workers as subprocesses of this lebench command (e.g. 'go run ./cmd/lebench'); implies -local=false")
		quick      = flag.Bool("quick", false, "shrunken CI matrix (must match the comparison lebench run)")
		trials     = flag.Int("trials", 0, "override trials per cell (0 = matrix defaults)")
		seed       = flag.Uint64("seed", 1, "root seed; per-trial seeds derive deterministically from it")
		profile    = flag.String("profile", "auto", "spectral profile regime for sweep cells: exact, estimate, or auto")
		jsonPath   = flag.String("json", "BENCH_dist.json", "where to write the merged artifact")
		keep       = flag.Bool("keep-partials", false, "leave per-worker partial artifacts on disk (subprocess mode)")
		quiet      = flag.Bool("q", false, "suppress progress logging")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /debug/pprof/* and the /debug/progress live sweep view on this address (e.g. localhost:6060)")
		traceOut   = flag.String("trace-out", "", "write the sweep's phase spans as Chrome trace-event JSON after the merge")
		metricsOut = flag.String("metrics-out", "", "write the metrics-registry snapshot as JSON after the merge (render with lereport -phases)")
	)
	flag.Parse()

	mode, err := spectral.ParseMode(*profile)
	if err != nil {
		return err
	}
	if *traceOut != "" || *metricsOut != "" || *debugAddr != "" {
		obs.Enable()
	}
	var logw io.Writer = os.Stderr
	if *quiet {
		logw = nil
	}
	cfg := sweep.Config{
		Workers:      *workers,
		Parallel:     *parallel,
		Retries:      *retries,
		Quick:        *quick,
		Trials:       *trials,
		Seed:         *seed,
		Profile:      mode,
		KeepPartials: *keep,
		Log:          logw,
	}
	if *execCmd != "" {
		cfg.Exec = strings.Fields(*execCmd)
	} else if !*local {
		return fmt.Errorf("-local=false requires -exec (no worker command to spawn)")
	}

	c := sweep.ForSweeps(cfg)
	if *debugAddr != "" {
		addr, err := obs.Serve(*debugAddr, func() any { return c.Progress() })
		if err != nil {
			return fmt.Errorf("debug endpoint: %w", err)
		}
		fmt.Fprintf(os.Stderr, "lesweep: debug endpoint on http://%s\n", addr)
	}
	art, err := c.Run(context.Background())
	if err != nil {
		return err
	}
	if err := art.WriteFile(*jsonPath); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d cells, merged from %d workers)\n", *jsonPath, len(art.Cells), *workers)
	if *traceOut != "" {
		if err := obs.WriteChromeTraceFile(*traceOut); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		fmt.Printf("wrote %s (%d spans)\n", *traceOut, len(obs.SpanEvents()))
	}
	if *metricsOut != "" {
		if err := obs.WriteSnapshotFile(*metricsOut); err != nil {
			return fmt.Errorf("metrics-out: %w", err)
		}
		fmt.Printf("wrote %s\n", *metricsOut)
	}
	return nil
}
