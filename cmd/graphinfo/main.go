// Command graphinfo prints the structural profile of a topology family
// instance: size, diameter, degree range, spectral gap, mixing time,
// conductance and isoperimetric number — the quantities the paper's
// protocols are parameterized by.
//
// Usage:
//
//	graphinfo -graph cycle -n 64
//	graphinfo -graph expander -n 256 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"anonlead/internal/graph"
	"anonlead/internal/rng"
	"anonlead/internal/spectral"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphinfo:", err)
		os.Exit(1)
	}
}

func run() error {
	family := flag.String("graph", "cycle", "topology family: "+strings.Join(graph.FamilyNames(), ", "))
	n := flag.Int("n", 32, "number of nodes")
	seed := flag.Uint64("seed", 1, "seed for random families")
	flag.Parse()

	g, err := graph.ByName(*family, *n, rng.New(*seed))
	if err != nil {
		return err
	}
	prof, err := spectral.ProfileGraph(g)
	if err != nil {
		return err
	}
	fmt.Printf("family=%s\n%s\n", *family, prof)
	return nil
}
