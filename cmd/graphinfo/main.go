// Command graphinfo prints the structural profile of a topology family
// instance: size, diameter, degree range, spectral gap, mixing time,
// conductance and isoperimetric number — the quantities the paper's
// protocols are parameterized by.
//
// The profile comes from the public anonlead API (NewNetwork +
// Network.Profile), so -profile selects the same exact/estimate/auto
// regimes library users get: exact inverts dense matrices and is limited
// to small n, estimate streams random walks and sweep cuts and scales to
// hundreds of thousands of nodes.
//
// Usage:
//
//	graphinfo -graph cycle -n 64
//	graphinfo -graph expander -n 256 -seed 7
//	graphinfo -graph expander -n 100000 -profile estimate
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"anonlead"
	"anonlead/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphinfo:", err)
		os.Exit(1)
	}
}

func run() error {
	family := flag.String("graph", "cycle", "topology family: "+strings.Join(graph.FamilyNames(), ", "))
	n := flag.Int("n", 32, "number of nodes")
	seed := flag.Uint64("seed", 1, "seed for random families")
	profile := flag.String("profile", "auto", "profile regime: exact, estimate, or auto (exact up to n=256)")
	flag.Parse()

	mode, err := anonlead.ParseProfileMode(*profile)
	if err != nil {
		return err
	}
	nw, err := anonlead.NewNetwork(*family, *n, *seed)
	if err != nil {
		return err
	}
	prof, err := nw.Profile(mode)
	if err != nil {
		return err
	}
	fmt.Printf("family=%s\n%s\n", *family, prof)
	return nil
}
