// Command pumpingwheel runs the impossibility experiment of the paper's
// Section 5.1 (Theorem 2, Figures 1-2): a terminating leader election
// protocol parameterized for a presumed cycle size n is executed on much
// larger cycles C_N built from planted witnesses; the command reports how
// often uniqueness is violated (split-brain elections) as witnesses are
// added.
//
// Usage:
//
//	pumpingwheel -n 16 -witnesses 1,2,4,8 -trials 20
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"anonlead/internal/harness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pumpingwheel:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n      = flag.Int("n", 12, "presumed network size the protocol is told")
		list   = flag.String("witnesses", "1,2,4", "comma-separated witness counts")
		trials = flag.Int("trials", 10, "trials per wheel size")
		seed   = flag.Uint64("seed", 1, "root random seed")
	)
	flag.Parse()

	counts, err := parseInts(*list)
	if err != nil {
		return err
	}
	points, err := harness.SplitBrainExperiment(*n, counts, *trials, *seed)
	if err != nil {
		return err
	}
	fmt.Print(harness.RenderSplitBrain(*n, points))
	return nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad witness count %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
