// Command lereport renders a bench artifact (or an ordered series of
// them) as a paper-style reproduction report: Table-1-shaped measured vs
// predicted tables per protocol×family, the Dieudonné–Pelc knowledge
// ablation, fault-degradation ladders anchored at their fault-free
// cells, repeated-election epoch scenario tables (amortized per-epoch
// cost and recovery time), Wilson success intervals throughout, and —
// given two or more
// artifacts — per-metric trend classification (improving/flat/
// regressing) across the series using the trajectory package's
// variance-aware Welch gates.
//
// Usage:
//
//	lereport BENCH_harness.json                      # report on stdout
//	lereport -out REPORT.md BENCH_harness.json       # write to a file
//	lereport -format csv BENCH_harness.json          # tidy per-(cell,metric) rows
//	lereport old.json mid.json new.json              # series: newest reported + trends
//	lereport -rel-tol 0.1 -sigmas 2 a.json b.json    # looser trend thresholds
//	lereport -fail-on regressing a.json b.json       # exit 1 when a net trend regresses
//
// Arguments are artifact files in chronological order, oldest first. With
// one artifact the report has no trend section; with two or more, the
// report describes the newest artifact and appends the trajectory
// section (cells must be present at every series point to be classified;
// the rest are listed as partial). v1 through v6 artifact schemas are all
// accepted, with v1 cells classifying on the relative tolerance alone.
//
// -phases FILE appends a phase-breakdown table (phase | spans | total |
// mean | share) rendered from an obs metrics snapshot — the -metrics-out
// file that lebench/lesweep write when observability is enabled. Phase
// timings are wall-clock, so the section is opt-in and never part of the
// byte-deterministic baseline report.
//
// Output is byte-deterministic for the same inputs — the committed
// testdata/REPORT_baseline.md is the golden render of
// testdata/BENCH_baseline.json (refresh both together: make baseline).
// CI renders the head sweep's report into the job summary and archives
// it per run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"anonlead/internal/harness"
	"anonlead/internal/obs"
	"anonlead/internal/report"
	"anonlead/internal/trajectory"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process exit, so tests can drive the CLI.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lereport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		format  = fs.String("format", "md", "output format: md (paper-style markdown) or csv (one row per cell metric)")
		outPath = fs.String("out", "", "write the report here instead of stdout")
		title   = fs.String("title", "", "report title (default \"Reproduction report\")")
		relTol  = fs.Float64("rel-tol", 0, "series trend: minimum relative effect to call a change (0 = default 0.05)")
		sigmas  = fs.Float64("sigmas", 0, "series trend: minimum effect in Welch standard errors (0 = default 3)")
		failOn  = fs.String("fail-on", "none", "exit-1 condition: none, or regressing (any net metric trend regresses; needs a series)")
		phases  = fs.String("phases", "", "append a phase-breakdown table from this obs metrics snapshot (the -metrics-out file of lebench/lesweep; md format only)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: lereport [flags] artifact.json [older.json ... newest.json]\n\n"+
			"Renders a paper-style reproduction report from one bench artifact, or from an\n"+
			"ordered series (oldest first): the newest artifact is reported and a per-metric\n"+
			"trend section (improving/flat/regressing) is appended.\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	paths := fs.Args()
	if len(paths) == 0 {
		fmt.Fprintln(stderr, "lereport: at least one artifact file is required")
		fs.Usage()
		return 2
	}
	if *format != "md" && *format != "csv" {
		fmt.Fprintf(stderr, "lereport: unknown -format %q (want md or csv)\n", *format)
		return 2
	}
	if *failOn != "none" && *failOn != "regressing" {
		fmt.Fprintf(stderr, "lereport: unknown -fail-on condition %q (want none or regressing)\n", *failOn)
		return 2
	}
	opts := report.Options{
		Title: *title,
		Trend: trajectory.Thresholds{RelTol: *relTol, Sigmas: *sigmas},
	}

	var rep report.Report
	if len(paths) == 1 {
		a, err := harness.ReadArtifactFile(paths[0])
		if err != nil {
			fmt.Fprintln(stderr, "lereport:", err)
			return 2
		}
		rep = report.New(a, opts)
	} else {
		series, err := trajectory.LoadSeries(paths...)
		if err != nil {
			fmt.Fprintln(stderr, "lereport:", err)
			return 2
		}
		rep = report.NewSeries(series, opts)
	}

	var out string
	if *format == "csv" {
		var err error
		if out, err = rep.CSV(); err != nil {
			fmt.Fprintln(stderr, "lereport:", err)
			return 2
		}
	} else {
		out = rep.Markdown()
		if *phases != "" {
			points, err := obs.ReadSnapshotFile(*phases)
			if err != nil {
				fmt.Fprintln(stderr, "lereport:", err)
				return 2
			}
			stats := obs.PhaseStats(points)
			if len(stats) == 0 {
				fmt.Fprintf(stderr, "lereport: %s has no anonlead_phase_seconds series (run with -trace-out/-metrics-out enabled)\n", *phases)
				return 2
			}
			out += report.PhaseMarkdown(stats)
		}
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(out), 0o644); err != nil {
			fmt.Fprintln(stderr, "lereport: write report:", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %s\n", *outPath)
	} else {
		fmt.Fprint(stdout, out)
	}
	// The trend gate: a single artifact has no trajectory (rep.Trends is
	// nil), so the series-gate CI job no-ops gracefully until enough
	// archived artifacts accumulate.
	if *failOn == "regressing" && rep.Trends != nil && rep.Trends.HasRegressions() {
		fmt.Fprintf(stderr, "lereport: %d metric trend(s) regressing across the series\n", rep.Trends.Regressing)
		return 1
	}
	return 0
}
