package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"anonlead/internal/harness"
)

var baselinePath = filepath.Join("..", "..", "testdata", "BENCH_baseline.json")
var goldenPath = filepath.Join("..", "..", "testdata", "REPORT_baseline.md")

// TestCLIGoldenMatch: the CLI on the committed baseline reproduces the
// committed report byte for byte (the same contract the internal golden
// test pins, here through flag parsing and file IO).
func TestCLIGoldenMatch(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-title", "anonlead reproduction report — baseline", baselinePath}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Fatalf("CLI output differs from committed golden (%d vs %d bytes)", stdout.Len(), len(want))
	}
}

// TestCLIDeterministic: two invocations emit identical bytes.
func TestCLIDeterministic(t *testing.T) {
	render := func() string {
		var stdout, stderr bytes.Buffer
		if code := run([]string{baselinePath}, &stdout, &stderr); code != 0 {
			t.Fatalf("exit %d: %s", code, stderr.String())
		}
		return stdout.String()
	}
	if render() != render() {
		t.Fatal("lereport output not byte-deterministic")
	}
}

// TestCLICSV: -format csv emits the long-form export.
func TestCLICSV(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-format", "csv", baselinePath}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if !strings.HasPrefix(lines[0], "section,protocol,family,n") {
		t.Fatalf("CSV header: %s", lines[0])
	}
	if len(lines) < 100 {
		t.Fatalf("only %d CSV rows from the baseline artifact", len(lines))
	}
}

// TestCLIOutFile: -out writes the report to disk and prints the path.
func TestCLIOutFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.md")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-out", out, baselinePath}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "wrote "+out) {
		t.Fatalf("stdout: %s", stdout.String())
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), "# Reproduction report") {
		t.Fatalf("written report wrong:\n%.200s", buf)
	}
}

// writeArtifact writes a one-cell artifact with the given messages mean.
func writeArtifact(t *testing.T, dir, name string, msgs float64) string {
	t.Helper()
	dist := func(mean float64) *harness.ArtifactDist {
		return &harness.ArtifactDist{StdDev: 1, Min: mean, Max: mean, P50: mean, P90: mean, P99: mean}
	}
	a := harness.Artifact{Schema: harness.ArtifactSchema, Cells: []harness.ArtifactCell{{
		Protocol: "ire", Family: "expander", N: 64, Trials: 8, Successes: 8,
		Messages: msgs, Bits: msgs, Rounds: 10, Charged: 10,
		MessagesDist: dist(msgs), BitsDist: dist(msgs), RoundsDist: dist(10), ChargedDist: dist(10),
	}}}
	buf, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCLISeriesTrends: three artifacts in chronological order produce a
// trajectory section classifying the improvement.
func TestCLISeriesTrends(t *testing.T) {
	dir := t.TempDir()
	paths := []string{
		writeArtifact(t, dir, "pr1.json", 1000),
		writeArtifact(t, dir, "pr2.json", 900),
		writeArtifact(t, dir, "pr3.json", 500),
	}
	var stdout, stderr bytes.Buffer
	if code := run(paths, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"## Trajectory — 3 artifacts: pr1.json → pr2.json → pr3.json",
		"1000 → 900 → 500",
		"improving",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("series output missing %q:\n%s", want, out)
		}
	}
}

// TestCLIErrors: usage and IO failures exit 2 with a diagnostic.
func TestCLIErrors(t *testing.T) {
	cases := [][]string{
		{},                               // no artifact
		{"-format", "pdf", baselinePath}, // unknown format
		{filepath.Join(t.TempDir(), "missing.json")}, // unreadable file
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Fatalf("args %v: exit %d, want 2 (stderr: %s)", args, code, stderr.String())
		}
		if stderr.Len() == 0 {
			t.Fatalf("args %v: no diagnostic", args)
		}
	}
}

// TestCLIUsageDocumentsFlags: -h names every flag and the series form.
func TestCLIUsageDocumentsFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-h"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-h exit %d", code)
	}
	usage := stderr.String()
	for _, want := range []string{"-format", "-out", "-title", "-rel-tol", "-sigmas", "newest.json"} {
		if !strings.Contains(usage, want) {
			t.Fatalf("usage missing %q:\n%s", want, usage)
		}
	}
}
