// Command ledist runs one leader election as actual distributed nodes:
// every node of the topology is its own OS process, exchanging framed
// protocol messages over localhost TCP sockets, with the coordinator
// process enforcing CONGEST synchrony through a round barrier. The
// coordinator also replays the identical election on the in-memory
// simulator and writes a JSON artifact correlating wall-clock time per
// distributed round with the simulated round count — the evidence that
// the paper's round/bit accounting survives contact with real transport.
//
// Usage:
//
//	ledist -proto floodmax -graph cycle -n 16 -seed 1 -out dist_demo.json
//	ledist -proto ire -graph expander -n 16
//
// The same binary re-executes itself in node mode (-node) for the worker
// processes; that mode is internal plumbing, not a user entry point.
//
// ^C interrupts the election between rounds: the coordinator stops
// releasing rounds, tells every node to drain and close, still writes the
// artifact (marked interrupted), and exits nonzero for the partial
// election — mirroring cmd/leaderelect.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"anonlead"
	"anonlead/internal/core"
	"anonlead/internal/graph"
	"anonlead/internal/rng"
	"anonlead/internal/sim"
	"anonlead/internal/transport"
)

func main() {
	var (
		proto   = flag.String("proto", "floodmax", "protocol: "+strings.Join(core.Names(), ", "))
		family  = flag.String("graph", "cycle", "topology family (see anonlead.Families)")
		n       = flag.Int("n", 16, "number of nodes = number of node processes")
		seed    = flag.Uint64("seed", 1, "root random seed (also derives the topology)")
		out     = flag.String("out", "", "write the wall-clock vs simulated-rounds artifact to this JSON file")
		timeout = flag.Duration("timeout", 2*time.Minute, "overall run deadline")
		withSim = flag.Bool("sim", true, "replay the election on the in-memory simulator for correlation")
		nodeIdx = flag.Int("node", -1, "internal: run as node process with this index")
		coordTo = flag.String("coord", "", "internal: coordinator control address (node mode)")
	)
	flag.Parse()

	var err error
	if *nodeIdx >= 0 {
		err = nodeMain(*nodeIdx, *coordTo)
	} else {
		err = coordMain(*proto, *family, *n, *seed, *out, *timeout, *withSim)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ledist:", err)
		os.Exit(1)
	}
}

// Control-plane message bodies. Reports ride the compact binary codec the
// barrier already defines; everything else is low-rate and goes as JSON.

type joinMsg struct {
	Node int    `json:"node"`
	Addr string `json:"addr"` // the node's data-plane listen address
}

type planMsg struct {
	Family      string           `json:"family"`
	N           int              `json:"n"`
	Seed        uint64           `json:"seed"`
	Proto       string           `json:"proto"`
	PC          core.ProtoConfig `json:"pc"`
	CongestBits int              `json:"congest_bits"`
	Peers       []string         `json:"peers"` // data addresses by node index
}

type outcomeMsg struct {
	Node   int    `json:"node"`
	Leader bool   `json:"leader"`
	ID     uint64 `json:"id"`
	Halted bool   `json:"halted"`
}

// buildGraph is the shared deterministic topology derivation: coordinator
// and every node process rebuild the same graph from (family, n, seed),
// exactly as anonlead.NewNetwork does.
func buildGraph(family string, n int, seed uint64) (*graph.Graph, error) {
	return graph.ByName(family, n, rng.New(seed).SplitString("graph:"+family))
}

// ---------------------------------------------------------------------------
// Coordinator

type artifact struct {
	Proto       string  `json:"proto"`
	Family      string  `json:"family"`
	N           int     `json:"n"`
	Seed        uint64  `json:"seed"`
	CongestBits int     `json:"congest_bits"`
	Interrupted bool    `json:"interrupted,omitempty"`
	Error       string  `json:"error,omitempty"`
	Sim         *runRes `json:"sim,omitempty"`
	Dist        *runRes `json:"dist,omitempty"`
	// Match: the distributed run elected the same leader in the same
	// number of rounds with the same CONGEST charge as the simulator.
	Match *bool `json:"match,omitempty"`
}

type runRes struct {
	Rounds          int       `json:"rounds"`
	ChargedRounds   int64     `json:"charged_rounds"`
	Messages        int64     `json:"messages"`
	Bits            int64     `json:"bits"`
	Leaders         int       `json:"leaders"`
	LeaderID        uint64    `json:"leader_id"`
	ElapsedSeconds  float64   `json:"elapsed_seconds"`
	ConnectSeconds  float64   `json:"connect_seconds,omitempty"`
	SecondsPerRound float64   `json:"seconds_per_round,omitempty"`
	RoundSeconds    []float64 `json:"round_seconds,omitempty"`
}

// ctlMsg is one frame read off a node's control connection.
type ctlMsg struct {
	node int
	f    transport.Frame
	err  error
}

// nodeConn is the coordinator's handle on one node process.
type nodeConn struct {
	link transport.Link
	cmd  *exec.Cmd
}

func coordMain(proto, family string, n int, seed uint64, out string, timeout time.Duration, withSim bool) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	g, err := buildGraph(family, n, seed)
	if err != nil {
		return err
	}
	nw, err := anonlead.NewNetworkFromGraph(g)
	if err != nil {
		return err
	}
	entry, ok := core.Lookup(proto)
	if !ok {
		return fmt.Errorf("unknown protocol %q (registered: %s)", proto, strings.Join(core.Names(), ", "))
	}
	if entry.Wire == nil {
		return fmt.Errorf("protocol %s has no wire codec; it cannot run distributed", entry.Name)
	}

	// Resolve the protocol config once, coordinator-side, and ship it to
	// every node: the processes must not profile independently.
	pc := core.ProtoConfig{TrueN: n, N: n}
	if entry.Needs != 0 {
		prof, err := nw.Profile(anonlead.ProfileAuto)
		if err != nil {
			return err
		}
		if entry.Needs&core.NeedTMix != 0 {
			pc.TMix = prof.MixingTime
		}
		if entry.Needs&core.NeedPhi != 0 {
			pc.Phi = prof.Conductance
		}
		if entry.Needs&core.NeedDiam != 0 {
			pc.Diam = prof.Diameter
		}
	}
	runner, err := entry.Build(pc)
	if err != nil {
		return err
	}
	if runner.Budget <= 0 {
		return fmt.Errorf("protocol %s is open-ended (convergence-checked); ledist runs halting protocols", entry.Name)
	}
	budget := sim.DefaultCongestBits(n)

	art := &artifact{Proto: entry.Name, Family: family, N: n, Seed: seed, CongestBits: budget}
	distErr := runDistributed(ctx, g, entry, pc, seed, budget, runner.Budget, art)
	if distErr != nil {
		art.Error = distErr.Error()
	}
	if errors.Is(ctx.Err(), context.Canceled) || errors.Is(distErr, context.Canceled) {
		art.Interrupted = true
	}

	if withSim && art.Dist != nil {
		began := time.Now()
		outSim, err := nw.Run(context.Background(), proto,
			anonlead.WithSeed(seed), anonlead.WithProtoConfig(pc))
		if err != nil {
			return fmt.Errorf("simulator replay: %w", err)
		}
		art.Sim = &runRes{
			Rounds:         outSim.Rounds,
			ChargedRounds:  outSim.Metrics.ChargedRounds,
			Messages:       outSim.Metrics.Messages,
			Bits:           outSim.Metrics.Bits,
			Leaders:        len(outSim.Leaders),
			LeaderID:       outSim.LeaderID,
			ElapsedSeconds: time.Since(began).Seconds(),
		}
		if distErr == nil {
			m := art.Dist.Rounds == art.Sim.Rounds &&
				art.Dist.LeaderID == art.Sim.LeaderID &&
				art.Dist.ChargedRounds == art.Sim.ChargedRounds
			art.Match = &m
		}
	}

	if out != "" {
		buf, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("artifact: %s\n", out)
	}
	printSummary(art)
	if distErr != nil {
		return distErr
	}
	if art.Match != nil && !*art.Match {
		return errors.New("distributed run diverged from the simulator")
	}
	if art.Dist != nil && art.Dist.Leaders != 1 {
		return fmt.Errorf("election not unique: %d leaders", art.Dist.Leaders)
	}
	return nil
}

// runDistributed spawns the node processes, drives the barrier, and fills
// art.Dist with whatever completed (even on interrupt or node failure).
func runDistributed(ctx context.Context, g *graph.Graph, entry core.Entry, pc core.ProtoConfig, seed uint64, congestBits, roundBudget int, art *artifact) error {
	n := g.N()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()

	exe, err := os.Executable()
	if err != nil {
		return err
	}
	nodes := make([]nodeConn, n)
	defer func() {
		for _, nc := range nodes {
			if nc.link != nil {
				nc.link.Close()
			}
		}
		for _, nc := range nodes {
			if nc.cmd != nil {
				nc.cmd.Wait()
			}
		}
	}()
	for v := 0; v < n; v++ {
		cmd := exec.CommandContext(ctx, exe, "-node", strconv.Itoa(v), "-coord", ln.Addr().String())
		cmd.Stderr = os.Stderr
		cmd.Cancel = func() error { return cmd.Process.Signal(os.Interrupt) }
		cmd.WaitDelay = 10 * time.Second
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("spawn node %d: %w", v, err)
		}
		nodes[v].cmd = cmd
	}

	// Join phase: every node checks in with its data address.
	peers := make([]string, n)
	if dl, ok := ctx.Deadline(); ok {
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(dl)
		}
	}
	for i := 0; i < n; i++ {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("waiting for node joins (%d/%d): %w", i, n, err)
		}
		l := transport.NewStreamLink(conn, nil)
		f, err := l.ReadFrame()
		if err != nil || f.Type != transport.FrameJoin {
			conn.Close()
			return fmt.Errorf("bad join handshake: %v", err)
		}
		var j joinMsg
		if err := json.Unmarshal(f.Body, &j); err != nil || j.Node < 0 || j.Node >= n || nodes[j.Node].link != nil {
			conn.Close()
			return fmt.Errorf("invalid join %q", f.Body)
		}
		nodes[j.Node].link = l
		peers[j.Node] = j.Addr
	}

	// Plan phase: ship the resolved run description; the nodes wire their
	// data fabric among themselves and run the Init pseudo-round.
	plan := planMsg{Family: art.Family, N: n, Seed: seed, Proto: entry.Name, PC: pc, CongestBits: congestBits, Peers: peers}
	planBody, err := json.Marshal(plan)
	if err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		if err := writeFrame(nodes[v].link, transport.Frame{Type: transport.FramePlan, Body: planBody}); err != nil {
			return fmt.Errorf("plan to node %d: %w", v, err)
		}
	}

	msgs := make(chan ctlMsg, n)
	for v := 0; v < n; v++ {
		go func(v int, l transport.Link) {
			for {
				f, err := l.ReadFrame()
				msgs <- ctlMsg{node: v, f: f, err: err}
				if err != nil {
					return
				}
			}
		}(v, nodes[v].link)
	}

	barrier := transport.NewBarrier(g, congestBits)
	reps := make([]transport.Report, n)
	gather := func() error {
		var firstErr error
		for i := 0; i < n; i++ {
			m := <-msgs
			if m.err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("node %d control: %w", m.node, m.err)
				}
				continue
			}
			if m.f.Type != transport.FrameReport {
				if firstErr == nil {
					firstErr = fmt.Errorf("node %d: unexpected %v frame", m.node, m.f.Type)
				}
				continue
			}
			r, err := transport.DecodeReport(m.f.Body)
			if err == nil && r.Fail != "" {
				err = fmt.Errorf("node %d failed: %s", r.Node, r.Fail)
			}
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			reps[r.Node] = r
		}
		return firstErr
	}

	began := time.Now()
	if err := gather(); err != nil { // Init pseudo-round
		return err
	}
	barrier.FinishRound(false, reps)
	connectSecs := time.Since(began).Seconds()

	res := &runRes{ConnectSeconds: connectSecs}
	art.Dist = res
	runStart := time.Now()
	var runErr error
	for !barrier.ShouldStop() && barrier.Round() < roundBudget {
		if err := ctx.Err(); err != nil {
			runErr = err
			break
		}
		round := barrier.Round()
		t0 := time.Now()
		for v := 0; v < n; v++ {
			if err := writeFrame(nodes[v].link, transport.Frame{Type: transport.FrameStart, Round: round}); err != nil {
				return fmt.Errorf("start to node %d: %w", v, err)
			}
		}
		if err := gather(); err != nil {
			return err
		}
		barrier.FinishRound(true, reps)
		res.RoundSeconds = append(res.RoundSeconds, time.Since(t0).Seconds())
	}
	res.ElapsedSeconds = time.Since(runStart).Seconds()

	// Stop phase: drain every node and collect its leadership claim.
	for v := 0; v < n; v++ {
		writeFrame(nodes[v].link, transport.Frame{Type: transport.FrameStop})
	}
	leaders := 0
	var leaderID uint64
	done := make([]bool, n)
	got := 0
	deadline := time.After(10 * time.Second)
	for got < n {
		select {
		case m := <-msgs:
			if done[m.node] {
				continue // EOF after the node's outcome already landed
			}
			if m.err != nil {
				// The node died without an outcome; that is its final word.
				done[m.node] = true
				got++
				continue
			}
			if m.f.Type != transport.FrameOutcome {
				continue
			}
			var o outcomeMsg
			if err := json.Unmarshal(m.f.Body, &o); err == nil {
				if o.Leader {
					leaders++
					leaderID = o.ID
				}
			}
			done[m.node] = true
			got++
		case <-deadline:
			if runErr == nil {
				runErr = fmt.Errorf("timed out draining node outcomes (%d/%d)", got, n)
			}
			got = n
		}
	}

	m := barrier.Metrics()
	res.Rounds = m.Rounds
	res.ChargedRounds = m.ChargedRounds
	res.Messages = m.Messages
	res.Bits = m.Bits
	res.Leaders = leaders
	res.LeaderID = leaderID
	if m.Rounds > 0 {
		res.SecondsPerRound = res.ElapsedSeconds / float64(m.Rounds)
	}
	if runErr == nil && !barrier.AllHalted() {
		runErr = fmt.Errorf("election incomplete after %d rounds", m.Rounds)
	}
	return runErr
}

func writeFrame(l transport.Link, f transport.Frame) error {
	if err := l.WriteFrame(f); err != nil {
		return err
	}
	return l.Flush()
}

func printSummary(art *artifact) {
	if art.Dist == nil {
		return
	}
	d := art.Dist
	fmt.Printf("dist: %s on %s n=%d: rounds=%d charged=%d msgs=%d leaders=%d leader=%d\n",
		art.Proto, art.Family, art.N, d.Rounds, d.ChargedRounds, d.Messages, d.Leaders, d.LeaderID)
	fmt.Printf("wall: connect=%.3fs run=%.3fs (%.1fms/round over %d processes)\n",
		d.ConnectSeconds, d.ElapsedSeconds, d.SecondsPerRound*1000, art.N)
	if art.Sim != nil {
		fmt.Printf("sim:  rounds=%d charged=%d leader=%d in %.3fs\n",
			art.Sim.Rounds, art.Sim.ChargedRounds, art.Sim.LeaderID, art.Sim.ElapsedSeconds)
	}
	if art.Match != nil {
		fmt.Printf("match: %v\n", *art.Match)
	}
	if art.Interrupted {
		fmt.Println("interrupted: partial election")
	}
}

// ---------------------------------------------------------------------------
// Node process

// remoteControl adapts the coordinator control connection to the driver's
// ControlPlane. Used from the single driver goroutine only.
type remoteControl struct {
	link transport.Link
	buf  []byte
}

func (c *remoteControl) WaitStart() (int, bool, error) {
	f, err := c.link.ReadFrame()
	if err != nil {
		return 0, false, err
	}
	switch f.Type {
	case transport.FrameStart:
		return f.Round, false, nil
	case transport.FrameStop:
		return 0, true, nil
	}
	return 0, false, fmt.Errorf("unexpected %v frame from coordinator", f.Type)
}

func (c *remoteControl) Report(r transport.Report) error {
	c.buf = transport.AppendReport(c.buf[:0], r)
	return writeFrame(c.link, transport.Frame{Type: transport.FrameReport, Body: c.buf})
}

func nodeMain(v int, coord string) error {
	if coord == "" {
		return errors.New("node mode requires -coord")
	}
	// ^C reaches the whole process group; the node keeps draining under
	// the coordinator's direction but arms a deadline so it cannot outlive
	// a dead coordinator.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)

	conn, err := net.Dial("tcp", coord)
	if err != nil {
		return fmt.Errorf("node %d: dial coordinator: %w", v, err)
	}
	defer conn.Close()
	go func() {
		<-sigc
		conn.SetDeadline(time.Now().Add(15 * time.Second))
	}()
	ctl := transport.NewStreamLink(conn, nil)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("node %d: data listen: %w", v, err)
	}
	defer ln.Close()

	body, err := json.Marshal(joinMsg{Node: v, Addr: ln.Addr().String()})
	if err != nil {
		return err
	}
	if err := writeFrame(ctl, transport.Frame{Type: transport.FrameJoin, Body: body}); err != nil {
		return fmt.Errorf("node %d: join: %w", v, err)
	}

	f, err := ctl.ReadFrame()
	if err != nil || f.Type != transport.FramePlan {
		return fmt.Errorf("node %d: waiting for plan: %v", v, err)
	}
	var plan planMsg
	if err := json.Unmarshal(f.Body, &plan); err != nil {
		return fmt.Errorf("node %d: plan: %w", v, err)
	}

	g, err := buildGraph(plan.Family, plan.N, plan.Seed)
	if err != nil {
		return fmt.Errorf("node %d: rebuild graph: %w", v, err)
	}
	entry, ok := core.Lookup(plan.Proto)
	if !ok || entry.Wire == nil {
		return fmt.Errorf("node %d: protocol %q not runnable here", v, plan.Proto)
	}
	runner, err := entry.Build(plan.PC)
	if err != nil {
		return fmt.Errorf("node %d: build: %w", v, err)
	}

	ctx := context.Background()
	links, err := transport.ConnectNode(ctx, g, v, plan.Seed, ln,
		func(w int) string { return plan.Peers[w] }, 30*time.Second)
	if err != nil {
		return fmt.Errorf("node %d: wire: %w", v, err)
	}
	defer func() {
		for _, l := range links {
			l.Close()
		}
	}()
	ln.Close()

	// The per-node machine stream is derived exactly as the simulator
	// derives it; this is what makes the distributed election bit-equal.
	deg := g.Degree(v)
	var r rng.RNG
	r.Reseed(rng.New(plan.Seed).DeriveSeed(uint64(v)))
	st := sim.NewStepper(runner.Factory(v, deg, &r), v, deg, &r, nil)

	transport.RunNode(v, st, entry.Wire, links, g, plan.CongestBits, &remoteControl{link: ctl})

	o := outcomeMsg{Node: v, Halted: st.Halted()}
	if lr, ok := st.Machine().(sim.LeaderReporter); ok {
		o.Leader, o.ID = lr.LeaderInfo()
	}
	body, err = json.Marshal(o)
	if err != nil {
		return err
	}
	if err := writeFrame(ctl, transport.Frame{Type: transport.FrameOutcome, Body: body}); err != nil {
		return fmt.Errorf("node %d: outcome: %w", v, err)
	}
	return nil
}
