// Command lebench regenerates the paper's evaluation artifacts: every
// Table 1 cell (measured on the CONGEST simulator and compared to the
// paper's complexity formulas), the Figures 1-2 pumping-wheel
// impossibility series, and the design ablations indexed in DESIGN.md.
//
// Usage:
//
//	lebench -exp table1            # all Table 1 rows
//	lebench -exp figures           # pumping-wheel split-brain series
//	lebench -exp ablations         # X1-X4 design ablations
//	lebench -exp knowledge         # X4 knowledge ablation only
//	lebench -exp faults            # F1-F5 fault-injection resilience curves
//	lebench -exp sweeps            # table1 + knowledge + faults (the artifact cells)
//	lebench -exp scaling           # n=10^3..10^5 ramps under the estimate regime
//	lebench -exp all -quick        # everything, reduced sweep
//	lebench -exp table1 -parallel  # fan cells/trials over all CPUs
//	lebench -exp table1 -parallel -shards 8 -json BENCH_harness.json
//	lebench -exp scaling -quick -json BENCH_scaling.json   # CI smoke + cache demo
//
// -exp faults runs the adversary subsystem's resilience sweeps
// (internal/adversary): fault rate × protocol × graph family for message
// loss, crash-stop schedules, link churn, and delivery jitter, each as a
// degradation curve anchored at the fault-free cell. Fault-injected cells
// carry their adversary descriptor in the schema-v3 artifact, so benchdiff
// aligns and gates them like any other cell.
//
// -exp sweeps runs exactly the sweep-based experiments (Table 1, the X4
// knowledge ablation, and the fault-injection curves) — every cell that
// lands in the JSON artifact — and is what CI's bench-gate job executes
// before diffing the artifact against testdata/BENCH_baseline.json with
// cmd/benchdiff.
//
// -exp scaling is the estimate-regime counterpart of Table 1: size ramps
// to n = 10^5, where profiles come from the streaming spectral estimators
// instead of dense matrices. Cells run sequentially with per-cell wall
// timing and the rendering reports empirical scaling exponents plus
// profile-cache hit rates; -quick shrinks the matrix to one 100k-node
// expander cell run twice (the CI smoke, demonstrating the cache hit).
//
// -profile pins the spectral profile regime for every sweep cell: exact
// (dense matrices, the committed baselines), estimate (streaming, scales
// past dense sizes), or auto (the default: exact up to n = 256, estimate
// above). The resolved regime is part of each cell's identity in the
// schema-v4 artifact, so a regime switch diffs as added/removed cells.
//
// With -parallel, the sweep-based experiments (table1, knowledge, faults)
// fan their cells and per-cell trials out over a bounded worker pool;
// per-trial seeds are split deterministically from -seed, so the output
// is byte-identical to the sequential run. The figures series and the
// X1-X3 ablations are bespoke trial loops and always run sequentially.
// -json records every sweep cell executed during the run in a
// machine-readable artifact for cross-PR perf trajectory tracking
// (experiments that run no sweeps contribute no cells).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"anonlead/internal/harness"
	"anonlead/internal/spectral"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lebench:", err)
		os.Exit(1)
	}
}

// session carries the flag configuration plus the accumulated sweep
// results destined for the JSON artifact.
type session struct {
	quick    bool
	trials   int
	seed     uint64
	parallel bool
	profile  spectral.Mode
	orch     harness.Orchestrator
	jsonPath string

	specs []harness.CellSpec
	cells []harness.Cell
	start time.Time
}

// sweep runs a batch of cell specs through the configured engine and
// records the results for the artifact. The -profile regime is applied
// here, so one flag threads the canonical mode through every experiment's
// TrialOpts and into the artifact cell descriptors.
func (s *session) sweep(specs []harness.CellSpec) ([]harness.Cell, error) {
	for i := range specs {
		specs[i].Opts.ProfileMode = s.profile
	}
	var (
		cells []harness.Cell
		err   error
	)
	if s.parallel {
		cells, err = s.orch.RunSweep(specs)
	} else {
		cells, err = harness.RunSweepSequential(specs)
	}
	if err != nil {
		return nil, err
	}
	s.specs = append(s.specs, specs...)
	s.cells = append(s.cells, cells...)
	return cells, nil
}

func run() error {
	var (
		exp      = flag.String("exp", "all", "experiment: table1, figures, ablations, knowledge, faults, sweeps, scaling, all")
		quick    = flag.Bool("quick", false, "reduced sweeps for a fast pass")
		trials   = flag.Int("trials", 0, "trials per cell (0 = experiment default)")
		seed     = flag.Uint64("seed", 1, "root random seed")
		parallel = flag.Bool("parallel", false, "fan sweep cells and trials over a worker pool (table1 and knowledge; bit-identical to sequential)")
		shards   = flag.Int("shards", 0, "trial shards per cell for -parallel (0 = worker count)")
		workers  = flag.Int("workers", 0, "worker pool size for -parallel (0 = GOMAXPROCS)")
		jsonPath = flag.String("json", "", "write the machine-readable sweep artifact (e.g. BENCH_harness.json)")
		profile  = flag.String("profile", "auto", "spectral profile regime for sweep cells: exact, estimate, or auto (exact up to n=256, estimate above)")
	)
	flag.Parse()

	mode, err := spectral.ParseMode(*profile)
	if err != nil {
		return err
	}
	s := &session{
		quick:    *quick,
		trials:   *trials,
		seed:     *seed,
		parallel: *parallel,
		profile:  mode,
		orch:     harness.Orchestrator{Workers: *workers, Shards: *shards},
		jsonPath: *jsonPath,
		start:    time.Now(),
	}

	switch *exp {
	case "table1":
		err = table1(s)
	case "figures":
		err = figures(s)
	case "ablations":
		err = ablations(s)
	case "knowledge":
		err = knowledge(s)
	case "faults":
		err = faults(s)
	case "scaling":
		err = scaling(s)
	case "sweeps":
		for _, f := range []func(*session) error{table1, knowledge, faults} {
			if err = f(s); err != nil {
				break
			}
		}
	case "all":
		for _, f := range []func(*session) error{table1, figures, ablations, faults} {
			if err = f(s); err != nil {
				break
			}
		}
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	if err != nil {
		return err
	}
	if s.jsonPath != "" {
		if len(s.cells) == 0 {
			fmt.Fprintf(os.Stderr, "lebench: note: -exp %s ran no sweeps, so the artifact has no cells (table1 and knowledge populate it)\n", *exp)
		}
		// Record the engine the cells actually ran on: a sequential run is
		// one worker and one shard regardless of how the pool is sized.
		engine := s.orch
		if !s.parallel {
			engine = harness.Orchestrator{Workers: 1, Shards: 1}
		}
		artifact := harness.NewArtifact(engine, s.specs, s.cells, time.Since(s.start))
		if err := artifact.WriteFile(s.jsonPath); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d cells)\n", s.jsonPath, len(s.cells))
	}
	return nil
}

func pick(quick bool, full, reduced []int) []int {
	if quick {
		return reduced
	}
	return full
}

func pickTrials(override, def int) int {
	if override > 0 {
		return override
	}
	return def
}

// table1 regenerates the Table 1 rows: T1-a (IRE), T1-b (Gilbert-class),
// T1-c (flooding class), T1-d (revocable), plus the diameter-2
// clique-of-cliques cells motivated by the Chatterjee et al. chasm. All
// sweeps are expanded into one spec list so -parallel overlaps every cell.
//
// The -quick defaults were promoted once the orchestrator made larger
// sweeps affordable: 8 trials per cell (was 5) and one more size step per
// family (expanders to n=256, cycles to 96, complete to 128, diam2 to
// 129). CI's bench-gate runs this matrix, so the quick cells double as the
// regression-gate workload — changing them requires regenerating
// testdata/BENCH_baseline.json (make baseline).
func table1(s *session) error {
	trials := pickTrials(s.trials, 10)
	if s.quick {
		trials = pickTrials(s.trials, 8)
	}
	opts := harness.TrialOpts{Trials: trials, Seed: s.seed}
	type sweep struct {
		title  string
		proto  harness.Protocol
		family string
		sizes  []int
	}
	sweeps := []sweep{
		{"T1-a IRE (this work) on expanders", harness.ProtoIRE, "expander",
			pick(s.quick, []int{32, 64, 128, 256, 512}, []int{32, 64, 128, 256})},
		{"T1-a IRE (this work) on hypercubes", harness.ProtoIRE, "hypercube",
			pick(s.quick, []int{32, 64, 128, 256, 512}, []int{32, 64, 128, 256})},
		{"T1-a IRE (this work) on cycles", harness.ProtoIRE, "cycle",
			pick(s.quick, []int{16, 32, 64, 96, 128}, []int{16, 32, 64, 96})},
		{"T1-a IRE (this work) on complete graphs", harness.ProtoIRE, "complete",
			pick(s.quick, []int{32, 64, 128, 256}, []int{32, 64, 128})},
		{"T1-a IRE (this work) on diameter-2 clique-of-cliques", harness.ProtoIRE, "diam2",
			pick(s.quick, []int{33, 65, 129, 257}, []int{33, 65, 129})},
		{"T1-b Gilbert-class baseline on expanders", harness.ProtoWalkNotify, "expander",
			pick(s.quick, []int{32, 64, 128, 256, 512}, []int{32, 64, 128, 256})},
		{"T1-b Gilbert-class baseline on cycles", harness.ProtoWalkNotify, "cycle",
			pick(s.quick, []int{16, 32, 64, 96, 128}, []int{16, 32, 64, 96})},
		{"T1-c FloodMax (Kutten-class) on expanders", harness.ProtoFlood, "expander",
			pick(s.quick, []int{32, 64, 128, 256, 512}, []int{32, 64, 128, 256})},
		{"T1-c FloodMax (Kutten-class) on complete graphs", harness.ProtoFlood, "complete",
			pick(s.quick, []int{32, 64, 128, 256}, []int{32, 64, 128})},
		{"T1-c FloodMax (Kutten-class) on diameter-2 clique-of-cliques", harness.ProtoFlood, "diam2",
			pick(s.quick, []int{33, 65, 129, 257}, []int{33, 65, 129})},
	}

	// One flat spec list; remember each sweep's slice for rendering.
	var specs []harness.CellSpec
	bounds := make([][2]int, len(sweeps))
	for i, sw := range sweeps {
		lo := len(specs)
		specs = append(specs, harness.SweepSpecs(sw.proto, sw.family, sw.sizes, opts)...)
		bounds[i] = [2]int{lo, len(specs)}
	}
	cells, err := s.sweep(specs)
	if err != nil {
		return err
	}
	for i, sw := range sweeps {
		rows := harness.RowsFromCells(cells[bounds[i][0]:bounds[i][1]])
		fmt.Println(harness.RenderTable1(sw.title, rows))
	}
	return revocableRows(s)
}

// revocableRows regenerates T1-d: the revocable protocol at faithful
// parameters on tiny complete graphs (where the Theorem 3 polynomials are
// simulable) and calibrated on cycles.
func revocableRows(s *session) error {
	// Quick keeps 6 trials: below that the Wilson intervals of a full
	// success collapse (k/k -> 0/k) still overlap, so the benchdiff
	// success gate would be vacuous on these cells.
	trials := pickTrials(s.trials, 6)
	sizes := pick(s.quick, []int{3, 4, 6, 8}, []int{3, 4, 6})
	// The profile's exact i(G) selects the Theorem 3 schedule.
	opts := harness.TrialOpts{Trials: trials, Seed: s.seed, RevocableUseProfileIso: true}
	cells, err := s.sweep(harness.SweepSpecs(harness.ProtoRevocable, "complete", sizes, opts))
	if err != nil {
		return err
	}
	fmt.Println(harness.RenderTable1(
		"T1-d Revocable LE (this work, faithful Theorem 3 schedule) on complete graphs",
		harness.RowsFromCells(cells)))
	return nil
}

// figures regenerates the Figures 1-2 pumping-wheel series.
func figures(s *session) error {
	trials := pickTrials(s.trials, 20)
	witnesses := []int{1, 2, 4, 8}
	presumed := 12
	if s.quick {
		trials = pickTrials(s.trials, 8)
		witnesses = []int{1, 2, 4}
	}
	points, err := harness.SplitBrainExperiment(presumed, witnesses, trials, s.seed)
	if err != nil {
		return err
	}
	fmt.Println(harness.RenderSplitBrain(presumed, points))
	return nil
}

// ablations regenerates the X1-X4 design ablations.
func ablations(s *session) error {
	trials := pickTrials(s.trials, 10)
	if s.quick {
		trials = pickTrials(s.trials, 4)
	}

	w := harness.Workload{Family: "expander", N: 128}
	if s.quick {
		w.N = 64
	}
	xs := []int{1, 2, 4, 8, 16, 32}
	points, prof, err := harness.AblationCautious(w, xs, trials, s.seed)
	if err != nil {
		return err
	}
	fmt.Println(harness.RenderAblationCautious(w, prof, points))

	factors := []float64{0.25, 0.5, 1, 2, 4}
	wpoints, prof2, err := harness.AblationWalks(w, factors, trials, s.seed)
	if err != nil {
		return err
	}
	fmt.Println(harness.RenderAblationWalks(w, prof2, wpoints))

	dw := harness.Workload{Family: "cycle", N: 16}
	dpoints, err := harness.AblationDiffusion(dw, 0.5, 64, s.seed)
	if err != nil {
		return err
	}
	fmt.Println(harness.RenderAblationDiffusion(dw, dpoints))

	return knowledge(s)
}

// faults regenerates the F1-F5 fault-injection resilience curves: each
// sweep perturbs one protocol on one family with an escalating adversary
// ladder (message loss, crash-stop, link churn, delivery jitter, and the
// F5 crash-stop ladder against revocable LE with survivor-judged
// convergence) and charts success/cost degradation against the
// fault-free anchor. The quick matrix is part of the artifact cells CI's
// bench-gate diffs, so resilience regressions gate like any other metric.
func faults(s *session) error {
	trials := pickTrials(s.trials, 10)
	if s.quick {
		trials = pickTrials(s.trials, 6)
	}
	for _, f := range harness.FaultSweeps(s.quick) {
		cells, err := s.sweep(f.CellSpecs(trials, s.seed))
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderFaults(f, cells))
	}
	return nil
}

// scaling runs the estimate-regime size ramps (n = 10^3..10^5) with
// per-cell wall timing, prints empirical scaling exponents, and reports
// the profile-cache hit rate — the cache is what makes the second run of
// a repeated cell collapse to trial cost (the -quick smoke demonstrates
// exactly that with one 100k-node cell run twice).
func scaling(s *session) error {
	trials := pickTrials(s.trials, 2)
	if s.quick {
		trials = pickTrials(s.trials, 1)
	}
	opts := harness.TrialOpts{Trials: trials, Seed: s.seed, ProfileMode: s.profile}
	hits0, misses0 := harness.ProfileCacheStats()
	var all []harness.TimedCell
	for _, sw := range harness.ScalingSweeps(s.quick) {
		timed, specs, err := harness.RunScalingSweep(sw, opts)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderScaling(sw.Title, timed))
		s.specs = append(s.specs, specs...)
		s.cells = append(s.cells, harness.CellsOfTimed(timed)...)
		all = append(all, timed...)
	}
	hits, misses := harness.ProfileCacheStats()
	fmt.Printf("profile cache: %d hits, %d misses this run\n", hits-hits0, misses-misses0)
	if s.quick && len(all) == 2 && all[1].PrepSeconds > 0 {
		fmt.Printf("cache speedup: cell %.2fs -> %.2fs, prepare %.2fs -> %.3fs (%.0fx)\n",
			all[0].Seconds, all[1].Seconds,
			all[0].PrepSeconds, all[1].PrepSeconds,
			all[0].PrepSeconds/all[1].PrepSeconds)
	}
	fmt.Println()
	return nil
}

// knowledge regenerates the X4 knowledge ablation (after Dieudonné-Pelc)
// on an expander and on the diameter-2 clique-of-cliques.
func knowledge(s *session) error {
	trials := pickTrials(s.trials, 10)
	if s.quick {
		trials = pickTrials(s.trials, 6)
	}
	factors := []float64{0.25, 0.5, 1, 2, 4}
	// Quick used to shrink to expander/64 and diam2/33; the orchestrator
	// made the full-size cells cheap enough to keep everywhere.
	workloads := []harness.Workload{
		{Family: "expander", N: 128},
		{Family: "diam2", N: 65},
	}
	for _, w := range workloads {
		specs := harness.KnowledgeSpecs(w, factors, trials, s.seed)
		cells, err := s.sweep(specs)
		if err != nil {
			return err
		}
		points, prof := harness.KnowledgePoints(factors, specs, cells)
		fmt.Println(harness.RenderAblationKnowledge(w, prof, points))
	}
	return nil
}
