// Command lebench regenerates the paper's evaluation artifacts: every
// Table 1 cell (measured on the CONGEST simulator and compared to the
// paper's complexity formulas), the Figures 1-2 pumping-wheel
// impossibility series, and the design ablations indexed in DESIGN.md.
//
// Usage:
//
//	lebench -exp table1            # all Table 1 rows
//	lebench -exp figures           # pumping-wheel split-brain series
//	lebench -exp ablations         # X1-X4 design ablations
//	lebench -exp knowledge         # X4 knowledge ablation only
//	lebench -exp faults            # F1-F5 fault-injection resilience curves
//	lebench -exp sweeps            # table1 + knowledge + faults (the artifact cells)
//	lebench -exp scaling           # n=10^3..10^5 ramps under the estimate regime
//	lebench -exp epochs            # E1-E3 repeated-election epoch scenarios
//	lebench -exp all -quick        # everything, reduced sweep
//	lebench -exp table1 -parallel  # fan cells/trials over all CPUs
//	lebench -exp table1 -parallel -shards 8 -json BENCH_harness.json
//	lebench -exp scaling -quick -json BENCH_scaling.json   # CI smoke + cache demo
//
// -exp faults runs the adversary subsystem's resilience sweeps
// (internal/adversary): fault rate × protocol × graph family for message
// loss, crash-stop schedules, link churn, and delivery jitter, each as a
// degradation curve anchored at the fault-free cell. Fault-injected cells
// carry their adversary descriptor in the schema-v3 artifact, so benchdiff
// aligns and gates them like any other cell.
//
// -exp sweeps runs exactly the sweep-based experiments (Table 1, the X4
// knowledge ablation, and the fault-injection curves) — every cell that
// lands in the JSON artifact — and is what CI's bench-gate job executes
// before diffing the artifact against testdata/BENCH_baseline.json with
// cmd/benchdiff.
//
// -exp epochs runs the repeated-election scenarios (anonlead.RunEpochs
// through the harness): seed-chained epochs of elect → lead → leader
// crashes or revokes → re-elect on one persistent topology, swept over an
// adversary ladder that compares a static crash schedule against the
// traffic-adaptive adversary targeting the busiest node. Scenario cells
// carry their epoch descriptor and amortized per-epoch stats in the
// schema-v6 artifact (conventionally archived as BENCH_epochs.json, a
// separate artifact from the -exp sweeps matrix).
//
// -exp scaling is the estimate-regime counterpart of Table 1: size ramps
// to n = 10^5, where profiles come from the streaming spectral estimators
// instead of dense matrices. Cells run sequentially with per-cell wall
// timing and the rendering reports empirical scaling exponents plus
// profile-cache hit rates; -quick shrinks the matrix to one 100k-node
// expander cell run twice (the CI smoke, demonstrating the cache hit).
//
// -profile pins the spectral profile regime for every sweep cell: exact
// (dense matrices, the committed baselines), estimate (streaming, scales
// past dense sizes), or auto (the default: exact up to n = 256, estimate
// above). The resolved regime is part of each cell's identity in the
// schema-v5 artifact, so a regime switch diffs as added/removed cells.
//
// With -parallel, the sweep-based experiments (table1, knowledge, faults)
// fan their cells and per-cell trials out over a bounded worker pool;
// per-trial seeds are split deterministically from -seed, so the output
// is byte-identical to the sequential run. The figures series and the
// X1-X3 ablations are bespoke trial loops and always run sequentially.
// -json records every sweep cell executed during the run in a
// machine-readable artifact for cross-PR perf trajectory tracking
// (experiments that run no sweeps contribute no cells).
//
// -cells turns lebench into a distributed-sweep worker: it selects a
// subset of the -exp sweeps cell matrix by plan index (the order
// harness.SweepsPlan fixes, e.g. "0:40" or "3,7:12"), runs exactly those
// cells, and writes a partial artifact whose plan header records the
// covered indices. cmd/lesweep shards the matrix this way across worker
// processes and merges the partials with harness.MergeArtifacts; because
// per-trial seeds are pure functions of the root seed and the cell, the
// merged artifact is byte-identical to a single-process sweep.
// -strip-timings zeroes the artifact's wall-clock fields so two
// deterministic sweeps can be compared with cmp (what the CI dist-sweep
// job does).
//
// Observability (see docs/ARCHITECTURE.md "Observability"): -round-profile
// attaches deterministic per-round message/halt histograms to every sweep
// cell (the schema-v5 round_profile artifact section); -trace-out FILE
// writes the run's phase spans as Chrome trace-event JSON for
// chrome://tracing or Perfetto; -metrics-out FILE dumps the metrics
// registry as JSON (lereport -phases renders it as a phase-breakdown
// table); -debug-addr ADDR serves /metrics, /debug/pprof/* and
// /debug/progress while the run executes; -cpuprofile FILE records a CPU
// pprof profile. None of these perturb measurements: spans and metrics
// are wall-clock side channels, and round profiles are integer-exact and
// scheduler-independent.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"anonlead/internal/harness"
	"anonlead/internal/obs"
	"anonlead/internal/spectral"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lebench:", err)
		os.Exit(1)
	}
}

// session carries the flag configuration plus the accumulated sweep
// results destined for the JSON artifact.
type session struct {
	quick     bool
	trials    int
	seed      uint64
	parallel  bool
	profile   spectral.Mode
	orch      harness.Orchestrator
	jsonPath  string
	strip     bool
	roundProf bool

	specs []harness.CellSpec
	cells []harness.Cell
	// plan is the coverage header of a -cells partial run (nil for full
	// sweeps).
	plan  *harness.ArtifactPlan
	start time.Time
}

// sweep runs a batch of cell specs through the configured engine and
// records the results for the artifact. The -profile regime is applied
// here, so one flag threads the canonical mode through every experiment's
// TrialOpts and into the artifact cell descriptors.
func (s *session) sweep(specs []harness.CellSpec) ([]harness.Cell, error) {
	for i := range specs {
		specs[i].Opts.ProfileMode = s.profile
		if s.roundProf {
			specs[i].Opts.RoundProfile = true
		}
	}
	var (
		cells []harness.Cell
		err   error
	)
	if s.parallel {
		cells, err = s.orch.RunSweep(specs)
	} else {
		cells, err = harness.RunSweepSequential(specs)
	}
	if err != nil {
		return nil, err
	}
	s.specs = append(s.specs, specs...)
	s.cells = append(s.cells, cells...)
	return cells, nil
}

func run() error {
	var (
		exp        = flag.String("exp", "all", "experiment: table1, figures, ablations, knowledge, faults, sweeps, scaling, epochs, all")
		quick      = flag.Bool("quick", false, "reduced sweeps for a fast pass")
		trials     = flag.Int("trials", 0, "trials per cell (0 = experiment default)")
		seed       = flag.Uint64("seed", 1, "root random seed")
		parallel   = flag.Bool("parallel", false, "fan sweep cells and trials over a worker pool (table1 and knowledge; bit-identical to sequential)")
		shards     = flag.Int("shards", 0, "trial shards per cell for -parallel (0 = worker count)")
		workers    = flag.Int("workers", 0, "worker pool size for -parallel (0 = GOMAXPROCS)")
		jsonPath   = flag.String("json", "", "write the machine-readable sweep artifact (e.g. BENCH_harness.json)")
		profile    = flag.String("profile", "auto", "spectral profile regime for sweep cells: exact, estimate, or auto (exact up to n=256, estimate above)")
		cells      = flag.String("cells", "", "run only these -exp sweeps plan indices (e.g. \"0:40\" or \"3,7:12\") and write a partial artifact — the distributed-sweep worker mode")
		strip      = flag.Bool("strip-timings", false, "zero the artifact's wall-clock fields so deterministic sweeps compare with cmp")
		roundProf  = flag.Bool("round-profile", false, "attach deterministic per-round message/halt histograms to every sweep cell (schema-v5 round_profile section)")
		traceOut   = flag.String("trace-out", "", "write the run's phase spans as Chrome trace-event JSON (open in chrome://tracing or Perfetto)")
		metricsOut = flag.String("metrics-out", "", "write the metrics-registry snapshot as JSON (render with lereport -phases)")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /debug/pprof/* and /debug/progress on this address while the run executes (e.g. localhost:6060)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU pprof profile of the run")
	)
	flag.Parse()

	mode, err := spectral.ParseMode(*profile)
	if err != nil {
		return err
	}
	if *traceOut != "" || *metricsOut != "" || *debugAddr != "" {
		obs.Enable()
	}
	if *debugAddr != "" {
		addr, err := obs.Serve(*debugAddr, nil)
		if err != nil {
			return fmt.Errorf("debug endpoint: %w", err)
		}
		fmt.Fprintf(os.Stderr, "lebench: debug endpoint on http://%s\n", addr)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpu profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	s := &session{
		quick:     *quick,
		trials:    *trials,
		seed:      *seed,
		parallel:  *parallel,
		profile:   mode,
		orch:      harness.Orchestrator{Workers: *workers, Shards: *shards},
		jsonPath:  *jsonPath,
		strip:     *strip,
		roundProf: *roundProf,
		start:     time.Now(),
	}
	defer writeTelemetry(*traceOut, *metricsOut)

	if *cells != "" {
		// Worker mode: the cell selector is resolved against the sweeps
		// plan, so it only makes sense for the artifact matrix.
		if *exp != "sweeps" {
			return fmt.Errorf("-cells selects from the -exp sweeps plan; pass -exp sweeps (got %q)", *exp)
		}
		if err := runSelected(s, *cells); err != nil {
			return err
		}
		return writeArtifact(s, *exp)
	}

	switch *exp {
	case "table1":
		err = table1(s)
	case "figures":
		err = figures(s)
	case "ablations":
		err = ablations(s)
	case "knowledge":
		err = knowledge(s)
	case "faults":
		err = faults(s)
	case "scaling":
		err = scaling(s)
	case "epochs":
		err = epochs(s)
	case "sweeps":
		for _, f := range []func(*session) error{table1, knowledge, faults} {
			if err = f(s); err != nil {
				break
			}
		}
	case "all":
		for _, f := range []func(*session) error{table1, figures, ablations, faults} {
			if err = f(s); err != nil {
				break
			}
		}
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	if err != nil {
		return err
	}
	return writeArtifact(s, *exp)
}

// writeTelemetry flushes the run's telemetry side channels (a no-op when
// the flags are empty). Failures are warnings: telemetry must never turn
// a finished sweep into a failed run.
func writeTelemetry(traceOut, metricsOut string) {
	if traceOut != "" {
		if err := obs.WriteChromeTraceFile(traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "lebench: trace-out:", err)
		} else {
			fmt.Printf("wrote %s (%d spans)\n", traceOut, len(obs.SpanEvents()))
		}
	}
	if metricsOut != "" {
		if err := obs.WriteSnapshotFile(metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "lebench: metrics-out:", err)
		} else {
			fmt.Printf("wrote %s\n", metricsOut)
		}
	}
}

// writeArtifact emits the session's accumulated sweep cells as the JSON
// artifact (a no-op without -json).
func writeArtifact(s *session, exp string) error {
	if s.jsonPath == "" {
		return nil
	}
	if len(s.cells) == 0 {
		fmt.Fprintf(os.Stderr, "lebench: note: -exp %s ran no sweeps, so the artifact has no cells (table1 and knowledge populate it)\n", exp)
	}
	// Record the engine the cells actually ran on: a sequential run is
	// one worker and one shard regardless of how the pool is sized.
	engine := s.orch
	if !s.parallel {
		engine = harness.Orchestrator{Workers: 1, Shards: 1}
	}
	artifact := harness.NewArtifact(engine, s.specs, s.cells, time.Since(s.start))
	artifact.Plan = s.plan
	if s.strip {
		artifact = artifact.StripTimings()
	}
	if err := artifact.WriteFile(s.jsonPath); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d cells)\n", s.jsonPath, len(s.cells))
	return nil
}

// runSelected is the distributed-sweep worker path: resolve the -cells
// selector against the canonical sweeps plan, run exactly the selected
// cells (no rendering — the coordinator merges and reports), and record
// the covered plan indices for the artifact's plan header.
func runSelected(s *session, selector string) error {
	sel, err := harness.ParseCellSelector(selector)
	if err != nil {
		return err
	}
	plan := harness.SweepsPlan(s.quick, s.trials, s.seed)
	idxs, err := sel.Indices(plan.Len())
	if err != nil {
		return err
	}
	all := plan.Specs()
	specs := make([]harness.CellSpec, len(idxs))
	for j, idx := range idxs {
		specs[j] = all[idx]
	}
	if _, err := s.sweep(specs); err != nil {
		return err
	}
	s.plan = &harness.ArtifactPlan{Total: plan.Len(), Indices: idxs}
	fmt.Printf("ran %d of %d planned sweep cells (-cells %s)\n", len(idxs), plan.Len(), sel)
	return nil
}

func pickTrials(override, def int) int {
	if override > 0 {
		return override
	}
	return def
}

// table1 regenerates the Table 1 rows: T1-a (IRE), T1-b (Gilbert-class),
// T1-c (flooding class), T1-d (revocable), plus the diameter-2
// clique-of-cliques cells motivated by the Chatterjee et al. chasm. The
// matrix itself lives in harness.Table1Plan — the shared planner the
// distributed sweep shards by index — so the rendered tables and a
// worker's -cells subset can never drift apart. All sections are expanded
// into one spec list so -parallel overlaps every cell.
func table1(s *session) error {
	sections := harness.Table1Plan(s.quick, s.trials, s.seed)
	var specs []harness.CellSpec
	bounds := make([][2]int, len(sections))
	for i, sec := range sections {
		lo := len(specs)
		specs = append(specs, sec.Specs...)
		bounds[i] = [2]int{lo, len(specs)}
	}
	cells, err := s.sweep(specs)
	if err != nil {
		return err
	}
	for i, sec := range sections {
		rows := harness.RowsFromCells(cells[bounds[i][0]:bounds[i][1]])
		fmt.Println(harness.RenderTable1(sec.Title, rows))
	}
	return nil
}

// figures regenerates the Figures 1-2 pumping-wheel series.
func figures(s *session) error {
	trials := pickTrials(s.trials, 20)
	witnesses := []int{1, 2, 4, 8}
	presumed := 12
	if s.quick {
		trials = pickTrials(s.trials, 8)
		witnesses = []int{1, 2, 4}
	}
	points, err := harness.SplitBrainExperiment(presumed, witnesses, trials, s.seed)
	if err != nil {
		return err
	}
	fmt.Println(harness.RenderSplitBrain(presumed, points))
	return nil
}

// ablations regenerates the X1-X4 design ablations.
func ablations(s *session) error {
	trials := pickTrials(s.trials, 10)
	if s.quick {
		trials = pickTrials(s.trials, 4)
	}

	w := harness.Workload{Family: "expander", N: 128}
	if s.quick {
		w.N = 64
	}
	xs := []int{1, 2, 4, 8, 16, 32}
	points, prof, err := harness.AblationCautious(w, xs, trials, s.seed)
	if err != nil {
		return err
	}
	fmt.Println(harness.RenderAblationCautious(w, prof, points))

	factors := []float64{0.25, 0.5, 1, 2, 4}
	wpoints, prof2, err := harness.AblationWalks(w, factors, trials, s.seed)
	if err != nil {
		return err
	}
	fmt.Println(harness.RenderAblationWalks(w, prof2, wpoints))

	dw := harness.Workload{Family: "cycle", N: 16}
	dpoints, err := harness.AblationDiffusion(dw, 0.5, 64, s.seed)
	if err != nil {
		return err
	}
	fmt.Println(harness.RenderAblationDiffusion(dw, dpoints))

	return knowledge(s)
}

// faults regenerates the F1-F5 fault-injection resilience curves: each
// sweep perturbs one protocol on one family with an escalating adversary
// ladder (message loss, crash-stop, link churn, delivery jitter, and the
// F5 crash-stop ladder against revocable LE with survivor-judged
// convergence) and charts success/cost degradation against the
// fault-free anchor. The quick matrix is part of the artifact cells CI's
// bench-gate diffs, so resilience regressions gate like any other metric.
func faults(s *session) error {
	for _, sec := range harness.FaultsPlan(s.quick, s.trials, s.seed) {
		cells, err := s.sweep(sec.Specs)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderFaults(sec.Fault, cells))
	}
	return nil
}

// epochs runs the E1-E3 repeated-election scenarios: seed-chained epoch
// histories on one persistent topology, each sweep comparing the static
// and traffic-adaptive adversary rungs against the fault-free anchor. The
// matrix lives in harness.EpochsPlan — a separate experiment from the
// -exp sweeps artifact matrix, conventionally archived as
// BENCH_epochs.json (what `make epochs-smoke` does).
func epochs(s *session) error {
	for _, sec := range harness.EpochsPlan(s.quick, s.trials, s.seed).Sections {
		cells, err := s.sweep(sec.Specs)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderEpochs(sec.Epoch, cells))
	}
	return nil
}

// scaling runs the estimate-regime size ramps (n = 10^3..10^5) with
// per-cell wall timing, prints empirical scaling exponents, and reports
// the profile-cache hit rate — the cache is what makes the second run of
// a repeated cell collapse to trial cost (the -quick smoke demonstrates
// exactly that with one 100k-node cell run twice).
func scaling(s *session) error {
	trials := pickTrials(s.trials, 2)
	if s.quick {
		trials = pickTrials(s.trials, 1)
	}
	opts := harness.TrialOpts{Trials: trials, Seed: s.seed, ProfileMode: s.profile}
	hits0, misses0 := harness.ProfileCacheStats()
	var all []harness.TimedCell
	for _, sw := range harness.ScalingSweeps(s.quick) {
		timed, specs, err := harness.RunScalingSweep(sw, opts)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderScaling(sw.Title, timed))
		s.specs = append(s.specs, specs...)
		s.cells = append(s.cells, harness.CellsOfTimed(timed)...)
		all = append(all, timed...)
	}
	hits, misses := harness.ProfileCacheStats()
	fmt.Printf("profile cache: %d hits, %d misses this run\n", hits-hits0, misses-misses0)
	if s.quick && len(all) == 2 && all[1].PrepSeconds > 0 {
		fmt.Printf("cache speedup: cell %.2fs -> %.2fs, prepare %.2fs -> %.3fs (%.0fx)\n",
			all[0].Seconds, all[1].Seconds,
			all[0].PrepSeconds, all[1].PrepSeconds,
			all[0].PrepSeconds/all[1].PrepSeconds)
	}
	fmt.Println()
	return nil
}

// knowledge regenerates the X4 knowledge ablation (after Dieudonné-Pelc)
// on an expander and on the diameter-2 clique-of-cliques (the workloads
// and factors live in harness.KnowledgePlan, shared with the distributed
// sweep's cell matrix).
func knowledge(s *session) error {
	for _, sec := range harness.KnowledgePlan(s.quick, s.trials, s.seed) {
		cells, err := s.sweep(sec.Specs)
		if err != nil {
			return err
		}
		points, prof := harness.KnowledgePoints(sec.Factors, sec.Specs, cells)
		fmt.Println(harness.RenderAblationKnowledge(sec.Workload, prof, points))
	}
	return nil
}
