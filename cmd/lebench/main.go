// Command lebench regenerates the paper's evaluation artifacts: every
// Table 1 cell (measured on the CONGEST simulator and compared to the
// paper's complexity formulas), the Figures 1-2 pumping-wheel
// impossibility series, and the design ablations indexed in DESIGN.md.
//
// Usage:
//
//	lebench -exp table1            # all Table 1 rows
//	lebench -exp figures           # pumping-wheel split-brain series
//	lebench -exp ablations         # X1-X3 design ablations
//	lebench -exp all -quick        # everything, reduced sweep
package main

import (
	"flag"
	"fmt"
	"os"

	"anonlead/internal/harness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lebench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp    = flag.String("exp", "all", "experiment: table1, figures, ablations, all")
		quick  = flag.Bool("quick", false, "reduced sweeps for a fast pass")
		trials = flag.Int("trials", 0, "trials per cell (0 = experiment default)")
		seed   = flag.Uint64("seed", 1, "root random seed")
	)
	flag.Parse()

	switch *exp {
	case "table1":
		return table1(*quick, *trials, *seed)
	case "figures":
		return figures(*quick, *trials, *seed)
	case "ablations":
		return ablations(*quick, *trials, *seed)
	case "all":
		if err := table1(*quick, *trials, *seed); err != nil {
			return err
		}
		if err := figures(*quick, *trials, *seed); err != nil {
			return err
		}
		return ablations(*quick, *trials, *seed)
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
}

func pick(quick bool, full, reduced []int) []int {
	if quick {
		return reduced
	}
	return full
}

func pickTrials(override, def int) int {
	if override > 0 {
		return override
	}
	return def
}

// table1 regenerates the Table 1 rows: T1-a (IRE), T1-b (Gilbert-class),
// T1-c (flooding class), T1-d (revocable).
func table1(quick bool, trialsOverride int, seed uint64) error {
	trials := pickTrials(trialsOverride, 10)
	if quick {
		trials = pickTrials(trialsOverride, 5)
	}
	type sweep struct {
		title  string
		proto  harness.Protocol
		family string
		sizes  []int
	}
	sweeps := []sweep{
		{"T1-a IRE (this work) on expanders", harness.ProtoIRE, "expander",
			pick(quick, []int{32, 64, 128, 256, 512}, []int{32, 64, 128})},
		{"T1-a IRE (this work) on hypercubes", harness.ProtoIRE, "hypercube",
			pick(quick, []int{32, 64, 128, 256, 512}, []int{32, 64, 128})},
		{"T1-a IRE (this work) on cycles", harness.ProtoIRE, "cycle",
			pick(quick, []int{16, 32, 64, 96, 128}, []int{16, 32, 64})},
		{"T1-a IRE (this work) on complete graphs", harness.ProtoIRE, "complete",
			pick(quick, []int{32, 64, 128, 256}, []int{32, 64})},
		{"T1-b Gilbert-class baseline on expanders", harness.ProtoWalkNotify, "expander",
			pick(quick, []int{32, 64, 128, 256, 512}, []int{32, 64, 128})},
		{"T1-b Gilbert-class baseline on cycles", harness.ProtoWalkNotify, "cycle",
			pick(quick, []int{16, 32, 64, 96, 128}, []int{16, 32, 64})},
		{"T1-c FloodMax (Kutten-class) on expanders", harness.ProtoFlood, "expander",
			pick(quick, []int{32, 64, 128, 256, 512}, []int{32, 64, 128})},
		{"T1-c FloodMax (Kutten-class) on complete graphs", harness.ProtoFlood, "complete",
			pick(quick, []int{32, 64, 128, 256}, []int{32, 64})},
	}
	for _, s := range sweeps {
		rows, err := harness.Table1Sweep(s.proto, s.family, s.sizes, harness.TrialOpts{
			Trials: trials, Seed: seed,
		})
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderTable1(s.title, rows))
	}
	return revocableRows(quick, trialsOverride, seed)
}

// revocableRows regenerates T1-d: the revocable protocol at faithful
// parameters on tiny complete graphs (where the Theorem 3 polynomials are
// simulable) and calibrated on cycles.
func revocableRows(quick bool, trialsOverride int, seed uint64) error {
	trials := pickTrials(trialsOverride, 5)
	if quick {
		trials = pickTrials(trialsOverride, 2)
	}
	sweepSizes := pick(quick, []int{3, 4, 6, 8}, []int{3, 4})
	rows := make([]harness.Table1Row, 0, len(sweepSizes))
	for _, n := range sweepSizes {
		w := harness.Workload{Family: "complete", N: n}
		// The profile's exact i(G) selects the Theorem 3 schedule.
		c, err := harness.RunCell(harness.ProtoRevocable, w, harness.TrialOpts{
			Trials: trials, Seed: seed, RevocableUseProfileIso: true,
		})
		if err != nil {
			return err
		}
		rows = append(rows, harness.MakeTable1Row(harness.ProtoRevocable, c))
	}
	fmt.Println(harness.RenderTable1("T1-d Revocable LE (this work, faithful Theorem 3 schedule) on complete graphs", rows))
	return nil
}

// figures regenerates the Figures 1-2 pumping-wheel series.
func figures(quick bool, trialsOverride int, seed uint64) error {
	trials := pickTrials(trialsOverride, 20)
	witnesses := []int{1, 2, 4, 8}
	presumed := 12
	if quick {
		trials = pickTrials(trialsOverride, 8)
		witnesses = []int{1, 2, 4}
	}
	points, err := harness.SplitBrainExperiment(presumed, witnesses, trials, seed)
	if err != nil {
		return err
	}
	fmt.Println(harness.RenderSplitBrain(presumed, points))
	return nil
}

// ablations regenerates the X1-X3 design ablations.
func ablations(quick bool, trialsOverride int, seed uint64) error {
	trials := pickTrials(trialsOverride, 10)
	if quick {
		trials = pickTrials(trialsOverride, 4)
	}

	w := harness.Workload{Family: "expander", N: 128}
	if quick {
		w.N = 64
	}
	xs := []int{1, 2, 4, 8, 16, 32}
	points, prof, err := harness.AblationCautious(w, xs, trials, seed)
	if err != nil {
		return err
	}
	fmt.Println(harness.RenderAblationCautious(w, prof, points))

	factors := []float64{0.25, 0.5, 1, 2, 4}
	wpoints, prof2, err := harness.AblationWalks(w, factors, trials, seed)
	if err != nil {
		return err
	}
	fmt.Println(harness.RenderAblationWalks(w, prof2, wpoints))

	dw := harness.Workload{Family: "cycle", N: 16}
	dpoints, err := harness.AblationDiffusion(dw, 0.5, 64, seed)
	if err != nil {
		return err
	}
	fmt.Println(harness.RenderAblationDiffusion(dw, dpoints))
	return nil
}
