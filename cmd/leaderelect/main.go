// Command leaderelect runs one (or a batch of) leader elections on a
// chosen topology and protocol and reports leaders elected plus exact
// CONGEST cost accounting. It is built entirely on the public anonlead
// API: the protocol registry (-proto accepts anything in Protocols()),
// the Network.Run session surface, scheduler selection, deterministic
// fault injection, and streaming round observation.
//
// Usage:
//
//	leaderelect -graph expander -n 256 -proto ire -trials 10
//	leaderelect -graph complete -n 4 -proto revocable -iso 2
//	leaderelect -graph torus -n 64 -proto walknotify -scheduler actors
//	leaderelect -graph expander -n 64 -proto floodmax -loss 0.1 -trials 20
//	leaderelect -graph expander -n 128 -proto ire -observe 32
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"anonlead"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leaderelect:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		family    = flag.String("graph", "expander", "topology family: "+strings.Join(anonlead.Families(), ", "))
		n         = flag.Int("n", 64, "number of nodes")
		proto     = flag.String("proto", "ire", "protocol: "+strings.Join(anonlead.Protocols(), ", "))
		trials    = flag.Int("trials", 1, "number of independent elections")
		seed      = flag.Uint64("seed", 1, "root random seed (trial t runs at seed+t)")
		scheduler = flag.String("scheduler", "sequential", "execution engine: sequential, workerpool, actors (all bit-identical)")
		parallel  = flag.Bool("parallel", false, "shorthand for -scheduler workerpool")
		presumed  = flag.Int("presumed", 0, "misreported network size for the knowledge ablation (0 = truth)")
		c         = flag.Float64("c", 0, "analysis constant c override (0 = default)")
		walks     = flag.Int("x", 0, "IRE: walk-count override (0 = paper formula)")
		eps       = flag.Float64("eps", 0, "revocable: epsilon (0 = default 0.5)")
		iso       = flag.Float64("iso", 0, "revocable: known isoperimetric lower bound (0 = blind)")
		fMult     = flag.Float64("fmult", 0, "revocable: f(k) calibration multiplier (0 = 1)")
		rMult     = flag.Float64("rmult", 0, "revocable: r(k) calibration multiplier (0 = 1)")
		loss      = flag.Float64("loss", 0, "adversary: per-packet drop probability")
		crash     = flag.Float64("crash", 0, "adversary: fraction of nodes crash-stopping")
		crashBy   = flag.Int("crash-by", 16, "adversary: last round a sampled crash may fire")
		churn     = flag.Float64("churn", 0, "adversary: per-edge per-round down probability")
		churnKeep = flag.Bool("churn-keep", false, "adversary: preserve connectivity under churn")
		delayP    = flag.Float64("delay", 0, "adversary: probability a packet is delayed")
		delayMax  = flag.Int("delay-max", 2, "adversary: maximum extra rounds of delay")
		observe   = flag.Int("observe", 0, "print streaming round metrics every K rounds of the first trial (0 = off)")
	)
	flag.Parse()

	nw, err := anonlead.NewNetwork(*family, *n, *seed)
	if err != nil {
		return err
	}
	stats := nw.Stats()
	fmt.Printf("graph:    %s n=%d m=%d diameter=%d\n", *family, stats.N, stats.M, stats.Diameter)
	fmt.Printf("spectral: tmix=%d phi=%.4f iso=%.4f gap=%.5f\n",
		stats.MixingTime, stats.Conductance, stats.Isoperimetric, stats.SpectralGap)

	adv := anonlead.AdversarySpec{
		Loss:          *loss,
		CrashFraction: *crash,
		CrashBy:       *crashBy,
		Churn:         *churn,
		ChurnPreserve: *churnKeep,
		DelayProb:     *delayP,
		MaxDelay:      *delayMax,
	}
	if err := adv.Validate(); err != nil {
		return err
	}
	sched, err := parseScheduler(*scheduler, *parallel)
	if err != nil {
		return err
	}

	// ^C cancels the run cooperatively between simulated rounds.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var (
		success, multi, zero, unstable int
		msgs, bits, rounds, charged    float64
		dropped, delayed               float64
		crashed                        float64
	)
	for t := 0; t < *trials; t++ {
		opts := []anonlead.Option{
			anonlead.WithSeed(*seed + uint64(t)),
			anonlead.WithScheduler(sched),
			anonlead.WithAdversary(adv),
			anonlead.WithConstant(*c),
			anonlead.WithWalks(*walks),
			anonlead.WithEpsilon(*eps),
			anonlead.WithIsoperimetric(*iso),
			anonlead.WithCalibration(*fMult, *rMult),
		}
		if *presumed > 0 {
			opts = append(opts, anonlead.WithPresumedN(*presumed))
		}
		if *observe > 0 && t == 0 {
			every := *observe
			opts = append(opts, anonlead.WithObserver(func(ri anonlead.RoundInfo) {
				if ri.Round%every == 0 {
					fmt.Printf("  round %-6d halted=%-4d msgs=%-8d charged=%d\n",
						ri.Round, ri.Halted, ri.Metrics.Messages, ri.Metrics.ChargedRounds)
				}
			}))
		}
		out, err := nw.Run(ctx, *proto, opts...)
		if err != nil {
			if errors.Is(err, anonlead.ErrNotStabilized) && !adv.IsZero() {
				// A faulted revocable election that never stabilizes is a
				// measured outcome, not a CLI failure.
				unstable++
				accumulate(&msgs, &bits, &rounds, &charged, &dropped, &delayed, &crashed, out)
				continue
			}
			return err
		}
		if out.Unique {
			success++
		}
		if len(out.Leaders) > 1 {
			multi++
		}
		if len(out.Leaders) == 0 {
			zero++
		}
		accumulate(&msgs, &bits, &rounds, &charged, &dropped, &delayed, &crashed, out)
	}

	ft := float64(*trials)
	fmt.Printf("protocol: %s trials=%d scheduler=%s\n", *proto, *trials, sched)
	if desc := adv.Descriptor(); desc != "" {
		fmt.Printf("faults:   %s (dropped=%.1f delayed=%.1f crashed=%.1f per trial)\n",
			desc, dropped/ft, delayed/ft, crashed/ft)
	}
	fmt.Printf("success:  %d/%d unique leader (multi=%d zero=%d unstable=%d)\n",
		success, *trials, multi, zero, unstable)
	fmt.Printf("cost:     msgs=%.0f bits=%.0f rounds=%.0f charged=%.0f (per-trial means)\n",
		msgs/ft, bits/ft, rounds/ft, charged/ft)
	return nil
}

func accumulate(msgs, bits, rounds, charged, dropped, delayed, crashed *float64, out anonlead.Outcome) {
	*msgs += float64(out.Messages)
	*bits += float64(out.Bits)
	*rounds += float64(out.Rounds)
	*charged += float64(out.ChargedRounds)
	*dropped += float64(out.Dropped)
	*delayed += float64(out.Delayed)
	*crashed += float64(out.Crashed)
}

func parseScheduler(name string, parallel bool) (anonlead.Scheduler, error) {
	switch strings.ToLower(name) {
	case "", "sequential", "seq":
		if parallel {
			return anonlead.WorkerPool, nil
		}
		return anonlead.Sequential, nil
	case "workerpool", "pool", "parallel":
		return anonlead.WorkerPool, nil
	case "actors":
		return anonlead.Actors, nil
	default:
		return anonlead.Sequential, fmt.Errorf("unknown scheduler %q (sequential, workerpool, actors)", name)
	}
}
