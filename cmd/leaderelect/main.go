// Command leaderelect runs one (or a batch of) leader elections on a
// chosen topology and protocol and reports leaders elected plus exact
// CONGEST cost accounting.
//
// Usage:
//
//	leaderelect -graph expander -n 256 -proto ire -trials 10
//	leaderelect -graph complete -n 4 -proto revocable -iso 2
//	leaderelect -graph torus -n 64 -proto walknotify -seed 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"anonlead/internal/core"
	"anonlead/internal/graph"
	"anonlead/internal/harness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leaderelect:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		family   = flag.String("graph", "expander", "topology family: "+strings.Join(graph.FamilyNames(), ", "))
		n        = flag.Int("n", 64, "number of nodes")
		proto    = flag.String("proto", "ire", "protocol: ire, explicit, flood, allflood, walknotify, revocable")
		trials   = flag.Int("trials", 1, "number of independent elections")
		seed     = flag.Uint64("seed", 1, "root random seed")
		parallel = flag.Bool("parallel", false, "use the goroutine worker-pool scheduler")
		c        = flag.Float64("c", 0, "analysis constant c override (0 = default)")
		walks    = flag.Int("x", 0, "IRE: walk-count override (0 = paper formula)")
		eps      = flag.Float64("eps", 0, "revocable: epsilon (0 = default 0.5)")
		iso      = flag.Float64("iso", 0, "revocable: known isoperimetric lower bound (0 = blind)")
		fMult    = flag.Float64("fmult", 0, "revocable: f(k) calibration multiplier (0 = 1)")
		rMult    = flag.Float64("rmult", 0, "revocable: r(k) calibration multiplier (0 = 1)")
	)
	flag.Parse()

	opts := harness.TrialOpts{
		Trials:   *trials,
		Seed:     *seed,
		Parallel: *parallel,
		IRE:      core.IREConfig{C: *c, X: *walks},
		Revocable: core.RevocableConfig{
			Epsilon: *eps, Isoperimetric: *iso, FMult: *fMult, RMult: *rMult,
		},
	}
	cell, err := harness.RunCell(harness.Protocol(*proto), harness.Workload{Family: *family, N: *n}, opts)
	if err != nil {
		return err
	}
	prof := cell.Profile
	fmt.Printf("graph:    %s n=%d m=%d diameter=%d\n", *family, prof.N, prof.M, prof.Diameter)
	fmt.Printf("spectral: tmix=%d phi=%.4f iso=%.4f gap=%.5f\n",
		prof.MixingTime, prof.Conductance, prof.Isoperim, prof.SpectralGap)
	fmt.Printf("protocol: %s trials=%d\n", *proto, cell.Trials)
	fmt.Printf("success:  %d/%d unique leader (multi=%d zero=%d)\n",
		cell.Successes, cell.Trials, cell.MultiLeaders, cell.ZeroLeaders)
	fmt.Printf("cost:     msgs=%.0f bits=%.0f rounds=%.0f charged=%.0f (per-trial means)\n",
		cell.Messages, cell.Bits, cell.Rounds, cell.Charged)
	return nil
}
