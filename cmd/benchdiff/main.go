// Command benchdiff compares two BENCH_harness.json artifacts and
// classifies every aligned sweep cell's metrics as improved, unchanged, or
// regressed — the cross-PR regression gate the CI bench-gate job enforces.
//
// Usage:
//
//	benchdiff -base testdata/BENCH_baseline.json -head BENCH_harness.json
//	benchdiff -base old.json -head new.json -fail-on regressed
//	benchdiff -base old.json -head new.json -fail-on regressed,removed,drift
//	benchdiff -base old.json -head new.json -json report.json
//	benchdiff -base old.json -head new.json -rel-tol 0.1 -sigmas 2 -drift-tol 0.5
//	benchdiff -base old.json -head new.json -format csv > cells.csv
//
// The markdown summary goes to stdout (CI tees it into
// $GITHUB_STEP_SUMMARY); -format csv instead emits one row per (cell,
// metric) for spreadsheets and dashboards. -json additionally writes the
// machine-readable report. -fail-on takes a comma-separated list of
// conditions: with "regressed" the exit status is 1 when any aligned
// metric regressed, with "removed" when any baseline cell vanished from
// the head sweep — without that a PR could pass the gate by simply
// deleting the cells where a regression lives — and with "drift" when any
// cell's measured/predicted ratio (messages against the paper's message
// bound, rounds against its time bound, both persisted per cell) moved by
// more than -drift-tol relative to the baseline ratio. CI runs
// "regressed,removed", which is what turns the artifact from write-only
// telemetry into an enforced perf/complexity contract.
//
// Schema handling: v3 artifacts key fault-injected resilience cells by
// their adversary descriptor; v2 artifacts (no adversary identity) align
// as fault-free and diff normally against v3. Legacy v1 artifacts are
// still accepted — the comparison downgrades to means-only and the
// summary says so instead of erroring.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"anonlead/internal/trajectory"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process exit, so tests can drive the CLI.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: benchdiff -base BASE.json -head HEAD.json [flags]\n\n"+
			"Aligns the sweep cells of two bench artifacts by (protocol, family, n,\n"+
			"presumed_n, adversary) and classifies every metric improved/unchanged/\n"+
			"regressed with variance-aware thresholds: an effect must clear both -rel-tol\n"+
			"and -sigmas Welch standard errors (success rates compare by Wilson-interval\n"+
			"disjointness). Measured/predicted ratios (msgs_vs_pred, time_vs_pred) gate\n"+
			"separately: a ratio moving more than -drift-tol relative to its baseline is\n"+
			"flagged drifted. The markdown summary goes to stdout; -format csv instead\n"+
			"emits one row per (cell, metric) plus added/removed coverage rows.\n"+
			"-fail-on turns verdicts into exit status 1; CI runs \"regressed,removed\".\n\nFlags:\n")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, "\nExamples:\n"+
			"  benchdiff -base testdata/BENCH_baseline.json -head BENCH_harness.json\n"+
			"  benchdiff -base old.json -head new.json -fail-on regressed,removed,drift\n"+
			"  benchdiff -base old.json -head new.json -drift-tol 0.5 -json report.json\n"+
			"  benchdiff -base old.json -head new.json -format csv > cells.csv\n")
	}
	var (
		base     = fs.String("base", "", "baseline artifact (e.g. testdata/BENCH_baseline.json)")
		head     = fs.String("head", "", "candidate artifact (e.g. BENCH_harness.json)")
		jsonPath = fs.String("json", "", "also write the machine-readable report here")
		failOn   = fs.String("fail-on", "none", "comma-separated exit-1 conditions: none, regressed, removed, drift")
		relTol   = fs.Float64("rel-tol", 0, "minimum relative effect to call a change (0 = default 0.05)")
		sigmas   = fs.Float64("sigmas", 0, "minimum effect in Welch standard errors (0 = default 3)")
		driftTol = fs.Float64("drift-tol", 0, "minimum relative measured/predicted ratio change to call drift (0 = default 0.25)")
		format   = fs.String("format", "md", "stdout format: md (markdown summary) or csv (one row per cell metric)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *base == "" || *head == "" {
		fmt.Fprintln(stderr, "benchdiff: -base and -head are required")
		fs.Usage()
		return 2
	}
	if *format != "md" && *format != "csv" {
		fmt.Fprintf(stderr, "benchdiff: unknown -format %q (want md or csv)\n", *format)
		return 2
	}
	failRegressed, failRemoved, failDrift := false, false, false
	for _, cond := range strings.Split(*failOn, ",") {
		switch strings.TrimSpace(cond) {
		case "none", "":
		case "regressed":
			failRegressed = true
		case "removed":
			failRemoved = true
		case "drift":
			failDrift = true
		default:
			fmt.Fprintf(stderr, "benchdiff: unknown -fail-on condition %q (want none, regressed, removed, drift)\n", cond)
			return 2
		}
	}

	report, err := trajectory.DiffFiles(*base, *head,
		trajectory.Thresholds{RelTol: *relTol, Sigmas: *sigmas, DriftTol: *driftTol})
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	if *format == "csv" {
		out, err := report.CSV()
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		fmt.Fprint(stdout, out)
	} else {
		fmt.Fprint(stdout, report.Markdown())
	}
	if *jsonPath != "" {
		buf, err := report.JSON()
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintln(stderr, "benchdiff: write report:", err)
			return 2
		}
	}
	failed := false
	if failRegressed && report.HasRegressions() {
		fmt.Fprintf(stderr, "benchdiff: %d metric(s) regressed\n", report.Regressed)
		failed = true
	}
	if failRemoved && len(report.Removed) > 0 {
		if report.HeadPartial {
			// A partial head is a distributed-sweep worker's artifact:
			// baseline cells it lacks were never assigned to it, so failing
			// the removed gate would punish sharding, not a shrunk sweep.
			fmt.Fprintf(stderr, "benchdiff: %d baseline cell(s) missing from head, but head is a partial artifact — removed gate downgraded to a warning\n",
				len(report.Removed))
		} else {
			fmt.Fprintf(stderr, "benchdiff: %d baseline cell(s) missing from head (refresh the baseline if intentional)\n",
				len(report.Removed))
			failed = true
		}
	}
	if failDrift && report.HasDrift() {
		fmt.Fprintf(stderr, "benchdiff: %d measured/predicted ratio(s) drifted beyond tolerance\n",
			report.Drifted)
		failed = true
	}
	if failed {
		return 1
	}
	return 0
}
