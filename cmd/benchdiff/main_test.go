package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"anonlead/internal/harness"
)

// writeArtifact materializes an artifact in dir and returns its path.
func writeArtifact(t *testing.T, dir, name string, a harness.Artifact) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// sweepArtifact runs a real (tiny) orchestrated sweep and returns its
// artifact, optionally scaling every cost mean by factor to synthesize a
// regression or improvement.
func sweepArtifact(t *testing.T, factor float64) harness.Artifact {
	t.Helper()
	specs := []harness.CellSpec{
		{Protocol: harness.ProtoIRE, Workload: harness.Workload{Family: "complete", N: 16},
			Opts: harness.TrialOpts{Trials: 3, Seed: 11}},
		{Protocol: harness.ProtoFlood, Workload: harness.Workload{Family: "cycle", N: 12},
			Opts: harness.TrialOpts{Trials: 3, Seed: 11}},
	}
	o := harness.Orchestrator{Workers: 2}
	cells, err := o.RunSweep(specs)
	if err != nil {
		t.Fatal(err)
	}
	a := harness.NewArtifact(o, specs, cells, 0)
	if factor != 1 {
		for i := range a.Cells {
			c := &a.Cells[i]
			c.Messages *= factor
			c.Bits *= factor
			c.Rounds *= factor
			c.Charged *= factor
			for _, d := range []*harness.ArtifactDist{
				c.MessagesDist, c.BitsDist, c.RoundsDist, c.ChargedDist,
			} {
				d.Min *= factor
				d.Max *= factor
				d.P50 *= factor
				d.P90 *= factor
				d.P99 *= factor
			}
		}
	}
	return a
}

func TestBenchdiffIdenticalArtifactsExitZero(t *testing.T) {
	dir := t.TempDir()
	a := sweepArtifact(t, 1)
	base := writeArtifact(t, dir, "base.json", a)
	head := writeArtifact(t, dir, "head.json", a)
	var out, errOut bytes.Buffer
	code := run([]string{"-base", base, "-head", head, "-fail-on", "regressed"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d on identical artifacts; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "0 regressed") {
		t.Fatalf("summary missing clean verdict:\n%s", out.String())
	}
}

func TestBenchdiffRegressedArtifactExitNonZero(t *testing.T) {
	dir := t.TempDir()
	base := writeArtifact(t, dir, "base.json", sweepArtifact(t, 1))
	head := writeArtifact(t, dir, "head.json", sweepArtifact(t, 2)) // every cost doubled
	var out, errOut bytes.Buffer
	code := run([]string{"-base", base, "-head", head, "-fail-on", "regressed"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d on regressed artifact, want 1; stdout:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "🔴") {
		t.Fatalf("summary missing regression rows:\n%s", out.String())
	}
	// Without the gate the same diff reports but exits zero.
	code = run([]string{"-base", base, "-head", head}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d without -fail-on, want 0", code)
	}
}

func TestBenchdiffWritesJSONReport(t *testing.T) {
	dir := t.TempDir()
	base := writeArtifact(t, dir, "base.json", sweepArtifact(t, 1))
	head := writeArtifact(t, dir, "head.json", sweepArtifact(t, 2))
	reportPath := filepath.Join(dir, "report.json")
	var out, errOut bytes.Buffer
	if code := run([]string{"-base", base, "-head", head, "-json", reportPath}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d; stderr:\n%s", code, errOut.String())
	}
	buf, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"regressed"`, `"cells"`, `"base_schema"`} {
		if !strings.Contains(string(buf), want) {
			t.Fatalf("report missing %s:\n%s", want, buf)
		}
	}
}

func TestBenchdiffV1InputDowngradesNotErrors(t *testing.T) {
	dir := t.TempDir()
	v1 := harness.Artifact{
		Schema: harness.ArtifactSchemaV1,
		Cells: []harness.ArtifactCell{{
			Protocol: "ire", Family: "expander", N: 64,
			Trials: 5, Successes: 5,
			Messages: 1000, Bits: 2000, Rounds: 100, Charged: 120,
		}},
	}
	base := writeArtifact(t, dir, "base.json", v1)
	head := writeArtifact(t, dir, "head.json", v1)
	var out, errOut bytes.Buffer
	code := run([]string{"-base", base, "-head", head, "-fail-on", "regressed"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("v1 input errored (exit %d):\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "means-only comparison") {
		t.Fatalf("summary missing v1 downgrade note:\n%s", out.String())
	}
}

// TestBenchdiffRemovedCellsGate: with -fail-on removed, a head sweep
// missing baseline cells fails instead of silently passing with reduced
// coverage.
func TestBenchdiffRemovedCellsGate(t *testing.T) {
	dir := t.TempDir()
	full := sweepArtifact(t, 1)
	shrunk := full
	shrunk.Cells = full.Cells[:1]
	base := writeArtifact(t, dir, "base.json", full)
	head := writeArtifact(t, dir, "head.json", shrunk)
	var out, errOut bytes.Buffer
	if code := run([]string{"-base", base, "-head", head, "-fail-on", "regressed,removed"}, &out, &errOut); code != 1 {
		t.Fatalf("shrunk sweep passed the gate (exit %d)", code)
	}
	if !strings.Contains(errOut.String(), "missing from head") {
		t.Fatalf("stderr missing removed-cell verdict:\n%s", errOut.String())
	}
	// Without the removed condition the same diff still exits zero.
	if code := run([]string{"-base", base, "-head", head, "-fail-on", "regressed"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d with -fail-on regressed only, want 0", code)
	}
}

func TestBenchdiffUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-base", "x.json"}, &out, &errOut); code != 2 {
		t.Fatalf("missing -head accepted (exit %d)", code)
	}
	if code := run([]string{"-base", "x.json", "-head", "y.json", "-fail-on", "sometimes"}, &out, &errOut); code != 2 {
		t.Fatalf("bad -fail-on accepted (exit %d)", code)
	}
	if code := run([]string{"-base", "/nonexistent.json", "-head", "/nonexistent.json"}, &out, &errOut); code != 2 {
		t.Fatalf("missing file accepted (exit %d)", code)
	}
}

// TestBenchdiffCheckedInBaseline sanity-checks the committed baseline
// artifact: it must parse as schema v2 with distributions so the CI gate
// runs the variance-aware path.
func TestBenchdiffCheckedInBaseline(t *testing.T) {
	path := filepath.Join("..", "..", "testdata", "BENCH_baseline.json")
	a, err := harness.ReadArtifactFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schema != harness.ArtifactSchema {
		t.Fatalf("baseline schema %q, want %q", a.Schema, harness.ArtifactSchema)
	}
	if len(a.Cells) == 0 {
		t.Fatal("baseline has no cells")
	}
	for i, c := range a.Cells {
		if !c.HasDists() {
			t.Fatalf("baseline cell %d lacks distributions", i)
		}
	}
}
