package main

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"anonlead/internal/adversary"
	"anonlead/internal/harness"
)

// writeArtifact materializes an artifact in dir and returns its path.
func writeArtifact(t *testing.T, dir, name string, a harness.Artifact) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// sweepArtifact runs a real (tiny) orchestrated sweep and returns its
// artifact, optionally scaling every cost mean by factor to synthesize a
// regression or improvement.
func sweepArtifact(t *testing.T, factor float64) harness.Artifact {
	t.Helper()
	specs := []harness.CellSpec{
		{Protocol: harness.ProtoIRE, Workload: harness.Workload{Family: "complete", N: 16},
			Opts: harness.TrialOpts{Trials: 3, Seed: 11}},
		{Protocol: harness.ProtoFlood, Workload: harness.Workload{Family: "cycle", N: 12},
			Opts: harness.TrialOpts{Trials: 3, Seed: 11}},
	}
	o := harness.Orchestrator{Workers: 2}
	cells, err := o.RunSweep(specs)
	if err != nil {
		t.Fatal(err)
	}
	a := harness.NewArtifact(o, specs, cells, 0)
	if factor != 1 {
		for i := range a.Cells {
			c := &a.Cells[i]
			c.Messages *= factor
			c.Bits *= factor
			c.Rounds *= factor
			c.Charged *= factor
			for _, d := range []*harness.ArtifactDist{
				c.MessagesDist, c.BitsDist, c.RoundsDist, c.ChargedDist,
			} {
				d.Min *= factor
				d.Max *= factor
				d.P50 *= factor
				d.P90 *= factor
				d.P99 *= factor
			}
		}
	}
	return a
}

func TestBenchdiffIdenticalArtifactsExitZero(t *testing.T) {
	dir := t.TempDir()
	a := sweepArtifact(t, 1)
	base := writeArtifact(t, dir, "base.json", a)
	head := writeArtifact(t, dir, "head.json", a)
	var out, errOut bytes.Buffer
	code := run([]string{"-base", base, "-head", head, "-fail-on", "regressed"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d on identical artifacts; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "0 regressed") {
		t.Fatalf("summary missing clean verdict:\n%s", out.String())
	}
}

func TestBenchdiffRegressedArtifactExitNonZero(t *testing.T) {
	dir := t.TempDir()
	base := writeArtifact(t, dir, "base.json", sweepArtifact(t, 1))
	head := writeArtifact(t, dir, "head.json", sweepArtifact(t, 2)) // every cost doubled
	var out, errOut bytes.Buffer
	code := run([]string{"-base", base, "-head", head, "-fail-on", "regressed"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d on regressed artifact, want 1; stdout:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "🔴") {
		t.Fatalf("summary missing regression rows:\n%s", out.String())
	}
	// Without the gate the same diff reports but exits zero.
	code = run([]string{"-base", base, "-head", head}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d without -fail-on, want 0", code)
	}
}

func TestBenchdiffWritesJSONReport(t *testing.T) {
	dir := t.TempDir()
	base := writeArtifact(t, dir, "base.json", sweepArtifact(t, 1))
	head := writeArtifact(t, dir, "head.json", sweepArtifact(t, 2))
	reportPath := filepath.Join(dir, "report.json")
	var out, errOut bytes.Buffer
	if code := run([]string{"-base", base, "-head", head, "-json", reportPath}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d; stderr:\n%s", code, errOut.String())
	}
	buf, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"regressed"`, `"cells"`, `"base_schema"`} {
		if !strings.Contains(string(buf), want) {
			t.Fatalf("report missing %s:\n%s", want, buf)
		}
	}
}

func TestBenchdiffV1InputDowngradesNotErrors(t *testing.T) {
	dir := t.TempDir()
	v1 := harness.Artifact{
		Schema: harness.ArtifactSchemaV1,
		Cells: []harness.ArtifactCell{{
			Protocol: "ire", Family: "expander", N: 64,
			Trials: 5, Successes: 5,
			Messages: 1000, Bits: 2000, Rounds: 100, Charged: 120,
		}},
	}
	base := writeArtifact(t, dir, "base.json", v1)
	head := writeArtifact(t, dir, "head.json", v1)
	var out, errOut bytes.Buffer
	code := run([]string{"-base", base, "-head", head, "-fail-on", "regressed"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("v1 input errored (exit %d):\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "means-only comparison") {
		t.Fatalf("summary missing v1 downgrade note:\n%s", out.String())
	}
}

// TestBenchdiffRemovedCellsGate: with -fail-on removed, a head sweep
// missing baseline cells fails instead of silently passing with reduced
// coverage.
func TestBenchdiffRemovedCellsGate(t *testing.T) {
	dir := t.TempDir()
	full := sweepArtifact(t, 1)
	shrunk := full
	shrunk.Cells = full.Cells[:1]
	base := writeArtifact(t, dir, "base.json", full)
	head := writeArtifact(t, dir, "head.json", shrunk)
	var out, errOut bytes.Buffer
	if code := run([]string{"-base", base, "-head", head, "-fail-on", "regressed,removed"}, &out, &errOut); code != 1 {
		t.Fatalf("shrunk sweep passed the gate (exit %d)", code)
	}
	if !strings.Contains(errOut.String(), "missing from head") {
		t.Fatalf("stderr missing removed-cell verdict:\n%s", errOut.String())
	}
	// Without the removed condition the same diff still exits zero.
	if code := run([]string{"-base", base, "-head", head, "-fail-on", "regressed"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d with -fail-on regressed only, want 0", code)
	}
}

func TestBenchdiffUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-base", "x.json"}, &out, &errOut); code != 2 {
		t.Fatalf("missing -head accepted (exit %d)", code)
	}
	if code := run([]string{"-base", "x.json", "-head", "y.json", "-fail-on", "sometimes"}, &out, &errOut); code != 2 {
		t.Fatalf("bad -fail-on accepted (exit %d)", code)
	}
	if code := run([]string{"-base", "/nonexistent.json", "-head", "/nonexistent.json"}, &out, &errOut); code != 2 {
		t.Fatalf("missing file accepted (exit %d)", code)
	}
}

// TestBenchdiffUsageDocumentsGates: -h explains every gate and format so
// the CLI is self-documenting (not just the README/ROADMAP prose).
func TestBenchdiffUsageDocumentsGates(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-h"}, &out, &errOut); code != 2 {
		t.Fatalf("-h exit %d", code)
	}
	usage := errOut.String()
	for _, want := range []string{
		"-fail-on", "regressed", "removed", "drift",
		"-drift-tol", "msgs_vs_pred", "-format csv", "-rel-tol", "-sigmas",
		"Wilson", "Welch",
	} {
		if !strings.Contains(usage, want) {
			t.Fatalf("usage missing %q:\n%s", want, usage)
		}
	}
}

// TestBenchdiffCSVFormat: -format csv emits one parseable row per aligned
// (cell, metric) with the identity columns leading.
func TestBenchdiffCSVFormat(t *testing.T) {
	dir := t.TempDir()
	base := writeArtifact(t, dir, "base.json", sweepArtifact(t, 1))
	head := writeArtifact(t, dir, "head.json", sweepArtifact(t, 2))
	var out, errOut bytes.Buffer
	if code := run([]string{"-base", base, "-head", head, "-format", "csv"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d; stderr:\n%s", code, errOut.String())
	}
	records, err := csv.NewReader(strings.NewReader(out.String())).ReadAll()
	if err != nil {
		t.Fatalf("output is not CSV: %v\n%s", err, out.String())
	}
	if got := strings.Join(records[0], ","); !strings.HasPrefix(got, "protocol,family,n,presumed_n,adversary,metric") {
		t.Fatalf("header %q", got)
	}
	// 2 aligned cells × (4 cost + success + 2 drift ratios) metrics.
	if want := 1 + 2*7; len(records) != want {
		t.Fatalf("%d CSV rows, want %d:\n%s", len(records), want, out.String())
	}
	if !strings.Contains(out.String(), "regressed") {
		t.Fatalf("csv missing classified rows:\n%s", out.String())
	}
	// Rejects unknown formats.
	if code := run([]string{"-base", base, "-head", head, "-format", "xml"}, &out, &errOut); code != 2 {
		t.Fatalf("bad -format accepted (exit %d)", code)
	}
}

// TestBenchdiffDriftGate: scaling measured costs away from the persisted
// predictions trips -fail-on drift, and a widened -drift-tol clears it.
func TestBenchdiffDriftGate(t *testing.T) {
	dir := t.TempDir()
	base := writeArtifact(t, dir, "base.json", sweepArtifact(t, 1))
	head := writeArtifact(t, dir, "head.json", sweepArtifact(t, 2)) // ratio doubles
	var out, errOut bytes.Buffer
	code := run([]string{"-base", base, "-head", head, "-fail-on", "drift"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d on drifted ratios, want 1; stdout:\n%s", code, out.String())
	}
	if !strings.Contains(errOut.String(), "drifted beyond tolerance") {
		t.Fatalf("stderr missing drift verdict:\n%s", errOut.String())
	}
	if !strings.Contains(out.String(), "msgs_vs_pred") {
		t.Fatalf("summary missing drift rows:\n%s", out.String())
	}
	// The ratio moved 2x; tolerance above that passes.
	code = run([]string{"-base", base, "-head", head, "-fail-on", "drift", "-drift-tol", "1.5"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d with wide drift-tol, want 0; stderr:\n%s", code, errOut.String())
	}
	// Identical artifacts never drift.
	same := writeArtifact(t, dir, "same.json", sweepArtifact(t, 1))
	if code := run([]string{"-base", base, "-head", same, "-fail-on", "drift"}, &out, &errOut); code != 0 {
		t.Fatalf("identical artifacts drifted (exit %d)", code)
	}
}

// TestBenchdiffAlignsV2AgainstV3: a v2 baseline (no adversary identity)
// diffs against a v3 head without error — its cells align with the head's
// fault-free cells, and the head's fault-injected cells report as added.
func TestBenchdiffAlignsV2AgainstV3(t *testing.T) {
	dir := t.TempDir()
	v3 := faultySweepArtifact(t)
	v2 := harness.Artifact{Schema: harness.ArtifactSchemaV2, RootSeed: v3.RootSeed,
		Workers: v3.Workers, Shards: v3.Shards}
	for _, c := range v3.Cells {
		if c.Adversary == "" {
			v2.Cells = append(v2.Cells, c)
		}
	}
	if len(v2.Cells) == 0 || len(v2.Cells) == len(v3.Cells) {
		t.Fatalf("test wants a mix of fault-free and faulted cells, got %d/%d", len(v2.Cells), len(v3.Cells))
	}
	base := writeArtifact(t, dir, "base_v2.json", v2)
	head := writeArtifact(t, dir, "head_v3.json", v3)
	var out, errOut bytes.Buffer
	code := run([]string{"-base", base, "-head", head, "-fail-on", "regressed,removed"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("v2 base vs v3 head exited %d:\n%s\n%s", code, out.String(), errOut.String())
	}
	if strings.Contains(out.String(), "means-only comparison") {
		t.Fatalf("v2/v3 pair downgraded to means-only:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "added") {
		t.Fatalf("faulted head cells not reported as added:\n%s", out.String())
	}
	// And v3 against v3 aligns the faulted cells by descriptor.
	head2 := writeArtifact(t, dir, "head2_v3.json", v3)
	if code := run([]string{"-base", head, "-head", head2, "-fail-on", "regressed,removed"}, &out, &errOut); code != 0 {
		t.Fatalf("v3 self-diff exited %d:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "0 regressed") {
		t.Fatalf("v3 self-diff not clean:\n%s", out.String())
	}
}

// faultySweepArtifact runs a tiny sweep with one fault-injected cell.
func faultySweepArtifact(t *testing.T) harness.Artifact {
	t.Helper()
	specs := []harness.CellSpec{
		{Protocol: harness.ProtoIRE, Workload: harness.Workload{Family: "complete", N: 16},
			Opts: harness.TrialOpts{Trials: 3, Seed: 11}},
		{Protocol: harness.ProtoIRE, Workload: harness.Workload{Family: "complete", N: 16},
			Opts: harness.TrialOpts{Trials: 3, Seed: 11, Adversary: &adversary.Spec{Loss: 0.2}}},
	}
	o := harness.Orchestrator{Workers: 2}
	cells, err := o.RunSweep(specs)
	if err != nil {
		t.Fatal(err)
	}
	return harness.NewArtifact(o, specs, cells, 0)
}

// TestBenchdiffCheckedInBaseline sanity-checks the committed baseline
// artifact: it must parse as schema v2 with distributions so the CI gate
// runs the variance-aware path.
func TestBenchdiffCheckedInBaseline(t *testing.T) {
	path := filepath.Join("..", "..", "testdata", "BENCH_baseline.json")
	a, err := harness.ReadArtifactFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schema != harness.ArtifactSchema {
		t.Fatalf("baseline schema %q, want %q", a.Schema, harness.ArtifactSchema)
	}
	if len(a.Cells) == 0 {
		t.Fatal("baseline has no cells")
	}
	for i, c := range a.Cells {
		if !c.HasDists() {
			t.Fatalf("baseline cell %d lacks distributions", i)
		}
	}
}
