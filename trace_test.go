package anonlead

import (
	"context"
	"sync"
	"testing"
)

// collectingRecorder is a mutex-guarded TraceRecorder, the shape external
// callers build since the internal trace.Ring is not exported.
type collectingRecorder struct {
	mu     sync.Mutex
	events []TraceEvent
}

func (c *collectingRecorder) RecordTrace(e TraceEvent) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *collectingRecorder) byKind() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int)
	for _, e := range c.events {
		out[e.Kind]++
	}
	return out
}

// TestWithTraceStreamsProtocolEvents pins the public tracing path: an ire
// election run with WithTrace must surface the protocol's candidate and
// leader annotations, identically across schedulers, and tracing must not
// perturb the election itself.
func TestWithTraceStreamsProtocolEvents(t *testing.T) {
	for _, s := range []Scheduler{Sequential, WorkerPool, Actors} {
		nw, err := NewNetwork("expander", 24, 3)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := nw.Run(context.Background(), ProtoIRE, WithSeed(5), WithScheduler(s))
		if err != nil {
			t.Fatalf("scheduler %v untraced: %v", s, err)
		}
		rec := &collectingRecorder{}
		traced, err := nw.Run(context.Background(), ProtoIRE,
			WithSeed(5), WithScheduler(s), WithTrace(rec))
		if err != nil {
			t.Fatalf("scheduler %v traced: %v", s, err)
		}
		if traced.Messages != plain.Messages || traced.Rounds != plain.Rounds {
			t.Fatalf("scheduler %v: tracing perturbed the run: %d/%d msgs, %d/%d rounds",
				s, traced.Messages, plain.Messages, traced.Rounds, plain.Rounds)
		}
		kinds := rec.byKind()
		if kinds["candidate"] == 0 {
			t.Errorf("scheduler %v: no candidate events: %v", s, kinds)
		}
		if kinds["leader"] != 1 {
			t.Errorf("scheduler %v: %d leader events, want 1 (%v)", s, kinds["leader"], kinds)
		}
	}
}

// TestTraceFuncAdapter covers the func-to-recorder adapter.
func TestTraceFuncAdapter(t *testing.T) {
	nw, err := NewNetwork("cycle", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	n := 0
	_, err = nw.Run(context.Background(), ProtoIRE, WithSeed(2),
		WithTrace(TraceFunc(func(TraceEvent) { mu.Lock(); n++; mu.Unlock() })))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("TraceFunc recorder saw no events")
	}
}
