package anonlead

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"anonlead/internal/adversary"
	"anonlead/internal/baseline"
	"anonlead/internal/core"
	"anonlead/internal/sim"
	"anonlead/internal/spectral"
)

func TestProtocolsRegistry(t *testing.T) {
	want := []string{ProtoIRE, ProtoExplicit, ProtoRevocable, ProtoFloodMax, ProtoAllFlood, ProtoWalkNotify}
	if got := Protocols(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Protocols() = %v, want %v", got, want)
	}
	for _, name := range want {
		if ProtocolInfo(name) == "" {
			t.Fatalf("protocol %q has no description", name)
		}
	}
	nw, err := NewNetwork("complete", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Run(context.Background(), "nosuch"); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	// The legacy alias resolves to the canonical name.
	out, err := nw.Run(context.Background(), "flood", WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Protocol != ProtoFloodMax {
		t.Fatalf("alias resolved to %q, want %q", out.Protocol, ProtoFloodMax)
	}
}

// TestWrappersPinnedToRun pins the deprecated Elect* wrappers byte-for-byte
// against the unified Run path they delegate to.
func TestWrappersPinnedToRun(t *testing.T) {
	nw, err := NewNetwork("torus", 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	res, err := nw.Elect(WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	out, err := nw.Run(ctx, ProtoIRE, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, out.Result) {
		t.Fatalf("Elect diverged from Run:\n%+v\n%+v", res, out.Result)
	}

	eres, err := nw.ElectExplicit(WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	eout, err := nw.Run(ctx, ProtoExplicit, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	want := ExplicitResult{Result: eout.Result, LeaderID: eout.LeaderID,
		AllKnow: eout.AllKnow, Parents: eout.Parents, Depths: eout.Depths}
	if !reflect.DeepEqual(eres, want) {
		t.Fatalf("ElectExplicit diverged from Run:\n%+v\n%+v", eres, want)
	}

	small, err := NewNetwork("complete", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	iso := small.Stats().Isoperimetric
	rres, err := small.ElectRevocable(WithSeed(2), WithIsoperimetric(iso))
	if err != nil {
		t.Fatal(err)
	}
	rout, err := small.Run(ctx, ProtoRevocable, WithSeed(2), WithIsoperimetric(iso))
	if err != nil {
		t.Fatal(err)
	}
	rwant := RevocableResult{Result: rout.Result, Certificate: *rout.Certificate,
		FinalEstimate: rout.FinalEstimate}
	if !reflect.DeepEqual(rres, rwant) {
		t.Fatalf("ElectRevocable diverged from Run:\n%+v\n%+v", rres, rwant)
	}
}

// TestRunFaultInjectionMatchesInternal pins the public fault-injected Run
// path byte-for-byte against an independently assembled internal run: same
// graph, same internal/adversary spec built with the canonical seed
// derivation, same factory driven directly on the simulator.
func TestRunFaultInjectionMatchesInternal(t *testing.T) {
	nw, err := NewNetwork("expander", 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	spec := AdversarySpec{Loss: 0.15, CrashFraction: 0.2, CrashBy: 4}
	const seed = 11

	out, err := nw.Run(context.Background(), ProtoFloodMax, WithSeed(seed), WithAdversary(spec))
	if err != nil {
		t.Fatal(err)
	}

	// Independent reference path (the pre-registry harness code shape).
	ispec := adversary.Spec{Loss: 0.15, CrashFraction: 0.2, CrashBy: 4}
	adv, err := ispec.Build(nw.g, adversary.DeriveRunSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	prof, err := nw.profileMode(spectral.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	entry, _ := core.Lookup(ProtoFloodMax)
	runner, err := entry.Build(core.ProtoConfig{
		TrueN: nw.N(), N: nw.N(), Diam: prof.Diameter,
		MaxDelay: adv.MaxDelay(), Faulted: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := sim.New(sim.Config{Graph: nw.g, Seed: seed, Adversary: adv}, runner.Factory)
	defer ref.Close()
	rounds := ref.Run(runner.Budget)
	if !ref.AllHalted() {
		t.Fatal("reference run did not halt")
	}
	m := ref.Metrics()
	if out.Rounds != rounds || out.Messages != m.Messages || out.Bits != m.Bits ||
		out.Dropped != m.Dropped || out.Crashed != m.Crashes ||
		out.ChargedRounds != m.ChargedRounds {
		t.Fatalf("public fault-injected run diverged from internal reference:\npublic  %+v\nrounds=%d metrics=%+v", out.Result, rounds, m)
	}
	var leaders []int
	for v := 0; v < nw.N(); v++ {
		if !ref.Crashed(v) && ref.Machine(v).(*baseline.FloodMachine).Output().Leader {
			leaders = append(leaders, v)
		}
	}
	if !reflect.DeepEqual(out.Leaders, leaders) {
		t.Fatalf("leader sets diverged: public %v, internal %v", out.Leaders, leaders)
	}
}

// TestZeroAdversaryByteIdentical: a zero-rate adversary spec builds to no
// adversary at all, so the outcome is byte-identical to a plain run.
func TestZeroAdversaryByteIdentical(t *testing.T) {
	nw, err := NewNetwork("expander", 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	plain, err := nw.Run(ctx, ProtoIRE, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	zero, err := nw.Run(ctx, ProtoIRE, WithSeed(5), WithAdversary(AdversarySpec{}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, zero) {
		t.Fatalf("zero adversary perturbed the run:\n%+v\n%+v", plain.Result, zero.Result)
	}
}

// TestRunSchedulersByteIdentical sweeps all three public schedulers.
func TestRunSchedulersByteIdentical(t *testing.T) {
	nw, err := NewNetwork("torus", 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ref, err := nw.Run(ctx, ProtoIRE, WithSeed(4), WithScheduler(Sequential))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Scheduler{WorkerPool, Actors} {
		got, err := nw.Run(ctx, ProtoIRE, WithSeed(4), WithScheduler(s))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("scheduler %v diverged from sequential", s)
		}
	}
}

// TestRunObserver checks that the observer sees every executed round with
// monotone cumulative metrics ending at the final accounting.
func TestRunObserver(t *testing.T) {
	nw, err := NewNetwork("complete", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	var rounds []int
	var last Metrics
	out, err := nw.Run(context.Background(), ProtoFloodMax, WithSeed(2),
		WithObserver(func(ri RoundInfo) {
			rounds = append(rounds, ri.Round)
			if ri.Metrics.Messages < last.Messages {
				t.Errorf("messages regressed at round %d", ri.Round)
			}
			last = ri.Metrics
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != out.Rounds {
		t.Fatalf("observed %d rounds, ran %d", len(rounds), out.Rounds)
	}
	for i, r := range rounds {
		if r != i {
			t.Fatalf("round sequence broken at %d: %v", i, rounds)
		}
	}
	if last != out.Metrics {
		t.Fatalf("final observation %+v != outcome metrics %+v", last, out.Metrics)
	}
}

// TestRunContextCancel: a cancelled context stops the run between rounds
// with the context error surfaced and partial accounting preserved.
func TestRunContextCancel(t *testing.T) {
	nw, err := NewNetwork("complete", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := nw.Run(ctx, ProtoIRE, WithSeed(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	if out.Rounds != 0 {
		t.Fatalf("pre-cancelled run executed %d rounds", out.Rounds)
	}

	// Cancel mid-run via the observer's side channel.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	fired := 0
	out2, err := nw.Run(ctx2, ProtoIRE, WithSeed(1), WithObserver(func(RoundInfo) {
		fired++
		if fired == 3 {
			cancel2()
		}
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled mid-run, got %v", err)
	}
	if out2.Rounds != 3 {
		t.Fatalf("expected stop after 3 rounds, got %d", out2.Rounds)
	}
	if out2.Messages == 0 {
		t.Fatal("partial outcome lost its accounting")
	}
}

// TestWithPresumedN: misreporting the size changes the protocol's work on
// the same topology (the knowledge ablation as a first-class option).
func TestWithPresumedN(t *testing.T) {
	nw, err := NewNetwork("expander", 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	truth, err := nw.Run(ctx, ProtoIRE, WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := nw.Run(ctx, ProtoIRE, WithSeed(6), WithPresumedN(128))
	if err != nil {
		t.Fatal(err)
	}
	if truth.Rounds == skewed.Rounds && truth.Messages == skewed.Messages {
		t.Fatal("presumed size had no observable effect")
	}
}

// TestAdversarySpecParity guards the public mirror against drifting from
// the internal spec: descriptors and zero/validation semantics must agree.
func TestAdversarySpecParity(t *testing.T) {
	specs := []AdversarySpec{
		{},
		{Loss: 0.1},
		{CrashFraction: 0.25, CrashBy: 16},
		{Churn: 0.05, ChurnPreserve: true},
		{DelayProb: 0.5, MaxDelay: 3},
		{Loss: 0.1, CrashFraction: 0.25, CrashBy: 16, Churn: 0.05, DelayProb: 0.5, MaxDelay: 3},
	}
	for _, s := range specs {
		if got, want := s.Descriptor(), s.internal().Descriptor(); got != want {
			t.Fatalf("descriptor mismatch: %q vs %q", got, want)
		}
		if s.IsZero() != s.internal().IsZero() {
			t.Fatalf("IsZero mismatch for %+v", s)
		}
	}
	if err := (AdversarySpec{Loss: 2}).Validate(); err == nil {
		t.Fatal("invalid loss accepted")
	}
	// The mirrors must stay field-for-field identical: a new internal
	// field without a public counterpart would silently break conversion.
	pub := reflect.TypeOf(AdversarySpec{})
	internal := reflect.TypeOf(adversary.Spec{})
	if pub.NumField() != internal.NumField() {
		t.Fatalf("AdversarySpec has %d fields, internal spec %d — update the mirror",
			pub.NumField(), internal.NumField())
	}
	for i := 0; i < pub.NumField(); i++ {
		if pub.Field(i).Name != internal.Field(i).Name {
			t.Fatalf("field %d name mismatch: %s vs %s", i, pub.Field(i).Name, internal.Field(i).Name)
		}
	}
}

// TestMetricsMirrorParity guards the sim.Metrics <-> anonlead.Metrics
// mirror pair against drift: every simulator counter, set to a distinct
// sentinel, must survive the public round-trip used by the harness. A
// counter added to sim.Metrics without updating metricsFromSim (and the
// harness's inverse) would silently read as zero in every bench artifact.
func TestMetricsMirrorParity(t *testing.T) {
	simT := reflect.TypeOf(sim.Metrics{})
	pubT := reflect.TypeOf(Metrics{})
	if simT.NumField() != pubT.NumField() {
		t.Fatalf("sim.Metrics has %d fields, public Metrics %d — update the mirror",
			simT.NumField(), pubT.NumField())
	}
	var m sim.Metrics
	mv := reflect.ValueOf(&m).Elem()
	for i := 0; i < mv.NumField(); i++ {
		mv.Field(i).SetInt(int64(i + 1)) // distinct nonzero sentinels
	}
	pub := metricsFromSim(m)
	pv := reflect.ValueOf(pub)
	seen := map[int64]bool{}
	for i := 0; i < pv.NumField(); i++ {
		v := pv.Field(i).Int()
		if v == 0 || seen[v] {
			t.Fatalf("public Metrics field %s lost or duplicated its sentinel (%d): %+v",
				pubT.Field(i).Name, v, pub)
		}
		seen[v] = true
	}
}

// TestRevocableNotStabilized: the sentinel error carries partial metrics.
func TestRevocableNotStabilized(t *testing.T) {
	nw, err := NewNetwork("complete", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := nw.Run(context.Background(), ProtoRevocable, WithSeed(1), WithMaxRounds(10))
	if !errors.Is(err, ErrNotStabilized) {
		t.Fatalf("expected ErrNotStabilized, got %v", err)
	}
	if out.Rounds == 0 || out.Messages == 0 {
		t.Fatalf("partial outcome missing accounting: %+v", out.Result)
	}
}
