package anonlead

import (
	"context"
	"encoding/json"
	"testing"
)

// runEpochHistory executes one crash-recover epoch scenario and returns
// its outcome plus the canonical JSON encoding of the whole history.
func runEpochHistory(t *testing.T, opts ...Option) (EpochOutcome, []byte) {
	t.Helper()
	nw := mustNetwork(t, "complete", 8, 3)
	eo, err := nw.RunEpochs(context.Background(), ProtoFloodMax,
		append([]Option{WithSeed(42), WithEpochs(5)}, opts...)...)
	if err != nil {
		t.Fatalf("RunEpochs: %v", err)
	}
	raw, err := json.Marshal(eo)
	if err != nil {
		t.Fatal(err)
	}
	return eo, raw
}

// TestEpochChainDeterminism is the PR's acceptance criterion: a 5-epoch
// crash-recover history — five chained elections, each killing the
// elected leader for every later epoch — must be byte-identical across
// the Sequential, WorkerPool and Actors schedulers (orchestrator parity
// lives in internal/harness's epoch tests).
func TestEpochChainDeterminism(t *testing.T) {
	base, baseRaw := runEpochHistory(t)

	// The scenario must actually exercise the chain: every epoch elects,
	// each epoch's leader is fresh (its predecessors are dead), and seeds
	// genuinely change across epochs.
	if base.Elected != 5 || len(base.Dead) != 5 {
		t.Fatalf("history did not crash-recover 5 times: %+v", base)
	}
	seen := map[int]bool{}
	seeds := map[uint64]bool{}
	for _, r := range base.Epochs {
		if !r.Elected {
			t.Fatalf("epoch %d failed to elect: %+v", r.Epoch, r)
		}
		if seen[r.Leader] {
			t.Fatalf("epoch %d re-elected dead leader %d", r.Epoch, r.Leader)
		}
		seen[r.Leader] = true
		seeds[r.Seed] = true
		if r.Epoch > 0 && r.Crashed != r.Epoch {
			t.Fatalf("epoch %d saw %d crashes, want %d dead ex-leaders", r.Epoch, r.Crashed, r.Epoch)
		}
	}
	if len(seeds) != 5 {
		t.Fatalf("epoch seeds did not chain: %d distinct over 5 epochs", len(seeds))
	}
	if base.MeanRecover <= 0 {
		t.Fatalf("no recovery time measured: %+v", base)
	}

	for _, s := range []Scheduler{WorkerPool, Actors} {
		_, raw := runEpochHistory(t, WithScheduler(s))
		if string(raw) != string(baseRaw) {
			t.Errorf("scheduler %v history diverges from sequential:\n%s\nvs\n%s", s, raw, baseRaw)
		}
	}
	// And the chain is reproducible outright.
	_, again := runEpochHistory(t)
	if string(again) != string(baseRaw) {
		t.Error("re-running the same scenario produced a different history")
	}
}

// TestEpochRevokeKeepsEveryoneAlive: revoke mode chains re-elections
// without killing anyone — no dead set, no crashes, and with the seed
// chain intact the epochs still differ.
func TestEpochRevokeKeepsEveryoneAlive(t *testing.T) {
	eo, _ := runEpochHistory(t, WithEpochFault(EpochRevoke))
	if len(eo.Dead) != 0 {
		t.Fatalf("revoke mode killed %v", eo.Dead)
	}
	if eo.Elected != 5 {
		t.Fatalf("elected %d/5 epochs: %+v", eo.Elected, eo)
	}
	for _, r := range eo.Epochs {
		if r.Crashed != 0 {
			t.Fatalf("epoch %d crashed %d nodes under revoke", r.Epoch, r.Crashed)
		}
	}
	if eo.Epochs[0].Seed == eo.Epochs[1].Seed {
		t.Fatal("revoke epochs did not chain seeds")
	}
}

// TestEpochCarryChangesReElections: with knowledge carry the re-elections
// are told the surviving node count, so a presumed-n-sensitive protocol
// (ire) must diverge from the carry-less baseline after the first death.
func TestEpochCarryChangesReElections(t *testing.T) {
	run := func(carry bool) EpochOutcome {
		nw := mustNetwork(t, "complete", 8, 3)
		eo, err := nw.RunEpochs(context.Background(), ProtoIRE,
			WithSeed(9), WithEpochs(3), WithEpochCarry(carry))
		if err != nil {
			t.Fatalf("carry=%v: %v", carry, err)
		}
		return eo
	}
	plain, carried := run(false), run(true)
	if plain.Epochs[0] != carried.Epochs[0] {
		t.Fatalf("epoch 0 ran before any death; carry must not touch it:\n%+v\nvs\n%+v",
			plain.Epochs[0], carried.Epochs[0])
	}
	diverged := false
	for e := 1; e < len(plain.Epochs) && e < len(carried.Epochs); e++ {
		if plain.Epochs[e].Messages != carried.Epochs[e].Messages ||
			plain.Epochs[e].Rounds != carried.Epochs[e].Rounds {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("knowledge carry changed nothing about the re-elections")
	}
}

// TestEpochFailedEpochsAreDataNotErrors: a scenario whose later epochs
// cannot elect (everyone dead after the caller's adversary crashes the
// survivors) still returns the full history with the failures recorded.
func TestEpochFailedEpochsAreDataNotErrors(t *testing.T) {
	nw := mustNetwork(t, "complete", 4, 1)
	// Crash every node at round 0 from epoch 1 on: nobody left to elect.
	sched := map[int]int{0: 0, 1: 0, 2: 0, 3: 0}
	eo, err := nw.RunEpochs(context.Background(), ProtoFloodMax,
		WithSeed(5), WithEpochs(3), WithAdversary(AdversarySpec{CrashSchedule: sched}))
	if err != nil {
		t.Fatalf("dead-network epochs should be recorded, not returned: %v", err)
	}
	if len(eo.Epochs) != 3 || eo.Elected != 0 {
		t.Fatalf("want 3 recorded failures, got %+v", eo)
	}
}

// TestEpochsRejectTransportCrashMode: crash-mode scenarios inject dead
// leaders through the simulated adversary, which transports reject.
func TestEpochsRejectTransportCrashMode(t *testing.T) {
	nw := mustNetwork(t, "cycle", 4, 0)
	if _, err := nw.RunEpochs(context.Background(), ProtoFloodMax,
		WithEpochs(2), WithTransport(TransportChan)); err == nil {
		t.Fatal("crash-mode epochs over a transport should be rejected")
	}
}

// TestEpochContextCancellation: cancellation aborts the scenario and
// returns the partial history alongside the error.
func TestEpochContextCancellation(t *testing.T) {
	nw := mustNetwork(t, "complete", 8, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eo, err := nw.RunEpochs(ctx, ProtoFloodMax, WithSeed(1), WithEpochs(5))
	if err == nil {
		t.Fatal("cancelled scenario returned no error")
	}
	if len(eo.Epochs) != 1 {
		t.Fatalf("cancelled scenario recorded %d epochs, want the aborted first", len(eo.Epochs))
	}
}
