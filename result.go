package anonlead

import "anonlead/internal/sim"

// Result reports the outcome and cost of an election.
type Result struct {
	// Leaders lists the node indices that raised the leader flag. The
	// indices are simulation-side observability only: the nodes
	// themselves remain anonymous.
	Leaders []int
	// Unique reports whether exactly one leader was elected.
	Unique bool
	// Rounds is the number of synchronous rounds simulated.
	Rounds int
	// ChargedRounds is the CONGEST time: link traffic serialized into
	// O(log n)-bit slots.
	ChargedRounds int64
	// Messages is the number of point-to-point messages sent.
	Messages int64
	// Bits is the total number of payload bits sent.
	Bits int64
	// Dropped counts packets destroyed by a WithAdversary fault policy
	// (loss or link churn). Dropped packets still count in Messages, Bits
	// and CONGEST charging: the sender transmitted them. Always 0 on
	// fault-free runs.
	Dropped int64
	// Delayed counts packets the adversary deferred past their normal
	// next-round delivery. Always 0 on fault-free runs.
	Delayed int64
	// Crashed counts nodes crash-stopped by the adversary. Crashed nodes
	// are excluded from Leaders. Always 0 on fault-free runs.
	Crashed int
}

// LeaderCount returns the number of elected leaders.
func (r Result) LeaderCount() int { return len(r.Leaders) }

// Certificate is a revocable leader certificate: the leader's random ID
// compounded with the size estimate that was in force when it was chosen.
// Larger Estimate wins; ties break toward smaller ID.
type Certificate struct {
	ID       uint64
	Estimate uint64
}

// Less reports whether c loses to other under the paper's certificate
// order (other is a strictly better leader claim).
func (c Certificate) Less(other Certificate) bool {
	if c.Estimate != other.Estimate {
		return c.Estimate < other.Estimate
	}
	return c.ID > other.ID
}

// ExplicitResult reports an explicit election: the implicit outcome plus
// what every node learned and the announcement spanning tree.
type ExplicitResult struct {
	Result
	// LeaderID is the elected leader's random ID (0 if no leader).
	LeaderID uint64
	// AllKnow reports whether the announcement reached every node.
	AllKnow bool
	// Parents[v] is v's parent node in the leader-rooted BFS tree (-1 at
	// the leader and at unreached nodes).
	Parents []int
	// Depths[v] is v's hop distance from the leader in the tree.
	Depths []int
}

// RevocableResult reports a stabilized revocable election.
type RevocableResult struct {
	Result
	// Certificate is the network-wide agreed leader certificate.
	Certificate Certificate
	// FinalEstimate is the size estimate at stabilization.
	FinalEstimate uint64
}

// fillMetrics copies simulator accounting into a Result, including the
// fault counters, so fault-injected public runs are observable without
// the experiment harness.
func fillMetrics(r *Result, m sim.Metrics) {
	r.ChargedRounds = m.ChargedRounds
	r.Messages = m.Messages
	r.Bits = m.Bits
	r.Dropped = m.Dropped
	r.Delayed = m.Delayed
	r.Crashed = m.Crashes
}
