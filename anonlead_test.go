package anonlead

import (
	"testing"
)

func TestNewNetworkFamilies(t *testing.T) {
	for _, family := range Families() {
		nw, err := NewNetwork(family, 16, 1)
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		if nw.N() == 0 || nw.M() == 0 {
			t.Fatalf("%s: degenerate network", family)
		}
		stats := nw.Stats()
		if stats.MixingTime < 1 || stats.Conductance <= 0 || stats.Isoperimetric <= 0 {
			t.Fatalf("%s: degenerate stats %+v", family, stats)
		}
	}
}

func TestNewNetworkUnknownFamily(t *testing.T) {
	if _, err := NewNetwork("nosuch", 8, 1); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestNewNetworkFromEdges(t *testing.T) {
	nw, err := NewNetworkFromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if nw.N() != 4 || nw.M() != 4 {
		t.Fatalf("n=%d m=%d", nw.N(), nw.M())
	}
	if nw.Stats().Diameter != 2 {
		t.Fatalf("diameter %d", nw.Stats().Diameter)
	}
}

func TestNewNetworkFromEdgesRejectsDisconnected(t *testing.T) {
	if _, err := NewNetworkFromEdges(4, [][2]int{{0, 1}, {2, 3}}); err == nil {
		t.Fatal("disconnected edges accepted")
	}
}

func TestElectUnique(t *testing.T) {
	nw, err := NewNetwork("complete", 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	const trials = 10
	for s := uint64(0); s < trials; s++ {
		res, err := nw.Elect(WithSeed(s))
		if err != nil {
			t.Fatal(err)
		}
		if res.Unique {
			wins++
			if res.LeaderCount() != 1 {
				t.Fatal("Unique true but LeaderCount != 1")
			}
		}
		if res.Messages <= 0 || res.Rounds <= 0 || res.ChargedRounds <= 0 || res.Bits <= 0 {
			t.Fatalf("degenerate cost accounting: %+v", res)
		}
	}
	if wins < 8 {
		t.Fatalf("unique rate %d/%d", wins, trials)
	}
}

func TestElectDeterministic(t *testing.T) {
	nw, err := NewNetwork("torus", 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := nw.Elect(WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := nw.Elect(WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Leaders) != len(r2.Leaders) || r1.Messages != r2.Messages || r1.Rounds != r2.Rounds {
		t.Fatalf("same seed diverged: %+v vs %+v", r1, r2)
	}
	for i := range r1.Leaders {
		if r1.Leaders[i] != r2.Leaders[i] {
			t.Fatal("leaders differ")
		}
	}
}

func TestElectParallelMatchesSequential(t *testing.T) {
	nw, err := NewNetwork("torus", 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := nw.Elect(WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	par, err := nw.Elect(WithSeed(4), WithParallel(true))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Messages != par.Messages || len(seq.Leaders) != len(par.Leaders) {
		t.Fatalf("schedulers diverged: %+v vs %+v", seq, par)
	}
}

func TestElectOptionOverrides(t *testing.T) {
	nw, err := NewNetwork("complete", 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Heavier constant => more work.
	light, err := nw.Elect(WithSeed(3), WithConstant(1))
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := nw.Elect(WithSeed(3), WithConstant(6))
	if err != nil {
		t.Fatal(err)
	}
	if heavy.Messages <= light.Messages {
		t.Fatalf("constant override had no effect: %d vs %d", heavy.Messages, light.Messages)
	}
	// Explicit walk count.
	if _, err := nw.Elect(WithSeed(3), WithWalks(5)); err != nil {
		t.Fatal(err)
	}
	// Manual tmix/phi inputs (linear upper bounds are allowed).
	if _, err := nw.Elect(WithSeed(3), WithMixingTime(8), WithConductance(0.4)); err != nil {
		t.Fatal(err)
	}
	// Invalid conductance must surface as an error.
	if _, err := nw.Elect(WithSeed(3), WithConductance(2)); err == nil {
		t.Fatal("invalid conductance accepted")
	}
}

func TestElectRevocableStabilizes(t *testing.T) {
	nw, err := NewNetwork("complete", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.ElectRevocable(
		WithSeed(2),
		WithIsoperimetric(nw.Stats().Isoperimetric),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unique {
		t.Fatalf("revocable election not unique: %+v", res)
	}
	if res.Certificate.Estimate == 0 || res.Certificate.ID == 0 {
		t.Fatalf("empty certificate: %+v", res.Certificate)
	}
	if res.FinalEstimate < res.Certificate.Estimate {
		t.Fatal("final estimate below certificate estimate")
	}
}

func TestElectRevocableCalibrated(t *testing.T) {
	nw, err := NewNetwork("cycle", 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.ElectRevocable(
		WithSeed(5),
		WithIsoperimetric(nw.Stats().Isoperimetric),
		WithCalibration(0.5, 0.05),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unique {
		t.Fatalf("calibrated revocable election not unique: %+v", res)
	}
}

func TestElectRevocableMaxRounds(t *testing.T) {
	nw, err := NewNetwork("complete", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.ElectRevocable(WithSeed(1), WithMaxRounds(10)); err == nil {
		t.Fatal("expected stabilization failure with tiny round budget")
	}
}

func TestElectRevocableInvalidEpsilon(t *testing.T) {
	nw, err := NewNetwork("complete", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.ElectRevocable(WithSeed(1), WithEpsilon(2)); err == nil {
		t.Fatal("invalid epsilon accepted")
	}
}

func TestCertificateOrdering(t *testing.T) {
	a := Certificate{ID: 5, Estimate: 8}
	b := Certificate{ID: 3, Estimate: 8}
	c := Certificate{ID: 100, Estimate: 16}
	if !a.Less(b) {
		t.Fatal("same estimate: smaller ID should win")
	}
	if b.Less(a) {
		t.Fatal("ordering not antisymmetric")
	}
	if !a.Less(c) || !b.Less(c) {
		t.Fatal("larger estimate should win")
	}
}

func TestStatsConsistency(t *testing.T) {
	nw, err := NewNetwork("hypercube", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := nw.Stats()
	if s.N != 16 || s.M != 32 || s.Diameter != 4 {
		t.Fatalf("hypercube stats %+v", s)
	}
	if s.SpectralGap <= 0 || s.SpectralGap >= 1 {
		t.Fatalf("gap %v", s.SpectralGap)
	}
}

func TestElectExplicit(t *testing.T) {
	nw, err := NewNetwork("torus", 25, 1)
	if err != nil {
		t.Fatal(err)
	}
	for s := uint64(0); s < 5; s++ {
		res, err := nw.ElectExplicit(WithSeed(100 + s))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Unique {
			continue
		}
		if !res.AllKnow {
			t.Fatal("announcement did not reach every node")
		}
		if res.LeaderID == 0 {
			t.Fatal("leader ID missing")
		}
		leader := res.Leaders[0]
		if res.Parents[leader] != -1 || res.Depths[leader] != 0 {
			t.Fatalf("leader tree fields wrong: parent=%d depth=%d", res.Parents[leader], res.Depths[leader])
		}
		// Walking parents from any node reaches the leader.
		for v := 0; v < nw.N(); v++ {
			cur, hops := v, 0
			for cur != leader {
				cur = res.Parents[cur]
				if cur < 0 || hops > nw.N() {
					t.Fatalf("broken parent chain from %d", v)
				}
				hops++
			}
		}
		return
	}
	t.Fatal("no unique election across seeds")
}
