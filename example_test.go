package anonlead_test

import (
	"context"
	"fmt"

	"anonlead"
)

// Every protocol in the registry runs through the same Run call; the
// outcome carries leaders, uniqueness and the CONGEST cost accounting.
func ExampleNetwork_Run() {
	nw, err := anonlead.NewNetwork("complete", 16, 1)
	if err != nil {
		panic(err)
	}
	out, err := nw.Run(context.Background(), anonlead.ProtoIRE, anonlead.WithSeed(3))
	if err != nil {
		panic(err)
	}
	fmt.Println("unique:", out.Unique, "leaders:", out.LeaderCount())
	fmt.Println("positive costs:", out.Messages > 0 && out.Bits > 0 && out.ChargedRounds > 0)
	// Output:
	// unique: true leaders: 1
	// positive costs: true
}

// The explicit protocol adds per-protocol extras to the unified outcome:
// every node learns the leader and gets a parent pointer in a
// leader-rooted BFS spanning tree.
func ExampleNetwork_Run_explicit() {
	nw, err := anonlead.NewNetwork("torus", 25, 1)
	if err != nil {
		panic(err)
	}
	out, err := nw.Run(context.Background(), anonlead.ProtoExplicit, anonlead.WithSeed(100))
	if err != nil {
		panic(err)
	}
	leader := out.Leaders[0]
	fmt.Println("unique:", out.Unique, "all know:", out.AllKnow)
	fmt.Println("leader is tree root:", out.Parents[leader] == -1 && out.Depths[leader] == 0)
	// Output:
	// unique: true all know: true
	// leader is tree root: true
}

// Revocable election works without knowing the network size; the outcome
// carries the network-wide agreed leader certificate.
func ExampleNetwork_Run_revocable() {
	nw, err := anonlead.NewNetwork("complete", 4, 1)
	if err != nil {
		panic(err)
	}
	out, err := nw.Run(context.Background(), anonlead.ProtoRevocable,
		anonlead.WithSeed(2), anonlead.WithIsoperimetric(nw.Stats().Isoperimetric))
	if err != nil {
		panic(err)
	}
	fmt.Println("unique:", out.Unique)
	fmt.Println("certified:", out.Certificate != nil && out.Certificate.Estimate > 0)
	// Output:
	// unique: true
	// certified: true
}

// The promoted baselines are first-class registry entries.
func ExampleNetwork_Run_floodmax() {
	nw, err := anonlead.NewNetwork("expander", 64, 7)
	if err != nil {
		panic(err)
	}
	out, err := nw.Run(context.Background(), anonlead.ProtoFloodMax, anonlead.WithSeed(1))
	if err != nil {
		panic(err)
	}
	fmt.Println("unique:", out.Unique, "rounds bounded by diameter+5:", out.Rounds <= nw.Stats().Diameter+5)
	// Output:
	// unique: true rounds bounded by diameter+5: true
}

func ExampleNetwork_Run_walknotify() {
	nw, err := anonlead.NewNetwork("expander", 64, 7)
	if err != nil {
		panic(err)
	}
	out, err := nw.Run(context.Background(), anonlead.ProtoWalkNotify, anonlead.WithSeed(1))
	if err != nil {
		panic(err)
	}
	fmt.Println("unique:", out.Unique)
	// Output:
	// unique: true
}

// A fault-injected public run: the adversary is declared, deterministic,
// and its damage lands on the public Result counters.
func ExampleNetwork_Run_adversary() {
	nw, err := anonlead.NewNetwork("expander", 64, 7)
	if err != nil {
		panic(err)
	}
	spec := anonlead.AdversarySpec{CrashFraction: 0.25, CrashBy: 3}
	fmt.Println("descriptor:", spec.Descriptor())
	out, err := nw.Run(context.Background(), anonlead.ProtoFloodMax,
		anonlead.WithSeed(5), anonlead.WithAdversary(spec))
	if err != nil {
		panic(err)
	}
	fmt.Println("crashed nodes observed:", out.Crashed > 0)
	// Output:
	// descriptor: crash=0.25@3
	// crashed nodes observed: true
}

func ExampleProtocols() {
	for _, name := range anonlead.Protocols() {
		fmt.Println(name)
	}
	// Output:
	// ire
	// explicit
	// revocable
	// floodmax
	// allflood
	// walknotify
}
