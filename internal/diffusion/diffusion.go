// Package diffusion implements the potential-averaging process at the
// heart of the paper's Avg procedure (Algorithm 7): every node repeatedly
// replaces its potential Φ_v with
//
//	Φ_v ← Φ_v + Σ_{w∈N(v)} s·(Φ_w − Φ_v),
//
// where s is the sharing fraction (the paper uses s = 1/(2k^{1+ε}) for the
// estimate k). The update matrix S is symmetric and doubly stochastic for
// s ≤ 1/(2·Δ), so the process conserves total potential and converges to
// the uniform average at a rate governed by the chain conductance
// φ = i(G)·s (paper Section 5.3, Lemmas 3-4).
//
// The package provides an exact (numerical) evolution used by analysis
// tooling and tests — the protocol machines in internal/core implement the
// same update distributedly; the ablation experiments cross-check the two.
//
// See docs/ARCHITECTURE.md for where this sits in the paper-to-code map.
package diffusion

import (
	"fmt"
	"math"

	"anonlead/internal/graph"
)

// Process is an exact diffusion evolution over a graph. It is a small
// dense-state simulator: O(m) per step.
type Process struct {
	g     *graph.Graph
	share float64
	pot   []float64
	buf   []float64
	steps int
}

// New creates a process with the given sharing fraction and initial
// potentials (copied). It returns an error when the share is non-positive
// or large enough to break stochasticity (s·Δ > 1, at which point the
// update matrix has negative diagonal entries).
func New(g *graph.Graph, share float64, initial []float64) (*Process, error) {
	if len(initial) != g.N() {
		return nil, fmt.Errorf("diffusion: %d initial potentials for %d nodes", len(initial), g.N())
	}
	if share <= 0 {
		return nil, fmt.Errorf("diffusion: non-positive share %v", share)
	}
	if maxDeg := g.MaxDegree(); share*float64(maxDeg) > 1 {
		return nil, fmt.Errorf("diffusion: share %v too large for max degree %d", share, maxDeg)
	}
	p := &Process{
		g:     g,
		share: share,
		pot:   append([]float64(nil), initial...),
		buf:   make([]float64, g.N()),
	}
	return p, nil
}

// BlackInit returns the Algorithm 7 initial potentials: 1 for black nodes,
// 0 for white nodes.
func BlackInit(white []bool) []float64 {
	pot := make([]float64, len(white))
	for i, w := range white {
		if !w {
			pot[i] = 1
		}
	}
	return pot
}

// Steps returns the number of steps executed so far.
func (p *Process) Steps() int { return p.steps }

// Potential returns node v's current potential.
func (p *Process) Potential(v int) float64 { return p.pot[v] }

// Potentials returns a copy of the current potential vector.
func (p *Process) Potentials() []float64 {
	return append([]float64(nil), p.pot...)
}

// Sum returns the total potential (invariant across steps up to FP error).
func (p *Process) Sum() float64 {
	s := 0.0
	for _, v := range p.pot {
		s += v
	}
	return s
}

// Max returns the maximum node potential.
func (p *Process) Max() float64 {
	m := math.Inf(-1)
	for _, v := range p.pot {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum node potential.
func (p *Process) Min() float64 {
	m := math.Inf(1)
	for _, v := range p.pot {
		if v < m {
			m = v
		}
	}
	return m
}

// Spread returns Max - Min, the convergence residual.
func (p *Process) Spread() float64 { return p.Max() - p.Min() }

// Step advances one synchronous averaging exchange.
func (p *Process) Step() {
	n := p.g.N()
	for v := 0; v < n; v++ {
		acc := p.pot[v]
		deg := p.g.Degree(v)
		for q := 0; q < deg; q++ {
			acc += p.share * (p.pot[p.g.Neighbor(v, q)] - p.pot[v])
		}
		p.buf[v] = acc
	}
	p.pot, p.buf = p.buf, p.pot
	p.steps++
}

// Run advances steps exchanges.
func (p *Process) Run(steps int) {
	for i := 0; i < steps; i++ {
		p.Step()
	}
}

// RunUntilSpread advances until Spread() <= eps or maxSteps, returning the
// steps taken in this call.
func (p *Process) RunUntilSpread(eps float64, maxSteps int) int {
	taken := 0
	for taken < maxSteps && p.Spread() > eps {
		p.Step()
		taken++
	}
	return taken
}

// ConvergenceBound returns the Lemma 4 round bound (2/φ²)·ln(n/γ) for the
// process's chain conductance φ = i(G)·share, given the graph's
// isoperimetric number.
func ConvergenceBound(g *graph.Graph, share, iso, gamma float64) int {
	if iso <= 0 || gamma <= 0 {
		return math.MaxInt32
	}
	phi := iso * share
	r := 2 / (phi * phi) * math.Log(float64(g.N())/gamma)
	if r < 1 {
		return 1
	}
	if r > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(math.Ceil(r))
}
