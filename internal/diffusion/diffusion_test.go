package diffusion

import (
	"math"
	"testing"
	"testing/quick"

	"anonlead/internal/graph"
	"anonlead/internal/rng"
	"anonlead/internal/spectral"
)

func TestNewValidation(t *testing.T) {
	g := graph.Cycle(5)
	if _, err := New(g, 0.1, make([]float64, 4)); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := New(g, 0, make([]float64, 5)); err == nil {
		t.Fatal("zero share accepted")
	}
	if _, err := New(g, 0.6, make([]float64, 5)); err == nil {
		t.Fatal("share*deg > 1 accepted")
	}
	if _, err := New(g, 0.25, make([]float64, 5)); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestBlackInit(t *testing.T) {
	pot := BlackInit([]bool{true, false, false})
	want := []float64{0, 1, 1}
	for i := range want {
		if pot[i] != want[i] {
			t.Fatalf("pot %v", pot)
		}
	}
}

func TestConservation(t *testing.T) {
	r := rng.New(1)
	if err := quick.Check(func(seed uint64) bool {
		rr := r.Split(seed)
		g, err := graph.GNPConnected(12, 0.35, rr)
		if err != nil {
			return true
		}
		init := make([]float64, g.N())
		for i := range init {
			init[i] = rr.Float64() * 3
		}
		share := 0.9 / float64(g.MaxDegree())
		p, err := New(g, share, init)
		if err != nil {
			return false
		}
		before := p.Sum()
		p.Run(200)
		return math.Abs(p.Sum()-before) < 1e-9
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConvergesToAverage(t *testing.T) {
	g := graph.Cycle(10)
	init := make([]float64, 10)
	init[0] = 10 // all potential at one node
	p, err := New(g, 0.25, init)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(5000)
	for v := 0; v < 10; v++ {
		if math.Abs(p.Potential(v)-1) > 1e-6 {
			t.Fatalf("node %d potential %v not at average 1", v, p.Potential(v))
		}
	}
}

func TestSpreadMonotoneNonIncreasing(t *testing.T) {
	g := graph.Torus(4, 4)
	r := rng.New(5)
	init := make([]float64, g.N())
	for i := range init {
		init[i] = r.Float64()
	}
	p, err := New(g, 0.1, init)
	if err != nil {
		t.Fatal(err)
	}
	prev := p.Spread()
	for i := 0; i < 300; i++ {
		p.Step()
		cur := p.Spread()
		if cur > prev+1e-12 {
			t.Fatalf("spread increased at step %d: %v -> %v", i, prev, cur)
		}
		prev = cur
	}
}

func TestRunUntilSpread(t *testing.T) {
	g := graph.Complete(8)
	init := make([]float64, 8)
	init[0] = 8
	p, err := New(g, 0.05, init)
	if err != nil {
		t.Fatal(err)
	}
	steps := p.RunUntilSpread(1e-3, 100000)
	if steps == 0 || p.Spread() > 1e-3 {
		t.Fatalf("did not converge: steps=%d spread=%v", steps, p.Spread())
	}
}

func TestConvergenceBoundSufficient(t *testing.T) {
	// Lemma 4's bound must actually achieve the requested accuracy: run
	// the process for the bound and verify every node is within γ
	// relative error of the average.
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle8", graph.Cycle(8)},
		{"complete6", graph.Complete(6)},
		{"star6", graph.Star(6)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			iso := spectral.IsoperimetricExact(g)
			share := 0.5 / float64(g.MaxDegree())
			gamma := 0.01
			bound := ConvergenceBound(g, share, iso, gamma)
			r := rng.New(3)
			init := make([]float64, g.N())
			for i := range init {
				init[i] = r.Float64() * 2
			}
			p, err := New(g, share, init)
			if err != nil {
				t.Fatal(err)
			}
			avg := p.Sum() / float64(g.N())
			p.Run(bound)
			for v := 0; v < g.N(); v++ {
				if math.Abs(p.Potential(v)-avg) > gamma*avg+1e-9 {
					t.Fatalf("node %d at %v, avg %v, after Lemma 4 bound %d", v, p.Potential(v), avg, bound)
				}
			}
		})
	}
}

func TestConvergenceBoundDegenerate(t *testing.T) {
	g := graph.Cycle(4)
	if ConvergenceBound(g, 0.1, 0, 0.1) != math.MaxInt32 {
		t.Fatal("zero iso should be unbounded")
	}
	if ConvergenceBound(g, 0.1, 1, 0) != math.MaxInt32 {
		t.Fatal("zero gamma should be unbounded")
	}
}

func TestPotentialsIsCopy(t *testing.T) {
	g := graph.Path(3)
	p, err := New(g, 0.3, []float64{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	pots := p.Potentials()
	pots[0] = 99
	if p.Potential(0) == 99 {
		t.Fatal("Potentials leaked internal state")
	}
}

func TestLemma5ThresholdRegime(t *testing.T) {
	// Reproduce Lemma 5 numerically: k^{1+ε} ≥ 2n+1, one white node,
	// r ≥ (2/φ²)·ln(k^{2(1+ε)}) steps → no potential above
	// τ(k) = 1 − 1/(k^{1+ε}−1).
	g := graph.Cycle(6)
	n := g.N()
	eps := 0.5
	k := 8.0 // k^{1.5} = 22.6 >= 2n+1 = 13
	kp := math.Pow(k, 1+eps)
	share := 1 / (2 * kp)
	iso := spectral.IsoperimetricExact(g)
	white := make([]bool, n)
	white[2] = true
	p, err := New(g, share, BlackInit(white))
	if err != nil {
		t.Fatal(err)
	}
	steps := ConvergenceBound(g, share, iso, 1/kp)
	p.Run(steps)
	tau := 1 - 1/(kp-1)
	if p.Max() > tau {
		t.Fatalf("max potential %v above tau %v after %d steps", p.Max(), tau, steps)
	}
}

func TestLemma5LowEstimateFiresAlarm(t *testing.T) {
	// Converse sanity: with k far too small the diffusion is too short
	// and too weak, so some node stays above τ(k) (the alarm the
	// protocol relies on to reject low estimates). With no white nodes
	// potentials stay at 1 > τ trivially; test the interesting case of
	// one white node and a tiny k.
	g := graph.Cycle(24)
	eps := 0.5
	k := 2.0 // k^{1.5} ≈ 2.8 << 2n+1
	kp := math.Pow(k, 1+eps)
	share := 1 / (2 * kp)
	white := make([]bool, g.N())
	white[0] = true
	p, err := New(g, share, BlackInit(white))
	if err != nil {
		t.Fatal(err)
	}
	// The protocol's r(k) for this k is tiny; even a generous budget
	// cannot push every node below τ because the average itself,
	// (n-1)/n, exceeds τ(2) = 1 - 1/(kp-1) ≈ 0.45.
	p.Run(2000)
	tau := 1 - 1/(kp-1)
	if p.Max() <= tau {
		t.Fatalf("low-k alarm would not fire: max %v <= tau %v", p.Max(), tau)
	}
}
