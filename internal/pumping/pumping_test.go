package pumping

import (
	"testing"
	"testing/quick"
)

func TestLayoutArithmetic(t *testing.T) {
	l, err := NewLayout(10, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if l.BlockLen != 4*50+2*10 {
		t.Fatalf("block %d", l.BlockLen)
	}
	if l.WheelN != 3*l.BlockLen {
		t.Fatalf("wheel %d", l.WheelN)
	}
	if l.WitnessLen() != 2*50+2*10 {
		t.Fatalf("witness len %d", l.WitnessLen())
	}
	if l.SeparationLen() != 100 {
		t.Fatalf("separation %d", l.SeparationLen())
	}
}

func TestLayoutValidation(t *testing.T) {
	if _, err := NewLayout(2, 50, 1); err == nil {
		t.Fatal("n=2 accepted")
	}
	if _, err := NewLayout(10, 0, 1); err == nil {
		t.Fatal("T=0 accepted")
	}
	if _, err := NewLayout(10, 50, 0); err == nil {
		t.Fatal("0 witnesses accepted")
	}
}

func TestSegmentsGeometry(t *testing.T) {
	l, _ := NewLayout(8, 20, 2)
	for w := 0; w < 2; w++ {
		left, right := l.Segments(w)
		if left[1]-left[0] != 8 || right[1]-right[0] != 8 {
			t.Fatalf("segments not n-sized: %v %v", left, right)
		}
		if left[1] != right[0] {
			t.Fatal("segments not adjacent")
		}
		// Core sits in the middle of the witness: T flank on each side.
		if left[0] != l.WitnessStart(w)+l.T {
			t.Fatal("core not centered")
		}
		if right[1]+l.T != l.WitnessStart(w)+l.WitnessLen() {
			t.Fatal("right flank mismatch")
		}
	}
}

func TestWitnessOfRoundTrip(t *testing.T) {
	if err := quick.Check(func(nRaw, tRaw, wRaw uint8) bool {
		n := int(nRaw%20) + 3
		tt := int(tRaw%50) + 1
		wc := int(wRaw%5) + 1
		l, err := NewLayout(n, tt, wc)
		if err != nil {
			return false
		}
		for w := 0; w < wc; w++ {
			start := l.WitnessStart(w)
			// First and last witness nodes map back to w.
			if l.WitnessOf(start) != w || l.WitnessOf(start+l.WitnessLen()-1) != w {
				return false
			}
			// First separation node maps to none.
			if l.WitnessOf(start+l.WitnessLen()) != -1 {
				return false
			}
		}
		return l.WitnessOf(-1) == -1 && l.WitnessOf(l.WheelN) == -1
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWheelGraph(t *testing.T) {
	l, _ := NewLayout(6, 10, 2)
	g := l.Wheel()
	if g.N() != l.WheelN || g.M() != l.WheelN {
		t.Fatalf("wheel size n=%d m=%d want %d", g.N(), g.M(), l.WheelN)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeCounts(t *testing.T) {
	l, _ := NewLayout(5, 10, 2)
	// Witness 0 occupies [0, 30); its core [10, 20): segments [10,15) and
	// [15,20). Separation runs after each witness.
	leaders := []int{12, 17, l.WitnessStart(1) + 2, l.WitnessLen() + 5}
	res := Analyze(l, leaders)
	if res.NLeaders() != 4 || !res.MultiLeader() {
		t.Fatalf("leaders %d", res.NLeaders())
	}
	if res.LeadersPerWitness[0] != 2 {
		t.Fatalf("witness 0 leaders %d want 2", res.LeadersPerWitness[0])
	}
	if res.LeadersPerWitness[1] != 1 {
		t.Fatalf("witness 1 leaders %d want 1", res.LeadersPerWitness[1])
	}
	if res.Separation != 1 {
		t.Fatalf("separation leaders %d want 1", res.Separation)
	}
	if res.SplitWitnesses != 1 {
		t.Fatalf("split witnesses %d want 1 (nodes 12 and 17 straddle the core)", res.SplitWitnesses)
	}
}

func TestAnalyzeNoLeaders(t *testing.T) {
	l, _ := NewLayout(5, 10, 1)
	res := Analyze(l, nil)
	if res.NLeaders() != 0 || res.MultiLeader() || res.SplitWitnesses != 0 {
		t.Fatalf("unexpected analysis: %+v", res)
	}
}

func TestAnalyzeCopiesLeaders(t *testing.T) {
	l, _ := NewLayout(5, 10, 1)
	leaders := []int{1, 2}
	res := Analyze(l, leaders)
	leaders[0] = 99
	if res.Leaders[0] == 99 {
		t.Fatal("Analyze aliased caller slice")
	}
}
