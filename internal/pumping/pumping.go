// Package pumping implements the probabilistic pumping-wheel construction
// from the paper's impossibility proof (Section 5.1, Theorem 2, Figures
// 1-2) as an executable experiment.
//
// The theorem says: without knowledge of the network size, no algorithm
// solves Irrevocable Leader Election in any time bound T(n) with constant
// probability. The proof plants many disjoint "witnesses" — paths of
// length 2T(n)+2n whose middle 2n nodes form a core of two n-node
// segments — around a huge cycle C_N, separated by at least 2T(n) filler
// nodes so their executions are independent for T(n) rounds; some witness
// then replays a winning configuration in both segments, electing two
// leaders.
//
// The experiment here runs any terminating election protocol that was
// parameterized with a presumed size n on C_N with N ≫ n and measures how
// often the network ends up with more than one leader — the empirical
// content of the theorem.
//
// See docs/ARCHITECTURE.md for where this sits in the paper-to-code map.
package pumping

import (
	"fmt"

	"anonlead/internal/graph"
)

// Layout describes the witness geometry of a pumping wheel (Figure 1).
type Layout struct {
	// PresumedN is the n the protocol believes in.
	PresumedN int
	// T is the protocol's running time T(n) in rounds.
	T int
	// Witnesses is the number of planted witnesses.
	Witnesses int
	// BlockLen is the length of one witness block: a witness (2T+2n
	// nodes) plus 2T separation nodes.
	BlockLen int
	// WheelN is the total cycle size N = Witnesses · BlockLen.
	WheelN int
}

// NewLayout computes the wheel geometry for a protocol that presumes n
// nodes and runs T rounds, planting the given number of witnesses. It
// mirrors the proof's N = multiple of (4T+2n): each block is one witness
// of 2T+2n nodes followed by 2T separation nodes.
func NewLayout(presumedN, t, witnesses int) (Layout, error) {
	var l Layout
	if presumedN < 3 {
		return l, fmt.Errorf("pumping: presumed n must be >= 3, got %d", presumedN)
	}
	if t < 1 {
		return l, fmt.Errorf("pumping: T must be >= 1, got %d", t)
	}
	if witnesses < 1 {
		return l, fmt.Errorf("pumping: witnesses must be >= 1, got %d", witnesses)
	}
	l.PresumedN = presumedN
	l.T = t
	l.Witnesses = witnesses
	l.BlockLen = 4*t + 2*presumedN
	l.WheelN = witnesses * l.BlockLen
	return l, nil
}

// Wheel returns the cycle C_N for the layout.
func (l Layout) Wheel() *graph.Graph { return graph.Cycle(l.WheelN) }

// WitnessStart returns the first node index of witness w (its left
// T-node flank).
func (l Layout) WitnessStart(w int) int { return w * l.BlockLen }

// WitnessLen returns the node count of one witness: 2T + 2n.
func (l Layout) WitnessLen() int { return 2*l.T + 2*l.PresumedN }

// CoreStart returns the first node index of witness w's core (the 2n
// middle nodes).
func (l Layout) CoreStart(w int) int { return l.WitnessStart(w) + l.T }

// Segments returns the node ranges [lo, hi) of the two n-node segments of
// witness w's core (Figure 1).
func (l Layout) Segments(w int) (left, right [2]int) {
	cs := l.CoreStart(w)
	left = [2]int{cs, cs + l.PresumedN}
	right = [2]int{cs + l.PresumedN, cs + 2*l.PresumedN}
	return left, right
}

// SeparationLen returns the filler length between consecutive witnesses.
func (l Layout) SeparationLen() int { return 2 * l.T }

// WitnessOf returns the witness index containing node v, or -1 if v lies
// in a separation run.
func (l Layout) WitnessOf(v int) int {
	if v < 0 || v >= l.WheelN {
		return -1
	}
	w := v / l.BlockLen
	if v-l.WitnessStart(w) < l.WitnessLen() {
		return w
	}
	return -1
}

// Result summarizes one pumping-wheel trial.
type Result struct {
	Layout Layout
	// Leaders lists the node indices that raised the leader flag.
	Leaders []int
	// LeadersPerWitness[w] counts leaders inside witness w (including
	// flanks); leaders in separation runs are counted in Separation.
	LeadersPerWitness []int
	Separation        int
	// SplitWitnesses counts witnesses whose core segments both contain a
	// leader — the proof's "two leaders in one witness" event.
	SplitWitnesses int
}

// NLeaders returns the total number of leaders.
func (r Result) NLeaders() int { return len(r.Leaders) }

// MultiLeader reports whether the election violated uniqueness.
func (r Result) MultiLeader() bool { return len(r.Leaders) > 1 }

// Analyze maps elected leader node indices onto the witness geometry.
func Analyze(l Layout, leaders []int) Result {
	res := Result{
		Layout:            l,
		Leaders:           append([]int(nil), leaders...),
		LeadersPerWitness: make([]int, l.Witnesses),
	}
	for _, v := range leaders {
		w := l.WitnessOf(v)
		if w < 0 {
			res.Separation++
			continue
		}
		res.LeadersPerWitness[w]++
	}
	for w := 0; w < l.Witnesses; w++ {
		left, right := l.Segments(w)
		var inLeft, inRight bool
		for _, v := range leaders {
			if v >= left[0] && v < left[1] {
				inLeft = true
			}
			if v >= right[0] && v < right[1] {
				inRight = true
			}
		}
		if inLeft && inRight {
			res.SplitWitnesses++
		}
	}
	return res
}
