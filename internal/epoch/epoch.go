// Package epoch is the repeated-election scenario layer over
// anonlead.RunEpochs: a declarative Opts the sweep planner can persist,
// plus the per-cell statistics the bench artifacts record (schema v6).
//
// The engine itself — seed chaining, dead-leader injection, knowledge
// carry — lives in the root package next to Run; this package names
// scenarios canonically (cell identity) and folds per-trial epoch
// histories into artifact-ready aggregates.
package epoch

import (
	"fmt"
	"strings"

	"anonlead"
)

// Opts declares a repeated-election scenario: how many chained epochs,
// how the leader is removed between them, and whether knowledge carries.
// The zero value means "no scenario" (plain single elections).
type Opts struct {
	// Epochs is the number of chained elections per trial.
	Epochs int `json:"epochs"`
	// Revoke selects leader step-down instead of the default crash-stop.
	Revoke bool `json:"revoke,omitempty"`
	// Carry tells re-elections the surviving node count (knowledge carry).
	Carry bool `json:"carry,omitempty"`
}

// IsZero reports whether no scenario is configured.
func (o Opts) IsZero() bool { return o == Opts{} }

// Validate rejects nonsensical scenarios.
func (o Opts) Validate() error {
	if o.Epochs < 1 {
		return fmt.Errorf("epoch: scenario needs at least 1 epoch, got %d", o.Epochs)
	}
	if o.Revoke && o.Carry {
		return fmt.Errorf("epoch: carry has no effect under revoke (nobody dies)")
	}
	return nil
}

// Descriptor canonically names the scenario, e.g. "epochs=5,fault=crash"
// or "epochs=3,fault=crash,carry". Like the adversary descriptor it is
// cell-identity material: artifact cells persist it and trajectory
// alignment keys on it. A zero Opts yields "".
func (o Opts) Descriptor() string {
	if o.IsZero() {
		return ""
	}
	fault := anonlead.EpochCrash
	if o.Revoke {
		fault = anonlead.EpochRevoke
	}
	parts := []string{
		fmt.Sprintf("epochs=%d", o.Epochs),
		"fault=" + fault.String(),
	}
	if o.Carry {
		parts = append(parts, "carry")
	}
	return strings.Join(parts, ",")
}

// Options maps the scenario onto the public epoch options for RunEpochs.
func (o Opts) Options() []anonlead.Option {
	fault := anonlead.EpochCrash
	if o.Revoke {
		fault = anonlead.EpochRevoke
	}
	return []anonlead.Option{
		anonlead.WithEpochs(o.Epochs),
		anonlead.WithEpochFault(fault),
		anonlead.WithEpochCarry(o.Carry),
	}
}

// Run executes the scenario on nw: base options (seed, scheduler,
// adversary, protocol config) plus the scenario's epoch options.
func Run(nw *anonlead.Network, protocol string, base []anonlead.Option, o Opts) (anonlead.EpochOutcome, error) {
	if err := o.Validate(); err != nil {
		return anonlead.EpochOutcome{}, err
	}
	opts := append(append([]anonlead.Option(nil), base...), o.Options()...)
	return nw.RunEpochs(nil, protocol, opts...)
}

// CellStats is the per-cell epoch aggregate a bench artifact records
// (schema v6): amortized per-epoch costs, recovery time, and the
// per-epoch-index profiles that show whether later epochs get cheaper.
type CellStats struct {
	// Epochs, Fault and Carry restate the scenario (cell identity data,
	// also rendered into the cell's Scenario descriptor).
	Epochs int    `json:"epochs"`
	Fault  string `json:"fault"`
	Carry  bool   `json:"carry,omitempty"`
	// Trials is the number of scenario histories aggregated.
	Trials int `json:"trials"`
	// ElectedRate is the fraction of epochs (over all trials) that
	// elected a unique leader.
	ElectedRate float64 `json:"elected_rate"`
	// AmortizedMessages and AmortizedRounds are the mean per-epoch costs
	// over all trials.
	AmortizedMessages float64 `json:"amortized_messages"`
	AmortizedRounds   float64 `json:"amortized_rounds"`
	// MeanRecover is the mean time-to-recover (rounds of successful
	// re-elections) over trials that recovered at least once.
	MeanRecover float64 `json:"mean_recover"`
	// PerEpochMessages, PerEpochRounds and PerEpochElected profile cost
	// and success by epoch index, averaged (summed for Elected) over
	// trials — the carried-knowledge claim is visible as a downward trend.
	PerEpochMessages []float64 `json:"per_epoch_messages"`
	PerEpochRounds   []float64 `json:"per_epoch_rounds"`
	PerEpochElected  []int     `json:"per_epoch_elected"`
}

// Reduce folds per-trial epoch histories into the cell aggregate, in
// trial order (deterministic regardless of how the trials were
// scheduled). Histories shorter than o.Epochs (aborted runs) contribute
// to the epochs they ran.
func Reduce(o Opts, hists []anonlead.EpochOutcome) CellStats {
	fault := anonlead.EpochCrash
	if o.Revoke {
		fault = anonlead.EpochRevoke
	}
	cs := CellStats{
		Epochs: o.Epochs,
		Fault:  fault.String(),
		Carry:  o.Carry,
		Trials: len(hists),
	}
	if o.Epochs > 0 {
		cs.PerEpochMessages = make([]float64, o.Epochs)
		cs.PerEpochRounds = make([]float64, o.Epochs)
		cs.PerEpochElected = make([]int, o.Epochs)
	}
	epochs, elected := 0, 0
	var messages, rounds int64
	recovered := 0
	var recoverSum float64
	for _, h := range hists {
		for _, r := range h.Epochs {
			epochs++
			messages += r.Messages
			rounds += int64(r.Rounds)
			if r.Elected {
				elected++
			}
			if r.Epoch < len(cs.PerEpochMessages) {
				cs.PerEpochMessages[r.Epoch] += float64(r.Messages)
				cs.PerEpochRounds[r.Epoch] += float64(r.Rounds)
				if r.Elected {
					cs.PerEpochElected[r.Epoch]++
				}
			}
		}
		if h.MeanRecover > 0 {
			recovered++
			recoverSum += h.MeanRecover
		}
	}
	if epochs > 0 {
		cs.ElectedRate = float64(elected) / float64(epochs)
	}
	if n := len(hists); n > 0 {
		cs.AmortizedMessages = float64(messages) / float64(n*o.Epochs)
		cs.AmortizedRounds = float64(rounds) / float64(n*o.Epochs)
		for e := range cs.PerEpochMessages {
			cs.PerEpochMessages[e] /= float64(n)
			cs.PerEpochRounds[e] /= float64(n)
		}
	}
	if recovered > 0 {
		cs.MeanRecover = recoverSum / float64(recovered)
	}
	return cs
}
