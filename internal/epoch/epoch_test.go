package epoch

import (
	"encoding/json"
	"reflect"
	"testing"

	"anonlead"
)

func TestOptsDescriptorAndValidate(t *testing.T) {
	if !(Opts{}).IsZero() || (Opts{Epochs: 1}).IsZero() {
		t.Fatal("IsZero misclassifies")
	}
	if got, want := (Opts{}).Descriptor(), ""; got != want {
		t.Fatalf("zero descriptor %q", got)
	}
	if got, want := (Opts{Epochs: 5}).Descriptor(), "epochs=5,fault=crash"; got != want {
		t.Fatalf("descriptor %q, want %q", got, want)
	}
	if got, want := (Opts{Epochs: 3, Carry: true}).Descriptor(), "epochs=3,fault=crash,carry"; got != want {
		t.Fatalf("descriptor %q, want %q", got, want)
	}
	if got, want := (Opts{Epochs: 2, Revoke: true}).Descriptor(), "epochs=2,fault=revoke"; got != want {
		t.Fatalf("descriptor %q, want %q", got, want)
	}
	if err := (Opts{}).Validate(); err == nil {
		t.Fatal("zero epochs accepted")
	}
	if err := (Opts{Epochs: 2, Revoke: true, Carry: true}).Validate(); err == nil {
		t.Fatal("carry under revoke accepted")
	}
	if err := (Opts{Epochs: 2, Carry: true}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func mustNet(t *testing.T) *anonlead.Network {
	t.Helper()
	nw, err := anonlead.NewNetwork("complete", 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// TestRunAndReduce: the scenario layer drives RunEpochs deterministically
// and folds trial histories into sane cell aggregates.
func TestRunAndReduce(t *testing.T) {
	o := Opts{Epochs: 3}
	var hists []anonlead.EpochOutcome
	for trial := 0; trial < 2; trial++ {
		eo, err := Run(mustNet(t), anonlead.ProtoFloodMax,
			[]anonlead.Option{anonlead.WithSeed(uint64(100 + trial))}, o)
		if err != nil {
			t.Fatal(err)
		}
		hists = append(hists, eo)
	}
	cs := Reduce(o, hists)
	if cs.Trials != 2 || cs.Epochs != 3 || cs.Fault != "crash" {
		t.Fatalf("header wrong: %+v", cs)
	}
	if cs.ElectedRate != 1 {
		t.Fatalf("elected rate %v, want 1 (complete/8 floodmax always elects)", cs.ElectedRate)
	}
	if len(cs.PerEpochMessages) != 3 || len(cs.PerEpochRounds) != 3 || len(cs.PerEpochElected) != 3 {
		t.Fatalf("per-epoch profiles wrong length: %+v", cs)
	}
	if cs.AmortizedMessages <= 0 || cs.AmortizedRounds <= 0 || cs.MeanRecover <= 0 {
		t.Fatalf("aggregates not measured: %+v", cs)
	}
	for e, n := range cs.PerEpochElected {
		if n != 2 {
			t.Fatalf("epoch %d elected %d/2", e, n)
		}
	}

	// Reduce is deterministic and depends only on the histories.
	if again := Reduce(o, hists); !reflect.DeepEqual(again, cs) {
		t.Fatal("Reduce not deterministic")
	}

	// And the stats serialize stably (artifact material).
	raw1, _ := json.Marshal(cs)
	raw2, _ := json.Marshal(Reduce(o, hists))
	if string(raw1) != string(raw2) {
		t.Fatal("CellStats JSON not byte-stable")
	}
}

// TestRunRejectsInvalid: the scenario layer validates before running.
func TestRunRejectsInvalid(t *testing.T) {
	if _, err := Run(mustNet(t), anonlead.ProtoFloodMax, nil, Opts{}); err == nil {
		t.Fatal("zero scenario accepted")
	}
}
