package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Split(1)
	c2 := root.Split(2)
	c1again := New(7).Split(1)
	for i := 0; i < 100; i++ {
		v1, v2 := c1.Uint64(), c2.Uint64()
		if v1 == v2 {
			t.Fatalf("sibling streams agree at draw %d", i)
		}
		if got := c1again.Uint64(); got != v1 {
			t.Fatalf("split not reproducible at draw %d: %d vs %d", i, got, v1)
		}
	}
}

func TestSplitStringStable(t *testing.T) {
	a := New(9).SplitString("phase:walk")
	b := New(9).SplitString("phase:walk")
	c := New(9).SplitString("phase:cc")
	if a.Uint64() != b.Uint64() {
		t.Fatal("same label produced different streams")
	}
	if a.Uint64() == c.Uint64() {
		t.Fatal("different labels produced identical streams")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(4)
	if err := quick.Check(func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestUniformity(t *testing.T) {
	r := New(5)
	const buckets, draws = 16, 160000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 dof: chi2 > 45 has p < 1e-4.
	if chi2 > 45 {
		t.Fatalf("uniformity suspect: chi2=%.1f counts=%v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(6)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(7)
	for i := 0; i < 1000; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) fired")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) did not fire")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("negative p fired")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("p>1 did not fire")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(8)
	const draws = 200000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < draws; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		rate := float64(hits) / draws
		if math.Abs(rate-p) > 0.01 {
			t.Fatalf("Bernoulli(%v) rate %v", p, rate)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleCoversArrangements(t *testing.T) {
	r := New(10)
	counts := map[[3]int]int{}
	for i := 0; i < 60000; i++ {
		a := [3]int{0, 1, 2}
		r.Shuffle(3, func(i, j int) { a[i], a[j] = a[j], a[i] })
		counts[a]++
	}
	if len(counts) != 6 {
		t.Fatalf("expected 6 arrangements, saw %d", len(counts))
	}
	for arr, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("arrangement %v count %d far from uniform 10000", arr, c)
		}
	}
}

func TestBinomialBounds(t *testing.T) {
	r := New(11)
	for i := 0; i < 100; i++ {
		v := r.Binomial(20, 0.5)
		if v < 0 || v > 20 {
			t.Fatalf("binomial out of range: %d", v)
		}
	}
	if r.Binomial(50, 0) != 0 {
		t.Fatal("Binomial(n, 0) != 0")
	}
	if r.Binomial(50, 1) != 50 {
		t.Fatal("Binomial(n, 1) != n")
	}
}

func TestCoinBalance(t *testing.T) {
	r := New(12)
	heads := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Coin() {
			heads++
		}
	}
	if heads < draws*48/100 || heads > draws*52/100 {
		t.Fatalf("coin unbalanced: %d/%d", heads, draws)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}

func TestReseedMatchesNewAndSplit(t *testing.T) {
	var r RNG
	r.Reseed(42)
	fresh := New(42)
	for i := 0; i < 16; i++ {
		if a, b := r.Uint64(), fresh.Uint64(); a != b {
			t.Fatalf("draw %d: Reseed stream %d != New stream %d", i, a, b)
		}
	}

	parent := New(7)
	split := parent.Split(3)
	var inPlace RNG
	inPlace.Reseed(parent.DeriveSeed(3))
	for i := 0; i < 16; i++ {
		if a, b := inPlace.Uint64(), split.Uint64(); a != b {
			t.Fatalf("draw %d: Reseed(DeriveSeed) %d != Split %d", i, a, b)
		}
	}
}
