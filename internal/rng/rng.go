// Package rng provides a deterministic, splittable pseudo-random number
// generator used throughout the simulator and protocols.
//
// Reproducibility is a core requirement of the experiment harness: every
// protocol trial must be replayable from a single root seed, and the random
// stream observed by one node must not depend on the scheduling order of
// other nodes. To that end the package exposes a splittable generator: a
// parent stream can derive independent child streams keyed by stable labels
// (node index, phase number, channel id), so sequential and parallel
// schedulers observe identical randomness.
//
// The core generator is splitmix64 (Steele, Lea, Flood; JSSC 2014) chained
// into an xoshiro256** state. Both are well-studied, pass BigCrush, and are
// trivially portable. This package is not cryptographically secure and must
// not be used for key material.
//
// See docs/ARCHITECTURE.md for where this sits in the paper-to-code map.
package rng

import "math/bits"

// golden is the splitmix64 increment (the 64-bit golden ratio).
const golden = 0x9e3779b97f4a7c15

// splitmix64 advances a splitmix64 state and returns the next output.
func splitmix64(state *uint64) uint64 {
	*state += golden
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mix64 hashes x through one splitmix64 round, for label mixing.
func mix64(x uint64) uint64 {
	s := x
	return splitmix64(&s)
}

// RNG is a deterministic pseudo-random stream. The zero value is NOT valid;
// construct with New or Split. RNG is not safe for concurrent use; derive one
// stream per goroutine via Split.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed. Distinct seeds yield
// (with overwhelming probability) uncorrelated streams.
func New(seed uint64) *RNG {
	var r RNG
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	return &r
}

// Reseed reinitializes r in place from seed, producing the exact stream
// New(seed) would. It exists so flat []RNG arenas (one generator per
// simulated node, allocated in a single slice) can be seeded without a
// per-element heap allocation: rs[v].Reseed(parent.DeriveSeed(v)) is
// byte-identical to rs[v] = *parent.Split(v).
func (r *RNG) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
}

// Split derives an independent child stream keyed by label. Splitting is a
// pure function of the parent's seed material and the label: it does not
// advance the parent stream, so the set of children is stable no matter how
// many values the parent has produced since construction... To keep that
// guarantee simple we key off the parent's current state; callers should
// perform all Splits before drawing from the parent, which is the pattern
// used by the simulator (split per node, then per phase).
func (r *RNG) Split(label uint64) *RNG {
	return New(r.DeriveSeed(label))
}

// DeriveSeed returns the seed Split(label) would construct its child from,
// without building the child and without advancing the parent. It lets
// callers hand deterministic per-label seeds to APIs that take a raw uint64
// seed (e.g. a simulator config) while keeping the same stream-independence
// guarantees as Split — the experiment orchestrator derives per-trial seeds
// this way so that sharded parallel execution draws exactly the trials a
// sequential loop would.
func (r *RNG) DeriveSeed(label uint64) uint64 {
	seed := r.s[0] ^ bits.RotateLeft64(r.s[1], 13) ^ mix64(label)
	return seed ^ mix64(label^golden)
}

// SplitString derives a child stream keyed by a string label.
func (r *RNG) SplitString(label string) *RNG {
	var h uint64 = 1469598103934665603 // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return r.Split(h)
}

// Uint64 returns the next 64 uniformly random bits (xoshiro256**).
func (r *RNG) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Int63 returns a uniformly random non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0, which
// always indicates a programming error at the call site (e.g. sampling a
// neighbor from a node with no ports).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int64n returns a uniformly random int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int64n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int64n called with non-positive n")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly random uint64 in [0, n) using Lemire's
// multiply-shift rejection method (unbiased).
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniformly random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p. Values of p outside [0,1] are
// clamped: p<=0 never fires, p>=1 always fires.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Coin returns true with probability 1/2.
func (r *RNG) Coin() bool {
	return r.Uint64()&1 == 1
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher–Yates shuffle over n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Binomial returns a sample from Binomial(n, p) by direct simulation. It is
// O(n); callers in this repository only use it for modest n (test helpers).
func (r *RNG) Binomial(n int, p float64) int {
	count := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			count++
		}
	}
	return count
}
