package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"anonlead/internal/harness"
	"anonlead/internal/obs"
)

func TestProgressTracksWorkersAndCells(t *testing.T) {
	plan := testPlan(23)
	var log bytes.Buffer
	c := New(Config{Workers: 2, Seed: 23, Log: &log}, plan)

	if p := c.Progress(); p.PlanCells != 0 || len(p.Workers) != 0 {
		t.Fatalf("pre-run progress not zero: %+v", p)
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	p := c.Progress()
	if p.PlanCells != plan.Len() || p.CellsDone != plan.Len() {
		t.Fatalf("cells %d/%d, want %d/%d", p.CellsDone, p.PlanCells, plan.Len(), plan.Len())
	}
	if p.WorkersDone != 2 || len(p.Workers) != 2 {
		t.Fatalf("workers done %d of %d tracked, want 2 of 2", p.WorkersDone, len(p.Workers))
	}
	assigned := 0
	for i, w := range p.Workers {
		if w.State != "done" || w.DoneCells != w.Cells {
			t.Fatalf("worker %d: %+v", i, w)
		}
		assigned += w.Cells
	}
	if assigned != plan.Len() {
		t.Fatalf("workers assigned %d cells, plan has %d", assigned, plan.Len())
	}

	// The snapshot is the debug endpoint's payload: it must be JSON-clean.
	if _, err := json.Marshal(p); err != nil {
		t.Fatalf("progress not JSON-marshalable: %v", err)
	}

	// Progress lines now carry sweep totals and an ETA.
	if !strings.Contains(log.String(), fmt.Sprintf("sweep %d/%d cells", plan.Len(), plan.Len())) {
		t.Fatalf("final progress line lacks sweep totals:\n%s", log.String())
	}
	if !strings.Contains(log.String(), "ETA") {
		t.Fatalf("progress lines lack an ETA:\n%s", log.String())
	}
}

func TestProgressCountsRetriesAndFailures(t *testing.T) {
	plan := testPlan(29)
	c := New(Config{Workers: 2, Seed: 29, Retries: 1}, plan)
	attempts := 0
	inner := c.runWorker
	c.runWorker = func(ctx context.Context, w workerTask) (harness.Artifact, error) {
		if w.id == 1 {
			attempts++
			if attempts == 1 {
				return harness.Artifact{}, fmt.Errorf("injected crash")
			}
		}
		return inner(ctx, w)
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	p := c.Progress()
	if p.Retries != 1 {
		t.Fatalf("retries = %d, want 1", p.Retries)
	}
	if p.Workers[1].State != "done" || p.Workers[1].Retries != 1 {
		t.Fatalf("retried worker state: %+v", p.Workers[1])
	}
}

func TestProgressPublishesRegistryGauges(t *testing.T) {
	obs.Enable()
	t.Cleanup(func() {
		obs.Disable()
		obs.Default().Reset()
		obs.ResetSpans()
	})
	plan := testPlan(31)
	c := New(Config{Workers: 2, Seed: 31}, plan)
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := obs.Default().Gauge("anonlead_sweep_cells_done").Value(); got != float64(plan.Len()) {
		t.Fatalf("anonlead_sweep_cells_done = %v, want %d", got, plan.Len())
	}
	// The coordinator's phases landed as spans: worker spans plus the merge.
	phases := make(map[string]bool)
	for _, ev := range obs.SpanEvents() {
		phases[ev.Phase] = true
	}
	for _, want := range []string{"worker", "merge", "prepare", "trials", "reduce"} {
		if !phases[want] {
			t.Errorf("no %q span recorded; got %v", want, phases)
		}
	}
}
