package sweep

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"anonlead/internal/harness"
)

// testPlan is a small cross-protocol plan, cheap enough to run many times
// per test yet spanning families and fault-free/presumed-n identity.
func testPlan(seed uint64) harness.Plan {
	opts := harness.TrialOpts{Trials: 3, Seed: seed}
	specs := []harness.CellSpec{
		{Protocol: harness.ProtoIRE, Workload: harness.Workload{Family: "expander", N: 32}, Opts: opts},
		{Protocol: harness.ProtoIRE, Workload: harness.Workload{Family: "cycle", N: 16}, Opts: opts},
		{Protocol: harness.ProtoFlood, Workload: harness.Workload{Family: "complete", N: 16}, Opts: opts},
		{Protocol: harness.ProtoWalkNotify, Workload: harness.Workload{Family: "torus", N: 16}, Opts: opts},
		{Protocol: harness.ProtoIRE, Workload: harness.Workload{Family: "diam2", N: 17},
			Opts: harness.TrialOpts{Trials: 3, Seed: seed, PresumedN: 34}},
	}
	return harness.Plan{Sections: []harness.PlanSection{{Kind: harness.SectionTable1, Specs: specs}}}
}

// referenceJSON is the single-process artifact of the plan: what a
// distributed run must reproduce byte for byte.
func referenceJSON(t *testing.T, plan harness.Plan, engine harness.Orchestrator) []byte {
	t.Helper()
	specs := plan.Specs()
	cells, err := harness.RunSweepSequential(specs)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := harness.NewArtifact(engine, specs, cells, 0).StripTimings().JSON()
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestDistributedByteIdentity is the headline contract of the distributed
// sweep: sharding the plan across workers and merging the partials yields
// an artifact byte-identical to the single-process sweep of the same
// seed, for every worker count. CI's dist-sweep job proves the same thing
// end to end over lesweep/lebench subprocesses with cmp.
func TestDistributedByteIdentity(t *testing.T) {
	plan := testPlan(17)
	engine := harness.Orchestrator{Workers: 1, Shards: 1}
	want := referenceJSON(t, plan, engine)

	for _, workers := range []int{1, 2, 3, plan.Len(), plan.Len() + 5} {
		c := New(Config{Workers: workers, Seed: 17, Engine: engine}, plan)
		art, err := c.Run(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := art.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: merged artifact differs from single-process reference:\n%s\nvs\n%s",
				workers, got, want)
		}
	}
}

// TestCoordinatorRetriesCrashedWorker checks the retry path: a worker that
// crashes on its first attempt is rerun, and the retried run's identical
// cells merge cleanly into a byte-identical artifact.
func TestCoordinatorRetriesCrashedWorker(t *testing.T) {
	plan := testPlan(23)
	engine := harness.Orchestrator{Workers: 1, Shards: 1}
	want := referenceJSON(t, plan, engine)

	var log bytes.Buffer
	c := New(Config{Workers: 2, Retries: 1, Seed: 23, Engine: engine, Log: &log}, plan)
	inner := c.runWorker
	var mu sync.Mutex
	crashed := false
	c.runWorker = func(ctx context.Context, w workerTask) (harness.Artifact, error) {
		mu.Lock()
		first := !crashed && w.id == 1
		if first {
			crashed = true
		}
		mu.Unlock()
		if first {
			return harness.Artifact{}, fmt.Errorf("injected crash")
		}
		return inner(ctx, w)
	}

	art, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got, err := art.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("artifact after a retried worker differs from reference")
	}
	if !strings.Contains(log.String(), "retry 1/1") {
		t.Fatalf("retry not logged:\n%s", log.String())
	}
}

// TestCoordinatorFailsAfterRetries checks a persistently crashing worker
// fails the sweep with an error naming the worker and its cells, while
// healthy workers still run to completion (no deadlock, no panic).
func TestCoordinatorFailsAfterRetries(t *testing.T) {
	plan := testPlan(29)
	c := New(Config{Workers: 2, Retries: 2, Seed: 29, Engine: harness.Orchestrator{Workers: 1, Shards: 1}}, plan)
	inner := c.runWorker
	c.runWorker = func(ctx context.Context, w workerTask) (harness.Artifact, error) {
		if w.id == 0 {
			return harness.Artifact{}, fmt.Errorf("injected crash")
		}
		return inner(ctx, w)
	}
	_, err := c.Run(context.Background())
	if err == nil {
		t.Fatal("persistently crashing worker did not fail the sweep")
	}
	if !strings.Contains(err.Error(), "worker 0") || !strings.Contains(err.Error(), "3 attempt(s)") {
		t.Fatalf("error does not describe the failure: %v", err)
	}
}

// TestCoordinatorContextCancel checks a canceled context stops retrying.
func TestCoordinatorContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := New(Config{Workers: 2, Retries: 5, Seed: 3, Engine: harness.Orchestrator{Workers: 1, Shards: 1}}, testPlan(3))
	if _, err := c.Run(ctx); err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("canceled run returned %v", err)
	}
}

// TestCoordinatorEmptyPlan checks the degenerate input fails loudly.
func TestCoordinatorEmptyPlan(t *testing.T) {
	c := New(Config{Workers: 2}, harness.Plan{})
	if _, err := c.Run(context.Background()); err == nil {
		t.Fatal("empty plan accepted")
	}
}

// TestForSweepsPlanMatchesHarness pins that the production coordinator
// plans exactly the canonical matrix (the quick matrix here — what CI's
// dist-sweep job shards).
func TestForSweepsPlanMatchesHarness(t *testing.T) {
	cfg := Config{Workers: 2, Quick: true, Seed: 1}
	c := ForSweeps(cfg)
	if got, want := c.Plan().Len(), harness.SweepsPlan(true, 0, 1).Len(); got != want {
		t.Fatalf("coordinator plans %d cells, harness plans %d", got, want)
	}
}
