package sweep

import (
	"fmt"
	"sync"
	"time"

	"anonlead/internal/obs"
)

// WorkerProgress is the live view of one worker in a Progress snapshot.
type WorkerProgress struct {
	// State is pending, running, done or failed (a retrying worker is
	// running with Retries > 0).
	State string `json:"state"`
	// Cells is the number of plan cells assigned to the worker; DoneCells
	// stays 0 until the worker's partial artifact lands.
	Cells     int `json:"cells"`
	DoneCells int `json:"done_cells"`
	Retries   int `json:"retries"`
	// ElapsedSeconds is the wall time of the current attempt (frozen at
	// completion).
	ElapsedSeconds float64 `json:"elapsed_seconds"`

	start time.Time
}

// Progress is the coordinator's live sweep view, served as JSON by the
// -debug-addr endpoint's /debug/progress.
type Progress struct {
	PlanCells   int `json:"plan_cells"`
	CellsDone   int `json:"cells_done"`
	WorkersDone int `json:"workers_done"`
	Retries     int `json:"retries"`
	// ElapsedSeconds is the sweep's wall time so far; ETASeconds estimates
	// the remaining time from cell throughput (0 until any cell lands).
	ElapsedSeconds float64          `json:"elapsed_seconds"`
	ETASeconds     float64          `json:"eta_seconds"`
	Workers        []WorkerProgress `json:"workers"`
}

// progressState tracks per-worker sweep state. The coordinator updates it
// from worker goroutines; the debug endpoint reads it concurrently.
type progressState struct {
	mu        sync.Mutex
	start     time.Time
	planCells int
	baseline  int64 // registry cells_done at sweep start (in-process workers bump it live)
	workers   []WorkerProgress
	doneCells int
	retries   int
}

func newProgressState(planCells int, tasks []workerTask) *progressState {
	p := &progressState{
		start:     time.Now(),
		planCells: planCells,
		baseline:  obs.Default().Counter("anonlead_cells_done").Value(),
		workers:   make([]WorkerProgress, len(tasks)),
	}
	for i, w := range tasks {
		p.workers[i] = WorkerProgress{State: "pending", Cells: len(w.indices)}
	}
	return p
}

func (p *progressState) startAttempt(id, attempt int) {
	if p == nil {
		return // a test drove runWithRetry without a Run-installed tracker
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	w := &p.workers[id]
	w.State = "running"
	w.Retries = attempt
	w.start = time.Now()
	w.ElapsedSeconds = 0
	if attempt > 0 {
		p.retries++
	}
}

func (p *progressState) finish(id, cells int, failed bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	w := &p.workers[id]
	w.ElapsedSeconds = time.Since(w.start).Seconds()
	if failed {
		w.State = "failed"
		return
	}
	w.State = "done"
	w.DoneCells = cells
	p.doneCells += cells
	p.publishLocked()
}

// publishLocked mirrors the sweep aggregates into the registry so
// /metrics shows them next to the orchestrator's live cell counters.
func (p *progressState) publishLocked() {
	if !obs.Enabled() {
		return
	}
	reg := obs.Default()
	reg.Gauge("anonlead_sweep_cells_done").Set(float64(p.doneCells))
	reg.Gauge("anonlead_sweep_eta_seconds").Set(p.etaLocked(p.cellsDoneLocked()))
	reg.Gauge("anonlead_sweep_retries").Set(float64(p.retries))
}

// cellsDoneLocked returns the best live cell count: completed workers'
// totals, or — when in-process workers are bumping the registry's
// anonlead_cells_done counter as cells reduce — that finer-grained count.
func (p *progressState) cellsDoneLocked() int {
	done := p.doneCells
	if live := int(obs.Default().Counter("anonlead_cells_done").Value() - p.baseline); live > done {
		done = live
	}
	if done > p.planCells {
		done = p.planCells
	}
	return done
}

// etaLocked estimates remaining seconds from cell throughput so far.
func (p *progressState) etaLocked(done int) float64 {
	if done <= 0 {
		return 0
	}
	elapsed := time.Since(p.start).Seconds()
	return elapsed * float64(p.planCells-done) / float64(done)
}

// snapshot assembles the live Progress view.
func (p *progressState) snapshot() Progress {
	p.mu.Lock()
	defer p.mu.Unlock()
	done := p.cellsDoneLocked()
	out := Progress{
		PlanCells:      p.planCells,
		CellsDone:      done,
		Retries:        p.retries,
		ElapsedSeconds: time.Since(p.start).Seconds(),
		ETASeconds:     p.etaLocked(done),
		Workers:        append([]WorkerProgress(nil), p.workers...),
	}
	for i := range out.Workers {
		w := &out.Workers[i]
		if w.State == "running" {
			w.ElapsedSeconds = time.Since(w.start).Seconds()
		}
		if w.State == "done" {
			out.WorkersDone++
		}
	}
	return out
}

// etaString renders an ETA for progress lines: "ETA 42s", or "ETA ?"
// before any cell has landed.
func etaString(eta float64, done int) string {
	if done <= 0 {
		return "ETA ?"
	}
	return fmt.Sprintf("ETA %.0fs", eta)
}

// Progress returns the coordinator's live sweep view (zero before Run
// starts). It is safe to call concurrently with Run — the -debug-addr
// endpoint polls it per request.
func (c *Coordinator) Progress() Progress {
	c.progMu.Lock()
	prog := c.prog
	c.progMu.Unlock()
	if prog == nil {
		return Progress{}
	}
	return prog.snapshot()
}
