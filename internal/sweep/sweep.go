// Package sweep orchestrates distributed artifact sweeps: a coordinator
// plans the canonical cell matrix (harness.SweepsPlan), shards it across
// workers by contiguous plan-index ranges, runs the workers — either
// in-process or as lebench subprocesses given a -cells selector —
// collects their partial artifacts, and merges them with
// harness.MergeArtifacts into the one artifact a single process would
// have written.
//
// Determinism is the whole point: per-trial seeds are pure functions of
// the root seed and the cell, never of which worker runs it, so the
// merged artifact is byte-identical (after StripTimings) to a local
// single-process sweep of the same seed. CI's dist-sweep job proves that
// with cmp on every PR; TestDistributedByteIdentity proves it in-process.
//
// The coordinator retries crashed workers (a retried worker overlapping
// its crashed attempt is harmless: identical duplicate cells merge
// cleanly), bounds how many workers run at once, and logs progress per
// worker. cmd/lesweep is the CLI.
package sweep

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"anonlead/internal/harness"
	"anonlead/internal/obs"
	"anonlead/internal/spectral"
)

// Config tunes a distributed sweep coordinator. The zero value runs two
// in-process workers over the full (non-quick) matrix with seed 0.
type Config struct {
	// Workers is the number of shards the plan is cut into (min 1; capped
	// at the plan's cell count).
	Workers int
	// Parallel bounds how many workers run at once (0 = all of them).
	// In-process workers already fan out internally via Engine, so local
	// mode usually wants Parallel 1; subprocess workers are independent
	// processes and default to full overlap.
	Parallel int
	// Retries is how many times a crashed worker is rerun before the
	// sweep fails (0 = no retries).
	Retries int

	// Exec, when non-empty, runs each worker as a subprocess: the argv
	// prefix of a lebench-compatible command (e.g. ["go", "run",
	// "./cmd/lebench"]), to which the coordinator appends
	// -exp sweeps -parallel -seed … -cells … -json … and the
	// quick/trials/profile flags. Empty Exec runs workers in-process.
	Exec []string
	// Dir is the working directory of subprocess workers ("" = inherit).
	Dir string
	// WorkDir is where partial artifacts land ("" = a temp dir, removed
	// after the merge unless KeepPartials).
	WorkDir string
	// KeepPartials leaves the per-worker partial artifacts on disk.
	KeepPartials bool

	// Sweep parameters, shared by every worker (they parameterize the
	// plan, so coordinator and workers must agree on all three).
	Quick  bool
	Trials int
	Seed   uint64
	// Profile pins the spectral profile regime of every cell (the lebench
	// -profile flag).
	Profile spectral.Mode

	// Engine is the orchestrator in-process workers run cells on (zero =
	// GOMAXPROCS pool, matching lebench -parallel).
	Engine harness.Orchestrator

	// Log receives progress lines (nil = discarded).
	Log io.Writer
}

func (c Config) workers() int {
	if c.Workers < 1 {
		return 1
	}
	return c.Workers
}

func (c Config) parallel(n int) int {
	p := c.Parallel
	if p <= 0 || p > n {
		p = n
	}
	return p
}

// Coordinator shards one sweep plan across workers and merges the
// partial artifacts.
type Coordinator struct {
	cfg  Config
	plan harness.Plan

	// runWorker is the per-worker execution hook (swapped by tests to
	// inject crashes); it defaults to in-process or subprocess execution
	// depending on cfg.Exec.
	runWorker func(ctx context.Context, w workerTask) (harness.Artifact, error)

	// prog is the live progress tracker of the current Run (nil before
	// the first Run); the -debug-addr endpoint polls it via Progress.
	progMu sync.Mutex
	prog   *progressState
}

// workerTask is one worker's share of the plan.
type workerTask struct {
	id       int // 0-based worker index
	sel      harness.CellSelector
	indices  []int
	total    int
	partPath string // subprocess mode: where the partial artifact lands
}

// New builds a coordinator over an explicit plan (tests shard tiny
// hand-built plans; production callers use ForSweeps).
func New(cfg Config, plan harness.Plan) *Coordinator {
	c := &Coordinator{cfg: cfg, plan: plan}
	if len(cfg.Exec) > 0 {
		c.runWorker = c.runExecWorker
	} else {
		c.runWorker = c.runLocalWorker
	}
	return c
}

// ForSweeps builds a coordinator over the canonical artifact matrix for
// the config's quick/trials/seed parameters.
func ForSweeps(cfg Config) *Coordinator {
	return New(cfg, harness.SweepsPlan(cfg.Quick, cfg.Trials, cfg.Seed))
}

// Plan exposes the coordinator's plan (lesweep logs its size).
func (c *Coordinator) Plan() harness.Plan { return c.plan }

// Run executes the distributed sweep: partition, run workers (bounded,
// with per-worker retries), merge. The returned artifact is the merged
// whole — deterministic content only, byte-identical to a single-process
// sweep of the same seed after StripTimings.
func (c *Coordinator) Run(ctx context.Context) (harness.Artifact, error) {
	total := c.plan.Len()
	if total == 0 {
		return harness.Artifact{}, fmt.Errorf("sweep: empty plan, nothing to distribute")
	}
	sels := harness.PartitionPlan(total, c.cfg.workers())

	workDir := c.cfg.WorkDir
	if len(c.cfg.Exec) > 0 && workDir == "" {
		dir, err := os.MkdirTemp("", "lesweep-partials-")
		if err != nil {
			return harness.Artifact{}, fmt.Errorf("sweep: %w", err)
		}
		workDir = dir
		if !c.cfg.KeepPartials {
			defer os.RemoveAll(dir)
		}
	}

	mode := "in-process"
	if len(c.cfg.Exec) > 0 {
		mode = "subprocess"
	}
	c.logf("plan: %d cells across %d %s workers (seed %d, quick=%v)",
		total, len(sels), mode, c.cfg.Seed, c.cfg.Quick)

	tasks := make([]workerTask, len(sels))
	for i, sel := range sels {
		idxs, err := sel.Indices(total)
		if err != nil {
			return harness.Artifact{}, fmt.Errorf("sweep: %w", err)
		}
		tasks[i] = workerTask{
			id: i, sel: sel, indices: idxs, total: total,
			partPath: filepath.Join(workDir, fmt.Sprintf("partial-%d.json", i)),
		}
	}

	c.progMu.Lock()
	c.prog = newProgressState(total, tasks)
	c.progMu.Unlock()

	parts := make([]harness.Artifact, len(tasks))
	err := forEach(c.cfg.parallel(len(tasks)), len(tasks), func(i int) error {
		return c.runWithRetry(ctx, tasks[i], &parts[i])
	})
	if err != nil {
		return harness.Artifact{}, err
	}

	merged, err := harness.MergeArtifacts(parts)
	if err != nil {
		return harness.Artifact{}, err
	}
	c.logf("merged %d cells from %d partial artifacts", len(merged.Cells), len(parts))
	return merged, nil
}

// runWithRetry drives one worker through its retry budget, keeping the
// progress tracker (and through it the registry gauges and the -debug-addr
// progress view) current.
func (c *Coordinator) runWithRetry(ctx context.Context, w workerTask, out *harness.Artifact) error {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			c.prog.finish(w.id, 0, true)
			return fmt.Errorf("sweep: worker %d: %w", w.id, err)
		}
		if attempt == 0 {
			c.logf("worker %d/%d (cells %s): start", w.id+1, c.cfg.workers(), w.sel)
		} else {
			c.logf("worker %d/%d (cells %s): retry %d/%d after: %v",
				w.id+1, c.cfg.workers(), w.sel, attempt, c.cfg.Retries, lastErr)
		}
		c.prog.startAttempt(w.id, attempt)
		start := time.Now()
		endSpan := obs.Span("worker", workerLabel(w))
		art, err := c.runWorker(ctx, w)
		endSpan()
		if err == nil {
			c.prog.finish(w.id, len(art.Cells), false)
			p := c.Progress()
			c.logf("worker %d/%d: done in %.1fs (%d cells; sweep %d/%d cells, %s)",
				w.id+1, c.cfg.workers(), time.Since(start).Seconds(), len(art.Cells),
				p.CellsDone, p.PlanCells, etaString(p.ETASeconds, p.CellsDone))
			*out = art
			return nil
		}
		lastErr = err
	}
	c.prog.finish(w.id, 0, true)
	return fmt.Errorf("sweep: worker %d (cells %s) failed after %d attempt(s): %w",
		w.id, w.sel, c.cfg.Retries+1, lastErr)
}

// workerLabel is the span detail naming a worker's cell range; it formats
// nothing while telemetry is disabled.
func workerLabel(w workerTask) string {
	if !obs.Enabled() {
		return ""
	}
	return fmt.Sprintf("worker %d cells %s", w.id, w.sel)
}

// runLocalWorker executes one worker's cells in-process on the configured
// engine — the same code path a lebench -cells subprocess runs, minus the
// process boundary.
func (c *Coordinator) runLocalWorker(ctx context.Context, w workerTask) (harness.Artifact, error) {
	all := c.plan.Specs()
	specs := make([]harness.CellSpec, len(w.indices))
	for j, idx := range w.indices {
		specs[j] = all[idx]
		specs[j].Opts.ProfileMode = c.cfg.Profile
	}
	start := time.Now()
	cells, err := c.cfg.Engine.RunSweep(specs)
	if err != nil {
		return harness.Artifact{}, err
	}
	art := harness.NewArtifact(c.cfg.Engine, specs, cells, time.Since(start))
	art.Plan = &harness.ArtifactPlan{Total: w.total, Indices: w.indices}
	return art, nil
}

// runExecWorker spawns one lebench worker subprocess and reads back its
// partial artifact. Any failure — spawn error, non-zero exit, an
// unreadable artifact — counts as a worker crash and is retried by the
// caller.
func (c *Coordinator) runExecWorker(ctx context.Context, w workerTask) (harness.Artifact, error) {
	args := append([]string{}, c.cfg.Exec[1:]...)
	args = append(args,
		"-exp", "sweeps",
		"-parallel",
		"-seed", strconv.FormatUint(c.cfg.Seed, 10),
		"-profile", c.cfg.Profile.String(),
		"-cells", w.sel.String(),
		"-json", w.partPath,
	)
	if c.cfg.Quick {
		args = append(args, "-quick")
	}
	if c.cfg.Trials > 0 {
		args = append(args, "-trials", strconv.Itoa(c.cfg.Trials))
	}
	cmd := exec.CommandContext(ctx, c.cfg.Exec[0], args...)
	cmd.Dir = c.cfg.Dir
	// On cancellation forward SIGINT instead of the default SIGKILL so the
	// lebench worker can flush its partial artifact and exit cleanly; the
	// hard kill only lands if it overstays the drain window.
	cmd.Cancel = func() error { return cmd.Process.Signal(os.Interrupt) }
	cmd.WaitDelay = 10 * time.Second
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Run(); err != nil {
		return harness.Artifact{}, fmt.Errorf("worker process: %w%s", err, outputTail(out.Bytes()))
	}
	art, err := harness.ReadArtifactFile(w.partPath)
	if err != nil {
		return harness.Artifact{}, fmt.Errorf("worker partial: %w", err)
	}
	return art, nil
}

// outputTail formats the last chunk of a crashed worker's combined output
// for the error message.
func outputTail(b []byte) string {
	const max = 2048
	if len(b) == 0 {
		return ""
	}
	if len(b) > max {
		b = b[len(b)-max:]
	}
	return "\nworker output (tail):\n" + string(b)
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Log == nil {
		return
	}
	fmt.Fprintf(c.cfg.Log, "lesweep: "+format+"\n", args...)
}

// forEach runs fn(0..n-1) over a bounded pool. Unlike the harness
// orchestrator's fail-fast pool, every task runs to completion — a
// worker's retry budget is its own concern — and the lowest-indexed
// error is returned.
func forEach(workers, n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	var (
		mu       sync.Mutex
		next     int
		errIdx   = -1
		firstErr error
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		i := next
		next++
		return i
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
