package report

import (
	"fmt"
	"strings"

	"anonlead/internal/trajectory"
)

// Markdown renders the report as GitHub-flavored markdown, shaped the way
// the paper presents its evaluation: a Table-1 section per protocol×family
// with measured-vs-predicted columns, the knowledge ablation, the fault
// degradation ladders, and (in series mode) the trend section. Output is
// byte-deterministic for a given report.
func (r Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n\n%s\n\n", r.Title, r.describe())

	if len(r.Families) > 0 {
		b.WriteString("## Table 1 — measured cost vs the paper's bounds\n\n")
		b.WriteString("Measured means over each cell's trials; `pred` columns evaluate the paper's\n" +
			"leading-term bound formulas on the measured graph profile (no polylog factors,\n" +
			"no constants), so the `/pred` ratios are calibration curves, not pass/fail\n" +
			"tests — what matters is that they stay flat as n grows.\n\n")
		for _, ft := range r.Families {
			b.WriteString(r.familyMarkdown(ft))
		}
	}
	if len(r.Knowledge) > 0 {
		b.WriteString("## Knowledge ablation — misreported network size (after Dieudonné–Pelc)\n\n")
		b.WriteString("The graph (and its true tmix, Φ) is fixed; only the size the protocol is\n" +
			"told changes. `×` columns compare against the truthful presumed n = n row.\n\n")
		for _, kt := range r.Knowledge {
			b.WriteString(r.knowledgeMarkdown(kt))
		}
	}
	if len(r.Faults) > 0 {
		b.WriteString("## Fault degradation — adversary ladders (vs fault-free anchor)\n\n")
		b.WriteString("Each ladder escalates one adversary on a fixed protocol×workload; `×` columns\n" +
			"are cost ratios against the fault-free anchor row.\n\n")
		for _, ft := range r.Faults {
			b.WriteString(r.faultMarkdown(ft))
		}
	}
	if len(r.Epochs) > 0 {
		b.WriteString("## Repeated elections — epoch scenarios\n\n")
		b.WriteString("Each sweep chains epochs of elect → lead → leader crashes or revokes →\n" +
			"re-elect on one persistent topology; rows escalate the adversary (static\n" +
			"schedule vs traffic-adaptive targeting of the busiest node). `amsgs`/`arounds`\n" +
			"are amortized per-epoch costs, `recover` the mean re-election rounds; `×`\n" +
			"columns compare scenario totals against the fault-free anchor row.\n\n")
		for _, et := range r.Epochs {
			b.WriteString(r.epochMarkdown(et))
		}
	}
	if r.Trends != nil {
		b.WriteString(r.trendsMarkdown())
	}
	return b.String()
}

// epochMarkdown renders one repeated-election sweep.
func (r Report) epochMarkdown(et EpochTable) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### `%s` on %s, n = %d — `%s`\n\n", et.Protocol, et.Family, et.N, et.Scenario)
	b.WriteString("| adversary | elected | amsgs | arounds | recover | messages | ×msgs | success | 95% CI |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|---:|---:|---|\n")
	for _, row := range et.Rows {
		c := row.Cell
		desc := c.Adversary
		if desc == "" {
			desc = "none"
		}
		elected, amsgs, arounds, recover := "-", "-", "-", "-"
		if es := c.Epochs; es != nil {
			elected = fmt.Sprintf("%.2f", es.ElectedRate)
			amsgs, arounds = num(es.AmortizedMessages), num(es.AmortizedRounds)
			recover = num(es.MeanRecover)
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s | %s | %s | %s | %d/%d | %s |\n",
			desc, elected, amsgs, arounds, recover,
			num(c.Messages), ratio(row.XMsgs), c.Successes, c.Trials, wilson(row))
	}
	b.WriteString("\n")
	if !et.HasAnchor {
		b.WriteString("> no fault-free anchor cell in this sweep; `×` columns unavailable.\n\n")
	}
	return b.String()
}

// familyMarkdown renders one Table-1 section.
func (r Report) familyMarkdown(ft FamilyTable) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### `%s` on %s\n\n", ft.Protocol, ft.Family)
	b.WriteString("| n | m | D | tmix | Φ | messages | pred msgs | msg/pred | rounds | pred time | time/pred | success | 95% CI |\n")
	b.WriteString("|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---|\n")
	estimated := false
	for _, row := range ft.Rows {
		c := row.Cell
		tmix := fmt.Sprintf("%d", c.MixingTime)
		if c.ProfileMode != "" {
			// Estimate-regime cell: tmix/Φ/D came from the streaming
			// estimators (schema v4). Exact cells render unchanged.
			tmix += "\\*"
			estimated = true
		}
		fmt.Fprintf(&b, "| %d | %d | %d | %s | %s | %s | %s | %s | %s | %s | %s | %d/%d | %s |\n",
			c.N, c.M, c.Diameter, tmix, num(c.Conductance),
			num(c.Messages), num(c.PredictedMsgs), ratio(row.MsgsVsPred),
			num(c.Rounds), num(c.PredictedTime), ratio(row.TimeVsPred),
			c.Successes, c.Trials, wilson(row))
	}
	b.WriteString("\n")
	if estimated {
		b.WriteString("\\* estimate-regime profile: tmix, Φ and D are streaming estimates\n" +
			"(D a double-BFS lower bound), not dense-matrix exact values.\n\n")
	}
	if ft.MsgExponentR2 > 0 {
		fmt.Fprintf(&b, "Empirical scaling: messages ~ n^%.2f (R² = %.3f).\n\n", ft.MsgExponent, ft.MsgExponentR2)
	}
	return b.String()
}

// knowledgeMarkdown renders one knowledge-ablation section.
func (r Report) knowledgeMarkdown(kt KnowledgeTable) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### `%s` on %s, n = %d\n\n", kt.Protocol, kt.Family, kt.N)
	b.WriteString("| presumed n | ×n | messages | ×msgs | rounds | ×rounds | success | 95% CI |\n")
	b.WriteString("|---:|---:|---:|---:|---:|---:|---:|---|\n")
	for _, row := range kt.Rows {
		c := row.Cell
		fmt.Fprintf(&b, "| %d | %s | %s | %s | %s | %s | %d/%d | %s |\n",
			c.PresumedN, num(knowledgeFactor(c)),
			num(c.Messages), ratio(row.XMsgs),
			num(c.Rounds), ratio(row.XRounds),
			c.Successes, c.Trials, wilson(row))
	}
	b.WriteString("\n")
	if !kt.HasAnchor {
		b.WriteString("> no truthful presumed n = n cell in this sweep; `×` columns unavailable.\n\n")
	}
	return b.String()
}

// faultMarkdown renders one fault-degradation ladder.
func (r Report) faultMarkdown(ft FaultTable) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### `%s` on %s, n = %d — %s ladder\n\n", ft.Protocol, ft.Family, ft.N, ft.Kinds)
	b.WriteString("| adversary | messages | ×msgs | rounds | ×rounds | dropped | crashed | success | 95% CI |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|---:|---:|---|\n")
	for _, row := range ft.Rows {
		c := row.Cell
		desc := c.Adversary
		if desc == "" {
			desc = "none"
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s | %s | %s | %s | %d/%d | %s |\n",
			desc, num(c.Messages), ratio(row.XMsgs), num(c.Rounds), ratio(row.XRounds),
			num(c.Dropped), num(c.CrashedNodes), c.Successes, c.Trials, wilson(row))
	}
	b.WriteString("\n")
	if !ft.HasAnchor {
		b.WriteString("> no fault-free anchor cell in this ladder; `×` columns unavailable.\n\n")
	}
	return b.String()
}

// trendsMarkdown renders the series trend section.
func (r Report) trendsMarkdown() string {
	t := r.Trends
	var b strings.Builder
	fmt.Fprintf(&b, "## Trajectory — %d artifacts: %s\n\n", len(t.Labels), strings.Join(t.Labels, " → "))
	if t.MeansOnly {
		b.WriteString("> ⚠️ at least one series point is a v1 artifact (no distributions): " +
			"affected cells classify on the relative tolerance alone.\n\n")
	}
	fmt.Fprintf(&b, "**%d improving · %d flat · %d regressing** metric trends across %d tracked cells.\n\n",
		t.Improving, t.Flat, t.Regressing, len(t.Cells))

	moved := false
	for _, ct := range t.Cells {
		for _, mt := range ct.Metrics {
			if mt.Trend != trajectory.TrendFlat {
				moved = true
			}
		}
	}
	if moved {
		b.WriteString("| cell | metric | trajectory | Δ | trend |\n")
		b.WriteString("|---|---|---|---:|---|\n")
		for _, ct := range t.Cells {
			for _, mt := range ct.Metrics {
				if mt.Trend == trajectory.TrendFlat {
					continue
				}
				vals := make([]string, len(mt.Values))
				for i, v := range mt.Values {
					vals[i] = num(v)
				}
				fmt.Fprintf(&b, "| %s | %s | %s | %+.1f%% | %s %s |\n",
					ct.Key, mt.Metric, strings.Join(vals, " → "),
					100*mt.RelDelta, trendIcon(mt.Trend), mt.Trend)
			}
		}
		b.WriteString("\n")
	} else if len(t.Cells) > 0 {
		b.WriteString("No metric moved beyond the thresholds anywhere in the series.\n\n")
	}

	if len(t.Partial) > 0 {
		b.WriteString("**Partial cells** (missing from at least one series point, not classified):\n")
		for _, k := range t.Partial {
			fmt.Fprintf(&b, "- %s\n", k)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "Trend thresholds: rel-tol %.3g, sigmas %.3g (endpoint Welch gates; "+
		"success by Wilson disjointness).\n", t.Thresholds.RelTol, t.Thresholds.Sigmas)
	return b.String()
}

func trendIcon(t trajectory.Trend) string {
	switch t {
	case trajectory.TrendImproving:
		return "🟢"
	case trajectory.TrendRegressing:
		return "🔴"
	default:
		return "⚪"
	}
}

// num renders a measured value compactly and deterministically: integers
// bare, large/small values in scientific form, everything else with four
// significant digits.
func num(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e7 || v < 1e-2:
		return fmt.Sprintf("%.3g", v)
	case v == float64(int64(v)):
		return fmt.Sprintf("%d", int64(v))
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// ratio renders an anchored or predicted ratio ("-" when unavailable).
func ratio(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}

// wilson renders a row's Wilson success interval.
func wilson(r Row) string {
	return fmt.Sprintf("[%.3f, %.3f]", r.SuccessLo, r.SuccessHi)
}
