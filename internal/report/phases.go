package report

import (
	"fmt"
	"strings"

	"anonlead/internal/obs"
)

// PhaseMarkdown renders the phase-breakdown table from an obs metrics
// snapshot (the -metrics-out file of lebench/lesweep): one row per span
// phase with count, total, mean and share of the summed phase time,
// sorted by descending total. Phase timings are wall-clock telemetry, so
// this section is opt-in (lereport -phases) and never part of the
// byte-deterministic baseline report.
func PhaseMarkdown(stats []obs.PhaseStat) string {
	if len(stats) == 0 {
		return ""
	}
	var sum float64
	for _, s := range stats {
		sum += s.Total
	}
	var b strings.Builder
	b.WriteString("## Phase breakdown — where the run spent its time\n\n")
	b.WriteString("Wall-clock totals per instrumented phase span (prepare = graph build,\n" +
		"profile = spectral profile, trials = protocol runs, reduce = cell\n" +
		"aggregation, merge = artifact merge, worker = whole sweep shards; worker\n" +
		"spans contain the others, so shares are of the summed span time, not of\n" +
		"the run).\n\n")
	b.WriteString("| phase | spans | total s | mean s | share |\n")
	b.WriteString("|---|---:|---:|---:|---:|\n")
	for _, s := range stats {
		mean := 0.0
		if s.Spans > 0 {
			mean = s.Total / float64(s.Spans)
		}
		share := 0.0
		if sum > 0 {
			share = 100 * s.Total / sum
		}
		fmt.Fprintf(&b, "| %s | %d | %.3f | %.4f | %.1f%% |\n",
			s.Phase, s.Spans, s.Total, mean, share)
	}
	b.WriteString("\n")
	return b.String()
}
