package report

import (
	"strings"
	"testing"

	"anonlead/internal/epoch"
	"anonlead/internal/harness"
)

// withScenario marks a synthetic cell as a repeated-election scenario
// cell: the v6 descriptor plus the amortized epoch aggregates.
func withScenario(desc string, es *epoch.CellStats) func(*harness.ArtifactCell) {
	return func(c *harness.ArtifactCell) {
		c.Scenario = desc
		c.Epochs = es
	}
}

// TestEpochSectioning: scenario cells reconstruct into an EpochTable —
// anchored at the fault-free rung, never swallowed by the fault-ladder
// branch even though the faulted rungs carry adversary descriptors — and
// the section renders into both output formats.
func TestEpochSectioning(t *testing.T) {
	stats := func(amsgs float64) *epoch.CellStats {
		return &epoch.CellStats{
			Epochs: 3, Fault: "crash", Trials: 8,
			ElectedRate:       1,
			AmortizedMessages: amsgs, AmortizedRounds: 4,
			MeanRecover:      4,
			PerEpochMessages: []float64{amsgs, amsgs, amsgs},
			PerEpochRounds:   []float64{4, 4, 4},
			PerEpochElected:  []int{8, 8, 8},
		}
	}
	const scenario = "epochs=3,fault=crash"
	a := harness.Artifact{Schema: harness.ArtifactSchema, Cells: []harness.ArtifactCell{
		synthCell("ire", "expander", 32, 1200, withScenario(scenario, stats(400))), // anchor
		synthCell("ire", "expander", 32, 600, withScenario(scenario, stats(200)),
			withAdversary("crash=0.1@8")),
		synthCell("ire", "expander", 32, 300, withScenario(scenario, stats(100)),
			withAdversary("adaptive=1@1")),
		synthCell("flood", "cycle", 16, 60, withAdversary("churn=0.3")), // plain fault cell
	}}
	r := New(a, Options{Title: "epoch synthetic"})

	if len(r.Epochs) != 1 {
		t.Fatalf("epoch tables: %+v", r.Epochs)
	}
	et := r.Epochs[0]
	if !et.HasAnchor || len(et.Rows) != 3 || et.Scenario != scenario {
		t.Fatalf("epoch table wrong: %+v", et)
	}
	if et.Protocol != "ire" || et.Family != "expander" || et.N != 32 {
		t.Fatalf("epoch table identity wrong: %+v", et)
	}
	// Anchor ratios are against the scenario anchor, not any fault anchor.
	if x := et.Rows[2].XMsgs; x != 0.25 {
		t.Fatalf("adaptive rung anchor ratio %v, want 0.25", x)
	}
	// The scenario cells must not leak into the fault sections: only the
	// plain churn cell sections as a (bare) fault ladder.
	if len(r.Faults) != 1 || r.Faults[0].Kinds != "churn" {
		t.Fatalf("faults wrong: %+v", r.Faults)
	}
	if len(r.Families) != 0 {
		t.Fatalf("scenario cells leaked into Table 1: %+v", r.Families)
	}

	md := r.Markdown()
	for _, want := range []string{
		"## Repeated elections — epoch scenarios",
		"### `ire` on expander, n = 32 — `epochs=3,fault=crash`",
		"| adversary | elected | amsgs | arounds | recover |",
		"`adaptive=1@1`",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}

	csv, err := r.CSV()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv, "epochs,ire,expander,32") {
		t.Fatalf("CSV missing the epochs section rows:\n%s", csv)
	}
}

// TestEpochSectionWithoutAnchor: a scenario sweep whose fault-free rung
// was filtered out still sections (no anchor ratios, noted in markdown).
func TestEpochSectionWithoutAnchor(t *testing.T) {
	a := harness.Artifact{Schema: harness.ArtifactSchema, Cells: []harness.ArtifactCell{
		synthCell("flood", "complete", 8, 500,
			withScenario("epochs=2,fault=revoke", &epoch.CellStats{Epochs: 2, Fault: "revoke", Trials: 4}),
			withAdversary("adaptive=1@2")),
	}}
	r := New(a, Options{})
	if len(r.Epochs) != 1 || r.Epochs[0].HasAnchor || len(r.Epochs[0].Rows) != 1 {
		t.Fatalf("anchorless epoch table wrong: %+v", r.Epochs)
	}
	if len(r.Faults) != 0 {
		t.Fatalf("anchorless scenario cell sectioned as a fault ladder: %+v", r.Faults)
	}
	if r.Epochs[0].Rows[0].XMsgs != 0 {
		t.Fatal("anchorless row grew an anchor ratio")
	}
}
