package report

import (
	"bytes"
	"encoding/csv"
	"strconv"

	"anonlead/internal/harness"
)

// csvHeader is the column layout of Report.CSV: one row per
// (cell, metric) in long ("tidy") form, section-tagged so dashboards can
// facet the Table-1, knowledge, and fault populations without re-deriving
// the sweep structure.
var csvHeader = []string{
	"section", "protocol", "family", "n", "presumed_n", "adversary",
	"metric", "value", "stddev", "predicted", "vs_pred", "x_anchor",
	"success_lo", "success_hi", "trend",
}

// csvMetrics names the per-row metrics exported per cell, in order.
var csvMetrics = []string{"messages", "bits", "rounds", "charged", "success_rate"}

// CSV renders the report flat: every cell of every section becomes five
// rows (one per metric), carrying the same derived columns the markdown
// tables show — predicted-vs-measured ratios on messages/rounds, anchor
// ratios in the anchored sections, Wilson bounds on the success rate, and
// (in series mode) the metric's trend verdict. Byte-deterministic.
func (r Report) CSV() (string, error) {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write(csvHeader); err != nil {
		return "", err
	}
	emit := func(section string, row Row) error {
		c := row.Cell
		for _, m := range csvMetrics {
			rec := csvRow{section: section, cell: c, metric: m, row: row}
			if t := r.trendFor(row, m); t != nil {
				rec.trend = string(t.Trend)
			}
			if err := w.Write(rec.fields()); err != nil {
				return err
			}
		}
		return nil
	}
	for _, ft := range r.Families {
		for _, row := range ft.Rows {
			if err := emit("table1", row); err != nil {
				return "", err
			}
		}
	}
	for _, kt := range r.Knowledge {
		for _, row := range kt.Rows {
			if err := emit("knowledge", row); err != nil {
				return "", err
			}
		}
	}
	for _, ft := range r.Faults {
		for _, row := range ft.Rows {
			if err := emit("faults", row); err != nil {
				return "", err
			}
		}
	}
	for _, et := range r.Epochs {
		for _, row := range et.Rows {
			if err := emit("epochs", row); err != nil {
				return "", err
			}
		}
	}
	w.Flush()
	return buf.String(), w.Error()
}

// csvRow assembles one exported record.
type csvRow struct {
	section string
	cell    harness.ArtifactCell
	metric  string
	row     Row
	trend   string
}

func (cr csvRow) fields() []string {
	c := cr.cell
	num := func(v float64) string {
		if v == 0 {
			return ""
		}
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
	var value, stddev, predicted, vsPred, xAnchor, lo, hi string
	switch cr.metric {
	case "messages":
		value = num(c.Messages)
		stddev = distStdDev(c.MessagesDist)
		predicted, vsPred = num(c.PredictedMsgs), num(cr.row.MsgsVsPred)
		xAnchor = num(cr.row.XMsgs)
	case "bits":
		value = num(c.Bits)
		stddev = distStdDev(c.BitsDist)
	case "rounds":
		value = num(c.Rounds)
		stddev = distStdDev(c.RoundsDist)
		predicted, vsPred = num(c.PredictedTime), num(cr.row.TimeVsPred)
		xAnchor = num(cr.row.XRounds)
	case "charged":
		value = num(c.Charged)
		stddev = distStdDev(c.ChargedDist)
	case "success_rate":
		if c.Trials > 0 {
			value = strconv.FormatFloat(float64(c.Successes)/float64(c.Trials), 'g', -1, 64)
		}
		lo = strconv.FormatFloat(cr.row.SuccessLo, 'g', -1, 64)
		hi = strconv.FormatFloat(cr.row.SuccessHi, 'g', -1, 64)
	}
	return []string{
		cr.section, c.Protocol, c.Family,
		strconv.Itoa(c.N), strconv.Itoa(c.PresumedN), c.Adversary,
		cr.metric, value, stddev, predicted, vsPred, xAnchor, lo, hi, cr.trend,
	}
}

func distStdDev(d *harness.ArtifactDist) string {
	if d == nil {
		return ""
	}
	return strconv.FormatFloat(d.StdDev, 'g', -1, 64)
}
