// Package report turns bench artifacts into the reproduction report the
// paper's evaluation section would print: Table-1-shaped measured-vs-
// predicted tables per protocol×family, the Dieudonné–Pelc knowledge-
// ablation comparison, fault-degradation ladders anchored at their
// fault-free cells, Wilson success intervals everywhere, and — when fed
// an ordered artifact series — per-metric trend classification
// (improving/flat/regressing) via the trajectory package's Welch
// machinery.
//
// Everything is a pure function of the artifact bytes: section order
// follows artifact cell order, all numbers render with fixed rules, and
// no wall-clock field is consulted, so the same artifact always produces
// byte-identical markdown/CSV (pinned by the golden test against
// testdata/BENCH_baseline.json). cmd/lereport is the CLI; CI renders the
// head artifact's report into the job summary.
package report

import (
	"fmt"
	"strings"

	"anonlead/internal/harness"
	"anonlead/internal/stats"
	"anonlead/internal/trajectory"
)

// Options tunes report generation. The zero value is the default report.
type Options struct {
	// Title overrides the report heading (default "Reproduction report").
	Title string
	// Trend tunes the series trend classifier (zero = trajectory defaults).
	Trend trajectory.Thresholds
}

func (o Options) title() string {
	if o.Title != "" {
		return o.Title
	}
	return "Reproduction report"
}

// Row is one rendered cell: the artifact cell plus the derived columns
// every section shares (Wilson interval, predicted-vs-measured ratios,
// and — in anchored sections — cost ratios against the anchor).
type Row struct {
	Cell harness.ArtifactCell
	// occurrence is this cell's duplicate-key occurrence index within the
	// artifact (fault-ladder anchors share a key with their Table-1
	// sibling); trend lookups match the same occurrence, mirroring how the
	// trajectory series pairs duplicates.
	occurrence int
	// SuccessLo and SuccessHi are the ~95% Wilson bounds of the success
	// rate, recomputed from successes/trials so v1 cells get them too.
	SuccessLo, SuccessHi float64
	// MsgsVsPred and TimeVsPred are measured/predicted ratios (0 when the
	// cell carries no usable prediction).
	MsgsVsPred, TimeVsPred float64
	// XMsgs and XRounds are cost ratios against the section anchor (0 when
	// the section has no anchor or the anchor cost is 0).
	XMsgs, XRounds float64
}

// newRow derives the shared columns of a cell.
func newRow(c harness.ArtifactCell) Row {
	r := Row{Cell: c}
	r.SuccessLo, r.SuccessHi = stats.Wilson(c.Successes, c.Trials)
	if c.PredictedMsgs > 0 && c.Messages > 0 {
		r.MsgsVsPred = c.Messages / c.PredictedMsgs
	}
	if c.PredictedTime > 0 && c.Rounds > 0 {
		r.TimeVsPred = c.Rounds / c.PredictedTime
	}
	return r
}

// anchorRatios fills the against-anchor columns of a row.
func (r *Row) anchorRatios(anchor *harness.ArtifactCell) {
	if anchor == nil {
		return
	}
	if anchor.Messages > 0 {
		r.XMsgs = r.Cell.Messages / anchor.Messages
	}
	if anchor.Rounds > 0 {
		r.XRounds = r.Cell.Rounds / anchor.Rounds
	}
}

// FamilyTable is one Table-1-shaped section: one protocol on one graph
// family, one row per size, with the empirical message-scaling exponent
// fitted over the rows (the paper's log-log slope).
type FamilyTable struct {
	Protocol, Family string
	Rows             []Row
	// MsgExponent is the fitted exponent of messages in n with its R²
	// (both 0 when fewer than two usable points).
	MsgExponent, MsgExponentR2 float64
}

// KnowledgeTable is one knowledge-ablation section: a fixed workload
// swept over presumed network sizes, anchored at the truthful cell
// (presumed n = n).
type KnowledgeTable struct {
	Protocol, Family string
	N                int
	Rows             []Row
	// HasAnchor reports whether the truthful presumed n = n cell was
	// present to anchor the ratio columns.
	HasAnchor bool
}

// FaultTable is one fault-degradation ladder: a fixed protocol×workload
// swept over adversary severities, anchored at the fault-free cell.
type FaultTable struct {
	Protocol, Family string
	N                int
	PresumedN        int
	// Kinds names the adversary primitives the ladder sweeps ("loss",
	// "crash", "churn+delay", …), so several ladders on one workload stay
	// distinguishable in the rendered headings.
	Kinds     string
	Rows      []Row // Rows[0] is the fault-free anchor when HasAnchor
	HasAnchor bool
}

// EpochTable is one repeated-election sweep: a fixed protocol×workload
// running one epoch scenario over an adversary ladder, anchored at the
// fault-free cell. Cell metrics are scenario totals; the epochs object
// carries the amortized per-epoch stats.
type EpochTable struct {
	Protocol, Family string
	N                int
	// Scenario is the epoch descriptor shared by every row
	// ("epochs=5,fault=crash").
	Scenario  string
	Rows      []Row // Rows[0] is the fault-free anchor when HasAnchor
	HasAnchor bool
}

// Report is the structured reproduction report one artifact (or series)
// renders to.
type Report struct {
	Title    string
	Schema   string
	RootSeed uint64
	Cells    int

	Families  []FamilyTable
	Knowledge []KnowledgeTable
	Faults    []FaultTable
	Epochs    []EpochTable

	// Trends is the series trend classification (nil in single-artifact
	// mode).
	Trends *trajectory.SeriesReport
}

// New builds the report of a single artifact.
func New(a harness.Artifact, opts Options) Report {
	r := Report{
		Title:    opts.title(),
		Schema:   a.Schema,
		RootSeed: a.RootSeed,
		Cells:    len(a.Cells),
	}
	r.section(a.Cells)
	return r
}

// NewSeries builds the report of the newest artifact of an ordered
// series (oldest first), plus the cross-series trend section.
func NewSeries(s trajectory.Series, opts Options) Report {
	r := New(s.Artifacts[len(s.Artifacts)-1], opts)
	trends := s.Trends(opts.Trend)
	r.Trends = &trends
	return r
}

// cellIdentity keys the anchored sections: everything that identifies a
// sweep position except the adversary severity.
type cellIdentity struct {
	Protocol, Family string
	N, PresumedN     int
}

func identityOf(c harness.ArtifactCell) cellIdentity {
	return cellIdentity{Protocol: c.Protocol, Family: c.Family, N: c.N, PresumedN: c.PresumedN}
}

// trajKeyOf is the cell's trajectory alignment key (the adversary-,
// profile-regime- and scenario-aware identity duplicate occurrences are
// counted under).
func trajKeyOf(c harness.ArtifactCell) trajectory.Key {
	return trajectory.Key{Protocol: c.Protocol, Family: c.Family, N: c.N,
		PresumedN: c.PresumedN, Adversary: c.Adversary,
		ProfileMode: c.ProfileMode, Scenario: c.Scenario}
}

// section reconstructs the sweep structure from the flat cell list, in
// order: fault ladders (a fault-free cell immediately followed by faulted
// cells of the same identity, or bare faulted runs), knowledge sweeps
// (consecutive presumed-n cells on one workload), and everything else as
// Table-1 family rows grouped by protocol×family in first-appearance
// order.
func (r *Report) section(cells []harness.ArtifactCell) {
	famIdx := map[[2]string]int{}
	knowIdx := map[cellIdentity]int{} // keyed by (proto, family, n, 0)

	// Cells are consumed strictly in artifact order, so counting
	// duplicate-key occurrences here matches the trajectory series'
	// occurrence pairing.
	occSeen := map[trajectory.Key]int{}
	mkRow := func(c harness.ArtifactCell) Row {
		row := newRow(c)
		k := trajKeyOf(c)
		row.occurrence = occSeen[k]
		occSeen[k]++
		return row
	}

	for i := 0; i < len(cells); {
		c := cells[i]
		id := identityOf(c)

		// An epoch scenario sweep: consecutive cells sharing identity and
		// scenario descriptor, anchored at the fault-free rung. Checked
		// before the fault-ladder branch — scenario cells carry adversary
		// descriptors too, but belong to the repeated-election section.
		if c.Scenario != "" {
			et := EpochTable{Protocol: id.Protocol, Family: id.Family, N: id.N, Scenario: c.Scenario}
			var anchor *harness.ArtifactCell
			if c.Adversary == "" {
				anchor = &cells[i]
				et.HasAnchor = true
			}
			for i < len(cells) && cells[i].Scenario == c.Scenario && identityOf(cells[i]) == id &&
				(len(et.Rows) == 0 || cells[i].Adversary != "") {
				row := mkRow(cells[i])
				if &cells[i] != anchor {
					row.anchorRatios(anchor)
				}
				et.Rows = append(et.Rows, row)
				i++
			}
			r.Epochs = append(r.Epochs, et)
			continue
		}

		// A fault ladder: [anchor?] faulted+ with one identity.
		isLadderStart := c.Adversary != "" ||
			(i+1 < len(cells) && cells[i+1].Adversary != "" && identityOf(cells[i+1]) == id)
		if isLadderStart {
			ft := FaultTable{Protocol: id.Protocol, Family: id.Family, N: id.N, PresumedN: id.PresumedN}
			var anchor *harness.ArtifactCell
			if c.Adversary == "" {
				anchor = &cells[i]
				ft.HasAnchor = true
				ft.Rows = append(ft.Rows, mkRow(c))
				i++
			}
			for i < len(cells) && cells[i].Adversary != "" && identityOf(cells[i]) == id {
				row := mkRow(cells[i])
				row.anchorRatios(anchor)
				ft.Rows = append(ft.Rows, row)
				i++
			}
			ft.Kinds = ladderKinds(ft.Rows)
			r.Faults = append(r.Faults, ft)
			continue
		}

		// A knowledge sweep: consecutive cells on one workload with a
		// presumed size (the truthful factor-1 cell also carries one).
		if c.PresumedN > 0 {
			key := cellIdentity{Protocol: c.Protocol, Family: c.Family, N: c.N}
			var kt *KnowledgeTable
			if j, ok := knowIdx[key]; ok {
				kt = &r.Knowledge[j]
			} else {
				knowIdx[key] = len(r.Knowledge)
				r.Knowledge = append(r.Knowledge, KnowledgeTable{
					Protocol: key.Protocol, Family: key.Family, N: key.N,
				})
				kt = &r.Knowledge[len(r.Knowledge)-1]
			}
			kt.Rows = append(kt.Rows, mkRow(c))
			i++
			continue
		}

		// A Table-1 row.
		key := [2]string{c.Protocol, c.Family}
		var ft *FamilyTable
		if j, ok := famIdx[key]; ok {
			ft = &r.Families[j]
		} else {
			famIdx[key] = len(r.Families)
			r.Families = append(r.Families, FamilyTable{Protocol: c.Protocol, Family: c.Family})
			ft = &r.Families[len(r.Families)-1]
		}
		ft.Rows = append(ft.Rows, mkRow(c))
		i++
	}

	// Knowledge anchors: the truthful presumed n = n cell, when present.
	for j := range r.Knowledge {
		kt := &r.Knowledge[j]
		var anchor *harness.ArtifactCell
		for k := range kt.Rows {
			if kt.Rows[k].Cell.PresumedN == kt.N {
				anchor = &kt.Rows[k].Cell
				kt.HasAnchor = true
				break
			}
		}
		for k := range kt.Rows {
			kt.Rows[k].anchorRatios(anchor)
		}
	}

	// Family scaling exponents.
	for j := range r.Families {
		ft := &r.Families[j]
		var xs, ys []float64
		for _, row := range ft.Rows {
			xs = append(xs, float64(row.Cell.N))
			ys = append(ys, row.Cell.Messages)
		}
		if slope, r2 := stats.LogLogSlope(xs, ys); r2 > 0 {
			ft.MsgExponent, ft.MsgExponentR2 = slope, r2
		}
	}
}

// ladderKinds names the adversary primitives a ladder's descriptors use,
// in first-appearance order ("loss", "crash", "churn+delay", …). The
// descriptor grammar is "kind=value" primitives joined by commas.
func ladderKinds(rows []Row) string {
	var kinds []string
	seen := map[string]bool{}
	for _, row := range rows {
		for _, prim := range strings.Split(row.Cell.Adversary, ",") {
			kind, _, _ := strings.Cut(prim, "=")
			if kind != "" && !seen[kind] {
				seen[kind] = true
				kinds = append(kinds, kind)
			}
		}
	}
	return strings.Join(kinds, "+")
}

// knowledgeFactor is the presumed/true size ratio of a knowledge row.
func knowledgeFactor(c harness.ArtifactCell) float64 {
	if c.N == 0 {
		return 0
	}
	return float64(c.PresumedN) / float64(c.N)
}

// trendFor finds the series trend of one metric of one rendered row (nil
// when the report has no series, or the row's cell is not tracked across
// it). Duplicate-key rows match the tracked cell of the same occurrence
// index — the trajectory series pairs duplicates by occurrence, so a
// fault-ladder anchor never inherits its Table-1 sibling's verdict.
func (r Report) trendFor(row Row, metric string) *trajectory.MetricTrend {
	if r.Trends == nil {
		return nil
	}
	key, occ := trajKeyOf(row.Cell), 0
	for i := range r.Trends.Cells {
		if r.Trends.Cells[i].Key != key {
			continue
		}
		if occ != row.occurrence {
			occ++
			continue
		}
		for j := range r.Trends.Cells[i].Metrics {
			if r.Trends.Cells[i].Metrics[j].Metric == metric {
				return &r.Trends.Cells[i].Metrics[j]
			}
		}
		return nil
	}
	return nil
}

// describe renders the one-line artifact summary under the title.
func (r Report) describe() string {
	s := fmt.Sprintf("artifact schema `%s` · root seed %d · %d cells", r.Schema, r.RootSeed, r.Cells)
	if r.Trends != nil {
		s += fmt.Sprintf(" · series of %d artifacts", len(r.Trends.Labels))
	}
	return s
}
