package report

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"anonlead/internal/harness"
	"anonlead/internal/trajectory"
)

// baselinePath is the committed regression-gate artifact the golden
// report is rendered from.
var baselinePath = filepath.Join("..", "..", "testdata", "BENCH_baseline.json")

// goldenPath is the committed render of the baseline artifact, linked
// from the README; `make baseline` refreshes both together.
var goldenPath = filepath.Join("..", "..", "testdata", "REPORT_baseline.md")

// goldenTitle matches the title the Makefile's baseline target renders
// the committed report with.
const goldenTitle = "anonlead reproduction report — baseline"

// TestBaselineReportGolden pins the report bytes: the committed
// REPORT_baseline.md must be exactly what the committed baseline
// artifact renders to (UPDATE_GOLDEN=1 regenerates, or `make baseline`).
func TestBaselineReportGolden(t *testing.T) {
	a, err := harness.ReadArtifactFile(baselinePath)
	if err != nil {
		t.Fatal(err)
	}
	got := []byte(New(a, Options{Title: goldenTitle}).Markdown())
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("report drifted from golden (UPDATE_GOLDEN=1 or `make baseline` regenerates); got %d bytes, want %d", len(got), len(want))
	}
}

// TestBaselineReportDeterministic: two renders of the same artifact are
// byte-identical, in both formats.
func TestBaselineReportDeterministic(t *testing.T) {
	a, err := harness.ReadArtifactFile(baselinePath)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := New(a, Options{}), New(a, Options{})
	if r1.Markdown() != r2.Markdown() {
		t.Fatal("markdown render not deterministic")
	}
	c1, err := r1.CSV()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := r2.CSV()
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("CSV render not deterministic")
	}
}

// TestBaselineReportSections: the committed artifact reconstructs into
// the expected paper sections — Table 1 families for every protocol, both
// knowledge sweeps, and all eight fault ladders (F5 revocable included).
func TestBaselineReportSections(t *testing.T) {
	a, err := harness.ReadArtifactFile(baselinePath)
	if err != nil {
		t.Fatal(err)
	}
	r := New(a, Options{})
	if r.Cells != len(a.Cells) {
		t.Fatalf("cell count %d, want %d", r.Cells, len(a.Cells))
	}
	protos := map[string]bool{}
	for _, ft := range r.Families {
		protos[ft.Protocol] = true
	}
	for _, p := range []string{"ire", "walknotify", "flood", "revocable"} {
		if !protos[p] {
			t.Fatalf("Table 1 missing protocol %s (have %v)", p, protos)
		}
	}
	if len(r.Knowledge) != 2 {
		t.Fatalf("%d knowledge sweeps, want 2", len(r.Knowledge))
	}
	for _, kt := range r.Knowledge {
		if !kt.HasAnchor {
			t.Fatalf("knowledge sweep %s/%d lost its truthful anchor", kt.Family, kt.N)
		}
	}
	if len(r.Faults) != 8 {
		t.Fatalf("%d fault ladders, want 8", len(r.Faults))
	}
	var revocable *FaultTable
	for i := range r.Faults {
		if !r.Faults[i].HasAnchor {
			t.Fatalf("fault ladder %+v lost its anchor", r.Faults[i])
		}
		if r.Faults[i].Protocol == "revocable" {
			revocable = &r.Faults[i]
		}
	}
	if revocable == nil || revocable.Kinds != "crash" {
		t.Fatalf("revocable crash ladder missing: %+v", revocable)
	}
	// No sweep cell may be double-counted or dropped by the sectioning.
	total := 0
	for _, ft := range r.Families {
		total += len(ft.Rows)
	}
	for _, kt := range r.Knowledge {
		total += len(kt.Rows)
	}
	for _, ft := range r.Faults {
		total += len(ft.Rows)
	}
	if total != len(a.Cells) {
		t.Fatalf("sections carry %d rows, artifact has %d cells", total, len(a.Cells))
	}
}

// synthCell builds a minimal v3 cell.
func synthCell(proto, family string, n int, msgs float64, opts ...func(*harness.ArtifactCell)) harness.ArtifactCell {
	dist := func(mean float64) *harness.ArtifactDist {
		return &harness.ArtifactDist{StdDev: 1, Min: mean, Max: mean, P50: mean, P90: mean, P99: mean}
	}
	c := harness.ArtifactCell{
		Protocol: proto, Family: family, N: n, M: n, Diameter: 2, MixingTime: 4,
		Conductance: 0.5, Trials: 8, Successes: 8,
		Messages: msgs, Bits: 2 * msgs, Rounds: 10, Charged: 12,
		MessagesDist: dist(msgs), BitsDist: dist(2 * msgs),
		RoundsDist: dist(10), ChargedDist: dist(12),
		PredictedMsgs: msgs / 2, PredictedTime: 5,
	}
	for _, o := range opts {
		o(&c)
	}
	return c
}

func withAdversary(desc string) func(*harness.ArtifactCell) {
	return func(c *harness.ArtifactCell) { c.Adversary = desc }
}

func withPresumed(p int) func(*harness.ArtifactCell) {
	return func(c *harness.ArtifactCell) { c.PresumedN = p }
}

// TestSectioning covers the reconstruction rules on a synthetic artifact:
// family grouping, a knowledge sweep, an anchored ladder, and a bare
// (anchorless) faulted cell.
func TestSectioning(t *testing.T) {
	a := harness.Artifact{Schema: harness.ArtifactSchema, Cells: []harness.ArtifactCell{
		synthCell("ire", "expander", 32, 1000),
		synthCell("ire", "expander", 64, 2000),
		synthCell("ire", "expander", 64, 1800, withPresumed(32)),
		synthCell("ire", "expander", 64, 2000, withPresumed(64)),
		synthCell("ire", "expander", 64, 2000),                           // ladder anchor
		synthCell("ire", "expander", 64, 900, withAdversary("loss=0.1")), // ladder step
		synthCell("ire", "expander", 64, 500, withAdversary("loss=0.1,crash=0.5@8")),
		synthCell("flood", "cycle", 16, 60, withAdversary("churn=0.3")), // bare faulted cell
	}}
	r := New(a, Options{Title: "synthetic"})

	if len(r.Families) != 1 || len(r.Families[0].Rows) != 2 {
		t.Fatalf("families wrong: %+v", r.Families)
	}
	if r.Families[0].MsgExponentR2 == 0 {
		t.Fatal("family scaling exponent not fitted")
	}
	if len(r.Knowledge) != 1 || len(r.Knowledge[0].Rows) != 2 || !r.Knowledge[0].HasAnchor {
		t.Fatalf("knowledge wrong: %+v", r.Knowledge)
	}
	if x := r.Knowledge[0].Rows[0].XMsgs; x != 0.9 {
		t.Fatalf("knowledge anchor ratio %v, want 0.9", x)
	}
	if len(r.Faults) != 2 {
		t.Fatalf("faults wrong: %+v", r.Faults)
	}
	ladder := r.Faults[0]
	if !ladder.HasAnchor || len(ladder.Rows) != 3 || ladder.Kinds != "loss+crash" {
		t.Fatalf("anchored ladder wrong: %+v", ladder)
	}
	if x := ladder.Rows[1].XMsgs; x != 0.45 {
		t.Fatalf("ladder anchor ratio %v, want 0.45", x)
	}
	bare := r.Faults[1]
	if bare.HasAnchor || bare.Kinds != "churn" || bare.Rows[0].XMsgs != 0 {
		t.Fatalf("bare ladder wrong: %+v", bare)
	}

	md := r.Markdown()
	for _, want := range []string{
		"# synthetic",
		"## Table 1",
		"### `ire` on expander",
		"Empirical scaling",
		"## Knowledge ablation",
		"### `ire` on expander, n = 64",
		"## Fault degradation",
		"— loss+crash ladder",
		"`loss=0.1,crash=0.5@8`",
		"no fault-free anchor cell",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

// TestSeriesReportTrends: the series constructor appends the trajectory
// section, classifying the synthetic improve/flat/regress correctly.
func TestSeriesReportTrends(t *testing.T) {
	mk := func(msgs float64) harness.Artifact {
		return harness.Artifact{Schema: harness.ArtifactSchema,
			Cells: []harness.ArtifactCell{synthCell("ire", "expander", 64, msgs)}}
	}
	s, err := trajectory.NewSeries([]harness.Artifact{mk(1000), mk(900), mk(500)},
		[]string{"pr1", "pr2", "pr3"})
	if err != nil {
		t.Fatal(err)
	}
	r := NewSeries(s, Options{})
	if r.Trends == nil || r.Trends.Improving == 0 {
		t.Fatalf("trend section missing or empty: %+v", r.Trends)
	}
	md := r.Markdown()
	for _, want := range []string{
		"series of 3 artifacts",
		"## Trajectory — 3 artifacts: pr1 → pr2 → pr3",
		"improving",
		"1000 → 900 → 500",
		"🟢",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("series markdown missing %q:\n%s", want, md)
		}
	}

	// The CSV export tags the tracked metric with its trend.
	out, err := r.CSV()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, ",improving") {
		t.Fatalf("CSV missing trend column:\n%s", out)
	}
}

// TestSeriesCSVDuplicateKeyTrends: duplicate-key rows (a fault-ladder
// anchor sharing a key with its Table-1 sibling) carry their OWN
// occurrence's trend verdict, not the first occurrence's.
func TestSeriesCSVDuplicateKeyTrends(t *testing.T) {
	// Occurrence 0 (table1 row) stays flat; occurrence 1 (the ladder
	// anchor) regresses 2x between the two artifacts.
	mk := func(anchorMsgs float64) harness.Artifact {
		return harness.Artifact{Schema: harness.ArtifactSchema, Cells: []harness.ArtifactCell{
			synthCell("ire", "expander", 64, 1000),
			synthCell("ire", "expander", 64, anchorMsgs),
			synthCell("ire", "expander", 64, 400, withAdversary("loss=0.2")),
		}}
	}
	s, err := trajectory.NewSeries([]harness.Artifact{mk(1000), mk(2000)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := NewSeries(s, Options{})
	out, err := r.CSV()
	if err != nil {
		t.Fatal(err)
	}
	var table1, anchor string
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.Contains(line, ",messages,") || !strings.Contains(line, ",ire,expander,64,0,,") {
			continue
		}
		if strings.HasPrefix(line, "table1,") {
			table1 = line
		} else if strings.HasPrefix(line, "faults,") {
			anchor = line
		}
	}
	if table1 == "" || anchor == "" {
		t.Fatalf("duplicate-key messages rows missing:\n%s", out)
	}
	if !strings.HasSuffix(table1, ",flat") {
		t.Fatalf("table1 occurrence should be flat: %s", table1)
	}
	if !strings.HasSuffix(anchor, ",regressing") {
		t.Fatalf("ladder anchor should carry its own regressing verdict: %s", anchor)
	}
}

// TestCSVShape: one row per (cell, metric), header first, section tags
// and derived columns in place.
func TestCSVShape(t *testing.T) {
	a := harness.Artifact{Schema: harness.ArtifactSchema, Cells: []harness.ArtifactCell{
		synthCell("ire", "expander", 32, 1000),
		synthCell("ire", "expander", 32, 1000),                           // ladder anchor
		synthCell("ire", "expander", 32, 400, withAdversary("loss=0.2")), // ladder step
	}}
	r := New(a, Options{})
	out, err := r.CSV()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+3*5 { // header + 3 cells × 5 metrics
		t.Fatalf("%d CSV lines, want 16:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "section,protocol,family,n,presumed_n,adversary,metric,value") {
		t.Fatalf("header: %s", lines[0])
	}
	if !strings.Contains(out, "table1,ire,expander,32") || !strings.Contains(out, "faults,ire,expander,32,0,loss=0.2") {
		t.Fatalf("CSV missing section tags:\n%s", out)
	}
	// The faulted messages row carries its anchor ratio (400/1000).
	if !strings.Contains(out, "loss=0.2,messages,400,1,200,2,0.4") {
		t.Fatalf("faulted messages row wrong:\n%s", out)
	}
	// success_rate rows carry Wilson bounds.
	if !strings.Contains(out, "success_rate,1,,,,,0.67") {
		t.Fatalf("success row missing Wilson bounds:\n%s", out)
	}
}

// TestV1ArtifactReport: a means-only v1 artifact still renders (Wilson
// recomputed from successes/trials, no dist columns).
func TestV1ArtifactReport(t *testing.T) {
	a := harness.Artifact{Schema: harness.ArtifactSchemaV1, Cells: []harness.ArtifactCell{{
		Protocol: "ire", Family: "expander", N: 64, M: 192,
		Trials: 10, Successes: 9, Messages: 1000, Rounds: 50,
	}}}
	r := New(a, Options{})
	md := r.Markdown()
	if !strings.Contains(md, "9/10") || !strings.Contains(md, "[0.596, 0.982]") {
		t.Fatalf("v1 Wilson interval missing:\n%s", md)
	}
	out, err := r.CSV()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "table1,ire,expander,64") {
		t.Fatalf("v1 CSV row missing:\n%s", out)
	}
}
