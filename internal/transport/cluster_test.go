package transport_test

import (
	"context"
	"encoding/binary"
	"fmt"
	"reflect"
	"testing"

	"anonlead/internal/graph"
	"anonlead/internal/rng"
	"anonlead/internal/sim"
	"anonlead/internal/transport"
)

// testMsg is a fixed-size payload for the parity machines.
type testMsg uint64

func (testMsg) Bits() int { return 64 }

type testCodec struct{}

func (testCodec) AppendPayload(dst []byte, p sim.Payload) ([]byte, error) {
	v, ok := p.(testMsg)
	if !ok {
		return nil, fmt.Errorf("testCodec: unknown payload %T", p)
	}
	return binary.BigEndian.AppendUint64(dst, uint64(v)), nil
}

func (testCodec) DecodePayload(src []byte) (sim.Payload, error) {
	if len(src) != 8 {
		return nil, fmt.Errorf("testCodec: payload is %d bytes, want 8", len(src))
	}
	return testMsg(binary.BigEndian.Uint64(src)), nil
}

// floodMachine floods the maximum random ID seen for a fixed number of
// rounds, cycling logical channels to exercise slot accounting, and sends
// in the very round it halts — the case where the simulator counts an
// extra drain round iff some of those last packets land on a live node.
type floodMachine struct {
	id, best   uint64
	haltRound  int
	lastInSize int
}

func newFloodFactory(haltRound int) sim.Factory {
	return func(node, degree int, r *rng.RNG) sim.Machine {
		id := r.Uint64()
		return &floodMachine{id: id, best: id, haltRound: haltRound}
	}
}

func (m *floodMachine) Init(ctx *sim.Context) {
	ctx.Broadcast(testMsg(m.best))
}

func (m *floodMachine) Step(ctx *sim.Context, inbox []sim.Packet) {
	m.lastInSize = len(inbox)
	for _, pkt := range inbox {
		if v := uint64(pkt.Payload.(testMsg)); v > m.best {
			m.best = v
		}
	}
	ctx.BroadcastChannel(uint32(ctx.Round()%3), testMsg(m.best))
	if ctx.Round() >= m.haltRound {
		ctx.Halt()
	}
}

// staggerMachine halts at different rounds on different nodes (derived
// from each node's private stream), so late senders target already-halted
// receivers — the exact inflight/drop folding the barrier must replicate.
type staggerMachine struct {
	best      uint64
	haltRound int
}

func newStaggerFactory(maxHalt int) sim.Factory {
	return func(node, degree int, r *rng.RNG) sim.Machine {
		id := r.Uint64()
		return &staggerMachine{best: id, haltRound: 1 + int(id%uint64(maxHalt))}
	}
}

func (m *staggerMachine) Init(ctx *sim.Context) { ctx.Broadcast(testMsg(m.best)) }

func (m *staggerMachine) Step(ctx *sim.Context, inbox []sim.Packet) {
	for _, pkt := range inbox {
		if v := uint64(pkt.Payload.(testMsg)); v > m.best {
			m.best = v
		}
	}
	ctx.Broadcast(testMsg(m.best))
	if ctx.Round() >= m.haltRound {
		ctx.Halt()
	}
}

type snapshot struct {
	rounds  int
	metrics sim.Metrics
	halted  []bool
	best    []uint64
}

func bestOf(m sim.Machine) uint64 {
	switch mm := m.(type) {
	case *floodMachine:
		return mm.best
	case *staggerMachine:
		return mm.best
	}
	return 0
}

func runSim(t *testing.T, g *graph.Graph, seed uint64, factory sim.Factory, budget int) snapshot {
	t.Helper()
	net := sim.New(sim.Config{Graph: g, Seed: seed}, factory)
	rounds, err := net.RunContext(context.Background(), budget)
	if err != nil {
		t.Fatalf("sim run: %v", err)
	}
	if !net.AllHalted() {
		t.Fatalf("sim did not halt within %d rounds", budget)
	}
	return snap(net, rounds)
}

func runCluster(t *testing.T, tr transport.Transport, g *graph.Graph, seed uint64, factory sim.Factory, budget int) snapshot {
	t.Helper()
	c, err := transport.NewCluster(context.Background(), transport.Config{
		Graph: g, Seed: seed, Transport: tr,
	}, factory, testCodec{})
	if err != nil {
		t.Fatalf("cluster %s: %v", tr.Name(), err)
	}
	defer c.Close()
	rounds, err := c.RunContext(context.Background(), budget)
	if err != nil {
		t.Fatalf("cluster %s run: %v", tr.Name(), err)
	}
	if !c.AllHalted() {
		t.Fatalf("cluster %s did not halt within %d rounds", tr.Name(), budget)
	}
	return snap(c, rounds)
}

func snap(rt transport.Runtime, rounds int) snapshot {
	n := rt.N()
	s := snapshot{rounds: rounds, metrics: rt.Metrics(), halted: make([]bool, n), best: make([]uint64, n)}
	for v := 0; v < n; v++ {
		s.halted[v] = rt.Halted(v)
		s.best[v] = bestOf(rt.Machine(v))
	}
	return s
}

func backends() []transport.Transport {
	return []transport.Transport{
		transport.ChanTransport{},
		transport.PipeTransport{},
		transport.TCPTransport{},
	}
}

// TestClusterMatchesSimulator is the core determinism contract: every real
// backend must reproduce the simulator's machine states, halt pattern, and
// full cost accounting bit-for-bit for the same seed.
func TestClusterMatchesSimulator(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"cycle12":   graph.Cycle(12),
		"complete6": graph.Complete(6),
		"grid3x4":   graph.Grid(3, 4),
	}
	for gname, g := range graphs {
		for _, seed := range []uint64{1, 77} {
			want := runSim(t, g, seed, newFloodFactory(g.N()), 4*g.N())
			for _, tr := range backends() {
				name := fmt.Sprintf("%s/%s/seed%d", gname, tr.Name(), seed)
				t.Run(name, func(t *testing.T) {
					got := runCluster(t, tr, g, seed, newFloodFactory(g.N()), 4*g.N())
					requireSnapshotsEqual(t, want, got)
				})
			}
		}
	}
}

// TestClusterDrainRoundParity pins the subtle stop-rule case: staggered
// halts make the final senders target halted peers, where the simulator
// either runs one extra drain round (live receiver) or stops immediately
// (all drops). The barrier must agree either way.
func TestClusterDrainRoundParity(t *testing.T) {
	g := graph.Cycle(9)
	for _, seed := range []uint64{3, 11, 29} {
		want := runSim(t, g, seed, newStaggerFactory(5), 100)
		for _, tr := range backends() {
			t.Run(fmt.Sprintf("%s/seed%d", tr.Name(), seed), func(t *testing.T) {
				got := runCluster(t, tr, g, seed, newStaggerFactory(5), 100)
				requireSnapshotsEqual(t, want, got)
			})
		}
	}
}

func requireSnapshotsEqual(t *testing.T, want, got snapshot) {
	t.Helper()
	if got.rounds != want.rounds {
		t.Errorf("rounds: cluster %d, sim %d", got.rounds, want.rounds)
	}
	if !reflect.DeepEqual(got.metrics, want.metrics) {
		t.Errorf("metrics diverge:\n  cluster %+v\n  sim     %+v", got.metrics, want.metrics)
	}
	if !reflect.DeepEqual(got.halted, want.halted) {
		t.Errorf("halt pattern diverges:\n  cluster %v\n  sim     %v", got.halted, want.halted)
	}
	if !reflect.DeepEqual(got.best, want.best) {
		t.Errorf("machine states diverge:\n  cluster %v\n  sim     %v", got.best, want.best)
	}
}

// TestClusterRunUntilContext exercises the open-ended run path with a
// convergence predicate evaluated at the quiescent barrier.
func TestClusterRunUntilContext(t *testing.T) {
	g := graph.Complete(5)
	c, err := transport.NewCluster(context.Background(), transport.Config{Graph: g, Seed: 9},
		newFloodFactory(50), testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rounds, err := c.RunUntilContext(context.Background(), 1000, func(completed int) bool {
		// Converged when every machine agrees on the maximum.
		first := bestOf(c.Machine(0))
		for v := 1; v < c.N(); v++ {
			if bestOf(c.Machine(v)) != first {
				return false
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if rounds == 0 || rounds > 3 {
		t.Fatalf("complete graph should agree after round 1, ran %d", rounds)
	}
}

// TestClusterContextCancel checks that cancelling mid-run returns promptly
// with the context error and Close leaves no goroutines wedged.
func TestClusterContextCancel(t *testing.T) {
	g := graph.Cycle(8)
	c, err := transport.NewCluster(context.Background(), transport.Config{Graph: g, Seed: 1},
		newFloodFactory(1<<30), testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	if _, err := c.RunContext(ctx, 10); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := c.RunContext(ctx, 1000); err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestClusterObserver checks the observer stream matches the simulator's:
// same rounds, same cumulative metrics per round.
func TestClusterObserver(t *testing.T) {
	g := graph.Grid(2, 3)
	const seed = 5
	collect := func(run func(obsv func(sim.RoundInfo))) []sim.RoundInfo {
		var events []sim.RoundInfo
		run(func(ri sim.RoundInfo) { events = append(events, ri) })
		return events
	}
	simEvents := collect(func(obsv func(sim.RoundInfo)) {
		net := sim.New(sim.Config{Graph: g, Seed: seed, Observer: obsv}, newFloodFactory(6))
		if _, err := net.RunContext(context.Background(), 100); err != nil {
			t.Fatal(err)
		}
	})
	cluEvents := collect(func(obsv func(sim.RoundInfo)) {
		c, err := transport.NewCluster(context.Background(), transport.Config{
			Graph: g, Seed: seed, Observer: obsv,
		}, newFloodFactory(6), testCodec{})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.RunContext(context.Background(), 100); err != nil {
			t.Fatal(err)
		}
	})
	if !reflect.DeepEqual(simEvents, cluEvents) {
		t.Fatalf("observer streams diverge:\n  sim     %+v\n  cluster %+v", simEvents, cluEvents)
	}
}

// TestHandshakeTokensDeterministic pins the seed-derived handshake secrets:
// same seed same tokens, different seed different tokens, one per edge.
func TestHandshakeTokensDeterministic(t *testing.T) {
	g := graph.Grid(3, 3)
	a := transport.HandshakeTokens(g, 42)
	b := transport.HandshakeTokens(g, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("tokens differ for identical seeds")
	}
	if len(a) != g.M() {
		t.Fatalf("%d tokens for %d edges", len(a), g.M())
	}
	c := transport.HandshakeTokens(g, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("tokens identical across different seeds")
	}
}
