package transport

import (
	"time"

	"anonlead/internal/adversary"
	"anonlead/internal/rng"
)

// FrameFate is the transport fault layer's decision for one data frame.
type FrameFate struct {
	// Drop suppresses the frame entirely (the sender still accounts it
	// as sent, like the simulator's loss adversary).
	Drop bool
	// Delay stalls the sender's write by a wall-clock duration. Round
	// markers still follow the stalled frame, so synchrony is preserved;
	// the round just takes longer.
	Delay time.Duration
}

// FaultHook decides the fate of the seq-th data frame written on one link
// endpoint. Hooks are called from the endpoint's single writer goroutine.
type FaultHook func(seq uint64) FrameFate

// FaultPlan derives the per-endpoint hooks: edge is the undirected edge's
// index in the canonical enumeration (lower endpoint ascending, then port
// ascending — the same order HandshakeTokens uses), dir is 0 for the
// lower-to-higher direction and 1 for the reverse. A nil plan or a nil
// returned hook means no faults on that endpoint.
type FaultPlan func(edge, dir int) FaultHook

// SpecFaults maps the loss/delay axes of an adversary spec onto a frame
// fault plan: each frame's fate is drawn from a seed chain keyed by
// (edge, direction, sequence number), so a run's fault pattern is a pure
// function of the spec and seed — independent of goroutine scheduling —
// exactly like the simulator's per-packet decision streams. tick converts
// the spec's round-denominated MaxDelay into wall-clock stall units.
// Crash and churn axes are ignored: this seam perturbs frames, not nodes.
func SpecFaults(spec adversary.Spec, seed uint64, tick time.Duration) FaultPlan {
	if spec.Loss == 0 && (spec.DelayProb == 0 || spec.MaxDelay == 0) {
		return nil
	}
	root := rng.New(seed).SplitString("transport:faults")
	return func(edge, dir int) FaultHook {
		link := root.Split(uint64(edge)<<1 | uint64(dir&1))
		return func(seq uint64) FrameFate {
			r := link.Split(seq)
			if r.Bernoulli(spec.Loss) {
				return FrameFate{Drop: true}
			}
			if spec.MaxDelay > 0 && r.Bernoulli(spec.DelayProb) {
				return FrameFate{Delay: tick * time.Duration(1+r.Intn(spec.MaxDelay))}
			}
			return FrameFate{}
		}
	}
}
