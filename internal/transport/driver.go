package transport

import (
	"fmt"
	"sync"
	"sync/atomic"

	"anonlead/internal/obs"
	"anonlead/internal/sim"
)

// startMsg releases a parked driver into one more round (or tells it the
// run is over).
type startMsg struct {
	round int
	stop  bool
}

// controlPlane is a driver's view of its coordinator. The in-process
// Cluster implements it with channels; cmd/ledist node processes implement
// it over the coordinator TCP connection.
type controlPlane interface {
	// waitStart blocks until the coordinator starts the next round or
	// ends the run.
	waitStart() (startMsg, error)
	// report delivers the driver's account of the round just executed.
	report(r Report) error
}

// wireMetrics is the transport's obs instrumentation, shared by every
// driver of a cluster. All fields may be nil-free no-ops when telemetry is
// off; Counter.Add is already a no-op while disabled.
type wireMetrics struct {
	framesTx *obs.Counter
	framesRx *obs.Counter
	bytesTx  *obs.Counter
	bytesRx  *obs.Counter
}

// queued is one decoded data frame parked until its delivery round.
type queued struct {
	round int
	pkt   sim.Packet
}

// portQueue buffers one port's incoming traffic between the reader
// goroutine and the driver. flushed tracks the highest round with a
// received end-of-round marker; per-link FIFO order guarantees that once
// EOR(t) is visible, every data frame of rounds <= t is already queued.
type portQueue struct {
	mu      sync.Mutex
	pkts    []queued
	flushed int
	closed  bool // peer sent its final PortClosed marker
	err     error
	wake    chan struct{} // capacity 1: kicks the single waiting driver
}

func newPortQueue() *portQueue {
	// flushed starts below the Init pseudo-round's marker EOR(-1).
	return &portQueue{flushed: -2, wake: make(chan struct{}, 1)}
}

func (q *portQueue) signal() {
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

func (q *portQueue) pushData(round int, pkt sim.Packet) {
	q.mu.Lock()
	q.pkts = append(q.pkts, queued{round: round, pkt: pkt})
	q.mu.Unlock()
}

func (q *portQueue) markFlushed(round int, closed bool) {
	q.mu.Lock()
	if round > q.flushed {
		q.flushed = round
	}
	q.closed = q.closed || closed
	q.mu.Unlock()
	q.signal()
}

func (q *portQueue) fail(err error) {
	q.mu.Lock()
	if q.err == nil && !q.closed {
		q.err = err
	}
	q.mu.Unlock()
	q.signal()
}

// await blocks until every data frame of the given round is queued: the
// peer's marker for that round arrived, or the peer closed the port for
// good (a halted peer sends nothing further, so nothing is missing).
func (q *portQueue) await(round int) error {
	for {
		q.mu.Lock()
		done := q.flushed >= round || q.closed
		err := q.err
		q.mu.Unlock()
		if done {
			return nil
		}
		if err != nil {
			return err
		}
		<-q.wake
	}
}

// pop moves the queued packets of the given round into dst. Senders write
// rounds monotonically, so the round's packets are a queue prefix.
func (q *portQueue) pop(round int, dst []sim.Packet) []sim.Packet {
	q.mu.Lock()
	i := 0
	for i < len(q.pkts) && q.pkts[i].round == round {
		dst = append(dst, q.pkts[i].pkt)
		i++
	}
	if i > 0 {
		q.pkts = q.pkts[:copy(q.pkts, q.pkts[i:])]
	}
	q.mu.Unlock()
	return dst
}

// portLoad is a driver's per-round (port, channel) bit load, the local
// half of the simulator's link-slot accounting.
type portLoad struct {
	port    int
	channel uint32
	bits    int
}

// driver owns one node of a cluster: the machine (behind a sim.Stepper),
// the node's link endpoints, and the per-port receive queues. It runs the
// synchronizer discipline — step, send, mark every port, report, park —
// in a single goroutine; one reader goroutine per port feeds the queues.
type driver struct {
	node   int
	stephr *sim.Stepper
	codec  sim.WireCodec
	links  []Link
	in     []*portQueue
	budget int // CONGEST bits per link slot
	met    *wireMetrics

	// halted is read by the reader goroutines to discard data addressed
	// to a stopped machine (the simulator drops such packets unread).
	halted atomic.Bool

	inbox  []sim.Packet
	encBuf []byte
	loads  []portLoad
}

func newDriver(node int, st *sim.Stepper, codec sim.WireCodec, links []Link, budget int, met *wireMetrics) *driver {
	d := &driver{
		node:   node,
		stephr: st,
		codec:  codec,
		links:  links,
		in:     make([]*portQueue, len(links)),
		budget: budget,
		met:    met,
	}
	for p := range d.in {
		d.in[p] = newPortQueue()
	}
	return d
}

// run is the driver goroutine body: Init, then one iteration per
// coordinator-released round until the stop message. Every released round
// produces exactly one report, even on failure — the barrier never wedges
// on a sick node; the coordinator sees the Fail and aborts.
func (d *driver) run(cp controlPlane) {
	for p := range d.links {
		go d.readPort(p)
	}
	rep, err := d.flush(-1, d.stephr.Init())
	if err != nil {
		rep.Fail = err.Error()
	}
	if cp.report(rep) != nil {
		return
	}
	for {
		msg, err := cp.waitStart()
		if err != nil || msg.stop {
			return
		}
		var rep Report
		if d.stephr.Halted() {
			// The machine is done and the ports are closed; keep
			// confirming the (latched) halt at each barrier.
			rep = Report{Node: d.node, Halted: true}
		} else {
			inbox, err := d.collect(msg.round)
			if err == nil {
				rep, err = d.flush(msg.round, d.stephr.Step(msg.round, inbox))
			} else {
				rep = Report{Node: d.node}
			}
			if err != nil {
				rep.Fail = err.Error()
			}
		}
		if cp.report(rep) != nil {
			return
		}
	}
}

// readPort is the per-port reader goroutine: it decodes incoming frames
// into the port queue until the peer closes the port or the link dies.
func (d *driver) readPort(p int) {
	q := d.in[p]
	l := d.links[p]
	for {
		f, err := l.ReadFrame()
		if err != nil {
			// EOF before a PortClosed marker is only legitimate during
			// teardown; fail records it and await surfaces it if anyone
			// still depends on this port.
			q.fail(err)
			return
		}
		d.met.framesRx.Inc()
		switch f.Type {
		case FrameData:
			if d.halted.Load() {
				continue // the simulator drops packets to halted receivers
			}
			pl, err := d.codec.DecodePayload(f.Body)
			if err != nil {
				q.fail(fmt.Errorf("port %d: %w", p, err))
				return
			}
			d.met.bytesRx.Add(int64(len(f.Body)))
			q.pushData(f.Round, sim.Packet{Port: p, Channel: f.Channel, Payload: pl})
		case FrameEOR:
			q.markFlushed(f.Round, false)
		case FramePortClosed:
			q.markFlushed(f.Round, true)
			return
		default:
			q.fail(fmt.Errorf("port %d: unexpected %v frame", p, f.Type))
			return
		}
	}
}

// collect assembles the inbox for the given round: the sends every live
// peer routed in round-1. Ports are drained in ascending order, and the
// stepper re-sorts by (port, channel), reproducing the simulator's
// canonical delivery order exactly.
func (d *driver) collect(round int) ([]sim.Packet, error) {
	d.inbox = d.inbox[:0]
	for p, q := range d.in {
		if err := q.await(round - 1); err != nil {
			return nil, fmt.Errorf("node %d port %d: %w", d.node, p, err)
		}
		d.inbox = q.pop(round-1, d.inbox)
	}
	return d.inbox, nil
}

// flush writes the round's sends as data frames, marks every port with
// EOR (or the final PortClosed when the machine halted this round), and
// builds the round report: per-port send counts for the barrier's
// in-flight accounting plus this node's half of the CONGEST cost metering.
func (d *driver) flush(round int, sends []sim.Send) (Report, error) {
	rep := Report{Node: d.node}
	d.loads = d.loads[:0]
	var perPort []uint32
	if len(sends) > 0 {
		perPort = make([]uint32, len(d.links))
	}
	for _, s := range sends {
		buf, err := d.codec.AppendPayload(d.encBuf[:0], s.Payload)
		if err != nil {
			return rep, err
		}
		d.encBuf = buf
		err = d.links[s.Port].WriteFrame(Frame{Type: FrameData, Round: round, Channel: s.Channel, Body: buf})
		if err != nil {
			return rep, err
		}
		d.met.framesTx.Inc()
		d.met.bytesTx.Add(int64(len(buf)))
		perPort[s.Port]++
		rep.Msgs++
		bits := s.Payload.Bits()
		rep.Bits += int64(bits)
		d.addLoad(s.Port, s.Channel, bits)
	}
	rep.PerPort = perPort
	rep.MaxSlots, rep.MaxChannels = d.slotCharge()
	marker := FrameEOR
	if d.stephr.Halted() {
		marker = FramePortClosed
		rep.Halted = true
		d.halted.Store(true)
	}
	for _, l := range d.links {
		if err := l.WriteFrame(Frame{Type: marker, Round: round}); err != nil {
			return rep, err
		}
		if err := l.Flush(); err != nil {
			return rep, err
		}
		d.met.framesTx.Inc()
	}
	return rep, nil
}

// addLoad merges bits into the (port, channel) load. Linear scan: a node
// sends a handful of packets per round.
func (d *driver) addLoad(port int, channel uint32, bits int) {
	for i := range d.loads {
		if d.loads[i].port == port && d.loads[i].channel == channel {
			d.loads[i].bits += bits
			return
		}
	}
	d.loads = append(d.loads, portLoad{port: port, channel: channel, bits: bits})
}

// slotCharge folds the round's loads into the node's maxima over outgoing
// links: slots = Σ per distinct channel of ceil(bits/budget) (min 1), the
// same charge sim.Network.finishRoundAccounting computes per directed
// edge. Each node owns its outgoing edges, so the coordinator's max over
// node reports equals the simulator's max over edges.
func (d *driver) slotCharge() (maxSlots, maxChannels int) {
	for i := range d.loads {
		p := d.loads[i].port
		seen := false
		for j := 0; j < i; j++ {
			if d.loads[j].port == p {
				seen = true
				break
			}
		}
		if seen {
			continue
		}
		slots, channels := 0, 0
		for j := i; j < len(d.loads); j++ {
			if d.loads[j].port != p {
				continue
			}
			s := (d.loads[j].bits + d.budget - 1) / d.budget
			if s < 1 {
				s = 1
			}
			slots += s
			channels++
		}
		if slots > maxSlots {
			maxSlots = slots
		}
		if channels > maxChannels {
			maxChannels = channels
		}
	}
	return maxSlots, maxChannels
}

// closeLinks tears down the driver's link endpoints (idempotent).
func (d *driver) closeLinks() {
	for _, l := range d.links {
		l.Close()
	}
}
