package transport

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"anonlead/internal/graph"
	"anonlead/internal/sim"
)

// This file is the multi-process deployment surface: what a node process
// (cmd/ledist) needs to wire its own ports and run its driver against a
// remote coordinator. Everything reuses the in-process machinery — the
// frame contract, the handshake tokens, the driver's synchronizer
// discipline — so a multi-process run is bit-compatible with a Cluster run
// and with the simulator.

// NewStreamLink wraps an established byte-stream connection as a Link.
// hook optionally injects per-data-frame fault fates (nil: fault-free).
func NewStreamLink(conn net.Conn, hook FaultHook) Link { return newStreamLink(conn, hook) }

// EdgeIndices returns the canonical undirected edge index for every
// directed port slot, idx[EdgeOffsets[v]+p] for node v's port p — the
// indexing HandshakeTokens derives tokens under. Every process of a
// distributed run computes the same indexing from the shared topology.
func EdgeIndices(g *graph.Graph) []int { return edgeIndices(g) }

// ControlPlane is a node process's connection to its coordinator: round
// releases in, per-round reports out. Implementations are used from a
// single goroutine.
type ControlPlane interface {
	// WaitStart blocks until the coordinator releases the next round
	// (stop=false) or ends the run (stop=true).
	WaitStart() (round int, stop bool, err error)
	// Report delivers the node's account of the round just executed.
	Report(r Report) error
}

// cpAdapter bridges the exported ControlPlane onto the driver's internal
// interface.
type cpAdapter struct{ cp ControlPlane }

func (a cpAdapter) waitStart() (startMsg, error) {
	round, stop, err := a.cp.WaitStart()
	return startMsg{round: round, stop: stop}, err
}

func (a cpAdapter) report(r Report) error { return a.cp.Report(r) }

// RunNode runs one node of a distributed election to completion: the Init
// flush, then one round per coordinator release until the stop signal.
// It blocks until the run ends and leaves the links open (the caller owns
// teardown). congestBits <= 0 selects the simulator's default budget.
func RunNode(node int, st *sim.Stepper, codec sim.WireCodec, links []Link, g *graph.Graph, congestBits int, cp ControlPlane) {
	if congestBits <= 0 {
		congestBits = sim.DefaultCongestBits(g.N())
	}
	d := newDriver(node, st, codec, links, congestBits, newWireMetrics("dist"))
	d.run(cpAdapter{cp})
}

// ConnectNode establishes one node's data-plane links of a multi-process
// deployment, the per-node half of TCPTransport.Connect: the node accepts
// one connection per lower-indexed neighbor on ln (verifying each Hello
// token), and dials every higher-indexed neighbor at addrOf(w) (opening
// with the edge's token and the acceptor-side port). The returned slice
// has one Link per port of node v. On error every established connection
// is closed.
func ConnectNode(ctx context.Context, g *graph.Graph, v int, seed uint64, ln net.Listener, addrOf func(w int) string, timeout time.Duration) ([]Link, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	deadline := time.Now().Add(timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	off := g.EdgeOffsets()
	revPort := g.ReversePorts()
	edgeID := edgeIndices(g)
	tokens := HandshakeTokens(g, seed)

	links := make([]Link, g.Degree(v))
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		ln.Close() // unblock the accept loop
	}

	want := 0
	expect := make(map[int]uint64)
	for q := 0; q < g.Degree(v); q++ {
		if g.Neighbor(v, q) < v {
			want++
			expect[q] = tokens[edgeID[off[v]+q]]
		}
	}

	var wg sync.WaitGroup
	if want > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < want; i++ {
				conn, err := ln.Accept()
				if err != nil {
					fail(err)
					return
				}
				conn.SetDeadline(deadline)
				l := newStreamLink(conn, nil)
				f, err := l.ReadFrame()
				if err != nil {
					conn.Close()
					fail(fmt.Errorf("transport: handshake read: %w", err))
					return
				}
				q, token, err := parseHello(f)
				if err != nil {
					conn.Close()
					fail(err)
					return
				}
				mu.Lock()
				wantTok, ok := expect[q]
				bad := !ok || wantTok != token || links[q] != nil
				if !bad {
					links[q] = l
				}
				mu.Unlock()
				if bad {
					conn.Close()
					fail(fmt.Errorf("transport: bad handshake for acceptor port %d", q))
					return
				}
				conn.SetDeadline(time.Time{})
			}
		}()
	}

	dialer := net.Dialer{Deadline: deadline}
	for p := 0; p < g.Degree(v) && firstErrIsNil(&mu, &firstErr); p++ {
		w := g.Neighbor(v, p)
		if w < v {
			continue
		}
		conn, err := dialer.DialContext(ctx, "tcp", addrOf(w))
		if err != nil {
			fail(fmt.Errorf("transport: dial edge (%d,%d): %w", v, w, err))
			break
		}
		conn.SetDeadline(deadline)
		e := edgeID[off[v]+p]
		q := int(revPort[off[v]+p])
		l := newStreamLink(conn, nil)
		var body [12]byte
		binary.BigEndian.PutUint64(body[:8], tokens[e])
		nb := binary.PutUvarint(body[8:], uint64(q))
		err = l.WriteFrame(Frame{Type: FrameHello, Body: body[:8+nb]})
		if err == nil {
			err = l.Flush()
		}
		if err != nil {
			conn.Close()
			fail(fmt.Errorf("transport: hello edge (%d,%d): %w", v, w, err))
			break
		}
		conn.SetDeadline(time.Time{})
		mu.Lock()
		links[p] = l
		mu.Unlock()
	}

	watchdogDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			fail(ctx.Err())
		case <-watchdogDone:
		}
	}()
	wg.Wait()
	close(watchdogDone)

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err == nil {
		for p, l := range links {
			if l == nil {
				err = fmt.Errorf("transport: node %d port %d never connected", v, p)
				break
			}
		}
	}
	if err != nil {
		for _, l := range links {
			if l != nil {
				l.Close()
			}
		}
		return nil, err
	}
	return links, nil
}

func firstErrIsNil(mu *sync.Mutex, firstErr *error) bool {
	mu.Lock()
	defer mu.Unlock()
	return *firstErr == nil
}
