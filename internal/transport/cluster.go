package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"anonlead/internal/graph"
	"anonlead/internal/obs"
	"anonlead/internal/rng"
	"anonlead/internal/sim"
	"anonlead/internal/trace"
)

// Config parameterizes an in-process cluster. Semantics mirror sim.Config
// where the fields overlap, so the two backends are interchangeable
// behind the Runtime interface.
type Config struct {
	// Graph is the topology (required).
	Graph *graph.Graph
	// Seed is the run's root seed. Per-node machine streams are derived
	// exactly as sim.New derives them, which is what makes a cluster run
	// bit-compatible with a simulator run of the same seed.
	Seed uint64
	// CongestBits overrides the per-link slot budget (default: the
	// simulator's 8·⌈log₂ n⌉).
	CongestBits int
	// Transport selects the fabric backend (default ChanTransport{}).
	Transport Transport
	// Trace receives per-node protocol trace events (may be nil).
	Trace trace.Recorder
	// Observer, when non-nil, is invoked after every counted round with
	// the same RoundInfo the simulator emits.
	Observer func(sim.RoundInfo)
}

// Cluster runs one election as real message-passing nodes inside this
// process: one driver goroutine per node over a Transport fabric, with
// the coordinator (the caller's goroutine) releasing rounds through the
// Barrier. It implements Runtime and sim.View, so the registry's
// Converged/Collect hooks and the public Run path drive it exactly like
// the simulator.
//
// Between Run calls and after a run completes, all drivers are parked at
// the barrier, so View reads (machine outputs, halt flags) are quiescent
// and race-free.
type Cluster struct {
	g        *graph.Graph
	name     string
	fabric   *Fabric
	barrier  *Barrier
	drivers  []*driver
	rngs     []rng.RNG
	starts   []chan startMsg
	reports  chan Report
	reps     []Report
	observer func(sim.RoundInfo)
	wg       sync.WaitGroup
	closed   bool

	roundHist *obs.Histogram
}

// localControl adapts the in-process channels to the driver's control
// plane. A closed start channel is the stop signal.
type localControl struct {
	start   chan startMsg
	reports chan<- Report
}

func (c *localControl) waitStart() (startMsg, error) {
	msg, ok := <-c.start
	if !ok {
		return startMsg{stop: true}, nil
	}
	return msg, nil
}

func (c *localControl) report(r Report) error {
	c.reports <- r
	return nil
}

// newWireMetrics resolves the transport counters. When telemetry is off
// the counters are unregistered zero-value instances whose Add is a no-op,
// keeping the disabled path free of registry traffic.
func newWireMetrics(backend string) *wireMetrics {
	if !obs.Enabled() {
		return &wireMetrics{
			framesTx: &obs.Counter{}, framesRx: &obs.Counter{},
			bytesTx: &obs.Counter{}, bytesRx: &obs.Counter{},
		}
	}
	reg := obs.Default()
	return &wireMetrics{
		framesTx: reg.Counter(obs.TransportFramesTx, "backend", backend),
		framesRx: reg.Counter(obs.TransportFramesRx, "backend", backend),
		bytesTx:  reg.Counter(obs.TransportBytesTx, "backend", backend),
		bytesRx:  reg.Counter(obs.TransportBytesRx, "backend", backend),
	}
}

// NewCluster connects the fabric, builds one machine per node via factory
// (with the simulator's exact per-node seed derivation), runs the Init
// pseudo-round, and parks every driver at the round-0 barrier.
func NewCluster(ctx context.Context, cfg Config, factory sim.Factory, codec sim.WireCodec) (*Cluster, error) {
	g := cfg.Graph
	if g == nil || g.N() == 0 {
		return nil, errors.New("transport: config requires a non-empty graph")
	}
	if factory == nil {
		return nil, errors.New("transport: config requires a machine factory")
	}
	if codec == nil {
		return nil, errors.New("transport: protocol has no wire codec")
	}
	tr := cfg.Transport
	if tr == nil {
		tr = ChanTransport{}
	}
	endConnect := obs.Span("transport_connect", tr.Name())
	fabric, err := tr.Connect(ctx, g, cfg.Seed)
	endConnect()
	if err != nil {
		return nil, fmt.Errorf("transport: connect %s: %w", tr.Name(), err)
	}

	n := g.N()
	budget := cfg.CongestBits
	if budget <= 0 {
		budget = sim.DefaultCongestBits(n)
	}
	c := &Cluster{
		g:        g,
		name:     tr.Name(),
		fabric:   fabric,
		barrier:  NewBarrier(g, budget),
		drivers:  make([]*driver, n),
		rngs:     make([]rng.RNG, n),
		starts:   make([]chan startMsg, n),
		reports:  make(chan Report, n),
		reps:     make([]Report, n),
		observer: cfg.Observer,
	}
	if obs.Enabled() {
		c.roundHist = obs.Default().Histogram(
			obs.TransportRoundSeconds, obs.TransportRoundSecondsBounds, "backend", c.name)
	}
	met := newWireMetrics(c.name)
	root := rng.New(cfg.Seed)
	for v := 0; v < n; v++ {
		deg := g.Degree(v)
		c.rngs[v].Reseed(root.DeriveSeed(uint64(v)))
		st := sim.NewStepper(factory(v, deg, &c.rngs[v]), v, deg, &c.rngs[v], cfg.Trace)
		c.drivers[v] = newDriver(v, st, codec, fabric.Links[v], budget, met)
		c.starts[v] = make(chan startMsg, 1)
	}
	for v := 0; v < n; v++ {
		cp := &localControl{start: c.starts[v], reports: c.reports}
		d := c.drivers[v]
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			d.run(cp)
		}()
	}
	// Init pseudo-round: drivers flush their machines' Init sends and
	// report unprompted; fold the reports like sim.New does (slots
	// charged, no base round).
	if err := c.gather(); err != nil {
		c.Close()
		return nil, err
	}
	c.barrier.FinishRound(false, c.reps)
	return c, nil
}

// gather collects exactly one report per node. On the first failed report
// it closes the fabric so drivers still blocked mid-round unblock (and
// fail in turn), then keeps draining — the barrier invariant "one report
// per node per round" holds even on the abort path.
func (c *Cluster) gather() error {
	var fail string
	for i := 0; i < len(c.reps); i++ {
		r := <-c.reports
		if r.Fail != "" && fail == "" {
			fail = fmt.Sprintf("transport: node %d: %s", r.Node, r.Fail)
			c.fabric.Close()
		}
		c.reps[r.Node] = r
	}
	if fail != "" {
		return errors.New(fail)
	}
	return nil
}

// step releases one round to every driver and folds the reports at the
// barrier, mirroring sim.Network.Step's executed-round path.
func (c *Cluster) step() error {
	round := c.barrier.Round()
	var began time.Time
	if c.roundHist != nil {
		began = time.Now()
	}
	for v := range c.starts {
		c.starts[v] <- startMsg{round: round}
	}
	if err := c.gather(); err != nil {
		return err
	}
	c.barrier.FinishRound(true, c.reps)
	if c.roundHist != nil {
		c.roundHist.Observe(time.Since(began).Seconds())
	}
	if c.observer != nil {
		c.observer(sim.RoundInfo{Round: round, Halted: c.barrier.HaltedCount(), Metrics: c.barrier.Metrics()})
	}
	return nil
}

// RunContext implements Runtime: up to rounds rounds, stopping early on
// global halt, context cancellation, or a transport failure (which, unlike
// the simulator, this backend can experience).
func (c *Cluster) RunContext(ctx context.Context, rounds int) (int, error) {
	endRun := obs.Span("transport_run", c.name)
	defer endRun()
	executed := 0
	for executed < rounds {
		if err := ctx.Err(); err != nil {
			return executed, err
		}
		if c.barrier.ShouldStop() {
			break
		}
		if err := c.step(); err != nil {
			return executed, err
		}
		executed++
	}
	return executed, nil
}

// RunUntilContext implements Runtime. done is evaluated between rounds,
// when every driver is parked at the barrier, so convergence predicates
// may read machine state without synchronization.
func (c *Cluster) RunUntilContext(ctx context.Context, maxRounds int, done func(completed int) bool) (int, error) {
	endRun := obs.Span("transport_run", c.name)
	defer endRun()
	executed := 0
	for executed < maxRounds {
		if err := ctx.Err(); err != nil {
			return executed, err
		}
		if c.barrier.ShouldStop() {
			break
		}
		if err := c.step(); err != nil {
			return executed, err
		}
		executed++
		if done(executed) {
			break
		}
	}
	return executed, nil
}

// N implements sim.View.
func (c *Cluster) N() int { return c.g.N() }

// Graph implements sim.View.
func (c *Cluster) Graph() *graph.Graph { return c.g }

// Machine implements sim.View. Valid whenever the cluster is quiescent
// (between Run calls or after one returns).
func (c *Cluster) Machine(v int) sim.Machine { return c.drivers[v].stephr.Machine() }

// Halted implements sim.View, reading the barrier's (coordinator-owned)
// halt latch.
func (c *Cluster) Halted(v int) bool { return c.barrier.Halted(v) }

// Crashed implements sim.View; the transport backend has no crash
// adversary.
func (c *Cluster) Crashed(v int) bool { return false }

// AllHalted implements Runtime.
func (c *Cluster) AllHalted() bool { return c.barrier.AllHalted() }

// Metrics implements Runtime.
func (c *Cluster) Metrics() sim.Metrics { return c.barrier.Metrics() }

// Backend names the fabric implementation ("chan", "pipe", "tcp").
func (c *Cluster) Backend() string { return c.name }

// Close stops every driver and tears the fabric down. Idempotent.
func (c *Cluster) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for _, ch := range c.starts {
		close(ch)
	}
	// Closing the fabric unblocks any driver still inside a failed round;
	// drivers parked at the barrier exit on the closed start channels.
	c.fabric.Close()
	c.wg.Wait()
}
