package transport

import (
	"context"
	"io"
	"sync"

	"anonlead/internal/graph"
)

// wireEdges enumerates g's undirected edges once each (from the lower
// endpoint, in port order — the graph package builds simple graphs, so
// this covers every edge exactly once) and installs the endpoint pair mk
// returns. On error the partial fabric is torn down.
func wireEdges(g *graph.Graph, mk func(v, p, w, q int) (Link, Link, error)) (*Fabric, error) {
	n := g.N()
	links := make([][]Link, n)
	for v := range links {
		links[v] = make([]Link, g.Degree(v))
	}
	fabric := &Fabric{Links: links}
	revPort := g.ReversePorts()
	off := g.EdgeOffsets()
	for v := 0; v < n; v++ {
		for p := 0; p < g.Degree(v); p++ {
			w := g.Neighbor(v, p)
			if w < v {
				continue
			}
			q := int(revPort[off[v]+p])
			lv, lw, err := mk(v, p, w, q)
			if err != nil {
				fabric.Close()
				return nil, err
			}
			links[v][p] = lv
			links[w][q] = lw
		}
	}
	return fabric, nil
}

// ChanTransport wires the topology with in-process channel links: frames
// pass between driver goroutines as values, with no byte serialization of
// the framing itself (payloads are still encoded through the protocol's
// wire codec, so codec bugs surface here too). It is the fastest backend
// and the default for WithTransport tests.
type ChanTransport struct {
	// Buffer is the per-direction frame buffer (default 64). Any value
	// deadlocks nothing — each port has a dedicated reader goroutine —
	// it only tunes how early writers park.
	Buffer int
}

// Name implements Transport.
func (ChanTransport) Name() string { return "chan" }

// Connect implements Transport.
func (t ChanTransport) Connect(_ context.Context, g *graph.Graph, _ uint64) (*Fabric, error) {
	buf := t.Buffer
	if buf <= 0 {
		buf = 64
	}
	return wireEdges(g, func(v, p, w, q int) (Link, Link, error) {
		vw := make(chan Frame, buf)
		wv := make(chan Frame, buf)
		done := make(chan struct{})
		once := new(sync.Once)
		return &chanLink{out: vw, in: wv, done: done, once: once},
			&chanLink{out: wv, in: vw, done: done, once: once}, nil
	})
}

// chanLink is one endpoint of a channel edge. The two endpoints share the
// done channel: closing either side kills the edge, unblocking both
// directions (frames already buffered are still drained first).
type chanLink struct {
	out  chan<- Frame
	in   <-chan Frame
	done chan struct{}
	once *sync.Once
}

func (l *chanLink) WriteFrame(f Frame) error {
	if len(f.Body) > 0 {
		// The frame crosses goroutines by value; the caller reuses its
		// encode buffer, so the body must be owned by the frame.
		f.Body = append([]byte(nil), f.Body...)
	}
	select {
	case l.out <- f:
		return nil
	case <-l.done:
		return io.ErrClosedPipe
	}
}

func (l *chanLink) Flush() error { return nil }

func (l *chanLink) ReadFrame() (Frame, error) {
	select {
	case f := <-l.in:
		return f, nil
	default:
	}
	select {
	case f := <-l.in:
		return f, nil
	case <-l.done:
		// Prefer any frame that raced in ahead of the close.
		select {
		case f := <-l.in:
			return f, nil
		default:
			return Frame{}, io.EOF
		}
	}
}

func (l *chanLink) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}
