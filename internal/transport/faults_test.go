package transport

import (
	"net"
	"testing"
	"time"

	"anonlead/internal/adversary"
)

func TestSpecFaultsZeroSpec(t *testing.T) {
	if p := SpecFaults(adversary.Spec{}, 7, time.Millisecond); p != nil {
		t.Fatal("zero spec should yield a nil plan")
	}
	// Delay without a round cap is inert too — adversary.Build defaults
	// MaxDelay, but SpecFaults takes the spec literally.
	if p := SpecFaults(adversary.Spec{DelayProb: 0.5}, 7, time.Millisecond); p != nil {
		t.Fatal("delay spec without MaxDelay should yield a nil plan")
	}
	if p := SpecFaults(adversary.Spec{DelayProb: 0.5, MaxDelay: 3}, 7, time.Millisecond); p == nil {
		t.Fatal("delay spec with MaxDelay should yield a plan")
	}
}

func TestSpecFaultsDeterministic(t *testing.T) {
	spec := adversary.Spec{Loss: 0.3, DelayProb: 0.2, MaxDelay: 4}
	const seed = 42
	tick := time.Millisecond

	sample := func() [][]FrameFate {
		plan := SpecFaults(spec, seed, tick)
		if plan == nil {
			t.Fatal("non-zero spec yielded nil plan")
		}
		var out [][]FrameFate
		for edge := 0; edge < 3; edge++ {
			for dir := 0; dir < 2; dir++ {
				hook := plan(edge, dir)
				fates := make([]FrameFate, 64)
				for seq := range fates {
					fates[seq] = hook(uint64(seq))
				}
				out = append(out, fates)
			}
		}
		return out
	}

	a, b := sample(), sample()
	drops, delays := 0, 0
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("link %d seq %d: fate differs across identical plans: %+v vs %+v", i, j, a[i][j], b[i][j])
			}
			if a[i][j].Drop {
				drops++
			}
			if a[i][j].Delay > 0 {
				delays++
				if a[i][j].Delay > time.Duration(spec.MaxDelay)*tick {
					t.Fatalf("delay %v exceeds cap %v", a[i][j].Delay, time.Duration(spec.MaxDelay)*tick)
				}
			}
		}
	}
	// 384 samples at 30% loss / 20% delay: both should fire well away from
	// zero and from saturation.
	if drops == 0 || drops == 6*64 {
		t.Fatalf("implausible drop count %d/384", drops)
	}
	if delays == 0 {
		t.Fatalf("no delays sampled in 384 frames at DelayProb=0.2")
	}

	other := SpecFaults(spec, seed+1, tick)
	diff := false
	hookA, hookB := SpecFaults(spec, seed, tick)(0, 0), other(0, 0)
	for seq := uint64(0); seq < 64 && !diff; seq++ {
		if hookA(seq) != hookB(seq) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical fate streams")
	}
}

// TestStreamLinkDropsFaultedDataFrames checks the frame-level fault seam:
// a hook that drops every data frame suppresses them on the wire while
// round markers still pass, so the barrier protocol cannot wedge.
func TestStreamLinkDropsFaultedDataFrames(t *testing.T) {
	c1, c2 := net.Pipe()
	dropAll := func(seq uint64) FrameFate { return FrameFate{Drop: true} }
	tx := newStreamLink(c1, dropAll)
	rx := newStreamLink(c2, nil)

	done := make(chan error, 1)
	go func() {
		if err := tx.WriteFrame(Frame{Type: FrameData, Round: 0, Body: []byte{1, 2, 3}}); err != nil {
			done <- err
			return
		}
		if err := tx.WriteFrame(Frame{Type: FrameEOR, Round: 0}); err != nil {
			done <- err
			return
		}
		done <- tx.Flush()
	}()

	f, err := rx.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != FrameEOR || f.Round != 0 {
		t.Fatalf("first frame on the wire is %+v, want the EOR marker (data frame should be dropped)", f)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	tx.Close()
	rx.Close()
}

// TestStreamLinkDelaysFaultedDataFrames checks the delay arm: the frame
// still arrives, after at least the injected latency.
func TestStreamLinkDelaysFaultedDataFrames(t *testing.T) {
	const lag = 30 * time.Millisecond
	c1, c2 := net.Pipe()
	delay := func(seq uint64) FrameFate { return FrameFate{Delay: lag} }
	tx := newStreamLink(c1, delay)
	rx := newStreamLink(c2, nil)

	start := time.Now()
	go func() {
		tx.WriteFrame(Frame{Type: FrameData, Round: 0, Body: []byte{9}})
		tx.Flush()
	}()
	f, err := rx.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != FrameData {
		t.Fatalf("got %v frame", f.Type)
	}
	if el := time.Since(start); el < lag {
		t.Fatalf("frame arrived after %v, before the %v injected delay", el, lag)
	}
	tx.Close()
	rx.Close()
}
