package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"io"
	"net"
	"time"

	"anonlead/internal/graph"
)

// streamLink frames a reliable byte stream (net.Pipe, TCP): every frame
// actually serializes through the wire format. Reads and writes may run
// concurrently (one driver writer, one reader goroutine), matching
// net.Conn's concurrency contract; Close unblocks both.
type streamLink struct {
	conn io.ReadWriteCloser
	bw   *bufio.Writer
	br   *bufio.Reader
	wbuf []byte // encode scratch, one frame at a time
	rbuf []byte // decode scratch; returned Frame bodies alias it
	hook FaultHook
	seq  uint64
}

func newStreamLink(conn io.ReadWriteCloser, hook FaultHook) *streamLink {
	return &streamLink{
		conn: conn,
		bw:   bufio.NewWriter(conn),
		br:   bufio.NewReader(conn),
		hook: hook,
	}
}

func (l *streamLink) WriteFrame(f Frame) error {
	if l.hook != nil && f.Type == FrameData {
		// The fault seam applies to data frames only: round markers must
		// always arrive or the barrier would wedge. A dropped frame was
		// "sent" as far as the sender's accounting is concerned, exactly
		// like the simulator's loss adversary.
		fate := l.hook(l.seq)
		l.seq++
		if fate.Drop {
			return nil
		}
		if fate.Delay > 0 {
			time.Sleep(fate.Delay)
		}
	}
	buf, err := AppendFrame(l.wbuf[:0], f)
	if err != nil {
		return err
	}
	l.wbuf = buf
	_, err = l.bw.Write(buf)
	return err
}

func (l *streamLink) Flush() error { return l.bw.Flush() }

func (l *streamLink) ReadFrame() (Frame, error) {
	var hdr [framePrefixSize]byte
	if _, err := io.ReadFull(l.br, hdr[:]); err != nil {
		return Frame{}, err
	}
	size := int(binary.BigEndian.Uint32(hdr[:]))
	switch {
	case size == 0:
		return Frame{}, ErrEmptyFrame
	case size > MaxFrameSize:
		return Frame{}, ErrFrameTooLarge
	}
	if cap(l.rbuf) < size {
		l.rbuf = make([]byte, size)
	}
	buf := l.rbuf[:size]
	if _, err := io.ReadFull(l.br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	return parseFrameBody(buf)
}

func (l *streamLink) Close() error { return l.conn.Close() }

// PipeTransport wires the topology with synchronous in-memory byte
// streams (net.Pipe): the full framing and flush path of the TCP backend
// without sockets, so tests exercise wire encoding and backpressure
// hermetically.
type PipeTransport struct{}

// Name implements Transport.
func (PipeTransport) Name() string { return "pipe" }

// Connect implements Transport.
func (PipeTransport) Connect(_ context.Context, g *graph.Graph, _ uint64) (*Fabric, error) {
	return wireEdges(g, func(v, p, w, q int) (Link, Link, error) {
		cv, cw := net.Pipe()
		return newStreamLink(cv, nil), newStreamLink(cw, nil), nil
	})
}
