package transport

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"anonlead/internal/graph"
	"anonlead/internal/rng"
)

// TCPTransport wires the topology with real TCP connections, one per
// edge, established through an anonymity-preserving handshake: the lower
// endpoint of each edge dials the higher endpoint's listener and opens
// with a Hello frame carrying the edge's seed-derived token plus the
// acceptor-side port number. Ports are exactly the local names the
// anonymous model grants a node, and the token authenticates the edge
// without either side revealing a global identity — so the handshake adds
// no knowledge the protocol machines could exploit, and determinism holds:
// the same seed elects the same leader in the same round as the simulator.
type TCPTransport struct {
	// Addr is the listen address; default "127.0.0.1:0" (kernel-assigned
	// ports on loopback).
	Addr string
	// Faults optionally injects per-data-frame drop/delay fates (see
	// SpecFaults). Fault-free runs are bit-compatible with the simulator;
	// dropping breaks that equivalence by design.
	Faults FaultPlan
	// HandshakeTimeout bounds connection establishment (default 10s).
	HandshakeTimeout time.Duration
}

// Name implements Transport.
func (TCPTransport) Name() string { return "tcp" }

// HandshakeTokens derives the per-edge handshake secrets from the run
// seed. Edges are indexed in the canonical enumeration order (lower
// endpoint ascending, then its ports ascending), which both endpoints of
// a distributed run can compute from the shared topology alone. The
// tokens authenticate edges, not nodes: no node index is derivable from
// what crosses the wire.
func HandshakeTokens(g *graph.Graph, seed uint64) []uint64 {
	root := rng.New(seed).SplitString("transport:handshake")
	tokens := make([]uint64, g.M())
	for i := range tokens {
		tokens[i] = root.DeriveSeed(uint64(i))
	}
	return tokens
}

// edgeIndices returns the canonical undirected edge index for every
// directed port slot: idx[off[v]+p] for node v's port p.
func edgeIndices(g *graph.Graph) []int {
	off := g.EdgeOffsets()
	revPort := g.ReversePorts()
	idx := make([]int, off[g.N()])
	id := 0
	for v := 0; v < g.N(); v++ {
		for p := 0; p < g.Degree(v); p++ {
			w := g.Neighbor(v, p)
			if w < v {
				continue
			}
			q := int(revPort[off[v]+p])
			idx[off[v]+p] = id
			idx[off[w]+q] = id
			id++
		}
	}
	return idx
}

// Connect implements Transport: it stands up one loopback listener per
// node, dials every edge from its lower endpoint, and verifies the Hello
// token before installing the link. All nodes live in this process; the
// multi-process variant in cmd/ledist reuses the same frame contract and
// tokens but each node process wires only its own ports.
func (t TCPTransport) Connect(ctx context.Context, g *graph.Graph, seed uint64) (*Fabric, error) {
	n := g.N()
	addr := t.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	timeout := t.HandshakeTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	deadline := time.Now().Add(timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}

	off := g.EdgeOffsets()
	revPort := g.ReversePorts()
	edgeID := edgeIndices(g)
	tokens := HandshakeTokens(g, seed)

	listeners := make([]net.Listener, n)
	for v := range listeners {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			for _, l := range listeners[:v] {
				l.Close()
			}
			return nil, fmt.Errorf("transport: listen: %w", err)
		}
		listeners[v] = ln
	}
	closeListeners := func() {
		for _, ln := range listeners {
			ln.Close()
		}
	}

	links := make([][]Link, n)
	for v := range links {
		links[v] = make([]Link, g.Degree(v))
	}
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		closeListeners() // unblock every accept loop
	}
	install := func(v, p int, l Link) {
		mu.Lock()
		links[v][p] = l
		mu.Unlock()
	}
	hook := func(edge, dir int) FaultHook {
		if t.Faults == nil {
			return nil
		}
		return t.Faults(edge, dir)
	}

	var wg sync.WaitGroup
	// Acceptors: node w accepts one connection per port whose peer has
	// the lower index (that peer dials).
	for w := 0; w < n; w++ {
		want := 0
		expect := make(map[int]uint64) // acceptor port -> edge token
		for q := 0; q < g.Degree(w); q++ {
			if g.Neighbor(w, q) < w {
				want++
				expect[q] = tokens[edgeID[off[w]+q]]
			}
		}
		if want == 0 {
			continue
		}
		wg.Add(1)
		go func(w, want int, expect map[int]uint64) {
			defer wg.Done()
			for i := 0; i < want; i++ {
				conn, err := listeners[w].Accept()
				if err != nil {
					fail(err)
					return
				}
				conn.SetDeadline(deadline)
				l := newStreamLink(conn, nil)
				f, err := l.ReadFrame()
				if err != nil {
					conn.Close()
					fail(fmt.Errorf("transport: handshake read: %w", err))
					return
				}
				q, token, err := parseHello(f)
				if err != nil {
					conn.Close()
					fail(err)
					return
				}
				wantTok, ok := expect[q]
				if !ok || wantTok != token || links[w][q] != nil {
					conn.Close()
					fail(fmt.Errorf("transport: bad handshake for acceptor port %d", q))
					return
				}
				conn.SetDeadline(time.Time{})
				l.hook = hook(edgeID[off[w]+q], 1)
				install(w, q, l)
			}
		}(w, want, expect)
	}
	// Dialer: every edge is dialed from its lower endpoint, sequentially
	// (kernel accept queues decouple dialing from the accept loops).
	wg.Add(1)
	go func() {
		defer wg.Done()
		dialer := net.Dialer{Deadline: deadline}
		for v := 0; v < n; v++ {
			for p := 0; p < g.Degree(v); p++ {
				w := g.Neighbor(v, p)
				if w < v {
					continue
				}
				conn, err := dialer.DialContext(ctx, "tcp", listeners[w].Addr().String())
				if err != nil {
					fail(fmt.Errorf("transport: dial edge (%d,%d): %w", v, w, err))
					return
				}
				conn.SetDeadline(deadline)
				e := edgeID[off[v]+p]
				q := int(revPort[off[v]+p])
				l := newStreamLink(conn, hook(e, 0))
				var body [12]byte
				binary.BigEndian.PutUint64(body[:8], tokens[e])
				nb := binary.PutUvarint(body[8:], uint64(q))
				err = l.WriteFrame(Frame{Type: FrameHello, Body: body[:8+nb]})
				if err == nil {
					err = l.Flush()
				}
				if err != nil {
					conn.Close()
					fail(fmt.Errorf("transport: hello edge (%d,%d): %w", v, w, err))
					return
				}
				conn.SetDeadline(time.Time{})
				install(v, p, l)
			}
		}
	}()

	// Abort establishment if the context dies while accepts are parked.
	watchdogDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			fail(ctx.Err())
		case <-watchdogDone:
		}
	}()
	wg.Wait()
	close(watchdogDone)
	closeListeners()

	fabric := &Fabric{Links: links}
	if firstErr != nil {
		fabric.Close()
		return nil, firstErr
	}
	for v := range links {
		for p, l := range links[v] {
			if l == nil {
				fabric.Close()
				return nil, fmt.Errorf("transport: edge at node %d port %d never connected", v, p)
			}
		}
	}
	return fabric, nil
}

// parseHello extracts (acceptor port, token) from a Hello frame body.
func parseHello(f Frame) (int, uint64, error) {
	if f.Type != FrameHello {
		return 0, 0, fmt.Errorf("transport: expected hello, got %v", f.Type)
	}
	if len(f.Body) < 9 {
		return 0, 0, fmt.Errorf("transport: short hello body")
	}
	token := binary.BigEndian.Uint64(f.Body[:8])
	port, n := binary.Uvarint(f.Body[8:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("transport: bad hello port varint")
	}
	return int(port), token, nil
}
