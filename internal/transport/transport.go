// Package transport runs registered protocol machines as real
// message-passing nodes: one goroutine (or process) per node, exchanging
// length-prefixed framed messages over per-port links, with a coordinator
// round barrier enforcing the CONGEST model's global synchrony.
//
// The package splits the execution substrate the in-memory simulator
// fuses:
//
//   - A Transport wires a topology into a Fabric of per-port Links
//     (in-process channels, net.Pipe byte streams, or localhost TCP
//     sockets established through a seed-derived anonymous handshake).
//   - A driver owns one node: it pumps a sim.Stepper — the same machine
//     code the simulator runs — delivering packets that arrived over the
//     wire and flushing the machine's sends as framed messages.
//   - The Barrier replicates the simulator's round accounting exactly
//     (halt latching, in-flight packet counting in node order, CONGEST
//     slot charging), so a Cluster is bit-compatible with sim.Network:
//     same seed, same leader, same round count, same cost metrics.
//
// Synchrony is the synchronizer-α discipline: a node's sends for round t
// are followed by an end-of-round marker on every link, and no node steps
// round t+1 before it holds the marker (or a final port-close) for round t
// from every live neighbor. The coordinator starts a round only after all
// nodes reported the previous one, and stops exactly where the simulator
// would: when every node has halted and nothing is in flight.
package transport

import (
	"context"

	"anonlead/internal/graph"
	"anonlead/internal/sim"
)

// Link is one endpoint of a framed, reliable, order-preserving connection
// between two node ports. A Link has a single writer (the node's driver)
// and a single reader (the node's per-port reader goroutine); Close may be
// called from any goroutine and unblocks both.
type Link interface {
	// WriteFrame sends one frame. Frames arrive at the peer in write
	// order.
	WriteFrame(f Frame) error
	// Flush pushes buffered frames to the peer. Drivers flush once per
	// round per link, after the end-of-round marker.
	Flush() error
	// ReadFrame receives the next frame. The returned frame's Body is
	// only valid until the next ReadFrame call. It returns io.EOF after
	// the peer closed the link.
	ReadFrame() (Frame, error)
	// Close tears the link down, unblocking pending reads and writes.
	Close() error
}

// Fabric is a wired topology: links[v][p] is node v's endpoint of the
// connection behind its port p, connected to g.Neighbor(v, p)'s reverse
// port. Closing a fabric closes every link (idempotent).
type Fabric struct {
	Links [][]Link
}

// Close closes every link in the fabric.
func (f *Fabric) Close() error {
	var first error
	for _, ports := range f.Links {
		for _, l := range ports {
			if l == nil {
				continue
			}
			if err := l.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Transport builds the communication fabric for a topology. The seed
// parameterizes any transport-level randomness (the TCP handshake tokens);
// it never influences protocol behavior, which depends only on the
// machines' own seed-derived streams.
type Transport interface {
	// Connect wires g into a fabric. Implementations must deliver frames
	// reliably and in order per link; the round barrier supplies the
	// synchrony.
	Connect(ctx context.Context, g *graph.Graph, seed uint64) (*Fabric, error)
	// Name identifies the backend in errors and telemetry labels.
	Name() string
}

// Runtime is the execution surface the election runner drives: the
// in-memory simulator re-expressed as one backend (sim.Network satisfies
// this interface as-is) and the real-transport Cluster as another. The
// embedded sim.View is what the registry's Converged/Collect hooks
// consume, so protocol outcome logic is backend-agnostic too.
type Runtime interface {
	sim.View

	// RunContext executes up to rounds rounds, stopping early on global
	// halt or context cancellation (see sim.Network.RunContext).
	RunContext(ctx context.Context, rounds int) (int, error)
	// RunUntilContext executes rounds until done(completed) reports true,
	// maxRounds is reached, the run globally halts, or ctx is cancelled.
	RunUntilContext(ctx context.Context, maxRounds int, done func(completed int) bool) (int, error)
	// AllHalted reports whether every node has stopped.
	AllHalted() bool
	// Metrics returns the accumulated cost accounting.
	Metrics() sim.Metrics
	// Close releases the backend's resources (goroutines, sockets).
	Close()
}

var _ Runtime = (*sim.Network)(nil)
