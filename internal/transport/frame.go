package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// FrameType discriminates the wire frames. Data-plane frames flow between
// node ports; control-plane frames flow between a node process and the
// cmd/ledist coordinator.
type FrameType uint8

const (
	// FrameHello opens a TCP data link: the dialer proves it is this
	// edge's legitimate peer with the seed-derived token and names the
	// acceptor-side port. No node identifier crosses the wire.
	FrameHello FrameType = iota + 1
	// FrameData carries one protocol payload: Round is the sender's round
	// (-1 for Init), Channel the logical execution, Body the encoded
	// payload.
	FrameData
	// FrameEOR marks the end of the sender's Round on this link: every
	// data frame of that round has been written before it.
	FrameEOR
	// FramePortClosed is the final frame a halting sender ever writes on
	// this link. It doubles as the end-of-round marker for Round.
	FramePortClosed
	// FrameJoin enrolls a node process with the coordinator (body: the
	// node's seed-derived join token).
	FrameJoin
	// FramePlan carries the JSON run plan from coordinator to node.
	FramePlan
	// FrameStart releases one round (Round is the round to execute).
	FrameStart
	// FrameReport carries a node's encoded round Report back.
	FrameReport
	// FrameStop tells a node process the run is over.
	FrameStop
	// FrameOutcome carries a node's final JSON outcome summary.
	FrameOutcome
)

// Frame is one wire message. The encoding is a 4-byte big-endian length
// (of everything after it), the type byte, the round as a zigzag varint,
// the channel as a uvarint, then the body.
type Frame struct {
	Type    FrameType
	Round   int
	Channel uint32
	Body    []byte
}

// MaxFrameSize bounds the encoded size of a frame after the length prefix.
// CONGEST payloads are O(log n) bits, so a megabyte is far beyond any
// legitimate frame; the bound exists to fail fast on corrupt or hostile
// length prefixes instead of allocating their claimed size.
const MaxFrameSize = 1 << 20

const framePrefixSize = 4

var (
	// ErrFrameTooLarge reports a length prefix beyond MaxFrameSize.
	ErrFrameTooLarge = errors.New("transport: frame exceeds MaxFrameSize")
	// ErrEmptyFrame reports a zero-length frame (no type byte).
	ErrEmptyFrame = errors.New("transport: zero-length frame")
	// ErrTruncatedFrame reports a buffer ending mid-frame.
	ErrTruncatedFrame = errors.New("transport: truncated frame")
)

// AppendFrame appends f's wire encoding to dst and returns the extended
// slice. It fails (returning dst unmodified) only when the encoded frame
// would exceed MaxFrameSize.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length prefix, patched below
	dst = append(dst, byte(f.Type))
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], int64(f.Round))
	dst = append(dst, tmp[:n]...)
	n = binary.PutUvarint(tmp[:], uint64(f.Channel))
	dst = append(dst, tmp[:n]...)
	dst = append(dst, f.Body...)
	size := len(dst) - start - framePrefixSize
	if size > MaxFrameSize {
		return dst[:start], ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(dst[start:], uint32(size))
	return dst, nil
}

// DecodeFrame decodes the first frame in b, returning the frame and the
// number of bytes it occupied. The returned frame's Body aliases b. A
// buffer that ends before the frame does yields ErrTruncatedFrame, so
// streaming callers can distinguish "need more data" from corruption.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < framePrefixSize {
		return Frame{}, 0, ErrTruncatedFrame
	}
	size := int(binary.BigEndian.Uint32(b))
	switch {
	case size == 0:
		return Frame{}, 0, ErrEmptyFrame
	case size > MaxFrameSize:
		return Frame{}, 0, ErrFrameTooLarge
	case len(b) < framePrefixSize+size:
		return Frame{}, 0, ErrTruncatedFrame
	}
	f, err := parseFrameBody(b[framePrefixSize : framePrefixSize+size])
	if err != nil {
		return Frame{}, 0, err
	}
	return f, framePrefixSize + size, nil
}

// parseFrameBody decodes the post-prefix portion of a frame (shared by the
// buffer decoder above and the stream reader, which has already consumed
// the length prefix). b must be the exact frame contents.
func parseFrameBody(b []byte) (Frame, error) {
	var f Frame
	f.Type = FrameType(b[0])
	if f.Type < FrameHello || f.Type > FrameOutcome {
		return Frame{}, fmt.Errorf("transport: unknown frame type %d", b[0])
	}
	rest := b[1:]
	round, n := binary.Varint(rest)
	if n <= 0 {
		return Frame{}, fmt.Errorf("transport: bad round varint in %v frame", f.Type)
	}
	rest = rest[n:]
	channel, n := binary.Uvarint(rest)
	if n <= 0 {
		return Frame{}, fmt.Errorf("transport: bad channel varint in %v frame", f.Type)
	}
	if channel > 1<<32-1 {
		return Frame{}, fmt.Errorf("transport: channel %d overflows uint32", channel)
	}
	f.Round = int(round)
	f.Channel = uint32(channel)
	f.Body = rest[n:]
	return f, nil
}

// String names the frame type for errors and logs.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameData:
		return "data"
	case FrameEOR:
		return "eor"
	case FramePortClosed:
		return "port-closed"
	case FrameJoin:
		return "join"
	case FramePlan:
		return "plan"
	case FrameStart:
		return "start"
	case FrameReport:
		return "report"
	case FrameStop:
		return "stop"
	case FrameOutcome:
		return "outcome"
	default:
		return fmt.Sprintf("frame(%d)", uint8(t))
	}
}
