package transport

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: FrameData, Round: 0, Channel: 0, Body: []byte{1, 2, 3}},
		{Type: FrameData, Round: -1, Channel: 7, Body: []byte{0xff}},
		{Type: FrameEOR, Round: 123456},
		{Type: FramePortClosed, Round: -1},
		{Type: FrameHello, Body: bytes.Repeat([]byte{0xab}, 9)},
		{Type: FrameData, Round: 1 << 30, Channel: 1<<32 - 1, Body: nil},
		{Type: FrameReport, Round: 3, Body: bytes.Repeat([]byte{7}, 1000)},
		{Type: FrameOutcome, Body: []byte(`{"ok":true}`)},
	}
	var buf []byte
	for _, f := range frames {
		var err error
		buf, err = AppendFrame(buf, f)
		if err != nil {
			t.Fatalf("AppendFrame(%+v): %v", f, err)
		}
	}
	rest := buf
	for i, want := range frames {
		got, n, err := DecodeFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: DecodeFrame: %v", i, err)
		}
		if got.Type != want.Type || got.Round != want.Round || got.Channel != want.Channel ||
			!bytes.Equal(got.Body, want.Body) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after decoding all frames", len(rest))
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	valid, err := AppendFrame(nil, Frame{Type: FrameData, Round: 5, Channel: 2, Body: []byte{9, 9}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty buffer", nil, ErrTruncatedFrame},
		{"short prefix", []byte{0, 0, 0}, ErrTruncatedFrame},
		{"zero length", []byte{0, 0, 0, 0}, ErrEmptyFrame},
		{"oversized", []byte{0xff, 0xff, 0xff, 0xff}, ErrFrameTooLarge},
		{"just oversized", []byte{0, 16, 0, 1}, ErrFrameTooLarge},
		{"truncated body", valid[:len(valid)-1], ErrTruncatedFrame},
		{"truncated mid-header", valid[:5], ErrTruncatedFrame},
	}
	for _, tc := range cases {
		if _, _, err := DecodeFrame(tc.buf); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v want %v", tc.name, err, tc.want)
		}
	}
	// Unknown type and corrupt varints are errors but not sentinel ones.
	bad := append([]byte{0, 0, 0, 1}, 0xee)
	if _, _, err := DecodeFrame(bad); err == nil {
		t.Error("unknown frame type decoded without error")
	}
	badRound := []byte{0, 0, 0, 2, byte(FrameData), 0x80}
	if _, _, err := DecodeFrame(badRound); err == nil {
		t.Error("truncated round varint decoded without error")
	}
}

func TestAppendFrameRejectsOversizedBody(t *testing.T) {
	f := Frame{Type: FrameData, Body: make([]byte, MaxFrameSize)}
	if _, err := AppendFrame(nil, f); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v want ErrFrameTooLarge", err)
	}
	prefix := []byte{1, 2, 3}
	out, err := AppendFrame(prefix, f)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v want ErrFrameTooLarge", err)
	}
	if !bytes.Equal(out, prefix) {
		t.Fatalf("failed append modified dst: %v", out)
	}
}

func FuzzDecodeFrame(f *testing.F) {
	seedFrames := []Frame{
		{Type: FrameData, Round: 0, Channel: 1, Body: []byte{1, 2, 3}},
		{Type: FrameEOR, Round: -1},
		{Type: FramePortClosed, Round: 99},
		{Type: FrameHello, Body: make([]byte, 12)},
	}
	for _, sf := range seedFrames {
		buf, err := AppendFrame(nil, sf)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n < framePrefixSize+1 || n > len(data) {
			t.Fatalf("decoded length %d out of range for %d input bytes", n, len(data))
		}
		// A decoded frame must re-encode and decode to itself (bodies may
		// alias the input, so compare values, not storage).
		re, err := AppendFrame(nil, fr)
		if err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
		fr2, _, err := DecodeFrame(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if fr.Type != fr2.Type || fr.Round != fr2.Round || fr.Channel != fr2.Channel ||
			!bytes.Equal(fr.Body, fr2.Body) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", fr, fr2)
		}
	})
}

func TestReportRoundTrip(t *testing.T) {
	reports := []Report{
		{},
		{Node: 3, Halted: true, PerPort: []uint32{0, 2, 1}, Msgs: 3, Bits: 96, MaxSlots: 2, MaxChannels: 1},
		{Node: 1000, Fail: "broken pipe"},
	}
	for i, want := range reports {
		got, err := DecodeReport(AppendReport(nil, want))
		if err != nil {
			t.Fatalf("report %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("report %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := DecodeReport([]byte{3}); err == nil {
		t.Error("truncated report decoded without error")
	}
}

// TestStreamLinkExchange drives two endpoints of a net.Pipe link from
// concurrent goroutines, each writing 10k data frames interleaved with
// round markers, and checks every frame arrives intact and in order. This
// is the transport's -race workout.
func TestStreamLinkExchange(t *testing.T) {
	const frames = 10000
	c1, c2 := net.Pipe()
	a := newStreamLink(c1, nil)
	b := newStreamLink(c2, nil)

	send := func(l *streamLink) error {
		body := make([]byte, 16)
		for i := 0; i < frames; i++ {
			for j := range body {
				body[j] = byte(i + j)
			}
			if err := l.WriteFrame(Frame{Type: FrameData, Round: i, Channel: uint32(i % 3), Body: body}); err != nil {
				return fmt.Errorf("frame %d: %w", i, err)
			}
			if i%100 == 99 {
				if err := l.WriteFrame(Frame{Type: FrameEOR, Round: i}); err != nil {
					return err
				}
				if err := l.Flush(); err != nil {
					return err
				}
			}
		}
		if err := l.WriteFrame(Frame{Type: FramePortClosed, Round: frames}); err != nil {
			return err
		}
		return l.Flush()
	}
	recv := func(l *streamLink) error {
		want := 0
		for {
			f, err := l.ReadFrame()
			if err != nil {
				return err
			}
			switch f.Type {
			case FrameData:
				if f.Round != want || f.Channel != uint32(want%3) {
					return fmt.Errorf("frame %d: got round %d channel %d", want, f.Round, f.Channel)
				}
				for j, by := range f.Body {
					if by != byte(want+j) {
						return fmt.Errorf("frame %d byte %d corrupted", want, j)
					}
				}
				want++
			case FrameEOR:
				if f.Round != want-1 {
					return fmt.Errorf("eor for round %d at frame %d", f.Round, want)
				}
			case FramePortClosed:
				if want != frames {
					return fmt.Errorf("port closed after %d frames, want %d", want, frames)
				}
				return nil
			default:
				return fmt.Errorf("unexpected %v frame", f.Type)
			}
		}
	}

	errc := make(chan error, 4)
	go func() { errc <- send(a) }()
	go func() { errc <- send(b) }()
	go func() { errc <- recv(a) }()
	go func() { errc <- recv(b) }()
	for i := 0; i < 4; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	if _, err := b.ReadFrame(); err == nil {
		t.Fatal("read after peer close succeeded")
	} else if err != io.EOF && err != io.ErrClosedPipe && err != io.ErrUnexpectedEOF {
		// net.Pipe reports io.ErrClosedPipe; TCP reports io.EOF. Either
		// way the reader unblocks.
		t.Logf("post-close read error: %v", err)
	}
}
