package transport

import (
	"encoding/binary"
	"fmt"

	"anonlead/internal/graph"
	"anonlead/internal/sim"
)

// Report is one node's account of one executed round, delivered to the
// coordinator at the barrier. It carries exactly the facts the simulator's
// router observes centrally: whether the node is (now) halted, how many
// packets it sent out of each port, and its side of the cost accounting.
type Report struct {
	// Node is the reporting node's index.
	Node int
	// Halted reports that the node's machine has called Halt (latched:
	// once true, true in every later report).
	Halted bool
	// PerPort counts the packets sent out of each port this round. Nil
	// when nothing was sent.
	PerPort []uint32
	// Msgs and Bits are the round's sent-message and sent-bit totals.
	Msgs int64
	Bits int64
	// MaxSlots and MaxChannels are the node's maxima over its outgoing
	// links of the round's CONGEST slot charge and distinct channel count.
	MaxSlots    int
	MaxChannels int
	// Fail carries a transport-level error; a failing node still reports
	// so the barrier never wedges, and the coordinator aborts the run.
	Fail string
}

// Barrier replicates sim.Network's round bookkeeping on the coordinator
// side of the real-transport backend: halt latching, in-flight packet
// counting, and CONGEST cost accounting. Its transcript over a run is
// bit-identical to the simulator's for the same seed — including the stop
// rule's quirks, such as counting a final drain round when the last
// halters' sends target already-halted peers.
type Barrier struct {
	g        *graph.Graph
	halted   []bool
	inflight int
	metrics  sim.Metrics
}

// NewBarrier builds a barrier for g. congestBits <= 0 selects the
// simulator's default budget for g's size.
func NewBarrier(g *graph.Graph, congestBits int) *Barrier {
	if congestBits <= 0 {
		congestBits = sim.DefaultCongestBits(g.N())
	}
	b := &Barrier{g: g, halted: make([]bool, g.N())}
	b.metrics.CongestBits = congestBits
	return b
}

// ShouldStop mirrors sim.Network.Step's stop rule: the run is over when
// every node has halted and no packets remain in flight.
func (b *Barrier) ShouldStop() bool { return b.inflight == 0 && b.AllHalted() }

// AllHalted reports whether every node has halted.
func (b *Barrier) AllHalted() bool {
	for _, h := range b.halted {
		if !h {
			return false
		}
	}
	return true
}

// Halted reports whether node v has halted.
func (b *Barrier) Halted(v int) bool { return b.halted[v] }

// HaltedCount returns the number of halted nodes.
func (b *Barrier) HaltedCount() int {
	count := 0
	for _, h := range b.halted {
		if h {
			count++
		}
	}
	return count
}

// Metrics returns a snapshot of the accumulated cost accounting.
func (b *Barrier) Metrics() sim.Metrics { return b.metrics }

// Round returns the next round to execute (the count of counted rounds so
// far, matching sim.Metrics.Rounds).
func (b *Barrier) Round() int { return b.metrics.Rounds }

// FinishRound folds one executed round's reports (indexed by node) into
// the accounting. counted=false is the Init pseudo-round, which charges
// link slots but not a base round.
//
// The fold runs in ascending node order because the simulator's router
// does: node v's sends are routed after the halts of all w <= v have been
// applied but before those of w > v, and the in-flight count — which feeds
// the stop rule — depends on that order.
func (b *Barrier) FinishRound(counted bool, reports []Report) {
	inflight := 0
	maxSlots, maxChannels := 0, 0
	for v := range reports {
		r := &reports[v]
		if r.Halted {
			b.halted[v] = true
		}
		for p, cnt := range r.PerPort {
			if cnt == 0 {
				continue
			}
			if w := b.g.Neighbor(v, p); !b.halted[w] {
				inflight += int(cnt)
			}
		}
		b.metrics.Messages += r.Msgs
		b.metrics.Bits += r.Bits
		if r.MaxSlots > maxSlots {
			maxSlots = r.MaxSlots
		}
		if r.MaxChannels > maxChannels {
			maxChannels = r.MaxChannels
		}
	}
	b.inflight = inflight
	if maxSlots > b.metrics.MaxLinkSlots {
		b.metrics.MaxLinkSlots = maxSlots
	}
	if maxChannels > b.metrics.MaxChannels {
		b.metrics.MaxChannels = maxChannels
	}
	charge := int64(maxSlots)
	if counted {
		if charge < 1 {
			charge = 1
		}
		b.metrics.Rounds++
	}
	b.metrics.ChargedRounds += charge
}

// AppendReport appends r's wire encoding (the body of a FrameReport) to
// dst.
func AppendReport(dst []byte, r Report) []byte {
	dst = binary.AppendUvarint(dst, uint64(r.Node))
	var flags byte
	if r.Halted {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(r.PerPort)))
	for _, c := range r.PerPort {
		dst = binary.AppendUvarint(dst, uint64(c))
	}
	dst = binary.AppendUvarint(dst, uint64(r.Msgs))
	dst = binary.AppendUvarint(dst, uint64(r.Bits))
	dst = binary.AppendUvarint(dst, uint64(r.MaxSlots))
	dst = binary.AppendUvarint(dst, uint64(r.MaxChannels))
	dst = binary.AppendUvarint(dst, uint64(len(r.Fail)))
	return append(dst, r.Fail...)
}

// DecodeReport decodes a FrameReport body.
func DecodeReport(b []byte) (Report, error) {
	var r Report
	next := func() (uint64, error) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, fmt.Errorf("transport: truncated report")
		}
		b = b[n:]
		return v, nil
	}
	node, err := next()
	if err != nil {
		return r, err
	}
	r.Node = int(node)
	if len(b) == 0 {
		return r, fmt.Errorf("transport: truncated report")
	}
	r.Halted = b[0]&1 != 0
	b = b[1:]
	ports, err := next()
	if err != nil {
		return r, err
	}
	if ports > 1<<20 {
		return r, fmt.Errorf("transport: report claims %d ports", ports)
	}
	if ports > 0 {
		r.PerPort = make([]uint32, ports)
		for i := range r.PerPort {
			c, err := next()
			if err != nil {
				return r, err
			}
			r.PerPort[i] = uint32(c)
		}
	}
	msgs, err := next()
	if err != nil {
		return r, err
	}
	bits, err := next()
	if err != nil {
		return r, err
	}
	slots, err := next()
	if err != nil {
		return r, err
	}
	channels, err := next()
	if err != nil {
		return r, err
	}
	failLen, err := next()
	if err != nil {
		return r, err
	}
	if failLen > uint64(len(b)) {
		return r, fmt.Errorf("transport: truncated report")
	}
	r.Msgs, r.Bits = int64(msgs), int64(bits)
	r.MaxSlots, r.MaxChannels = int(slots), int(channels)
	r.Fail = string(b[:failLen])
	return r, nil
}
