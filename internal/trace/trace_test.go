package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRingRetention(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Record(Event{Round: i, Kind: "k"})
	}
	if r.Len() != 3 {
		t.Fatalf("len %d want 3", r.Len())
	}
	if r.Total() != 5 {
		t.Fatalf("total %d want 5", r.Total())
	}
	evs := r.Events()
	for i, want := range []int{2, 3, 4} {
		if evs[i].Round != want {
			t.Fatalf("event %d round %d want %d (oldest-first order)", i, evs[i].Round, want)
		}
	}
}

func TestRingPartiallyFilled(t *testing.T) {
	r := NewRing(10)
	r.Record(Event{Round: 1, Kind: "a"})
	r.Record(Event{Round: 2, Kind: "b"})
	if r.Len() != 2 {
		t.Fatalf("len %d", r.Len())
	}
	evs := r.Events()
	if len(evs) != 2 || evs[0].Round != 1 || evs[1].Round != 2 {
		t.Fatalf("events %v", evs)
	}
}

func TestRingCounts(t *testing.T) {
	r := NewRing(2)
	r.Record(Event{Kind: "a"})
	r.Record(Event{Kind: "a"})
	r.Record(Event{Kind: "b"})
	if r.Count("a") != 2 || r.Count("b") != 1 || r.Count("c") != 0 {
		t.Fatalf("counts a=%d b=%d c=%d", r.Count("a"), r.Count("b"), r.Count("c"))
	}
}

func TestRingFilterAndDump(t *testing.T) {
	r := NewRing(8)
	r.Record(Event{Round: 0, Node: 1, Kind: "x", Detail: "hello"})
	r.Record(Event{Round: 1, Node: 2, Kind: "y"})
	if got := r.Filter("x"); len(got) != 1 || got[0].Detail != "hello" {
		t.Fatalf("filter %v", got)
	}
	dump := r.Dump()
	if !strings.Contains(dump, "r0 n1 x: hello") || !strings.Contains(dump, "r1 n2 y") {
		t.Fatalf("dump:\n%s", dump)
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0)
	r.Record(Event{Kind: "a"})
	r.Record(Event{Kind: "b"})
	if r.Len() != 1 {
		t.Fatalf("len %d want 1", r.Len())
	}
}

func TestRingConcurrentRecord(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(Event{Kind: "k"})
			}
		}()
	}
	wg.Wait()
	if r.Total() != 800 || r.Count("k") != 800 {
		t.Fatalf("total %d count %d", r.Total(), r.Count("k"))
	}
}

// TestRingConcurrentWraparoundCounts hammers a small ring from many
// goroutines with distinct kinds while readers run concurrently, so -race
// exercises every lock path: wraparound must keep retention exact and the
// per-kind counters must stay cumulative (counting all events ever, not
// just the retained window).
func TestRingConcurrentWraparoundCounts(t *testing.T) {
	const (
		writers   = 8
		perWriter = 200
		capacity  = 16
	)
	r := NewRing(capacity)
	kinds := []string{"invite", "stop", "leader", "candidate"}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ { // concurrent readers during the writes
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if n := r.Len(); n > capacity {
					t.Errorf("Len %d exceeds capacity %d", n, capacity)
					return
				}
				r.Events()
				r.Count("leader")
			}
		}()
	}
	var ww sync.WaitGroup
	for g := 0; g < writers; g++ {
		ww.Add(1)
		go func(g int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(Event{Round: i, Node: g, Kind: kinds[g%len(kinds)]})
			}
		}(g)
	}
	ww.Wait()
	close(stop)
	wg.Wait()

	if r.Total() != writers*perWriter {
		t.Fatalf("total %d want %d", r.Total(), writers*perWriter)
	}
	var counted int64
	for _, k := range kinds {
		if c := r.Count(k); c != 2*perWriter { // 8 writers over 4 kinds
			t.Errorf("count[%s] = %d want %d", k, c, 2*perWriter)
		} else {
			counted += c
		}
	}
	if counted != writers*perWriter {
		t.Fatalf("per-kind counts sum to %d, total is %d", counted, writers*perWriter)
	}
	if r.Len() != capacity {
		t.Fatalf("wrapped ring retains %d events, want %d", r.Len(), capacity)
	}
	valid := make(map[string]bool)
	for _, k := range kinds {
		valid[k] = true
	}
	for i, e := range r.Events() {
		if !valid[e.Kind] {
			t.Fatalf("retained event %d has torn kind %q", i, e.Kind)
		}
	}
}

func TestCountingRecorder(t *testing.T) {
	c := NewCounting()
	c.Record(Event{Kind: "a"})
	c.Record(Event{Kind: "b"})
	c.Record(Event{Kind: "a"})
	if c.Count("a") != 2 || c.Count("b") != 1 {
		t.Fatal("counts wrong")
	}
	if len(c.Kinds()) != 2 {
		t.Fatalf("kinds %v", c.Kinds())
	}
}

func TestEventString(t *testing.T) {
	e := Event{Round: 3, Node: 7, Kind: "leader"}
	if e.String() != "r3 n7 leader" {
		t.Fatalf("string %q", e.String())
	}
}
