// Package trace provides lightweight execution tracing for the simulator:
// bounded in-memory event recording with per-kind counters, used to debug
// protocol runs and to let tests assert on internal protocol events
// without widening protocol APIs.
//
// Recording is opt-in per network (sim.Config.Trace); when disabled, the
// protocol-side logging calls are no-ops with negligible cost. Module
// users reach the same hook through the public anonlead.WithTrace option,
// which adapts a public TraceRecorder onto this package's Recorder.
//
// See docs/ARCHITECTURE.md for where this sits in the paper-to-code map.
package trace

import (
	"fmt"
	"strings"
	"sync"
)

// Event is one recorded protocol or simulator event.
type Event struct {
	// Round is the synchronous round of the event (-1 for Init).
	Round int
	// Node is the emitting node's index (simulation-side observability;
	// protocols themselves never see indices).
	Node int
	// Kind groups events for counting and filtering (e.g. "invite",
	// "stop", "leader").
	Kind string
	// Detail is free-form context.
	Detail string
}

// String renders the event compactly.
func (e Event) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("r%d n%d %s", e.Round, e.Node, e.Kind)
	}
	return fmt.Sprintf("r%d n%d %s: %s", e.Round, e.Node, e.Kind, e.Detail)
}

// Recorder receives events. Implementations must be safe for concurrent
// Record calls (parallel schedulers emit from worker goroutines).
type Recorder interface {
	Record(Event)
}

// Ring is a bounded in-memory recorder keeping the most recent events and
// cumulative per-kind counts. The zero value is not usable; construct with
// NewRing.
type Ring struct {
	mu     sync.Mutex
	buf    []Event
	next   int
	filled bool
	counts map[string]int64
	total  int64
}

// NewRing returns a recorder retaining the last capacity events.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{
		buf:    make([]Event, capacity),
		counts: make(map[string]int64),
	}
}

// Record implements Recorder.
func (r *Ring) Record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.filled = true
	}
	r.counts[e.Kind]++
	r.total++
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filled {
		return len(r.buf)
	}
	return r.next
}

// Total returns the number of events ever recorded.
func (r *Ring) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Count returns the cumulative count for a kind.
func (r *Ring) Count(kind string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[kind]
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if r.filled {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	return out
}

// Filter returns retained events of the given kind, oldest first.
func (r *Ring) Filter(kind string) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Dump renders the retained events one per line.
func (r *Ring) Dump() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Counting is a Recorder that keeps only per-kind counters (no event
// retention) — cheap enough for long runs.
type Counting struct {
	mu     sync.Mutex
	counts map[string]int64
}

// NewCounting returns an empty counting recorder.
func NewCounting() *Counting {
	return &Counting{counts: make(map[string]int64)}
}

// Record implements Recorder.
func (c *Counting) Record(e Event) {
	c.mu.Lock()
	c.counts[e.Kind]++
	c.mu.Unlock()
}

// Count returns the cumulative count for a kind.
func (c *Counting) Count(kind string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[kind]
}

// Kinds returns the recorded kinds (unordered).
func (c *Counting) Kinds() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.counts))
	for k := range c.counts {
		out = append(out, k)
	}
	return out
}
