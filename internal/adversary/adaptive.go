package adversary

import "anonlead/internal/sim"

// AdaptiveCrash is the traffic-adaptive crash adversary: it watches the
// per-round send counts the simulator feeds it (sim.TrafficAdaptive),
// accumulates traffic over a window of rounds, and at each window boundary
// crash-stops the K busiest nodes — targeting the busiest node is a proxy
// for targeting the emerging leader, the adaptive model the static F1–F5
// ladders cannot express.
//
// No seed is involved: the victims are a pure function of the observed
// traffic, and the traffic itself is deterministic (route() is
// single-threaded in node order under every scheduler), so adaptive runs
// remain byte-identical across Sequential, WorkerPool, and Actors.
//
// Ties break to the lower node index; nodes with zero accumulated traffic
// are never picked (a crashed or silent node is not a leader candidate).
// Strikes bounds how many windows actually claim victims — after that many
// non-empty picks the adversary goes dormant, so a bounded-fault run
// can still terminate.
type AdaptiveCrash struct {
	k       int
	window  int
	strikes int
	fired   int     // windows that have claimed victims so far
	rounds  int     // rounds accumulated in the current window
	acc     []int64 // per-node traffic in the current window
	picks   []int   // reusable victim buffer handed to the simulator
}

// NewAdaptiveCrash builds an adaptive crash adversary for an n-node
// network: every window rounds it crashes the k busiest nodes of that
// window, at most strikes times. k, window, and strikes are clamped to a
// minimum of 1.
func NewAdaptiveCrash(n, k, window, strikes int) *AdaptiveCrash {
	if k < 1 {
		k = 1
	}
	if window < 1 {
		window = 1
	}
	if strikes < 1 {
		strikes = 1
	}
	return &AdaptiveCrash{k: k, window: window, strikes: strikes, acc: make([]int64, n)}
}

// CrashRound implements sim.Adversary: adaptive crashes are scheduled via
// ObserveTraffic, never up front.
func (a *AdaptiveCrash) CrashRound(int) int { return -1 }

// MaxDelay implements sim.Adversary.
func (a *AdaptiveCrash) MaxDelay() int { return 0 }

// Fate implements sim.Adversary (packets are untouched; only nodes die).
func (a *AdaptiveCrash) Fate(int, int, int, int) (bool, int) { return false, 0 }

// ObserveTraffic implements sim.TrafficAdaptive. The Init pseudo-round
// (round -1) is skipped: every protocol announces on Init, so it carries
// no targeting signal.
func (a *AdaptiveCrash) ObserveTraffic(round int, sent []int) []int {
	if round < 0 || a.fired >= a.strikes {
		return nil
	}
	for v, s := range sent {
		a.acc[v] += int64(s)
	}
	a.rounds++
	if a.rounds < a.window {
		return nil
	}
	a.rounds = 0
	a.picks = a.picks[:0]
	for len(a.picks) < a.k {
		best, bestAcc := -1, int64(0)
		for v, t := range a.acc {
			if t > bestAcc {
				best, bestAcc = v, t
			}
		}
		if best < 0 {
			break // nobody (left) sent anything this window
		}
		a.acc[best] = 0 // claimed — also excludes it from further picks
		a.picks = append(a.picks, best)
	}
	for v := range a.acc {
		a.acc[v] = 0
	}
	if len(a.picks) == 0 {
		return nil
	}
	a.fired++
	return a.picks
}

// adaptiveComposite is a composite whose layers include at least one
// traffic-adaptive adversary: observations fan out to every adaptive
// layer, victim lists concatenate in layer order.
type adaptiveComposite struct {
	composite
	adaptive []sim.TrafficAdaptive
	picks    []int
}

// ObserveTraffic implements sim.TrafficAdaptive.
func (c *adaptiveComposite) ObserveTraffic(round int, sent []int) []int {
	c.picks = c.picks[:0]
	for _, a := range c.adaptive {
		c.picks = append(c.picks, a.ObserveTraffic(round, sent)...)
	}
	return c.picks
}
