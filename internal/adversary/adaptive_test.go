package adversary

import (
	"reflect"
	"testing"

	"anonlead/internal/graph"
	"anonlead/internal/sim"
)

// TestDecisionValueVariantsMatchHeapChain pins the alloc-free refactor:
// decision2/decision3 must walk exactly the derivation chain the original
// heap-allocating decision() walks, for the draws the Fate paths make.
func TestDecisionValueVariantsMatchHeapChain(t *testing.T) {
	cases := [][]uint64{
		{0, 0}, {1, 2}, {7, 1 << 40}, {12345, 99},
	}
	for _, c := range cases {
		seed := c[0] * 77
		old2 := decision(seed, c[0], c[1])
		new2 := decision2(seed, c[0], c[1])
		for i := 0; i < 8; i++ {
			if a, b := old2.Uint64(), new2.Uint64(); a != b {
				t.Fatalf("decision2(%d,%v) draw %d: %d vs %d", seed, c, i, b, a)
			}
		}
		old3 := decision(seed, c[0], c[1], 5)
		new3 := decision3(seed, c[0], c[1], 5)
		for i := 0; i < 8; i++ {
			if a, b := old3.Uint64(), new3.Uint64(); a != b {
				t.Fatalf("decision3(%d,%v) draw %d: %d vs %d", seed, c, i, b, a)
			}
		}
	}
}

// TestAdaptiveCrashPicksBusiest: top-K by accumulated window traffic,
// ties to the lower index, zero-traffic nodes never picked.
func TestAdaptiveCrashPicksBusiest(t *testing.T) {
	a := NewAdaptiveCrash(5, 2, 2, 1)
	if got := a.ObserveTraffic(-1, []int{9, 9, 9, 9, 9}); got != nil {
		t.Fatalf("Init round observed: %v", got)
	}
	if got := a.ObserveTraffic(0, []int{1, 4, 0, 4, 2}); got != nil {
		t.Fatalf("mid-window pick: %v", got)
	}
	got := a.ObserveTraffic(1, []int{1, 3, 0, 4, 2})
	// Accumulated: [2, 7, 0, 8, 4] → top-2 = {3, 1}.
	if want := []int{3, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("picks %v, want %v", got, want)
	}
	// One strike spent: later windows are dormant.
	for r := 2; r < 6; r++ {
		if got := a.ObserveTraffic(r, []int{9, 9, 9, 9, 9}); got != nil {
			t.Fatalf("dormant adversary picked %v at round %d", got, r)
		}
	}
}

// TestAdaptiveCrashTieBreaksLow: equal accumulations resolve to the lower
// node index (strict > comparison), keeping picks deterministic.
func TestAdaptiveCrashTieBreaksLow(t *testing.T) {
	a := NewAdaptiveCrash(4, 1, 1, 1)
	got := a.ObserveTraffic(0, []int{0, 5, 5, 5})
	if want := []int{1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("picks %v, want %v", got, want)
	}
}

// TestAdaptiveCrashSilentWindowKeepsStrike: a window with no traffic at
// all claims nobody and does not spend a strike.
func TestAdaptiveCrashSilentWindowKeepsStrike(t *testing.T) {
	a := NewAdaptiveCrash(3, 1, 1, 1)
	if got := a.ObserveTraffic(0, []int{0, 0, 0}); got != nil {
		t.Fatalf("silent window picked %v", got)
	}
	got := a.ObserveTraffic(1, []int{0, 2, 0})
	if want := []int{1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("picks %v, want %v (strike should have survived the silent window)", got, want)
	}
}

// TestAdaptiveCrashMultipleStrikes: each window boundary claims its own
// victims until the strike budget is spent.
func TestAdaptiveCrashMultipleStrikes(t *testing.T) {
	a := NewAdaptiveCrash(3, 1, 1, 2)
	if got, want := a.ObserveTraffic(0, []int{5, 1, 0}), []int{0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("strike 1 picks %v, want %v", got, want)
	}
	if got, want := a.ObserveTraffic(1, []int{0, 1, 9}), []int{2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("strike 2 picks %v, want %v", got, want)
	}
	if got := a.ObserveTraffic(2, []int{0, 9, 0}); got != nil {
		t.Fatalf("strike budget exceeded: picked %v", got)
	}
}

// TestAdaptiveCrashIsPassiveAdversary: the primitive neither schedules
// static crashes nor touches packets.
func TestAdaptiveCrashIsPassiveAdversary(t *testing.T) {
	a := NewAdaptiveCrash(4, 1, 2, 1)
	if a.CrashRound(0) != -1 || a.MaxDelay() != 0 {
		t.Fatal("AdaptiveCrash should have no static schedule and no delay")
	}
	if drop, delay := a.Fate(3, 0, 1, 2); drop || delay != 0 {
		t.Fatal("AdaptiveCrash should never touch packets")
	}
}

// TestComposeForwardsAdaptive: a composition containing an adaptive layer
// is itself adaptive, fans observations out, and concatenates victims in
// layer order; a composition of only static layers is not adaptive.
func TestComposeForwardsAdaptive(t *testing.T) {
	static := Compose(NewLoss(0.5, 1), NewDelay(0.5, 2, 2))
	if _, ok := static.(sim.TrafficAdaptive); ok {
		t.Fatal("static composition claims to be adaptive")
	}

	a1 := NewAdaptiveCrash(3, 1, 1, 1)
	a2 := NewAdaptiveCrash(3, 1, 1, 1)
	comp := Compose(NewLoss(0.5, 1), a1, a2)
	ta, ok := comp.(sim.TrafficAdaptive)
	if !ok {
		t.Fatal("composition with adaptive layers is not adaptive")
	}
	got := ta.ObserveTraffic(0, []int{1, 5, 2})
	// Both layers independently pick the busiest node.
	if want := []int{1, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("composed picks %v, want %v", got, want)
	}
	// Single adaptive part: Compose returns it directly, still adaptive.
	single := Compose(NewAdaptiveCrash(3, 1, 1, 1))
	if _, ok := single.(sim.TrafficAdaptive); !ok {
		t.Fatal("single adaptive part lost its adaptivity through Compose")
	}
}

// TestSpecAdaptive: the declarative spec's adaptive fields flow into
// IsZero, Validate, Descriptor, and Build.
func TestSpecAdaptive(t *testing.T) {
	if (Spec{AdaptiveCrash: 1}).IsZero() {
		t.Fatal("adaptive spec reported zero")
	}
	if err := (Spec{AdaptiveCrash: -1}).Validate(); err == nil {
		t.Fatal("negative adaptive crash accepted")
	}
	if err := (Spec{AdaptiveWindow: 4}).Validate(); err == nil {
		t.Fatal("adaptive window without adaptive_crash accepted")
	}
	if got, want := (Spec{AdaptiveCrash: 1}).Descriptor(), "adaptive=1@8"; got != want {
		t.Fatalf("descriptor %q, want %q (defaults rendered resolved)", got, want)
	}
	if got, want := (Spec{AdaptiveCrash: 2, AdaptiveWindow: 4, AdaptiveStrikes: 3}).Descriptor(), "adaptive=2@4x3"; got != want {
		t.Fatalf("descriptor %q, want %q", got, want)
	}
	if got, want := (Spec{Loss: 0.1, AdaptiveCrash: 1, AdaptiveWindow: 2}).Descriptor(), "loss=0.1,adaptive=1@2"; got != want {
		t.Fatalf("descriptor %q, want %q", got, want)
	}

	g := graph.Cycle(6)
	adv, err := Spec{AdaptiveCrash: 1, AdaptiveWindow: 2}.Build(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := adv.(sim.TrafficAdaptive); !ok {
		t.Fatal("built adaptive spec is not TrafficAdaptive")
	}
	adv, err = Spec{Loss: 0.1, AdaptiveCrash: 1}.Build(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := adv.(sim.TrafficAdaptive); !ok {
		t.Fatal("composed adaptive spec is not TrafficAdaptive")
	}
}
