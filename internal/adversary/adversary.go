// Package adversary provides deterministic, seed-derived fault injection
// for the CONGEST simulator: composable perturbation layers interposed
// between send and delivery via sim.Config.Adversary.
//
// The paper's guarantees (w.h.p. success, O(τ_mix)-time election) are
// stated for fault-free static synchronous networks. Related work ties
// election difficulty directly to environment structure and knowledge
// (Dieudonné–Pelc; Chatterjee–Pandurangan–Robinson), so this package exists
// to chart where the guarantees break: controlled perturbations produce
// degradation curves instead of a single fault-free point.
//
// Every decision an adversary makes is a pure function of its seed and the
// decision's coordinates (round, edge, node) — never of call order or
// scheduler interleaving — derived through rng.DeriveSeed splitting. Runs
// are therefore byte-identical across the Sequential, WorkerPool, and
// Actors schedulers, and a fault sweep is exactly as reproducible as the
// fault-free sweeps it extends.
//
// Four primitives are provided, each implementing sim.Adversary, plus
// Compose to stack them:
//
//   - Loss: per-packet Bernoulli drop (independent per round × link).
//   - Crash: crash-stop node failures, from a fixed schedule or sampled
//     (fraction of nodes, uniform crash round).
//   - Churn: per-round undirected edge masking — a down edge drops both
//     directions that round; optionally a BFS spanning tree is kept up so
//     the live graph stays connected.
//   - Delay: bounded delivery jitter — a delayed packet arrives 1..Max
//     rounds late.
//
// The declarative Spec (spec.go) bundles the primitives, names the
// configuration canonically for artifact cell keys, and builds the
// composed adversary for one trial.
package adversary

import (
	"anonlead/internal/graph"
	"anonlead/internal/rng"
	"anonlead/internal/sim"
)

// decision returns the RNG of one adversarial decision: a pure function of
// seed and the labels, independent of every other decision's stream.
func decision(seed uint64, labels ...uint64) *rng.RNG {
	r := rng.New(seed)
	for _, l := range labels {
		r = rng.New(r.DeriveSeed(l))
	}
	return r
}

// decision2 and decision3 are allocation-free variants of decision for the
// fixed label counts used on the per-packet hot path: a value RNG reseeded
// in place walks the identical derivation chain (Reseed(seed) produces
// exactly New(seed)'s stream), so fates stay byte-identical to the
// heap-chained form while the routing path stays at 0 allocs/round.
func decision2(seed, a, b uint64) rng.RNG {
	var r rng.RNG
	r.Reseed(seed)
	r.Reseed(r.DeriveSeed(a))
	r.Reseed(r.DeriveSeed(b))
	return r
}

func decision3(seed, a, b, c uint64) rng.RNG {
	r := decision2(seed, a, b)
	r.Reseed(r.DeriveSeed(c))
	return r
}

// edgeKey canonicalizes a directed (from, to) pair to its undirected edge
// label, so both directions of a link share one decision stream.
func edgeKey(from, to int) uint64 {
	lo, hi := from, to
	if lo > hi {
		lo, hi = hi, lo
	}
	return uint64(lo)<<32 | uint64(hi)
}

// dirKey labels a directed (from, port) pair; with round it uniquely names
// one packet slot (multi-packet sends on one port in one round share a
// stream, drawn in deterministic send order — see Fate implementations).
func dirKey(from, port int) uint64 {
	return uint64(from)<<20 | uint64(port)
}

// slotSeq numbers the packets of one (round, sender, port) slot in send
// order, so each packet of a multi-packet send gets its own decision
// stream. The counter resets when the round advances; within a round,
// occurrence indices are deterministic because routing consumes sends in
// a fixed order — and slots queried in any order still agree, because the
// index depends only on how many packets that slot has routed so far.
type slotSeq struct {
	round  int
	counts map[uint64]int
}

// next returns the occurrence index of the slot's next packet.
func (s *slotSeq) next(round int, key uint64) uint64 {
	if s.counts == nil {
		s.counts = make(map[uint64]int)
		s.round = round
	} else if s.round != round {
		clear(s.counts)
		s.round = round
	}
	k := s.counts[key]
	s.counts[key] = k + 1
	return uint64(k)
}

// Loss drops each packet independently with probability P, the classic
// per-link Bernoulli message-loss adversary. Every packet — including the
// k-th of a multi-packet send on one port in one round — draws from its
// own (round, sender, port, k) decision stream, so fates never correlate.
type Loss struct {
	P    float64
	seed uint64
	seq  slotSeq
}

// NewLoss returns a Bernoulli loss adversary with drop probability p.
func NewLoss(p float64, seed uint64) *Loss {
	return &Loss{P: p, seed: seed}
}

// CrashRound implements sim.Adversary (Loss never crashes nodes).
func (l *Loss) CrashRound(int) int { return -1 }

// MaxDelay implements sim.Adversary (Loss never delays).
func (l *Loss) MaxDelay() int { return 0 }

// Fate implements sim.Adversary.
func (l *Loss) Fate(round, from, port, _ int) (bool, int) {
	key := dirKey(from, port)
	k := l.seq.next(round, key)
	r := decision3(l.seed, uint64(int64(round)), key, k)
	return r.Bernoulli(l.P), 0
}

// Crash crash-stops nodes according to a per-node schedule.
type Crash struct {
	rounds []int // per node; -1 = never
}

// NewCrashSchedule builds a fixed-schedule crash adversary for an n-node
// network: schedule maps node index to crash round. Unlisted nodes never
// crash.
func NewCrashSchedule(n int, schedule map[int]int) *Crash {
	c := &Crash{rounds: make([]int, n)}
	for v := range c.rounds {
		c.rounds[v] = -1
	}
	for v, r := range schedule {
		if v >= 0 && v < n && r >= 0 {
			c.rounds[v] = r
		}
	}
	return c
}

// NewRandomCrash samples a crash schedule: each node independently crashes
// with probability fraction, at a round drawn uniformly from [0, by]. The
// schedule is fixed at construction (a pure function of seed), matching
// the oblivious-adversary model.
func NewRandomCrash(n int, fraction float64, by int, seed uint64) *Crash {
	if by < 0 {
		by = 0
	}
	c := &Crash{rounds: make([]int, n)}
	for v := 0; v < n; v++ {
		r := decision(seed, uint64(v))
		if r.Bernoulli(fraction) {
			c.rounds[v] = r.Intn(by + 1)
		} else {
			c.rounds[v] = -1
		}
	}
	return c
}

// CrashRound implements sim.Adversary.
func (c *Crash) CrashRound(v int) int {
	if v < 0 || v >= len(c.rounds) {
		return -1
	}
	return c.rounds[v]
}

// MaxDelay implements sim.Adversary.
func (c *Crash) MaxDelay() int { return 0 }

// Fate implements sim.Adversary (crashes never touch in-flight packets;
// the simulator drops traffic to crashed nodes itself).
func (c *Crash) Fate(int, int, int, int) (bool, int) { return false, 0 }

// Churn masks undirected edges per round: an edge that is down in round r
// drops every packet sent on it in r, in both directions — dynamic-network
// edge failure rather than independent per-packet loss.
type Churn struct {
	// P is the per-edge per-round down probability.
	P    float64
	seed uint64
	// protected marks edges (by edgeKey) that are never masked — the BFS
	// spanning tree when connectivity preservation is requested.
	protected map[uint64]bool
	// down memoizes the round's per-edge decisions: both directions,
	// every channel, and every packet of a churning link re-ask the same
	// (round, edge) question, so recomputing the derived stream per
	// packet would put thousands of redundant RNG constructions on the
	// routing path. Calls come from the single-threaded router only.
	downRound int
	down      map[uint64]bool
}

// NewChurn returns a churn adversary masking each undirected edge of g
// independently with probability p each round. With preserveConnectivity,
// the edges of a BFS spanning tree (rooted at node 0) are never masked, so
// the live graph stays connected every round; without it, partitions are
// deliberately possible.
func NewChurn(g *graph.Graph, p float64, preserveConnectivity bool, seed uint64) *Churn {
	c := &Churn{P: p, seed: seed}
	if preserveConnectivity && g != nil && g.N() > 0 {
		c.protected = spanningTree(g)
	}
	return c
}

// spanningTree returns the edgeKey set of a BFS tree of g rooted at 0.
func spanningTree(g *graph.Graph) map[uint64]bool {
	n := g.N()
	tree := make(map[uint64]bool, n-1)
	visited := make([]bool, n)
	queue := []int{0}
	visited[0] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for p := 0; p < g.Degree(v); p++ {
			w := g.Neighbor(v, p)
			if !visited[w] {
				visited[w] = true
				tree[edgeKey(v, w)] = true
				queue = append(queue, w)
			}
		}
	}
	return tree
}

// CrashRound implements sim.Adversary.
func (c *Churn) CrashRound(int) int { return -1 }

// MaxDelay implements sim.Adversary.
func (c *Churn) MaxDelay() int { return 0 }

// Fate implements sim.Adversary: both directions of an edge share the
// (round, undirected edge) decision, so a down edge silences the link
// symmetrically.
func (c *Churn) Fate(round, from, _, to int) (bool, int) {
	key := edgeKey(from, to)
	if c.protected != nil && c.protected[key] {
		return false, 0
	}
	if c.down == nil {
		c.down = make(map[uint64]bool)
		c.downRound = round
	} else if c.downRound != round {
		clear(c.down)
		c.downRound = round
	}
	d, ok := c.down[key]
	if !ok {
		r := decision2(c.seed, uint64(int64(round)), key)
		d = r.Bernoulli(c.P)
		c.down[key] = d
	}
	return d, 0
}

// Delay jitters delivery: each packet is independently late with
// probability P, arriving 1..Max rounds after its normal delivery round.
// Order across packets of one link is not preserved — late packets merge
// after on-time ones — which is exactly the asynchrony protocols built for
// the synchronous model are not promised to survive. Like Loss, each
// packet of a (round, sender, port) slot draws from its own stream.
type Delay struct {
	// P is the probability a packet is delayed at all.
	P float64
	// Max bounds the extra rounds (delayed packets draw uniform [1, Max]).
	Max  int
	seed uint64
	seq  slotSeq
}

// NewDelay returns a delivery-jitter adversary.
func NewDelay(p float64, max int, seed uint64) *Delay {
	if max < 0 {
		max = 0
	}
	return &Delay{P: p, Max: max, seed: seed}
}

// CrashRound implements sim.Adversary.
func (d *Delay) CrashRound(int) int { return -1 }

// MaxDelay implements sim.Adversary.
func (d *Delay) MaxDelay() int { return d.Max }

// Fate implements sim.Adversary.
func (d *Delay) Fate(round, from, port, _ int) (bool, int) {
	if d.Max == 0 {
		return false, 0
	}
	key := dirKey(from, port)
	k := d.seq.next(round, key)
	r := decision3(d.seed, uint64(int64(round)), key, k)
	if !r.Bernoulli(d.P) {
		return false, 0
	}
	return false, 1 + r.Intn(d.Max)
}

// composite stacks adversaries: a packet is dropped if any layer drops it,
// delays add, and a node crashes at the earliest scheduled layer.
type composite struct {
	parts    []sim.Adversary
	maxDelay int
}

// Compose stacks several adversaries into one. Nil parts are skipped; an
// empty composition returns nil (no adversary). If any part is
// traffic-adaptive (sim.TrafficAdaptive), the composition is too:
// observations fan out to every adaptive layer and their victim lists
// concatenate in layer order.
func Compose(parts ...sim.Adversary) sim.Adversary {
	kept := make([]sim.Adversary, 0, len(parts))
	var adaptive []sim.TrafficAdaptive
	maxDelay := 0
	for _, p := range parts {
		if p == nil {
			continue
		}
		kept = append(kept, p)
		maxDelay += p.MaxDelay() // delays add, so bounds add
		if ta, ok := p.(sim.TrafficAdaptive); ok {
			adaptive = append(adaptive, ta)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	base := composite{parts: kept, maxDelay: maxDelay}
	if len(adaptive) > 0 {
		return &adaptiveComposite{composite: base, adaptive: adaptive}
	}
	return &base
}

// CrashRound implements sim.Adversary (earliest layer wins).
func (c *composite) CrashRound(v int) int {
	at := -1
	for _, p := range c.parts {
		if r := p.CrashRound(v); r >= 0 && (at < 0 || r < at) {
			at = r
		}
	}
	return at
}

// MaxDelay implements sim.Adversary.
func (c *composite) MaxDelay() int { return c.maxDelay }

// Fate implements sim.Adversary. Every layer is consulted even after a
// drop decision, so each layer's decision streams advance identically no
// matter what the layers above it did — composition never perturbs a
// layer's randomness.
func (c *composite) Fate(round, from, port, to int) (bool, int) {
	drop, delay := false, 0
	for _, p := range c.parts {
		d, dl := p.Fate(round, from, port, to)
		drop = drop || d
		delay += dl
	}
	return drop, delay
}
