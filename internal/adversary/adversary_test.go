package adversary

import (
	"strings"
	"testing"

	"anonlead/internal/graph"
	"anonlead/internal/sim"
)

func TestLossDeterministicAndRateSensitive(t *testing.T) {
	a := NewLoss(0.5, 7)
	b := NewLoss(0.5, 7)
	drops := 0
	for round := 0; round < 50; round++ {
		for from := 0; from < 10; from++ {
			d1, dl1 := a.Fate(round, from, 0, from+1)
			d2, dl2 := b.Fate(round, from, 0, from+1)
			if d1 != d2 || dl1 != dl2 {
				t.Fatalf("same-seed adversaries disagree at round %d from %d", round, from)
			}
			if dl1 != 0 {
				t.Fatal("loss adversary delayed a packet")
			}
			if d1 {
				drops++
			}
		}
	}
	if drops < 150 || drops > 350 {
		t.Fatalf("p=0.5 dropped %d/500, far from expectation", drops)
	}
	// Zero and one rates are exact.
	never, always := NewLoss(0, 1), NewLoss(1, 1)
	for round := 0; round < 20; round++ {
		if d, _ := never.Fate(round, 0, 0, 1); d {
			t.Fatal("p=0 dropped")
		}
		if d, _ := always.Fate(round, 0, 0, 1); !d {
			t.Fatal("p=1 delivered")
		}
	}
}

// TestLossCallOrderIndependence pins the decision-stream property: the
// fate of (round, from, port) does not depend on which other slots were
// queried before it.
func TestLossCallOrderIndependence(t *testing.T) {
	forward, backward := NewLoss(0.5, 9), NewLoss(0.5, 9)
	var f []bool
	for round := 0; round < 10; round++ {
		for from := 0; from < 5; from++ {
			d, _ := forward.Fate(round, from, 0, 0)
			f = append(f, d)
		}
	}
	i := 0
	for round := 9; round >= 0; round-- {
		for from := 4; from >= 0; from-- {
			d, _ := backward.Fate(round, from, 0, 0)
			want := f[round*5+from]
			if d != want {
				t.Fatalf("slot (r%d,n%d) fate depends on query order", round, from)
			}
			i++
		}
	}
}

func TestRandomCrashSchedule(t *testing.T) {
	n, by := 200, 16
	c := NewRandomCrash(n, 0.25, by, 3)
	crashed := 0
	for v := 0; v < n; v++ {
		r := c.CrashRound(v)
		if r != NewRandomCrash(n, 0.25, by, 3).CrashRound(v) {
			t.Fatal("crash schedule not deterministic")
		}
		if r >= 0 {
			crashed++
			if r > by {
				t.Fatalf("node %d crashes at %d > by %d", v, r, by)
			}
		}
	}
	if crashed < 25 || crashed > 90 {
		t.Fatalf("fraction 0.25 crashed %d/200, far from expectation", crashed)
	}
	if NewRandomCrash(n, 0, by, 3).CrashRound(0) != -1 {
		// fraction 0 — spot-check one node, then all.
		t.Fatal("fraction 0 crashed node 0")
	}
	none := NewRandomCrash(n, 0, by, 3)
	for v := 0; v < n; v++ {
		if none.CrashRound(v) >= 0 {
			t.Fatalf("fraction 0 crashed node %d", v)
		}
	}
}

func TestCrashScheduleFixed(t *testing.T) {
	c := NewCrashSchedule(8, map[int]int{2: 5, 7: 0, 9: 1, 3: -4})
	want := map[int]int{0: -1, 1: -1, 2: 5, 3: -1, 4: -1, 5: -1, 6: -1, 7: 0}
	for v, w := range want {
		if got := c.CrashRound(v); got != w {
			t.Fatalf("node %d crash round %d, want %d", v, got, w)
		}
	}
	if c.CrashRound(9) != -1 || c.CrashRound(-1) != -1 {
		t.Fatal("out-of-range node did not report never-crash")
	}
}

func TestChurnSymmetricAndConnectivityPreserving(t *testing.T) {
	g := graph.Cycle(12)
	c := NewChurn(g, 0.5, false, 11)
	downs := 0
	for round := 0; round < 40; round++ {
		for v := 0; v < g.N(); v++ {
			w := g.Neighbor(v, 0)
			d1, _ := c.Fate(round, v, 0, w)
			d2, _ := c.Fate(round, w, g.PortTo(w, v), v)
			if d1 != d2 {
				t.Fatalf("edge {%d,%d} asymmetric in round %d", v, w, round)
			}
			if d1 {
				downs++
			}
		}
	}
	if downs == 0 {
		t.Fatal("p=0.5 churn never masked an edge")
	}

	// With preservation, the BFS tree stays up: under p=1 every non-tree
	// edge is down, and the up-edges alone must keep the graph connected.
	p := NewChurn(g, 1, true, 11)
	b := graph.NewBuilder(g.N())
	for _, e := range g.Edges() {
		if drop, _ := p.Fate(0, e[0], g.PortTo(e[0], e[1]), e[1]); !drop {
			b.AddEdge(e[0], e[1])
		}
	}
	live := b.Graph()
	if !live.IsConnected() {
		t.Fatal("connectivity-preserving churn disconnected the graph")
	}
	if live.M() >= g.M() {
		t.Fatalf("p=1 preserving churn kept all %d edges", live.M())
	}
}

func TestDelayBoundsAndDeterminism(t *testing.T) {
	d := NewDelay(1, 3, 5)
	d2 := NewDelay(1, 3, 5)
	seen := map[int]int{}
	for round := 0; round < 60; round++ {
		drop, dl := d.Fate(round, 1, 0, 2)
		drop2, dl2 := d2.Fate(round, 1, 0, 2)
		if drop || drop2 {
			t.Fatal("delay adversary dropped a packet")
		}
		if dl != dl2 {
			t.Fatal("delay not deterministic")
		}
		if dl < 1 || dl > 3 {
			t.Fatalf("p=1 delay %d outside [1,3]", dl)
		}
		seen[dl]++
	}
	if len(seen) < 2 {
		t.Fatalf("delays not spread over the range: %v", seen)
	}
	if _, dl := NewDelay(0, 3, 5).Fate(0, 0, 0, 1); dl != 0 {
		t.Fatal("p=0 delayed")
	}
	if d.MaxDelay() != 3 {
		t.Fatalf("MaxDelay %d", d.MaxDelay())
	}
}

func TestCompose(t *testing.T) {
	if Compose() != nil || Compose(nil, nil) != nil {
		t.Fatal("empty composition not nil")
	}
	l := NewLoss(1, 1)
	if Compose(nil, l) != sim.Adversary(l) {
		t.Fatal("single-part composition not unwrapped")
	}
	c := Compose(
		NewLoss(1, 1),
		NewCrashSchedule(4, map[int]int{1: 7, 2: 3}),
		NewDelay(1, 2, 2),
		NewDelay(1, 3, 4),
	)
	if got := c.MaxDelay(); got != 5 {
		t.Fatalf("composed MaxDelay %d, want 5 (delays add)", got)
	}
	if got := c.CrashRound(1); got != 7 {
		t.Fatalf("crash round %d, want 7", got)
	}
	if got := c.CrashRound(0); got != -1 {
		t.Fatalf("crash round %d, want -1", got)
	}
	drop, delay := c.Fate(0, 0, 0, 1)
	if !drop {
		t.Fatal("composed loss p=1 did not drop")
	}
	if delay < 2 || delay > 5 {
		t.Fatalf("composed delay %d outside [2,5]", delay)
	}
	// Earliest crash wins across layers.
	c2 := Compose(NewCrashSchedule(4, map[int]int{1: 7}), NewCrashSchedule(4, map[int]int{1: 2}))
	if got := c2.CrashRound(1); got != 2 {
		t.Fatalf("earliest crash %d, want 2", got)
	}
}

func TestSpecZeroAndValidate(t *testing.T) {
	zero := []Spec{
		{},
		{Loss: 0, Churn: 0},
		{MaxDelay: 3},         // no DelayProb → inert
		{DelayProb: 0.5},      // no MaxDelay → inert
		{CrashBy: 9},          // no fraction or schedule → inert
		{ChurnPreserve: true}, // no churn rate → inert
	}
	for i, s := range zero {
		if !s.IsZero() {
			t.Fatalf("spec %d not zero: %+v", i, s)
		}
		adv, err := s.Build(graph.Cycle(4), 1)
		if err != nil || adv != nil {
			t.Fatalf("zero spec %d built %v, %v", i, adv, err)
		}
		if s.Descriptor() != "" {
			t.Fatalf("zero spec %d descriptor %q", i, s.Descriptor())
		}
	}
	bad := []Spec{
		{Loss: 1.5},
		{Loss: -0.1},
		{CrashFraction: 2},
		{Churn: -1},
		{DelayProb: 7, MaxDelay: 1},
		{CrashFraction: 0.5, CrashBy: -1},
		{DelayProb: 0.5, MaxDelay: -2},
		{CrashSchedule: map[int]int{-1: 4}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("bad spec %d validated: %+v", i, s)
		}
		if _, err := s.Build(graph.Cycle(4), 1); err == nil {
			t.Fatalf("bad spec %d built: %+v", i, s)
		}
	}
}

func TestSpecDescriptorCanonical(t *testing.T) {
	s := Spec{Loss: 0.1, CrashFraction: 0.25, CrashBy: 16, Churn: 0.05, ChurnPreserve: true,
		DelayProb: 0.5, MaxDelay: 3}
	want := "loss=0.1,crash=0.25@16,churn=0.05+conn,delay=0.5x3"
	if got := s.Descriptor(); got != want {
		t.Fatalf("descriptor %q, want %q", got, want)
	}
	if got := (Spec{Churn: 0.3}).Descriptor(); got != "churn=0.3" {
		t.Fatalf("descriptor %q", got)
	}
	if got := (Spec{CrashSchedule: map[int]int{0: 1, 3: 2}}).Descriptor(); !strings.Contains(got, "crashsched=2") {
		t.Fatalf("descriptor %q", got)
	}
}

func TestSpecBuildComposesConfiguredParts(t *testing.T) {
	g := graph.Torus(4, 8)
	s := Spec{Loss: 0.2, CrashFraction: 0.3, CrashBy: 8, DelayProb: 0.5, MaxDelay: 2}
	adv, err := s.Build(g, 42)
	if err != nil {
		t.Fatal(err)
	}
	if adv == nil {
		t.Fatal("non-zero spec built nil")
	}
	if adv.MaxDelay() != 2 {
		t.Fatalf("MaxDelay %d", adv.MaxDelay())
	}
	crashes := 0
	for v := 0; v < g.N(); v++ {
		if adv.CrashRound(v) >= 0 {
			crashes++
		}
	}
	if crashes == 0 || crashes == g.N() {
		t.Fatalf("crash fraction 0.3 crashed %d/%d", crashes, g.N())
	}
	// Same seed rebuild is identical; different seed differs somewhere.
	adv2, _ := s.Build(g, 42)
	for v := 0; v < g.N(); v++ {
		if adv.CrashRound(v) != adv2.CrashRound(v) {
			t.Fatal("rebuild changed the crash schedule")
		}
	}
}

// TestLossIndependentFatesWithinSlot: the k-th packet of one (round,
// sender, port) slot has its own fate, decisions agree whether slot
// queries are contiguous or interleaved (a machine sending for several
// broadcast executions in one round interleaves ports), and fates within
// one slot are not perfectly correlated.
func TestLossIndependentFatesWithinSlot(t *testing.T) {
	const rounds, packets = 60, 2
	type slot struct{ round, port, k int }
	record := func(interleave bool) map[slot]bool {
		l := NewLoss(0.5, 13)
		out := map[slot]bool{}
		for round := 0; round < rounds; round++ {
			if interleave {
				for k := 0; k < packets; k++ {
					for port := 0; port < 2; port++ {
						d, _ := l.Fate(round, 0, port, 1)
						out[slot{round, port, k}] = d
					}
				}
			} else {
				for port := 0; port < 2; port++ {
					for k := 0; k < packets; k++ {
						d, _ := l.Fate(round, 0, port, 1)
						out[slot{round, port, k}] = d
					}
				}
			}
		}
		return out
	}
	contiguous, interleaved := record(false), record(true)
	for s, d := range contiguous {
		if interleaved[s] != d {
			t.Fatalf("slot %+v fate depends on query interleaving", s)
		}
	}
	diverged := 0
	for round := 0; round < rounds; round++ {
		if contiguous[slot{round, 0, 0}] != contiguous[slot{round, 0, 1}] {
			diverged++
		}
	}
	if diverged == 0 {
		t.Fatal("packets of one slot always share a fate (correlated draws)")
	}
}
