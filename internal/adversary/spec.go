package adversary

import (
	"fmt"
	"strconv"
	"strings"

	"anonlead/internal/graph"
	"anonlead/internal/rng"
	"anonlead/internal/sim"
)

// Spec is the declarative, serializable description of an adversary: what
// a sweep cell records in the bench artifact (schema v3) and what the
// trajectory tooling aligns cells by. The zero value means "no adversary"
// and builds to nil, so a zero-rate configuration is byte-identical to
// running without one.
type Spec struct {
	// Loss is the per-packet Bernoulli drop probability.
	Loss float64 `json:"loss,omitempty"`

	// CrashFraction is the expected fraction of nodes that crash-stop;
	// each crashing node picks a uniform crash round in [0, CrashBy].
	CrashFraction float64 `json:"crash_fraction,omitempty"`
	// CrashBy is the last round at which a sampled crash may fire.
	CrashBy int `json:"crash_by,omitempty"`
	// CrashSchedule fixes exact (node → round) crashes instead of sampling
	// (bespoke experiments and tests; not part of the descriptor grid).
	CrashSchedule map[int]int `json:"crash_schedule,omitempty"`

	// Churn is the per-edge per-round down probability.
	Churn float64 `json:"churn,omitempty"`
	// ChurnPreserve keeps a BFS spanning tree up so churn never
	// disconnects the live graph.
	ChurnPreserve bool `json:"churn_preserve,omitempty"`

	// DelayProb is the probability a delivered packet is late.
	DelayProb float64 `json:"delay_prob,omitempty"`
	// MaxDelay bounds the lateness (uniform 1..MaxDelay extra rounds).
	MaxDelay int `json:"max_delay,omitempty"`

	// AdaptiveCrash enables the traffic-adaptive crash adversary: every
	// window the AdaptiveCrash busiest nodes of that window crash-stop
	// (targeting the emerging leader). 0 disables.
	AdaptiveCrash int `json:"adaptive_crash,omitempty"`
	// AdaptiveWindow is the observation window in rounds (0 = default 8).
	AdaptiveWindow int `json:"adaptive_window,omitempty"`
	// AdaptiveStrikes bounds how many windows claim victims (0 = default 1).
	AdaptiveStrikes int `json:"adaptive_strikes,omitempty"`
}

// Adaptive-adversary defaults applied when the fields are left zero with
// AdaptiveCrash > 0.
const (
	DefaultAdaptiveWindow  = 8
	DefaultAdaptiveStrikes = 1
)

// adaptiveParams resolves the zero-value defaults.
func (s Spec) adaptiveParams() (window, strikes int) {
	window, strikes = s.AdaptiveWindow, s.AdaptiveStrikes
	if window <= 0 {
		window = DefaultAdaptiveWindow
	}
	if strikes <= 0 {
		strikes = DefaultAdaptiveStrikes
	}
	return window, strikes
}

// IsZero reports whether the spec configures no perturbation at all. Rates
// of exactly zero disable their primitive, so e.g. Spec{Loss: 0} is zero.
func (s Spec) IsZero() bool {
	return s.Loss == 0 && s.CrashFraction == 0 && len(s.CrashSchedule) == 0 &&
		s.Churn == 0 && (s.DelayProb == 0 || s.MaxDelay == 0) &&
		s.AdaptiveCrash == 0
}

// Validate rejects out-of-range parameters.
func (s Spec) Validate() error {
	check := func(name string, p float64) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("adversary: %s probability %v outside [0,1]", name, p)
		}
		return nil
	}
	if err := check("loss", s.Loss); err != nil {
		return err
	}
	if err := check("crash", s.CrashFraction); err != nil {
		return err
	}
	if err := check("churn", s.Churn); err != nil {
		return err
	}
	if err := check("delay", s.DelayProb); err != nil {
		return err
	}
	if s.CrashBy < 0 {
		return fmt.Errorf("adversary: negative crash-by round %d", s.CrashBy)
	}
	if s.MaxDelay < 0 {
		return fmt.Errorf("adversary: negative max delay %d", s.MaxDelay)
	}
	for v, r := range s.CrashSchedule {
		if v < 0 || r < 0 {
			return fmt.Errorf("adversary: invalid crash schedule entry node %d round %d", v, r)
		}
	}
	if s.AdaptiveCrash < 0 {
		return fmt.Errorf("adversary: negative adaptive crash count %d", s.AdaptiveCrash)
	}
	if s.AdaptiveWindow < 0 {
		return fmt.Errorf("adversary: negative adaptive window %d", s.AdaptiveWindow)
	}
	if s.AdaptiveStrikes < 0 {
		return fmt.Errorf("adversary: negative adaptive strikes %d", s.AdaptiveStrikes)
	}
	if s.AdaptiveCrash == 0 && (s.AdaptiveWindow != 0 || s.AdaptiveStrikes != 0) {
		return fmt.Errorf("adversary: adaptive window/strikes set without adaptive_crash")
	}
	return nil
}

// DeriveRunSeed derives a run's fault-injection stream seed from the
// run's root seed. The labeled split keeps the adversary's randomness
// disjoint from the protocol machines' (which split from the raw seed),
// so enabling a zero-rate adversary perturbs nothing. This is THE
// canonical derivation: the public anonlead.Run path and the experiment
// harness both use it, which is what keeps fault-injected sweeps
// byte-identical across the two surfaces.
func DeriveRunSeed(runSeed uint64) uint64 {
	return rng.New(runSeed).SplitString("adversary").DeriveSeed(0)
}

// fnum renders a probability compactly and canonically (no trailing
// zeros), so descriptors are stable cell-key material.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Descriptor canonically names the configuration, e.g.
// "loss=0.1,crash=0.25@16,churn=0.05+conn,delay=0.5x3". It is the
// adversary component of a sweep cell's identity: artifact cells persist
// it and trajectory alignment keys on it. A zero spec yields "".
func (s Spec) Descriptor() string {
	var parts []string
	if s.Loss > 0 {
		parts = append(parts, "loss="+fnum(s.Loss))
	}
	if s.CrashFraction > 0 {
		parts = append(parts, fmt.Sprintf("crash=%s@%d", fnum(s.CrashFraction), s.CrashBy))
	}
	if len(s.CrashSchedule) > 0 {
		parts = append(parts, fmt.Sprintf("crashsched=%d", len(s.CrashSchedule)))
	}
	if s.Churn > 0 {
		c := "churn=" + fnum(s.Churn)
		if s.ChurnPreserve {
			c += "+conn"
		}
		parts = append(parts, c)
	}
	if s.DelayProb > 0 && s.MaxDelay > 0 {
		parts = append(parts, fmt.Sprintf("delay=%sx%d", fnum(s.DelayProb), s.MaxDelay))
	}
	if s.AdaptiveCrash > 0 {
		window, strikes := s.adaptiveParams()
		a := fmt.Sprintf("adaptive=%d@%d", s.AdaptiveCrash, window)
		if strikes > 1 {
			a += fmt.Sprintf("x%d", strikes)
		}
		parts = append(parts, a)
	}
	return strings.Join(parts, ",")
}

// Build constructs the composed runtime adversary for one trial on g,
// deriving every primitive's stream from seed by labeled splitting (so the
// primitives never correlate). A zero spec returns (nil, nil): no
// adversary, and therefore a run byte-identical to an unperturbed one.
func (s Spec) Build(g *graph.Graph, seed uint64) (sim.Adversary, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.IsZero() {
		return nil, nil
	}
	root := rng.New(seed)
	sub := func(label string) uint64 { return root.SplitString(label).DeriveSeed(0) }
	n := 0
	if g != nil {
		n = g.N()
	}
	var parts []sim.Adversary
	if s.Loss > 0 {
		parts = append(parts, NewLoss(s.Loss, sub("loss")))
	}
	if s.CrashFraction > 0 {
		parts = append(parts, NewRandomCrash(n, s.CrashFraction, s.CrashBy, sub("crash")))
	}
	if len(s.CrashSchedule) > 0 {
		parts = append(parts, NewCrashSchedule(n, s.CrashSchedule))
	}
	if s.Churn > 0 {
		parts = append(parts, NewChurn(g, s.Churn, s.ChurnPreserve, sub("churn")))
	}
	if s.DelayProb > 0 && s.MaxDelay > 0 {
		parts = append(parts, NewDelay(s.DelayProb, s.MaxDelay, sub("delay")))
	}
	if s.AdaptiveCrash > 0 {
		window, strikes := s.adaptiveParams()
		parts = append(parts, NewAdaptiveCrash(n, s.AdaptiveCrash, window, strikes))
	}
	return Compose(parts...), nil
}
