package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// PhaseSecondsBounds are the bucket upper bounds (seconds) for the
// anonlead_phase_seconds histogram: log-spaced from 1ms to ~100s, sized
// for everything from a cached prepareCell hit to a full-matrix sweep.
var PhaseSecondsBounds = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120,
}

// SpanEvent is one completed phase span, ready for Chrome trace export.
type SpanEvent struct {
	Phase  string
	Detail string
	Start  time.Time
	Dur    time.Duration
}

var spanLog struct {
	mu     sync.Mutex
	events []SpanEvent
}

// noopEnd is the shared closure Span returns while telemetry is disabled,
// keeping the disabled path allocation-free.
var noopEnd = func() {}

// Span starts a phase span and returns the closure that ends it:
//
//	done := obs.Span("prepare", cellLabel)
//	defer done()
//
// While telemetry is disabled this is one atomic load and a shared no-op
// closure — zero allocations. When enabled, ending the span feeds the
// anonlead_phase_seconds{phase=...} histogram in the default registry and
// appends a trace event for WriteChromeTrace.
func Span(phase string, detail ...string) func() {
	if !enabled.Load() {
		return noopEnd
	}
	d := ""
	if len(detail) > 0 {
		d = detail[0]
	}
	start := time.Now()
	return func() {
		dur := time.Since(start)
		defaultRegistry.
			Histogram("anonlead_phase_seconds", PhaseSecondsBounds, "phase", phase).
			Observe(dur.Seconds())
		spanLog.mu.Lock()
		spanLog.events = append(spanLog.events, SpanEvent{Phase: phase, Detail: d, Start: start, Dur: dur})
		spanLog.mu.Unlock()
	}
}

// SpanEvents returns a copy of all completed spans, in completion order.
func SpanEvents() []SpanEvent {
	spanLog.mu.Lock()
	defer spanLog.mu.Unlock()
	return append([]SpanEvent(nil), spanLog.events...)
}

// ResetSpans clears the span log (tests; long-lived servers between runs).
func ResetSpans() {
	spanLog.mu.Lock()
	spanLog.events = nil
	spanLog.mu.Unlock()
}

// chromeEvent is one complete ("ph":"X") event in the Chrome trace-event
// JSON format understood by chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`  // microseconds since trace origin
	Dur  int64             `json:"dur"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace writes every completed span as a Chrome trace-event
// JSON document. Spans are packed onto tracks greedily (each span takes
// the lowest-numbered track that is free at its start time) so concurrent
// phases render side by side instead of overlapping.
func WriteChromeTrace(w io.Writer) error {
	events := SpanEvents()
	sort.SliceStable(events, func(a, b int) bool { return events[a].Start.Before(events[b].Start) })
	var origin time.Time
	if len(events) > 0 {
		origin = events[0].Start
	}
	var trackEnd []time.Time // per-track last occupied instant
	out := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: make([]chromeEvent, 0, len(events))}
	for _, ev := range events {
		tid := -1
		for i, end := range trackEnd {
			if !ev.Start.Before(end) {
				tid = i
				break
			}
		}
		if tid < 0 {
			tid = len(trackEnd)
			trackEnd = append(trackEnd, time.Time{})
		}
		trackEnd[tid] = ev.Start.Add(ev.Dur)
		ce := chromeEvent{
			Name: ev.Phase,
			Ph:   "X",
			Ts:   ev.Start.Sub(origin).Microseconds(),
			Dur:  ev.Dur.Microseconds(),
			Pid:  1,
			Tid:  tid + 1,
		}
		if ev.Detail != "" {
			ce.Args = map[string]string{"detail": ev.Detail}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// PhaseStat is the aggregate view of one phase, as rendered by the
// lereport phase-breakdown table.
type PhaseStat struct {
	Phase string
	Spans int64
	Total float64 // seconds
}

// PhaseStats summarizes a metrics snapshot's anonlead_phase_seconds
// series into per-phase totals, sorted by descending total time. It
// accepts a snapshot (rather than reading the live registry) so lereport
// can consume a -metrics-out file from another process.
func PhaseStats(points []MetricPoint) []PhaseStat {
	var out []PhaseStat
	for _, p := range points {
		if p.Name != "anonlead_phase_seconds" || p.Kind != "histogram" {
			continue
		}
		out = append(out, PhaseStat{Phase: p.Labels["phase"], Spans: p.Count, Total: p.Sum})
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Total != out[b].Total {
			return out[a].Total > out[b].Total
		}
		return out[a].Phase < out[b].Phase
	})
	return out
}

// WriteSnapshotJSON writes the default registry's snapshot as indented
// JSON — the -metrics-out file format that lereport -phases reads.
func WriteSnapshotJSON(w io.Writer) error {
	b, err := json.MarshalIndent(defaultRegistry.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal snapshot: %w", err)
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// WriteChromeTraceFile writes the span log as Chrome trace-event JSON to
// path (the CLIs' -trace-out).
func WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteSnapshotFile writes the registry snapshot JSON to path (the CLIs'
// -metrics-out).
func WriteSnapshotFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteSnapshotJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSnapshotFile reads a -metrics-out snapshot back (lereport -phases).
func ReadSnapshotFile(path string) ([]MetricPoint, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var points []MetricPoint
	if err := json.Unmarshal(buf, &points); err != nil {
		return nil, fmt.Errorf("obs: %s is not a metrics snapshot: %w", path, err)
	}
	return points, nil
}
