package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// parsePrometheusText is a strict parser for the subset of the text
// exposition format (0.0.4) this package emits. It returns sample name ->
// value and fails the format on any malformed line, which is what the CI
// "metrics output parses" gate relies on.
func parsePrometheusText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]string)
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line in exposition", ln+1)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE comment %q", ln+1, line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, parts[3])
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}
		// sample: name[{labels}] value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		var val float64
		if valStr == "+Inf" {
			val = math.Inf(+1)
		} else {
			var err error
			val, err = strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
			}
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d: unterminated label set in %q", ln+1, line)
			}
			name = key[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if _, ok := typed[name]; !ok {
			if _, ok := typed[base]; !ok {
				t.Fatalf("line %d: sample %q has no preceding TYPE line", ln+1, name)
			}
		}
		samples[key] = val
	}
	return samples
}

func TestMetricsEndpointServesParseablePrometheus(t *testing.T) {
	withEnabled(t)
	defaultRegistry.Counter("anonlead_cells_done", "exp", "sweeps").Add(81)
	defaultRegistry.Gauge("anonlead_sweep_eta_seconds").Set(12.5)
	Span("prepare", "cell-0")()
	Span("trials")()
	Span("trials")()

	srv := httptest.NewServer(Handler(nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := parsePrometheusText(t, string(body))
	if got := samples[`anonlead_cells_done{exp="sweeps"}`]; got != 81 {
		t.Fatalf("cells_done = %v, want 81:\n%s", got, body)
	}
	if got := samples[`anonlead_sweep_eta_seconds`]; got != 12.5 {
		t.Fatalf("eta = %v, want 12.5:\n%s", got, body)
	}
	if got := samples[`anonlead_phase_seconds_count{phase="trials"}`]; got != 2 {
		t.Fatalf("trials span count = %v, want 2:\n%s", got, body)
	}
	// Histogram cumulative invariant: each successive le bucket >= previous,
	// and the +Inf bucket equals _count.
	var prev float64
	for i, b := range PhaseSecondsBounds {
		key := fmt.Sprintf(`anonlead_phase_seconds_bucket{phase="trials",le="%s"}`, formatFloat(b))
		v, ok := samples[key]
		if !ok {
			t.Fatalf("missing bucket sample %q", key)
		}
		if v < prev {
			t.Fatalf("bucket %d not cumulative: %v < %v", i, v, prev)
		}
		prev = v
	}
	inf := samples[`anonlead_phase_seconds_bucket{phase="trials",le="+Inf"}`]
	if inf != samples[`anonlead_phase_seconds_count{phase="trials"}`] {
		t.Fatalf("+Inf bucket %v != count", inf)
	}
}

func TestDebugProgressEndpoint(t *testing.T) {
	withEnabled(t)
	type progress struct {
		Done  int    `json:"done"`
		State string `json:"state"`
	}
	srv := httptest.NewServer(Handler(func() any { return progress{Done: 7, State: "running"} }))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got progress
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Done != 7 || got.State != "running" {
		t.Fatalf("progress = %+v", got)
	}

	// Without a progress source the endpoint 404s rather than serving null.
	srv2 := httptest.NewServer(Handler(nil))
	defer srv2.Close()
	resp2, err := http.Get(srv2.URL + "/debug/progress")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("nil progress: status %d, want 404", resp2.StatusCode)
	}
}

func TestDebugPprofIndexServes(t *testing.T) {
	srv := httptest.NewServer(Handler(nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: status %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "goroutine") {
		t.Fatal("pprof index does not list profiles")
	}
}

func TestServeBindsAndServes(t *testing.T) {
	withEnabled(t)
	addr, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics over Serve: status %d", resp.StatusCode)
	}
}
