// Package obs is the run-telemetry subsystem: a process-wide registry of
// counters, gauges and histograms with snapshot + Prometheus-text
// exposition, phase spans exportable as Chrome trace-event JSON, and
// deterministic per-round message/halt profiles for artifact cells.
//
// The whole package is gated on one process-wide switch: until Enable is
// called every Span returns a shared no-op closure and every metric update
// is skipped, so the simulator's 0-alloc round path and the byte-identity
// of committed artifacts are untouched by merely linking this package.
// Telemetry (spans, counters) is a wall-clock side channel and never enters
// artifacts; the one deterministic product — the per-cell RoundProfile —
// is integer-only and scheduler-independent, and is opt-in per trial.
//
// Dataflow: harness/sweep call sites wrap phases in Span() → spans feed the
// anonlead_phase_seconds histogram in the default Registry and accumulate
// as trace events → WritePrometheus / WriteChromeTrace expose both; the
// sim Observer hook feeds RoundProfile buckets → the harness merges them
// per cell and (optionally) embeds them in the schema-v5 artifact.
// See docs/ARCHITECTURE.md "Observability".
package obs

import "sync/atomic"

// enabled is the process-wide master switch. All recording paths
// (Span, Counter.Inc via callers, RoundObserver construction) consult it
// so that a disabled process pays one atomic load — and, for spans, zero
// allocations — per call site.
var enabled atomic.Bool

// Enable turns telemetry recording on process-wide.
func Enable() { enabled.Store(true) }

// Disable turns telemetry recording off and is the default state.
func Disable() { enabled.Store(false) }

// Enabled reports whether telemetry recording is on. Call sites with
// non-trivial setup cost (building an observer closure, formatting labels)
// should gate on it; metric mutators are themselves no-ops when disabled.
func Enabled() bool { return enabled.Load() }
