package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the debug mux served by -debug-addr:
//
//	/metrics         Prometheus text exposition of the default registry
//	/debug/pprof/*   the standard pprof endpoints
//	/debug/progress  live JSON from the progress callback (404 if nil)
//
// progress is polled per request; the sweep coordinator supplies its
// Progress method so a long sweep can be watched without log scraping.
func Handler(progress func() any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = defaultRegistry.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/progress", func(w http.ResponseWriter, r *http.Request) {
		if progress == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(progress())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("anonlead debug endpoint\n\n/metrics\n/debug/pprof/\n/debug/progress\n"))
	})
	return mux
}

// Serve starts the debug HTTP server on addr in a background goroutine
// and returns the bound address (useful with ":0") or an error if the
// listen fails. The server lives until the process exits; CLIs treat it
// as a diagnostic side channel, not a managed component.
func Serve(addr string, progress func() any) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: Handler(progress), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
