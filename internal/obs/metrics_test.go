package obs

import (
	"strings"
	"testing"
)

// withEnabled flips telemetry on for one test and restores the disabled
// default afterwards. Tests share process-wide state (the enabled flag,
// the default registry, the span log), so none of them run in parallel.
func withEnabled(t *testing.T) {
	t.Helper()
	Enable()
	t.Cleanup(func() {
		Disable()
		defaultRegistry.Reset()
		ResetSpans()
	})
}

func TestDisabledMutatorsAreNoOps(t *testing.T) {
	Disable()
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1, 10})
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(4)
	h.Observe(2)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("disabled mutators recorded: c=%d g=%v h.count=%d h.sum=%v",
			c.Value(), g.Value(), h.Count(), h.Sum())
	}
}

func TestCounterGaugeHistogramRecord(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	c := r.Counter("cells_done", "exp", "sweeps")
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	g := r.Gauge("eta_seconds")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %v, want 6", got)
	}
	h := r.Histogram("dur", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("hist count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Fatalf("hist sum = %v, want 556.5", h.Sum())
	}
	// Buckets: <=1: {0.5, 1}, <=10: {5}, <=100: {50}, +Inf: {500}.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Fatalf("bucket[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestRegistryIdempotentAndLabelCanonical(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	a := r.Counter("x", "b", "2", "a", "1")
	b := r.Counter("x", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order should not distinguish metrics")
	}
	if c := r.Counter("x", "a", "1", "b", "3"); c == a {
		t.Fatal("different label values must be distinct metrics")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a name as a different kind should panic")
		}
	}()
	r.Gauge("x", "b", "2", "a", "1")
}

func TestSnapshotStableOrder(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	r.Counter("zz").Inc()
	r.Counter("aa", "k", "2").Inc()
	r.Counter("aa", "k", "1").Inc()
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d points, want 3", len(snap))
	}
	if snap[0].Name != "aa" || snap[0].Labels["k"] != "1" ||
		snap[1].Name != "aa" || snap[1].Labels["k"] != "2" ||
		snap[2].Name != "zz" {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
}

func TestConcurrentMetricUpdates(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	const goroutines, per = 8, 1000
	done := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < per; j++ {
				r.Counter("n").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", []float64{10, 1000}).Observe(float64(j))
			}
		}()
	}
	for i := 0; i < goroutines; i++ {
		<-done
	}
	if got := r.Counter("n").Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
	if got := r.Gauge("g").Value(); got != goroutines*per {
		t.Fatalf("gauge = %v, want %d", got, goroutines*per)
	}
	h := r.Histogram("h", nil)
	if h.Count() != goroutines*per {
		t.Fatalf("hist count = %d, want %d", h.Count(), goroutines*per)
	}
	var inBuckets int64
	for i := range h.buckets {
		inBuckets += h.buckets[i].Load()
	}
	if inBuckets != h.Count() {
		t.Fatalf("bucket total %d != count %d", inBuckets, h.Count())
	}
}

func TestPrometheusEscaping(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	r.Counter("c", "path", `a"b\c`+"\n").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `c{path="a\"b\\c\n"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("exposition missing %q:\n%s", want, sb.String())
	}
}
