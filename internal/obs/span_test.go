package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanDisabledIsAllocationFree(t *testing.T) {
	Disable()
	avg := testing.AllocsPerRun(100, func() {
		done := Span("prepare", "detail-that-would-allocate")
		done()
	})
	if avg != 0 {
		t.Fatalf("disabled Span allocates %.1f/op, want 0", avg)
	}
	if len(SpanEvents()) != 0 {
		t.Fatal("disabled Span recorded events")
	}
}

func TestSpanFeedsHistogramAndLog(t *testing.T) {
	withEnabled(t)
	done := Span("trials", "cell-3")
	time.Sleep(time.Millisecond)
	done()
	Span("reduce")()

	events := SpanEvents()
	if len(events) != 2 {
		t.Fatalf("got %d span events, want 2", len(events))
	}
	if events[0].Phase != "trials" || events[0].Detail != "cell-3" {
		t.Fatalf("unexpected first event: %+v", events[0])
	}
	if events[0].Dur < time.Millisecond {
		t.Fatalf("span duration %v, want >= 1ms", events[0].Dur)
	}
	stats := PhaseStats(defaultRegistry.Snapshot())
	if len(stats) != 2 {
		t.Fatalf("got %d phase stats, want 2: %+v", len(stats), stats)
	}
	// "trials" slept a millisecond, "reduce" did not: total-desc order.
	if stats[0].Phase != "trials" || stats[0].Spans != 1 {
		t.Fatalf("unexpected leading phase stat: %+v", stats[0])
	}
}

func TestWriteChromeTracePacksTracks(t *testing.T) {
	withEnabled(t)
	base := time.Now()
	spanLog.mu.Lock()
	spanLog.events = []SpanEvent{
		// Two overlapping spans, then one that starts after both end.
		{Phase: "prepare", Start: base, Dur: 10 * time.Millisecond},
		{Phase: "profile", Start: base.Add(5 * time.Millisecond), Dur: 10 * time.Millisecond, Detail: "x"},
		{Phase: "trials", Start: base.Add(20 * time.Millisecond), Dur: time.Millisecond},
	}
	spanLog.mu.Unlock()

	var sb strings.Builder
	if err := WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   int64             `json:"ts"`
			Dur  int64             `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d trace events, want 3", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Pid != 1 || ev.Tid < 1 {
			t.Fatalf("malformed event: %+v", ev)
		}
	}
	if doc.TraceEvents[0].Tid == doc.TraceEvents[1].Tid {
		t.Fatal("overlapping spans packed onto the same track")
	}
	if doc.TraceEvents[2].Tid != 1 {
		t.Fatalf("non-overlapping span should reuse track 1, got %d", doc.TraceEvents[2].Tid)
	}
	if doc.TraceEvents[1].Args["detail"] != "x" {
		t.Fatalf("detail arg lost: %+v", doc.TraceEvents[1])
	}
	if doc.TraceEvents[0].Ts != 0 || doc.TraceEvents[1].Ts != 5000 {
		t.Fatalf("timestamps not relative to origin: %+v", doc.TraceEvents[:2])
	}
}

func TestWriteSnapshotJSONRoundTrips(t *testing.T) {
	withEnabled(t)
	Span("merge")()
	var sb strings.Builder
	if err := WriteSnapshotJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var points []MetricPoint
	if err := json.Unmarshal([]byte(sb.String()), &points); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	stats := PhaseStats(points)
	if len(stats) != 1 || stats[0].Phase != "merge" || stats[0].Spans != 1 {
		t.Fatalf("snapshot did not round-trip phase stats: %+v", stats)
	}
}
