package obs

// Transport metric names, shared by internal/transport (producer) and the
// report tooling (consumer). All series carry a backend label ("chan",
// "pipe", "tcp").
const (
	// TransportFramesTx / Rx count data-plane frames written/read.
	TransportFramesTx = "anonlead_transport_frames_tx"
	TransportFramesRx = "anonlead_transport_frames_rx"
	// TransportBytesTx / Rx count encoded payload bytes written/read.
	TransportBytesTx = "anonlead_transport_bytes_tx"
	TransportBytesRx = "anonlead_transport_bytes_rx"
	// TransportRoundSeconds is the coordinator's wall-clock histogram of
	// barrier-to-barrier round latency.
	TransportRoundSeconds = "anonlead_transport_round_seconds"
)

// TransportRoundSecondsBounds buckets real-transport round latency:
// log-spaced from 10µs (channel backend, small rings) to 10s (TCP under
// injected delay faults).
var TransportRoundSecondsBounds = []float64{
	0.00001, 0.00005, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05,
	0.1, 0.5, 1, 5, 10,
}
