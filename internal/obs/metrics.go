package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonically increasing integer. All methods are safe
// for concurrent use and are no-ops while telemetry is disabled.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1 to the counter.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (which must be >= 0) to the counter.
func (c *Counter) Add(delta int64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// A Gauge is a float64 that can go up and down (worker states, queue
// depths, ETAs). Safe for concurrent use; no-op while disabled.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if !enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta to the gauge value (CAS loop).
func (g *Gauge) Add(delta float64) {
	if !enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// A Histogram counts observations into fixed cumulative-style buckets
// defined by ascending upper bounds, plus a +Inf overflow bucket. Bounds
// are fixed at construction, so concurrent observation is lock-free.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; implicit +Inf after
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 CAS-accumulated sum
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	// Linear scan: phase/duration histograms have ~10 buckets, and the
	// branch predictor beats sort.SearchFloat64s at that size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// metricKind discriminates registry entries in snapshots/exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type metric struct {
	name   string
	labels []string // alternating key, value — canonical (sorted) order
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// A Registry holds named metrics. The zero value is not usable; use
// NewRegistry or the package-level Default registry. Metric constructors
// are idempotent: the same (name, labels) pair always returns the same
// instance, so call sites can re-resolve instead of caching.
type Registry struct {
	mu      sync.Mutex
	byKey   map[string]*metric
	ordered []*metric // registration order, for stable iteration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// defaultRegistry is the process-wide registry that Span and the CLIs use.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// canonLabels sorts label pairs by key and returns the canonical slice and
// the map key suffix. Labels come in as alternating key, value strings.
func canonLabels(labels []string) ([]string, string) {
	if len(labels)%2 != 0 {
		panic("obs: labels must be alternating key, value pairs")
	}
	n := len(labels) / 2
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return labels[2*idx[a]] < labels[2*idx[b]] })
	canon := make([]string, 0, len(labels))
	var sb strings.Builder
	for _, i := range idx {
		k, v := labels[2*i], labels[2*i+1]
		canon = append(canon, k, v)
		sb.WriteByte('|')
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(v)
	}
	return canon, sb.String()
}

// lookup finds or creates the metric for (name, labels); init populates a
// freshly created entry and runs under the registry lock, so concurrent
// first-use of the same key constructs the instance exactly once.
func (r *Registry) lookup(name string, kind metricKind, labels []string, init func(*metric)) *metric {
	canon, suffix := canonLabels(labels)
	key := name + suffix
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return m
	}
	m := &metric{name: name, labels: canon, kind: kind}
	init(m)
	r.byKey[key] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter returns the counter for (name, labels), creating it on first use.
// Labels are alternating key, value strings: Counter("cells_done", "exp", "sweeps").
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return r.lookup(name, kindCounter, labels, func(m *metric) { m.c = &Counter{} }).c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return r.lookup(name, kindGauge, labels, func(m *metric) { m.g = &Gauge{} }).g
}

// Histogram returns the histogram for (name, labels), creating it with the
// given bucket upper bounds on first use. Later calls for the same
// (name, labels) ignore bounds and return the existing instance.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	return r.lookup(name, kindHistogram, labels, func(m *metric) { m.h = newHistogram(bounds) }).h
}

// MetricPoint is one metric in a Snapshot, JSON-ready.
type MetricPoint struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"` // "counter" | "gauge" | "histogram"

	// Counter / gauge value (Count used for counters to stay integer).
	Count int64   `json:"count,omitempty"`
	Value float64 `json:"value,omitempty"`

	// Histogram summary.
	Sum     float64   `json:"sum,omitempty"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"` // len(Bounds)+1, last is +Inf
}

// Snapshot returns every metric's current value, in a stable order
// (name, then canonical label string). Safe to call concurrently with
// observation; values are read atomically per metric, not globally.
func (r *Registry) Snapshot() []MetricPoint {
	r.mu.Lock()
	ms := make([]*metric, len(r.ordered))
	copy(ms, r.ordered)
	r.mu.Unlock()
	sort.SliceStable(ms, func(a, b int) bool {
		if ms[a].name != ms[b].name {
			return ms[a].name < ms[b].name
		}
		return labelString(ms[a].labels) < labelString(ms[b].labels)
	})
	out := make([]MetricPoint, 0, len(ms))
	for _, m := range ms {
		p := MetricPoint{Name: m.name}
		if len(m.labels) > 0 {
			p.Labels = make(map[string]string, len(m.labels)/2)
			for i := 0; i+1 < len(m.labels); i += 2 {
				p.Labels[m.labels[i]] = m.labels[i+1]
			}
		}
		switch m.kind {
		case kindCounter:
			p.Kind = "counter"
			p.Count = m.c.Value()
		case kindGauge:
			p.Kind = "gauge"
			p.Value = m.g.Value()
		case kindHistogram:
			p.Kind = "histogram"
			p.Count = m.h.Count()
			p.Sum = m.h.Sum()
			p.Bounds = append([]float64(nil), m.h.bounds...)
			p.Buckets = make([]int64, len(m.h.buckets))
			for i := range m.h.buckets {
				p.Buckets[i] = m.h.buckets[i].Load()
			}
		}
		out = append(out, p)
	}
	return out
}

func labelString(labels []string) string {
	return strings.Join(labels, "|")
}

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4): one TYPE line per metric family, histograms as
// cumulative _bucket/_sum/_count series with an le label.
func (r *Registry) WritePrometheus(w io.Writer) error {
	points := r.Snapshot()
	typed := make(map[string]bool)
	for _, p := range points {
		if !typed[p.Name] {
			typed[p.Name] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", p.Name, p.Kind); err != nil {
				return err
			}
		}
		base := promLabels(p.Labels, "", "")
		switch p.Kind {
		case "counter":
			if _, err := fmt.Fprintf(w, "%s%s %d\n", p.Name, base, p.Count); err != nil {
				return err
			}
		case "gauge":
			if _, err := fmt.Fprintf(w, "%s%s %s\n", p.Name, base, formatFloat(p.Value)); err != nil {
				return err
			}
		case "histogram":
			cum := int64(0)
			for i, b := range p.Buckets {
				cum += b
				le := "+Inf"
				if i < len(p.Bounds) {
					le = formatFloat(p.Bounds[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					p.Name, promLabels(p.Labels, "le", le), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", p.Name, base, formatFloat(p.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", p.Name, base, p.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// promLabels renders a {k="v",...} label set (sorted keys), optionally
// appending one extra pair (the histogram le label). Empty set renders "".
func promLabels(labels map[string]string, extraK, extraV string) string {
	if len(labels) == 0 && extraK == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(labels[k]))
		sb.WriteByte('"')
	}
	if extraK != "" {
		if len(keys) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraK)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(extraV))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Reset drops every metric from the registry. Tests use it to isolate
// cases that assert on the default registry's contents.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byKey = make(map[string]*metric)
	r.ordered = nil
}
