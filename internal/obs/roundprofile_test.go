package obs

import (
	"reflect"
	"testing"
)

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-1, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 40, 41},
	}
	for _, c := range cases {
		if got := Bucket(c.v); got != c.want {
			t.Errorf("Bucket(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestObserveRoundProfile(t *testing.T) {
	var p RoundProfile
	p.ObserveRound(0, 0) // round 1: silent
	p.ObserveRound(6, 0) // round 2: 6 msgs -> bucket 3
	p.ObserveRound(6, 2) // round 3: tie, peak stays at round 2; 2 halts -> bucket 2
	p.ObserveRound(1, 4) // round 4
	if p.Rounds != 4 || p.TotalMsgs != 13 {
		t.Fatalf("rounds=%d total=%d, want 4/13", p.Rounds, p.TotalMsgs)
	}
	if p.PeakMsgs != 6 || p.PeakRound != 2 {
		t.Fatalf("peak=%d@%d, want 6@2", p.PeakMsgs, p.PeakRound)
	}
	if want := []int64{1, 1, 0, 2}; !reflect.DeepEqual(p.MsgRounds, want) {
		t.Fatalf("MsgRounds = %v, want %v", p.MsgRounds, want)
	}
	if want := []int64{0, 0, 1, 1}; !reflect.DeepEqual(p.HaltRounds, want) {
		t.Fatalf("HaltRounds = %v, want %v", p.HaltRounds, want)
	}
}

func TestMergeIsElementwiseAndPeakDeterministic(t *testing.T) {
	var a, b RoundProfile
	a.ObserveRound(4, 1)
	a.ObserveRound(8, 0)
	b.ObserveRound(8, 3)

	m := a.Clone()
	m.Merge(&b)
	if m.Rounds != 3 || m.TotalMsgs != 20 {
		t.Fatalf("merged rounds=%d total=%d, want 3/20", m.Rounds, m.TotalMsgs)
	}
	// Tie on PeakMsgs=8: first-merged profile wins, so PeakRound is a's.
	if m.PeakMsgs != 8 || m.PeakRound != a.PeakRound {
		t.Fatalf("merged peak=%d@%d, want 8@%d", m.PeakMsgs, m.PeakRound, a.PeakRound)
	}

	// Merging into an empty profile copies the other side.
	var empty RoundProfile
	empty.Merge(&b)
	if !reflect.DeepEqual(&empty, &b) {
		t.Fatalf("empty.Merge(b) = %+v, want %+v", empty, b)
	}

	// nil merge is a no-op.
	before := *m
	m.Merge(nil)
	if !reflect.DeepEqual(*m, before) {
		t.Fatal("Merge(nil) mutated the profile")
	}
}

func TestCloneIsDeep(t *testing.T) {
	var p RoundProfile
	p.ObserveRound(5, 1)
	q := p.Clone()
	q.ObserveRound(100, 10)
	if p.Rounds != 1 || len(p.MsgRounds) != 4 {
		t.Fatalf("clone mutation leaked into original: %+v", p)
	}
	if (*RoundProfile)(nil).Clone() != nil {
		t.Fatal("nil Clone should be nil")
	}
}

func TestRoundObserverDeltas(t *testing.T) {
	var p RoundProfile
	obs := p.RoundObserver()
	// Simulator feed is cumulative: 3 msgs, then 3 more, then none.
	obs(3, 0)
	obs(6, 2)
	obs(6, 5)
	if p.Rounds != 3 || p.TotalMsgs != 6 {
		t.Fatalf("rounds=%d total=%d, want 3/6", p.Rounds, p.TotalMsgs)
	}
	if p.PeakMsgs != 3 || p.PeakRound != 1 {
		t.Fatalf("peak=%d@%d, want 3@1", p.PeakMsgs, p.PeakRound)
	}
	// Halt deltas: round 2 halted 2, round 3 halted 3.
	if want := []int64{0, 0, 2}; !reflect.DeepEqual(p.HaltRounds, want) {
		t.Fatalf("HaltRounds = %v, want %v", p.HaltRounds, want)
	}
}
