package obs

import "math/bits"

// RoundProfileBuckets is the fixed bucket count for per-round histograms:
// power-of-two buckets 0, [1,2), [2,4), ... [2^62, 2^63). Fixed bounds
// (rather than data-dependent ones) are what make profiles mergeable by
// plain elementwise addition and byte-identical across schedulers.
const RoundProfileBuckets = 64

// RoundProfile is the deterministic per-cell summary of round-resolved
// behaviour: how many rounds saw how many messages, when the message peak
// happened, and how halting progressed. All fields are integers derived
// from the simulator's cumulative Metrics deltas, so a profile is a pure
// function of (graph, protocol, seed) — identical across the Sequential,
// WorkerPool and Actors schedulers — and two profiles merge by addition.
//
// MsgRounds[b] counts rounds whose per-round message total fell in
// bucket b: bucket 0 is exactly 0 messages, bucket b >= 1 is
// [2^(b-1), 2^b). HaltRounds counts rounds by newly-halted nodes in the
// same bucket scheme. Trailing zero buckets are trimmed before export.
type RoundProfile struct {
	Rounds     int64   `json:"rounds"`
	TotalMsgs  int64   `json:"total_msgs"`
	PeakMsgs   int64   `json:"peak_msgs"`
	PeakRound  int64   `json:"peak_round"` // first round reaching PeakMsgs, 1-based within its trial; 0 if empty
	MsgRounds  []int64 `json:"msg_rounds,omitempty"`
	HaltRounds []int64 `json:"halt_rounds,omitempty"`
}

// Bucket returns the profile bucket index for a per-round value:
// 0 for 0, and 1+floor(log2(v)) for v >= 1.
func Bucket(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v)) // v in [2^(k-1), 2^k) => Len64 = k => bucket k
}

func bump(buckets []int64, v int64) []int64 {
	b := Bucket(v)
	for len(buckets) <= b {
		buckets = append(buckets, 0)
	}
	buckets[b]++
	return buckets
}

// ObserveRound records one round's deltas: msgs messages sent during the
// round and halted nodes newly halted by its end.
func (p *RoundProfile) ObserveRound(msgs, halted int64) {
	p.Rounds++
	p.TotalMsgs += msgs
	if p.PeakRound == 0 || msgs > p.PeakMsgs {
		p.PeakMsgs = msgs
		p.PeakRound = p.Rounds
	}
	p.MsgRounds = bump(p.MsgRounds, msgs)
	if halted > 0 {
		p.HaltRounds = bump(p.HaltRounds, halted)
	}
}

// Merge adds q into p elementwise. Peak ties keep p's (earlier-merged)
// round, so merging trials in trial order is deterministic.
func (p *RoundProfile) Merge(q *RoundProfile) {
	if q == nil {
		return
	}
	if q.PeakRound != 0 && (p.PeakRound == 0 || q.PeakMsgs > p.PeakMsgs) {
		p.PeakMsgs = q.PeakMsgs
		p.PeakRound = q.PeakRound
	}
	p.Rounds += q.Rounds
	p.TotalMsgs += q.TotalMsgs
	for len(p.MsgRounds) < len(q.MsgRounds) {
		p.MsgRounds = append(p.MsgRounds, 0)
	}
	for i, v := range q.MsgRounds {
		p.MsgRounds[i] += v
	}
	for len(p.HaltRounds) < len(q.HaltRounds) {
		p.HaltRounds = append(p.HaltRounds, 0)
	}
	for i, v := range q.HaltRounds {
		p.HaltRounds[i] += v
	}
}

// Clone returns a deep copy (nil-safe).
func (p *RoundProfile) Clone() *RoundProfile {
	if p == nil {
		return nil
	}
	q := *p
	q.MsgRounds = append([]int64(nil), p.MsgRounds...)
	q.HaltRounds = append([]int64(nil), p.HaltRounds...)
	return &q
}

// RoundObserver adapts the simulator's cumulative per-round observer feed
// (total messages and total halted nodes so far) into per-round deltas on
// a RoundProfile. The returned function is the body of an
// anonlead.WithObserver callback; prev* live in the closure, so one
// observer serves exactly one trial.
func (p *RoundProfile) RoundObserver() func(cumMsgs, cumHalted int64) {
	var prevMsgs, prevHalted int64
	return func(cumMsgs, cumHalted int64) {
		p.ObserveRound(cumMsgs-prevMsgs, cumHalted-prevHalted)
		prevMsgs, prevHalted = cumMsgs, cumHalted
	}
}
