// Package congest provides bit-level size accounting and encoding for
// CONGEST-model payloads.
//
// The simulator charges every payload its exact bit size (Payload.Bits) and
// serializes link traffic into O(log n)-bit slots. Protocol packages use
// the helpers here to declare honest sizes, and their tests round-trip
// payloads through BitWriter/BitReader to prove the declared sizes are
// achievable encodings, not wishes.
//
// See docs/ARCHITECTURE.md for where this sits in the paper-to-code map.
package congest

import (
	"errors"
	"math/bits"
)

// BitLen returns the number of bits needed to represent x (0 needs 1 bit).
func BitLen(x uint64) int {
	if x == 0 {
		return 1
	}
	return bits.Len64(x)
}

// BitsForRange returns the bits needed to encode any value in [0, n).
// It panics for n == 0 (empty ranges are caller bugs).
func BitsForRange(n uint64) int {
	if n == 0 {
		panic("congest: BitsForRange with empty range")
	}
	return BitLen(n - 1)
}

// Fragments returns how many budget-sized CONGEST slots a payload of the
// given bit size occupies (minimum 1).
func Fragments(bitSize, budget int) int {
	if budget <= 0 {
		panic("congest: non-positive budget")
	}
	if bitSize <= 0 {
		return 1
	}
	return (bitSize + budget - 1) / budget
}

// BitWriter appends values bit by bit, most significant bit first within
// each field. The zero value is ready to use.
type BitWriter struct {
	buf  []byte
	nbit int
}

// WriteBits appends the width lowest bits of v. Width must be in [0, 64].
func (w *BitWriter) WriteBits(v uint64, width int) {
	if width < 0 || width > 64 {
		panic("congest: invalid width")
	}
	for i := width - 1; i >= 0; i-- {
		bit := byte((v >> uint(i)) & 1)
		if w.nbit%8 == 0 {
			w.buf = append(w.buf, 0)
		}
		if bit == 1 {
			w.buf[w.nbit/8] |= 1 << uint(7-w.nbit%8)
		}
		w.nbit++
	}
}

// WriteBool appends a single bit.
func (w *BitWriter) WriteBool(b bool) {
	if b {
		w.WriteBits(1, 1)
	} else {
		w.WriteBits(0, 1)
	}
}

// Len returns the number of bits written.
func (w *BitWriter) Len() int { return w.nbit }

// Bytes returns the written bits packed into bytes (last byte zero-padded).
func (w *BitWriter) Bytes() []byte {
	out := make([]byte, len(w.buf))
	copy(out, w.buf)
	return out
}

// ErrShortRead is returned when a BitReader runs out of bits.
var ErrShortRead = errors.New("congest: short read")

// BitReader consumes bits written by BitWriter.
type BitReader struct {
	buf  []byte
	nbit int
	pos  int
}

// NewBitReader reads nbit bits from buf.
func NewBitReader(buf []byte, nbit int) *BitReader {
	return &BitReader{buf: buf, nbit: nbit}
}

// ReadBits consumes width bits and returns them as the low bits of a
// uint64.
func (r *BitReader) ReadBits(width int) (uint64, error) {
	if width < 0 || width > 64 {
		panic("congest: invalid width")
	}
	if r.pos+width > r.nbit {
		return 0, ErrShortRead
	}
	var v uint64
	for i := 0; i < width; i++ {
		b := (r.buf[r.pos/8] >> uint(7-r.pos%8)) & 1
		v = v<<1 | uint64(b)
		r.pos++
	}
	return v, nil
}

// ReadBool consumes one bit.
func (r *BitReader) ReadBool() (bool, error) {
	v, err := r.ReadBits(1)
	return v == 1, err
}

// Remaining returns the number of unread bits.
func (r *BitReader) Remaining() int { return r.nbit - r.pos }
