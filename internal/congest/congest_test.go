package congest

import (
	"testing"
	"testing/quick"
)

func TestBitLen(t *testing.T) {
	cases := map[uint64]int{0: 1, 1: 1, 2: 2, 3: 2, 4: 3, 255: 8, 256: 9, 1 << 40: 41}
	for x, want := range cases {
		if got := BitLen(x); got != want {
			t.Fatalf("BitLen(%d) = %d want %d", x, got, want)
		}
	}
}

func TestBitsForRange(t *testing.T) {
	cases := map[uint64]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 256: 8, 257: 9}
	for n, want := range cases {
		if got := BitsForRange(n); got != want {
			t.Fatalf("BitsForRange(%d) = %d want %d", n, got, want)
		}
	}
}

func TestBitsForRangePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BitsForRange(0)
}

func TestFragments(t *testing.T) {
	cases := []struct{ bits, budget, want int }{
		{0, 8, 1}, {1, 8, 1}, {8, 8, 1}, {9, 8, 2}, {16, 8, 2}, {17, 8, 3}, {100, 1, 100},
	}
	for _, c := range cases {
		if got := Fragments(c.bits, c.budget); got != c.want {
			t.Fatalf("Fragments(%d, %d) = %d want %d", c.bits, c.budget, got, c.want)
		}
	}
}

func TestFragmentsPanicsOnBadBudget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Fragments(8, 0)
}

func TestWriterReaderRoundTrip(t *testing.T) {
	var w BitWriter
	w.WriteBits(0b1011, 4)
	w.WriteBool(true)
	w.WriteBits(0xdeadbeef, 32)
	w.WriteBool(false)
	if w.Len() != 4+1+32+1 {
		t.Fatalf("length %d", w.Len())
	}
	r := NewBitReader(w.Bytes(), w.Len())
	if v, err := r.ReadBits(4); err != nil || v != 0b1011 {
		t.Fatalf("field1: %v %v", v, err)
	}
	if v, err := r.ReadBool(); err != nil || !v {
		t.Fatalf("field2: %v %v", v, err)
	}
	if v, err := r.ReadBits(32); err != nil || v != 0xdeadbeef {
		t.Fatalf("field3: %x %v", v, err)
	}
	if v, err := r.ReadBool(); err != nil || v {
		t.Fatalf("field4: %v %v", v, err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining %d", r.Remaining())
	}
}

func TestReaderShortRead(t *testing.T) {
	var w BitWriter
	w.WriteBits(7, 3)
	r := NewBitReader(w.Bytes(), w.Len())
	if _, err := r.ReadBits(4); err != ErrShortRead {
		t.Fatalf("expected ErrShortRead, got %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(values []uint64, widthSeed uint8) bool {
		if len(values) == 0 {
			return true
		}
		widths := make([]int, len(values))
		var w BitWriter
		for i, v := range values {
			width := int(widthSeed%64) + 1
			widthSeed = widthSeed*31 + 7
			mask := uint64(1)<<uint(width) - 1
			if width == 64 {
				mask = ^uint64(0)
			}
			values[i] = v & mask
			widths[i] = width
			w.WriteBits(values[i], width)
		}
		r := NewBitReader(w.Bytes(), w.Len())
		for i, want := range values {
			got, err := r.ReadBits(widths[i])
			if err != nil || got != want {
				return false
			}
		}
		return r.Remaining() == 0
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriterZeroValueUsable(t *testing.T) {
	var w BitWriter
	if w.Len() != 0 {
		t.Fatal("zero writer not empty")
	}
	w.WriteBits(1, 1)
	if w.Len() != 1 {
		t.Fatal("write failed on zero value")
	}
}
