package harness

import (
	"fmt"
	"math"

	"anonlead/internal/core"
	"anonlead/internal/graph"
	"anonlead/internal/pumping"
	"anonlead/internal/spectral"
	"anonlead/internal/stats"
)

// Table1Row is one measured cell of the Table 1 reproduction, paired with
// the paper's predicted complexity for the same cell.
type Table1Row struct {
	Cell Cell
	// PredictedMsgs is the paper's message-bound formula evaluated on the
	// measured graph profile (without its polylog factors and constants).
	PredictedMsgs float64
	// PredictedTime is the paper's time-bound formula, same convention.
	PredictedTime float64
}

// predictMsgs evaluates the leading message term of each protocol's bound.
func predictMsgs(p Protocol, prof *spectral.Profile) float64 {
	n := float64(prof.N)
	tmix := float64(prof.MixingTime)
	switch p {
	case ProtoIRE: // Õ(√(n·tmix/Φ))
		return math.Sqrt(n * tmix / prof.Conductance)
	case ProtoExplicit: // implicit bound + O(m) announcement
		return math.Sqrt(n*tmix/prof.Conductance) + float64(prof.M)
	case ProtoWalkNotify: // O(tmix·√n·log^{7/2} n)
		return tmix * math.Sqrt(n)
	case ProtoFlood, ProtoAllFlood: // Ω(m) class
		return float64(prof.M)
	case ProtoRevocable: // Õ(n^{4(1+ε)}·m/i(G)²); leading shape only
		return math.Pow(n, 4) * float64(prof.M) / (prof.Isoperim * prof.Isoperim)
	default:
		return 0
	}
}

// predictTime evaluates the leading time term of each protocol's bound.
func predictTime(p Protocol, prof *spectral.Profile) float64 {
	n := float64(prof.N)
	tmix := float64(prof.MixingTime)
	ln := math.Log(n)
	switch p {
	case ProtoIRE: // O(tmix·log² n)
		return tmix * ln * ln
	case ProtoExplicit: // implicit bound + O(n) announcement window
		return tmix*ln*ln + n
	case ProtoWalkNotify:
		return tmix * ln * ln
	case ProtoFlood, ProtoAllFlood: // O(D)
		return float64(prof.Diameter)
	case ProtoRevocable: // Õ(n^{4(1+ε)}/i(G)²)
		return math.Pow(n, 4) / (prof.Isoperim * prof.Isoperim)
	default:
		return 0
	}
}

// MakeTable1Row pairs a measured cell with the paper's predicted
// complexities for the protocol.
func MakeTable1Row(p Protocol, cell Cell) Table1Row {
	return Table1Row{
		Cell:          cell,
		PredictedMsgs: predictMsgs(p, cell.Profile),
		PredictedTime: predictTime(p, cell.Profile),
	}
}

// SweepSpecs expands one protocol × family × size sweep into orchestrator
// cell specs (one per size, all sharing opts).
func SweepSpecs(p Protocol, family string, sizes []int, opts TrialOpts) []CellSpec {
	specs := make([]CellSpec, len(sizes))
	for i, n := range sizes {
		specs[i] = CellSpec{Protocol: p, Workload: Workload{Family: family, N: n}, Opts: opts}
	}
	return specs
}

// RowsFromCells pairs aggregated cells with the paper's predictions.
func RowsFromCells(cells []Cell) []Table1Row {
	rows := make([]Table1Row, len(cells))
	for i, c := range cells {
		rows[i] = MakeTable1Row(c.Protocol, c)
	}
	return rows
}

// Table1Sweep runs one protocol over a size sweep of one family and
// returns measured rows with predictions, sequentially. For a pooled
// sweep, feed SweepSpecs to Orchestrator.RunSweep and pair the cells with
// RowsFromCells — bit-identical rows, any core count.
func Table1Sweep(p Protocol, family string, sizes []int, opts TrialOpts) ([]Table1Row, error) {
	cells, err := RunSweepSequential(SweepSpecs(p, family, sizes, opts))
	if err != nil {
		return nil, err
	}
	return RowsFromCells(cells), nil
}

// RenderTable1 renders sweep rows, including measured/predicted ratios and
// the empirical scaling exponent of messages in n.
func RenderTable1(title string, rows []Table1Row) string {
	t := Table{
		Title: title,
		Header: []string{
			"family", "n", "m", "tmix", "phi", "msgs", "pred", "msg/pred",
			"rounds", "charged", "predT", "success",
		},
	}
	var xs, ys []float64
	for _, r := range rows {
		prof := r.Cell.Profile
		ratio := 0.0
		if r.PredictedMsgs > 0 {
			ratio = r.Cell.Messages / r.PredictedMsgs
		}
		t.AddRow(
			r.Cell.Workload.Family, I(prof.N), I(prof.M), I(prof.MixingTime),
			F(prof.Conductance), F(r.Cell.Messages), F(r.PredictedMsgs), F(ratio),
			F(r.Cell.Rounds), F(r.Cell.Charged), F(r.PredictedTime),
			fmt.Sprintf("%d/%d", r.Cell.Successes, r.Cell.Trials),
		)
		xs = append(xs, float64(prof.N))
		ys = append(ys, r.Cell.Messages)
	}
	out := t.String()
	if slope, r2 := stats.LogLogSlope(xs, ys); r2 > 0 {
		out += fmt.Sprintf("empirical message exponent: msgs ~ n^%.2f (R²=%.3f)\n", slope, r2)
	}
	return out
}

// SplitBrainPoint is one measured point of the Figure 1/2 reproduction.
type SplitBrainPoint struct {
	Layout      pumping.Layout
	Trials      int
	MultiLeader int     // trials electing more than one leader
	MeanLeaders float64 // mean number of leaders
	SplitCores  int     // trials with a witness split-brained in both segments
	ZeroLeader  int
}

// SplitBrainExperiment runs the pumping-wheel experiment: the IRE protocol
// parameterized for a presumed cycle C_n executes on wheels C_N with a
// growing number of planted witnesses; Theorem 2 predicts the
// multi-leader probability approaches 1 as witnesses are added.
func SplitBrainExperiment(presumedN int, witnessCounts []int, trials int, seed uint64) ([]SplitBrainPoint, error) {
	small := graph.Cycle(presumedN)
	prof, err := spectral.ProfileGraph(small)
	if err != nil {
		return nil, err
	}
	cfg := core.IREConfig{N: presumedN, TMix: prof.MixingTime, Phi: prof.Conductance}
	// Recover T(n): the protocol's fixed running time for the presumed n.
	probe, err := RunIRETrial(small, cfg, seed, SimOpts{})
	if err != nil {
		return nil, err
	}
	tOfN := probe.Rounds

	points := make([]SplitBrainPoint, 0, len(witnessCounts))
	for _, wc := range witnessCounts {
		layout, err := pumping.NewLayout(presumedN, tOfN, wc)
		if err != nil {
			return points, err
		}
		pt := SplitBrainPoint{Layout: layout, Trials: trials}
		wheel := layout.Wheel()
		sumLeaders := 0
		for tr := 0; tr < trials; tr++ {
			trialSeed := seed ^ uint64(wc)<<40 ^ uint64(tr)<<8 ^ 0x5bd1
			leaders, _, err := IRELeaderNodes(wheel, cfg, trialSeed, SimOpts{Parallel: true})
			if err != nil {
				return points, err
			}
			res := pumping.Analyze(layout, leaders)
			sumLeaders += res.NLeaders()
			if res.MultiLeader() {
				pt.MultiLeader++
			}
			if res.NLeaders() == 0 {
				pt.ZeroLeader++
			}
			if res.SplitWitnesses > 0 {
				pt.SplitCores++
			}
		}
		pt.MeanLeaders = float64(sumLeaders) / float64(trials)
		points = append(points, pt)
	}
	return points, nil
}

// RenderSplitBrain renders the Figure 1/2 series.
func RenderSplitBrain(presumedN int, points []SplitBrainPoint) string {
	t := Table{
		Title: fmt.Sprintf("Figures 1-2: pumping wheel, IRE presuming n=%d on C_N", presumedN),
		Header: []string{
			"witnesses", "N", "T(n)", "P(multi)", "lo", "hi", "E[leaders]", "splitcores", "zero",
		},
	}
	for _, pt := range points {
		lo, hi := stats.Wilson(pt.MultiLeader, pt.Trials)
		t.AddRow(
			I(pt.Layout.Witnesses), I(pt.Layout.WheelN), I(pt.Layout.T),
			F(float64(pt.MultiLeader)/float64(pt.Trials)), F(lo), F(hi),
			F(pt.MeanLeaders), I(pt.SplitCores), I(pt.ZeroLeader),
		)
	}
	return t.String()
}
