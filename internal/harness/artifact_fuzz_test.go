package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReadArtifact hardens the v1–v6 artifact reader against arbitrary
// input: malformed bytes must come back as errors (never panics), and any
// accepted artifact must carry a known schema and normalize to a JSON
// encoding that is a fixed point of another decode/encode pass — the
// byte-stability every golden test and the distributed-sweep cmp gate
// lean on.
func FuzzReadArtifact(f *testing.F) {
	// Real artifacts as seeds: the committed regression-gate baseline and
	// the harness golden (both current-schema, dists and all).
	for _, p := range []string{
		filepath.Join("..", "..", "testdata", "BENCH_baseline.json"),
		filepath.Join("testdata", "bench_harness_golden.json"),
	} {
		buf, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	// A partial artifact (a distributed-sweep worker's output) with its
	// plan coverage header.
	partial := Artifact{
		Schema: ArtifactSchemaV5, RootSeed: 7, Workers: 2, Shards: 2,
		Plan: &ArtifactPlan{Total: 4, Indices: []int{1, 3}},
		Cells: []ArtifactCell{
			{Protocol: "ire", Family: "expander", N: 16, Trials: 2, Successes: 2},
			{Protocol: "flood", Family: "cycle", N: 8, Trials: 2, Successes: 1},
		},
	}
	if buf, err := partial.JSON(); err != nil {
		f.Fatal(err)
	} else {
		f.Add(buf)
	}
	// Legacy means-only v1, schema-less JSON, foreign schemas, truncations.
	f.Add([]byte(`{"schema":"anonlead/bench-harness/v1","root_seed":1,"cells":[{"protocol":"ire","family":"cycle","n":8,"messages":12}]}`))
	f.Add([]byte(`{"schema":"anonlead/bench-harness/v9"}`))
	f.Add([]byte(`{"cells":[]}`))
	f.Add([]byte(`{"schema":`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"schema":"anonlead/bench-harness/v6","cells":[{"epochs":{"per_epoch_messages":[1e308,1e308]}}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := ReadArtifact(data)
		if err != nil {
			return // rejected input: an error is the contract, a panic is the bug
		}
		switch a.Schema {
		case ArtifactSchema, ArtifactSchemaV5, ArtifactSchemaV4,
			ArtifactSchemaV3, ArtifactSchemaV2, ArtifactSchemaV1:
		default:
			t.Fatalf("accepted artifact with unknown schema %q", a.Schema)
		}
		_ = a.IsPartial() // must tolerate any decoded plan header

		// One decode normalizes (unknown fields drop, field order fixes);
		// after that, decode∘encode must be the identity on the bytes.
		norm, err := a.JSON()
		if err != nil {
			t.Fatalf("accepted artifact does not re-encode: %v", err)
		}
		b, err := ReadArtifact(norm)
		if err != nil {
			t.Fatalf("normalized artifact rejected on re-read: %v", err)
		}
		norm2, err := b.JSON()
		if err != nil {
			t.Fatalf("re-encode after re-read failed: %v", err)
		}
		if !bytes.Equal(norm, norm2) {
			t.Fatalf("artifact encoding is not a decode/encode fixed point:\n%s\nvs\n%s", norm, norm2)
		}
	})
}
