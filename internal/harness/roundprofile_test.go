package harness

import (
	"encoding/json"
	"reflect"
	"testing"

	"anonlead/internal/obs"
	"anonlead/internal/sim"
)

// TestRoundProfileDeterministicAcrossSchedulers pins the round-profile
// guarantee the schema-v5 artifact section depends on: the per-round
// message/halt histograms are pure functions of (graph, protocol, seed),
// byte-identical across the Sequential, WorkerPool and Actors engines.
func TestRoundProfileDeterministicAcrossSchedulers(t *testing.T) {
	w := Workload{Family: "expander", N: 24}
	profiles := make(map[sim.Scheduler]*obs.RoundProfile)
	for _, s := range []sim.Scheduler{sim.Sequential, sim.WorkerPool, sim.Actors} {
		cell, err := RunCell(ProtoIRE, w, TrialOpts{
			Trials: 3, Seed: 7, Scheduler: s, RoundProfile: true,
		})
		if err != nil {
			t.Fatalf("scheduler %v: %v", s, err)
		}
		if cell.RoundProf == nil {
			t.Fatalf("scheduler %v: no round profile despite RoundProfile opt", s)
		}
		profiles[s] = cell.RoundProf
	}
	ref := profiles[sim.Sequential]
	if ref.Rounds == 0 || ref.TotalMsgs == 0 || len(ref.MsgRounds) == 0 {
		t.Fatalf("degenerate reference profile: %+v", ref)
	}
	for _, s := range []sim.Scheduler{sim.WorkerPool, sim.Actors} {
		a, _ := json.Marshal(ref)
		b, _ := json.Marshal(profiles[s])
		if string(a) != string(b) {
			t.Errorf("scheduler %v profile diverges:\nsequential: %s\n%v: %s", s, a, s, b)
		}
	}
}

// TestRoundProfileMatchesCellTotals cross-checks the profile against the
// cell's own aggregates: summed per-round messages must equal the trials'
// total messages, and round counts must line up.
func TestRoundProfileMatchesCellTotals(t *testing.T) {
	w := Workload{Family: "torus", N: 16}
	cell, err := RunCell(ProtoFlood, w, TrialOpts{Trials: 4, Seed: 9, RoundProfile: true})
	if err != nil {
		t.Fatal(err)
	}
	rp := cell.RoundProf
	if rp == nil {
		t.Fatal("no round profile")
	}
	if got, want := float64(rp.TotalMsgs), cell.Messages*float64(cell.Trials); got != want {
		t.Fatalf("profile TotalMsgs %v != cell total messages %v", got, want)
	}
	if got, want := float64(rp.Rounds), cell.Rounds*float64(cell.Trials); got != want {
		t.Fatalf("profile Rounds %v != cell total rounds %v", got, want)
	}
	var bucketed int64
	for _, c := range rp.MsgRounds {
		bucketed += c
	}
	if bucketed != rp.Rounds {
		t.Fatalf("MsgRounds buckets cover %d rounds, profile has %d", bucketed, rp.Rounds)
	}
	if rp.PeakRound < 1 || rp.PeakMsgs <= 0 {
		t.Fatalf("degenerate peak: %d@%d", rp.PeakMsgs, rp.PeakRound)
	}
}

// TestRoundProfileOffByDefault pins the byte-identity constraint: without
// the opt-in, no trial pays for or carries a profile and the artifact cell
// serializes without a round_profile key.
func TestRoundProfileOffByDefault(t *testing.T) {
	cell, err := RunCell(ProtoFlood, Workload{Family: "cycle", N: 8}, TrialOpts{Trials: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cell.RoundProf != nil {
		t.Fatal("round profile attached without opt-in")
	}
	art := NewArtifact(Orchestrator{}, []CellSpec{{Protocol: ProtoFlood, Workload: cell.Workload}},
		[]Cell{cell}, 0)
	buf, err := json.Marshal(art.Cells[0])
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["round_profile"]; ok {
		t.Fatal("unprofiled cell serialized a round_profile key")
	}
}

// TestRoundProfileParallelMatchesSequential proves the orchestrator's
// sharded execution merges trial profiles into the same cell profile as
// the sequential reference (trial-index merge order, not completion order).
func TestRoundProfileParallelMatchesSequential(t *testing.T) {
	specs := []CellSpec{
		{Protocol: ProtoIRE, Workload: Workload{Family: "expander", N: 20},
			Opts: TrialOpts{Trials: 6, Seed: 11, RoundProfile: true}},
		{Protocol: ProtoFlood, Workload: Workload{Family: "torus", N: 16},
			Opts: TrialOpts{Trials: 6, Seed: 11, RoundProfile: true}},
	}
	seq, err := RunSweepSequential(specs)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Orchestrator{Workers: 4, Shards: 5}.RunSweep(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if !reflect.DeepEqual(seq[i].RoundProf, par[i].RoundProf) {
			t.Errorf("spec %d: parallel profile %+v != sequential %+v",
				i, par[i].RoundProf, seq[i].RoundProf)
		}
	}
}

// TestArtifactRoundProfileRoundTrips pins the v5 wire format: a profiled
// cell's round_profile survives NewArtifact → JSON → ReadArtifact.
func TestArtifactRoundProfileRoundTrips(t *testing.T) {
	spec := CellSpec{Protocol: ProtoFlood, Workload: Workload{Family: "cycle", N: 8},
		Opts: TrialOpts{Trials: 2, Seed: 5, RoundProfile: true}}
	cell, err := RunCell(spec.Protocol, spec.Workload, spec.Opts)
	if err != nil {
		t.Fatal(err)
	}
	art := NewArtifact(Orchestrator{}, []CellSpec{spec}, []Cell{cell}, 0)
	if art.Schema != ArtifactSchema {
		t.Fatalf("schema %q", art.Schema)
	}
	buf, err := art.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadArtifact(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Cells[0].RoundProfile, cell.RoundProf) {
		t.Fatalf("round profile did not round-trip:\nwrote %+v\nread  %+v",
			cell.RoundProf, back.Cells[0].RoundProfile)
	}
}
