package harness

import (
	"encoding/json"
	"strings"
	"testing"

	"anonlead/internal/adversary"
	"anonlead/internal/epoch"
)

// epochTestSweep is a tiny repeated-election sweep: floodmax on a small
// complete graph, the fault-free anchor plus the adaptive rung (window 1,
// short enough to fire inside floodmax's diameter-bounded elections).
func epochTestSweep() EpochSweep {
	return EpochSweep{
		Title:    "epoch parity",
		Protocol: ProtoFlood,
		Workload: Workload{Family: "complete", N: 8},
		Epochs:   epoch.Opts{Epochs: 3},
		Specs: []adversary.Spec{
			{},
			{AdaptiveCrash: 1, AdaptiveWindow: 1},
		},
	}
}

// TestEpochSweepParallelMatchesSequential is the orchestrator half of the
// epoch determinism acceptance: the same scenario specs through the
// parallel worker pool must produce an artifact byte-identical to the
// sequential reference — seed chains, adaptive picks, per-epoch stats and
// all.
func TestEpochSweepParallelMatchesSequential(t *testing.T) {
	specs := epochTestSweep().CellSpecs(3, 42)
	seq, err := RunSweepSequential(specs)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par, err := Orchestrator{Workers: 4, Shards: 3}.RunSweep(specs)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	engine := Orchestrator{Workers: 1, Shards: 1}
	rawSeq, err := NewArtifact(engine, specs, seq, 0).StripTimings().JSON()
	if err != nil {
		t.Fatal(err)
	}
	rawPar, err := NewArtifact(engine, specs, par, 0).StripTimings().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(rawSeq) != string(rawPar) {
		t.Fatalf("parallel epoch sweep diverges from sequential:\n%s\nvs\n%s", rawPar, rawSeq)
	}

	// The cells genuinely carry the scenario: identity descriptor, epoch
	// aggregates, and a full 3-epoch history behind the flat totals.
	for i, c := range seq {
		if c.EpochStats == nil {
			t.Fatalf("cell %d has no epoch stats", i)
		}
		if c.EpochStats.Epochs != 3 || c.EpochStats.Fault != "crash" {
			t.Fatalf("cell %d epoch stats header wrong: %+v", i, c.EpochStats)
		}
		if c.EpochStats.AmortizedMessages <= 0 {
			t.Fatalf("cell %d measured nothing: %+v", i, c.EpochStats)
		}
	}
	// And the adaptive rung must diverge from the anchor (the traffic
	// condition is alive through the whole harness stack).
	if seq[0].Messages == seq[1].Messages {
		t.Fatal("adaptive epoch rung identical to the fault-free anchor")
	}
}

// TestEpochArtifactCells: scenario cells round-trip through the v6
// artifact with their descriptor and epoch aggregates intact.
func TestEpochArtifactCells(t *testing.T) {
	specs := epochTestSweep().CellSpecs(2, 7)
	cells, err := RunSweepSequential(specs)
	if err != nil {
		t.Fatal(err)
	}
	a := NewArtifact(Orchestrator{Workers: 1, Shards: 1}, specs, cells, 0)
	if a.Schema != ArtifactSchema || !strings.HasSuffix(a.Schema, "/v6") {
		t.Fatalf("schema %q, want the v6 current schema", a.Schema)
	}
	raw, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadArtifact(raw)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range back.Cells {
		if c.Scenario != "epochs=3,fault=crash" {
			t.Fatalf("cell %d scenario %q", i, c.Scenario)
		}
		if c.Epochs == nil || len(c.Epochs.PerEpochMessages) != 3 {
			t.Fatalf("cell %d epoch aggregates lost in the round trip: %+v", i, c.Epochs)
		}
	}
	if back.Cells[0].Adversary != "" || back.Cells[1].Adversary != "adaptive=1@1" {
		t.Fatalf("adversary identity wrong: %q, %q", back.Cells[0].Adversary, back.Cells[1].Adversary)
	}

	// The re-decoded epoch stats are byte-stable through another encode.
	raw2, err := back.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(raw2) {
		t.Fatal("artifact not byte-stable through decode/encode")
	}
}

// TestSweepsPlanHasNoEpochSections pins the artifact matrix: the epochs
// experiment is a separate plan (its own BENCH_epochs.json), so the
// regression-gate baseline must never grow scenario cells.
func TestSweepsPlanHasNoEpochSections(t *testing.T) {
	for _, quick := range []bool{true, false} {
		p := SweepsPlan(quick, 0, 1)
		for _, sec := range p.Sections {
			if sec.Kind == SectionEpochs {
				t.Fatalf("SweepsPlan(quick=%v) contains an epochs section %q", quick, sec.Title)
			}
		}
		for i, spec := range p.Specs() {
			if spec.Opts.Epochs != nil {
				t.Fatalf("SweepsPlan(quick=%v) spec %d carries an epoch scenario", quick, i)
			}
		}
	}
}

// TestEpochsPlanShape: the epochs plan is scenario sections only, every
// cell carries its sweep's scenario, and the ladders are anchored.
func TestEpochsPlanShape(t *testing.T) {
	p := EpochsPlan(true, 0, 1)
	if len(p.Sections) == 0 {
		t.Fatal("empty epochs plan")
	}
	for _, sec := range p.Sections {
		if sec.Kind != SectionEpochs {
			t.Fatalf("section %q kind %q", sec.Title, sec.Kind)
		}
		if err := sec.Epoch.Epochs.Validate(); err != nil {
			t.Fatalf("section %q scenario invalid: %v", sec.Title, err)
		}
		if len(sec.Specs) != len(sec.Epoch.Specs) {
			t.Fatalf("section %q: %d cells for %d ladder rungs", sec.Title, len(sec.Specs), len(sec.Epoch.Specs))
		}
		if !sec.Epoch.Specs[0].IsZero() {
			t.Fatalf("section %q has no fault-free anchor", sec.Title)
		}
		adaptive := false
		for i, spec := range sec.Specs {
			if spec.Opts.Epochs == nil || *spec.Opts.Epochs != sec.Epoch.Epochs {
				t.Fatalf("section %q cell %d lost its scenario", sec.Title, i)
			}
			if spec.Opts.Adversary.AdaptiveCrash > 0 {
				adaptive = true
			}
		}
		if !adaptive {
			t.Fatalf("section %q ladder has no adaptive rung", sec.Title)
		}
	}
}

// TestRenderEpochs: the rendered sweep carries the scenario descriptor,
// one row per rung, and the epoch aggregate columns.
func TestRenderEpochs(t *testing.T) {
	sweep := epochTestSweep()
	specs := sweep.CellSpecs(2, 7)
	cells, err := RunSweepSequential(specs)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderEpochs(sweep, cells)
	for _, want := range []string{"epochs=3,fault=crash", "none", "adaptive=1@1", "amsgs", "recover"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered epochs table missing %q:\n%s", want, out)
		}
	}
}

// TestEpochCellStatsJSONShape pins the artifact field names of the epoch
// aggregates (trajectory tooling reads these).
func TestEpochCellStatsJSONShape(t *testing.T) {
	raw, err := json.Marshal(epoch.CellStats{Epochs: 2, Fault: "crash", Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"epochs":2`, `"fault":"crash"`, `"trials":1`} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("CellStats JSON missing %s: %s", want, raw)
		}
	}
}
