package harness

import (
	"fmt"
	"math"

	"anonlead/internal/core"
	"anonlead/internal/diffusion"
	"anonlead/internal/rng"
	"anonlead/internal/sim"
	"anonlead/internal/spectral"
	"anonlead/internal/stats"
)

// CautiousPoint is one point of the Lemma 1 ablation: cautious broadcast
// run in isolation at a given walk-count parameter x, measuring territory
// sizes against the Ω(x·tmix·Φ) bound and messages against Õ(x·tmix).
type CautiousPoint struct {
	X             int
	CapSize       int // x·tmix·Φ (clamped)
	MeanTerritory float64
	MaxTerritory  int
	Messages      float64
	PredictedMsgs float64 // x·tmix per candidate × candidate count
	Candidates    float64
}

// AblationCautious sweeps x and measures cautious-broadcast territories
// and cost in isolation (experiment X1).
func AblationCautious(w Workload, xs []int, trials int, seed uint64) ([]CautiousPoint, *spectral.Profile, error) {
	g, err := w.BuildGraph(seed)
	if err != nil {
		return nil, nil, err
	}
	prof, err := spectral.ProfileGraph(g)
	if err != nil {
		return nil, nil, err
	}
	points := make([]CautiousPoint, 0, len(xs))
	for _, x := range xs {
		cfg := core.IREConfig{
			N: g.N(), TMix: prof.MixingTime, Phi: prof.Conductance,
			X: x, BroadcastOnly: true,
		}
		factory, err := core.NewIREFactory(cfg)
		if err != nil {
			return points, prof, err
		}
		pt := CautiousPoint{X: x}
		var territories []float64
		var msgs, cands float64
		for t := 0; t < trials; t++ {
			nw := sim.New(sim.Config{Graph: g, Seed: seed ^ uint64(x)<<24 ^ uint64(t)}, factory)
			m0 := nw.Machine(0).(*core.IREMachine)
			_, _, _, capSize, total := m0.Params()
			pt.CapSize = capSize
			nw.Run(total + 4)
			for v := 0; v < g.N(); v++ {
				out := nw.Machine(v).(*core.IREMachine).Output()
				if out.Candidate {
					cands++
					territories = append(territories, float64(out.Territory))
					if out.Territory > pt.MaxTerritory {
						pt.MaxTerritory = out.Territory
					}
				}
			}
			msgs += float64(nw.Metrics().Messages)
		}
		sum := stats.Summarize(territories)
		pt.MeanTerritory = sum.Mean
		pt.Messages = msgs / float64(trials)
		pt.Candidates = cands / float64(trials)
		pt.PredictedMsgs = float64(x) * float64(prof.MixingTime) * pt.Candidates
		points = append(points, pt)
	}
	return points, prof, nil
}

// RenderAblationCautious renders the X1 series.
func RenderAblationCautious(w Workload, prof *spectral.Profile, points []CautiousPoint) string {
	t := Table{
		Title: fmt.Sprintf("X1 (Lemma 1): cautious broadcast on %s n=%d (tmix=%d, phi=%.4f)",
			w.Family, w.N, prof.MixingTime, prof.Conductance),
		Header: []string{"x", "cap=x*tmix*phi", "mean territory", "max", "cands", "msgs", "x*tmix*cands", "msgs/pred"},
	}
	for _, p := range points {
		ratio := 0.0
		if p.PredictedMsgs > 0 {
			ratio = p.Messages / p.PredictedMsgs
		}
		t.AddRow(I(p.X), I(p.CapSize), F(p.MeanTerritory), I(p.MaxTerritory),
			F(p.Candidates), F(p.Messages), F(p.PredictedMsgs), F(ratio))
	}
	return t.String()
}

// WalkPoint is one point of the Lemma 2 ablation: success rate of the full
// protocol as the walk count scales away from the paper's x.
type WalkPoint struct {
	Factor    float64
	X         int
	Trials    int
	Successes int
	Messages  float64
}

// AblationWalks sweeps the walk-count factor and measures election success
// (experiment X2): the knee should sit near factor 1 (the paper's x).
func AblationWalks(w Workload, factors []float64, trials int, seed uint64) ([]WalkPoint, *spectral.Profile, error) {
	g, err := w.BuildGraph(seed)
	if err != nil {
		return nil, nil, err
	}
	prof, err := spectral.ProfileGraph(g)
	if err != nil {
		return nil, nil, err
	}
	points := make([]WalkPoint, 0, len(factors))
	for _, f := range factors {
		cfg := core.IREConfig{
			N: g.N(), TMix: prof.MixingTime, Phi: prof.Conductance, XFactor: f,
		}
		pt := WalkPoint{Factor: f, Trials: trials}
		for t := 0; t < trials; t++ {
			trial, err := RunIRETrial(g, cfg, seed^uint64(math.Float64bits(f))^uint64(t)<<16, SimOpts{})
			if err != nil {
				return points, prof, err
			}
			if trial.Success {
				pt.Successes++
			}
			pt.Messages += float64(trial.Metrics.Messages)
		}
		pt.Messages /= float64(trials)
		factory, _ := core.NewIREFactory(cfg)
		nw := sim.New(sim.Config{Graph: g, Seed: seed}, factory)
		pt.X, _, _, _, _ = nw.Machine(0).(*core.IREMachine).Params()
		points = append(points, pt)
	}
	return points, prof, nil
}

// RenderAblationWalks renders the X2 series.
func RenderAblationWalks(w Workload, prof *spectral.Profile, points []WalkPoint) string {
	t := Table{
		Title: fmt.Sprintf("X2 (Lemma 2): walk-count sweep on %s n=%d (paper x at factor 1)",
			w.Family, w.N),
		Header: []string{"factor", "x", "success", "rate", "lo", "hi", "msgs"},
	}
	for _, p := range points {
		lo, hi := stats.Wilson(p.Successes, p.Trials)
		t.AddRow(F(p.Factor), I(p.X), fmt.Sprintf("%d/%d", p.Successes, p.Trials),
			F(float64(p.Successes)/float64(p.Trials)), F(lo), F(hi), F(p.Messages))
	}
	return t.String()
}

// KnowledgePoint is one point of the knowledge ablation (experiment X4):
// the IRE protocol run with a misreported network size presumed = factor·n,
// after Dieudonné & Pelc's study of how knowledge of n impacts election
// time in anonymous networks. The graph (and its true tmix, Φ) stays fixed;
// only the size the nodes are told changes.
type KnowledgePoint struct {
	Factor    float64
	PresumedN int
	Trials    int
	Successes int
	Messages  float64
	Rounds    float64
}

// KnowledgeSpecs expands a presumed-size sweep into orchestrator cell
// specs: each factor is one workload cell with PresumedN = factor·n
// (clamped to 2). Trial seeds are shared across factors for a paired
// comparison.
func KnowledgeSpecs(w Workload, factors []float64, trials int, seed uint64) []CellSpec {
	specs := make([]CellSpec, len(factors))
	for i, f := range factors {
		presumed := int(f * float64(w.N))
		if presumed < 2 {
			presumed = 2
		}
		specs[i] = CellSpec{
			Protocol: ProtoIRE,
			Workload: w,
			Opts:     TrialOpts{Trials: trials, Seed: seed, PresumedN: presumed},
		}
	}
	return specs
}

// KnowledgePoints pairs the cells of a KnowledgeSpecs sweep with their
// factors and presumed sizes.
func KnowledgePoints(factors []float64, specs []CellSpec, cells []Cell) ([]KnowledgePoint, *spectral.Profile) {
	points := make([]KnowledgePoint, len(cells))
	for i, c := range cells {
		points[i] = KnowledgePoint{
			Factor:    factors[i],
			PresumedN: specs[i].Opts.PresumedN,
			Trials:    c.Trials,
			Successes: c.Successes,
			Messages:  c.Messages,
			Rounds:    c.Rounds,
		}
	}
	var prof *spectral.Profile
	if len(cells) > 0 {
		prof = cells[0].Profile
	}
	return points, prof
}

// AblationKnowledge sweeps the presumed network size over factor·n and
// measures election success and cost through the orchestrator (each factor
// is one workload cell, so the sweep fans out over the worker pool).
func AblationKnowledge(o Orchestrator, w Workload, factors []float64, trials int, seed uint64) ([]KnowledgePoint, *spectral.Profile, error) {
	specs := KnowledgeSpecs(w, factors, trials, seed)
	cells, err := o.RunSweep(specs)
	if err != nil {
		return nil, nil, err
	}
	points, prof := KnowledgePoints(factors, specs, cells)
	return points, prof, nil
}

// RenderAblationKnowledge renders the X4 series.
func RenderAblationKnowledge(w Workload, prof *spectral.Profile, points []KnowledgePoint) string {
	t := Table{
		Title: fmt.Sprintf("X4 (knowledge, after Dieudonné-Pelc): presumed-n sweep on %s n=%d (truth at factor 1)",
			w.Family, w.N),
		Header: []string{"factor", "presumed n", "success", "rate", "lo", "hi", "msgs", "rounds"},
	}
	for _, p := range points {
		lo, hi := stats.Wilson(p.Successes, p.Trials)
		t.AddRow(F(p.Factor), I(p.PresumedN), fmt.Sprintf("%d/%d", p.Successes, p.Trials),
			F(float64(p.Successes)/float64(p.Trials)), F(lo), F(hi), F(p.Messages), F(p.Rounds))
	}
	return t.String()
}

// DiffusionPoint is one point of the Lemmas 5-8 ablation: the potential
// diffusion of Algorithm 7 evolved exactly (matrix powering) for an
// estimate k, reporting whether the τ(k) threshold alarm fires.
type DiffusionPoint struct {
	K          uint64
	KPow       float64 // k^{1+ε}
	Rounds     int     // r(k) from the Theorem 3 schedule
	Whites     int
	MaxPot     float64
	Tau        float64
	AlarmFired bool // max potential above τ (k detected low)
	TheoryLow  bool // k^{1+ε} < 2n+1: the regime where alarms are allowed
}

// AblationDiffusion evolves the diffusion phase exactly on the workload
// graph for doubling estimates and compares the threshold detector against
// the Lemma 5 guarantee: once k^{1+ε} ≥ 2n+1 and at least one white node
// exists, no potential exceeds τ(k).
func AblationDiffusion(w Workload, eps float64, maxK uint64, seed uint64) ([]DiffusionPoint, error) {
	g, err := w.BuildGraph(seed)
	if err != nil {
		return nil, err
	}
	prof, err := spectral.ProfileGraph(g)
	if err != nil {
		return nil, err
	}
	n := g.N()
	r := rng.New(seed).SplitString("diffusion")
	var points []DiffusionPoint
	for k := uint64(2); k <= maxK; k *= 2 {
		kp := math.Pow(float64(k), 1+eps)
		share := 1 / (2 * kp)
		pWhite := math.Ln2 / kp
		// Sample colors; force at least one white in the Lemma 5 regime
		// so the guarantee's precondition (ℓ >= 1) holds.
		white := make([]bool, n)
		whites := 0
		for v := 0; v < n; v++ {
			if r.Bernoulli(pWhite) {
				white[v] = true
				whites++
			}
		}
		if whites == 0 && kp >= float64(2*n+1) {
			white[r.Intn(n)] = true
			whites = 1
		}
		// Exact diffusion via the shared substrate.
		proc, err := diffusion.New(g, share, diffusion.BlackInit(white))
		if err != nil {
			return nil, err
		}
		rounds := int(8*kp*kp/(prof.Isoperim*prof.Isoperim)*math.Log(kp*kp) + kp*math.Log(2*float64(k)))
		if rounds < 1 {
			rounds = 1
		}
		const roundCap = 2_000_000
		if rounds > roundCap {
			rounds = roundCap
		}
		proc.Run(rounds)
		maxPot := proc.Max()
		tau := 1 - 1/(kp-1)
		points = append(points, DiffusionPoint{
			K: k, KPow: kp, Rounds: rounds, Whites: whites,
			MaxPot: maxPot, Tau: tau,
			AlarmFired: maxPot > tau,
			TheoryLow:  kp < float64(2*n+1),
		})
	}
	return points, nil
}

// RenderAblationDiffusion renders the X3 series.
func RenderAblationDiffusion(w Workload, points []DiffusionPoint) string {
	t := Table{
		Title:  fmt.Sprintf("X3 (Lemmas 5-8): diffusion threshold detector on %s n=%d", w.Family, w.N),
		Header: []string{"k", "k^(1+e)", "r(k)", "whites", "maxPot", "tau(k)", "alarm", "low-k regime"},
	}
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%d", p.K), F(p.KPow), I(p.Rounds), I(p.Whites),
			F(p.MaxPot), F(p.Tau), fmt.Sprintf("%t", p.AlarmFired), fmt.Sprintf("%t", p.TheoryLow))
	}
	return t.String()
}
