package harness

import (
	"fmt"

	"anonlead/internal/adversary"
	"anonlead/internal/epoch"
)

// EpochSweep is one repeated-election experiment: a protocol on a fixed
// workload running the same epoch scenario under a ladder of adversary
// configurations. The first spec is conventionally the fault-free anchor
// (a zero Spec), and the ladder's point is the adaptive-vs-static
// comparison: an adversary that targets the busiest node (the emerging
// leader) versus one that kills on a fixed schedule of equal severity.
type EpochSweep struct {
	Title    string
	Protocol Protocol
	Workload Workload
	// Epochs is the scenario every cell of the sweep runs (length, fault
	// mode, knowledge carry).
	Epochs epoch.Opts
	// Specs is the adversary ladder, one cell per configuration.
	Specs []adversary.Spec
	// Opts is the trial-option template every cell starts from. Trials,
	// Seed, Adversary and Epochs are overwritten per cell by CellSpecs.
	Opts TrialOpts
}

// CellSpecs expands the sweep into orchestrator cell specs, one per
// adversary configuration, each carrying the sweep's epoch scenario.
func (e EpochSweep) CellSpecs(trials int, seed uint64) []CellSpec {
	specs := make([]CellSpec, len(e.Specs))
	for i := range e.Specs {
		a := e.Specs[i]
		eo := e.Epochs
		opts := e.Opts
		opts.Trials, opts.Seed, opts.Adversary, opts.Epochs = trials, seed, &a, &eo
		specs[i] = CellSpec{Protocol: e.Protocol, Workload: e.Workload, Opts: opts}
	}
	return specs
}

// EpochSweeps returns the repeated-election experiment matrix: epoch
// scenarios × adversary ladders. The quick matrix is what `make
// epochs-smoke` archives as BENCH_epochs.json; the full matrix runs longer
// histories on larger graphs.
func EpochSweeps(quick bool) []EpochSweep {
	expander, complete := 32, 16
	epochs := 3
	if !quick {
		expander, complete = 64, 32
		epochs = 5
	}

	// The adaptive-vs-static ladder: the fault-free anchor, a static
	// crash-stop of one node early in each election, and the adaptive
	// adversary striking the busiest node after its observation window —
	// equal severity (one victim per election), different targeting.
	ladder := []adversary.Spec{
		{},
		{CrashFraction: 0.1, CrashBy: 8},
		{AdaptiveCrash: 1, AdaptiveWindow: 8},
	}

	return []EpochSweep{
		{"E1 crash-recover epochs vs IRE on expanders", ProtoIRE,
			Workload{Family: "expander", N: expander},
			epoch.Opts{Epochs: epochs}, ladder, TrialOpts{}},
		{"E2 crash-recover epochs with knowledge carry vs IRE on complete graphs", ProtoIRE,
			Workload{Family: "complete", N: complete},
			epoch.Opts{Epochs: epochs, Carry: true}, ladder, TrialOpts{}},
		{"E3 revolving leadership (revoke) vs FloodMax on expanders", ProtoFlood,
			Workload{Family: "expander", N: expander},
			// FloodMax halts within the graph diameter, so the adaptive
			// window must be shorter than the 8-round default to observe
			// any traffic before the election ends.
			epoch.Opts{Epochs: epochs, Revoke: true},
			[]adversary.Spec{{}, {AdaptiveCrash: 1, AdaptiveWindow: 2}}, TrialOpts{}},
	}
}

// EpochsPlan expands the repeated-election matrix, one section per sweep.
// It is a separate experiment (`lebench -exp epochs`), never part of
// SweepsPlan's artifact matrix.
func EpochsPlan(quick bool, trials int, seed uint64) Plan {
	t := planTrials(trials, 6)
	if quick {
		t = planTrials(trials, 4)
	}
	es := EpochSweeps(quick)
	sections := make([]PlanSection, 0, len(es))
	for _, e := range es {
		sections = append(sections, PlanSection{
			Kind:  SectionEpochs,
			Title: e.Title,
			Epoch: e,
			Specs: e.CellSpecs(t, seed),
		})
	}
	return Plan{Sections: sections}
}

// RenderEpochs renders one repeated-election sweep: scenario success,
// amortized per-epoch cost, and recovery time per adversary rung.
func RenderEpochs(e EpochSweep, cells []Cell) string {
	t := Table{
		Title: fmt.Sprintf("%s [%s]", e.Title, e.Epochs.Descriptor()),
		Header: []string{
			"adversary", "success", "elected", "amsgs", "arounds", "recover",
		},
	}
	for i, c := range cells {
		desc := "none"
		if i < len(e.Specs) {
			if d := e.Specs[i].Descriptor(); d != "" {
				desc = d
			}
		}
		elected, amsgs, arounds, recover := "-", "-", "-", "-"
		if es := c.EpochStats; es != nil {
			elected = fmt.Sprintf("%.2f", es.ElectedRate)
			amsgs, arounds = F(es.AmortizedMessages), F(es.AmortizedRounds)
			recover = F(es.MeanRecover)
		}
		t.AddRow(
			desc,
			fmt.Sprintf("%d/%d", c.Successes, c.Trials),
			elected, amsgs, arounds, recover,
		)
	}
	return t.String()
}
