package harness

import (
	"reflect"
	"testing"
)

// TestSweepsPlanDeterministic pins the planner contract a distributed
// sweep rests on: the same (quick, trials, seed) parameters expand to the
// same spec list every time, and every section's specs land in the
// flattened list in section order.
func TestSweepsPlanDeterministic(t *testing.T) {
	a := SweepsPlan(true, 0, 1)
	b := SweepsPlan(true, 0, 1)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("SweepsPlan is not deterministic for equal parameters")
	}
	if a.Len() == 0 {
		t.Fatal("empty plan")
	}
	specs := a.Specs()
	if len(specs) != a.Len() {
		t.Fatalf("Specs() returned %d specs, Len() says %d", len(specs), a.Len())
	}
	// Flattening preserves section order: walking sections must replay the
	// flattened list exactly.
	i := 0
	for _, sec := range a.Sections {
		for _, sp := range sec.Specs {
			if !reflect.DeepEqual(specs[i], sp) {
				t.Fatalf("spec %d differs from its section copy", i)
			}
			i++
		}
	}
	// Different parameters plan different matrices.
	if full := SweepsPlan(false, 0, 1); full.Len() <= a.Len() {
		t.Fatalf("full plan (%d cells) not larger than quick (%d)", full.Len(), a.Len())
	}
	if reseeded := SweepsPlan(true, 0, 2); reflect.DeepEqual(reseeded.Specs(), specs) {
		t.Fatal("changing the root seed did not change the planned specs")
	}
}

// TestCellSelectorParse covers the selector grammar: single indices,
// half-open ranges, mixed terms, and the rejection cases.
func TestCellSelectorParse(t *testing.T) {
	good := []struct {
		in   string
		want []int
	}{
		{"0", []int{0}},
		{"3", []int{3}},
		{"0:3", []int{0, 1, 2}},
		{"0:5,7,9:12", []int{0, 1, 2, 3, 4, 7, 9, 10, 11}},
		{" 1 , 3:5 ", []int{1, 3, 4}},
	}
	for _, tc := range good {
		sel, err := ParseCellSelector(tc.in)
		if err != nil {
			t.Fatalf("ParseCellSelector(%q): %v", tc.in, err)
		}
		got, err := sel.Indices(20)
		if err != nil {
			t.Fatalf("Indices(%q): %v", tc.in, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("ParseCellSelector(%q) = %v, want %v", tc.in, got, tc.want)
		}
		// String() must render a selector ParseCellSelector round-trips.
		back, err := ParseCellSelector(sel.String())
		if err != nil {
			t.Fatalf("round-trip parse of %q: %v", sel.String(), err)
		}
		if !reflect.DeepEqual(back, sel) {
			t.Fatalf("selector %q does not round-trip through String()=%q", tc.in, sel.String())
		}
	}
	bad := []string{"", "  ", "-1", "a", "3:3", "5:2", "0:3,2", "4,4", "5,3", "1:4,2:6"}
	for _, in := range bad {
		if _, err := ParseCellSelector(in); err == nil {
			t.Fatalf("ParseCellSelector(%q) accepted", in)
		}
	}
	// Out-of-range detection happens at expansion, against the actual plan.
	sel, err := ParseCellSelector("0:10")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sel.Indices(5); err == nil {
		t.Fatal("Indices accepted a selector past the plan end")
	}
}

// TestSelectorFromIndices checks the canonical selector construction:
// sorted, deduplicated, merged into ranges.
func TestSelectorFromIndices(t *testing.T) {
	sel, err := SelectorFromIndices([]int{4, 0, 1, 2, 7, 4, 10, 11})
	if err != nil {
		t.Fatal(err)
	}
	if got := sel.String(); got != "0:3,4,7,10:12" {
		t.Fatalf("selector %q, want 0:3,4,7,10:12", got)
	}
	if _, err := SelectorFromIndices(nil); err == nil {
		t.Fatal("empty index list accepted")
	}
	if _, err := SelectorFromIndices([]int{1, -2}); err == nil {
		t.Fatal("negative index accepted")
	}
}

// TestPartitionPlan checks the shard map: every plan index lands in
// exactly one contiguous selector, shard sizes differ by at most one, and
// worker counts beyond the plan size clamp.
func TestPartitionPlan(t *testing.T) {
	for _, tc := range []struct{ total, workers int }{
		{10, 2}, {10, 3}, {7, 7}, {7, 20}, {1, 1}, {81, 2}, {81, 5},
	} {
		sels := PartitionPlan(tc.total, tc.workers)
		wantShards := tc.workers
		if wantShards > tc.total {
			wantShards = tc.total
		}
		if len(sels) != wantShards {
			t.Fatalf("PartitionPlan(%d,%d): %d shards, want %d", tc.total, tc.workers, len(sels), wantShards)
		}
		covered := make([]int, tc.total)
		minSize, maxSize := tc.total+1, 0
		for _, sel := range sels {
			idxs, err := sel.Indices(tc.total)
			if err != nil {
				t.Fatalf("PartitionPlan(%d,%d): %v", tc.total, tc.workers, err)
			}
			if len(idxs) < minSize {
				minSize = len(idxs)
			}
			if len(idxs) > maxSize {
				maxSize = len(idxs)
			}
			for _, i := range idxs {
				covered[i]++
			}
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("PartitionPlan(%d,%d): index %d covered %d times", tc.total, tc.workers, i, c)
			}
		}
		if maxSize-minSize > 1 {
			t.Fatalf("PartitionPlan(%d,%d): shard sizes range %d..%d", tc.total, tc.workers, minSize, maxSize)
		}
	}
	if sels := PartitionPlan(0, 4); sels != nil {
		t.Fatalf("PartitionPlan(0,4) = %v", sels)
	}
}

// TestArtifactIsPartial pins the partial/full distinction trajectory
// tooling keys on.
func TestArtifactIsPartial(t *testing.T) {
	full := Artifact{Schema: ArtifactSchema}
	if full.IsPartial() {
		t.Fatal("plain artifact reported partial")
	}
	full.Plan = &ArtifactPlan{Total: 3, Indices: []int{0, 1, 2}}
	if full.IsPartial() {
		t.Fatal("full-coverage plan reported partial")
	}
	part := Artifact{Schema: ArtifactSchema, Plan: &ArtifactPlan{Total: 3, Indices: []int{1}}}
	if !part.IsPartial() {
		t.Fatal("partial-coverage plan not reported partial")
	}
}
