package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"anonlead"
	"anonlead/internal/obs"
	"anonlead/internal/spectral"
)

// CellSpec names one workload cell of an orchestrated sweep: a protocol, a
// topology cell, and the trial batch options (whose Seed is the sweep's
// root seed — per-trial seeds are split from it with TrialSeed).
type CellSpec struct {
	Protocol Protocol
	Workload Workload
	Opts     TrialOpts
}

// Orchestrator fans workload cells and per-cell trials out over a bounded
// worker pool. Results are bit-identical to running every cell through
// RunCell on one goroutine: trial seeds are pure functions of (root seed,
// cell, trial index), shards fill disjoint trial ranges, and each cell is
// reduced in trial-index order once its last shard lands. The zero value
// runs with GOMAXPROCS workers and one shard per worker.
type Orchestrator struct {
	// Workers is the pool size (0 = GOMAXPROCS).
	Workers int
	// Shards is the number of trial shards each cell is cut into
	// (0 = Workers). More shards smooth load imbalance between cheap and
	// expensive cells; one shard pins each cell to a single worker.
	Shards int
	// OnCell, when non-nil, streams each aggregated Cell as soon as its
	// last shard completes, with i the index into the spec slice. Cells
	// complete in whatever order the pool finishes them; calls are
	// serialized under an internal lock.
	OnCell func(i int, c Cell)
}

// cellRun is the in-flight state of one spec during a sweep.
type cellRun struct {
	anw       *anonlead.Network
	prof      *spectral.Profile
	trials    []Trial
	remaining atomic.Int32
}

// Effective returns the worker and shard counts a sweep actually runs
// with, resolving the zero-value defaults (artifacts record these, not the
// raw configuration, so cross-machine throughput stays comparable).
func (o Orchestrator) Effective() (workers, shards int) {
	workers = o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shards = o.Shards
	if shards <= 0 {
		shards = workers
	}
	return workers, shards
}

// RunSweep executes every spec and returns the aggregated cells in spec
// order. On the first trial or build error the pool stops handing out new
// work, drains in-flight tasks, and returns the error of the lowest-indexed
// failed task.
func (o Orchestrator) RunSweep(specs []CellSpec) ([]Cell, error) {
	workers, shards := o.Effective()
	if obs.Enabled() {
		obs.Default().Counter("anonlead_cells_total").Add(int64(len(specs)))
	}

	// Phase 1: build and profile every distinct workload graph in
	// parallel. Specs sharing (workload, seed) — different protocols on
	// one cell, or a knowledge sweep's factors — share a single build and
	// spectral profile, the dominant setup cost at larger n.
	type prepKey struct {
		family string
		n      int
		seed   uint64
		mode   spectral.Mode // resolved profile regime
	}
	order := make([]prepKey, 0, len(specs))
	groups := make(map[prepKey][]int, len(specs))
	for i, spec := range specs {
		k := prepKey{spec.Workload.Family, spec.Workload.N, spec.Opts.Seed,
			spec.Opts.ProfileMode.Resolve(spec.Workload.N)}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	runs := make([]cellRun, len(specs))
	err := forEach(workers, len(order), func(j int) error {
		idxs := groups[order[j]]
		spec := specs[idxs[0]]
		anw, prof, err := prepareCell(spec.Workload, spec.Opts.Seed, spec.Opts.ProfileMode)
		if err != nil {
			return fmt.Errorf("spec %d: %w", idxs[0], err)
		}
		for _, i := range idxs {
			runs[i].anw, runs[i].prof = anw, prof
			runs[i].trials = make([]Trial, cellTrials(specs[i].Opts))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: cut every cell's trial batch into shards and fan the shards
	// of all cells out over one pool, so a big cell's trials overlap with
	// small cells instead of serializing behind them.
	type shard struct{ cell, lo, hi int }
	var work []shard
	for i := range runs {
		n := len(runs[i].trials)
		per := (n + shards - 1) / shards
		count := 0
		for lo := 0; lo < n; lo += per {
			hi := lo + per
			if hi > n {
				hi = n
			}
			work = append(work, shard{i, lo, hi})
			count++
		}
		runs[i].remaining.Store(int32(count))
	}
	cells := make([]Cell, len(specs))
	var cbMu sync.Mutex
	err = forEach(workers, len(work), func(s int) error {
		sh := work[s]
		spec := specs[sh.cell]
		run := &runs[sh.cell]
		endTrials := obs.Span("trials", cellLabel(spec.Workload))
		for t := sh.lo; t < sh.hi; t++ {
			trial, err := runOne(spec.Protocol, run.anw, run.prof, spec.Opts,
				TrialSeed(spec.Opts.Seed, spec.Workload, t))
			if err != nil {
				endTrials()
				return fmt.Errorf("spec %d (%s on %s/%d) trial %d: %w",
					sh.cell, spec.Protocol, spec.Workload.Family, spec.Workload.N, t, err)
			}
			run.trials[t] = trial
		}
		endTrials()
		if run.remaining.Add(-1) == 0 {
			endReduce := obs.Span("reduce", cellLabel(spec.Workload))
			cell := reduceCell(spec.Protocol, spec.Workload, run.prof, spec.Opts.Epochs, run.trials)
			endReduce()
			cells[sh.cell] = cell
			if obs.Enabled() {
				obs.Default().Counter("anonlead_cells_done").Inc()
			}
			if o.OnCell != nil {
				cbMu.Lock()
				o.OnCell(sh.cell, cell)
				cbMu.Unlock()
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// RunSweepSequential executes the specs one cell at a time on the calling
// goroutine — the reference semantics the parallel pool must reproduce
// bit for bit.
func RunSweepSequential(specs []CellSpec) ([]Cell, error) {
	cells := make([]Cell, len(specs))
	for i, spec := range specs {
		c, err := RunCell(spec.Protocol, spec.Workload, spec.Opts)
		if err != nil {
			return nil, fmt.Errorf("spec %d (%s on %s/%d): %w",
				i, spec.Protocol, spec.Workload.Family, spec.Workload.N, err)
		}
		cells[i] = c
	}
	return cells, nil
}

// forEach runs fn(0..n-1) over a pool of workers goroutines. On the first
// error the pool stops claiming new tasks and lets in-flight ones finish
// (clean shutdown, no goroutine leak); among the tasks that did fail, the
// lowest-indexed error is returned so reporting does not depend on
// goroutine scheduling.
func forEach(workers, n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		mu       sync.Mutex
		errIdx   = -1
		firstErr error
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					failed.Store(true)
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
