package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"anonlead/internal/obs"
)

// MergeArtifacts reassembles the partial artifacts of a distributed sweep
// into the one artifact a single process would have written for the same
// plan and seed. Each partial must carry an ArtifactPlan header naming
// the plan indices of its cells; the merge places every cell at its plan
// index and demands exact coverage:
//
//   - mixed schema versions (e.g. a v3 partial among v4) are rejected —
//     cell layouts differ, so a merged file would lie about its schema;
//   - partials of different root seeds are rejected — their cells belong
//     to different sweeps;
//   - the same plan index delivered twice with byte-identical content is
//     tolerated (a retried worker overlapping its crashed attempt), but
//     two different cells for one index are a conflict and an error;
//   - gaps (plan indices no partial covered) are an error.
//
// The merged artifact has its wall-clock fields zeroed and no Plan
// header: it is deterministic content only, byte-identical to the
// single-process artifact of the same seed after StripTimings. Worker and
// shard counts are taken from the partials when they all agree (the
// same-machine case CI's byte-identity gate runs) and zeroed otherwise.
func MergeArtifacts(parts []Artifact) (Artifact, error) {
	defer obs.Span("merge")()
	if len(parts) == 0 {
		return Artifact{}, fmt.Errorf("harness: merge: no partial artifacts")
	}

	schema, total := "", -1
	for i, p := range parts {
		if p.Plan == nil {
			return Artifact{}, fmt.Errorf("harness: merge: partial %d has no plan header (not a -cells artifact?)", i)
		}
		if len(p.Plan.Indices) != len(p.Cells) {
			return Artifact{}, fmt.Errorf("harness: merge: partial %d covers %d plan indices but carries %d cells",
				i, len(p.Plan.Indices), len(p.Cells))
		}
		if schema == "" {
			schema = p.Schema
		} else if p.Schema != schema {
			return Artifact{}, fmt.Errorf("harness: merge: schema mismatch: partial %d is %q, earlier partials are %q",
				i, p.Schema, schema)
		}
		if total < 0 {
			total = p.Plan.Total
		} else if p.Plan.Total != total {
			return Artifact{}, fmt.Errorf("harness: merge: plan size mismatch: partial %d plans %d cells, earlier partials plan %d",
				i, p.Plan.Total, total)
		}
	}

	merged := Artifact{Schema: schema, Cells: make([]ArtifactCell, total)}
	filled := make([]bool, total)
	seenSeed, seenEngine := false, false
	for i, p := range parts {
		// Empty partials (a worker handed no cells) carry no root seed or
		// meaningful engine; they only contribute their plan agreement.
		if len(p.Cells) > 0 {
			if !seenSeed {
				merged.RootSeed, seenSeed = p.RootSeed, true
			} else if p.RootSeed != merged.RootSeed {
				return Artifact{}, fmt.Errorf("harness: merge: root seed mismatch: partial %d ran seed %d, earlier partials ran %d",
					i, p.RootSeed, merged.RootSeed)
			}
			if !seenEngine {
				merged.Workers, merged.Shards, seenEngine = p.Workers, p.Shards, true
			} else if p.Workers != merged.Workers || p.Shards != merged.Shards {
				// Heterogeneous engines (a cross-machine sweep): no single
				// honest value exists, so record none.
				merged.Workers, merged.Shards = 0, 0
			}
		}
		for j, idx := range p.Plan.Indices {
			if idx < 0 || idx >= total {
				return Artifact{}, fmt.Errorf("harness: merge: partial %d covers plan index %d, outside the %d-cell plan",
					i, idx, total)
			}
			if filled[idx] {
				if !cellsEqual(merged.Cells[idx], p.Cells[j]) {
					return Artifact{}, fmt.Errorf("harness: merge: conflicting cells for plan index %d (%s %s/%d): two partials measured different values",
						idx, p.Cells[j].Protocol, p.Cells[j].Family, p.Cells[j].N)
				}
				continue // identical duplicate: an idempotent retry overlap
			}
			merged.Cells[idx] = p.Cells[j]
			filled[idx] = true
		}
	}

	var missing []int
	for idx, ok := range filled {
		if !ok {
			missing = append(missing, idx)
		}
	}
	if len(missing) > 0 {
		sort.Ints(missing)
		shown := missing
		if len(shown) > 10 {
			shown = shown[:10]
		}
		return Artifact{}, fmt.Errorf("harness: merge: %d of %d plan cells missing from the partials (indices %v%s)",
			len(missing), total, shown, ellipsis(len(missing) > len(shown)))
	}
	return merged, nil
}

func ellipsis(more bool) string {
	if more {
		return " …"
	}
	return ""
}

// cellsEqual compares two artifact cells via their canonical JSON — the
// same bytes the artifact persists, so "equal" means exactly what the
// byte-identity guarantee means.
func cellsEqual(a, b ArtifactCell) bool {
	ab, errA := json.Marshal(a)
	bb, errB := json.Marshal(b)
	return errA == nil && errB == nil && bytes.Equal(ab, bb)
}
