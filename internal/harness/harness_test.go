package harness

import (
	"strings"
	"testing"

	"anonlead/internal/core"
)

func TestWorkloadBuildDeterministic(t *testing.T) {
	w := Workload{Family: "expander", N: 32}
	g1, err := w.BuildGraph(5)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := w.BuildGraph(5)
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := g1.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatal("sizes differ")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestRunCellIRE(t *testing.T) {
	cell, err := RunCell(ProtoIRE, Workload{Family: "complete", N: 24}, TrialOpts{Trials: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cell.Trials != 4 {
		t.Fatalf("trials %d", cell.Trials)
	}
	if cell.Successes < 3 {
		t.Fatalf("successes %d/4", cell.Successes)
	}
	if cell.Messages <= 0 || cell.Rounds <= 0 || cell.Charged <= 0 {
		t.Fatalf("degenerate means: %+v", cell)
	}
	if cell.SuccessRate() != float64(cell.Successes)/4 {
		t.Fatal("success rate arithmetic")
	}
}

func TestRunCellBaselines(t *testing.T) {
	for _, p := range []Protocol{ProtoFlood, ProtoAllFlood, ProtoWalkNotify} {
		cell, err := RunCell(p, Workload{Family: "torus", N: 16}, TrialOpts{Trials: 3, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if cell.Trials != 3 || cell.Messages <= 0 {
			t.Fatalf("%s: %+v", p, cell)
		}
	}
}

func TestRunCellRevocable(t *testing.T) {
	cell, err := RunCell(ProtoRevocable, Workload{Family: "complete", N: 3}, TrialOpts{
		Trials: 2, Seed: 3, RevocableUseProfileIso: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cell.Successes != 2 {
		t.Fatalf("revocable successes %d/2", cell.Successes)
	}
}

func TestRunCellUnknownProtocol(t *testing.T) {
	if _, err := RunCell(Protocol("nope"), Workload{Family: "cycle", N: 8}, TrialOpts{Trials: 1}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunCellBadFamily(t *testing.T) {
	if _, err := RunCell(ProtoIRE, Workload{Family: "nosuch", N: 8}, TrialOpts{Trials: 1}); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestTable1SweepAndRender(t *testing.T) {
	rows, err := Table1Sweep(ProtoIRE, "complete", []int{16, 24}, TrialOpts{Trials: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.PredictedMsgs <= 0 || r.PredictedTime <= 0 {
			t.Fatalf("predictions missing: %+v", r)
		}
	}
	out := RenderTable1("test sweep", rows)
	for _, want := range []string{"test sweep", "msgs", "success", "exponent"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestPredictionFormulas(t *testing.T) {
	cell, err := RunCell(ProtoIRE, Workload{Family: "cycle", N: 16}, TrialOpts{Trials: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	prof := cell.Profile
	for _, p := range Protocols() {
		if m := predictMsgs(p, prof); m <= 0 {
			t.Fatalf("%s message prediction %v", p, m)
		}
		if tt := predictTime(p, prof); tt <= 0 {
			t.Fatalf("%s time prediction %v", p, tt)
		}
	}
	// The paper's core comparison: our bound beats the Gilbert bound by
	// √(tmix·Φ) ≥ 1 on every graph.
	ours := predictMsgs(ProtoIRE, prof)
	gilbert := predictMsgs(ProtoWalkNotify, prof)
	if ours > gilbert {
		t.Fatalf("IRE prediction %v above Gilbert %v", ours, gilbert)
	}
}

func TestSplitBrainExperimentSmall(t *testing.T) {
	points, err := SplitBrainExperiment(8, []int{1}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("points %d", len(points))
	}
	pt := points[0]
	if pt.Trials != 2 {
		t.Fatalf("trials %d", pt.Trials)
	}
	if pt.MeanLeaders < 1 {
		t.Fatalf("mean leaders %v: the wheel should elect plenty", pt.MeanLeaders)
	}
	out := RenderSplitBrain(8, points)
	if !strings.Contains(out, "pumping wheel") || !strings.Contains(out, "P(multi)") {
		t.Fatalf("render incomplete:\n%s", out)
	}
}

func TestAblationCautiousRuns(t *testing.T) {
	w := Workload{Family: "complete", N: 32}
	points, prof, err := AblationCautious(w, []int{2, 8}, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points %d", len(points))
	}
	// Larger x must produce a larger cap and not-smaller mean territory.
	if points[1].CapSize <= points[0].CapSize {
		t.Fatalf("cap not increasing: %+v", points)
	}
	if points[1].MeanTerritory < points[0].MeanTerritory/2 {
		t.Fatalf("territory collapsed at larger x: %+v", points)
	}
	out := RenderAblationCautious(w, prof, points)
	if !strings.Contains(out, "Lemma 1") {
		t.Fatal("render missing title")
	}
}

func TestAblationWalksRuns(t *testing.T) {
	w := Workload{Family: "complete", N: 24}
	points, prof, err := AblationWalks(w, []float64{0.5, 2}, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points %d", len(points))
	}
	if points[0].X >= points[1].X {
		t.Fatalf("x not scaled by factor: %+v", points)
	}
	out := RenderAblationWalks(w, prof, points)
	if !strings.Contains(out, "Lemma 2") {
		t.Fatal("render missing title")
	}
}

func TestAblationDiffusionDetectorRegimes(t *testing.T) {
	w := Workload{Family: "cycle", N: 8}
	points, err := AblationDiffusion(w, 0.5, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Lemma 5: once k^{1+ε} >= 2n+1 (and a white node exists), no alarm.
	for _, p := range points {
		if !p.TheoryLow && p.Whites >= 1 && p.AlarmFired {
			t.Fatalf("alarm fired in the safe regime: %+v", p)
		}
	}
	out := RenderAblationDiffusion(w, points)
	if !strings.Contains(out, "Lemmas 5-8") {
		t.Fatal("render missing title")
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tab := Table{Title: "x", Header: []string{"a", "bb"}}
	tab.AddRow("1")
	tab.AddRow("22", "333")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines %d:\n%s", len(lines), out)
	}
	if len(lines[3]) != len(lines[4]) {
		t.Fatalf("rows unaligned:\n%s", out)
	}
}

func TestFormatHelpers(t *testing.T) {
	if F(0) != "0" {
		t.Fatal("F(0)")
	}
	if F(123456789) != "1.23e+08" {
		t.Fatalf("F large: %s", F(123456789))
	}
	if I(42) != "42" {
		t.Fatal("I")
	}
}

func TestTrialOptsIREOverride(t *testing.T) {
	// Custom C propagates into the protocol (more candidates => more
	// broadcast executions => more messages).
	lo, err := RunCell(ProtoIRE, Workload{Family: "complete", N: 32},
		TrialOpts{Trials: 2, Seed: 9, IRE: core.IREConfig{C: 0.8}})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := RunCell(ProtoIRE, Workload{Family: "complete", N: 32},
		TrialOpts{Trials: 2, Seed: 9, IRE: core.IREConfig{C: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if hi.Messages <= lo.Messages {
		t.Fatalf("C override had no effect: lo=%v hi=%v", lo.Messages, hi.Messages)
	}
}

func TestRunCellExplicit(t *testing.T) {
	cell, err := RunCell(ProtoExplicit, Workload{Family: "torus", N: 16}, TrialOpts{Trials: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if cell.Successes < 2 {
		t.Fatalf("explicit successes %d/3", cell.Successes)
	}
	// Explicit costs strictly more than implicit on the same cell/seeds.
	impl, err := RunCell(ProtoIRE, Workload{Family: "torus", N: 16}, TrialOpts{Trials: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if cell.Messages <= impl.Messages {
		t.Fatalf("explicit %v msgs not above implicit %v", cell.Messages, impl.Messages)
	}
}

func TestRunCellDeterministic(t *testing.T) {
	opts := TrialOpts{Trials: 3, Seed: 17}
	a, err := RunCell(ProtoIRE, Workload{Family: "expander", N: 32}, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCell(ProtoIRE, Workload{Family: "expander", N: 32}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Messages != b.Messages || a.Successes != b.Successes || a.Rounds != b.Rounds {
		t.Fatalf("cells differ: %+v vs %+v", a, b)
	}
}
