package harness

import (
	"fmt"

	"anonlead/internal/adversary"
)

// FaultSweep is one resilience degradation curve: a protocol on a fixed
// workload, swept over a family of adversary configurations of increasing
// severity. The first spec is conventionally the fault-free anchor (a zero
// Spec), so the rendered curve and the artifact both carry the unperturbed
// reference point.
type FaultSweep struct {
	Title    string
	Protocol Protocol
	Workload Workload
	Specs    []adversary.Spec
	// Opts is the trial-option template every cell of the sweep starts
	// from (protocol tunables like the revocable schedule or a round cap
	// for runs an adversary can keep from converging). Trials, Seed, and
	// Adversary are overwritten per cell by CellSpecs.
	Opts TrialOpts
}

// CellSpecs expands the sweep into orchestrator cell specs, one per
// adversary configuration.
func (f FaultSweep) CellSpecs(trials int, seed uint64) []CellSpec {
	specs := make([]CellSpec, len(f.Specs))
	for i := range f.Specs {
		a := f.Specs[i]
		opts := f.Opts
		opts.Trials, opts.Seed, opts.Adversary = trials, seed, &a
		specs[i] = CellSpec{Protocol: f.Protocol, Workload: f.Workload, Opts: opts}
	}
	return specs
}

// lossLadder builds a loss sweep starting at the fault-free anchor.
func lossLadder(rates ...float64) []adversary.Spec {
	specs := []adversary.Spec{{}}
	for _, r := range rates {
		specs = append(specs, adversary.Spec{Loss: r})
	}
	return specs
}

// FaultSweeps returns the resilience experiment matrix: fault rate ×
// protocol × graph family for the adversary kinds internal/adversary
// provides. The quick matrix is what CI's bench artifact records (its
// cells sit in testdata/BENCH_baseline.json, so changing it requires
// `make baseline`); the full matrix adds larger graphs and more severity
// steps.
func FaultSweeps(quick bool) []FaultSweep {
	expander, cycle := 64, 32
	losses := []float64{0.05, 0.1, 0.2}
	crashes := []float64{0.1, 0.25, 0.5}
	churns := []float64{0.1, 0.3}
	if !quick {
		expander, cycle = 128, 64
		losses = append(losses, 0.3)
		churns = append(churns, 0.5)
	}

	crashLadder := []adversary.Spec{{}}
	for _, f := range crashes {
		crashLadder = append(crashLadder, adversary.Spec{CrashFraction: f, CrashBy: 16})
	}
	churnLadder := []adversary.Spec{{}}
	for _, c := range churns {
		churnLadder = append(churnLadder,
			adversary.Spec{Churn: c, ChurnPreserve: true},
			adversary.Spec{Churn: c})
	}
	delayLadder := []adversary.Spec{
		{},
		{DelayProb: 0.25, MaxDelay: 2},
		{DelayProb: 0.5, MaxDelay: 2},
		{DelayProb: 0.5, MaxDelay: 4},
	}

	// Revocable LE under crash-stop (the ROADMAP's open experiment):
	// success is judged over survivors, so the question the curve answers
	// is whether the revocation machinery still converges on a single
	// surviving leader once nodes crash mid-schedule. The workload stays
	// in the tiny-complete regime where the Theorem 3 polynomials are
	// simulable; the round cap sits above the fault-free stabilization
	// point (~54k rounds at n=4, ~394k at n=6) so only genuinely wedged
	// runs are cut off and recorded as failures.
	revocableCrash := []adversary.Spec{{}}
	for _, f := range []float64{0.25, 0.5} {
		revocableCrash = append(revocableCrash, adversary.Spec{CrashFraction: f, CrashBy: 8})
	}
	revocableN, revocableCap := 4, 60_000
	if !quick {
		revocableN, revocableCap = 6, 450_000
	}
	revocableOpts := TrialOpts{RevocableUseProfileIso: true, RevocableMaxRounds: revocableCap}

	return []FaultSweep{
		{"F1-a message loss vs IRE on expanders", ProtoIRE,
			Workload{Family: "expander", N: expander}, lossLadder(losses...), TrialOpts{}},
		{"F1-b message loss vs IRE on cycles", ProtoIRE,
			Workload{Family: "cycle", N: cycle}, lossLadder(losses...), TrialOpts{}},
		{"F1-c message loss vs FloodMax on expanders", ProtoFlood,
			Workload{Family: "expander", N: expander}, lossLadder(losses...), TrialOpts{}},
		{"F1-d message loss vs Gilbert-class on expanders", ProtoWalkNotify,
			Workload{Family: "expander", N: expander}, lossLadder(losses...), TrialOpts{}},
		{"F2 crash-stop vs IRE on expanders", ProtoIRE,
			Workload{Family: "expander", N: expander}, crashLadder, TrialOpts{}},
		{"F3 link churn vs IRE on expanders", ProtoIRE,
			Workload{Family: "expander", N: expander}, churnLadder, TrialOpts{}},
		{"F4 delivery jitter vs FloodMax on expanders", ProtoFlood,
			Workload{Family: "expander", N: expander}, delayLadder, TrialOpts{}},
		{"F5 crash-stop vs Revocable LE on complete graphs", ProtoRevocable,
			Workload{Family: "complete", N: revocableN}, revocableCrash, revocableOpts},
	}
}

// RenderFaults renders one degradation curve: absolute metrics plus the
// cost ratios against the sweep's fault-free anchor cell.
func RenderFaults(f FaultSweep, cells []Cell) string {
	t := Table{
		Title: f.Title,
		Header: []string{
			"adversary", "success", "leaders>1", "leaders=0",
			"msgs", "xmsgs", "rounds", "xrounds", "dropped", "crashed",
		},
	}
	var anchor *Cell
	if len(cells) > 0 && f.Specs[0].IsZero() {
		anchor = &cells[0]
	}
	ratio := func(v, base float64) string {
		if anchor == nil || base == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f", v/base)
	}
	for i, c := range cells {
		desc := f.Specs[i].Descriptor()
		if desc == "" {
			desc = "none"
		}
		var xm, xr string
		if anchor != nil {
			xm, xr = ratio(c.Messages, anchor.Messages), ratio(c.Rounds, anchor.Rounds)
		} else {
			xm, xr = "-", "-"
		}
		t.AddRow(
			desc,
			fmt.Sprintf("%d/%d", c.Successes, c.Trials),
			I(c.MultiLeaders), I(c.ZeroLeaders),
			F(c.Messages), xm, F(c.Rounds), xr,
			F(c.Dropped), F(c.CrashedNodes),
		)
	}
	return t.String()
}
