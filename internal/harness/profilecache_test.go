package harness

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"anonlead/internal/sim"
	"anonlead/internal/spectral"
)

// TestEstimatedCellsSchedulerInvariant: estimate-regime cells are
// byte-identical across all three simulator engines, exactly like exact
// ones — the estimators read only the graph and the seed chain, never the
// execution schedule.
func TestEstimatedCellsSchedulerInvariant(t *testing.T) {
	w := Workload{Family: "expander", N: 96}
	var cells []Cell
	for _, sched := range []sim.Scheduler{sim.Sequential, sim.WorkerPool, sim.Actors} {
		opts := TrialOpts{Trials: 4, Seed: 11, Scheduler: sched,
			ProfileMode: spectral.ModeEstimate}
		c, err := RunCell(ProtoIRE, w, opts)
		if err != nil {
			t.Fatalf("scheduler %v: %v", sched, err)
		}
		if !c.Profile.Estimated {
			t.Fatalf("scheduler %v: cell not in estimate regime: %+v", sched, c.Profile)
		}
		cells = append(cells, c)
	}
	for i := 1; i < len(cells); i++ {
		if !reflect.DeepEqual(cells[0], cells[i]) {
			t.Fatalf("scheduler %d diverged:\n%+v\n%+v", i, cells[0], cells[i])
		}
	}
}

// TestProfileCacheColdWarmByteIdentical: a warm-cache sweep serializes
// byte-identically to the cold run that populated the cache, and a fresh
// cold run after a reset reproduces both — the cache changes cost, never
// content. Also pins the hit/miss accounting.
func TestProfileCacheColdWarmByteIdentical(t *testing.T) {
	ResetProfileCache()
	defer ResetProfileCache()

	// n=300 forces the estimate regime under auto; two protocols on one
	// workload share a single profile entry.
	opts := TrialOpts{Trials: 3, Seed: 7}
	specs := []CellSpec{
		{Protocol: ProtoFlood, Workload: Workload{Family: "expander", N: 300}, Opts: opts},
		{Protocol: ProtoWalkNotify, Workload: Workload{Family: "expander", N: 300}, Opts: opts},
	}
	o := Orchestrator{Workers: 1, Shards: 1}

	cold, err := RunSweepSequential(specs)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := ProfileCacheStats()
	if misses != 1 || hits != 1 {
		t.Fatalf("cold sweep counters: hits=%d misses=%d, want 1/1 (shared profile entry)", hits, misses)
	}
	if !cold[0].Profile.Estimated {
		t.Fatalf("n=300 cell not in estimate regime under auto: %+v", cold[0].Profile)
	}

	warm, err := RunSweepSequential(specs)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses = ProfileCacheStats()
	if misses != 1 || hits != 3 {
		t.Fatalf("warm sweep counters: hits=%d misses=%d, want 3/1", hits, misses)
	}

	ResetProfileCache()
	fresh, err := RunSweepSequential(specs)
	if err != nil {
		t.Fatal(err)
	}

	render := func(cells []Cell) []byte {
		buf, err := NewArtifact(o, specs, cells, 0).JSON()
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	coldJSON := render(cold)
	if !bytes.Equal(coldJSON, render(warm)) {
		t.Fatal("warm-cache sweep diverged from cold run")
	}
	if !bytes.Equal(coldJSON, render(fresh)) {
		t.Fatal("post-reset cold sweep diverged from first cold run")
	}
}

// TestEstimateArtifactRecordsMode: estimate-regime cells carry the
// canonical mode string in the v4 artifact; exact ones omit it.
func TestEstimateArtifactRecordsMode(t *testing.T) {
	ResetProfileCache()
	defer ResetProfileCache()

	opts := TrialOpts{Trials: 2, Seed: 5}
	specs := []CellSpec{
		{Protocol: ProtoFlood, Workload: Workload{Family: "cycle", N: 24}, Opts: opts},
		{Protocol: ProtoFlood, Workload: Workload{Family: "expander", N: 300}, Opts: opts},
	}
	cells, err := RunSweepSequential(specs)
	if err != nil {
		t.Fatal(err)
	}
	a := NewArtifact(Orchestrator{Workers: 1, Shards: 1}, specs, cells, 0)
	if a.Schema != ArtifactSchema {
		t.Fatalf("schema %q", a.Schema)
	}
	if got := a.Cells[0].ProfileMode; got != "" {
		t.Fatalf("exact cell recorded mode %q, want omitted", got)
	}
	if got := a.Cells[1].ProfileMode; got != spectral.ModeEstimate.String() {
		t.Fatalf("estimate cell recorded mode %q, want %q", got, spectral.ModeEstimate)
	}
}

// TestProfileCacheHitSpeedup: preparing the same cell twice must make the
// second preparation at least 10x cheaper — the acceptance bar for the
// scaling sweeps, where repeated cells reduce to trial cost. The cold
// preparation profiles a 4000-node expander (hundreds of milliseconds);
// the warm one re-wraps a cached graph and profile (milliseconds), so the
// 10x bound has a wide margin even on a noisy CI machine.
func TestProfileCacheHitSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	ResetProfileCache()
	defer ResetProfileCache()

	w := Workload{Family: "expander", N: 4000}
	start := time.Now()
	_, prof, err := prepareCell(w, 3, spectral.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	coldT := time.Since(start)
	if !prof.Estimated {
		t.Fatalf("n=4000 resolved to exact regime: %+v", prof)
	}

	start = time.Now()
	_, prof2, err := prepareCell(w, 3, spectral.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	warmT := time.Since(start)
	if prof2 != prof {
		t.Fatal("warm prepare did not reuse the cached profile")
	}
	if warmT*10 > coldT {
		t.Fatalf("cache hit not >=10x faster: cold %v, warm %v", coldT, warmT)
	}
}
