package harness

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// FuzzParseSelector hardens the -cells selector grammar: arbitrary input
// must parse or error (never panic), and anything accepted must satisfy
// the selector invariants — non-empty, strictly ascending half-open
// ranges, and a String() rendering the parser accepts back as the same
// selection.
func FuzzParseSelector(f *testing.F) {
	for _, s := range []string{
		"0", "0:5", "0:5,7,9:12", "3,4,5", " 1 : 3 ", "0:2,2:4",
		"", "5:2", "3:3", "-1", "a", "1,,2", "1:2:3", "2,1", "0x10", "1:9999999999999999999",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sel, err := ParseCellSelector(s)
		if err != nil {
			return // rejected input: an error is the contract, a panic is the bug
		}
		if sel.IsZero() {
			t.Fatalf("parse of %q succeeded but selects nothing", s)
		}
		// The canonical text re-parses to a selector that renders the same
		// canonical text (String is a fixed point of Parse∘String).
		canon := sel.String()
		sel2, err := ParseCellSelector(canon)
		if err != nil {
			t.Fatalf("canonical render %q of %q does not re-parse: %v", canon, s, err)
		}
		if got := sel2.String(); got != canon {
			t.Fatalf("canonical render unstable: %q re-parses to %q", canon, got)
		}

		// Expansion invariants, on selectors small enough to expand: the
		// index list is strictly ascending and SelectorFromIndices selects
		// exactly the same cells (possibly in a merged canonical form, e.g.
		// "0:2,2:4" → "0:4").
		max := sel.ranges[len(sel.ranges)-1].hi
		if max > 1<<16 {
			return
		}
		idxs, err := sel.Indices(max)
		if err != nil {
			t.Fatalf("selector %q does not expand against its own bound %d: %v", canon, max, err)
		}
		for i := 1; i < len(idxs); i++ {
			if idxs[i] <= idxs[i-1] {
				t.Fatalf("selector %q expands out of order: %v", canon, idxs)
			}
		}
		rt, err := SelectorFromIndices(idxs)
		if err != nil {
			t.Fatalf("round-trip of %v failed: %v", idxs, err)
		}
		idxs2, err := rt.Indices(max)
		if err != nil {
			t.Fatalf("round-tripped selector %q does not expand: %v", rt, err)
		}
		if !reflect.DeepEqual(idxs, idxs2) {
			t.Fatalf("selection changed through SelectorFromIndices: %v vs %v", idxs, idxs2)
		}
	})
}

// TestSelectorRoundTripProperty: for random index sets, the canonical
// selector built from the indices renders text that parses back to
// exactly those indices. This is the contract the distributed sweep rests
// on — lesweep serializes shard selectors as text and workers re-expand
// them.
func TestSelectorRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		total := 1 + rng.Intn(64)
		want := map[int]bool{}
		for i := 0; i < 1+rng.Intn(total); i++ {
			want[rng.Intn(total)] = true
		}
		var indices []int // deliberately unsorted with duplicates
		for i := range want {
			indices = append(indices, i, i)
		}
		rng.Shuffle(len(indices), func(i, j int) { indices[i], indices[j] = indices[j], indices[i] })

		sel, err := SelectorFromIndices(indices)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		parsed, err := ParseCellSelector(sel.String())
		if err != nil {
			t.Fatalf("trial %d: canonical %q does not parse: %v", trial, sel, err)
		}
		got, err := parsed.Indices(total)
		if err != nil {
			t.Fatalf("trial %d: %q does not expand against %d: %v", trial, sel, total, err)
		}
		sorted := make([]int, 0, len(want))
		for i := range want {
			sorted = append(sorted, i)
		}
		sort.Ints(sorted)
		if !reflect.DeepEqual(got, sorted) {
			t.Fatalf("trial %d: %q expands to %v, want %v", trial, sel, got, sorted)
		}
	}
}
