package harness

import (
	"reflect"
	"testing"

	"anonlead"
	"anonlead/internal/adversary"
	"anonlead/internal/sim"
)

// TestMirrorRoundTrips guards the hand-written field-copy bridges the
// harness uses against the public API: a field present in both mirror
// structs but dropped by a copy function would pass a pure struct-parity
// test while silently zeroing that field in every sweep.
func TestMirrorRoundTrips(t *testing.T) {
	// Adversary spec: internal -> public -> internal must be lossless.
	spec := adversary.Spec{
		Loss: 0.1, CrashFraction: 0.25, CrashBy: 16,
		CrashSchedule: map[int]int{3: 7},
		Churn:         0.05, ChurnPreserve: true,
		DelayProb: 0.5, MaxDelay: 3,
		AdaptiveCrash: 2, AdaptiveWindow: 4, AdaptiveStrikes: 3,
	}
	sv := reflect.ValueOf(spec)
	for i := 0; i < sv.NumField(); i++ {
		if sv.Field(i).IsZero() {
			t.Fatalf("test spec leaves field %s zero — set it so the round-trip covers it",
				reflect.TypeOf(spec).Field(i).Name)
		}
	}
	pub := publicAdversary(spec)
	// Every spec field shapes the canonical descriptor, so descriptor
	// equality across the conversion pipeline (public mirror -> internal
	// build input) proves no field was dropped by the copy functions.
	if got, want := pub.Descriptor(), spec.Descriptor(); got != want {
		t.Fatalf("descriptor lost in conversion: %q vs %q", got, want)
	}

	// Metrics: the public mirror is field-for-field in simulator order;
	// distinct sentinels per field must land back on the simulator type
	// unchanged through the harness's inverse conversion.
	var pm anonlead.Metrics
	pv := reflect.ValueOf(&pm).Elem()
	for i := 0; i < pv.NumField(); i++ {
		pv.Field(i).SetInt(int64(i + 1))
	}
	var want sim.Metrics
	wv := reflect.ValueOf(&want).Elem()
	for i := 0; i < wv.NumField(); i++ {
		wv.Field(i).SetInt(int64(i + 1))
	}
	if got := simMetrics(pm); got != want {
		t.Fatalf("metrics conversion lost counters:\nin  %+v\nout %+v", pm, got)
	}
}

// TestPublicNetworkMatchesWorkloadGraph pins the graph-derivation
// unification: anonlead.NewNetwork(family, n, seed) must be exactly the
// workload graph behind the sweep cells (same seed labeling), so library
// users can reproduce any artifact cell from the public API alone.
func TestPublicNetworkMatchesWorkloadGraph(t *testing.T) {
	for _, w := range []Workload{
		{Family: "expander", N: 64},
		{Family: "cycle", N: 32},
		{Family: "gnp", N: 48},
	} {
		g, err := w.BuildGraph(9)
		if err != nil {
			t.Fatalf("%s: %v", w.Family, err)
		}
		nw, err := anonlead.NewNetwork(w.Family, w.N, 9)
		if err != nil {
			t.Fatalf("%s: %v", w.Family, err)
		}
		if nw.N() != g.N() || nw.M() != g.M() {
			t.Fatalf("%s: size mismatch public n=%d m=%d vs workload n=%d m=%d",
				w.Family, nw.N(), nw.M(), g.N(), g.M())
		}
		// Same seed → same election transcript is the real pin: run the
		// same trial through both surfaces and compare the accounting.
		prof, err := anonlead.NewNetworkFromGraph(g)
		if err != nil {
			t.Fatal(err)
		}
		a, err := nw.Run(nil, anonlead.ProtoFloodMax, anonlead.WithSeed(3))
		if err != nil {
			t.Fatalf("%s: %v", w.Family, err)
		}
		b, err := prof.Run(nil, anonlead.ProtoFloodMax, anonlead.WithSeed(3))
		if err != nil {
			t.Fatalf("%s: %v", w.Family, err)
		}
		if a.Messages != b.Messages || a.Bits != b.Bits || a.Rounds != b.Rounds ||
			len(a.Leaders) != len(b.Leaders) {
			t.Fatalf("%s: public network diverged from workload graph:\n%+v\n%+v",
				w.Family, a.Result, b.Result)
		}
	}
}
