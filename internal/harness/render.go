package harness

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table for experiment output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// String renders the table with right-aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float compactly for table cells.
func F(x float64) string {
	switch {
	case x == 0:
		return "0"
	case x >= 1e7 || x < 1e-3:
		return fmt.Sprintf("%.3g", x)
	case x >= 100:
		return fmt.Sprintf("%.0f", x)
	default:
		return fmt.Sprintf("%.3g", x)
	}
}

// I formats an int for table cells.
func I(x int) string { return fmt.Sprintf("%d", x) }
