package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"anonlead/internal/epoch"
	"anonlead/internal/obs"
	"anonlead/internal/spectral"
	"anonlead/internal/stats"
)

// ArtifactSchema identifies the BENCH_harness.json format version. Bump it
// when the cell layout changes so trajectory tooling can tell formats apart.
//
// v6 keeps every v5 field and adds the optional per-cell epoch scenario
// identity and aggregates: the scenario descriptor ("epochs=5,fault=crash")
// joins the cell's trajectory identity, and an epochs object carries the
// amortized per-epoch stats of a repeated-election sweep. Both are omitted
// on classic single-election cells, so a sweep without epoch scenarios
// serializes byte-identically to v5 apart from the schema string.
const ArtifactSchema = "anonlead/bench-harness/v6"

// ArtifactSchemaV5 is the previous format: v4 plus the optional per-cell
// round_profile histograms. Still readable; its cells simply carry no
// epoch scenarios.
const ArtifactSchemaV5 = "anonlead/bench-harness/v5"

// ArtifactSchemaV4 is the previous format: v3 plus the resolved profile
// regime in each cell's identity ("estimate" for the streaming
// estimators; omitted for exact). Still readable; its cells simply carry
// no round profiles.
const ArtifactSchemaV4 = "anonlead/bench-harness/v4"

// ArtifactSchemaV3 is the previous format: v2 plus adversary cell identity
// (descriptor, dropped/crashed aggregates), without profile regimes. Still
// readable; its cells align as exact-regime.
const ArtifactSchemaV3 = "anonlead/bench-harness/v3"

// ArtifactSchemaV2 is the previous format: v1 plus per-metric
// distributions and the Wilson success interval, without adversary cell
// identity. Still readable; its cells align as fault-free.
const ArtifactSchemaV2 = "anonlead/bench-harness/v2"

// ArtifactSchemaV1 is the legacy means-only format. benchdiff still reads
// it, downgrading to a means-only comparison.
const ArtifactSchemaV1 = "anonlead/bench-harness/v1"

// ArtifactName is the conventional file name CI uploads for cross-PR perf
// trajectory tracking.
const ArtifactName = "BENCH_harness.json"

// ArtifactDist is the persisted distribution of one per-trial metric: the
// spread around the mean that the flat per-cell fields already carry. All
// values are over the cell's trials.
type ArtifactDist struct {
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
}

// newArtifactDist converts an in-memory distribution to its persisted
// shape (N and Mean live elsewhere in the cell: trials and the flat mean).
func newArtifactDist(d stats.Dist) *ArtifactDist {
	return &ArtifactDist{
		StdDev: d.StdDev, Min: d.Min, Max: d.Max,
		P50: d.P50, P90: d.P90, P99: d.P99,
	}
}

// Dist converts back to the stats shape, rehydrating N and Mean from the
// cell's flat fields (what benchdiff feeds into variance-aware thresholds).
func (d *ArtifactDist) Dist(trials int, mean float64) stats.Dist {
	if d == nil {
		return stats.Dist{N: trials, Mean: mean}
	}
	return stats.Dist{
		N: trials, Mean: mean, StdDev: d.StdDev,
		Min: d.Min, Max: d.Max, P50: d.P50, P90: d.P90, P99: d.P99,
	}
}

// ArtifactCell is one sweep cell in the machine-readable artifact: the
// measured aggregate plus the graph profile and the paper's predicted
// complexities for that cell. The *_dist objects and the success-rate
// interval are schema v2 additions; they are nil/absent in v1 artifacts.
type ArtifactCell struct {
	Protocol    string  `json:"protocol"`
	Family      string  `json:"family"`
	N           int     `json:"n"`
	M           int     `json:"m"`
	Diameter    int     `json:"diameter"`
	MixingTime  int     `json:"tmix"`
	Conductance float64 `json:"phi"`
	PresumedN   int     `json:"presumed_n,omitempty"`
	// Adversary is the canonical fault-injection descriptor of the cell
	// (adversary.Spec.Descriptor; "" = fault-free). Part of the cell's
	// identity for trajectory alignment. Schema v3.
	Adversary string `json:"adversary,omitempty"`
	// ProfileMode is the resolved profile regime behind the cell's
	// tmix/Φ/diameter columns: "estimate" for the streaming estimators,
	// "" (omitted) for the legacy exact regime. Part of the cell's
	// identity for trajectory alignment. Schema v4.
	ProfileMode string `json:"profile_mode,omitempty"`
	// Scenario is the epoch scenario descriptor of a repeated-election
	// cell (epoch.Opts.Descriptor; "" = classic single-election cell).
	// Part of the cell's identity for trajectory alignment. Schema v6.
	Scenario string `json:"scenario,omitempty"`

	Trials       int     `json:"trials"`
	Successes    int     `json:"successes"`
	MultiLeaders int     `json:"multi_leaders"`
	ZeroLeaders  int     `json:"zero_leaders"`
	Messages     float64 `json:"messages"`
	Bits         float64 `json:"bits"`
	Rounds       float64 `json:"rounds"`
	Charged      float64 `json:"charged"`
	// Mean adversary-dropped packets and crash-stopped nodes per trial
	// (schema v3; absent on fault-free cells).
	Dropped      float64 `json:"dropped,omitempty"`
	CrashedNodes float64 `json:"crashed_nodes,omitempty"`

	// Success rate with its ~95% Wilson-score interval (v2).
	SuccessRate float64 `json:"success_rate"`
	SuccessLo   float64 `json:"success_lo"`
	SuccessHi   float64 `json:"success_hi"`

	// Per-trial metric distributions (v2).
	MessagesDist *ArtifactDist `json:"messages_dist,omitempty"`
	BitsDist     *ArtifactDist `json:"bits_dist,omitempty"`
	RoundsDist   *ArtifactDist `json:"rounds_dist,omitempty"`
	ChargedDist  *ArtifactDist `json:"charged_dist,omitempty"`

	// RoundProfile is the cell's deterministic round-resolved histogram —
	// the trials' per-round message/halt bucket counts summed in
	// trial-index order (schema v5; present only when the sweep ran with
	// round profiling enabled).
	RoundProfile *obs.RoundProfile `json:"round_profile,omitempty"`

	// Epochs carries the repeated-election aggregates of an epoch scenario
	// cell — amortized per-epoch cost, recovery time, per-epoch profiles
	// (schema v6; present only on scenario cells).
	Epochs *epoch.CellStats `json:"epochs,omitempty"`

	PredictedMsgs float64 `json:"predicted_msgs"`
	PredictedTime float64 `json:"predicted_time"`
}

// HasDists reports whether the cell carries the v2 distribution objects
// (a v1 artifact decoded into this struct does not).
func (c ArtifactCell) HasDists() bool {
	return c.MessagesDist != nil && c.BitsDist != nil &&
		c.RoundsDist != nil && c.ChargedDist != nil
}

// Artifact is the BENCH_harness.json payload: one orchestrated sweep in a
// machine-readable shape, emitted so CI can archive per-PR results and a
// trajectory tool can diff messages/rounds/throughput across PRs.
type Artifact struct {
	Schema   string `json:"schema"`
	RootSeed uint64 `json:"root_seed"`
	Workers  int    `json:"workers"`
	Shards   int    `json:"shards"`
	// Plan marks a partial artifact: the slice of the planned cell matrix
	// this file carries (a distributed-sweep worker's output). Absent on
	// ordinary full artifacts, so adding it changed no existing bytes;
	// MergeArtifacts consumes it and strips it from the merged result.
	Plan            *ArtifactPlan  `json:"plan,omitempty"`
	ElapsedSeconds  float64        `json:"elapsed_seconds"`
	TrialsPerSecond float64        `json:"trials_per_second"`
	Cells           []ArtifactCell `json:"cells"`
}

// ArtifactPlan is the coverage header of a partial artifact: which plan
// indices of a Total-cell matrix its cells are, in cell order
// (len(Indices) == len(Cells)).
type ArtifactPlan struct {
	Total   int   `json:"total"`
	Indices []int `json:"indices"`
}

// IsPartial reports whether the artifact is a partial covering less than
// its full planned matrix. Trajectory tooling uses this to tell "cells a
// worker was never asked to run" apart from "cells a shrunk sweep
// deleted" — only the latter should trip a removed-cells gate.
func (a Artifact) IsPartial() bool {
	return a.Plan != nil && len(a.Plan.Indices) < a.Plan.Total
}

// NewArtifact assembles the artifact from a sweep's specs and the cells
// they produced. Everything except the wall-clock fields is a deterministic
// function of the specs and root seed.
func NewArtifact(o Orchestrator, specs []CellSpec, cells []Cell, elapsed time.Duration) Artifact {
	workers, shards := o.Effective()
	a := Artifact{
		Schema:         ArtifactSchema,
		Workers:        workers,
		Shards:         shards,
		ElapsedSeconds: elapsed.Seconds(),
		Cells:          make([]ArtifactCell, 0, len(cells)),
	}
	if len(specs) > 0 {
		a.RootSeed = specs[0].Opts.Seed
	}
	totalTrials := 0
	for i, c := range cells {
		prof := c.Profile
		ac := ArtifactCell{
			Protocol:     string(c.Protocol),
			Family:       c.Workload.Family,
			N:            c.Workload.N,
			Trials:       c.Trials,
			Successes:    c.Successes,
			MultiLeaders: c.MultiLeaders,
			ZeroLeaders:  c.ZeroLeaders,
			Messages:     c.Messages,
			Bits:         c.Bits,
			Rounds:       c.Rounds,
			Charged:      c.Charged,
			Dropped:      c.Dropped,
			CrashedNodes: c.CrashedNodes,
			SuccessRate:  c.SuccessRate(),
			MessagesDist: newArtifactDist(c.MessagesDist),
			BitsDist:     newArtifactDist(c.BitsDist),
			RoundsDist:   newArtifactDist(c.RoundsDist),
			ChargedDist:  newArtifactDist(c.ChargedDist),
			RoundProfile: c.RoundProf.Clone(),
			Epochs:       c.EpochStats,
		}
		ac.SuccessLo, ac.SuccessHi = stats.Wilson(c.Successes, c.Trials)
		if prof != nil {
			ac.M = prof.M
			ac.Diameter = prof.Diameter
			ac.MixingTime = prof.MixingTime
			ac.Conductance = prof.Conductance
			ac.PredictedMsgs = predictMsgs(c.Protocol, prof)
			ac.PredictedTime = predictTime(c.Protocol, prof)
			if prof.Estimated {
				ac.ProfileMode = spectral.ModeEstimate.String()
			}
		}
		if i < len(specs) {
			ac.PresumedN = specs[i].Opts.PresumedN
			if adv := specs[i].Opts.Adversary; adv != nil {
				ac.Adversary = adv.Descriptor() // "" for a zero-rate spec
			}
			if eo := specs[i].Opts.Epochs; eo != nil {
				ac.Scenario = eo.Descriptor()
			}
		}
		totalTrials += c.Trials
		a.Cells = append(a.Cells, ac)
	}
	if a.ElapsedSeconds > 0 {
		a.TrialsPerSecond = float64(totalTrials) / a.ElapsedSeconds
	}
	return a
}

// StripTimings returns a copy with the wall-clock fields zeroed, leaving
// only the deterministic content (what golden tests compare).
func (a Artifact) StripTimings() Artifact {
	a.ElapsedSeconds = 0
	a.TrialsPerSecond = 0
	return a
}

// JSON renders the artifact with stable field order, two-space indentation,
// and a trailing newline.
func (a Artifact) JSON() ([]byte, error) {
	buf, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("harness: marshal artifact: %w", err)
	}
	return append(buf, '\n'), nil
}

// WriteFile writes the artifact to path (conventionally ArtifactName).
func (a Artifact) WriteFile(path string) error {
	buf, err := a.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("harness: write artifact: %w", err)
	}
	return nil
}

// ReadArtifact decodes a bench artifact, accepting the current v6 schema
// plus the legacy v5 (no epoch scenarios), v4 (no round profiles), v3 (no
// profile regimes), v2 (no adversary cell identity) and v1 (means only).
// Unknown schemas are rejected so trajectory tooling fails loudly on
// foreign files rather than comparing garbage.
func ReadArtifact(buf []byte) (Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(buf, &a); err != nil {
		return Artifact{}, fmt.Errorf("harness: decode artifact: %w", err)
	}
	switch a.Schema {
	case ArtifactSchema, ArtifactSchemaV5, ArtifactSchemaV4, ArtifactSchemaV3, ArtifactSchemaV2, ArtifactSchemaV1:
		return a, nil
	default:
		return Artifact{}, fmt.Errorf("harness: unknown artifact schema %q (want %s, %s, %s, %s, %s, or %s)",
			a.Schema, ArtifactSchema, ArtifactSchemaV5, ArtifactSchemaV4, ArtifactSchemaV3, ArtifactSchemaV2, ArtifactSchemaV1)
	}
}

// ReadArtifactFile reads and decodes a bench artifact from disk.
func ReadArtifactFile(path string) (Artifact, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return Artifact{}, fmt.Errorf("harness: read artifact: %w", err)
	}
	a, err := ReadArtifact(buf)
	if err != nil {
		return Artifact{}, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}
