package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// ArtifactSchema identifies the BENCH_harness.json format version. Bump it
// when the cell layout changes so trajectory tooling can tell formats apart.
const ArtifactSchema = "anonlead/bench-harness/v1"

// ArtifactName is the conventional file name CI uploads for cross-PR perf
// trajectory tracking.
const ArtifactName = "BENCH_harness.json"

// ArtifactCell is one sweep cell in the machine-readable artifact: the
// measured aggregate plus the graph profile and the paper's predicted
// complexities for that cell.
type ArtifactCell struct {
	Protocol    string  `json:"protocol"`
	Family      string  `json:"family"`
	N           int     `json:"n"`
	M           int     `json:"m"`
	Diameter    int     `json:"diameter"`
	MixingTime  int     `json:"tmix"`
	Conductance float64 `json:"phi"`
	PresumedN   int     `json:"presumed_n,omitempty"`

	Trials       int     `json:"trials"`
	Successes    int     `json:"successes"`
	MultiLeaders int     `json:"multi_leaders"`
	ZeroLeaders  int     `json:"zero_leaders"`
	Messages     float64 `json:"messages"`
	Bits         float64 `json:"bits"`
	Rounds       float64 `json:"rounds"`
	Charged      float64 `json:"charged"`

	PredictedMsgs float64 `json:"predicted_msgs"`
	PredictedTime float64 `json:"predicted_time"`
}

// Artifact is the BENCH_harness.json payload: one orchestrated sweep in a
// machine-readable shape, emitted so CI can archive per-PR results and a
// trajectory tool can diff messages/rounds/throughput across PRs.
type Artifact struct {
	Schema          string         `json:"schema"`
	RootSeed        uint64         `json:"root_seed"`
	Workers         int            `json:"workers"`
	Shards          int            `json:"shards"`
	ElapsedSeconds  float64        `json:"elapsed_seconds"`
	TrialsPerSecond float64        `json:"trials_per_second"`
	Cells           []ArtifactCell `json:"cells"`
}

// NewArtifact assembles the artifact from a sweep's specs and the cells
// they produced. Everything except the wall-clock fields is a deterministic
// function of the specs and root seed.
func NewArtifact(o Orchestrator, specs []CellSpec, cells []Cell, elapsed time.Duration) Artifact {
	workers, shards := o.Effective()
	a := Artifact{
		Schema:         ArtifactSchema,
		Workers:        workers,
		Shards:         shards,
		ElapsedSeconds: elapsed.Seconds(),
		Cells:          make([]ArtifactCell, 0, len(cells)),
	}
	if len(specs) > 0 {
		a.RootSeed = specs[0].Opts.Seed
	}
	totalTrials := 0
	for i, c := range cells {
		prof := c.Profile
		ac := ArtifactCell{
			Protocol:     string(c.Protocol),
			Family:       c.Workload.Family,
			N:            c.Workload.N,
			Trials:       c.Trials,
			Successes:    c.Successes,
			MultiLeaders: c.MultiLeaders,
			ZeroLeaders:  c.ZeroLeaders,
			Messages:     c.Messages,
			Bits:         c.Bits,
			Rounds:       c.Rounds,
			Charged:      c.Charged,
		}
		if prof != nil {
			ac.M = prof.M
			ac.Diameter = prof.Diameter
			ac.MixingTime = prof.MixingTime
			ac.Conductance = prof.Conductance
			ac.PredictedMsgs = predictMsgs(c.Protocol, prof)
			ac.PredictedTime = predictTime(c.Protocol, prof)
		}
		if i < len(specs) {
			ac.PresumedN = specs[i].Opts.PresumedN
		}
		totalTrials += c.Trials
		a.Cells = append(a.Cells, ac)
	}
	if a.ElapsedSeconds > 0 {
		a.TrialsPerSecond = float64(totalTrials) / a.ElapsedSeconds
	}
	return a
}

// StripTimings returns a copy with the wall-clock fields zeroed, leaving
// only the deterministic content (what golden tests compare).
func (a Artifact) StripTimings() Artifact {
	a.ElapsedSeconds = 0
	a.TrialsPerSecond = 0
	return a
}

// JSON renders the artifact with stable field order, two-space indentation,
// and a trailing newline.
func (a Artifact) JSON() ([]byte, error) {
	buf, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("harness: marshal artifact: %w", err)
	}
	return append(buf, '\n'), nil
}

// WriteFile writes the artifact to path (conventionally ArtifactName).
func (a Artifact) WriteFile(path string) error {
	buf, err := a.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("harness: write artifact: %w", err)
	}
	return nil
}
