package harness

import (
	"sync"

	"anonlead"
	"anonlead/internal/graph"
	"anonlead/internal/spectral"
)

// The process-wide cell-preparation cache. Sweep cells are identified by a
// canonical (family, n, graph-seed, resolved profile mode) descriptor:
// graph construction and profiling are pure functions of it, so repeated
// cells — the same workload swept under several protocols, the
// knowledge-ablation factor grid, or a scaling cell run twice — reuse one
// build and one profile instead of recomputing them. Entries are computed
// once under a per-entry latch, so concurrent sweeps asking for the same
// cell block on one computation rather than duplicating it.
var cellCache = struct {
	sync.Mutex
	graphs   map[graphCacheKey]*graphEntry
	profiles map[profileCacheKey]*profileEntry
	hits     uint64
	misses   uint64
}{
	graphs:   make(map[graphCacheKey]*graphEntry),
	profiles: make(map[profileCacheKey]*profileEntry),
}

type graphCacheKey struct {
	family string
	n      int
	seed   uint64
}

type profileCacheKey struct {
	family string
	n      int
	seed   uint64
	mode   spectral.Mode // resolved: exact or estimate, never auto
}

type graphEntry struct {
	once sync.Once
	g    *graph.Graph
	// anw is the graph wrapped as a public network — built alongside the
	// graph so repeated cells also skip the O(m log n) structural
	// re-validation inside NewNetworkFromGraph. Sharing one Network across
	// a cell's trials is already the orchestrator's semantics: every Run
	// builds its own simulator instance, the Network itself is read-only.
	anw *anonlead.Network
	err error
}

type profileEntry struct {
	once sync.Once
	prof *spectral.Profile
	err  error
}

// cachedGraph builds (or reuses) the workload graph for (w, seed),
// together with its public-network wrap.
func cachedGraph(w Workload, seed uint64) (*graph.Graph, *anonlead.Network, error) {
	k := graphCacheKey{w.Family, w.N, seed}
	cellCache.Lock()
	e, ok := cellCache.graphs[k]
	if !ok {
		e = &graphEntry{}
		cellCache.graphs[k] = e
	}
	cellCache.Unlock()
	e.once.Do(func() {
		e.g, e.err = w.BuildGraph(seed)
		if e.err == nil {
			e.anw, e.err = anonlead.NewNetworkFromGraph(e.g)
		}
	})
	return e.g, e.anw, e.err
}

// cachedSpectralProfile computes (or reuses) the spectral profile of the
// workload cell under the given mode. The mode is resolved before keying,
// so auto shares the entry of whichever regime it lands on.
func cachedSpectralProfile(w Workload, seed uint64, mode spectral.Mode) (*spectral.Profile, error) {
	k := profileCacheKey{w.Family, w.N, seed, mode.Resolve(w.N)}
	cellCache.Lock()
	e, ok := cellCache.profiles[k]
	if ok {
		cellCache.hits++
	} else {
		cellCache.misses++
		e = &profileEntry{}
		cellCache.profiles[k] = e
	}
	cellCache.Unlock()
	e.once.Do(func() {
		g, _, err := cachedGraph(w, seed)
		if err != nil {
			e.err = err
			return
		}
		e.prof, e.err = spectral.ProfileGraphMode(g, k.mode, seed)
	})
	return e.prof, e.err
}

// ProfileCacheStats returns the cumulative profile-cache hit/miss counters
// (a hit is a lookup that found an existing entry, even one still being
// computed). The scaling experiment reports them; tests assert on deltas.
func ProfileCacheStats() (hits, misses uint64) {
	cellCache.Lock()
	defer cellCache.Unlock()
	return cellCache.hits, cellCache.misses
}

// ResetProfileCache drops every cached graph and profile and zeroes the
// counters. Tests use it to measure cold-vs-warm behavior; sweeps never
// need to.
func ResetProfileCache() {
	cellCache.Lock()
	defer cellCache.Unlock()
	cellCache.graphs = make(map[graphCacheKey]*graphEntry)
	cellCache.profiles = make(map[profileCacheKey]*profileEntry)
	cellCache.hits, cellCache.misses = 0, 0
}
