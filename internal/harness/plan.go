package harness

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file is the sweep planner: the canonical, deterministic expansion
// of the artifact cell matrix (Table 1 + the X4 knowledge ablation + the
// F1-F5 fault ladders) into an ordered spec list, plus the selector and
// partition machinery a distributed sweep uses to shard that list across
// worker processes.
//
// The plan IS the artifact layout: `lebench -exp sweeps` executes the
// sections in plan order and appends their cells in plan order, so index
// i of Plan.Specs() is cell i of the emitted artifact. A worker given a
// cell selector runs exactly the selected specs (per-trial seeds are pure
// functions of the root seed and the cell, never of which process runs
// it), records the plan indices it covered in its partial artifact, and
// MergeArtifacts reassembles the full artifact byte-identically to a
// single-process sweep.

// SectionKind names the renderer a plan section belongs to.
type SectionKind string

// The plan section kinds, in the order SweepsPlan emits them. SectionEpochs
// belongs to the separate epochs experiment (EpochsPlan, `lebench -exp
// epochs`) and never appears in SweepsPlan's matrix.
const (
	SectionTable1    SectionKind = "table1"
	SectionRevocable SectionKind = "revocable"
	SectionKnowledge SectionKind = "knowledge"
	SectionFaults    SectionKind = "faults"
	SectionEpochs    SectionKind = "epochs"
)

// PlanSection is one contiguous run of cells sharing a renderer: a Table-1
// family sweep, the T1-d revocable rows, one knowledge-ablation workload,
// or one fault ladder. The section carries whatever its renderer needs
// beyond the cells themselves.
type PlanSection struct {
	Kind  SectionKind
	Title string
	// Workload and Factors describe a knowledge section: the fixed
	// workload and the presumed-n factors its specs sweep.
	Workload Workload
	Factors  []float64
	// Fault is the generating sweep of a faults section (the renderer
	// needs the adversary descriptors and the ladder title).
	Fault FaultSweep
	// Epoch is the generating sweep of an epochs section (the renderer
	// needs the scenario and the adversary ladder).
	Epoch EpochSweep
	// Specs are the section's cells in execution (= artifact) order.
	Specs []CellSpec
}

// Plan is the ordered cell matrix of one artifact sweep.
type Plan struct {
	Sections []PlanSection
}

// Specs flattens the plan into the artifact-ordered spec list. Index i of
// the result is cell i of the artifact a full sweep emits — the contract
// every cell selector is resolved against.
func (p Plan) Specs() []CellSpec {
	var specs []CellSpec
	for _, sec := range p.Sections {
		specs = append(specs, sec.Specs...)
	}
	return specs
}

// Len is the number of cells in the plan.
func (p Plan) Len() int {
	n := 0
	for _, sec := range p.Sections {
		n += len(sec.Specs)
	}
	return n
}

// planPick mirrors lebench's quick/full matrix selection.
func planPick(quick bool, full, reduced []int) []int {
	if quick {
		return reduced
	}
	return full
}

// planTrials resolves a trial count: an explicit override wins over the
// experiment default.
func planTrials(override, def int) int {
	if override > 0 {
		return override
	}
	return def
}

// Table1Plan expands the Table 1 matrix: T1-a (IRE), T1-b (Gilbert-class),
// T1-c (flooding class) across families, the diameter-2 clique-of-cliques
// cells, and the T1-d revocable rows. trials is an override (0 = the
// experiment defaults: 10 full / 8 quick, 6 for revocable). The quick
// matrix is CI's regression-gate workload — changing it requires
// regenerating testdata/BENCH_baseline.json (make baseline).
func Table1Plan(quick bool, trials int, seed uint64) []PlanSection {
	t := planTrials(trials, 10)
	if quick {
		t = planTrials(trials, 8)
	}
	opts := TrialOpts{Trials: t, Seed: seed}
	type sweep struct {
		title  string
		proto  Protocol
		family string
		sizes  []int
	}
	sweeps := []sweep{
		{"T1-a IRE (this work) on expanders", ProtoIRE, "expander",
			planPick(quick, []int{32, 64, 128, 256, 512}, []int{32, 64, 128, 256})},
		{"T1-a IRE (this work) on hypercubes", ProtoIRE, "hypercube",
			planPick(quick, []int{32, 64, 128, 256, 512}, []int{32, 64, 128, 256})},
		{"T1-a IRE (this work) on cycles", ProtoIRE, "cycle",
			planPick(quick, []int{16, 32, 64, 96, 128}, []int{16, 32, 64, 96})},
		{"T1-a IRE (this work) on complete graphs", ProtoIRE, "complete",
			planPick(quick, []int{32, 64, 128, 256}, []int{32, 64, 128})},
		{"T1-a IRE (this work) on diameter-2 clique-of-cliques", ProtoIRE, "diam2",
			planPick(quick, []int{33, 65, 129, 257}, []int{33, 65, 129})},
		{"T1-b Gilbert-class baseline on expanders", ProtoWalkNotify, "expander",
			planPick(quick, []int{32, 64, 128, 256, 512}, []int{32, 64, 128, 256})},
		{"T1-b Gilbert-class baseline on cycles", ProtoWalkNotify, "cycle",
			planPick(quick, []int{16, 32, 64, 96, 128}, []int{16, 32, 64, 96})},
		{"T1-c FloodMax (Kutten-class) on expanders", ProtoFlood, "expander",
			planPick(quick, []int{32, 64, 128, 256, 512}, []int{32, 64, 128, 256})},
		{"T1-c FloodMax (Kutten-class) on complete graphs", ProtoFlood, "complete",
			planPick(quick, []int{32, 64, 128, 256}, []int{32, 64, 128})},
		{"T1-c FloodMax (Kutten-class) on diameter-2 clique-of-cliques", ProtoFlood, "diam2",
			planPick(quick, []int{33, 65, 129, 257}, []int{33, 65, 129})},
	}
	sections := make([]PlanSection, 0, len(sweeps)+1)
	for _, sw := range sweeps {
		sections = append(sections, PlanSection{
			Kind:  SectionTable1,
			Title: sw.title,
			Specs: SweepSpecs(sw.proto, sw.family, sw.sizes, opts),
		})
	}

	// T1-d: the revocable protocol at faithful parameters on tiny complete
	// graphs (where the Theorem 3 polynomials are simulable). Quick keeps
	// 6 trials: below that the Wilson intervals of a full success collapse
	// (k/k -> 0/k) still overlap, so the benchdiff success gate would be
	// vacuous on these cells.
	rt := planTrials(trials, 6)
	sizes := planPick(quick, []int{3, 4, 6, 8}, []int{3, 4, 6})
	ropts := TrialOpts{Trials: rt, Seed: seed, RevocableUseProfileIso: true}
	sections = append(sections, PlanSection{
		Kind:  SectionRevocable,
		Title: "T1-d Revocable LE (this work, faithful Theorem 3 schedule) on complete graphs",
		Specs: SweepSpecs(ProtoRevocable, "complete", sizes, ropts),
	})
	return sections
}

// KnowledgePlan expands the X4 knowledge ablation (after Dieudonné-Pelc):
// presumed-n factor sweeps on an expander and on the diameter-2
// clique-of-cliques, one section per workload.
func KnowledgePlan(quick bool, trials int, seed uint64) []PlanSection {
	t := planTrials(trials, 10)
	if quick {
		t = planTrials(trials, 6)
	}
	factors := []float64{0.25, 0.5, 1, 2, 4}
	workloads := []Workload{
		{Family: "expander", N: 128},
		{Family: "diam2", N: 65},
	}
	sections := make([]PlanSection, 0, len(workloads))
	for _, w := range workloads {
		sections = append(sections, PlanSection{
			Kind:     SectionKnowledge,
			Title:    fmt.Sprintf("X4 knowledge ablation on %s n=%d", w.Family, w.N),
			Workload: w,
			Factors:  factors,
			Specs:    KnowledgeSpecs(w, factors, t, seed),
		})
	}
	return sections
}

// FaultsPlan expands the F1-F5 fault-injection resilience ladders, one
// section per ladder.
func FaultsPlan(quick bool, trials int, seed uint64) []PlanSection {
	t := planTrials(trials, 10)
	if quick {
		t = planTrials(trials, 6)
	}
	fs := FaultSweeps(quick)
	sections := make([]PlanSection, 0, len(fs))
	for _, f := range fs {
		sections = append(sections, PlanSection{
			Kind:  SectionFaults,
			Title: f.Title,
			Fault: f,
			Specs: f.CellSpecs(t, seed),
		})
	}
	return sections
}

// SweepsPlan is the canonical artifact cell matrix — exactly what
// `lebench -exp sweeps` runs and CI's bench gate diffs: Table 1 (with the
// revocable rows), the knowledge ablation, and the fault ladders, in
// artifact order. A distributed sweep plans with this function, shards
// the flattened spec list across workers, and merges the partials back
// into the same artifact a single process would have written.
func SweepsPlan(quick bool, trials int, seed uint64) Plan {
	var sections []PlanSection
	sections = append(sections, Table1Plan(quick, trials, seed)...)
	sections = append(sections, KnowledgePlan(quick, trials, seed)...)
	sections = append(sections, FaultsPlan(quick, trials, seed)...)
	return Plan{Sections: sections}
}

// selRange is one half-open [lo, hi) selector term.
type selRange struct{ lo, hi int }

// CellSelector names a subset of plan indices: comma-separated terms,
// each a single index "i" or a half-open range "lo:hi". Terms must be
// ascending and non-overlapping, so a selector has exactly one canonical
// index list and duplicate work cannot be expressed by accident.
type CellSelector struct {
	ranges []selRange
}

// ParseCellSelector parses a selector like "0:5", "7", or "0:5,7,9:12".
func ParseCellSelector(s string) (CellSelector, error) {
	if strings.TrimSpace(s) == "" {
		return CellSelector{}, fmt.Errorf("harness: empty cell selector")
	}
	var sel CellSelector
	last := -1
	for _, term := range strings.Split(s, ",") {
		term = strings.TrimSpace(term)
		lo, hi, err := parseSelTerm(term)
		if err != nil {
			return CellSelector{}, err
		}
		if lo <= last {
			return CellSelector{}, fmt.Errorf("harness: cell selector %q: terms must be ascending and non-overlapping", s)
		}
		sel.ranges = append(sel.ranges, selRange{lo, hi})
		last = hi - 1
	}
	return sel, nil
}

// parseSelTerm parses one selector term ("i" or "lo:hi", hi exclusive).
func parseSelTerm(term string) (lo, hi int, err error) {
	loStr, hiStr, isRange := strings.Cut(term, ":")
	lo, err = strconv.Atoi(loStr)
	if err != nil || lo < 0 {
		return 0, 0, fmt.Errorf("harness: bad cell selector term %q", term)
	}
	if !isRange {
		return lo, lo + 1, nil
	}
	hi, err = strconv.Atoi(hiStr)
	if err != nil || hi <= lo {
		return 0, 0, fmt.Errorf("harness: bad cell selector term %q (want lo:hi with hi > lo)", term)
	}
	return lo, hi, nil
}

// SelectorFromIndices builds the canonical selector covering exactly the
// given plan indices (sorted, deduplicated, merged into ranges).
func SelectorFromIndices(indices []int) (CellSelector, error) {
	if len(indices) == 0 {
		return CellSelector{}, fmt.Errorf("harness: empty cell selector")
	}
	sorted := append([]int(nil), indices...)
	sort.Ints(sorted)
	var sel CellSelector
	for _, i := range sorted {
		if i < 0 {
			return CellSelector{}, fmt.Errorf("harness: negative cell index %d", i)
		}
		if n := len(sel.ranges); n > 0 && sel.ranges[n-1].hi == i {
			sel.ranges[n-1].hi = i + 1
			continue
		}
		if n := len(sel.ranges); n > 0 && i < sel.ranges[n-1].hi {
			continue // duplicate
		}
		sel.ranges = append(sel.ranges, selRange{i, i + 1})
	}
	return sel, nil
}

// String renders the canonical selector text ("0:5,7,9:12") — what
// ParseCellSelector accepts and the lebench -cells flag takes.
func (s CellSelector) String() string {
	terms := make([]string, len(s.ranges))
	for i, r := range s.ranges {
		if r.hi == r.lo+1 {
			terms[i] = strconv.Itoa(r.lo)
		} else {
			terms[i] = fmt.Sprintf("%d:%d", r.lo, r.hi)
		}
	}
	return strings.Join(terms, ",")
}

// IsZero reports whether the selector selects nothing.
func (s CellSelector) IsZero() bool { return len(s.ranges) == 0 }

// Indices expands the selector against a plan of the given size,
// validating every index is in [0, total).
func (s CellSelector) Indices(total int) ([]int, error) {
	var idxs []int
	for _, r := range s.ranges {
		if r.hi > total {
			return nil, fmt.Errorf("harness: cell selector %s out of range for a %d-cell plan", s, total)
		}
		for i := r.lo; i < r.hi; i++ {
			idxs = append(idxs, i)
		}
	}
	return idxs, nil
}

// PartitionPlan cuts a plan of total cells into at most workers contiguous
// selectors of nearly equal size (the distributed sweep's shard map).
// Every cell appears in exactly one selector; when workers exceeds total,
// only total selectors are returned.
func PartitionPlan(total, workers int) []CellSelector {
	if total <= 0 || workers <= 0 {
		return nil
	}
	if workers > total {
		workers = total
	}
	sels := make([]CellSelector, 0, workers)
	per, extra := total/workers, total%workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + per
		if w < extra {
			hi++
		}
		sels = append(sels, CellSelector{ranges: []selRange{{lo, hi}}})
		lo = hi
	}
	return sels
}
