package harness

import (
	"reflect"
	"strings"
	"testing"

	"anonlead/internal/adversary"
	"anonlead/internal/sim"
)

// TestFaultSweepAnchorsMatchFaultFree: the zero-spec anchor cell of a
// fault sweep is exactly the cell an unperturbed run produces.
func TestFaultSweepAnchorsMatchFaultFree(t *testing.T) {
	f := FaultSweep{
		Protocol: ProtoIRE,
		Workload: Workload{Family: "cycle", N: 16},
		Specs:    lossLadder(0.9),
	}
	specs := f.CellSpecs(3, 7)
	if len(specs) != 2 || !specs[0].Opts.Adversary.IsZero() || specs[1].Opts.Adversary.Loss != 0.9 {
		t.Fatalf("CellSpecs wrong shape: %+v", specs)
	}
	cells, err := RunSweepSequential(specs)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunCell(ProtoIRE, f.Workload, TrialOpts{Trials: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cells[0], plain) {
		t.Fatalf("anchor cell differs from fault-free run:\nanchor: %+v\nplain:  %+v", cells[0], plain)
	}
}

// TestFaultInjectionDegradesElection: heavy loss must visibly perturb the
// run — packets dropped, and election no better than the anchor.
func TestFaultInjectionDegradesElection(t *testing.T) {
	w := Workload{Family: "expander", N: 32}
	anchor, err := RunCell(ProtoIRE, w, TrialOpts{Trials: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := RunCell(ProtoIRE, w, TrialOpts{Trials: 4, Seed: 3,
		Adversary: &adversary.Spec{Loss: 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Dropped == 0 {
		t.Fatal("loss 0.9 dropped nothing")
	}
	if lossy.Successes > anchor.Successes {
		t.Fatalf("loss 0.9 improved success: %d > %d", lossy.Successes, anchor.Successes)
	}
	if lossy.Successes == anchor.Successes && anchor.Successes == lossy.Trials {
		t.Fatalf("loss 0.9 left every trial successful (%d/%d) — adversary inert?",
			lossy.Successes, lossy.Trials)
	}

	// Crash-stop: the crashed-node count reaches the cell aggregates.
	crashed, err := RunCell(ProtoIRE, w, TrialOpts{Trials: 4, Seed: 3,
		Adversary: &adversary.Spec{CrashFraction: 0.5, CrashBy: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if crashed.CrashedNodes == 0 {
		t.Fatal("crash fraction 0.5 crashed nobody")
	}
}

// TestFaultSweepsMatrix sanity-checks the experiment matrix: anchors
// first, severities increasing, and a render that names the adversaries.
func TestFaultSweepsMatrix(t *testing.T) {
	for _, quick := range []bool{true, false} {
		sweeps := FaultSweeps(quick)
		if len(sweeps) < 5 {
			t.Fatalf("quick=%v: only %d sweeps", quick, len(sweeps))
		}
		for _, f := range sweeps {
			if len(f.Specs) < 2 {
				t.Fatalf("%s: no severity steps", f.Title)
			}
			if !f.Specs[0].IsZero() {
				t.Fatalf("%s: first spec is not the fault-free anchor", f.Title)
			}
			for i, s := range f.Specs {
				if err := s.Validate(); err != nil {
					t.Fatalf("%s spec %d: %v", f.Title, i, err)
				}
			}
		}
	}
}

func TestRenderFaults(t *testing.T) {
	f := FaultSweep{
		Title:    "loss demo",
		Protocol: ProtoFlood,
		Workload: Workload{Family: "complete", N: 12},
		Specs:    lossLadder(0.5),
	}
	cells, err := RunSweepSequential(f.CellSpecs(2, 5))
	if err != nil {
		t.Fatal(err)
	}
	out := RenderFaults(f, cells)
	for _, want := range []string{"loss demo", "none", "loss=0.5", "xmsgs", "dropped"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestRevocableCrashSweepDeterminism pins the F5 cells (revocable LE
// under crash-stop): the sweep template carries the Theorem 3 schedule
// knobs through CellSpecs, crashes actually land, and the cells are
// byte-identical between the sequential reference and the orchestrator
// under every scheduler.
func TestRevocableCrashSweepDeterminism(t *testing.T) {
	sweeps := FaultSweeps(true)
	var f5 *FaultSweep
	for i := range sweeps {
		if sweeps[i].Protocol == ProtoRevocable {
			f5 = &sweeps[i]
		}
	}
	if f5 == nil {
		t.Fatal("quick fault matrix has no revocable sweep")
	}
	specs := f5.CellSpecs(2, 9)
	for _, s := range specs {
		if !s.Opts.RevocableUseProfileIso || s.Opts.RevocableMaxRounds == 0 {
			t.Fatalf("sweep template lost the revocable knobs: %+v", s.Opts)
		}
	}
	ref, err := RunSweepSequential(specs)
	if err != nil {
		t.Fatal(err)
	}
	if !specs[0].Opts.Adversary.IsZero() {
		t.Fatal("first F5 spec is not the fault-free anchor")
	}
	crashed := false
	for _, c := range ref[1:] {
		if c.CrashedNodes > 0 {
			crashed = true
		}
	}
	if !crashed {
		t.Fatalf("crash ladder crashed nobody: %+v", ref)
	}
	for _, sched := range []sim.Scheduler{sim.Sequential, sim.WorkerPool, sim.Actors} {
		s2 := f5.CellSpecs(2, 9)
		for i := range s2 {
			s2[i].Opts.Scheduler = sched
		}
		got, err := (Orchestrator{Workers: 3, Shards: 2}).RunSweep(s2)
		if err != nil {
			t.Fatalf("scheduler %v: %v", sched, err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("scheduler %v: orchestrated F5 cells differ from sequential", sched)
		}
	}
}

// TestRevocableUnderFaultsFailsSoftly: a faulted revocable election that
// cannot converge (everyone crash-stops) is a measured unsuccessful
// trial, not a sweep-aborting error.
func TestRevocableUnderFaultsFailsSoftly(t *testing.T) {
	cell, err := RunCell(ProtoRevocable, Workload{Family: "complete", N: 4},
		TrialOpts{Trials: 2, Seed: 5, RevocableUseProfileIso: true, RevocableMaxRounds: 50_000,
			Adversary: &adversary.Spec{CrashFraction: 1, CrashBy: 0}})
	if err != nil {
		t.Fatalf("all-crash revocable cell errored: %v", err)
	}
	if cell.Successes != 0 || cell.CrashedNodes != 4 {
		t.Fatalf("all-crash cell wrong: %+v", cell)
	}
}
