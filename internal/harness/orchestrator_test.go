package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"anonlead/internal/adversary"
	"anonlead/internal/sim"
)

// determinismSpecs is a small cross-protocol, cross-family sweep matrix
// used by the bit-identity tests, including fault-injected cells: the
// adversary layer must be exactly as scheduler-independent as the
// protocols underneath it.
func determinismSpecs(seed uint64) []CellSpec {
	opts := TrialOpts{Trials: 4, Seed: seed}
	faulty := TrialOpts{Trials: 4, Seed: seed, Adversary: &adversary.Spec{
		Loss: 0.1, CrashFraction: 0.2, CrashBy: 8, DelayProb: 0.3, MaxDelay: 2}}
	churny := TrialOpts{Trials: 4, Seed: seed, Adversary: &adversary.Spec{
		Churn: 0.3, ChurnPreserve: true}}
	return []CellSpec{
		{Protocol: ProtoIRE, Workload: Workload{Family: "expander", N: 32}, Opts: opts},
		{Protocol: ProtoIRE, Workload: Workload{Family: "cycle", N: 16}, Opts: opts},
		{Protocol: ProtoIRE, Workload: Workload{Family: "diam2", N: 17}, Opts: opts},
		{Protocol: ProtoFlood, Workload: Workload{Family: "complete", N: 16}, Opts: opts},
		{Protocol: ProtoWalkNotify, Workload: Workload{Family: "torus", N: 16}, Opts: opts},
		{Protocol: ProtoIRE, Workload: Workload{Family: "expander", N: 32}, Opts: faulty},
		{Protocol: ProtoFlood, Workload: Workload{Family: "complete", N: 16}, Opts: churny},
	}
}

// TestParallelHarnessDeterminism is the acceptance gate of the orchestrator:
// a sweep fanned out over a sharded worker pool must produce output
// byte-identical to the sequential reference for the same root seed — same
// cells, same rendered tables, same JSON artifact.
func TestParallelHarnessDeterminism(t *testing.T) {
	specs := determinismSpecs(17)
	seq, err := RunSweepSequential(specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []Orchestrator{
		{Workers: 8, Shards: 4},
		{Workers: 3, Shards: 7},
		{Workers: 1, Shards: 1},
	} {
		par, err := o.RunSweep(specs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d shards=%d: cells differ from sequential:\nseq: %+v\npar: %+v",
				o.Workers, o.Shards, seq, par)
		}
		// Rendered artifacts must match byte for byte.
		seqTable := RenderTable1("determinism", RowsFromCells(seq))
		parTable := RenderTable1("determinism", RowsFromCells(par))
		if seqTable != parTable {
			t.Fatalf("rendered tables differ:\n%s\nvs\n%s", seqTable, parTable)
		}
		seqJSON, err := NewArtifact(o, specs, seq, 0).StripTimings().JSON()
		if err != nil {
			t.Fatal(err)
		}
		parJSON, err := NewArtifact(o, specs, par, 0).StripTimings().JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seqJSON, parJSON) {
			t.Fatalf("JSON artifacts differ:\n%s\nvs\n%s", seqJSON, parJSON)
		}
	}

	// The same sweep — fault-injected cells included — must be
	// bit-identical under every simulator scheduler, not just every
	// orchestrator shape.
	for _, s := range []sim.Scheduler{sim.WorkerPool, sim.Actors} {
		scheduled := determinismSpecs(17)
		for i := range scheduled {
			scheduled[i].Opts.Scheduler = s
		}
		got, err := RunSweepSequential(scheduled)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, got) {
			t.Fatalf("scheduler %v: cells differ from sequential reference", s)
		}
	}
}

// TestZeroRateAdversaryArtifactByteIdentical is the adversary subsystem's
// regression contract: configuring a zero-rate adversary on every cell of
// a sweep must produce a JSON artifact byte-identical to the unperturbed
// sweep — same trials, same metrics, same (absent) adversary descriptors.
func TestZeroRateAdversaryArtifactByteIdentical(t *testing.T) {
	plain := determinismSpecs(23)[:5] // the fault-free cells
	zeroed := determinismSpecs(23)[:5]
	for i := range zeroed {
		zeroed[i].Opts.Adversary = &adversary.Spec{}
	}
	o := Orchestrator{Workers: 4, Shards: 2}
	baseCells, err := o.RunSweep(plain)
	if err != nil {
		t.Fatal(err)
	}
	zeroCells, err := o.RunSweep(zeroed)
	if err != nil {
		t.Fatal(err)
	}
	baseJSON, err := NewArtifact(o, plain, baseCells, 0).StripTimings().JSON()
	if err != nil {
		t.Fatal(err)
	}
	zeroJSON, err := NewArtifact(o, zeroed, zeroCells, 0).StripTimings().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(baseJSON, zeroJSON) {
		t.Fatalf("zero-rate adversary changed the artifact:\n%s\nvs\n%s", baseJSON, zeroJSON)
	}
}

// TestTrialSeedSplitting checks the per-trial seed derivation is a pure
// function of (root, cell, trial) and separates streams across all three.
func TestTrialSeedSplitting(t *testing.T) {
	w := Workload{Family: "cycle", N: 16}
	if TrialSeed(1, w, 0) != TrialSeed(1, w, 0) {
		t.Fatal("TrialSeed not deterministic")
	}
	seen := map[uint64]string{}
	add := func(s uint64, what string) {
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between %s and %s", prev, what)
		}
		seen[s] = what
	}
	for tr := 0; tr < 8; tr++ {
		add(TrialSeed(1, w, tr), "trial variation")
	}
	add(TrialSeed(2, w, 0), "root variation")
	add(TrialSeed(1, Workload{Family: "cycle", N: 17}, 0), "size variation")
	add(TrialSeed(1, Workload{Family: "torus", N: 16}, 0), "family variation")
}

// TestOrchestratorShutdownOnTrialError checks the pool stops on a failing
// trial, drains cleanly (no hang), and reports a useful error even when
// healthy cells surround the poisoned one.
func TestOrchestratorShutdownOnTrialError(t *testing.T) {
	opts := TrialOpts{Trials: 3, Seed: 5}
	specs := []CellSpec{
		{Protocol: ProtoIRE, Workload: Workload{Family: "cycle", N: 8}, Opts: opts},
		{Protocol: Protocol("nope"), Workload: Workload{Family: "cycle", N: 8}, Opts: opts},
		{Protocol: ProtoIRE, Workload: Workload{Family: "complete", N: 8}, Opts: opts},
		{Protocol: ProtoIRE, Workload: Workload{Family: "torus", N: 9}, Opts: opts},
	}
	done := make(chan error, 1)
	go func() {
		_, err := Orchestrator{Workers: 4, Shards: 2}.RunSweep(specs)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("poisoned sweep returned nil error")
		}
		if !strings.Contains(err.Error(), "nope") {
			t.Fatalf("error does not name the bad protocol: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker pool did not shut down on trial error")
	}

	// A build-phase failure (unknown family) shuts down the same way.
	specs[1] = CellSpec{Protocol: ProtoIRE, Workload: Workload{Family: "nosuch", N: 8}, Opts: opts}
	if _, err := (Orchestrator{Workers: 2}).RunSweep(specs); err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("build error not surfaced: %v", err)
	}
}

// TestOrchestratorStreamsCells checks OnCell fires exactly once per spec
// with the same cell the result slice carries.
func TestOrchestratorStreamsCells(t *testing.T) {
	specs := determinismSpecs(11)
	var mu sync.Mutex
	streamed := map[int]Cell{}
	o := Orchestrator{Workers: 4, Shards: 3, OnCell: func(i int, c Cell) {
		mu.Lock()
		defer mu.Unlock()
		if _, dup := streamed[i]; dup {
			t.Errorf("cell %d streamed twice", i)
		}
		streamed[i] = c
	}}
	cells, err := o.RunSweep(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(specs) {
		t.Fatalf("streamed %d cells, want %d", len(streamed), len(specs))
	}
	for i, c := range cells {
		if !reflect.DeepEqual(streamed[i], c) {
			t.Fatalf("streamed cell %d differs from returned cell", i)
		}
	}
}

// TestArtifactGolden pins the BENCH_harness.json format: a fixed-seed sweep
// must serialize to exactly the committed golden bytes (timings stripped —
// they are the only nondeterministic fields).
func TestArtifactGolden(t *testing.T) {
	opts := TrialOpts{Trials: 2, Seed: 5}
	specs := []CellSpec{
		{Protocol: ProtoIRE, Workload: Workload{Family: "complete", N: 16}, Opts: opts},
		{Protocol: ProtoFlood, Workload: Workload{Family: "diam2", N: 17}, Opts: opts},
		{Protocol: ProtoIRE, Workload: Workload{Family: "cycle", N: 12},
			Opts: TrialOpts{Trials: 2, Seed: 5, PresumedN: 6}},
		{Protocol: ProtoFlood, Workload: Workload{Family: "complete", N: 16},
			Opts: TrialOpts{Trials: 2, Seed: 5,
				Adversary: &adversary.Spec{Loss: 0.2, CrashFraction: 0.25, CrashBy: 4}}},
	}
	o := Orchestrator{Workers: 2, Shards: 2}
	cells, err := o.RunSweep(specs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewArtifact(o, specs, cells, 1500*time.Millisecond).StripTimings().JSON()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "bench_harness_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("artifact drifted from golden (UPDATE_GOLDEN=1 regenerates):\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestArtifactTimings checks the wall-clock derived fields.
func TestArtifactTimings(t *testing.T) {
	opts := TrialOpts{Trials: 3, Seed: 5}
	specs := []CellSpec{{Protocol: ProtoIRE, Workload: Workload{Family: "cycle", N: 8}, Opts: opts}}
	cells, err := RunSweepSequential(specs)
	if err != nil {
		t.Fatal(err)
	}
	a := NewArtifact(Orchestrator{}, specs, cells, 2*time.Second)
	if a.ElapsedSeconds != 2 {
		t.Fatalf("elapsed %v", a.ElapsedSeconds)
	}
	if a.TrialsPerSecond != 1.5 {
		t.Fatalf("trials/sec %v, want 1.5", a.TrialsPerSecond)
	}
	if a.RootSeed != 5 {
		t.Fatalf("root seed %v", a.RootSeed)
	}
	if s := a.StripTimings(); s.ElapsedSeconds != 0 || s.TrialsPerSecond != 0 {
		t.Fatalf("StripTimings left %+v", s)
	}
}

// TestArtifactWriteFile round-trips the artifact through a file.
func TestArtifactWriteFile(t *testing.T) {
	a := Artifact{Schema: ArtifactSchema, RootSeed: 1}
	path := filepath.Join(t.TempDir(), ArtifactName)
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), ArtifactSchema) {
		t.Fatalf("artifact file missing schema:\n%s", buf)
	}
}

// TestAblationKnowledge checks the X4 sweep: truthful n succeeds, presumed
// sizes scale with the factor, and the renderer names the experiment.
func TestAblationKnowledge(t *testing.T) {
	w := Workload{Family: "complete", N: 24}
	points, prof, err := AblationKnowledge(Orchestrator{Workers: 4}, w, []float64{0.5, 1, 2}, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points %d", len(points))
	}
	if points[0].PresumedN != 12 || points[1].PresumedN != 24 || points[2].PresumedN != 48 {
		t.Fatalf("presumed sizes wrong: %+v", points)
	}
	if points[1].Successes < 2 {
		t.Fatalf("truthful-n success %d/3", points[1].Successes)
	}
	out := RenderAblationKnowledge(w, prof, points)
	if !strings.Contains(out, "X4") || !strings.Contains(out, "presumed n") {
		t.Fatalf("render incomplete:\n%s", out)
	}
}

// TestPresumedNChangesProtocolBehavior pins that the knowledge knob reaches
// the protocol: a larger presumed n stretches the IRE schedule (more
// rounds) on the same graph and seeds.
func TestPresumedNChangesProtocolBehavior(t *testing.T) {
	w := Workload{Family: "complete", N: 16}
	truth, err := RunCell(ProtoIRE, w, TrialOpts{Trials: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	inflated, err := RunCell(ProtoIRE, w, TrialOpts{Trials: 2, Seed: 3, PresumedN: 64})
	if err != nil {
		t.Fatal(err)
	}
	if inflated.Rounds <= truth.Rounds {
		t.Fatalf("presumed n=64 rounds %v not above truthful %v", inflated.Rounds, truth.Rounds)
	}
}
