// Package harness runs the paper-reproduction experiments: it builds
// topology cells, executes protocol trials through the public anonlead
// API (the registry-backed Network.Run session surface), aggregates cost
// metrics and success rates, and renders the Table 1 rows and figure
// series that EXPERIMENTS.md records.
//
// Every trial goes through anonlead.Run, so the sweeps exercise exactly
// the code path external users call; the bench artifacts pin that the
// migration kept trial semantics byte-identical.
package harness

import (
	"context"
	"errors"
	"fmt"

	"anonlead"
	"anonlead/internal/adversary"
	"anonlead/internal/baseline"
	"anonlead/internal/core"
	"anonlead/internal/epoch"
	"anonlead/internal/graph"
	"anonlead/internal/obs"
	"anonlead/internal/rng"
	"anonlead/internal/sim"
	"anonlead/internal/spectral"
	"anonlead/internal/stats"
)

// Protocol names a protocol under test.
type Protocol string

// The protocols the harness can run.
const (
	ProtoIRE        Protocol = "ire"        // this work, Section 4
	ProtoExplicit   Protocol = "explicit"   // this work + Section 3 announcement
	ProtoFlood      Protocol = "flood"      // Kutten-class baseline
	ProtoAllFlood   Protocol = "allflood"   // naive flooding baseline
	ProtoWalkNotify Protocol = "walknotify" // Gilbert-class baseline
	ProtoRevocable  Protocol = "revocable"  // this work, Section 5.2
)

// Protocols lists all runnable protocols.
func Protocols() []Protocol {
	return []Protocol{ProtoIRE, ProtoExplicit, ProtoFlood, ProtoAllFlood, ProtoWalkNotify, ProtoRevocable}
}

// Workload identifies a topology cell.
type Workload struct {
	Family string
	N      int
}

// BuildGraph constructs the workload's graph deterministically from seed
// (random families draw from a seed-keyed stream).
func (w Workload) BuildGraph(seed uint64) (*graph.Graph, error) {
	r := rng.New(seed).SplitString("graph:" + w.Family)
	return graph.ByName(w.Family, w.N, r)
}

// Trial is the outcome of one protocol execution. Under fault injection,
// Leaders (and the all-know clause of explicit election) are evaluated
// over surviving nodes only: a crash-stopped node cannot claim or learn a
// leadership it will never act on.
type Trial struct {
	Leaders int
	Success bool // exactly one (surviving) leader
	Rounds  int
	Crashed int // nodes crash-stopped by the adversary
	Metrics sim.Metrics
	// RoundProf is the trial's deterministic round-resolved histogram,
	// present only when TrialOpts.RoundProfile asked for one.
	RoundProf *obs.RoundProfile
	// EpochHist is the trial's full repeated-election history, present only
	// when TrialOpts.Epochs made the trial an epoch scenario. The flat
	// fields above then hold the scenario totals (Rounds/Metrics summed over
	// epochs; Success = every epoch elected).
	EpochHist *anonlead.EpochOutcome
}

// SimOpts carries the execution knobs every trial runner threads into the
// public Run path: scheduler selection and the optional fault adversary.
type SimOpts struct {
	// Parallel selects the WorkerPool scheduler (kept for compatibility;
	// an explicit Scheduler wins).
	Parallel bool
	// Scheduler explicitly selects the execution engine.
	Scheduler sim.Scheduler
	// Adversary, when non-nil and non-zero, fault-injects the trial. The
	// runtime adversary is built inside anonlead.Run with the canonical
	// seed derivation (adversary.DeriveRunSeed), so harness and public
	// fault-injected runs are byte-identical.
	Adversary *adversary.Spec
	// Observer, when non-nil, streams per-round metrics out of the trial
	// (the round-profile feed; any per-trial telemetry rides the same hook).
	Observer func(anonlead.RoundInfo)
}

// faulted reports whether the options carry an active fault policy.
func (o SimOpts) faulted() bool {
	return o.Adversary != nil && !o.Adversary.IsZero()
}

// options maps the execution knobs onto public Run options.
func (o SimOpts) options(seed uint64) []anonlead.Option {
	opts := []anonlead.Option{anonlead.WithSeed(seed)}
	if o.Parallel {
		opts = append(opts, anonlead.WithParallel(true))
	}
	if o.Scheduler != sim.Sequential {
		opts = append(opts, anonlead.WithScheduler(publicScheduler(o.Scheduler)))
	}
	if o.Adversary != nil {
		opts = append(opts, anonlead.WithAdversary(publicAdversary(*o.Adversary)))
	}
	if o.Observer != nil {
		opts = append(opts, anonlead.WithObserver(o.Observer))
	}
	return opts
}

// publicScheduler mirrors a simulator scheduler into the public enum.
func publicScheduler(s sim.Scheduler) anonlead.Scheduler {
	switch s {
	case sim.WorkerPool:
		return anonlead.WorkerPool
	case sim.Actors:
		return anonlead.Actors
	default:
		return anonlead.Sequential
	}
}

// publicAdversary mirrors an internal adversary spec into the public one,
// field for field (the public type exists so library users can declare
// the same fault policies the sweeps run).
func publicAdversary(s adversary.Spec) anonlead.AdversarySpec {
	return anonlead.AdversarySpec{
		Loss:          s.Loss,
		CrashFraction: s.CrashFraction,
		CrashBy:       s.CrashBy,
		CrashSchedule: s.CrashSchedule,
		Churn:         s.Churn,
		ChurnPreserve: s.ChurnPreserve,
		DelayProb:     s.DelayProb,
		MaxDelay:      s.MaxDelay,

		AdaptiveCrash:   s.AdaptiveCrash,
		AdaptiveWindow:  s.AdaptiveWindow,
		AdaptiveStrikes: s.AdaptiveStrikes,
	}
}

// simMetrics maps the public metrics mirror back onto the simulator type
// the harness aggregates (lossless: the mirrors are field-for-field).
func simMetrics(m anonlead.Metrics) sim.Metrics {
	return sim.Metrics{
		Rounds:        m.Rounds,
		ChargedRounds: m.ChargedRounds,
		Messages:      m.Messages,
		Bits:          m.Bits,
		CongestBits:   m.CongestBits,
		MaxLinkSlots:  m.MaxLinkSlots,
		MaxChannels:   m.MaxChannels,
		Dropped:       m.Dropped,
		Delayed:       m.Delayed,
		Crashes:       m.Crashed,
	}
}

// TrialOpts configures a batch of trials.
type TrialOpts struct {
	Trials   int
	Seed     uint64
	Parallel bool
	// Scheduler explicitly selects the simulator engine for every trial
	// (zero = Sequential unless Parallel is set). All engines are
	// bit-identical; the knob exists so determinism tests can sweep them.
	Scheduler sim.Scheduler
	// Adversary, when non-nil and non-zero, fault-injects every trial of
	// the batch. The adversary's streams are split from the trial seed
	// under a dedicated label, so machine randomness is untouched and a
	// zero-rate spec is byte-identical to no adversary at all.
	Adversary *adversary.Spec
	// ProfileMode selects the regime for the cell's spectral profile (the
	// protocols' tmix/Φ/diameter inputs): exact (legacy, the committed
	// baselines), estimate (streaming, scales past dense-matrix sizes) or
	// auto (exact up to n = 256, estimate above; the zero value). The
	// resolved mode is part of the cell's identity: the profile cache keys
	// on it and artifact cells record it.
	ProfileMode spectral.Mode
	// PresumedN, when positive, misreports the network size to the
	// protocol (the knowledge ablation after Dieudonné–Pelc: how does
	// election degrade when nodes' knowledge of n is wrong?). The graph
	// keeps its true size; only the size the protocol is told changes.
	// Revocable LE estimates n itself and ignores this knob.
	PresumedN int
	// IRE overrides the IRE protocol constants (zero values = defaults).
	IRE core.IREConfig
	// Revocable overrides the revocable protocol parameters.
	Revocable core.RevocableConfig
	// RevocableMaxRounds caps a revocable run (0 = automatic).
	RevocableMaxRounds int
	// RevocableUseProfileIso feeds the profiled exact isoperimetric
	// number into the revocable protocol (the Theorem 3 known-i(G)
	// schedule) instead of the blind Corollary 1 schedule.
	RevocableUseProfileIso bool
	// RoundProfile, when true, attaches a deterministic per-round
	// message/halt histogram to every trial (merged per cell and persisted
	// in the schema-v5 artifact's round_profile section). Off by default:
	// an unprofiled sweep serializes byte-identically to one that never
	// heard of round profiles.
	RoundProfile bool
	// Epochs, when non-nil, turns every trial into a repeated-election
	// epoch scenario (anonlead.RunEpochs): the trial's flat metrics become
	// scenario totals and the cell additionally aggregates per-epoch stats
	// (schema-v6 artifact epochs section). Nil keeps the classic
	// single-election trial byte-identical to earlier schemas.
	Epochs *epoch.Opts
}

// Cell is the aggregated result of a trial batch on one workload.
type Cell struct {
	Protocol Protocol
	Workload Workload
	Profile  *spectral.Profile

	Trials    int
	Successes int
	// Means over trials.
	Messages float64
	Bits     float64
	Rounds   float64
	Charged  float64
	// Per-trial distributions of the same metrics (stddev, min/max, tail
	// quantiles) — what the schema-v2 artifact persists so regression
	// tooling can separate real effects from trial variance.
	MessagesDist stats.Dist
	BitsDist     stats.Dist
	RoundsDist   stats.Dist
	ChargedDist  stats.Dist
	// MultiLeaders counts trials with more than one leader (vs zero).
	MultiLeaders int
	ZeroLeaders  int
	// Fault-injection aggregates (all zero on fault-free cells): mean
	// adversary-dropped packets and mean crash-stopped nodes per trial.
	Dropped      float64
	CrashedNodes float64
	// RoundProf is the elementwise sum of the trials' round histograms,
	// merged in trial-index order (nil unless TrialOpts.RoundProfile).
	RoundProf *obs.RoundProfile
	// EpochStats aggregates the trials' repeated-election histories in
	// trial-index order (nil unless TrialOpts.Epochs made this an epoch
	// scenario cell).
	EpochStats *epoch.CellStats
}

// SuccessRate returns the fraction of trials electing exactly one leader.
func (c Cell) SuccessRate() float64 {
	if c.Trials == 0 {
		return 0
	}
	return float64(c.Successes) / float64(c.Trials)
}

// TrialSeed derives the seed of trial t of a workload cell from the root
// seed by rng stream splitting. It is a pure function of (root, cell, t):
// any execution order — the sequential loop in RunCell or the sharded
// worker pool in Orchestrator.RunSweep — evaluates exactly the same trials,
// which is what makes parallel sweep output bit-identical to sequential.
func TrialSeed(root uint64, w Workload, t int) uint64 {
	return rng.New(root).SplitString("trial:" + w.Family).Split(uint64(w.N)).DeriveSeed(uint64(t))
}

// AdversarySeed derives a trial's fault-injection stream from its trial
// seed — the canonical derivation shared with the public Run path, which
// builds its adversaries with the same function (so harness sweeps and
// public fault-injected runs are byte-identical).
func AdversarySeed(trialSeed uint64) uint64 {
	return adversary.DeriveRunSeed(trialSeed)
}

// prepareCell deterministically builds and profiles a workload graph and
// wraps it as a public network (the session object every trial of the
// cell runs through). The graph, its network wrap, and the profile all
// come from the process-wide cell cache, so repeated cells — across
// protocols, ablation factors, or whole sweeps — cost one build, one
// structural validation, and one profile. The network's own lazy profile
// is never touched: trials supply every profiled input explicitly.
func prepareCell(w Workload, seed uint64, mode spectral.Mode) (*anonlead.Network, *spectral.Profile, error) {
	label := cellLabel(w)
	endPrep := obs.Span("prepare", label)
	_, anw, err := cachedGraph(w, seed)
	endPrep()
	if err != nil {
		return nil, nil, fmt.Errorf("harness: build %s/%d: %w", w.Family, w.N, err)
	}
	endProf := obs.Span("profile", label)
	prof, err := cachedSpectralProfile(w, seed, mode)
	endProf()
	if err != nil {
		return nil, nil, fmt.Errorf("harness: profile %s/%d: %w", w.Family, w.N, err)
	}
	return anw, prof, nil
}

// cellLabel is the span detail naming a workload cell. It formats nothing
// while telemetry is disabled, keeping disabled call sites allocation-free.
func cellLabel(w Workload) string {
	if !obs.Enabled() {
		return ""
	}
	return fmt.Sprintf("%s/%d", w.Family, w.N)
}

// reduceCell aggregates a batch of trials, always in slice (= trial index)
// order, so sequential and sharded executions produce identical cells down
// to floating-point summation order. eo, when non-nil, is the epoch
// scenario the trials ran; their histories fold into Cell.EpochStats.
func reduceCell(p Protocol, w Workload, prof *spectral.Profile, eo *epoch.Opts, trials []Trial) Cell {
	cell := Cell{Protocol: p, Workload: w, Profile: prof}
	var hists []anonlead.EpochOutcome
	msgs := make([]float64, 0, len(trials))
	bits := make([]float64, 0, len(trials))
	rounds := make([]float64, 0, len(trials))
	charged := make([]float64, 0, len(trials))
	for _, trial := range trials {
		cell.Trials++
		if trial.Success {
			cell.Successes++
		}
		if trial.Leaders > 1 {
			cell.MultiLeaders++
		}
		if trial.Leaders == 0 {
			cell.ZeroLeaders++
		}
		cell.Dropped += float64(trial.Metrics.Dropped)
		cell.CrashedNodes += float64(trial.Crashed)
		if trial.RoundProf != nil {
			if cell.RoundProf == nil {
				cell.RoundProf = &obs.RoundProfile{}
			}
			cell.RoundProf.Merge(trial.RoundProf)
		}
		if trial.EpochHist != nil {
			hists = append(hists, *trial.EpochHist)
		}
		msgs = append(msgs, float64(trial.Metrics.Messages))
		bits = append(bits, float64(trial.Metrics.Bits))
		rounds = append(rounds, float64(trial.Rounds))
		charged = append(charged, float64(trial.Metrics.ChargedRounds))
	}
	if cell.Trials > 0 {
		cell.Dropped /= float64(cell.Trials)
		cell.CrashedNodes /= float64(cell.Trials)
	}
	cell.MessagesDist = stats.DistOf(msgs)
	cell.BitsDist = stats.DistOf(bits)
	cell.RoundsDist = stats.DistOf(rounds)
	cell.ChargedDist = stats.DistOf(charged)
	cell.Messages = cell.MessagesDist.Mean
	cell.Bits = cell.BitsDist.Mean
	cell.Rounds = cell.RoundsDist.Mean
	cell.Charged = cell.ChargedDist.Mean
	if eo != nil && len(hists) > 0 {
		cs := epoch.Reduce(*eo, hists)
		cell.EpochStats = &cs
	}
	return cell
}

// RunCell profiles the workload graph and executes a batch of trials of
// the protocol on it, sequentially on the calling goroutine. It is the
// reference semantics for Orchestrator.RunSweep, which produces
// bit-identical cells from a worker pool.
func RunCell(p Protocol, w Workload, opts TrialOpts) (Cell, error) {
	anw, prof, err := prepareCell(w, opts.Seed, opts.ProfileMode)
	if err != nil {
		return Cell{}, err
	}
	trials := make([]Trial, cellTrials(opts))
	endTrials := obs.Span("trials", cellLabel(w))
	for t := range trials {
		trial, err := runOne(p, anw, prof, opts, TrialSeed(opts.Seed, w, t))
		if err != nil {
			endTrials()
			return Cell{Protocol: p, Workload: w, Profile: prof}, err
		}
		trials[t] = trial
	}
	endTrials()
	endReduce := obs.Span("reduce", cellLabel(w))
	defer endReduce()
	return reduceCell(p, w, prof, opts.Epochs, trials), nil
}

// cellTrials returns the effective trial count of a batch (minimum 1).
func cellTrials(opts TrialOpts) int {
	if opts.Trials <= 0 {
		return 1
	}
	return opts.Trials
}

// runOne executes a single trial of protocol p on the prepared network,
// resolving the cell's trial options into the shared protocol config the
// public Run path consumes. Defaults are filled from the cell's profile
// here (not inside Run) so the per-cell profile is computed exactly once.
func runOne(p Protocol, anw *anonlead.Network, prof *spectral.Profile, opts TrialOpts, seed uint64) (Trial, error) {
	// The size the protocol is told; PresumedN misreports it for the
	// knowledge ablation (topology parameters stay truthful).
	presumedN := anw.N()
	if opts.PresumedN > 0 {
		presumedN = opts.PresumedN
	}
	simo := SimOpts{Parallel: opts.Parallel, Scheduler: opts.Scheduler, Adversary: opts.Adversary}
	var rp *obs.RoundProfile
	if opts.RoundProfile {
		rp = &obs.RoundProfile{}
		simo.Observer = roundProfileObserver(rp)
	}
	var pc core.ProtoConfig
	switch p {
	case ProtoIRE, ProtoExplicit:
		cfg := opts.IRE
		cfg.N = presumedN
		if cfg.TMix == 0 {
			cfg.TMix = prof.MixingTime
		}
		if cfg.Phi == 0 {
			cfg.Phi = prof.Conductance
		}
		pc = ireProto(cfg)
	case ProtoFlood, ProtoAllFlood:
		pc = core.ProtoConfig{N: presumedN, Diam: prof.Diameter, AllNodes: p == ProtoAllFlood}
	case ProtoWalkNotify:
		pc = core.ProtoConfig{N: presumedN, TMix: prof.MixingTime}
	case ProtoRevocable:
		cfg := opts.Revocable
		if opts.RevocableUseProfileIso && cfg.Isoperimetric == 0 {
			cfg.Isoperimetric = prof.Isoperim
		}
		pc = revocableProto(cfg, opts.RevocableMaxRounds)
	default:
		return Trial{}, fmt.Errorf("harness: unknown protocol %q", p)
	}
	if opts.Epochs != nil {
		trial, err := runEpochTrial(anw, string(p), pc, seed, simo, *opts.Epochs)
		if err == nil {
			trial.RoundProf = rp
		}
		return trial, err
	}
	trial, err := runTrial(anw, string(p), pc, seed, simo)
	if err == nil {
		// Both real completions and measured fault non-convergence carry
		// the profile: every executed round was observed either way.
		trial.RoundProf = rp
	}
	return trial, err
}

// runEpochTrial executes one repeated-election scenario through the public
// RunEpochs path and folds the history into a harness Trial: the flat
// fields carry the scenario totals (so classic cell aggregation still
// means something), and the full history rides along for epoch.Reduce.
func runEpochTrial(anw *anonlead.Network, proto string, pc core.ProtoConfig, seed uint64, o SimOpts, eo epoch.Opts) (Trial, error) {
	base := append(o.options(seed), anonlead.WithProtoConfig(pc))
	hist, err := epoch.Run(anw, proto, base, eo)
	if err != nil {
		return Trial{}, fmt.Errorf("harness: %w", err)
	}
	trial := Trial{
		Success: hist.Elected == len(hist.Epochs),
		Rounds:  hist.TotalRounds,
		Metrics: sim.Metrics{
			Rounds:        hist.TotalRounds,
			ChargedRounds: hist.TotalCharged,
			Messages:      hist.TotalMessages,
			Bits:          hist.TotalBits,
		},
		EpochHist: &hist,
	}
	if n := len(hist.Epochs); n > 0 {
		last := hist.Epochs[n-1]
		trial.Crashed = last.Crashed
		if last.Elected {
			trial.Leaders = 1
		}
	}
	return trial, nil
}

// roundProfileObserver adapts the public per-round observer feed — which
// is cumulative — into per-round deltas on a round profile.
func roundProfileObserver(rp *obs.RoundProfile) func(anonlead.RoundInfo) {
	o := rp.RoundObserver()
	return func(ri anonlead.RoundInfo) { o(ri.Metrics.Messages, int64(ri.Halted)) }
}

// ireProto maps an IRE config onto the shared protocol config.
func ireProto(cfg core.IREConfig) core.ProtoConfig {
	return core.ProtoConfig{
		N: cfg.N, TMix: cfg.TMix, Phi: cfg.Phi, C: cfg.C,
		X: cfg.X, XFactor: cfg.XFactor, MaxID: cfg.MaxID,
		BroadcastOnly: cfg.BroadcastOnly,
	}
}

// revocableProto maps a revocable config onto the shared protocol config.
func revocableProto(cfg core.RevocableConfig, maxRounds int) core.ProtoConfig {
	return core.ProtoConfig{
		Epsilon: cfg.Epsilon, Xi: cfg.Xi, Iso: cfg.Isoperimetric,
		FMult: cfg.FMult, RMult: cfg.RMult, MaxRounds: maxRounds,
	}
}

// runTrial executes one election through the public Run path and folds
// the unified outcome into a harness Trial.
func runTrial(anw *anonlead.Network, proto string, pc core.ProtoConfig, seed uint64, o SimOpts) (Trial, error) {
	ropts := append(o.options(seed), anonlead.WithProtoConfig(pc))
	out, err := anw.Run(context.Background(), proto, ropts...)
	if err != nil {
		if errors.Is(err, anonlead.ErrNotStabilized) && o.faulted() {
			// Under fault injection a non-converging election is a
			// measured outcome — it degrades the success rate like any
			// other fault damage — not a harness error that should abort
			// the sweep. The partial Outcome still carries the run's cost
			// accounting.
			return Trial{Leaders: 0, Success: false, Rounds: out.Rounds,
				Crashed: out.Metrics.Crashed, Metrics: simMetrics(out.Metrics)}, nil
		}
		return Trial{}, fmt.Errorf("harness: %w", err)
	}
	return Trial{
		Leaders: len(out.Leaders),
		Success: out.Unique && out.AllKnow,
		Rounds:  out.Rounds,
		Crashed: out.Metrics.Crashed,
		Metrics: simMetrics(out.Metrics),
	}, nil
}

// wrapGraph adapts a pre-built graph for the standalone trial runners.
func wrapGraph(g *graph.Graph) (*anonlead.Network, error) {
	anw, err := anonlead.NewNetworkFromGraph(g)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	return anw, nil
}

// RunIRETrial executes one Irrevocable LE election.
func RunIRETrial(g *graph.Graph, cfg core.IREConfig, seed uint64, o SimOpts) (Trial, error) {
	anw, err := wrapGraph(g)
	if err != nil {
		return Trial{}, err
	}
	return runTrial(anw, "ire", ireProto(cfg), seed, o)
}

// IRELeaderNodes runs one IRE election and returns the elected node
// indices (used by the pumping-wheel experiment).
func IRELeaderNodes(g *graph.Graph, cfg core.IREConfig, seed uint64, o SimOpts) ([]int, sim.Metrics, error) {
	anw, err := wrapGraph(g)
	if err != nil {
		return nil, sim.Metrics{}, err
	}
	ropts := append(o.options(seed), anonlead.WithProtoConfig(ireProto(cfg)))
	out, err := anw.Run(context.Background(), "ire", ropts...)
	if err != nil {
		return nil, sim.Metrics{}, fmt.Errorf("harness: %w", err)
	}
	return out.Leaders, simMetrics(out.Metrics), nil
}

// RunExplicitTrial executes one explicit election (implicit protocol plus
// announcement flood). Success additionally requires every surviving node
// to have learned the leader.
func RunExplicitTrial(g *graph.Graph, cfg core.ExplicitConfig, seed uint64, o SimOpts) (Trial, error) {
	anw, err := wrapGraph(g)
	if err != nil {
		return Trial{}, err
	}
	pc := ireProto(cfg.IRE)
	pc.AnnounceRounds = cfg.AnnounceRounds
	return runTrial(anw, "explicit", pc, seed, o)
}

// RunFloodTrial executes one FloodMax election.
func RunFloodTrial(g *graph.Graph, cfg baseline.FloodConfig, seed uint64, o SimOpts) (Trial, error) {
	anw, err := wrapGraph(g)
	if err != nil {
		return Trial{}, err
	}
	pc := core.ProtoConfig{N: cfg.N, Diam: cfg.Diam, C: cfg.C, AllNodes: cfg.AllNodes}
	proto := "floodmax"
	if cfg.AllNodes {
		proto = "allflood"
	}
	return runTrial(anw, proto, pc, seed, o)
}

// RunWalkNotifyTrial executes one Gilbert-class baseline election.
func RunWalkNotifyTrial(g *graph.Graph, cfg baseline.WalkNotifyConfig, seed uint64, o SimOpts) (Trial, error) {
	anw, err := wrapGraph(g)
	if err != nil {
		return Trial{}, err
	}
	pc := core.ProtoConfig{N: cfg.N, TMix: cfg.TMix, C: cfg.C, Beta: cfg.Beta}
	return runTrial(anw, "walknotify", pc, seed, o)
}

// RunRevocableTrial executes one revocable election until the theory's
// stability point (all nodes chose, certificates agree, k^{1+ε} > 4n) or
// maxRounds.
func RunRevocableTrial(g *graph.Graph, cfg core.RevocableConfig, seed uint64, maxRounds int, o SimOpts) (Trial, error) {
	anw, err := wrapGraph(g)
	if err != nil {
		return Trial{}, err
	}
	return runTrial(anw, "revocable", revocableProto(cfg, maxRounds), seed, o)
}
