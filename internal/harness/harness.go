// Package harness runs the paper-reproduction experiments: it builds
// topology cells, executes protocol trials on the CONGEST simulator,
// aggregates cost metrics and success rates, and renders the Table 1 rows
// and figure series that EXPERIMENTS.md records.
package harness

import (
	"fmt"
	"math"

	"anonlead/internal/baseline"
	"anonlead/internal/core"
	"anonlead/internal/graph"
	"anonlead/internal/rng"
	"anonlead/internal/sim"
	"anonlead/internal/spectral"
	"anonlead/internal/stats"
)

// Protocol names a protocol under test.
type Protocol string

// The protocols the harness can run.
const (
	ProtoIRE        Protocol = "ire"        // this work, Section 4
	ProtoExplicit   Protocol = "explicit"   // this work + Section 3 announcement
	ProtoFlood      Protocol = "flood"      // Kutten-class baseline
	ProtoAllFlood   Protocol = "allflood"   // naive flooding baseline
	ProtoWalkNotify Protocol = "walknotify" // Gilbert-class baseline
	ProtoRevocable  Protocol = "revocable"  // this work, Section 5.2
)

// Protocols lists all runnable protocols.
func Protocols() []Protocol {
	return []Protocol{ProtoIRE, ProtoExplicit, ProtoFlood, ProtoAllFlood, ProtoWalkNotify, ProtoRevocable}
}

// Workload identifies a topology cell.
type Workload struct {
	Family string
	N      int
}

// BuildGraph constructs the workload's graph deterministically from seed
// (random families draw from a seed-keyed stream).
func (w Workload) BuildGraph(seed uint64) (*graph.Graph, error) {
	r := rng.New(seed).SplitString("graph:" + w.Family)
	return graph.ByName(w.Family, w.N, r)
}

// Trial is the outcome of one protocol execution.
type Trial struct {
	Leaders int
	Success bool // exactly one leader
	Rounds  int
	Metrics sim.Metrics
}

// TrialOpts configures a batch of trials.
type TrialOpts struct {
	Trials   int
	Seed     uint64
	Parallel bool
	// PresumedN, when positive, misreports the network size to the
	// protocol (the knowledge ablation after Dieudonné–Pelc: how does
	// election degrade when nodes' knowledge of n is wrong?). The graph
	// keeps its true size; only the size the protocol is told changes.
	// Revocable LE estimates n itself and ignores this knob.
	PresumedN int
	// IRE overrides the IRE protocol constants (zero values = defaults).
	IRE core.IREConfig
	// Revocable overrides the revocable protocol parameters.
	Revocable core.RevocableConfig
	// RevocableMaxRounds caps a revocable run (0 = automatic).
	RevocableMaxRounds int
	// RevocableUseProfileIso feeds the profiled exact isoperimetric
	// number into the revocable protocol (the Theorem 3 known-i(G)
	// schedule) instead of the blind Corollary 1 schedule.
	RevocableUseProfileIso bool
}

// Cell is the aggregated result of a trial batch on one workload.
type Cell struct {
	Protocol Protocol
	Workload Workload
	Profile  *spectral.Profile

	Trials    int
	Successes int
	// Means over trials.
	Messages float64
	Bits     float64
	Rounds   float64
	Charged  float64
	// Per-trial distributions of the same metrics (stddev, min/max, tail
	// quantiles) — what the schema-v2 artifact persists so regression
	// tooling can separate real effects from trial variance.
	MessagesDist stats.Dist
	BitsDist     stats.Dist
	RoundsDist   stats.Dist
	ChargedDist  stats.Dist
	// MultiLeaders counts trials with more than one leader (vs zero).
	MultiLeaders int
	ZeroLeaders  int
}

// SuccessRate returns the fraction of trials electing exactly one leader.
func (c Cell) SuccessRate() float64 {
	if c.Trials == 0 {
		return 0
	}
	return float64(c.Successes) / float64(c.Trials)
}

// TrialSeed derives the seed of trial t of a workload cell from the root
// seed by rng stream splitting. It is a pure function of (root, cell, t):
// any execution order — the sequential loop in RunCell or the sharded
// worker pool in Orchestrator.RunSweep — evaluates exactly the same trials,
// which is what makes parallel sweep output bit-identical to sequential.
func TrialSeed(root uint64, w Workload, t int) uint64 {
	return rng.New(root).SplitString("trial:" + w.Family).Split(uint64(w.N)).DeriveSeed(uint64(t))
}

// prepareCell deterministically builds and profiles a workload graph.
func prepareCell(w Workload, seed uint64) (*graph.Graph, *spectral.Profile, error) {
	g, err := w.BuildGraph(seed)
	if err != nil {
		return nil, nil, fmt.Errorf("harness: build %s/%d: %w", w.Family, w.N, err)
	}
	prof, err := spectral.ProfileGraph(g)
	if err != nil {
		return nil, nil, fmt.Errorf("harness: profile %s/%d: %w", w.Family, w.N, err)
	}
	return g, prof, nil
}

// reduceCell aggregates a batch of trials, always in slice (= trial index)
// order, so sequential and sharded executions produce identical cells down
// to floating-point summation order.
func reduceCell(p Protocol, w Workload, prof *spectral.Profile, trials []Trial) Cell {
	cell := Cell{Protocol: p, Workload: w, Profile: prof}
	msgs := make([]float64, 0, len(trials))
	bits := make([]float64, 0, len(trials))
	rounds := make([]float64, 0, len(trials))
	charged := make([]float64, 0, len(trials))
	for _, trial := range trials {
		cell.Trials++
		if trial.Success {
			cell.Successes++
		}
		if trial.Leaders > 1 {
			cell.MultiLeaders++
		}
		if trial.Leaders == 0 {
			cell.ZeroLeaders++
		}
		msgs = append(msgs, float64(trial.Metrics.Messages))
		bits = append(bits, float64(trial.Metrics.Bits))
		rounds = append(rounds, float64(trial.Rounds))
		charged = append(charged, float64(trial.Metrics.ChargedRounds))
	}
	cell.MessagesDist = stats.DistOf(msgs)
	cell.BitsDist = stats.DistOf(bits)
	cell.RoundsDist = stats.DistOf(rounds)
	cell.ChargedDist = stats.DistOf(charged)
	cell.Messages = cell.MessagesDist.Mean
	cell.Bits = cell.BitsDist.Mean
	cell.Rounds = cell.RoundsDist.Mean
	cell.Charged = cell.ChargedDist.Mean
	return cell
}

// RunCell profiles the workload graph and executes a batch of trials of
// the protocol on it, sequentially on the calling goroutine. It is the
// reference semantics for Orchestrator.RunSweep, which produces
// bit-identical cells from a worker pool.
func RunCell(p Protocol, w Workload, opts TrialOpts) (Cell, error) {
	g, prof, err := prepareCell(w, opts.Seed)
	if err != nil {
		return Cell{}, err
	}
	trials := make([]Trial, cellTrials(opts))
	for t := range trials {
		trial, err := runOne(p, g, prof, opts, TrialSeed(opts.Seed, w, t))
		if err != nil {
			return Cell{Protocol: p, Workload: w, Profile: prof}, err
		}
		trials[t] = trial
	}
	return reduceCell(p, w, prof, trials), nil
}

// cellTrials returns the effective trial count of a batch (minimum 1).
func cellTrials(opts TrialOpts) int {
	if opts.Trials <= 0 {
		return 1
	}
	return opts.Trials
}

// runOne executes a single trial of protocol p on g.
func runOne(p Protocol, g *graph.Graph, prof *spectral.Profile, opts TrialOpts, seed uint64) (Trial, error) {
	// The size the protocol is told; PresumedN misreports it for the
	// knowledge ablation (topology parameters stay truthful).
	presumedN := g.N()
	if opts.PresumedN > 0 {
		presumedN = opts.PresumedN
	}
	switch p {
	case ProtoIRE, ProtoExplicit:
		cfg := opts.IRE
		cfg.N = presumedN
		if cfg.TMix == 0 {
			cfg.TMix = prof.MixingTime
		}
		if cfg.Phi == 0 {
			cfg.Phi = prof.Conductance
		}
		if p == ProtoExplicit {
			return RunExplicitTrial(g, core.ExplicitConfig{IRE: cfg}, seed, opts.Parallel)
		}
		return RunIRETrial(g, cfg, seed, opts.Parallel)
	case ProtoFlood, ProtoAllFlood:
		cfg := baseline.FloodConfig{N: presumedN, Diam: prof.Diameter, AllNodes: p == ProtoAllFlood}
		return RunFloodTrial(g, cfg, seed, opts.Parallel)
	case ProtoWalkNotify:
		cfg := baseline.WalkNotifyConfig{N: presumedN, TMix: prof.MixingTime}
		return RunWalkNotifyTrial(g, cfg, seed, opts.Parallel)
	case ProtoRevocable:
		cfg := opts.Revocable
		if opts.RevocableUseProfileIso && cfg.Isoperimetric == 0 {
			cfg.Isoperimetric = prof.Isoperim
		}
		return RunRevocableTrial(g, cfg, seed, opts.RevocableMaxRounds, opts.Parallel)
	default:
		return Trial{}, fmt.Errorf("harness: unknown protocol %q", p)
	}
}

// RunIRETrial executes one Irrevocable LE election.
func RunIRETrial(g *graph.Graph, cfg core.IREConfig, seed uint64, parallel bool) (Trial, error) {
	factory, err := core.NewIREFactory(cfg)
	if err != nil {
		return Trial{}, err
	}
	nw := sim.New(sim.Config{Graph: g, Seed: seed, Parallel: parallel}, factory)
	_, _, _, _, total := nw.Machine(0).(*core.IREMachine).Params()
	rounds := nw.Run(total + 4)
	if !nw.AllHalted() {
		return Trial{}, fmt.Errorf("harness: IRE did not halt in %d rounds", total+4)
	}
	leaders := 0
	for v := 0; v < g.N(); v++ {
		if nw.Machine(v).(*core.IREMachine).Output().Leader {
			leaders++
		}
	}
	return Trial{Leaders: leaders, Success: leaders == 1, Rounds: rounds, Metrics: nw.Metrics()}, nil
}

// IRELeaderNodes runs one IRE election and returns the elected node
// indices (used by the pumping-wheel experiment).
func IRELeaderNodes(g *graph.Graph, cfg core.IREConfig, seed uint64, parallel bool) ([]int, sim.Metrics, error) {
	factory, err := core.NewIREFactory(cfg)
	if err != nil {
		return nil, sim.Metrics{}, err
	}
	nw := sim.New(sim.Config{Graph: g, Seed: seed, Parallel: parallel}, factory)
	_, _, _, _, total := nw.Machine(0).(*core.IREMachine).Params()
	nw.Run(total + 4)
	if !nw.AllHalted() {
		return nil, sim.Metrics{}, fmt.Errorf("harness: IRE did not halt in %d rounds", total+4)
	}
	var leaders []int
	for v := 0; v < g.N(); v++ {
		if nw.Machine(v).(*core.IREMachine).Output().Leader {
			leaders = append(leaders, v)
		}
	}
	return leaders, nw.Metrics(), nil
}

// RunExplicitTrial executes one explicit election (implicit protocol plus
// announcement flood). Success additionally requires every node to have
// learned the leader.
func RunExplicitTrial(g *graph.Graph, cfg core.ExplicitConfig, seed uint64, parallel bool) (Trial, error) {
	factory, err := core.NewExplicitFactory(cfg)
	if err != nil {
		return Trial{}, err
	}
	nw := sim.New(sim.Config{Graph: g, Seed: seed, Parallel: parallel}, factory)
	total := nw.Machine(0).(*core.ExplicitMachine).TotalRounds()
	rounds := nw.Run(total + 4)
	if !nw.AllHalted() {
		return Trial{}, fmt.Errorf("harness: explicit protocol did not halt in %d rounds", total+4)
	}
	leaders, allKnow := 0, true
	for v := 0; v < g.N(); v++ {
		out := nw.Machine(v).(*core.ExplicitMachine).Output()
		if out.IRE.Leader {
			leaders++
		}
		if !out.KnowsLeader {
			allKnow = false
		}
	}
	return Trial{
		Leaders: leaders,
		Success: leaders == 1 && allKnow,
		Rounds:  rounds,
		Metrics: nw.Metrics(),
	}, nil
}

// RunFloodTrial executes one FloodMax election.
func RunFloodTrial(g *graph.Graph, cfg baseline.FloodConfig, seed uint64, parallel bool) (Trial, error) {
	factory, err := baseline.NewFloodFactory(cfg)
	if err != nil {
		return Trial{}, err
	}
	nw := sim.New(sim.Config{Graph: g, Seed: seed, Parallel: parallel}, factory)
	rounds := nw.Run(cfg.Rounds() + 2)
	if !nw.AllHalted() {
		return Trial{}, fmt.Errorf("harness: flood did not halt")
	}
	leaders := 0
	for v := 0; v < g.N(); v++ {
		if nw.Machine(v).(*baseline.FloodMachine).Output().Leader {
			leaders++
		}
	}
	return Trial{Leaders: leaders, Success: leaders == 1, Rounds: rounds, Metrics: nw.Metrics()}, nil
}

// RunWalkNotifyTrial executes one Gilbert-class baseline election.
func RunWalkNotifyTrial(g *graph.Graph, cfg baseline.WalkNotifyConfig, seed uint64, parallel bool) (Trial, error) {
	factory, err := baseline.NewWalkNotifyFactory(cfg)
	if err != nil {
		return Trial{}, err
	}
	nw := sim.New(sim.Config{Graph: g, Seed: seed, Parallel: parallel}, factory)
	rounds := nw.Run(cfg.Rounds() + 2)
	if !nw.AllHalted() {
		return Trial{}, fmt.Errorf("harness: walknotify did not halt")
	}
	leaders := 0
	for v := 0; v < g.N(); v++ {
		if nw.Machine(v).(*baseline.WalkNotifyMachine).Output().Leader {
			leaders++
		}
	}
	return Trial{Leaders: leaders, Success: leaders == 1, Rounds: rounds, Metrics: nw.Metrics()}, nil
}

// RunRevocableTrial executes one revocable election until the theory's
// stability point (all nodes chose, certificates agree, k^{1+ε} > 4n) or
// maxRounds.
func RunRevocableTrial(g *graph.Graph, cfg core.RevocableConfig, seed uint64, maxRounds int, parallel bool) (Trial, error) {
	factory, err := core.NewRevocableFactory(cfg)
	if err != nil {
		return Trial{}, err
	}
	eps := cfg.Epsilon
	if eps == 0 {
		eps = 0.5
	}
	if maxRounds <= 0 {
		maxRounds = 200_000_000
	}
	nw := sim.New(sim.Config{Graph: g, Seed: seed, Parallel: parallel}, factory)
	converged := func() bool {
		first := nw.Machine(0).(*core.RevocableMachine).Output()
		if !first.Chosen || first.LeaderK == 0 {
			return false
		}
		if math.Pow(float64(first.EstimateK), 1+eps) <= 4*float64(g.N()) {
			return false
		}
		for v := 1; v < g.N(); v++ {
			o := nw.Machine(v).(*core.RevocableMachine).Output()
			if !o.Chosen || o.LeaderK != first.LeaderK || o.LeaderID != first.LeaderID {
				return false
			}
		}
		return true
	}
	rounds := nw.RunUntil(maxRounds, func(completed int) bool {
		return completed%64 == 0 && converged()
	})
	if !converged() {
		return Trial{}, fmt.Errorf("harness: revocable did not converge in %d rounds", rounds)
	}
	leaders := 0
	for v := 0; v < g.N(); v++ {
		if nw.Machine(v).(*core.RevocableMachine).Output().Leader {
			leaders++
		}
	}
	return Trial{Leaders: leaders, Success: leaders == 1, Rounds: rounds, Metrics: nw.Metrics()}, nil
}
