// Package harness runs the paper-reproduction experiments: it builds
// topology cells, executes protocol trials on the CONGEST simulator,
// aggregates cost metrics and success rates, and renders the Table 1 rows
// and figure series that EXPERIMENTS.md records.
package harness

import (
	"fmt"
	"math"

	"anonlead/internal/adversary"
	"anonlead/internal/baseline"
	"anonlead/internal/core"
	"anonlead/internal/graph"
	"anonlead/internal/rng"
	"anonlead/internal/sim"
	"anonlead/internal/spectral"
	"anonlead/internal/stats"
)

// Protocol names a protocol under test.
type Protocol string

// The protocols the harness can run.
const (
	ProtoIRE        Protocol = "ire"        // this work, Section 4
	ProtoExplicit   Protocol = "explicit"   // this work + Section 3 announcement
	ProtoFlood      Protocol = "flood"      // Kutten-class baseline
	ProtoAllFlood   Protocol = "allflood"   // naive flooding baseline
	ProtoWalkNotify Protocol = "walknotify" // Gilbert-class baseline
	ProtoRevocable  Protocol = "revocable"  // this work, Section 5.2
)

// Protocols lists all runnable protocols.
func Protocols() []Protocol {
	return []Protocol{ProtoIRE, ProtoExplicit, ProtoFlood, ProtoAllFlood, ProtoWalkNotify, ProtoRevocable}
}

// Workload identifies a topology cell.
type Workload struct {
	Family string
	N      int
}

// BuildGraph constructs the workload's graph deterministically from seed
// (random families draw from a seed-keyed stream).
func (w Workload) BuildGraph(seed uint64) (*graph.Graph, error) {
	r := rng.New(seed).SplitString("graph:" + w.Family)
	return graph.ByName(w.Family, w.N, r)
}

// Trial is the outcome of one protocol execution. Under fault injection,
// Leaders (and the all-know clause of explicit election) are evaluated
// over surviving nodes only: a crash-stopped node cannot claim or learn a
// leadership it will never act on.
type Trial struct {
	Leaders int
	Success bool // exactly one (surviving) leader
	Rounds  int
	Crashed int // nodes crash-stopped by the adversary
	Metrics sim.Metrics
}

// SimOpts carries the execution knobs every trial runner threads into
// sim.Config: scheduler selection and the optional fault adversary.
type SimOpts struct {
	// Parallel selects the WorkerPool scheduler (kept for compatibility;
	// an explicit Scheduler wins).
	Parallel bool
	// Scheduler explicitly selects the execution engine.
	Scheduler sim.Scheduler
	// Adversary, when non-nil, perturbs delivery (see internal/adversary).
	Adversary sim.Adversary
}

// config assembles the sim configuration of one trial.
func (o SimOpts) config(g *graph.Graph, seed uint64) sim.Config {
	return sim.Config{Graph: g, Seed: seed, Parallel: o.Parallel,
		Scheduler: o.Scheduler, Adversary: o.Adversary}
}

// TrialOpts configures a batch of trials.
type TrialOpts struct {
	Trials   int
	Seed     uint64
	Parallel bool
	// Scheduler explicitly selects the simulator engine for every trial
	// (zero = Sequential unless Parallel is set). All engines are
	// bit-identical; the knob exists so determinism tests can sweep them.
	Scheduler sim.Scheduler
	// Adversary, when non-nil and non-zero, fault-injects every trial of
	// the batch. The adversary's streams are split from the trial seed
	// under a dedicated label, so machine randomness is untouched and a
	// zero-rate spec is byte-identical to no adversary at all.
	Adversary *adversary.Spec
	// PresumedN, when positive, misreports the network size to the
	// protocol (the knowledge ablation after Dieudonné–Pelc: how does
	// election degrade when nodes' knowledge of n is wrong?). The graph
	// keeps its true size; only the size the protocol is told changes.
	// Revocable LE estimates n itself and ignores this knob.
	PresumedN int
	// IRE overrides the IRE protocol constants (zero values = defaults).
	IRE core.IREConfig
	// Revocable overrides the revocable protocol parameters.
	Revocable core.RevocableConfig
	// RevocableMaxRounds caps a revocable run (0 = automatic).
	RevocableMaxRounds int
	// RevocableUseProfileIso feeds the profiled exact isoperimetric
	// number into the revocable protocol (the Theorem 3 known-i(G)
	// schedule) instead of the blind Corollary 1 schedule.
	RevocableUseProfileIso bool
}

// Cell is the aggregated result of a trial batch on one workload.
type Cell struct {
	Protocol Protocol
	Workload Workload
	Profile  *spectral.Profile

	Trials    int
	Successes int
	// Means over trials.
	Messages float64
	Bits     float64
	Rounds   float64
	Charged  float64
	// Per-trial distributions of the same metrics (stddev, min/max, tail
	// quantiles) — what the schema-v2 artifact persists so regression
	// tooling can separate real effects from trial variance.
	MessagesDist stats.Dist
	BitsDist     stats.Dist
	RoundsDist   stats.Dist
	ChargedDist  stats.Dist
	// MultiLeaders counts trials with more than one leader (vs zero).
	MultiLeaders int
	ZeroLeaders  int
	// Fault-injection aggregates (all zero on fault-free cells): mean
	// adversary-dropped packets and mean crash-stopped nodes per trial.
	Dropped      float64
	CrashedNodes float64
}

// SuccessRate returns the fraction of trials electing exactly one leader.
func (c Cell) SuccessRate() float64 {
	if c.Trials == 0 {
		return 0
	}
	return float64(c.Successes) / float64(c.Trials)
}

// TrialSeed derives the seed of trial t of a workload cell from the root
// seed by rng stream splitting. It is a pure function of (root, cell, t):
// any execution order — the sequential loop in RunCell or the sharded
// worker pool in Orchestrator.RunSweep — evaluates exactly the same trials,
// which is what makes parallel sweep output bit-identical to sequential.
func TrialSeed(root uint64, w Workload, t int) uint64 {
	return rng.New(root).SplitString("trial:" + w.Family).Split(uint64(w.N)).DeriveSeed(uint64(t))
}

// AdversarySeed derives a trial's fault-injection stream from its trial
// seed. The labeled split keeps the adversary's randomness disjoint from
// the machines' (which split from the raw trial seed), so enabling a
// zero-rate adversary perturbs nothing.
func AdversarySeed(trialSeed uint64) uint64 {
	return rng.New(trialSeed).SplitString("adversary").DeriveSeed(0)
}

// prepareCell deterministically builds and profiles a workload graph.
func prepareCell(w Workload, seed uint64) (*graph.Graph, *spectral.Profile, error) {
	g, err := w.BuildGraph(seed)
	if err != nil {
		return nil, nil, fmt.Errorf("harness: build %s/%d: %w", w.Family, w.N, err)
	}
	prof, err := spectral.ProfileGraph(g)
	if err != nil {
		return nil, nil, fmt.Errorf("harness: profile %s/%d: %w", w.Family, w.N, err)
	}
	return g, prof, nil
}

// reduceCell aggregates a batch of trials, always in slice (= trial index)
// order, so sequential and sharded executions produce identical cells down
// to floating-point summation order.
func reduceCell(p Protocol, w Workload, prof *spectral.Profile, trials []Trial) Cell {
	cell := Cell{Protocol: p, Workload: w, Profile: prof}
	msgs := make([]float64, 0, len(trials))
	bits := make([]float64, 0, len(trials))
	rounds := make([]float64, 0, len(trials))
	charged := make([]float64, 0, len(trials))
	for _, trial := range trials {
		cell.Trials++
		if trial.Success {
			cell.Successes++
		}
		if trial.Leaders > 1 {
			cell.MultiLeaders++
		}
		if trial.Leaders == 0 {
			cell.ZeroLeaders++
		}
		cell.Dropped += float64(trial.Metrics.Dropped)
		cell.CrashedNodes += float64(trial.Crashed)
		msgs = append(msgs, float64(trial.Metrics.Messages))
		bits = append(bits, float64(trial.Metrics.Bits))
		rounds = append(rounds, float64(trial.Rounds))
		charged = append(charged, float64(trial.Metrics.ChargedRounds))
	}
	if cell.Trials > 0 {
		cell.Dropped /= float64(cell.Trials)
		cell.CrashedNodes /= float64(cell.Trials)
	}
	cell.MessagesDist = stats.DistOf(msgs)
	cell.BitsDist = stats.DistOf(bits)
	cell.RoundsDist = stats.DistOf(rounds)
	cell.ChargedDist = stats.DistOf(charged)
	cell.Messages = cell.MessagesDist.Mean
	cell.Bits = cell.BitsDist.Mean
	cell.Rounds = cell.RoundsDist.Mean
	cell.Charged = cell.ChargedDist.Mean
	return cell
}

// RunCell profiles the workload graph and executes a batch of trials of
// the protocol on it, sequentially on the calling goroutine. It is the
// reference semantics for Orchestrator.RunSweep, which produces
// bit-identical cells from a worker pool.
func RunCell(p Protocol, w Workload, opts TrialOpts) (Cell, error) {
	g, prof, err := prepareCell(w, opts.Seed)
	if err != nil {
		return Cell{}, err
	}
	trials := make([]Trial, cellTrials(opts))
	for t := range trials {
		trial, err := runOne(p, g, prof, opts, TrialSeed(opts.Seed, w, t))
		if err != nil {
			return Cell{Protocol: p, Workload: w, Profile: prof}, err
		}
		trials[t] = trial
	}
	return reduceCell(p, w, prof, trials), nil
}

// cellTrials returns the effective trial count of a batch (minimum 1).
func cellTrials(opts TrialOpts) int {
	if opts.Trials <= 0 {
		return 1
	}
	return opts.Trials
}

// runOne executes a single trial of protocol p on g.
func runOne(p Protocol, g *graph.Graph, prof *spectral.Profile, opts TrialOpts, seed uint64) (Trial, error) {
	// The size the protocol is told; PresumedN misreports it for the
	// knowledge ablation (topology parameters stay truthful).
	presumedN := g.N()
	if opts.PresumedN > 0 {
		presumedN = opts.PresumedN
	}
	simo := SimOpts{Parallel: opts.Parallel, Scheduler: opts.Scheduler}
	if opts.Adversary != nil {
		adv, err := opts.Adversary.Build(g, AdversarySeed(seed))
		if err != nil {
			return Trial{}, fmt.Errorf("harness: build adversary: %w", err)
		}
		simo.Adversary = adv // nil for a zero-rate spec: no perturbation
	}
	switch p {
	case ProtoIRE, ProtoExplicit:
		cfg := opts.IRE
		cfg.N = presumedN
		if cfg.TMix == 0 {
			cfg.TMix = prof.MixingTime
		}
		if cfg.Phi == 0 {
			cfg.Phi = prof.Conductance
		}
		if p == ProtoExplicit {
			return RunExplicitTrial(g, core.ExplicitConfig{IRE: cfg}, seed, simo)
		}
		return RunIRETrial(g, cfg, seed, simo)
	case ProtoFlood, ProtoAllFlood:
		cfg := baseline.FloodConfig{N: presumedN, Diam: prof.Diameter, AllNodes: p == ProtoAllFlood}
		return RunFloodTrial(g, cfg, seed, simo)
	case ProtoWalkNotify:
		cfg := baseline.WalkNotifyConfig{N: presumedN, TMix: prof.MixingTime}
		return RunWalkNotifyTrial(g, cfg, seed, simo)
	case ProtoRevocable:
		cfg := opts.Revocable
		if opts.RevocableUseProfileIso && cfg.Isoperimetric == 0 {
			cfg.Isoperimetric = prof.Isoperim
		}
		return RunRevocableTrial(g, cfg, seed, opts.RevocableMaxRounds, simo)
	default:
		return Trial{}, fmt.Errorf("harness: unknown protocol %q", p)
	}
}

// RunIRETrial executes one Irrevocable LE election.
func RunIRETrial(g *graph.Graph, cfg core.IREConfig, seed uint64, o SimOpts) (Trial, error) {
	factory, err := core.NewIREFactory(cfg)
	if err != nil {
		return Trial{}, err
	}
	nw := sim.New(o.config(g, seed), factory)
	defer nw.Close()
	_, _, _, _, total := nw.Machine(0).(*core.IREMachine).Params()
	// Jitter can park a packet up to MaxDelay rounds past the schedule.
	rounds := nw.Run(total + 4 + maxDelay(o))
	if !nw.AllHalted() {
		return Trial{}, fmt.Errorf("harness: IRE did not halt in %d rounds", total+4+maxDelay(o))
	}
	leaders := 0
	for v := 0; v < g.N(); v++ {
		if !nw.Crashed(v) && nw.Machine(v).(*core.IREMachine).Output().Leader {
			leaders++
		}
	}
	return Trial{Leaders: leaders, Success: leaders == 1, Rounds: rounds,
		Crashed: nw.CrashedCount(), Metrics: nw.Metrics()}, nil
}

// maxDelay returns the adversary's delivery-jitter bound (0 without one),
// used to stretch round budgets so late packets can drain.
func maxDelay(o SimOpts) int {
	if o.Adversary == nil {
		return 0
	}
	return o.Adversary.MaxDelay()
}

// IRELeaderNodes runs one IRE election and returns the elected node
// indices (used by the pumping-wheel experiment).
func IRELeaderNodes(g *graph.Graph, cfg core.IREConfig, seed uint64, o SimOpts) ([]int, sim.Metrics, error) {
	factory, err := core.NewIREFactory(cfg)
	if err != nil {
		return nil, sim.Metrics{}, err
	}
	nw := sim.New(o.config(g, seed), factory)
	defer nw.Close()
	_, _, _, _, total := nw.Machine(0).(*core.IREMachine).Params()
	nw.Run(total + 4 + maxDelay(o))
	if !nw.AllHalted() {
		return nil, sim.Metrics{}, fmt.Errorf("harness: IRE did not halt in %d rounds", total+4+maxDelay(o))
	}
	var leaders []int
	for v := 0; v < g.N(); v++ {
		if !nw.Crashed(v) && nw.Machine(v).(*core.IREMachine).Output().Leader {
			leaders = append(leaders, v)
		}
	}
	return leaders, nw.Metrics(), nil
}

// RunExplicitTrial executes one explicit election (implicit protocol plus
// announcement flood). Success additionally requires every node to have
// learned the leader.
func RunExplicitTrial(g *graph.Graph, cfg core.ExplicitConfig, seed uint64, o SimOpts) (Trial, error) {
	factory, err := core.NewExplicitFactory(cfg)
	if err != nil {
		return Trial{}, err
	}
	nw := sim.New(o.config(g, seed), factory)
	defer nw.Close()
	total := nw.Machine(0).(*core.ExplicitMachine).TotalRounds()
	rounds := nw.Run(total + 4 + maxDelay(o))
	if !nw.AllHalted() {
		return Trial{}, fmt.Errorf("harness: explicit protocol did not halt in %d rounds", total+4+maxDelay(o))
	}
	leaders, allKnow := 0, true
	for v := 0; v < g.N(); v++ {
		if nw.Crashed(v) {
			continue // only survivors can claim or learn leadership
		}
		out := nw.Machine(v).(*core.ExplicitMachine).Output()
		if out.IRE.Leader {
			leaders++
		}
		if !out.KnowsLeader {
			allKnow = false
		}
	}
	return Trial{
		Leaders: leaders,
		Success: leaders == 1 && allKnow,
		Rounds:  rounds,
		Crashed: nw.CrashedCount(),
		Metrics: nw.Metrics(),
	}, nil
}

// RunFloodTrial executes one FloodMax election.
func RunFloodTrial(g *graph.Graph, cfg baseline.FloodConfig, seed uint64, o SimOpts) (Trial, error) {
	factory, err := baseline.NewFloodFactory(cfg)
	if err != nil {
		return Trial{}, err
	}
	nw := sim.New(o.config(g, seed), factory)
	defer nw.Close()
	rounds := nw.Run(cfg.Rounds() + 2 + maxDelay(o))
	if !nw.AllHalted() {
		return Trial{}, fmt.Errorf("harness: flood did not halt")
	}
	leaders := 0
	for v := 0; v < g.N(); v++ {
		if !nw.Crashed(v) && nw.Machine(v).(*baseline.FloodMachine).Output().Leader {
			leaders++
		}
	}
	return Trial{Leaders: leaders, Success: leaders == 1, Rounds: rounds,
		Crashed: nw.CrashedCount(), Metrics: nw.Metrics()}, nil
}

// RunWalkNotifyTrial executes one Gilbert-class baseline election.
func RunWalkNotifyTrial(g *graph.Graph, cfg baseline.WalkNotifyConfig, seed uint64, o SimOpts) (Trial, error) {
	factory, err := baseline.NewWalkNotifyFactory(cfg)
	if err != nil {
		return Trial{}, err
	}
	nw := sim.New(o.config(g, seed), factory)
	defer nw.Close()
	rounds := nw.Run(cfg.Rounds() + 2 + maxDelay(o))
	if !nw.AllHalted() {
		return Trial{}, fmt.Errorf("harness: walknotify did not halt")
	}
	leaders := 0
	for v := 0; v < g.N(); v++ {
		if !nw.Crashed(v) && nw.Machine(v).(*baseline.WalkNotifyMachine).Output().Leader {
			leaders++
		}
	}
	return Trial{Leaders: leaders, Success: leaders == 1, Rounds: rounds,
		Crashed: nw.CrashedCount(), Metrics: nw.Metrics()}, nil
}

// RunRevocableTrial executes one revocable election until the theory's
// stability point (all nodes chose, certificates agree, k^{1+ε} > 4n) or
// maxRounds.
func RunRevocableTrial(g *graph.Graph, cfg core.RevocableConfig, seed uint64, maxRounds int, o SimOpts) (Trial, error) {
	factory, err := core.NewRevocableFactory(cfg)
	if err != nil {
		return Trial{}, err
	}
	eps := cfg.Epsilon
	if eps == 0 {
		eps = 0.5
	}
	if maxRounds <= 0 {
		maxRounds = 200_000_000
		if o.Adversary != nil {
			// Faults can make convergence unreachable (e.g. the would-be
			// leader crash-stops); the fault-free budget would be an
			// effective hang, so adversarial runs get a bounded one.
			maxRounds = 1_000_000
		}
	}
	nw := sim.New(o.config(g, seed), factory)
	defer nw.Close()
	// Convergence is evaluated over surviving nodes: a crashed node can
	// never choose, so including it would run every faulted trial to
	// maxRounds. The reference (first) output comes from the lowest-index
	// survivor.
	converged := func() bool {
		ref := -1
		for v := 0; v < g.N(); v++ {
			if !nw.Crashed(v) {
				ref = v
				break
			}
		}
		if ref < 0 {
			return false // everyone crashed; the run can only time out
		}
		first := nw.Machine(ref).(*core.RevocableMachine).Output()
		if !first.Chosen || first.LeaderK == 0 {
			return false
		}
		if math.Pow(float64(first.EstimateK), 1+eps) <= 4*float64(g.N()) {
			return false
		}
		for v := ref + 1; v < g.N(); v++ {
			if nw.Crashed(v) {
				continue
			}
			o := nw.Machine(v).(*core.RevocableMachine).Output()
			if !o.Chosen || o.LeaderK != first.LeaderK || o.LeaderID != first.LeaderID {
				return false
			}
		}
		return true
	}
	rounds := nw.RunUntil(maxRounds, func(completed int) bool {
		return completed%64 == 0 && converged()
	})
	if !converged() {
		if o.Adversary != nil {
			// Under fault injection a non-converging election is a
			// measured outcome — it degrades the success rate like any
			// other fault damage — not a harness error that should abort
			// the sweep.
			return Trial{Leaders: 0, Success: false, Rounds: rounds,
				Crashed: nw.CrashedCount(), Metrics: nw.Metrics()}, nil
		}
		return Trial{}, fmt.Errorf("harness: revocable did not converge in %d rounds", rounds)
	}
	leaders := 0
	for v := 0; v < g.N(); v++ {
		if !nw.Crashed(v) && nw.Machine(v).(*core.RevocableMachine).Output().Leader {
			leaders++
		}
	}
	return Trial{Leaders: leaders, Success: leaders == 1, Rounds: rounds,
		Crashed: nw.CrashedCount(), Metrics: nw.Metrics()}, nil
}
