package harness

import (
	"fmt"
	"time"

	"anonlead/internal/stats"
)

// The scaling experiment (lebench -exp scaling) is the estimate-regime
// counterpart of Table 1: size ramps far past MixingTimeExactLimit, where
// the streaming spectral estimators and the struct-of-arrays simulator
// state are what make a cell affordable at all. Each cell is timed
// individually — wall time is a first-class column here, because the
// experiment exists to demonstrate that cell cost scales near-linearly in
// m and that the profile cache collapses repeated cells to trial cost.

// TimedCell pairs one aggregated sweep cell with its wall-clock cost,
// split into preparation (graph build + structural validation + spectral
// profile — the part the cell cache collapses on a repeated cell) and the
// total including every trial.
type TimedCell struct {
	Cell        Cell
	PrepSeconds float64
	Seconds     float64
}

// ScalingSweep is one protocol × family size ramp of the scaling matrix.
type ScalingSweep struct {
	Title  string
	Proto  Protocol
	Family string
	Sizes  []int
}

// ScalingSweeps returns the -exp scaling matrix. The full matrix ramps
// n = 10³…10⁵ on expanders (FloodMax to 10⁵; the walk-based protocols to
// 10⁴, where their tmix-long executions stay affordable) plus cycle and
// diameter-2 ramps that pin the two extreme mixing regimes. The quick
// matrix is the CI smoke: one 10⁵-node expander cell run twice, so the
// second run demonstrates the profile-cache hit end to end.
func ScalingSweeps(quick bool) []ScalingSweep {
	if quick {
		return []ScalingSweep{
			{"Scaling smoke: FloodMax on a 100k-node expander (cold)",
				ProtoFlood, "expander", []int{100_000}},
			{"Scaling smoke: FloodMax on a 100k-node expander (cached)",
				ProtoFlood, "expander", []int{100_000}},
		}
	}
	return []ScalingSweep{
		{"Scaling: FloodMax (Kutten-class) on expanders",
			ProtoFlood, "expander", []int{1_000, 10_000, 100_000}},
		{"Scaling: IRE (this work) on expanders",
			ProtoIRE, "expander", []int{1_000, 4_000, 10_000}},
		{"Scaling: Gilbert-class baseline on expanders",
			ProtoWalkNotify, "expander", []int{1_000, 4_000, 10_000}},
		{"Scaling: FloodMax (Kutten-class) on cycles",
			ProtoFlood, "cycle", []int{1_024, 4_096, 16_384}},
		{"Scaling: FloodMax (Kutten-class) on diameter-2 clique-of-cliques",
			ProtoFlood, "diam2", []int{1_001, 4_001, 10_001}},
	}
}

// RunScalingSweep executes one sweep cell by cell on the calling
// goroutine, timing each cell's wall clock. Cells run sequentially on
// purpose: the per-cell Seconds column is the measurement, and pooled
// execution would smear prepare and trial costs across cells.
func RunScalingSweep(sw ScalingSweep, opts TrialOpts) ([]TimedCell, []CellSpec, error) {
	specs := SweepSpecs(sw.Proto, sw.Family, sw.Sizes, opts)
	timed := make([]TimedCell, len(specs))
	for i, spec := range specs {
		start := time.Now()
		// Prepare explicitly (RunCell would anyway — the cache makes the
		// repeat free) so the prep share is measurable on its own.
		if _, _, err := prepareCell(spec.Workload, spec.Opts.Seed, spec.Opts.ProfileMode); err != nil {
			return nil, nil, err
		}
		prep := time.Since(start)
		c, err := RunCell(spec.Protocol, spec.Workload, spec.Opts)
		if err != nil {
			return nil, nil, err
		}
		timed[i] = TimedCell{Cell: c, PrepSeconds: prep.Seconds(), Seconds: time.Since(start).Seconds()}
	}
	return timed, specs, nil
}

// RenderScaling renders one scaling sweep: the cell columns of Table 1
// plus the profile regime and per-cell wall time, then the empirical
// scaling exponents of messages and wall time in n (the deliverable the
// experiment exists for — near-linear exponents mean the streaming
// estimators and SoA state removed the superlinear setup costs).
func RenderScaling(title string, cells []TimedCell) string {
	t := Table{
		Title: title,
		Header: []string{
			"family", "n", "m", "D", "tmix", "phi", "mode",
			"msgs", "rounds", "success", "prep_s", "secs",
		},
	}
	var ns, msgs, secs []float64
	for _, tc := range cells {
		prof := tc.Cell.Profile
		mode := "exact"
		if prof.Estimated {
			mode = "estimate"
		}
		t.AddRow(
			tc.Cell.Workload.Family, I(prof.N), I(prof.M), I(prof.Diameter),
			I(prof.MixingTime), F(prof.Conductance), mode,
			F(tc.Cell.Messages), F(tc.Cell.Rounds),
			fmt.Sprintf("%d/%d", tc.Cell.Successes, tc.Cell.Trials),
			F(tc.PrepSeconds), F(tc.Seconds),
		)
		ns = append(ns, float64(prof.N))
		msgs = append(msgs, tc.Cell.Messages)
		secs = append(secs, tc.Seconds)
	}
	out := t.String()
	if slope, r2 := stats.LogLogSlope(ns, msgs); r2 > 0 {
		out += fmt.Sprintf("empirical message exponent: msgs ~ n^%.2f (R²=%.3f)\n", slope, r2)
	}
	if slope, r2 := stats.LogLogSlope(ns, secs); r2 > 0 {
		out += fmt.Sprintf("empirical wall-time exponent: secs ~ n^%.2f (R²=%.3f)\n", slope, r2)
	}
	return out
}

// CellsOfTimed strips the timings (what the JSON artifact records — wall
// times are machine-dependent, cells are deterministic).
func CellsOfTimed(timed []TimedCell) []Cell {
	cells := make([]Cell, len(timed))
	for i, tc := range timed {
		cells[i] = tc.Cell
	}
	return cells
}
