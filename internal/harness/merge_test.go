package harness

import (
	"reflect"
	"strings"
	"testing"
)

// mergeCell builds a distinguishable dummy cell for merge tests; the
// merge never inspects measurements, only identity and JSON equality.
func mergeCell(n int, messages float64) ArtifactCell {
	return ArtifactCell{Protocol: "ire", Family: "cycle", N: n,
		Trials: 4, Successes: 4, Messages: messages}
}

// partial assembles a partial artifact covering the given plan indices of
// a total-cell plan.
func partial(total int, indices []int, cells ...ArtifactCell) Artifact {
	return Artifact{
		Schema:   ArtifactSchema,
		RootSeed: 7,
		Workers:  4,
		Shards:   4,
		Plan:     &ArtifactPlan{Total: total, Indices: indices},
		Cells:    cells,
	}
}

// TestMergeArtifacts checks the happy path: disjoint partials reassemble
// into the full artifact with cells at their plan indices, timings zeroed,
// no plan header, and the consensus engine shape.
func TestMergeArtifacts(t *testing.T) {
	p0 := partial(4, []int{0, 1}, mergeCell(10, 100), mergeCell(11, 110))
	p0.ElapsedSeconds, p0.TrialsPerSecond = 3.5, 2.3
	p1 := partial(4, []int{2, 3}, mergeCell(12, 120), mergeCell(13, 130))

	// Order of delivery must not matter.
	for _, parts := range [][]Artifact{{p0, p1}, {p1, p0}} {
		m, err := MergeArtifacts(parts)
		if err != nil {
			t.Fatal(err)
		}
		if m.Schema != ArtifactSchema || m.RootSeed != 7 || m.Workers != 4 || m.Shards != 4 {
			t.Fatalf("merged header wrong: %+v", m)
		}
		if m.Plan != nil {
			t.Fatal("merged artifact kept a plan header")
		}
		if m.ElapsedSeconds != 0 || m.TrialsPerSecond != 0 {
			t.Fatalf("merged timings not zeroed: %+v", m)
		}
		want := []ArtifactCell{mergeCell(10, 100), mergeCell(11, 110), mergeCell(12, 120), mergeCell(13, 130)}
		if !reflect.DeepEqual(m.Cells, want) {
			t.Fatalf("merged cells wrong:\n%+v\nwant\n%+v", m.Cells, want)
		}
	}
}

// TestMergeArtifactsDuplicates checks retry-overlap semantics: the same
// plan index delivered twice with identical content merges cleanly, but
// two different cells for one index are a conflict.
func TestMergeArtifactsDuplicates(t *testing.T) {
	p0 := partial(3, []int{0, 1}, mergeCell(10, 100), mergeCell(11, 110))
	overlap := partial(3, []int{1, 2}, mergeCell(11, 110), mergeCell(12, 120))
	m, err := MergeArtifacts([]Artifact{p0, overlap})
	if err != nil {
		t.Fatalf("identical duplicate rejected: %v", err)
	}
	if len(m.Cells) != 3 || m.Cells[1].Messages != 110 {
		t.Fatalf("merged cells wrong: %+v", m.Cells)
	}

	conflict := partial(3, []int{1, 2}, mergeCell(11, 999), mergeCell(12, 120))
	if _, err := MergeArtifacts([]Artifact{p0, conflict}); err == nil ||
		!strings.Contains(err.Error(), "conflicting") {
		t.Fatalf("conflicting duplicate not rejected: %v", err)
	}
}

// TestMergeArtifactsSchemaMismatch checks a v3 partial among v4 partials
// is rejected — cell layouts differ, so a merged file would lie about its
// schema.
func TestMergeArtifactsSchemaMismatch(t *testing.T) {
	p0 := partial(2, []int{0}, mergeCell(10, 100))
	p1 := partial(2, []int{1}, mergeCell(11, 110))
	p1.Schema = ArtifactSchemaV3
	if _, err := MergeArtifacts([]Artifact{p0, p1}); err == nil ||
		!strings.Contains(err.Error(), "schema mismatch") {
		t.Fatalf("mixed v4+v3 partials not rejected: %v", err)
	}
	// Uniformly v3 partials merge fine — the schema just has to agree.
	p0.Schema = ArtifactSchemaV3
	m, err := MergeArtifacts([]Artifact{p0, p1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Schema != ArtifactSchemaV3 {
		t.Fatalf("merged schema %q", m.Schema)
	}
}

// TestMergeArtifactsEmptyPartial checks a worker that was assigned no
// cells: its empty partial contributes plan agreement but no seed or
// engine constraints.
func TestMergeArtifactsEmptyPartial(t *testing.T) {
	p0 := partial(2, []int{0, 1}, mergeCell(10, 100), mergeCell(11, 110))
	empty := partial(2, []int{})
	empty.RootSeed, empty.Workers, empty.Shards = 0, 0, 0 // nothing ran
	m, err := MergeArtifacts([]Artifact{empty, p0})
	if err != nil {
		t.Fatal(err)
	}
	if m.RootSeed != 7 || len(m.Cells) != 2 {
		t.Fatalf("merge with empty partial wrong: %+v", m)
	}
	// All-empty partials cannot cover anything.
	if _, err := MergeArtifacts([]Artifact{empty}); err == nil ||
		!strings.Contains(err.Error(), "missing") {
		t.Fatalf("all-empty merge not rejected: %v", err)
	}
}

// TestMergeArtifactsErrors covers the remaining rejection cases: no
// partials, missing plan headers, index/cell count mismatch, plan-size
// and root-seed disagreement, out-of-range indices, and gaps.
func TestMergeArtifactsErrors(t *testing.T) {
	if _, err := MergeArtifacts(nil); err == nil {
		t.Fatal("empty input accepted")
	}

	noPlan := partial(2, []int{0}, mergeCell(10, 100))
	noPlan.Plan = nil
	if _, err := MergeArtifacts([]Artifact{noPlan}); err == nil ||
		!strings.Contains(err.Error(), "no plan header") {
		t.Fatalf("missing plan header not rejected: %v", err)
	}

	short := partial(2, []int{0, 1}, mergeCell(10, 100)) // 2 indices, 1 cell
	if _, err := MergeArtifacts([]Artifact{short}); err == nil ||
		!strings.Contains(err.Error(), "carries") {
		t.Fatalf("index/cell mismatch not rejected: %v", err)
	}

	p0 := partial(2, []int{0}, mergeCell(10, 100))
	sized := partial(3, []int{1}, mergeCell(11, 110))
	if _, err := MergeArtifacts([]Artifact{p0, sized}); err == nil ||
		!strings.Contains(err.Error(), "plan size mismatch") {
		t.Fatalf("plan-size mismatch not rejected: %v", err)
	}

	seeded := partial(2, []int{1}, mergeCell(11, 110))
	seeded.RootSeed = 99
	if _, err := MergeArtifacts([]Artifact{p0, seeded}); err == nil ||
		!strings.Contains(err.Error(), "root seed mismatch") {
		t.Fatalf("root-seed mismatch not rejected: %v", err)
	}

	ranged := partial(2, []int{5}, mergeCell(11, 110))
	if _, err := MergeArtifacts([]Artifact{p0, ranged}); err == nil ||
		!strings.Contains(err.Error(), "outside") {
		t.Fatalf("out-of-range index not rejected: %v", err)
	}

	if _, err := MergeArtifacts([]Artifact{p0}); err == nil ||
		!strings.Contains(err.Error(), "missing") {
		t.Fatalf("coverage gap not rejected: %v", err)
	}
}

// TestMergeArtifactsHeterogeneousEngines checks the cross-machine case:
// partials from differently-sized worker pools merge, but no single
// honest Workers/Shards value exists, so both zero out.
func TestMergeArtifactsHeterogeneousEngines(t *testing.T) {
	p0 := partial(2, []int{0}, mergeCell(10, 100))
	p1 := partial(2, []int{1}, mergeCell(11, 110))
	p1.Workers, p1.Shards = 16, 8
	m, err := MergeArtifacts([]Artifact{p0, p1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Workers != 0 || m.Shards != 0 {
		t.Fatalf("heterogeneous engines not zeroed: workers=%d shards=%d", m.Workers, m.Shards)
	}
}
