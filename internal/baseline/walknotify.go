package baseline

import (
	"fmt"
	"math"
	"sort"

	"anonlead/internal/congest"
	"anonlead/internal/rng"
	"anonlead/internal/sim"
)

// WalkNotifyConfig parameterizes the Gilbert-class baseline.
type WalkNotifyConfig struct {
	// N is the known network size. Required.
	N int
	// TMix is the lazy-walk mixing time (or an upper bound). Required.
	TMix int
	// C scales candidate rate and walk length. Zero selects 2.
	C float64
	// Beta overrides the tokens per candidate. Zero selects the
	// Θ(√n·log^{3/2} n) value that reproduces the O(tmix·√n·polylog n)
	// message bound of Gilbert et al.
	Beta int
}

func (cfg WalkNotifyConfig) resolve() (wnParams, error) {
	var p wnParams
	if cfg.N < 2 {
		return p, fmt.Errorf("baseline: WalkNotifyConfig.N must be >= 2, got %d", cfg.N)
	}
	if cfg.TMix < 1 {
		return p, fmt.Errorf("baseline: WalkNotifyConfig.TMix must be >= 1, got %d", cfg.TMix)
	}
	p.n = cfg.N
	c := cfg.C
	if c <= 0 {
		c = 2
	}
	ln := math.Log(float64(p.n))
	if ln < 1 {
		ln = 1
	}
	p.candProb = c * ln / float64(p.n)
	if p.candProb > 1 {
		p.candProb = 1
	}
	p.beta = cfg.Beta
	if p.beta <= 0 {
		p.beta = int(math.Ceil(math.Sqrt(float64(p.n)) * math.Pow(ln, 1.5)))
	}
	if p.beta < 1 {
		p.beta = 1
	}
	p.walkLen = int(math.Ceil(c * float64(cfg.TMix) * ln))
	if p.walkLen < 4 {
		p.walkLen = 4
	}
	p.total = 2*p.walkLen + 3 // walk phase + kill drain + decide
	nn := uint64(p.n)
	p.maxID = nn * nn * nn * nn
	return p, nil
}

type wnParams struct {
	n        int
	candProb float64
	beta     int
	walkLen  int
	total    int
	maxID    uint64
}

// wnTokenMsg moves count walk tokens of one candidate across a link.
type wnTokenMsg struct {
	orig  uint64
	count int
}

// Bits returns the CONGEST size (origin ID + multiplicity).
func (m wnTokenMsg) Bits() int {
	return congest.BitLen(m.orig) + congest.BitLen(uint64(m.count))
}

// wnKillMsg climbs the breadcrumb forest of candidate orig toward its
// origin, eliminating it.
type wnKillMsg struct{ orig uint64 }

// Bits returns the CONGEST size (origin ID + 1 tag bit).
func (m wnKillMsg) Bits() int { return 1 + congest.BitLen(m.orig) }

// WalkNotifyOutput is a node's result after the protocol halts.
type WalkNotifyOutput struct {
	Candidate  bool
	ID         uint64
	Eliminated bool
	MaxMark    uint64
	Leader     bool
}

// WalkNotifyMachine implements the Gilbert-class baseline: candidates spray
// beta lazy-walk tokens carrying their ID; nodes keep the largest marking
// ID and a reverse pointer (first-arrival port) per candidate; a token
// landing on (or parked at) a node marked by a larger ID dies and a kill
// notice retraces the reverse pointers to eliminate its candidate.
type WalkNotifyMachine struct {
	p   wnParams
	r   *rng.RNG
	out WalkNotifyOutput

	maxMark   uint64
	revPort   map[uint64]int
	parked    map[uint64]int
	killSent  map[uint64]bool
	killQueue []uint64 // kills to emit this round (sorted, deduped)
	sprayed   bool
	halted    bool
}

// NewWalkNotifyFactory returns a sim.Factory for the baseline.
func NewWalkNotifyFactory(cfg WalkNotifyConfig) (sim.Factory, error) {
	p, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	var arena sim.Arena[WalkNotifyMachine]
	return func(node, degree int, r *rng.RNG) sim.Machine {
		m := arena.New()
		m.p, m.r = p, r
		m.revPort = make(map[uint64]int)
		m.parked = make(map[uint64]int)
		m.killSent = make(map[uint64]bool)
		return m
	}, nil
}

// Rounds returns the total protocol length in rounds.
func (cfg WalkNotifyConfig) Rounds() int {
	p, err := cfg.resolve()
	if err != nil {
		return 0
	}
	return p.total + 1
}

// Output returns the node's result; valid after halting.
func (m *WalkNotifyMachine) Output() WalkNotifyOutput { return m.out }

// Init implements sim.Machine.
func (m *WalkNotifyMachine) Init(ctx *sim.Context) {
	m.out.ID = 1 + m.r.Uint64n(m.p.maxID)
	m.out.Candidate = m.r.Bernoulli(m.p.candProb)
	if m.out.Candidate {
		m.maxMark = m.out.ID
	}
}

// Step implements sim.Machine.
func (m *WalkNotifyMachine) Step(ctx *sim.Context, inbox []sim.Packet) {
	if m.halted {
		return
	}
	round := ctx.Round()
	for _, pkt := range inbox {
		switch msg := pkt.Payload.(type) {
		case wnTokenMsg:
			m.receiveTokens(pkt.Port, msg)
		case wnKillMsg:
			m.receiveKill(msg.orig)
		}
	}

	if round < m.p.walkLen {
		m.moveTokens(ctx)
	}
	m.emitKills(ctx)

	if round >= m.p.total {
		m.out.MaxMark = m.maxMark
		m.out.Leader = m.out.Candidate && !m.out.Eliminated && m.maxMark == m.out.ID
		m.halted = true
		ctx.Halt()
	}
}

// receiveTokens parks arriving tokens, maintains breadcrumbs and marks,
// and schedules kills for tokens that met a larger mark (either way
// around).
func (m *WalkNotifyMachine) receiveTokens(port int, msg wnTokenMsg) {
	c := msg.orig
	if _, seen := m.revPort[c]; !seen && !(m.out.Candidate && c == m.out.ID) {
		m.revPort[c] = port
	}
	switch {
	case c < m.maxMark:
		m.scheduleKill(c) // arriving tokens die on a larger mark
	case c > m.maxMark:
		m.maxMark = c
		// Parked tokens of smaller candidates die under the new mark.
		for d := range m.parked {
			if d < c {
				m.scheduleKill(d)
				delete(m.parked, d)
			}
		}
		// A smaller candidate origin is eliminated on the spot.
		if m.out.Candidate && m.out.ID < c {
			m.out.Eliminated = true
		}
		m.parked[c] += msg.count
	default:
		m.parked[c] += msg.count
	}
}

// receiveKill forwards a kill along the breadcrumb or absorbs it at the
// origin.
func (m *WalkNotifyMachine) receiveKill(orig uint64) {
	if m.out.Candidate && orig == m.out.ID {
		m.out.Eliminated = true
		return
	}
	m.scheduleKill(orig)
}

// scheduleKill queues a kill notice for candidate orig (once per node).
func (m *WalkNotifyMachine) scheduleKill(orig uint64) {
	if m.killSent[orig] {
		return
	}
	if m.out.Candidate && orig == m.out.ID {
		m.out.Eliminated = true
		return
	}
	m.killSent[orig] = true
	m.killQueue = append(m.killQueue, orig)
}

// emitKills sends queued kill notices toward the origins.
func (m *WalkNotifyMachine) emitKills(ctx *sim.Context) {
	if len(m.killQueue) == 0 {
		return
	}
	sort.Slice(m.killQueue, func(i, j int) bool { return m.killQueue[i] < m.killQueue[j] })
	for _, orig := range m.killQueue {
		if p, ok := m.revPort[orig]; ok {
			ctx.Send(p, 0, wnKillMsg{orig: orig})
		}
	}
	m.killQueue = m.killQueue[:0]
}

// moveTokens sprays the initial tokens (first walk round) and advances the
// lazy walks: each parked token stays with probability 1/2 or departs on a
// uniform port, batched per (port, candidate).
func (m *WalkNotifyMachine) moveTokens(ctx *sim.Context) {
	deg := ctx.Degree()
	if deg == 0 {
		return
	}
	var outCounts map[uint64][]int
	add := func(orig uint64, port int) {
		if outCounts == nil {
			outCounts = make(map[uint64][]int)
		}
		row := outCounts[orig]
		if row == nil {
			row = make([]int, deg)
			outCounts[orig] = row
		}
		row[port]++
	}
	if !m.sprayed {
		m.sprayed = true
		if m.out.Candidate {
			for i := 0; i < m.p.beta; i++ {
				add(m.out.ID, m.r.Intn(deg))
			}
		}
	}
	for _, orig := range sortedKeys(m.parked) {
		count := m.parked[orig]
		kept := 0
		for i := 0; i < count; i++ {
			if m.r.Coin() {
				kept++
				continue
			}
			add(orig, m.r.Intn(deg))
		}
		if kept == 0 {
			delete(m.parked, orig)
		} else {
			m.parked[orig] = kept
		}
	}
	for _, orig := range sortedKeysCounts(outCounts) {
		row := outCounts[orig]
		for p, c := range row {
			if c > 0 {
				ctx.Send(p, 0, wnTokenMsg{orig: orig, count: c})
			}
		}
	}
}

// sortedKeys returns map keys in ascending order (determinism across
// schedulers).
func sortedKeys(m map[uint64]int) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func sortedKeysCounts(m map[uint64][]int) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
