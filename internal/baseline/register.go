package baseline

import (
	"anonlead/internal/core"
	"anonlead/internal/sim"
)

// The baselines register themselves into the shared protocol registry, so
// the public anonlead.Run path and the experiment harness execute them
// through exactly the same factories as the paper's protocols. "flood" is
// kept as an alias of "floodmax": it is the spelling the sweep artifacts
// key cells on.
func init() {
	core.Register(core.Entry{
		Name:    "floodmax",
		Aliases: []string{"flood"},
		Info:    "FloodMax over sampled candidates, known n and D (Kutten-class baseline)",
		Needs:   core.NeedDiam,
		Build:   func(pc core.ProtoConfig) (core.Runner, error) { return buildFlood(pc, false) },
		Wire:    wireCodec{},
	})
	core.Register(core.Entry{
		Name:  "allflood",
		Info:  "naive FloodMax with every node a candidate",
		Needs: core.NeedDiam,
		Build: func(pc core.ProtoConfig) (core.Runner, error) { return buildFlood(pc, true) },
		Wire:  wireCodec{},
	})
	core.Register(core.Entry{
		Name:  "walknotify",
		Info:  "random-walk tokens with kill notifications (Gilbert-class baseline)",
		Needs: core.NeedTMix,
		Build: buildWalkNotify,
		Wire:  wireCodec{},
	})
}

func buildFlood(pc core.ProtoConfig, allNodes bool) (core.Runner, error) {
	cfg := FloodConfig{N: pc.N, Diam: pc.Diam, C: pc.C, AllNodes: allNodes || pc.AllNodes}
	factory, err := NewFloodFactory(cfg)
	if err != nil {
		return core.Runner{}, err
	}
	return core.Runner{
		Factory: factory,
		Budget:  cfg.Rounds() + 2 + pc.MaxDelay,
		Collect: collectFlood,
	}, nil
}

func collectFlood(nw sim.View) core.Outcome {
	out := core.Outcome{AllKnow: true}
	for v := 0; v < nw.N(); v++ {
		if nw.Crashed(v) {
			continue
		}
		o := nw.Machine(v).(*FloodMachine).Output()
		if o.Leader {
			out.Leaders = append(out.Leaders, v)
			out.LeaderID = o.ID
		}
	}
	return out
}

func buildWalkNotify(pc core.ProtoConfig) (core.Runner, error) {
	cfg := WalkNotifyConfig{N: pc.N, TMix: pc.TMix, C: pc.C, Beta: pc.Beta}
	factory, err := NewWalkNotifyFactory(cfg)
	if err != nil {
		return core.Runner{}, err
	}
	return core.Runner{
		Factory: factory,
		Budget:  cfg.Rounds() + 2 + pc.MaxDelay,
		Collect: collectWalkNotify,
	}, nil
}

func collectWalkNotify(nw sim.View) core.Outcome {
	out := core.Outcome{AllKnow: true}
	for v := 0; v < nw.N(); v++ {
		if nw.Crashed(v) {
			continue
		}
		o := nw.Machine(v).(*WalkNotifyMachine).Output()
		if o.Leader {
			out.Leaders = append(out.Leaders, v)
			out.LeaderID = o.ID
		}
	}
	return out
}
