package baseline

import (
	"testing"

	"anonlead/internal/graph"

	"anonlead/internal/sim"
	"anonlead/internal/spectral"
)

func runFlood(t *testing.T, g *graph.Graph, cfg FloodConfig, seed uint64) (int, []FloodOutput) {
	t.Helper()
	factory, err := NewFloodFactory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nw := sim.New(sim.Config{Graph: g, Seed: seed}, factory)
	nw.Run(cfg.Rounds() + 2)
	if !nw.AllHalted() {
		t.Fatal("flood did not halt")
	}
	leaders := 0
	outs := make([]FloodOutput, g.N())
	for v := range outs {
		outs[v] = nw.Machine(v).(*FloodMachine).Output()
		if outs[v].Leader {
			leaders++
		}
	}
	return leaders, outs
}

func TestFloodConfigValidation(t *testing.T) {
	if _, err := NewFloodFactory(FloodConfig{N: 1, Diam: 3}); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := NewFloodFactory(FloodConfig{N: 8, Diam: 0}); err == nil {
		t.Fatal("diam=0 accepted")
	}
}

func TestFloodAllNodesAlwaysUnique(t *testing.T) {
	// With every node a candidate, FloodMax must elect exactly one leader
	// every time (max of distinct random IDs; collisions are ~n²/n⁴).
	for _, g := range []*graph.Graph{
		graph.Cycle(16), graph.Complete(12), graph.Star(9), graph.Grid(4, 4),
	} {
		cfg := FloodConfig{N: g.N(), Diam: g.Diameter(), AllNodes: true}
		for s := uint64(0); s < 5; s++ {
			leaders, outs := runFlood(t, g, cfg, 600+s)
			if leaders != 1 {
				t.Fatalf("n=%d seed=%d: %d leaders", g.N(), s, leaders)
			}
			// Every node must have learned the global maximum.
			var max uint64
			for _, o := range outs {
				if o.ID > max {
					max = o.ID
				}
			}
			for v, o := range outs {
				if o.MaxSeen != max {
					t.Fatalf("node %d saw %d want %d", v, o.MaxSeen, max)
				}
			}
		}
	}
}

func TestFloodSampledCandidates(t *testing.T) {
	g := graph.Torus(4, 4)
	cfg := FloodConfig{N: g.N(), Diam: g.Diameter()}
	wins, zero := 0, 0
	const trials = 20
	for s := uint64(0); s < trials; s++ {
		leaders, outs := runFlood(t, g, cfg, 800+s)
		cands := 0
		for _, o := range outs {
			if o.Candidate {
				cands++
			}
		}
		switch {
		case cands == 0 && leaders == 0:
			zero++
		case leaders == 1:
			wins++
		default:
			t.Fatalf("seed=%d: %d leaders with %d candidates", s, leaders, cands)
		}
	}
	if wins == 0 {
		t.Fatal("no successful elections")
	}
	_ = zero // zero-candidate trials are legitimate whp-failures
}

func TestFloodMessageBound(t *testing.T) {
	// Send-on-change flooding: each link carries at most #distinct-IDs
	// messages in each direction.
	g := graph.Complete(24)
	cfg := FloodConfig{N: g.N(), Diam: 1, AllNodes: true}
	factory, err := NewFloodFactory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nw := sim.New(sim.Config{Graph: g, Seed: 4}, factory)
	nw.Run(cfg.Rounds() + 2)
	maxMsgs := int64(2 * g.M() * g.N()) // crude upper bound: n IDs per direction
	if m := nw.Metrics().Messages; m > maxMsgs {
		t.Fatalf("messages %d exceed bound %d", m, maxMsgs)
	}
}

func runWalkNotify(t *testing.T, g *graph.Graph, cfg WalkNotifyConfig, seed uint64) (int, []WalkNotifyOutput, sim.Metrics) {
	t.Helper()
	factory, err := NewWalkNotifyFactory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nw := sim.New(sim.Config{Graph: g, Seed: seed}, factory)
	nw.Run(cfg.Rounds() + 2)
	if !nw.AllHalted() {
		t.Fatal("walknotify did not halt")
	}
	leaders := 0
	outs := make([]WalkNotifyOutput, g.N())
	for v := range outs {
		outs[v] = nw.Machine(v).(*WalkNotifyMachine).Output()
		if outs[v].Leader {
			leaders++
		}
	}
	return leaders, outs, nw.Metrics()
}

func TestWalkNotifyConfigValidation(t *testing.T) {
	if _, err := NewWalkNotifyFactory(WalkNotifyConfig{N: 1, TMix: 3}); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := NewWalkNotifyFactory(WalkNotifyConfig{N: 8, TMix: 0}); err == nil {
		t.Fatal("tmix=0 accepted")
	}
	if r := (WalkNotifyConfig{N: 1}).Rounds(); r != 0 {
		t.Fatal("Rounds on invalid config should be 0")
	}
}

func TestWalkNotifySuccessAcrossFamilies(t *testing.T) {
	cases := []struct {
		name   string
		g      *graph.Graph
		trials int
		min    int
	}{
		{"complete24", graph.Complete(24), 10, 8},
		{"cycle16", graph.Cycle(16), 10, 7},
		{"torus4x4", graph.Torus(4, 4), 10, 7},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prof, err := spectral.ProfileGraph(c.g)
			if err != nil {
				t.Fatal(err)
			}
			cfg := WalkNotifyConfig{N: c.g.N(), TMix: prof.MixingTime}
			wins := 0
			for s := uint64(0); s < uint64(c.trials); s++ {
				leaders, _, _ := runWalkNotify(t, c.g, cfg, 900+s)
				if leaders == 1 {
					wins++
				}
			}
			if wins < c.min {
				t.Fatalf("wins %d/%d below %d", wins, c.trials, c.min)
			}
		})
	}
}

func TestWalkNotifyMaxCandidateNeverEliminated(t *testing.T) {
	g := graph.Complete(24)
	prof, err := spectral.ProfileGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	cfg := WalkNotifyConfig{N: g.N(), TMix: prof.MixingTime}
	for s := uint64(0); s < 10; s++ {
		_, outs, _ := runWalkNotify(t, g, cfg, 300+s)
		var maxCand uint64
		for _, o := range outs {
			if o.Candidate && o.ID > maxCand {
				maxCand = o.ID
			}
		}
		for v, o := range outs {
			if o.Candidate && o.ID == maxCand && o.Eliminated {
				t.Fatalf("seed=%d: max candidate %d eliminated", s, v)
			}
		}
	}
}

func TestWalkNotifyLeadersAreNonEliminatedCandidates(t *testing.T) {
	g := graph.Torus(4, 4)
	prof, err := spectral.ProfileGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	cfg := WalkNotifyConfig{N: g.N(), TMix: prof.MixingTime}
	for s := uint64(0); s < 5; s++ {
		_, outs, _ := runWalkNotify(t, g, cfg, 70+s)
		for v, o := range outs {
			if o.Leader && (!o.Candidate || o.Eliminated) {
				t.Fatalf("seed=%d: node %d leads while eliminated/non-candidate", s, v)
			}
		}
	}
}

func TestWalkNotifyBetaDefault(t *testing.T) {
	p, err := WalkNotifyConfig{N: 64, TMix: 10}.resolve()
	if err != nil {
		t.Fatal(err)
	}
	// beta = ceil(sqrt(n) * ln(n)^{3/2}) = ceil(8 * 4.159^1.5) ~ 68.
	if p.beta < 50 || p.beta > 90 {
		t.Fatalf("beta %d out of expected band", p.beta)
	}
	p2, _ := WalkNotifyConfig{N: 64, TMix: 10, Beta: 5}.resolve()
	if p2.beta != 5 {
		t.Fatal("beta override ignored")
	}
}

func TestWalkNotifyDeterministic(t *testing.T) {
	g := graph.Complete(16)
	cfg := WalkNotifyConfig{N: 16, TMix: 4}
	l1, o1, m1 := runWalkNotify(t, g, cfg, 5)
	l2, o2, m2 := runWalkNotify(t, g, cfg, 5)
	if l1 != l2 || m1 != m2 {
		t.Fatal("runs diverged")
	}
	for v := range o1 {
		if o1[v] != o2[v] {
			t.Fatalf("node %d output differs", v)
		}
	}
}

func TestSortedKeysHelpers(t *testing.T) {
	m := map[uint64]int{5: 1, 2: 1, 9: 1}
	keys := sortedKeys(m)
	if len(keys) != 3 || keys[0] != 2 || keys[1] != 5 || keys[2] != 9 {
		t.Fatalf("sortedKeys %v", keys)
	}
	mc := map[uint64][]int{7: nil, 1: nil}
	keysC := sortedKeysCounts(mc)
	if len(keysC) != 2 || keysC[0] != 1 || keysC[1] != 7 {
		t.Fatalf("sortedKeysCounts %v", keysC)
	}
}

func TestPayloadBits(t *testing.T) {
	if (wnTokenMsg{orig: 1023, count: 7}).Bits() != 10+3 {
		t.Fatalf("token bits %d", (wnTokenMsg{orig: 1023, count: 7}).Bits())
	}
	if (wnKillMsg{orig: 1023}).Bits() != 11 {
		t.Fatalf("kill bits %d", (wnKillMsg{orig: 1023}).Bits())
	}
	if (floodMsg{id: 255}).Bits() != 8 {
		t.Fatalf("flood bits %d", (floodMsg{id: 255}).Bits())
	}
}

func TestWalkNotifyTokenConservationDuringWalkPhase(t *testing.T) {
	// Until kills start, the number of live tokens of the maximum
	// candidate is conserved (its tokens are never absorbed). Verify the
	// winner's parked tokens never exceed beta in total.
	g := graph.Complete(12)
	cfg := WalkNotifyConfig{N: 12, TMix: 3, Beta: 9}
	factory, err := NewWalkNotifyFactory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nw := sim.New(sim.Config{Graph: g, Seed: 8}, factory)
	p, _ := cfg.resolve()
	var maxCand uint64
	for v := 0; v < g.N(); v++ {
		o := nw.Machine(v).(*WalkNotifyMachine).out
		if o.Candidate && o.ID > maxCand {
			maxCand = o.ID
		}
	}
	if maxCand == 0 {
		t.Skip("no candidate in this seed")
	}
	for step := 0; step < p.total+2; step++ {
		if !nw.Step() {
			break
		}
		total := 0
		for v := 0; v < g.N(); v++ {
			total += nw.Machine(v).(*WalkNotifyMachine).parked[maxCand]
		}
		if total > p.beta {
			t.Fatalf("round %d: %d parked tokens of max candidate exceed beta %d", step, total, p.beta)
		}
	}
}
