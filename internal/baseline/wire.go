package baseline

import (
	"encoding/binary"
	"fmt"

	"anonlead/internal/sim"
)

// wireCodec serializes the baseline protocols' payloads for the
// real-transport backend: one-byte tag, then the fields as unsigned
// varints. CONGEST accounting always uses Payload.Bits, never wire size.
type wireCodec struct{}

const (
	wireFlood uint8 = iota + 1
	wireWNToken
	wireWNKill
)

func (wireCodec) AppendPayload(dst []byte, p sim.Payload) ([]byte, error) {
	switch m := p.(type) {
	case floodMsg:
		dst = append(dst, wireFlood)
		return binary.AppendUvarint(dst, m.id), nil
	case wnTokenMsg:
		dst = append(dst, wireWNToken)
		dst = binary.AppendUvarint(dst, m.orig)
		return binary.AppendUvarint(dst, uint64(m.count)), nil
	case wnKillMsg:
		dst = append(dst, wireWNKill)
		return binary.AppendUvarint(dst, m.orig), nil
	default:
		return dst, fmt.Errorf("baseline: no wire encoding for payload type %T", p)
	}
}

func (wireCodec) DecodePayload(src []byte) (sim.Payload, error) {
	if len(src) == 0 {
		return nil, fmt.Errorf("baseline: empty payload")
	}
	tag, body := src[0], src[1:]
	switch tag {
	case wireFlood:
		id, _, err := wireUvarint(body)
		if err != nil {
			return nil, err
		}
		return floodMsg{id: id}, nil
	case wireWNToken:
		orig, body, err := wireUvarint(body)
		if err != nil {
			return nil, err
		}
		count, _, err := wireUvarint(body)
		if err != nil {
			return nil, err
		}
		return wnTokenMsg{orig: orig, count: int(count)}, nil
	case wireWNKill:
		orig, _, err := wireUvarint(body)
		if err != nil {
			return nil, err
		}
		return wnKillMsg{orig: orig}, nil
	default:
		return nil, fmt.Errorf("baseline: unknown payload tag %d", tag)
	}
}

func wireUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("baseline: bad varint in payload")
	}
	return v, b[n:], nil
}

// LeaderInfo implements sim.LeaderReporter.
func (m *FloodMachine) LeaderInfo() (bool, uint64) {
	o := m.Output()
	return o.Leader, o.ID
}

// LeaderInfo implements sim.LeaderReporter.
func (m *WalkNotifyMachine) LeaderInfo() (bool, uint64) {
	o := m.Output()
	return o.Leader, o.ID
}

var (
	_ sim.LeaderReporter = (*FloodMachine)(nil)
	_ sim.LeaderReporter = (*WalkNotifyMachine)(nil)
	_ sim.WireCodec      = wireCodec{}
)
