package baseline

import (
	"fmt"
	"math"

	"anonlead/internal/congest"
	"anonlead/internal/rng"
	"anonlead/internal/sim"
)

// FloodConfig parameterizes the flooding baselines.
type FloodConfig struct {
	// N is the known network size (ID range n⁴ and candidate rate).
	N int
	// Diam is the known diameter bound: the protocol floods for Diam+1
	// rounds and halts (the Kutten-class row assumes n and D known).
	Diam int
	// C scales the candidate rate (C·ln n)/n. Zero selects 2.
	C float64
	// AllNodes makes every node a candidate (the naive AllFlood variant).
	AllNodes bool
}

func (cfg FloodConfig) resolve() (floodParams, error) {
	var p floodParams
	if cfg.N < 2 {
		return p, fmt.Errorf("baseline: FloodConfig.N must be >= 2, got %d", cfg.N)
	}
	if cfg.Diam < 1 {
		return p, fmt.Errorf("baseline: FloodConfig.Diam must be >= 1, got %d", cfg.Diam)
	}
	p.n = cfg.N
	p.rounds = cfg.Diam + 2 // +1 slack over the exact eccentricity bound
	c := cfg.C
	if c <= 0 {
		c = 2
	}
	ln := math.Log(float64(p.n))
	if ln < 1 {
		ln = 1
	}
	p.candProb = c * ln / float64(p.n)
	if cfg.AllNodes || p.candProb > 1 {
		p.candProb = 1
	}
	nn := uint64(p.n)
	p.maxID = nn * nn * nn * nn
	return p, nil
}

type floodParams struct {
	n        int
	rounds   int
	candProb float64
	maxID    uint64
}

// floodMsg carries the largest candidate ID seen.
type floodMsg struct{ id uint64 }

// Bits returns the CONGEST size of the flooded ID.
func (m floodMsg) Bits() int { return congest.BitLen(m.id) }

// FloodOutput is a node's result after the flood halts.
type FloodOutput struct {
	Candidate bool
	ID        uint64
	MaxSeen   uint64
	Leader    bool
}

// FloodMachine is the per-node FloodMax state machine: forward the maximum
// candidate ID seen (send-on-change), halt after Diam+2 rounds, lead iff
// your own ID survived as the maximum.
type FloodMachine struct {
	p      floodParams
	r      *rng.RNG
	out    FloodOutput
	sent   uint64 // largest ID already broadcast
	halted bool
}

// NewFloodFactory returns a sim.Factory for FloodMax.
func NewFloodFactory(cfg FloodConfig) (sim.Factory, error) {
	p, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	var arena sim.Arena[FloodMachine]
	return func(node, degree int, r *rng.RNG) sim.Machine {
		m := arena.New()
		m.p, m.r = p, r
		return m
	}, nil
}

// Rounds returns the number of rounds the protocol runs before halting.
func (cfg FloodConfig) Rounds() int { return cfg.Diam + 3 }

// Output returns the node's result; valid after halting.
func (m *FloodMachine) Output() FloodOutput { return m.out }

// Init implements sim.Machine.
func (m *FloodMachine) Init(ctx *sim.Context) {
	m.out.ID = 1 + m.r.Uint64n(m.p.maxID)
	m.out.Candidate = m.r.Bernoulli(m.p.candProb)
	if m.out.Candidate {
		m.out.MaxSeen = m.out.ID
	}
}

// Step implements sim.Machine.
func (m *FloodMachine) Step(ctx *sim.Context, inbox []sim.Packet) {
	if m.halted {
		return
	}
	for _, pkt := range inbox {
		if msg, ok := pkt.Payload.(floodMsg); ok && msg.id > m.out.MaxSeen {
			m.out.MaxSeen = msg.id
		}
	}
	if ctx.Round() >= m.p.rounds {
		m.out.Leader = m.out.Candidate && m.out.MaxSeen == m.out.ID
		m.halted = true
		ctx.Halt()
		return
	}
	if m.out.MaxSeen > m.sent {
		m.sent = m.out.MaxSeen
		ctx.Broadcast(floodMsg{id: m.sent})
	}
}
