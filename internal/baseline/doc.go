// Package baseline implements the comparator protocols for the Table 1
// experiments. The originals are closed-source theory constructions, so
// the implementations here are shape-faithful reconstructions from the
// published descriptions (documented per type); they exercise the same
// simulator and accounting as the paper's protocols, so message/time
// ratios against internal/core are meaningful.
//
//   - FloodMax: the Ω(m)-message / O(D)-time class (Kutten et al., J.ACM
//     2015, Table 1 rows "n, D"): random IDs, candidate sampling, global
//     max-ID flooding.
//   - AllFlood: the naive variant where every node floods (no candidate
//     sampling), the worst case of the flooding class.
//   - WalkNotify: the Gilbert et al. PODC 2018 class with
//     O(tmix·√n·polylog n) messages: candidates spray Θ̃(√n) random-walk
//     tokens that mark visited nodes with the max candidate ID and leave
//     reverse-pointer breadcrumbs; a candidate whose token lands on a node
//     marked by a larger ID is eliminated by a kill notice climbing the
//     breadcrumb forest back to the origin. Survivors lead.
package baseline
