package core

import (
	"math"

	"anonlead/internal/sim"
)

// ProtoConfig is the protocol-agnostic bundle of resolved inputs one
// election run hands the registry: the union of every registered
// protocol's tunables, with zero values meaning "protocol default". It is
// the single configuration currency shared by the public anonlead.Run
// path and the experiment harness, which is what makes the two surfaces
// byte-identical — both assemble a ProtoConfig and hand it to the same
// registered builder.
type ProtoConfig struct {
	// TrueN is the actual node count of the simulated graph (outcome
	// judging, revocable stabilization). Always set by the runner.
	TrueN int
	// N is the network size the protocol is told. It differs from TrueN in
	// the knowledge ablation (Dieudonné–Pelc misreporting).
	N int
	// TMix is the lazy-walk mixing time input (ire, explicit, walknotify).
	TMix int
	// Phi is the conductance input (ire, explicit).
	Phi float64
	// Diam is the diameter bound (floodmax, allflood).
	Diam int
	// C scales the analysis constant c (candidate rate, walk and broadcast
	// lengths) for every protocol that has one.
	C float64
	// X overrides the IRE walk count; XFactor scales the automatic one.
	X       int
	XFactor float64
	// MaxID overrides the candidate ID space (default n⁴).
	MaxID uint64
	// BroadcastOnly stops IRE after the cautious-broadcast phase (the
	// Lemma 1 ablation instrument).
	BroadcastOnly bool
	// AnnounceRounds bounds the explicit announcement flood (default n).
	AnnounceRounds int
	// Beta overrides the walknotify tokens per candidate.
	Beta int
	// AllNodes makes every floodmax node a candidate.
	AllNodes bool
	// Epsilon, Xi, Iso, FMult, RMult parameterize revocable election.
	Epsilon float64
	Xi      float64
	Iso     float64
	FMult   float64
	RMult   float64
	// MaxRounds caps an open-ended (revocable) run; 0 selects the default
	// budget (bounded when Faulted, since faults can make convergence
	// unreachable).
	MaxRounds int
	// MaxDelay is the adversary's delivery-jitter bound: fixed round
	// budgets are stretched by it so late packets can drain.
	MaxDelay int
	// Faulted reports that an adversary is active this run.
	Faulted bool
}

// Needs declares which profiled graph quantities a protocol consumes, so
// the runner only computes a (potentially lazy) spectral profile when a
// needed input was not supplied explicitly.
type Needs uint8

const (
	// NeedTMix marks the mixing-time input.
	NeedTMix Needs = 1 << iota
	// NeedPhi marks the conductance input.
	NeedPhi
	// NeedDiam marks the diameter input.
	NeedDiam
)

// Outcome is the unified per-run result a registered protocol's collector
// reads off a finished network. Leaders (and the explicit protocol's
// all-know clause) are judged over surviving nodes only: a crash-stopped
// node cannot claim or learn a leadership it will never act on.
type Outcome struct {
	// Leaders lists surviving node indices that raised the leader flag.
	Leaders []int
	// LeaderID is the elected leader's random ID (0 if none).
	LeaderID uint64
	// AllKnow reports whether every surviving node learned the leader.
	// Vacuously true for protocols without an announcement phase.
	AllKnow bool
	// Parents/Depths describe the announcement BFS tree (explicit only).
	Parents []int
	Depths  []int
	// HasCertificate and the certificate fields carry the revocable
	// leader certificate agreed by the surviving nodes.
	HasCertificate bool
	CertID         uint64
	CertEstimate   uint64
	FinalEstimate  uint64
}

// Runner is a built, ready-to-execute protocol: the machine factory plus
// the execution plan and the outcome collector.
type Runner struct {
	// Factory builds the per-node machines.
	Factory sim.Factory
	// Budget is the fixed round budget (protocol length plus halt slack
	// and adversary jitter). 0 means open-ended: the run is driven by
	// Converged under MaxRounds.
	Budget int
	// CheckEvery is the convergence poll period of an open-ended run.
	CheckEvery int
	// MaxRounds caps an open-ended run.
	MaxRounds int
	// Converged reports stabilization of an open-ended run. It receives a
	// read view instead of the concrete simulator so the same predicate
	// drives the in-memory and real-transport backends.
	Converged func(nw sim.View) bool
	// Collect reads the unified outcome off a finished execution.
	Collect func(nw sim.View) Outcome
}

// Entry is one protocol's registration: its canonical name, optional
// aliases, the profiled inputs it consumes, and its builder.
type Entry struct {
	// Name is the canonical protocol name (the cell identity experiments
	// and artifacts key on).
	Name string
	// Aliases name the same protocol under legacy spellings.
	Aliases []string
	// Info is a one-line human description.
	Info string
	// Needs declares the profiled inputs the builder consumes.
	Needs Needs
	// Build resolves the config into an executable Runner.
	Build func(pc ProtoConfig) (Runner, error)
	// Wire serializes the protocol's payloads for the real-transport
	// backend (nil: the protocol can only run on the in-memory simulator).
	Wire sim.WireCodec
}

var (
	registry []Entry
	byName   = map[string]int{}
)

// Register adds a protocol to the registry. It is called from package
// init functions only (this package registers the paper's protocols,
// internal/baseline the promoted baselines), so lookups need no locking.
// Duplicate names panic: they are programmer errors.
func Register(e Entry) {
	if e.Name == "" || e.Build == nil {
		panic("core: protocol registration requires a name and a builder")
	}
	if _, dup := byName[e.Name]; dup {
		panic("core: duplicate protocol registration " + e.Name)
	}
	byName[e.Name] = len(registry)
	for _, a := range e.Aliases {
		if _, dup := byName[a]; dup {
			panic("core: duplicate protocol alias " + a)
		}
		byName[a] = len(registry)
	}
	registry = append(registry, e)
}

// Lookup resolves a protocol name or alias.
func Lookup(name string) (Entry, bool) {
	i, ok := byName[name]
	if !ok {
		return Entry{}, false
	}
	return registry[i], true
}

// Names lists the canonical protocol names in registration order (the
// paper's protocols first, then the baselines).
func Names() []string {
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.Name
	}
	return names
}

func init() {
	Register(Entry{
		Name:  "ire",
		Info:  "Irrevocable Leader Election, known n (paper Section 4)",
		Needs: NeedTMix | NeedPhi,
		Build: buildIRE,
		Wire:  wireCodec{},
	})
	Register(Entry{
		Name:  "explicit",
		Info:  "explicit IRE: Section 4 election + announcement flood and BFS tree (Section 3)",
		Needs: NeedTMix | NeedPhi,
		Build: buildExplicit,
		Wire:  wireCodec{},
	})
	Register(Entry{
		Name:  "revocable",
		Info:  "Blind Leader Election with Certificates, unknown n (paper Section 5.2)",
		Build: buildRevocable,
		Wire:  wireCodec{},
	})
}

// ireConfig maps the shared ProtoConfig onto the IRE tunables.
func ireConfig(pc ProtoConfig) IREConfig {
	return IREConfig{
		N: pc.N, TMix: pc.TMix, Phi: pc.Phi, C: pc.C,
		X: pc.X, XFactor: pc.XFactor, MaxID: pc.MaxID,
		BroadcastOnly: pc.BroadcastOnly,
	}
}

func buildIRE(pc ProtoConfig) (Runner, error) {
	cfg := ireConfig(pc)
	p, err := cfg.resolve()
	if err != nil {
		return Runner{}, err
	}
	factory, err := NewIREFactory(cfg)
	if err != nil {
		return Runner{}, err
	}
	return Runner{
		Factory: factory,
		Budget:  p.total + 4 + pc.MaxDelay,
		Collect: collectIRE,
	}, nil
}

func collectIRE(nw sim.View) Outcome {
	out := Outcome{AllKnow: true}
	for v := 0; v < nw.N(); v++ {
		if nw.Crashed(v) {
			continue
		}
		o := nw.Machine(v).(*IREMachine).Output()
		if o.Leader {
			out.Leaders = append(out.Leaders, v)
			out.LeaderID = o.ID
		}
	}
	return out
}

func buildExplicit(pc ProtoConfig) (Runner, error) {
	cfg := ExplicitConfig{IRE: ireConfig(pc), AnnounceRounds: pc.AnnounceRounds}
	p, err := cfg.IRE.resolve()
	if err != nil {
		return Runner{}, err
	}
	factory, err := NewExplicitFactory(cfg)
	if err != nil {
		return Runner{}, err
	}
	announce := cfg.AnnounceRounds
	if announce <= 0 {
		announce = p.n
	}
	return Runner{
		Factory: factory,
		Budget:  p.total + announce + 2 + 4 + pc.MaxDelay,
		Collect: collectExplicit,
	}, nil
}

func collectExplicit(nw sim.View) Outcome {
	n := nw.N()
	out := Outcome{
		AllKnow: true,
		Parents: make([]int, n),
		Depths:  make([]int, n),
	}
	for v := 0; v < n; v++ {
		o := nw.Machine(v).(*ExplicitMachine).Output()
		out.Depths[v] = o.Depth
		if o.ParentPort >= 0 {
			out.Parents[v] = nw.Graph().Neighbor(v, o.ParentPort)
		} else {
			out.Parents[v] = -1
		}
		if nw.Crashed(v) {
			continue // only survivors claim or learn leadership
		}
		if o.IRE.Leader {
			out.Leaders = append(out.Leaders, v)
			out.LeaderID = o.IRE.ID
		}
		if !o.KnowsLeader {
			out.AllKnow = false
		}
	}
	return out
}

func buildRevocable(pc ProtoConfig) (Runner, error) {
	cfg := RevocableConfig{
		Epsilon: pc.Epsilon, Xi: pc.Xi, Isoperimetric: pc.Iso,
		FMult: pc.FMult, RMult: pc.RMult,
	}
	factory, err := NewRevocableFactory(cfg)
	if err != nil {
		return Runner{}, err
	}
	eps := cfg.Epsilon
	if eps == 0 {
		eps = 0.5
	}
	maxRounds := pc.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 200_000_000
		if pc.Faulted {
			// Faults can make convergence unreachable (e.g. the would-be
			// leader crash-stops); the fault-free budget would be an
			// effective hang, so adversarial runs get a bounded one.
			maxRounds = 1_000_000
		}
	}
	return Runner{
		Factory:    factory,
		CheckEvery: 64,
		MaxRounds:  maxRounds,
		Converged:  func(nw sim.View) bool { return revocableConverged(nw, eps) },
		Collect:    collectRevocable,
	}, nil
}

// revocableConverged is the Theorem 3 stabilization predicate, evaluated
// over surviving nodes (a crashed node can never choose, so including it
// would run every faulted trial to the round cap). The reference output
// comes from the lowest-index survivor.
func revocableConverged(nw sim.View, eps float64) bool {
	n := nw.N()
	ref := -1
	for v := 0; v < n; v++ {
		if !nw.Crashed(v) {
			ref = v
			break
		}
	}
	if ref < 0 {
		return false // everyone crashed; the run can only time out
	}
	first := nw.Machine(ref).(*RevocableMachine).Output()
	if !first.Chosen || first.LeaderK == 0 {
		return false
	}
	if math.Pow(float64(first.EstimateK), 1+eps) <= 4*float64(n) {
		return false
	}
	for v := ref + 1; v < n; v++ {
		if nw.Crashed(v) {
			continue
		}
		o := nw.Machine(v).(*RevocableMachine).Output()
		if !o.Chosen || o.LeaderK != first.LeaderK || o.LeaderID != first.LeaderID {
			return false
		}
	}
	return true
}

func collectRevocable(nw sim.View) Outcome {
	out := Outcome{AllKnow: true}
	for v := 0; v < nw.N(); v++ {
		if nw.Crashed(v) {
			continue
		}
		o := nw.Machine(v).(*RevocableMachine).Output()
		if !out.HasCertificate {
			out.HasCertificate = true
			out.CertID, out.CertEstimate = o.LeaderID, o.LeaderK
			out.FinalEstimate = o.EstimateK
			out.LeaderID = o.LeaderID
		}
		if o.Leader {
			out.Leaders = append(out.Leaders, v)
		}
	}
	return out
}
