package core

import (
	"fmt"
	"testing"

	"anonlead/internal/graph"
	"anonlead/internal/sim"
	"anonlead/internal/trace"
)

// TestIREWithForcedIDCollisions shrinks the ID space so candidate ID
// collisions are common. The protocol's whp-uniqueness argument breaks by
// design (two max-ID candidates both win), but execution must stay safe:
// halt on schedule, never elect a non-candidate, and still elect the max.
func TestIREWithForcedIDCollisions(t *testing.T) {
	g := graph.Complete(32)
	cfg := profiledConfig(t, g)
	cfg.MaxID = 4 // IDs from {1..4}: collisions guaranteed among ~7 candidates
	multi, unique := 0, 0
	for s := uint64(0); s < 10; s++ {
		leaders, outs, _ := runIRE(t, g, cfg, 4200+s)
		var maxCand uint64
		for _, o := range outs {
			if o.Candidate && o.ID > maxCand {
				maxCand = o.ID
			}
		}
		for v, o := range outs {
			if o.Leader && !o.Candidate {
				t.Fatalf("seed %d: non-candidate %d elected", s, v)
			}
			if o.Leader && o.ID != maxCand {
				t.Fatalf("seed %d: leader ID %d is not the max %d", s, o.ID, maxCand)
			}
		}
		switch {
		case leaders > 1:
			multi++
		case leaders == 1:
			unique++
		}
	}
	if multi == 0 {
		t.Log("no collision-induced multi-leader outcome in 10 seeds (possible but unlikely)")
	}
	if multi+unique == 0 {
		t.Fatal("no leaders at all across seeds")
	}
}

// TestIREPaperExactCongestBudget runs with CongestBits=1 — the paper's
// conservative bit-by-bit accounting — and checks the charged time scales
// with the message bit volume while the protocol outcome is unchanged.
func TestIREPaperExactCongestBudget(t *testing.T) {
	g := graph.Complete(24)
	cfg := profiledConfig(t, g)
	factory, err := NewIREFactory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func(budget int) (int, sim.Metrics) {
		nw := sim.New(sim.Config{Graph: g, Seed: 5, CongestBits: budget}, factory)
		_, _, _, _, total := nw.Machine(0).(*IREMachine).Params()
		nw.Run(total + 4)
		leaders := 0
		for v := 0; v < g.N(); v++ {
			if nw.Machine(v).(*IREMachine).Output().Leader {
				leaders++
			}
		}
		return leaders, nw.Metrics()
	}
	leadersWide, wide := run(0) // default 8⌈log n⌉
	leadersBit, bit := run(1)   // 1 bit per link per round
	if leadersWide != leadersBit {
		t.Fatalf("outcome depends on budget: %d vs %d leaders", leadersWide, leadersBit)
	}
	if bit.Messages != wide.Messages || bit.Bits != wide.Bits {
		t.Fatal("message accounting must not depend on the budget")
	}
	if bit.ChargedRounds <= wide.ChargedRounds {
		t.Fatalf("bit-serial charge %d not above wide-budget charge %d", bit.ChargedRounds, wide.ChargedRounds)
	}
}

// TestIRETraceEvents cross-checks the trace stream against protocol
// outputs: candidate and leader events must match the output flags
// exactly.
func TestIRETraceEvents(t *testing.T) {
	g := graph.Torus(4, 4)
	cfg := profiledConfig(t, g)
	factory, err := NewIREFactory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRing(4096)
	nw := sim.New(sim.Config{Graph: g, Seed: 9, Trace: rec}, factory)
	_, _, _, _, total := nw.Machine(0).(*IREMachine).Params()
	nw.Run(total + 4)
	cands, leaders := 0, 0
	for v := 0; v < g.N(); v++ {
		o := nw.Machine(v).(*IREMachine).Output()
		if o.Candidate {
			cands++
		}
		if o.Leader {
			leaders++
		}
	}
	if got := rec.Count("candidate"); got != int64(cands) {
		t.Fatalf("candidate events %d want %d", got, cands)
	}
	if got := rec.Count("leader"); got != int64(leaders) {
		t.Fatalf("leader events %d want %d", got, leaders)
	}
	// Leader events fire at the decide round.
	for _, e := range rec.Filter("leader") {
		if e.Round != total {
			t.Fatalf("leader event at round %d want %d", e.Round, total)
		}
	}
}

// TestRevocableTraceChooseEvents verifies every node traces exactly one
// choose event carrying its final certificate.
func TestRevocableTraceChooseEvents(t *testing.T) {
	g := graph.Complete(3)
	factory, err := NewRevocableFactory(RevocableConfig{Epsilon: 0.5, Isoperimetric: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRing(64)
	nw := sim.New(sim.Config{Graph: g, Seed: 4, Trace: rec}, factory)
	nw.RunUntil(40_000_000, func(completed int) bool {
		return completed%64 == 0 && revConverged(nw, 0.5)
	})
	if !revConverged(nw, 0.5) {
		t.Fatal("did not converge")
	}
	if got := rec.Count("choose"); got != int64(g.N()) {
		t.Fatalf("choose events %d want %d", got, g.N())
	}
	for v := 0; v < g.N(); v++ {
		o := nw.Machine(v).(*RevocableMachine).Output()
		want := fmt.Sprintf("id=%d k=%d", o.ID, o.K)
		found := false
		for _, e := range rec.Filter("choose") {
			if e.Node == v && e.Detail == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d: no choose event %q", v, want)
		}
	}
}

// TestIREStarHubAdversary uses the star, where a single hub relays all
// traffic — the extreme multiplexing case. The protocol must stay within
// the CONGEST slot accounting and still elect.
func TestIREStarHubAdversary(t *testing.T) {
	g := graph.Star(48)
	cfg := profiledConfig(t, g)
	wins := 0
	for s := uint64(0); s < 8; s++ {
		leaders, _, met := runIRE(t, g, cfg, 8800+s)
		if leaders == 1 {
			wins++
		}
		if met.MaxChannels > 0 && met.MaxLinkSlots < met.MaxChannels {
			t.Fatalf("slot accounting below channel count: %+v", met)
		}
	}
	if wins < 6 {
		t.Fatalf("star wins %d/8", wins)
	}
}
