package core
