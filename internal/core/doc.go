// Package core implements the paper's two leader-election protocols for
// anonymous CONGEST networks:
//
//   - Irrevocable Leader Election with known network size (Section 4,
//     Algorithms 1–5): random candidate sampling, *cautious broadcast*
//     territory growth with doubling-threshold subtree control, candidate
//     random-walk probes with max-ID absorption, and per-territory
//     convergecast. Elects a unique leader whp using Õ(√(n·tmix/Φ))
//     messages in O(tmix·log² n) time.
//
//   - Revocable ("Blind") Leader Election with Certificates via Diffusion
//     with Thresholds for unknown network size (Section 5.2, Algorithms
//     6–7): doubling size estimates probed by a potential-diffusion process
//     with alarms and thresholds; IDs compounded with the estimate used to
//     choose them act as certificates. Solves explicit Revocable LE whp in
//     Õ(n^{4(1+ε)}/i(G)²) time.
//
// Both protocols run on the internal/sim substrate and observe only what
// the paper's model grants an anonymous node: its degree, its ports, its
// private randomness, and (for the irrevocable protocol) the global inputs
// n, tmix, Φ.
//
// # Fidelity notes
//
// Two places where the paper's prose and pseudocode diverge are resolved in
// favor of the prose, because the complexity analysis (Lemma 1) depends on
// it: (1) subtree-size reports during cautious broadcast are sent only when
// the confirmed count crosses the node's current doubling threshold (the
// pseudocode line 24 sends every round, which would void the message
// bound); (2) convergecast forwards the max walk ID only when it changes
// (the pseudocode resends every round). Both gated variants send a superset
// of the information the analysis requires. Protocol constants that the
// analysis fixes only as "sufficiently large c" are exposed in the config
// structs with defaults calibrated in EXPERIMENTS.md.
package core
