package core

import (
	"fmt"
	"math"

	"anonlead/internal/rng"
	"anonlead/internal/sim"
)

// IREConfig parameterizes the Irrevocable Leader Election protocol
// (Section 4). N, TMix and Phi are the global inputs the paper assumes
// known (linear upper bounds suffice, cf. Theorem 1); the remaining fields
// expose the analysis constants, defaulting to the calibration recorded in
// EXPERIMENTS.md.
type IREConfig struct {
	// N is the (known) network size. Required.
	N int
	// TMix is the lazy-walk mixing time of the network (or an upper
	// bound). Required.
	TMix int
	// Phi is the graph conductance Φ(G) (or a lower bound). Required.
	Phi float64
	// C scales every "c·log n" length in the protocol: candidate rate
	// (C·ln n)/n, walk length C·tmix·log n, broadcast length. Zero
	// selects DefaultIREC.
	C float64
	// X overrides the number of random walks per candidate. Zero selects
	// the paper's x = √(n·log n/(Φ·tmix)), scaled by XFactor.
	X int
	// XFactor scales the automatic x (ignored when X > 0). Zero = 1.
	XFactor float64
	// MaxID overrides the ID space (default n⁴).
	MaxID uint64
	// BroadcastOnly stops after the cautious-broadcast phase (no walks,
	// no convergecast, no leader). Used by the Lemma 1 ablation to
	// measure territory sizes and broadcast cost in isolation.
	BroadcastOnly bool
}

// DefaultIREC is the default analysis constant c. The paper requires only
// "sufficiently large" c; EXPERIMENTS.md calibrates this value to reach
// >95% unique-election rates at simulable sizes.
const DefaultIREC = 2.0

// ireParams holds the resolved, derived protocol parameters.
type ireParams struct {
	n             int
	tmix          int
	phi           float64
	c             float64
	x             int     // walks per candidate
	walkLen       int     // rounds of the random-walk phase
	bcastLen      int     // rounds of the cautious-broadcast phase
	ccLen         int     // rounds of the convergecast phase
	capSize       int     // territory cap x·tmix·Φ (clamped to [2, n])
	candProb      float64 // candidate probability (c·ln n)/n
	maxID         uint64  // IDs drawn uniformly from [1, maxID]
	total         int     // total protocol rounds before halting
	walkStart     int
	ccStart       int
	broadcastOnly bool
}

// resolve validates the config and computes derived parameters.
func (cfg IREConfig) resolve() (ireParams, error) {
	var p ireParams
	if cfg.N < 2 {
		return p, fmt.Errorf("core: IREConfig.N must be >= 2, got %d", cfg.N)
	}
	if cfg.TMix < 1 {
		return p, fmt.Errorf("core: IREConfig.TMix must be >= 1, got %d", cfg.TMix)
	}
	if !(cfg.Phi > 0) || cfg.Phi > 1 {
		return p, fmt.Errorf("core: IREConfig.Phi must be in (0,1], got %v", cfg.Phi)
	}
	p.n = cfg.N
	p.tmix = cfg.TMix
	p.phi = cfg.Phi
	p.c = cfg.C
	if p.c <= 0 {
		p.c = DefaultIREC
	}
	ln := math.Log(float64(p.n))
	if ln < 1 {
		ln = 1
	}
	p.candProb = p.c * ln / float64(p.n)
	if p.candProb > 1 {
		p.candProb = 1
	}
	p.maxID = cfg.MaxID
	if p.maxID == 0 {
		nn := uint64(p.n)
		p.maxID = nn * nn * nn * nn
	}
	p.x = cfg.X
	if p.x <= 0 {
		xf := cfg.XFactor
		if xf <= 0 {
			xf = 1
		}
		auto := math.Sqrt(float64(p.n) * ln / (p.phi * float64(p.tmix)))
		p.x = int(math.Ceil(xf * auto))
	}
	if p.x < 1 {
		p.x = 1
	}
	phaseLen := int(math.Ceil(p.c * float64(p.tmix) * ln))
	if phaseLen < 4 {
		phaseLen = 4
	}
	p.bcastLen = phaseLen
	p.walkLen = phaseLen
	p.ccLen = phaseLen
	p.capSize = int(math.Ceil(float64(p.x) * float64(p.tmix) * p.phi))
	if p.capSize < 2 {
		p.capSize = 2
	}
	if p.capSize > p.n {
		p.capSize = p.n
	}
	// One flush round between phases lets in-flight messages of the
	// previous phase drain before the next phase's sends begin.
	p.walkStart = p.bcastLen + 1
	p.ccStart = p.walkStart + p.walkLen + 1
	p.total = p.ccStart + p.ccLen + 1
	if cfg.BroadcastOnly {
		p.broadcastOnly = true
		p.walkStart = p.bcastLen + 1
		p.ccStart = p.walkStart
		p.total = p.bcastLen + 2
	}
	return p, nil
}

// IREOutput is what one node reports after the protocol halts.
type IREOutput struct {
	// Candidate reports whether this node self-selected as a candidate.
	Candidate bool
	// ID is the node's random ID (drawn from [1, n⁴]).
	ID uint64
	// Leader is the elected flag (Definition 1); whp exactly one node in
	// the network sets it.
	Leader bool
	// MaxIDSeen is the largest walk ID the node observed.
	MaxIDSeen uint64
	// Territory is the final confirmed territory size at a candidate's
	// root (0 for non-candidates).
	Territory int
	// JoinedTerritories counts the broadcast trees this node joined.
	JoinedTerritories int
	// HaltRound is the round at which the node halted.
	HaltRound int
}

// IREMachine is the per-node state machine for Irrevocable Leader Election.
// Construct with NewIREFactory.
type IREMachine struct {
	p       ireParams
	r       *rng.RNG
	out     IREOutput
	execs   map[uint64]*bcastExec // cautious-broadcast executions by source
	tokens  int                   // walk tokens currently held
	walked  bool                  // initial token spray done
	ccSent  map[uint64]uint64     // per-execution last ID convergecast to parent
	halted  bool
	chained bool // suppress ctx.Halt: a wrapper protocol continues after decide
}

// NewIREFactory returns a sim.Factory producing IRE machines with the given
// config. The returned error reports invalid configs before any network is
// built.
func NewIREFactory(cfg IREConfig) (sim.Factory, error) {
	p, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	var arena sim.Arena[IREMachine]
	return func(node, degree int, r *rng.RNG) sim.Machine {
		m := arena.New()
		m.p, m.r = p, r
		m.execs = make(map[uint64]*bcastExec)
		m.ccSent = make(map[uint64]uint64)
		return m
	}, nil
}

// Output returns the node's protocol outputs; valid after the network
// reports the node halted.
func (m *IREMachine) Output() IREOutput { return m.out }

// Params exposes resolved parameters for the harness (walk counts, phase
// lengths); useful when reporting experiment metadata.
func (m *IREMachine) Params() (x, bcastLen, walkLen, capSize, totalRounds int) {
	return m.p.x, m.p.bcastLen, m.p.walkLen, m.p.capSize, m.p.total
}

// Init implements sim.Machine: draw ID and candidacy (Algorithm 1 lines
// 2-3); candidates seed their broadcast execution.
//
// MaxIDSeen tracks the largest *walk* ID observed. Only candidate IDs ride
// walks (the pseudocode's IDmax ← ID at every node would let non-candidate
// IDs beat all candidates and elect nobody, contradicting Lemma 2 and the
// Theorem 1 correctness argument), so non-candidates start at 0.
func (m *IREMachine) Init(ctx *sim.Context) {
	m.out.ID = 1 + m.r.Uint64n(m.p.maxID)
	m.out.Candidate = m.r.Bernoulli(m.p.candProb)
	if m.out.Candidate {
		m.out.MaxIDSeen = m.out.ID
		m.execs[m.out.ID] = newRootExec(m.out.ID, ctx.Degree(), m.p.capSize)
		ctx.Trace("candidate", fmt.Sprintf("id=%d", m.out.ID))
	}
}

// Step implements sim.Machine, dispatching received packets by payload type
// (messages are self-describing, so phase transitions never misroute
// stragglers) and emitting sends for the current phase.
func (m *IREMachine) Step(ctx *sim.Context, inbox []sim.Packet) {
	round := ctx.Round()
	for _, pkt := range inbox {
		switch msg := pkt.Payload.(type) {
		case bcMsg:
			m.handleBroadcast(ctx, pkt.Port, msg)
		case walkMsg:
			m.tokens += msg.count
			if msg.id > m.out.MaxIDSeen {
				m.out.MaxIDSeen = msg.id
			}
		case ccMsg:
			if msg.id > m.out.MaxIDSeen {
				m.out.MaxIDSeen = msg.id
			}
		}
	}

	switch {
	case round < m.p.bcastLen:
		for _, e := range m.execOrder() {
			e.prepare(ctx, m.r)
		}
	case round >= m.p.total:
		m.decide(ctx, round)
	case m.p.broadcastOnly:
		// Broadcast-only ablation: idle until the decide round.
	case round >= m.p.walkStart && round < m.p.walkStart+m.p.walkLen:
		m.stepWalks(ctx)
	case round >= m.p.ccStart && round < m.p.ccStart+m.p.ccLen:
		m.stepConvergecast(ctx)
	}
}

// handleBroadcast routes a cautious-broadcast message to its execution,
// creating child state on a fresh invite.
func (m *IREMachine) handleBroadcast(ctx *sim.Context, port int, msg bcMsg) {
	e, ok := m.execs[msg.source]
	if !ok {
		if msg.kind != bcInvite {
			return // straggler for an execution we never joined
		}
		e = newChildExec(msg.source, ctx.Degree(), port, m.p.capSize)
		m.execs[msg.source] = e
		m.out.JoinedTerritories++
		return
	}
	e.handle(port, msg)
}

// execOrder returns executions in ascending source order so behavior is
// identical across schedulers (map iteration is randomized).
func (m *IREMachine) execOrder() []*bcastExec {
	order := make([]*bcastExec, 0, len(m.execs))
	for _, e := range m.execs {
		order = append(order, e)
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].source < order[j-1].source; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// stepWalks advances the random-walk phase (Algorithm 5 random-walk): the
// first walk round sprays the candidate's x tokens; every round each held
// token stays with probability 1/2 or moves to a uniform port, and moving
// tokens are batched per port into one (IDmax, count) message.
func (m *IREMachine) stepWalks(ctx *sim.Context) {
	deg := ctx.Degree()
	if deg == 0 {
		return
	}
	counts := make([]int, deg)
	if !m.walked {
		m.walked = true
		if m.out.Candidate {
			for i := 0; i < m.p.x; i++ {
				counts[m.r.Intn(deg)]++
			}
		}
	}
	if m.tokens > 0 {
		kept := 0
		for i := 0; i < m.tokens; i++ {
			if m.r.Coin() {
				kept++
				continue
			}
			counts[m.r.Intn(deg)]++
		}
		m.tokens = kept
	}
	for p, c := range counts {
		if c > 0 {
			ctx.Send(p, walkChannel, walkMsg{id: m.out.MaxIDSeen, count: c})
		}
	}
}

// stepConvergecast climbs each joined tree with the current maximum walk
// ID, sending only on change (see package doc fidelity note).
func (m *IREMachine) stepConvergecast(ctx *sim.Context) {
	for _, e := range m.execOrder() {
		if e.isRoot || e.parent < 0 {
			continue
		}
		if last, ok := m.ccSent[e.source]; ok && last >= m.out.MaxIDSeen {
			continue
		}
		m.ccSent[e.source] = m.out.MaxIDSeen
		ctx.Send(e.parent, chanOf(e.source), ccMsg{source: e.source, id: m.out.MaxIDSeen})
	}
}

// decide sets the leader flag (Algorithm 1 line 7) and halts.
func (m *IREMachine) decide(ctx *sim.Context, round int) {
	if m.halted {
		return
	}
	m.halted = true
	m.out.Leader = !m.p.broadcastOnly && m.out.Candidate && m.out.MaxIDSeen == m.out.ID
	if m.out.Candidate {
		if e, ok := m.execs[m.out.ID]; ok {
			m.out.Territory = e.confirmed
		}
	}
	if m.out.Leader {
		ctx.Trace("leader", fmt.Sprintf("id=%d territory=%d", m.out.ID, m.out.Territory))
	}
	m.out.HaltRound = round
	if !m.chained {
		ctx.Halt()
	}
}
