package core

import (
	"testing"

	"anonlead/internal/graph"
	"anonlead/internal/rng"
	"anonlead/internal/sim"
	"anonlead/internal/spectral"
)

// profiledConfig builds the default IRE config from a graph's profile.
func profiledConfig(t *testing.T, g *graph.Graph) IREConfig {
	t.Helper()
	prof, err := spectral.ProfileGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	return IREConfig{N: g.N(), TMix: prof.MixingTime, Phi: prof.Conductance}
}

func TestIREAcrossFamilies(t *testing.T) {
	r := rng.New(99)
	expander, err := graph.RandomRegular(48, 6, r)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		g       *graph.Graph
		trials  int
		minWins int
	}{
		{"complete32", graph.Complete(32), 10, 9},
		{"cycle20", graph.Cycle(20), 10, 8},
		{"torus5x5", graph.Torus(5, 5), 10, 8},
		{"hypercube32", graph.Hypercube(5), 10, 8},
		{"expander48", expander, 10, 8},
		{"star24", graph.Star(24), 8, 6},
		{"grid6x6", graph.Grid(6, 6), 8, 6},
		{"barbell", graph.Barbell(8, 5), 6, 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := profiledConfig(t, c.g)
			wins := 0
			for s := 0; s < c.trials; s++ {
				leaders, _, _ := runIRE(t, c.g, cfg, uint64(5000+s))
				if leaders == 1 {
					wins++
				}
			}
			if wins < c.minWins {
				t.Fatalf("unique-leader wins %d/%d below threshold %d", wins, c.trials, c.minWins)
			}
		})
	}
}

func TestIREDeterministicInSeed(t *testing.T) {
	g := graph.Torus(4, 4)
	cfg := profiledConfig(t, g)
	l1, o1, m1 := runIRE(t, g, cfg, 42)
	l2, o2, m2 := runIRE(t, g, cfg, 42)
	if l1 != l2 || m1 != m2 {
		t.Fatalf("same seed diverged: leaders %d vs %d, metrics %v vs %v", l1, l2, m1, m2)
	}
	for v := range o1 {
		if o1[v] != o2[v] {
			t.Fatalf("node %d output differs: %+v vs %+v", v, o1[v], o2[v])
		}
	}
}

func TestIREParallelSchedulerEquivalence(t *testing.T) {
	g := graph.Torus(4, 4)
	cfg := profiledConfig(t, g)
	factory, err := NewIREFactory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func(parallel bool) ([]IREOutput, sim.Metrics) {
		nw := sim.New(sim.Config{Graph: g, Seed: 17, Parallel: parallel, Workers: 4}, factory)
		_, _, _, _, total := nw.Machine(0).(*IREMachine).Params()
		nw.Run(total + 4)
		outs := make([]IREOutput, g.N())
		for v := range outs {
			outs[v] = nw.Machine(v).(*IREMachine).Output()
		}
		return outs, nw.Metrics()
	}
	seqOut, seqMet := run(false)
	parOut, parMet := run(true)
	if seqMet != parMet {
		t.Fatalf("metrics differ: %v vs %v", seqMet, parMet)
	}
	for v := range seqOut {
		if seqOut[v] != parOut[v] {
			t.Fatalf("node %d differs across schedulers", v)
		}
	}
}

func TestIREInvariantUnderPortPermutation(t *testing.T) {
	// Protocol correctness must not depend on the port labeling
	// (anonymous networks expose no canonical ports). Success rates on a
	// permuted graph should match the original within noise.
	base := graph.Torus(5, 5)
	perm := base.PermutePorts(rng.New(1234))
	cfg := profiledConfig(t, base)
	wins := func(g *graph.Graph) int {
		w := 0
		for s := 0; s < 10; s++ {
			leaders, _, _ := runIRE(t, g, cfg, uint64(800+s))
			if leaders == 1 {
				w++
			}
		}
		return w
	}
	if wBase, wPerm := wins(base), wins(perm); wBase < 8 || wPerm < 8 {
		t.Fatalf("success degraded under port permutation: base %d/10, permuted %d/10", wBase, wPerm)
	}
}

func TestIRELeaderIsMaxCandidate(t *testing.T) {
	// Whenever the election succeeds, the unique leader must be the
	// candidate with the maximum random ID (Theorem 1's argument).
	g := graph.Complete(24)
	cfg := profiledConfig(t, g)
	checked := 0
	for s := 0; s < 10; s++ {
		leaders, outs, _ := runIRE(t, g, cfg, uint64(300+s))
		if leaders != 1 {
			continue
		}
		var maxCand uint64
		var leaderID uint64
		for _, o := range outs {
			if o.Candidate && o.ID > maxCand {
				maxCand = o.ID
			}
			if o.Leader {
				leaderID = o.ID
			}
		}
		if leaderID != maxCand {
			t.Fatalf("seed %d: leader ID %d != max candidate ID %d", s, leaderID, maxCand)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no successful elections to check")
	}
}

func TestIREMaxCandidateAlwaysLeads(t *testing.T) {
	// The max-ID candidate never hears a larger walk ID, so it must raise
	// the flag in every election with at least one candidate (multi-leader
	// failures add leaders; they never remove the max).
	g := graph.Cycle(16)
	cfg := profiledConfig(t, g)
	for s := 0; s < 10; s++ {
		_, outs, _ := runIRE(t, g, cfg, uint64(700+s))
		var maxCand uint64
		anyCand := false
		for _, o := range outs {
			if o.Candidate {
				anyCand = true
				if o.ID > maxCand {
					maxCand = o.ID
				}
			}
		}
		if !anyCand {
			continue
		}
		found := false
		for _, o := range outs {
			if o.Leader && o.ID == maxCand {
				found = true
			}
		}
		if !found {
			t.Fatalf("seed %d: max candidate did not lead", s)
		}
	}
}

func TestIREZeroCandidatesElectsNobody(t *testing.T) {
	// With a negligible candidate rate most trials have no candidates; the
	// protocol must terminate cleanly with zero leaders.
	g := graph.Cycle(12)
	cfg := profiledConfig(t, g)
	cfg.C = 0.01
	sawZero := false
	for s := 0; s < 6; s++ {
		leaders, outs, _ := runIRE(t, g, cfg, uint64(40+s))
		cands := 0
		for _, o := range outs {
			if o.Candidate {
				cands++
			}
		}
		if cands == 0 {
			sawZero = true
			if leaders != 0 {
				t.Fatalf("seed %d: %d leaders without candidates", s, leaders)
			}
		}
	}
	if !sawZero {
		t.Skip("no zero-candidate trial drawn (rate tuned for them)")
	}
}

func TestIREHaltsExactlyOnSchedule(t *testing.T) {
	g := graph.Complete(16)
	cfg := profiledConfig(t, g)
	factory, err := NewIREFactory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nw := sim.New(sim.Config{Graph: g, Seed: 5}, factory)
	_, _, _, _, total := nw.Machine(0).(*IREMachine).Params()
	ran := nw.Run(total + 10)
	if ran > total+2 {
		t.Fatalf("ran %d rounds, schedule says %d", ran, total)
	}
	for v := 0; v < g.N(); v++ {
		out := nw.Machine(v).(*IREMachine).Output()
		if out.HaltRound != total {
			t.Fatalf("node %d halted at %d want %d", v, out.HaltRound, total)
		}
	}
}

func TestIREMessageScalingBeatsFloodOnComplete(t *testing.T) {
	// On K_n the paper's protocol uses Õ(√n) messages; flooding uses
	// Θ(n²) (Table 1's Ω(m) row). Two checks: the absolute message count
	// drops below the flooding floor m by n=256, and the n→2n growth
	// factor stays far below flooding's ~4x.
	small := graph.Complete(128)
	large := graph.Complete(256)
	_, _, metSmall := runIRE(t, small, profiledConfig(t, small), 9)
	_, _, metLarge := runIRE(t, large, profiledConfig(t, large), 9)
	if floodFloor := int64(large.M()); metLarge.Messages >= floodFloor {
		t.Fatalf("IRE messages %d not below flooding floor %d on K256", metLarge.Messages, floodFloor)
	}
	// Ideal √n scaling would give ~1.4x; polylog factors push it near 3x
	// at these sizes. Flooding grows at 4x — require clear separation.
	growth := float64(metLarge.Messages) / float64(metSmall.Messages)
	if growth > 3.6 {
		t.Fatalf("IRE message growth %v from K128 to K256 too close to flooding's 4x", growth)
	}
}

func TestIREPayloadBitsPositive(t *testing.T) {
	msgs := []sim.Payload{
		bcMsg{kind: bcInvite, source: 12345},
		bcMsg{kind: bcSize, source: 12345, size: 77},
		bcMsg{kind: bcActivate, source: 12345},
		bcMsg{kind: bcDeactivate, source: 12345},
		bcMsg{kind: bcStop, source: 12345},
		walkMsg{id: 999, count: 3},
		ccMsg{source: 5, id: 999},
	}
	for i, m := range msgs {
		if m.Bits() <= 0 {
			t.Fatalf("payload %d has non-positive bits", i)
		}
	}
	// Invites carry the full ID; control messages only the slot tag.
	invite := bcMsg{kind: bcInvite, source: 1 << 40}
	stop := bcMsg{kind: bcStop, source: 1 << 40}
	if invite.Bits() <= stop.Bits() {
		t.Fatal("invite should cost more than control messages")
	}
}
