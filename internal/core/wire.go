package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"anonlead/internal/sim"
)

// wireCodec serializes the paper protocols' payloads (cautious broadcast,
// random walk, convergecast, announcement, revocable diffusion and
// dissemination) for the real-transport backend. The encoding is a
// one-byte type tag followed by the struct fields as unsigned varints
// (floats as fixed 64-bit IEEE bits); it exists for fidelity, not
// compactness — CONGEST bit accounting always uses Payload.Bits, never the
// wire size.
type wireCodec struct{}

// Wire tags, one per payload type. Tags are part of the node-to-node wire
// contract within a single run only (both ends run the same binary), so
// renumbering is safe.
const (
	wireBC uint8 = iota + 1
	wireWalk
	wireCC
	wireAnnounce
	wireAvg
	wireDiss
)

func (wireCodec) AppendPayload(dst []byte, p sim.Payload) ([]byte, error) {
	switch m := p.(type) {
	case bcMsg:
		dst = append(dst, wireBC, uint8(m.kind))
		dst = binary.AppendUvarint(dst, m.source)
		dst = binary.AppendUvarint(dst, uint64(m.size))
		return dst, nil
	case walkMsg:
		dst = append(dst, wireWalk)
		dst = binary.AppendUvarint(dst, m.id)
		dst = binary.AppendUvarint(dst, uint64(m.count))
		return dst, nil
	case ccMsg:
		dst = append(dst, wireCC)
		dst = binary.AppendUvarint(dst, m.source)
		dst = binary.AppendUvarint(dst, m.id)
		return dst, nil
	case announceMsg:
		dst = append(dst, wireAnnounce)
		dst = binary.AppendUvarint(dst, m.id)
		dst = binary.AppendUvarint(dst, uint64(m.depth))
		return dst, nil
	case avgMsg:
		dst = append(dst, wireAvg, boolByte(m.q)|boolByte(m.c)<<1)
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(m.phi))
		dst = binary.AppendUvarint(dst, uint64(m.potBits))
		dst = binary.AppendUvarint(dst, m.idldr)
		dst = binary.AppendUvarint(dst, m.kldr)
		return dst, nil
	case dissMsg:
		dst = append(dst, wireDiss, boolByte(m.q)|boolByte(m.c)<<1)
		dst = binary.AppendUvarint(dst, m.idldr)
		dst = binary.AppendUvarint(dst, m.kldr)
		return dst, nil
	default:
		return dst, fmt.Errorf("core: no wire encoding for payload type %T", p)
	}
}

func (wireCodec) DecodePayload(src []byte) (sim.Payload, error) {
	if len(src) == 0 {
		return nil, fmt.Errorf("core: empty payload")
	}
	tag, body := src[0], src[1:]
	switch tag {
	case wireBC:
		kind, body, err := wireByte(body)
		if err != nil {
			return nil, err
		}
		source, body, err := wireUvarint(body)
		if err != nil {
			return nil, err
		}
		size, _, err := wireUvarint(body)
		if err != nil {
			return nil, err
		}
		return bcMsg{kind: bcKind(kind), source: source, size: int(size)}, nil
	case wireWalk:
		id, body, err := wireUvarint(body)
		if err != nil {
			return nil, err
		}
		count, _, err := wireUvarint(body)
		if err != nil {
			return nil, err
		}
		return walkMsg{id: id, count: int(count)}, nil
	case wireCC:
		source, body, err := wireUvarint(body)
		if err != nil {
			return nil, err
		}
		id, _, err := wireUvarint(body)
		if err != nil {
			return nil, err
		}
		return ccMsg{source: source, id: id}, nil
	case wireAnnounce:
		id, body, err := wireUvarint(body)
		if err != nil {
			return nil, err
		}
		depth, _, err := wireUvarint(body)
		if err != nil {
			return nil, err
		}
		return announceMsg{id: id, depth: int(depth)}, nil
	case wireAvg:
		flags, body, err := wireByte(body)
		if err != nil {
			return nil, err
		}
		if len(body) < 8 {
			return nil, fmt.Errorf("core: truncated avgMsg")
		}
		phi := math.Float64frombits(binary.BigEndian.Uint64(body))
		body = body[8:]
		potBits, body, err := wireUvarint(body)
		if err != nil {
			return nil, err
		}
		idldr, body, err := wireUvarint(body)
		if err != nil {
			return nil, err
		}
		kldr, _, err := wireUvarint(body)
		if err != nil {
			return nil, err
		}
		return avgMsg{
			phi: phi, potBits: int(potBits),
			q: flags&1 != 0, c: flags&2 != 0,
			idldr: idldr, kldr: kldr,
		}, nil
	case wireDiss:
		flags, body, err := wireByte(body)
		if err != nil {
			return nil, err
		}
		idldr, body, err := wireUvarint(body)
		if err != nil {
			return nil, err
		}
		kldr, _, err := wireUvarint(body)
		if err != nil {
			return nil, err
		}
		return dissMsg{q: flags&1 != 0, c: flags&2 != 0, idldr: idldr, kldr: kldr}, nil
	default:
		return nil, fmt.Errorf("core: unknown payload tag %d", tag)
	}
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

func wireByte(b []byte) (uint8, []byte, error) {
	if len(b) == 0 {
		return 0, nil, fmt.Errorf("core: truncated payload")
	}
	return b[0], b[1:], nil
}

func wireUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("core: bad varint in payload")
	}
	return v, b[n:], nil
}

// LeaderInfo implements sim.LeaderReporter.
func (m *IREMachine) LeaderInfo() (bool, uint64) {
	o := m.Output()
	return o.Leader, o.ID
}

// LeaderInfo implements sim.LeaderReporter.
func (m *ExplicitMachine) LeaderInfo() (bool, uint64) {
	o := m.Output()
	return o.IRE.Leader, o.IRE.ID
}

// LeaderInfo implements sim.LeaderReporter.
func (m *RevocableMachine) LeaderInfo() (bool, uint64) {
	o := m.Output()
	return o.Leader, o.LeaderID
}

var (
	_ sim.LeaderReporter = (*IREMachine)(nil)
	_ sim.LeaderReporter = (*ExplicitMachine)(nil)
	_ sim.LeaderReporter = (*RevocableMachine)(nil)
	_ sim.WireCodec      = wireCodec{}
)
