package core

import (
	"math"
	"testing"

	"anonlead/internal/graph"
	"anonlead/internal/sim"
)

// revNet builds a revocable network on g.
func revNet(t *testing.T, g *graph.Graph, cfg RevocableConfig, seed uint64) *sim.Network {
	t.Helper()
	factory, err := NewRevocableFactory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim.New(sim.Config{Graph: g, Seed: seed}, factory)
}

func TestRevocableLockstepSchedule(t *testing.T) {
	// Every phase length is a function of k alone, so all nodes must hold
	// identical (EstimateK, Iterations) at every round.
	g := graph.Cycle(5)
	nw := revNet(t, g, RevocableConfig{Epsilon: 0.5, Isoperimetric: 0.8}, 1)
	for step := 0; step < 3000; step++ {
		if !nw.Step() {
			t.Fatal("network stopped unexpectedly")
		}
		first := nw.Machine(0).(*RevocableMachine).Output()
		for v := 1; v < g.N(); v++ {
			o := nw.Machine(v).(*RevocableMachine).Output()
			if o.EstimateK != first.EstimateK || o.Iterations != first.Iterations {
				t.Fatalf("round %d: node %d at (k=%d,iter=%d), node 0 at (k=%d,iter=%d)",
					step, v, o.EstimateK, o.Iterations, first.EstimateK, first.Iterations)
			}
		}
	}
}

func TestRevocablePotentialConservation(t *testing.T) {
	// While every node is probing, the diffusion only redistributes
	// potential: the global sum is invariant (doubly stochastic S). Track
	// the sum of node potentials plus in-flight shares implicitly by
	// sampling at exchange boundaries (all nodes fold simultaneously, so
	// node-sum alone is conserved round to round).
	g := graph.Complete(4)
	nw := revNet(t, g, RevocableConfig{Epsilon: 0.5, Isoperimetric: 2}, 3)
	prevSum := -1.0
	checked := 0
	for step := 0; step < 4000; step++ {
		if !nw.Step() {
			t.Fatal("network stopped")
		}
		allProbing := true
		sum := 0.0
		sameIterPhase := true
		first := nw.Machine(0).(*RevocableMachine).Output()
		for v := 0; v < g.N(); v++ {
			o := nw.Machine(v).(*RevocableMachine).Output()
			sum += o.Potential
			if !o.Probing {
				allProbing = false
			}
			if o.EstimateK != first.EstimateK || o.Iterations != first.Iterations {
				sameIterPhase = false
			}
		}
		if allProbing && sameIterPhase && prevSum >= 0 {
			// Conservation only applies within one diffusion phase; a new
			// iteration resets potentials. Accept either invariance or a
			// reset to an integer count of black nodes.
			if math.Abs(sum-prevSum) > 1e-9 && sum != math.Trunc(sum) {
				t.Fatalf("round %d: potential sum %v jumped from %v", step, sum, prevSum)
			}
			checked++
		}
		prevSum = sum
	}
	if checked < 100 {
		t.Fatalf("conservation checked only %d times", checked)
	}
}

func TestRevocableUniqueLeaderAcrossGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		iso  float64
	}{
		{"complete3", graph.Complete(3), 1.5},
		{"complete4", graph.Complete(4), 2},
		{"path3", graph.Path(3), 1},
		{"star4", graph.Star(4), 1},
		{"cycle4", graph.Cycle(4), 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			wins := 0
			const trials = 3
			for s := uint64(0); s < trials; s++ {
				nw := revNet(t, c.g, RevocableConfig{Epsilon: 0.5, Isoperimetric: c.iso}, 9100+s)
				converged := func() bool { return revConverged(nw, 0.5) }
				nw.RunUntil(60_000_000, func(completed int) bool {
					return completed%64 == 0 && converged()
				})
				if !converged() {
					t.Fatalf("seed %d did not converge", s)
				}
				if countRevLeaders(nw) == 1 {
					wins++
				}
			}
			if wins < trials {
				t.Fatalf("unique leader in %d/%d trials", wins, trials)
			}
		})
	}
}

func TestRevocableBlindScheduleConverges(t *testing.T) {
	// Corollary 1: no network knowledge at all. Simulable only at n=2..3.
	g := graph.Path(2)
	nw := revNet(t, g, RevocableConfig{Epsilon: 0.5}, 5)
	converged := func() bool { return revConverged(nw, 0.5) }
	nw.RunUntil(80_000_000, func(completed int) bool {
		return completed%64 == 0 && converged()
	})
	if !converged() {
		t.Fatal("blind schedule did not converge on P2")
	}
	if countRevLeaders(nw) != 1 {
		t.Fatal("blind schedule elected multiple leaders")
	}
}

func TestRevocableDeterministicInSeed(t *testing.T) {
	g := graph.Complete(3)
	cfg := RevocableConfig{Epsilon: 0.5, Isoperimetric: 1.5}
	run := func() ([]RevocableOutput, sim.Metrics) {
		nw := revNet(t, g, cfg, 77)
		nw.Run(50_000)
		outs := make([]RevocableOutput, g.N())
		for v := range outs {
			outs[v] = nw.Machine(v).(*RevocableMachine).Output()
		}
		return outs, nw.Metrics()
	}
	o1, m1 := run()
	o2, m2 := run()
	if m1 != m2 {
		t.Fatalf("metrics differ: %v vs %v", m1, m2)
	}
	for v := range o1 {
		if o1[v] != o2[v] {
			t.Fatalf("node %d outputs differ", v)
		}
	}
}

func TestRevocableChosenIDsAreFinal(t *testing.T) {
	// Once a node chooses (id, K), the pair never changes (Algorithm 6
	// line 14's id=nil guard).
	g := graph.Complete(4)
	nw := revNet(t, g, RevocableConfig{Epsilon: 0.5, Isoperimetric: 2}, 11)
	type chosen struct {
		id, k uint64
	}
	fixed := make(map[int]chosen)
	for step := 0; step < 200_000; step++ {
		if !nw.Step() {
			break
		}
		for v := 0; v < g.N(); v++ {
			o := nw.Machine(v).(*RevocableMachine).Output()
			if !o.Chosen {
				continue
			}
			if prev, ok := fixed[v]; ok {
				if prev.id != o.ID || prev.k != o.K {
					t.Fatalf("node %d re-chose: (%d,%d) -> (%d,%d)", v, prev.id, prev.k, o.ID, o.K)
				}
			} else {
				fixed[v] = chosen{o.ID, o.K}
			}
		}
	}
	if len(fixed) != g.N() {
		t.Fatalf("only %d/%d nodes chose", len(fixed), g.N())
	}
}

func TestRevocableLeaderCertificateIsMinOfMaxK(t *testing.T) {
	// At stabilization, the agreed certificate must be the smallest ID
	// among nodes holding the maximum chosen K.
	g := graph.Complete(4)
	nw := revNet(t, g, RevocableConfig{Epsilon: 0.5, Isoperimetric: 2}, 21)
	converged := func() bool { return revConverged(nw, 0.5) }
	nw.RunUntil(60_000_000, func(completed int) bool {
		return completed%64 == 0 && converged()
	})
	if !converged() {
		t.Fatal("did not converge")
	}
	var maxK, minID uint64
	for v := 0; v < g.N(); v++ {
		o := nw.Machine(v).(*RevocableMachine).Output()
		if o.K > maxK {
			maxK, minID = o.K, o.ID
		} else if o.K == maxK && o.ID < minID {
			minID = o.ID
		}
	}
	agreed := nw.Machine(0).(*RevocableMachine).Output()
	if agreed.LeaderK != maxK || agreed.LeaderID != minID {
		t.Fatalf("certificate (%d,%d) != expected (%d,%d)", agreed.LeaderK, agreed.LeaderID, maxK, minID)
	}
}

func TestRevocableRevocationHappens(t *testing.T) {
	// The revocable semantics: some node holds the leader flag before the
	// final certificate displaces it. Detect at least one flag transition
	// true->false across the run (whp multiple nodes self-adopt first).
	g := graph.Complete(4)
	nw := revNet(t, g, RevocableConfig{Epsilon: 0.5, Isoperimetric: 2}, 2)
	wasLeader := make([]bool, g.N())
	revoked := false
	for step := 0; step < 200_000; step++ {
		if !nw.Step() {
			break
		}
		for v := 0; v < g.N(); v++ {
			o := nw.Machine(v).(*RevocableMachine).Output()
			if o.Leader {
				wasLeader[v] = true
			} else if wasLeader[v] {
				revoked = true
			}
		}
		if revoked {
			return
		}
	}
	if !revoked {
		t.Skip("no revocation observed in this seed (all nodes adopted the final leader immediately)")
	}
}

func TestRevocableFrozenAtMaxK(t *testing.T) {
	g := graph.Path(2)
	nw := revNet(t, g, RevocableConfig{Epsilon: 0.5, Isoperimetric: 1, MaxK: 4}, 1)
	nw.Run(3_000_000)
	for v := 0; v < g.N(); v++ {
		o := nw.Machine(v).(*RevocableMachine).Output()
		if o.EstimateK > 4 {
			t.Fatalf("node %d passed MaxK: %d", v, o.EstimateK)
		}
	}
}

func TestRevocableMsgBitsGrowWithPotential(t *testing.T) {
	small := avgMsg{phi: 0.5, potBits: 4, q: true, c: false}
	big := avgMsg{phi: 0.5, potBits: 400, q: true, c: false}
	if big.Bits() <= small.Bits() {
		t.Fatal("potential bit growth not reflected in message size")
	}
	withCert := dissMsg{q: true, c: true, idldr: 1 << 30, kldr: 16}
	without := dissMsg{q: true, c: true}
	if withCert.Bits() <= without.Bits() {
		t.Fatal("certificate not charged")
	}
}
