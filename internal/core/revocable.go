package core

import (
	"fmt"
	"math"

	"anonlead/internal/congest"
	"anonlead/internal/rng"
	"anonlead/internal/sim"
)

// RevocableConfig parameterizes Blind Leader Election with Certificates via
// Diffusion with Thresholds (Section 5.2, Algorithms 6-7). The protocol
// uses NO network knowledge; the config only fixes the analysis parameters
// ε and ξ, optionally a known isoperimetric lower bound (Theorem 3 vs
// Corollary 1), and simulation calibration multipliers.
type RevocableConfig struct {
	// Epsilon is the paper's ε ∈ (0, 1]. Zero selects 0.5 (smaller ε
	// lowers the polynomial degree of every phase length, which is what
	// makes faithful runs simulable; any value in (0,1] satisfies the
	// analysis).
	Epsilon float64
	// Xi is the paper's error parameter ξ ∈ (0, 1) in f(k). Zero selects
	// 0.5.
	Xi float64
	// Isoperimetric, when positive, is a known lower bound on i(G) and
	// selects the Theorem 3 diffusion length; zero selects the fully
	// blind Corollary 1 length (i(G) ≥ 2/k proxy, using only the running
	// estimate).
	Isoperimetric float64
	// FMult and RMult scale f(k) (certification repetitions) and r(k)
	// (diffusion rounds) for calibrated runs at sizes where the faithful
	// polynomials are not simulable. 1.0 (the zero-value default) is
	// faithful; EXPERIMENTS.md records any deviation.
	FMult float64
	RMult float64
	// MaxK caps the estimate ladder as a simulation safety net (the
	// protocol itself never stops). Zero means no cap.
	MaxK uint64
}

func (cfg RevocableConfig) resolve() (revParams, error) {
	p := revParams{
		eps:   cfg.Epsilon,
		xi:    cfg.Xi,
		iso:   cfg.Isoperimetric,
		fMult: cfg.FMult,
		rMult: cfg.RMult,
		maxK:  cfg.MaxK,
	}
	if p.eps == 0 {
		p.eps = 0.5
	}
	if p.eps < 0 || p.eps > 1 {
		return p, fmt.Errorf("core: RevocableConfig.Epsilon must be in (0,1], got %v", cfg.Epsilon)
	}
	if p.xi == 0 {
		p.xi = 0.5
	}
	if p.xi <= 0 || p.xi >= 1 {
		return p, fmt.Errorf("core: RevocableConfig.Xi must be in (0,1), got %v", cfg.Xi)
	}
	if p.iso < 0 {
		return p, fmt.Errorf("core: RevocableConfig.Isoperimetric must be >= 0, got %v", cfg.Isoperimetric)
	}
	if p.fMult == 0 {
		p.fMult = 1
	}
	if p.rMult == 0 {
		p.rMult = 1
	}
	if p.fMult < 0 || p.rMult < 0 {
		return p, fmt.Errorf("core: multipliers must be positive")
	}
	return p, nil
}

type revParams struct {
	eps, xi      float64
	iso          float64
	fMult, rMult float64
	maxK         uint64
}

// kPow returns k^{1+ε}.
func (p revParams) kPow(k uint64) float64 {
	return math.Pow(float64(k), 1+p.eps)
}

// fOf returns f(k) = (4√2/(√2−1)²)·ln(k^{1+ε}/ξ), the number of
// certification repetitions (Algorithm 6 header), scaled by FMult.
func (p revParams) fOf(k uint64) int {
	const lead = 4 * math.Sqrt2 // 4√2
	denom := (math.Sqrt2 - 1) * (math.Sqrt2 - 1)
	f := (lead / denom) * math.Log(p.kPow(k)/p.xi)
	f *= p.fMult
	if f < 1 {
		return 1
	}
	return int(math.Ceil(f))
}

// pOf returns p(k) = ln2 / k^{1+ε}, the white-node probability.
func (p revParams) pOf(k uint64) float64 {
	return math.Ln2 / p.kPow(k)
}

// tauOf returns τ(k) = 1 − 1/(k^{1+ε} − 1), the potential alarm threshold.
func (p revParams) tauOf(k uint64) float64 {
	kp := p.kPow(k)
	if kp <= 1 {
		return 0
	}
	return 1 - 1/(kp-1)
}

// rOf returns the diffusion length r(k): Theorem 3's
// (8k^{2(1+ε)}/i(G)²)·ln(k^{2(1+ε)}) + k^{1+ε}·ln(2k) when i(G) is known,
// else Corollary 1's blind 2k^{2(2+ε)}·ln(k^{2(1+ε)}) + k^{1+ε}·ln(2k);
// scaled by RMult.
func (p revParams) rOf(k uint64) int {
	kp := p.kPow(k)
	logTerm := math.Log(kp * kp)
	if logTerm < 1 {
		logTerm = 1
	}
	var main float64
	if p.iso > 0 {
		main = 8 * kp * kp / (p.iso * p.iso) * logTerm
	} else {
		main = 2 * math.Pow(float64(k), 2*(2+p.eps)) * logTerm
	}
	tail := kp * math.Log(2*float64(k))
	r := p.rMult*main + tail
	if r < 1 {
		return 1
	}
	if r > 1<<40 {
		return 1 << 40
	}
	return int(math.Ceil(r))
}

// dissOf returns the dissemination length k^{1+ε} (Algorithm 7 line 14).
func (p revParams) dissOf(k uint64) int {
	d := p.kPow(k)
	if d < 1 {
		return 1
	}
	return int(math.Ceil(d))
}

// idRangeOf returns the ID sample range k^{4(1+ε)}·log₂⁴(4k) (Algorithm 6
// line 15), clamped to avoid uint64 overflow.
func (p revParams) idRangeOf(k uint64) uint64 {
	l := math.Log2(4 * float64(k))
	r := math.Pow(float64(k), 4*(1+p.eps)) * l * l * l * l
	if r < 2 {
		return 2
	}
	if r > math.MaxUint64/4 {
		return math.MaxUint64 / 4
	}
	return uint64(r)
}

// revPhase is the machine's position inside one certification iteration.
type revPhase uint8

const (
	phaseDiffusion revPhase = iota + 1
	phaseDissemination
)

// avgMsg is the diffusion-phase broadcast ⟨Φ, q, c, idldr, Kldr⟩
// (Algorithm 7 line 6). potBits is the bit length of the potential after
// the sender's diffusion steps: potentials gain log₂(2k^{1+ε}) bits per
// averaging step and the paper transmits them bit by bit; the simulator
// charges the growing size through Bits.
type avgMsg struct {
	phi     float64
	potBits int
	q       bool // true = probing, false = low
	c       bool // white node exists
	idldr   uint64
	kldr    uint64
}

// Bits returns the CONGEST size: potential bits + 2 flag bits + leader
// certificate.
func (m avgMsg) Bits() int {
	b := m.potBits + 2
	if m.kldr > 0 {
		b += congest.BitLen(m.idldr) + congest.BitLen(m.kldr)
	} else {
		b++ // nil certificate marker
	}
	return b
}

// dissMsg is the dissemination-phase broadcast ⟨q, c, idldr, Kldr⟩
// (Algorithm 7 line 15).
type dissMsg struct {
	q     bool
	c     bool
	idldr uint64
	kldr  uint64
}

// Bits returns the CONGEST size.
func (m dissMsg) Bits() int {
	b := 2
	if m.kldr > 0 {
		b += congest.BitLen(m.idldr) + congest.BitLen(m.kldr)
	} else {
		b++
	}
	return b
}

// RevocableOutput is a snapshot of one node's externally visible state.
type RevocableOutput struct {
	// Chosen reports whether the node has chosen its ID (final, once set).
	Chosen bool
	// ID and K are the node's chosen ID and the estimate certificate used
	// to choose it (Algorithm 6 line 15).
	ID uint64
	K  uint64
	// LeaderID and LeaderK identify the leader from this node's
	// perspective: the smallest ID among the largest certificates seen.
	LeaderID uint64
	LeaderK  uint64
	// Leader is the (revocable) leadership flag (Algorithm 6 line 17).
	Leader bool
	// EstimateK is the current network-size estimate.
	EstimateK uint64
	// Iterations counts completed certification iterations in the current
	// estimate.
	Iterations int
	// Potential and Probing expose the diffusion state for tests and
	// debugging (Algorithm 7's Φ and q).
	Potential float64
	Probing   bool
}

// RevocableMachine runs Algorithms 6-7 as a round-driven state machine.
// All nodes advance the (k, iteration, phase) schedule in lockstep because
// every phase length is a deterministic function of k alone.
type RevocableMachine struct {
	p revParams
	r *rng.RNG

	// Algorithm 6 state.
	k       uint64
	id      uint64 // 0 = nil
	bigK    uint64
	idldr   uint64
	kldr    uint64
	leader  bool
	status  []bool // status[i]: iteration i stayed probing
	empty   []bool // empty[i]: no white node detected in iteration i
	iter    int    // current certification iteration (0-based)
	fK      int    // f(k) for the current k
	rK      int    // r(k) for the current k
	dissK   int    // dissemination length for the current k
	tau     float64
	share   float64 // 1/(2k^{1+ε})
	degCap  float64 // k^{1+ε} degree alarm level
	idRange uint64

	// Algorithm 7 per-iteration state.
	phase      revPhase
	phaseRound int
	phi        float64
	potBits    int
	q          bool // probing
	c          bool // white exists
	frozen     bool // maxK cap reached: hold state, stop sending
}

// NewRevocableFactory returns a sim.Factory for the revocable protocol.
func NewRevocableFactory(cfg RevocableConfig) (sim.Factory, error) {
	p, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	return func(node, degree int, r *rng.RNG) sim.Machine {
		return &RevocableMachine{p: p, r: r}
	}, nil
}

// Output returns the node's current externally visible state. Revocable
// LE never halts, so this is valid at any time.
func (m *RevocableMachine) Output() RevocableOutput {
	return RevocableOutput{
		Chosen:     m.id != 0,
		ID:         m.id,
		K:          m.bigK,
		LeaderID:   m.idldr,
		LeaderK:    m.kldr,
		Leader:     m.leader,
		EstimateK:  m.k,
		Iterations: m.iter,
		Potential:  m.phi,
		Probing:    m.q,
	}
}

// Init implements sim.Machine: enter the first estimate k=2 and start its
// first certification iteration.
func (m *RevocableMachine) Init(ctx *sim.Context) {
	m.k = 1 // doubled to 2 by startEstimate
	m.startEstimate()
	m.startIteration()
}

// startEstimate advances to the next k (Algorithm 6 line 8) and derives
// the per-k parameters.
func (m *RevocableMachine) startEstimate() {
	m.k *= 2
	m.fK = m.p.fOf(m.k)
	m.rK = m.p.rOf(m.k)
	m.dissK = m.p.dissOf(m.k)
	m.tau = m.p.tauOf(m.k)
	m.share = 1 / (2 * m.p.kPow(m.k))
	m.degCap = m.p.kPow(m.k)
	m.idRange = m.p.idRangeOf(m.k)
	m.iter = 0
	m.status = m.status[:0]
	m.empty = m.empty[:0]
}

// startIteration begins one certification iteration: sample color, reset
// potential and flags (Algorithm 6 line 10, Algorithm 7 lines 2-4).
func (m *RevocableMachine) startIteration() {
	white := m.r.Bernoulli(m.p.pOf(m.k))
	m.c = white
	m.q = true
	if white {
		m.phi = 0
	} else {
		m.phi = 1
	}
	m.potBits = 1
	m.phase = phaseDiffusion
	m.phaseRound = 0
}

// Step implements sim.Machine: one synchronous round of the current phase.
func (m *RevocableMachine) Step(ctx *sim.Context, inbox []sim.Packet) {
	if m.frozen {
		return
	}
	switch m.phase {
	case phaseDiffusion:
		m.stepDiffusion(ctx, inbox)
	case phaseDissemination:
		m.stepDissemination(ctx, inbox)
	}
}

// stepDiffusion handles one diffusion round (Algorithm 7 lines 5-13).
// Synchronous structure: the broadcast of round t was emitted at the end
// of round t-1's Step, so this round's inbox carries the neighbors' values
// for the current exchange; we fold them in, then emit the next broadcast.
func (m *RevocableMachine) stepDiffusion(ctx *sim.Context, inbox []sim.Packet) {
	if m.phaseRound > 0 {
		m.foldDiffusionInbox(ctx, inbox)
	}
	if m.phaseRound >= m.rK {
		// Diffusion done: threshold alarm (line 13), move to
		// dissemination.
		if m.phi > m.tau {
			m.q = false
			m.phi = 1
		}
		m.phase = phaseDissemination
		m.phaseRound = 0
		m.stepDissemination(ctx, nil)
		return
	}
	m.phaseRound++
	ctx.Broadcast(avgMsg{
		phi: m.phi, potBits: m.potBits, q: m.q, c: m.c,
		idldr: m.idldr, kldr: m.kldr,
	})
}

// foldDiffusionInbox applies the averaging update and alarms for one
// completed exchange (Algorithm 7 lines 7-12).
func (m *RevocableMachine) foldDiffusionInbox(ctx *sim.Context, inbox []sim.Packet) {
	deg := ctx.Degree()
	allProbing := true
	sum := 0.0
	got := 0
	maxBits := m.potBits
	for _, pkt := range inbox {
		msg, ok := pkt.Payload.(avgMsg)
		if !ok {
			continue
		}
		got++
		if !msg.q {
			allProbing = false
		}
		sum += msg.phi
		if msg.potBits > maxBits {
			maxBits = msg.potBits
		}
		m.mergeCert(msg.idldr, msg.kldr)
	}
	if m.q && float64(deg) <= m.degCap && allProbing && got == deg {
		m.phi += sum*m.share - float64(deg)*m.phi*m.share
		m.potBits = maxBits + int(math.Ceil(math.Log2(2*m.p.kPow(m.k))))
	} else {
		m.q = false
		m.phi = 1
		m.potBits = 1
	}
}

// stepDissemination handles one dissemination round (Algorithm 7 lines
// 14-21): OR-merge alarms and white flags, merge leader certificates.
func (m *RevocableMachine) stepDissemination(ctx *sim.Context, inbox []sim.Packet) {
	for _, pkt := range inbox {
		msg, ok := pkt.Payload.(dissMsg)
		if !ok {
			continue
		}
		if !msg.q {
			m.q = false
		}
		if msg.c {
			m.c = true
		}
		m.mergeCert(msg.idldr, msg.kldr)
	}
	if m.phaseRound >= m.dissK {
		m.finishIteration(ctx)
		return
	}
	m.phaseRound++
	ctx.Broadcast(dissMsg{q: m.q, c: m.c, idldr: m.idldr, kldr: m.kldr})
}

// finishIteration records ⟨q, c⟩ (Algorithm 6 lines 11-13) and either
// starts the next certification iteration or runs the decision phase.
func (m *RevocableMachine) finishIteration(ctx *sim.Context) {
	m.status = append(m.status, m.q)
	m.empty = append(m.empty, !m.c)
	m.iter++
	if m.iter < m.fK {
		m.startIteration()
		return
	}
	m.decide(ctx)
	if m.p.maxK > 0 && m.k >= m.p.maxK {
		m.frozen = true
		return
	}
	m.startEstimate()
	m.startIteration()
}

// decide is the decision phase (Algorithm 6 lines 14-17).
func (m *RevocableMachine) decide(ctx *sim.Context) {
	emptyCount, probing := 0, 0
	for i := range m.status {
		if m.empty[i] {
			emptyCount++
		}
		if m.status[i] {
			probing++
		}
	}
	if m.id == 0 && emptyCount*2 > m.fK && probing > 0 {
		m.id = 1 + m.r.Uint64n(m.idRange)
		m.bigK = m.k
		// Line 16: adopt self as provisional leader; dissemination in the
		// next iterations revokes it if a better certificate exists.
		m.idldr, m.kldr = m.id, m.bigK
		ctx.Trace("choose", fmt.Sprintf("id=%d k=%d", m.id, m.bigK))
	}
	m.refreshLeader()
}

// refreshLeader recomputes the (revocable) leadership flag. The paper's
// prose keeps the indicator "maintained accordingly", so it is refreshed
// on every certificate change rather than only at Algorithm 6 line 17.
func (m *RevocableMachine) refreshLeader() {
	m.leader = m.id != 0 && m.kldr == m.bigK && m.idldr == m.id
}

// mergeCert folds a received leader certificate: larger K wins; ties go to
// the smaller ID (Algorithm 7 lines 10-12 and 19-21).
func (m *RevocableMachine) mergeCert(id, k uint64) {
	if k == 0 {
		return
	}
	if k > m.kldr || (k == m.kldr && id < m.idldr) {
		m.kldr = k
		m.idldr = id
		m.refreshLeader()
	}
}
