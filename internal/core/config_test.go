package core

import (
	"math"
	"testing"
)

func TestIREConfigValidation(t *testing.T) {
	valid := IREConfig{N: 16, TMix: 10, Phi: 0.5}
	if _, err := NewIREFactory(valid); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []IREConfig{
		{N: 1, TMix: 10, Phi: 0.5},
		{N: 16, TMix: 0, Phi: 0.5},
		{N: 16, TMix: 10, Phi: 0},
		{N: 16, TMix: 10, Phi: -0.1},
		{N: 16, TMix: 10, Phi: 1.5},
	}
	for i, cfg := range bad {
		if _, err := NewIREFactory(cfg); err == nil {
			t.Fatalf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestIREResolvedDefaults(t *testing.T) {
	p, err := IREConfig{N: 64, TMix: 20, Phi: 0.25}.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if p.c != DefaultIREC {
		t.Fatalf("default c %v", p.c)
	}
	wantProb := DefaultIREC * math.Log(64) / 64
	if math.Abs(p.candProb-wantProb) > 1e-12 {
		t.Fatalf("candProb %v want %v", p.candProb, wantProb)
	}
	if p.maxID != 64*64*64*64 {
		t.Fatalf("maxID %d want n^4", p.maxID)
	}
	wantX := int(math.Ceil(math.Sqrt(64 * math.Log(64) / (0.25 * 20))))
	if p.x != wantX {
		t.Fatalf("x %d want %d", p.x, wantX)
	}
	if p.capSize < 2 || p.capSize > 64 {
		t.Fatalf("capSize %d out of [2, n]", p.capSize)
	}
	if p.total <= p.bcastLen+p.walkLen+p.ccLen {
		t.Fatalf("total %d too small", p.total)
	}
}

func TestIREResolveOverrides(t *testing.T) {
	p, err := IREConfig{N: 64, TMix: 20, Phi: 0.25, C: 1, X: 7, MaxID: 1000}.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if p.c != 1 || p.x != 7 || p.maxID != 1000 {
		t.Fatalf("overrides ignored: %+v", p)
	}
}

func TestIREXFactorScales(t *testing.T) {
	base, _ := IREConfig{N: 128, TMix: 40, Phi: 0.2}.resolve()
	doubled, _ := IREConfig{N: 128, TMix: 40, Phi: 0.2, XFactor: 2}.resolve()
	if doubled.x < 2*base.x-1 || doubled.x > 2*base.x+1 {
		t.Fatalf("XFactor=2 gave x=%d (base %d)", doubled.x, base.x)
	}
}

func TestIREBroadcastOnlySchedule(t *testing.T) {
	p, err := IREConfig{N: 32, TMix: 10, Phi: 0.3, BroadcastOnly: true}.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !p.broadcastOnly {
		t.Fatal("flag lost")
	}
	if p.total != p.bcastLen+2 {
		t.Fatalf("broadcast-only total %d want %d", p.total, p.bcastLen+2)
	}
}

func TestRevocableConfigValidation(t *testing.T) {
	if _, err := NewRevocableFactory(RevocableConfig{}); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	bad := []RevocableConfig{
		{Epsilon: -0.5},
		{Epsilon: 1.5},
		{Xi: 1.5},
		{Xi: -0.2},
		{Isoperimetric: -1},
		{FMult: -1},
		{RMult: -0.5},
	}
	for i, cfg := range bad {
		if _, err := NewRevocableFactory(cfg); err == nil {
			t.Fatalf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestRevocableScheduleFunctions(t *testing.T) {
	p, err := RevocableConfig{Epsilon: 0.5}.resolve()
	if err != nil {
		t.Fatal(err)
	}
	// f, r, dissemination lengths grow with k.
	prevF, prevR, prevD := 0, 0, 0
	for k := uint64(2); k <= 64; k *= 2 {
		f, r, d := p.fOf(k), p.rOf(k), p.dissOf(k)
		if f <= prevF || r <= prevR || d <= prevD {
			t.Fatalf("schedule not increasing at k=%d: f=%d r=%d d=%d", k, f, r, d)
		}
		prevF, prevR, prevD = f, r, d
		// τ(k) in (0, 1); p(k) in (0, 1).
		if tau := p.tauOf(k); tau <= 0 || tau >= 1 {
			t.Fatalf("tau(%d) = %v", k, tau)
		}
		if pw := p.pOf(k); pw <= 0 || pw >= 1 {
			t.Fatalf("p(%d) = %v", k, pw)
		}
		// ID range must cover k^{4(1+ε)}.
		if got := p.idRangeOf(k); float64(got) < math.Pow(float64(k), 4*1.5) {
			t.Fatalf("idRange(%d) = %d below k^6", k, got)
		}
	}
}

func TestRevocableKnownIsoShortensDiffusion(t *testing.T) {
	blind, _ := RevocableConfig{Epsilon: 0.5}.resolve()
	iso, _ := RevocableConfig{Epsilon: 0.5, Isoperimetric: 2}.resolve()
	for k := uint64(4); k <= 32; k *= 2 {
		if iso.rOf(k) >= blind.rOf(k) {
			t.Fatalf("known-iso r(%d)=%d not shorter than blind %d", k, iso.rOf(k), blind.rOf(k))
		}
	}
}

func TestRevocableCalibrationMultipliers(t *testing.T) {
	full, _ := RevocableConfig{Epsilon: 0.5}.resolve()
	scaled, _ := RevocableConfig{Epsilon: 0.5, FMult: 0.5, RMult: 0.1}.resolve()
	k := uint64(16)
	if scaled.fOf(k) > full.fOf(k)/2+1 {
		t.Fatalf("FMult not applied: %d vs %d", scaled.fOf(k), full.fOf(k))
	}
	if scaled.rOf(k) > full.rOf(k)/5 {
		t.Fatalf("RMult not applied: %d vs %d", scaled.rOf(k), full.rOf(k))
	}
}

func TestChanOfAvoidsWalkChannel(t *testing.T) {
	if chanOf(uint64(walkChannel)) == walkChannel {
		t.Fatal("chanOf collided with the walk channel")
	}
	if chanOf(7) != 7 {
		t.Fatalf("chanOf(7) = %d", chanOf(7))
	}
}
