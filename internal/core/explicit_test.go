package core

import (
	"testing"

	"anonlead/internal/graph"
	"anonlead/internal/sim"
)

// runExplicit executes one explicit election and returns the outputs.
func runExplicit(t *testing.T, g *graph.Graph, cfg ExplicitConfig, seed uint64) []ExplicitOutput {
	t.Helper()
	factory, err := NewExplicitFactory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nw := sim.New(sim.Config{Graph: g, Seed: seed}, factory)
	total := nw.Machine(0).(*ExplicitMachine).TotalRounds()
	nw.Run(total + 4)
	if !nw.AllHalted() {
		t.Fatalf("explicit election did not halt in %d rounds", total+4)
	}
	outs := make([]ExplicitOutput, g.N())
	for v := range outs {
		outs[v] = nw.Machine(v).(*ExplicitMachine).Output()
	}
	return outs
}

func explicitCfg(t *testing.T, g *graph.Graph) ExplicitConfig {
	t.Helper()
	return ExplicitConfig{IRE: profiledConfig(t, g)}
}

func TestExplicitAllNodesLearnLeader(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Complete(24), graph.Torus(4, 5), graph.Cycle(16), graph.Star(16),
	} {
		succ := 0
		for s := uint64(0); s < 5; s++ {
			outs := runExplicit(t, g, explicitCfg(t, g), 1000+s)
			leaders := 0
			var leaderID uint64
			for _, o := range outs {
				if o.IRE.Leader {
					leaders++
					leaderID = o.IRE.ID
				}
			}
			if leaders != 1 {
				continue // implicit whp-failure; explicit phase untested here
			}
			succ++
			for v, o := range outs {
				if !o.KnowsLeader {
					t.Fatalf("node %d never learned the leader", v)
				}
				if o.LeaderID != leaderID {
					t.Fatalf("node %d learned %d want %d", v, o.LeaderID, leaderID)
				}
			}
		}
		if succ == 0 {
			t.Fatalf("no successful implicit elections on n=%d", g.N())
		}
	}
}

func TestExplicitTreeIsLeaderRootedBFS(t *testing.T) {
	g := graph.Torus(4, 5)
	outs := runExplicit(t, g, explicitCfg(t, g), 7)
	leader := -1
	for v, o := range outs {
		if o.IRE.Leader {
			if leader >= 0 {
				t.Skip("multi-leader trial; tree assertions need a unique root")
			}
			leader = v
		}
	}
	if leader < 0 {
		t.Skip("no leader in this seed")
	}
	dist := g.BFS(leader)
	for v, o := range outs {
		if v == leader {
			if o.ParentPort != -1 || o.Depth != 0 {
				t.Fatalf("leader has parent %d depth %d", o.ParentPort, o.Depth)
			}
			continue
		}
		// Synchronous flooding yields exact BFS depths.
		if o.Depth != dist[v] {
			t.Fatalf("node %d depth %d want BFS %d", v, o.Depth, dist[v])
		}
		// Parent pointers step one hop toward the leader.
		parent := g.Neighbor(v, o.ParentPort)
		if dist[parent] != dist[v]-1 {
			t.Fatalf("node %d parent %d not one hop closer", v, parent)
		}
	}
}

func TestExplicitTreeReachesRoot(t *testing.T) {
	g := graph.Grid(5, 5)
	outs := runExplicit(t, g, explicitCfg(t, g), 3)
	leader := -1
	for v, o := range outs {
		if o.IRE.Leader {
			leader = v
			break
		}
	}
	if leader < 0 {
		t.Skip("no leader in this seed")
	}
	for v := range outs {
		cur, hops := v, 0
		for cur != leader {
			o := outs[cur]
			if o.ParentPort < 0 {
				t.Fatalf("node %d: parent chain broke at %d", v, cur)
			}
			cur = g.Neighbor(cur, o.ParentPort)
			hops++
			if hops > g.N() {
				t.Fatalf("node %d: parent chain does not terminate", v)
			}
		}
	}
}

func TestExplicitAnnouncementCostBounded(t *testing.T) {
	// The announcement flood costs at most 2m extra messages (each node
	// broadcasts once).
	g := graph.Complete(32)
	ecfg := explicitCfg(t, g)
	factory, err := NewExplicitFactory(ecfg)
	if err != nil {
		t.Fatal(err)
	}
	nw := sim.New(sim.Config{Graph: g, Seed: 11}, factory)
	total := nw.Machine(0).(*ExplicitMachine).TotalRounds()
	nw.Run(total + 4)
	explicitMsgs := nw.Metrics().Messages

	ifactory, err := NewIREFactory(ecfg.IRE)
	if err != nil {
		t.Fatal(err)
	}
	inw := sim.New(sim.Config{Graph: g, Seed: 11}, ifactory)
	_, _, _, _, itotal := inw.Machine(0).(*IREMachine).Params()
	inw.Run(itotal + 4)
	implicitMsgs := inw.Metrics().Messages

	if extra := explicitMsgs - implicitMsgs; extra > int64(2*g.M()) {
		t.Fatalf("announcement cost %d exceeds 2m=%d", extra, 2*g.M())
	}
}

func TestExplicitNoLeaderNoAnnouncement(t *testing.T) {
	g := graph.Cycle(12)
	cfg := explicitCfg(t, g)
	cfg.IRE.C = 0.01 // almost surely zero candidates
	for s := uint64(0); s < 6; s++ {
		outs := runExplicit(t, g, cfg, 40+s)
		anyCand := false
		for _, o := range outs {
			if o.IRE.Candidate {
				anyCand = true
			}
		}
		if anyCand {
			continue
		}
		for v, o := range outs {
			if o.KnowsLeader {
				t.Fatalf("node %d knows a leader in a leaderless election", v)
			}
		}
		return
	}
	t.Skip("all seeds drew candidates")
}

func TestExplicitConfigValidation(t *testing.T) {
	if _, err := NewExplicitFactory(ExplicitConfig{IRE: IREConfig{N: 1, TMix: 1, Phi: 0.5}}); err == nil {
		t.Fatal("invalid inner config accepted")
	}
}
