package core

import (
	"math"
	"testing"

	"anonlead/internal/graph"
	"anonlead/internal/sim"
)

// revConverged reports whether every node chose an ID, all agree on the
// leader certificate, and the estimate passed the 4n stability point
// (Theorem 3: no further changes after k^{1+ε} > 4n).
func revConverged(nw *sim.Network, eps float64) bool {
	n := nw.N()
	first := nw.Machine(0).(*RevocableMachine).Output()
	if !first.Chosen || first.LeaderK == 0 {
		return false
	}
	if math.Pow(float64(first.EstimateK), 1+eps) <= 4*float64(n) {
		return false
	}
	for v := 1; v < n; v++ {
		o := nw.Machine(v).(*RevocableMachine).Output()
		if !o.Chosen || o.LeaderK != first.LeaderK || o.LeaderID != first.LeaderID {
			return false
		}
	}
	return true
}

// countRevLeaders returns how many nodes currently hold the leader flag.
func countRevLeaders(nw *sim.Network) int {
	leaders := 0
	for v := 0; v < nw.N(); v++ {
		if nw.Machine(v).(*RevocableMachine).Output().Leader {
			leaders++
		}
	}
	return leaders
}

func TestRevocableSmokeComplete(t *testing.T) {
	g := graph.Complete(4)
	cfg := RevocableConfig{Epsilon: 0.5, Isoperimetric: 2}
	factory, err := NewRevocableFactory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	const trials = 5
	for s := uint64(0); s < trials; s++ {
		nw := sim.New(sim.Config{Graph: g, Seed: 7000 + s}, factory)
		rounds := nw.RunUntil(40_000_000, func(completed int) bool {
			return completed%64 == 0 && revConverged(nw, 0.5)
		})
		if !revConverged(nw, 0.5) {
			t.Fatalf("seed=%d did not converge in %d rounds", s, rounds)
		}
		leaders := countRevLeaders(nw)
		o := nw.Machine(0).(*RevocableMachine).Output()
		t.Logf("seed=%d rounds=%d leaders=%d leaderK=%d finalK=%d metrics={%v}",
			s, rounds, leaders, o.LeaderK, o.EstimateK, nw.Metrics())
		if leaders == 1 {
			wins++
		}
	}
	if wins < trials-1 {
		t.Fatalf("unique-leader rate too low: %d/%d", wins, trials)
	}
}
