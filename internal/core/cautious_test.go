package core

import (
	"testing"

	"anonlead/internal/graph"
	"anonlead/internal/sim"
)

func TestNewRootExecState(t *testing.T) {
	e := newRootExec(42, 3, 10)
	if !e.isRoot || e.status != statusActive || e.parent != -1 {
		t.Fatalf("root state wrong: %+v", e)
	}
	if len(e.avail) != 3 {
		t.Fatalf("avail %v", e.avail)
	}
	if e.confirmed != 1 || e.threshold != 2 {
		t.Fatalf("confirmed=%d threshold=%d", e.confirmed, e.threshold)
	}
}

func TestNewChildExecState(t *testing.T) {
	e := newChildExec(42, 4, 2, 10)
	if e.isRoot || e.parent != 2 {
		t.Fatalf("child state wrong: %+v", e)
	}
	if len(e.avail) != 3 {
		t.Fatalf("avail should exclude parent port: %v", e.avail)
	}
	for _, p := range e.avail {
		if p == 2 {
			t.Fatal("parent port in avail")
		}
	}
	// Fresh child must report immediately: confirmed >= threshold.
	if e.confirmed < e.threshold {
		t.Fatal("fresh child would not report")
	}
}

func TestUsedPortRemoves(t *testing.T) {
	e := newRootExec(1, 4, 10)
	e.usedPort(2)
	if len(e.avail) != 3 {
		t.Fatalf("avail %v", e.avail)
	}
	e.usedPort(2) // idempotent
	if len(e.avail) != 3 {
		t.Fatalf("double removal changed avail: %v", e.avail)
	}
}

func TestHandleSizeAddsChildAndDeactivates(t *testing.T) {
	e := newRootExec(1, 4, 100)
	e.handle(0, bcMsg{kind: bcSize, source: 1, size: 3})
	if len(e.children) != 1 || e.children[0] != 0 {
		t.Fatalf("children %v", e.children)
	}
	if e.confirmed != 4 {
		t.Fatalf("confirmed %d want 4", e.confirmed)
	}
	if e.childAct[0] {
		t.Fatal("reporting child should be marked passive")
	}
	// Port consumed from avail.
	for _, p := range e.avail {
		if p == 0 {
			t.Fatal("child port still in avail")
		}
	}
}

func TestHandleStopFreezes(t *testing.T) {
	e := newChildExec(1, 3, 0, 100)
	e.handle(0, bcMsg{kind: bcStop, source: 1})
	if e.status != statusStopped {
		t.Fatal("stop not applied")
	}
	// Further activate from parent must not resurrect.
	e.handle(0, bcMsg{kind: bcActivate, source: 1})
	if e.status != statusStopped {
		t.Fatal("stopped exec reactivated")
	}
}

func TestHandleActivateDeactivateOnlyFromParent(t *testing.T) {
	e := newChildExec(1, 3, 0, 100)
	e.status = statusPassive
	e.handle(1, bcMsg{kind: bcActivate, source: 1}) // not the parent port
	if e.status != statusPassive {
		t.Fatal("activate from non-parent applied")
	}
	e.handle(0, bcMsg{kind: bcActivate, source: 1})
	if e.status != statusActive {
		t.Fatal("activate from parent ignored")
	}
	e.handle(0, bcMsg{kind: bcDeactivate, source: 1})
	if e.status != statusPassive {
		t.Fatal("deactivate from parent ignored")
	}
}

func TestDuplicateInviteConsumesPort(t *testing.T) {
	e := newChildExec(1, 3, 0, 100)
	avail := len(e.avail)
	e.handle(1, bcMsg{kind: bcInvite, source: 1})
	if len(e.avail) != avail-1 {
		t.Fatal("duplicate invite did not consume the port")
	}
	if len(e.children) != 0 {
		t.Fatal("invite must not create a child")
	}
}

func TestThresholdDoublingArithmetic(t *testing.T) {
	e := newRootExec(1, 8, 1000)
	// Crossing with confirmed=5 must double threshold past 5.
	e.childSize = []int{4}
	e.children = []int{0}
	e.childAct = []bool{true}
	e.recomputeConfirmed()
	if e.confirmed != 5 {
		t.Fatalf("confirmed %d", e.confirmed)
	}
	// Simulate the crossing arithmetic from prepare.
	for e.threshold <= e.confirmed && e.threshold < e.cap {
		e.threshold *= 2
	}
	if e.threshold != 8 {
		t.Fatalf("threshold %d want 8", e.threshold)
	}
}

func TestCapClampsThreshold(t *testing.T) {
	e := newRootExec(1, 2, 16)
	e.confirmed = 100
	for e.threshold <= e.confirmed && e.threshold < e.cap {
		e.threshold *= 2
	}
	if e.threshold < 16 {
		t.Fatalf("threshold %d below cap", e.threshold)
	}
	// Next prepare would stop the execution.
}

// Integration: a star graph where the hub is the only candidate. The
// cautious broadcast must reach cap territory without exceeding ~2x cap.
func TestCautiousBroadcastTerritoryBounds(t *testing.T) {
	g := graph.Star(40)
	cap := 8
	cfg := IREConfig{N: g.N(), TMix: 4, Phi: 0.9, X: 2, BroadcastOnly: true, C: 4}
	factory, err := NewIREFactory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 10; seed++ {
		nw := sim.New(sim.Config{Graph: g, Seed: seed}, factory)
		m0 := nw.Machine(0).(*IREMachine)
		_, _, _, capSize, total := m0.Params()
		cap = capSize
		nw.Run(total + 4)
		for v := 0; v < g.N(); v++ {
			out := nw.Machine(v).(*IREMachine).Output()
			if !out.Candidate {
				continue
			}
			if out.Territory < 1 {
				t.Fatalf("seed=%d node=%d empty territory", seed, v)
			}
			if out.Territory > 4*cap {
				t.Fatalf("seed=%d node=%d territory %d far above cap %d", seed, v, out.Territory, cap)
			}
		}
	}
}

// Integration: territories must grow to the cap (up to rounding) on a
// complete graph where expansion is unconstrained (Lemma 1's Ω(x·tmix·Φ)).
func TestCautiousBroadcastReachesCap(t *testing.T) {
	g := graph.Complete(64)
	cfg := IREConfig{N: g.N(), TMix: 3, Phi: 0.5, X: 8, BroadcastOnly: true, C: 6}
	factory, err := NewIREFactory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reached, cands := 0, 0
	for seed := uint64(0); seed < 5; seed++ {
		nw := sim.New(sim.Config{Graph: g, Seed: 100 + seed}, factory)
		m0 := nw.Machine(0).(*IREMachine)
		_, _, _, capSize, total := m0.Params()
		nw.Run(total + 4)
		for v := 0; v < g.N(); v++ {
			out := nw.Machine(v).(*IREMachine).Output()
			if out.Candidate {
				cands++
				if out.Territory >= capSize/2 {
					reached++
				}
			}
		}
	}
	if cands == 0 {
		t.Fatal("no candidates across seeds")
	}
	if reached*4 < cands*3 {
		t.Fatalf("only %d/%d candidates reached half the territory cap", reached, cands)
	}
}

// Integration: every node's JoinedTerritories is bounded by the candidate
// count, and non-candidates never report territories.
func TestTerritoryAccounting(t *testing.T) {
	g := graph.Complete(32)
	cfg := IREConfig{N: g.N(), TMix: 2, Phi: 0.5, BroadcastOnly: true}
	factory, err := NewIREFactory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nw := sim.New(sim.Config{Graph: g, Seed: 3}, factory)
	m0 := nw.Machine(0).(*IREMachine)
	_, _, _, _, total := m0.Params()
	nw.Run(total + 4)
	cands := 0
	for v := 0; v < g.N(); v++ {
		if nw.Machine(v).(*IREMachine).Output().Candidate {
			cands++
		}
	}
	for v := 0; v < g.N(); v++ {
		out := nw.Machine(v).(*IREMachine).Output()
		if out.JoinedTerritories > cands {
			t.Fatalf("node %d joined %d territories with only %d candidates", v, out.JoinedTerritories, cands)
		}
		if !out.Candidate && out.Territory != 0 {
			t.Fatalf("non-candidate %d has territory %d", v, out.Territory)
		}
	}
}
