package core

import "anonlead/internal/congest"

// slotTagBits is the size of the multiplexing slot tag carried by cautious
// broadcast and convergecast messages: the paper multiplexes at most
// 4c·log n parallel executions into a super-round, so a slot index needs
// O(log log n + log c) bits; 6 bits covers every simulable configuration.
const slotTagBits = 6

// bcKind enumerates cautious-broadcast message kinds (Algorithms 2-4).
type bcKind uint8

const (
	bcInvite     bcKind = iota + 1 // carries the source ID, spans the tree
	bcSize                         // child -> parent confirmed subtree size
	bcActivate                     // parent -> child re-activation prompt
	bcDeactivate                   // parent -> child passivation
	bcStop                         // flood: territory reached its cap
)

// bcKindBits encodes the 5 kinds.
const bcKindBits = 3

// bcMsg is a cautious-broadcast message. Source identifies the execution
// (the initiating candidate's random ID); in the paper the execution is
// identified positionally by the super-round slot, so only invites pay for
// the full ID while the rest pay the slot tag. Bits reflects that.
type bcMsg struct {
	kind   bcKind
	source uint64 // execution tag: candidate ID
	size   int    // confirmed subtree size, for bcSize
}

// Bits returns the CONGEST size of the message.
func (m bcMsg) Bits() int {
	switch m.kind {
	case bcInvite:
		return bcKindBits + congest.BitLen(m.source)
	case bcSize:
		return bcKindBits + slotTagBits + congest.BitLen(uint64(m.size))
	default:
		return bcKindBits + slotTagBits
	}
}

// walkMsg moves count random-walk tokens carrying the sender's current
// maximum walk ID across one link (Algorithm 5, random-walk()).
type walkMsg struct {
	id    uint64
	count int
}

// Bits returns the CONGEST size: the ID plus the token multiplicity
// counter (log x bits, cf. the paper's CONGEST argument in Section 4).
func (m walkMsg) Bits() int {
	return congest.BitLen(m.id) + congest.BitLen(uint64(m.count))
}

// ccMsg propagates the largest walk ID toward a territory root
// (Algorithm 5, convergecast()).
type ccMsg struct {
	source uint64 // execution tag: which tree this climbs
	id     uint64 // largest walk ID seen
}

// Bits returns the CONGEST size (slot tag + ID).
func (m ccMsg) Bits() int {
	return slotTagBits + congest.BitLen(m.id)
}

// walkChannel is the logical channel used by the (single) random-walk
// phase; cautious broadcast and convergecast executions use the low bits
// of their candidate ID.
const walkChannel = uint32(0xffffffff)

// chanOf maps an execution tag (candidate ID) to a simulator channel.
func chanOf(source uint64) uint32 {
	c := uint32(source)
	if c == walkChannel {
		c--
	}
	return c
}
