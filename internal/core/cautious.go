package core

import (
	"fmt"

	"anonlead/internal/rng"
	"anonlead/internal/sim"
)

// execStatus is a node's searching status within one cautious-broadcast
// execution.
type execStatus uint8

const (
	statusActive execStatus = iota + 1
	statusPassive
	statusStopped
)

// bcastExec is one node's state for one cautious-broadcast execution
// (paper Algorithms 2-4). A node holds one bcastExec per candidate whose
// broadcast reached it; the root (candidate) holds one for its own ID.
//
// Growth control: each node tracks a confirmed subtree count and a doubling
// threshold. Crossing the threshold triggers a (gated) size report to the
// parent and passivation; re-activation prompts flow back down from
// ancestors that absorbed the growth without crossing their own thresholds.
// A node whose threshold reaches the territory cap floods <stop>.
type bcastExec struct {
	source    uint64 // candidate ID identifying the execution
	isRoot    bool
	status    execStatus
	parent    int   // port toward parent; -1 at the root
	children  []int // ports of confirmed children, in join order
	childSize []int // childSize[i] = last reported size of children[i]
	childAct  []bool
	avail     []int // ports not yet used in this execution (invite pool)
	threshold int   // next reporting/doubling threshold
	cap       int   // territory cap x·tmix·Φ (>= 2)
	confirmed int   // 1 + sum of child reports
	reported  int   // last size sent to the parent
	stopSent  bool
	// credit arms one invite. Credits are granted only by discrete
	// protocol events — joining/starting, an activate prompt, or a child
	// report absorbed while active — so the number of invites a node
	// sends is bounded by the number of threshold-change messages it
	// receives. This realizes Lemma 1's accounting ("a link is used a
	// constant number of times per change of the thresholds at its end
	// nodes"); inviting every active round instead would recruit Θ(n)
	// nodes on dense graphs and void the Õ(x·tmix) message bound.
	credit bool
	// grewThisRound marks children whose size report arrived this round,
	// for the prose's targeted re-activation rule.
	grewThisRound []int
}

// newRootExec returns the execution state for the initiating candidate.
func newRootExec(source uint64, degree, cap int) *bcastExec {
	e := &bcastExec{
		source:    source,
		isRoot:    true,
		status:    statusActive,
		parent:    -1,
		threshold: 2, // a lone root trivially has confirmed=1; start above it
		cap:       cap,
		confirmed: 1,
		credit:    true,
	}
	e.avail = make([]int, degree)
	for p := range e.avail {
		e.avail[p] = p
	}
	return e
}

// newChildExec returns the execution state for a node that accepted an
// invite arriving on parentPort.
func newChildExec(source uint64, degree, parentPort, cap int) *bcastExec {
	e := &bcastExec{
		source:    source,
		status:    statusActive,
		parent:    parentPort,
		threshold: 1, // confirmed=1 >= 1 triggers the immediate join report
		cap:       cap,
		confirmed: 1,
		credit:    true,
	}
	e.avail = make([]int, 0, degree-1)
	for p := 0; p < degree; p++ {
		if p != parentPort {
			e.avail = append(e.avail, p)
		}
	}
	return e
}

// usedPort removes port from the invite pool (a port that carried any
// message of this execution may no longer receive a fresh invite).
func (e *bcastExec) usedPort(port int) {
	for i, p := range e.avail {
		if p == port {
			e.avail[i] = e.avail[len(e.avail)-1]
			e.avail = e.avail[:len(e.avail)-1]
			return
		}
	}
}

// childIndex returns the index of port in children, or -1.
func (e *bcastExec) childIndex(port int) int {
	for i, p := range e.children {
		if p == port {
			return i
		}
	}
	return -1
}

// handle processes one received message of this execution (Algorithm 3).
func (e *bcastExec) handle(port int, m bcMsg) {
	if e.status == statusStopped && m.kind != bcStop {
		return
	}
	e.usedPort(port)
	switch m.kind {
	case bcStop:
		e.status = statusStopped
	case bcActivate:
		if port == e.parent && e.status != statusStopped {
			e.status = statusActive
			e.credit = true
		}
	case bcDeactivate:
		if port == e.parent && e.status != statusStopped {
			e.status = statusPassive
		}
	case bcSize:
		i := e.childIndex(port)
		if i < 0 {
			e.children = append(e.children, port)
			e.childSize = append(e.childSize, m.size)
			e.childAct = append(e.childAct, false)
			i = len(e.children) - 1
		} else {
			e.childSize[i] = m.size
		}
		// A reporting child passivated itself (prose rule); remember that
		// so the re-activation paths below actually fire.
		e.childAct[i] = false
		e.grewThisRound = append(e.grewThisRound, i)
		e.recomputeConfirmed()
		// Absorbed growth re-arms one invite (keeps the expansion pump
		// running while staying within the per-link message accounting).
		if e.status == statusActive {
			e.credit = true
		}
	case bcInvite:
		// Invites for an execution we already belong to are non-tree
		// edges: the port is consumed (above) and nothing else happens.
	}
}

// recomputeConfirmed refreshes the confirmed subtree count.
func (e *bcastExec) recomputeConfirmed() {
	c := 1
	for _, s := range e.childSize {
		c += s
	}
	e.confirmed = c
}

// prepare emits this round's transmissions for the execution (Algorithm 4,
// with the prose's threshold-gated reporting; see package doc).
func (e *bcastExec) prepare(ctx *sim.Context, r *rng.RNG) {
	defer func() { e.grewThisRound = e.grewThisRound[:0] }()
	ch := chanOf(e.source)

	// Territory cap: flood <stop> once through the local tree links.
	if e.threshold >= e.cap && e.status != statusStopped {
		e.status = statusStopped
		if e.isRoot {
			ctx.Trace("territory-cap", fmt.Sprintf("source=%d confirmed=%d cap=%d", e.source, e.confirmed, e.cap))
		}
	}
	if e.status == statusStopped {
		if !e.stopSent {
			e.stopSent = true
			for _, p := range e.children {
				ctx.Send(p, ch, bcMsg{kind: bcStop, source: e.source})
			}
			if !e.isRoot && e.parent >= 0 {
				ctx.Send(e.parent, ch, bcMsg{kind: bcStop, source: e.source})
			}
		}
		return
	}

	if e.confirmed >= e.threshold {
		// Threshold crossed: report upward (non-roots), double past the
		// confirmed count, passivate children (the legitimacy wave).
		if !e.isRoot && e.confirmed > e.reported {
			ctx.Send(e.parent, ch, bcMsg{kind: bcSize, source: e.source, size: e.confirmed})
			e.reported = e.confirmed
		}
		for e.threshold <= e.confirmed && e.threshold < e.cap {
			e.threshold *= 2
		}
		for i, p := range e.children {
			if e.childAct[i] {
				ctx.Send(p, ch, bcMsg{kind: bcDeactivate, source: e.source})
				e.childAct[i] = false
			}
		}
		if !e.isRoot {
			e.status = statusPassive // wait for the parent's re-activation
		}
		return
	}

	if e.status != statusActive {
		// Passive below threshold: re-activate children whose fresh growth
		// we absorbed without crossing (prose rule), but do not expand.
		for _, i := range e.grewThisRound {
			if !e.childAct[i] {
				ctx.Send(e.children[i], ch, bcMsg{kind: bcActivate, source: e.source})
				e.childAct[i] = true
			}
		}
		return
	}

	// Active and under threshold: re-activate passive children and, if an
	// invite credit is armed, invite one fresh random neighbor.
	for i, p := range e.children {
		if !e.childAct[i] {
			ctx.Send(p, ch, bcMsg{kind: bcActivate, source: e.source})
			e.childAct[i] = true
		}
	}
	if e.credit && len(e.avail) > 0 {
		e.credit = false
		i := r.Intn(len(e.avail))
		p := e.avail[i]
		e.avail[i] = e.avail[len(e.avail)-1]
		e.avail = e.avail[:len(e.avail)-1]
		ctx.Send(p, ch, bcMsg{kind: bcInvite, source: e.source})
	}
}
