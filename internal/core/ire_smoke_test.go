package core

import (
	"testing"

	"anonlead/internal/graph"
	"anonlead/internal/sim"
	"anonlead/internal/spectral"
)

// runIRE executes one IRE election and returns the leader count plus
// per-node outputs.
func runIRE(t *testing.T, g *graph.Graph, cfg IREConfig, seed uint64) (int, []IREOutput, sim.Metrics) {
	t.Helper()
	factory, err := NewIREFactory(cfg)
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	nw := sim.New(sim.Config{Graph: g, Seed: seed}, factory)
	m0 := nw.Machine(0).(*IREMachine)
	_, _, _, _, total := m0.Params()
	nw.Run(total + 4)
	if !nw.AllHalted() {
		t.Fatalf("network did not halt within %d rounds", total+4)
	}
	outs := make([]IREOutput, g.N())
	leaders := 0
	for v := 0; v < g.N(); v++ {
		outs[v] = nw.Machine(v).(*IREMachine).Output()
		if outs[v].Leader {
			leaders++
		}
	}
	return leaders, outs, nw.Metrics()
}

func TestIRESmokeCompleteGraph(t *testing.T) {
	g := graph.Complete(32)
	prof, err := spectral.ProfileGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	cfg := IREConfig{N: g.N(), TMix: prof.MixingTime, Phi: prof.Conductance}
	wins := 0
	const trials = 20
	for s := uint64(0); s < trials; s++ {
		leaders, outs, _ := runIRE(t, g, cfg, 1000+s)
		cands := 0
		for _, o := range outs {
			if o.Candidate {
				cands++
			}
		}
		t.Logf("seed=%d leaders=%d candidates=%d", s, leaders, cands)
		if leaders == 1 {
			wins++
		}
	}
	if wins < trials*8/10 {
		t.Fatalf("unique-leader rate too low: %d/%d", wins, trials)
	}
}

func TestIRESmokeCycle(t *testing.T) {
	g := graph.Cycle(24)
	prof, err := spectral.ProfileGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	cfg := IREConfig{N: g.N(), TMix: prof.MixingTime, Phi: prof.Conductance}
	wins := 0
	const trials = 10
	for s := uint64(0); s < trials; s++ {
		leaders, _, _ := runIRE(t, g, cfg, 2000+s)
		t.Logf("seed=%d leaders=%d", s, leaders)
		if leaders == 1 {
			wins++
		}
	}
	if wins < trials*7/10 {
		t.Fatalf("unique-leader rate too low: %d/%d", wins, trials)
	}
}
