package core

import (
	"testing"
	"testing/quick"

	"anonlead/internal/rng"
)

// TestBcastExecInvariantsUnderRandomTraffic drives a bcastExec with random
// (possibly adversarial) message sequences and checks its structural
// invariants after every event:
//
//   - confirmed = 1 + sum of child sizes
//   - the invite pool never contains a child port or the parent port
//   - children are unique ports
//   - threshold is positive and never above 2x the cap
//   - a stopped execution stays stopped
//
// This is the paper's most intricate per-node state (Algorithms 2-4);
// protocol-level tests exercise only reachable traffic, this one also
// covers stray and duplicated messages.
func TestBcastExecInvariantsUnderRandomTraffic(t *testing.T) {
	root := rng.New(2024)
	check := func(seed uint64) bool {
		r := root.Split(seed)
		degree := 2 + r.Intn(6)
		cap := 2 + r.Intn(30)
		var e *bcastExec
		parentPort := -1
		if r.Coin() {
			e = newRootExec(7, degree, cap)
		} else {
			parentPort = r.Intn(degree)
			e = newChildExec(7, degree, parentPort, cap)
		}
		wasStopped := false
		for step := 0; step < 60; step++ {
			port := r.Intn(degree)
			var msg bcMsg
			switch r.Intn(5) {
			case 0:
				msg = bcMsg{kind: bcInvite, source: 7}
			case 1:
				msg = bcMsg{kind: bcSize, source: 7, size: 1 + r.Intn(10)}
			case 2:
				msg = bcMsg{kind: bcActivate, source: 7}
			case 3:
				msg = bcMsg{kind: bcDeactivate, source: 7}
			default:
				msg = bcMsg{kind: bcStop, source: 7}
			}
			e.handle(port, msg)

			if wasStopped && e.status != statusStopped {
				return false
			}
			if e.status == statusStopped {
				wasStopped = true
			}
			sum := 1
			for _, s := range e.childSize {
				sum += s
			}
			if e.confirmed != sum {
				return false
			}
			if e.threshold < 1 || (e.threshold > 2*e.cap && e.threshold > 2) {
				return false
			}
			seen := map[int]bool{}
			for _, c := range e.children {
				if seen[c] {
					return false
				}
				seen[c] = true
			}
			for _, a := range e.avail {
				if seen[a] {
					return false
				}
				if !e.isRoot && a == parentPort {
					return false
				}
			}
			if len(e.children) != len(e.childSize) || len(e.children) != len(e.childAct) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestBcastExecAvailShrinksMonotonically: ports are consumed, never
// returned — the paper's "not sent/received a message so far" pool.
func TestBcastExecAvailShrinksMonotonically(t *testing.T) {
	root := rng.New(77)
	if err := quick.Check(func(seed uint64) bool {
		r := root.Split(seed)
		degree := 3 + r.Intn(5)
		e := newRootExec(1, degree, 16)
		prev := len(e.avail)
		for i := 0; i < 30; i++ {
			e.handle(r.Intn(degree), bcMsg{kind: bcKind(1 + r.Intn(5)), source: 1, size: 1})
			if len(e.avail) > prev {
				return false
			}
			prev = len(e.avail)
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
