package core

import (
	"anonlead/internal/congest"
	"anonlead/internal/rng"
	"anonlead/internal/sim"
)

// ExplicitConfig parameterizes explicit Irrevocable Leader Election: the
// Section 4 implicit protocol followed by a leader announcement flood that
// simultaneously builds a leader-rooted BFS spanning tree. The paper notes
// (Section 3) that explicit LE, Broadcast and tree construction follow
// from implicit LE at an extra O(m) messages and O(D) time; this is that
// extension.
type ExplicitConfig struct {
	// IRE configures the underlying implicit election.
	IRE IREConfig
	// AnnounceRounds bounds the announcement flood. Zero selects n
	// (diameter is unknown to anonymous nodes, n always suffices).
	AnnounceRounds int
}

// announceMsg floods the elected leader's ID; depth lets receivers record
// their BFS distance.
type announceMsg struct {
	id    uint64
	depth int
}

// Bits returns the CONGEST size of the announcement.
func (m announceMsg) Bits() int {
	return congest.BitLen(m.id) + congest.BitLen(uint64(m.depth))
}

// ExplicitOutput reports one node's result after explicit election.
type ExplicitOutput struct {
	// IRE carries the underlying implicit-election outputs.
	IRE IREOutput
	// KnowsLeader reports whether the announcement reached this node.
	KnowsLeader bool
	// LeaderID is the announced leader ID (0 if unreached or no leader).
	LeaderID uint64
	// ParentPort is the port toward the leader in the announcement BFS
	// tree (-1 at the leader itself and at unreached nodes).
	ParentPort int
	// Depth is the node's hop distance from the leader in the tree.
	Depth int
}

// ExplicitMachine chains the implicit IRE machine with an announcement
// flood. After the implicit decide round, the leader broadcasts its ID;
// every node adopts the first announcement it hears (recording the arrival
// port as its tree parent), forwards once, and halts when the announcement
// window closes.
type ExplicitMachine struct {
	inner     *IREMachine
	announceN int
	out       ExplicitOutput
	forwarded bool
	halted    bool
}

// NewExplicitFactory returns a sim.Factory for explicit leader election.
func NewExplicitFactory(cfg ExplicitConfig) (sim.Factory, error) {
	p, err := cfg.IRE.resolve()
	if err != nil {
		return nil, err
	}
	announce := cfg.AnnounceRounds
	if announce <= 0 {
		announce = p.n
	}
	return func(node, degree int, r *rng.RNG) sim.Machine {
		return &ExplicitMachine{
			inner: &IREMachine{
				p:       p,
				r:       r,
				execs:   make(map[uint64]*bcastExec),
				ccSent:  make(map[uint64]uint64),
				chained: true,
			},
			announceN: announce,
			out:       ExplicitOutput{ParentPort: -1},
		}
	}, nil
}

// Output returns the node's results; valid after halting.
func (m *ExplicitMachine) Output() ExplicitOutput {
	m.out.IRE = m.inner.Output()
	return m.out
}

// TotalRounds returns the full protocol length (implicit election plus
// announcement window).
func (m *ExplicitMachine) TotalRounds() int {
	return m.inner.p.total + m.announceN + 2
}

// Init implements sim.Machine.
func (m *ExplicitMachine) Init(ctx *sim.Context) { m.inner.Init(ctx) }

// Step implements sim.Machine.
func (m *ExplicitMachine) Step(ctx *sim.Context, inbox []sim.Packet) {
	if m.halted {
		return
	}
	round := ctx.Round()
	total := m.inner.p.total
	if round <= total {
		m.inner.Step(ctx, inbox)
		if round == total && m.inner.out.Leader {
			// The freshly decided leader opens the announcement flood.
			m.out.KnowsLeader = true
			m.out.LeaderID = m.inner.out.ID
			m.out.Depth = 0
			ctx.Broadcast(announceMsg{id: m.out.LeaderID, depth: 0})
			m.forwarded = true
		}
		return
	}
	for _, pkt := range inbox {
		msg, ok := pkt.Payload.(announceMsg)
		if !ok {
			continue
		}
		if !m.out.KnowsLeader || msg.id > m.out.LeaderID {
			// First announcement (or a higher ID in the rare multi-leader
			// failure): adopt, record the tree parent, re-forward.
			m.out.KnowsLeader = true
			m.out.LeaderID = msg.id
			m.out.ParentPort = pkt.Port
			m.out.Depth = msg.depth + 1
			m.forwarded = false
		}
	}
	if m.out.KnowsLeader && !m.forwarded {
		m.forwarded = true
		ctx.Broadcast(announceMsg{id: m.out.LeaderID, depth: m.out.Depth})
	}
	if round >= total+m.announceN+1 {
		m.halted = true
		ctx.Halt()
	}
}
