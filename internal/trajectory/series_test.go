package trajectory

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"anonlead/internal/harness"
)

// trendCell builds a v2+ cell with independent means per metric so one
// series can carry an improving, a flat, and a regressing metric at once.
func trendCell(msgs, bits, rounds, charged float64, trials, successes int, stddev float64) harness.ArtifactCell {
	dist := func(mean float64) *harness.ArtifactDist {
		return &harness.ArtifactDist{
			StdDev: stddev, Min: mean - stddev, Max: mean + stddev,
			P50: mean, P90: mean + stddev, P99: mean + stddev,
		}
	}
	return harness.ArtifactCell{
		Protocol: "ire", Family: "expander", N: 64,
		Trials: trials, Successes: successes,
		Messages: msgs, Bits: bits, Rounds: rounds, Charged: charged,
		MessagesDist: dist(msgs), BitsDist: dist(bits),
		RoundsDist: dist(rounds), ChargedDist: dist(charged),
	}
}

// TestSeriesTrendClassification is the acceptance scenario: a synthetic
// 3-artifact series must classify an improving, a flat, and a regressing
// metric correctly, with the fourth (charged) flat inside noise.
func TestSeriesTrendClassification(t *testing.T) {
	// messages: 1000 -> 900 -> 500 (improving, tight variance)
	// bits:     1000 -> 1100 -> 2000 (regressing)
	// rounds:   1000 -> 1000 -> 1000 (flat)
	// charged:  1000 -> 1080 -> 1060 (net +6% but stddev 400 => noise-flat)
	series, err := NewSeries([]harness.Artifact{
		artifact(harness.ArtifactSchema, trendCell(1000, 1000, 1000, 1000, 10, 10, 0)),
		artifact(harness.ArtifactSchema, trendCell(900, 1100, 1000, 1080, 10, 10, 0)),
		artifact(harness.ArtifactSchema, trendCell(500, 2000, 1000, 1060, 10, 10, 0)),
	}, []string{"pr1", "pr2", "pr3"})
	if err != nil {
		t.Fatal(err)
	}
	// Give charged its noise: overwrite its dists with a wide spread.
	for i := range series.Artifacts {
		c := &series.Artifacts[i].Cells[0]
		c.ChargedDist.StdDev = 400
	}
	r := series.Trends(Thresholds{})
	if len(r.Cells) != 1 || len(r.Partial) != 0 {
		t.Fatalf("alignment wrong: %+v", r)
	}
	want := map[string]Trend{
		"messages":     TrendImproving,
		"bits":         TrendRegressing,
		"rounds":       TrendFlat,
		"charged":      TrendFlat, // 6% net effect buried under stddev 400
		"success_rate": TrendFlat,
	}
	for _, mt := range r.Cells[0].Metrics {
		if mt.Trend != want[mt.Metric] {
			t.Fatalf("%s classified %s, want %s (%s)", mt.Metric, mt.Trend, want[mt.Metric], mt)
		}
	}
	if r.Improving != 1 || r.Regressing != 1 || r.Flat != 3 {
		t.Fatalf("counts improving=%d flat=%d regressing=%d", r.Improving, r.Flat, r.Regressing)
	}
	if r.HasRegressions() != true {
		t.Fatal("regressing series not reported")
	}

	// The per-metric texture: messages' values and steps are in order.
	var msgs MetricTrend
	for _, mt := range r.Cells[0].Metrics {
		if mt.Metric == "messages" {
			msgs = mt
		}
	}
	if len(msgs.Values) != 3 || msgs.Values[0] != 1000 || msgs.Values[2] != 500 {
		t.Fatalf("messages values %v", msgs.Values)
	}
	if msgs.First != 1000 || msgs.Last != 500 || msgs.RelDelta != -0.5 {
		t.Fatalf("messages endpoints %+v", msgs)
	}
	if len(msgs.Steps) != 2 || msgs.Steps[1] != Improved {
		t.Fatalf("messages steps %v", msgs.Steps)
	}
}

// TestSeriesSuccessTrend: a success-rate collapse across the series is a
// regressing trend judged by Wilson disjointness, not the cost gates.
func TestSeriesSuccessTrend(t *testing.T) {
	series, err := NewSeries([]harness.Artifact{
		artifact(harness.ArtifactSchema, trendCell(100, 100, 100, 100, 50, 50, 1)),
		artifact(harness.ArtifactSchema, trendCell(100, 100, 100, 100, 50, 30, 1)),
		artifact(harness.ArtifactSchema, trendCell(100, 100, 100, 100, 50, 5, 1)),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := series.Trends(Thresholds{})
	for _, mt := range r.Cells[0].Metrics {
		if mt.Metric == "success_rate" && mt.Trend != TrendRegressing {
			t.Fatalf("success collapse classified %s (%s)", mt.Trend, mt)
		}
	}
	if r.Labels[0] != "#1" || r.Labels[2] != "#3" {
		t.Fatalf("default labels %v", r.Labels)
	}
}

// TestSeriesPartialCells: a cell missing from any point is reported
// partial and never classified; cells appearing only later are partial too.
func TestSeriesPartialCells(t *testing.T) {
	stable := cell("ire", "expander", 64, 10, 10, 1000, 1)
	flaky := cell("flood", "complete", 32, 10, 10, 400, 1)
	late := cell("ire", "cycle", 16, 10, 10, 50, 1)
	series, err := NewSeries([]harness.Artifact{
		artifact(harness.ArtifactSchema, stable, flaky),
		artifact(harness.ArtifactSchema, stable),
		artifact(harness.ArtifactSchema, stable, flaky, late),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := series.Trends(Thresholds{})
	if len(r.Cells) != 1 || r.Cells[0].Key.Protocol != "ire" {
		t.Fatalf("tracked cells wrong: %+v", r.Cells)
	}
	if len(r.Partial) != 2 {
		t.Fatalf("partial %v", r.Partial)
	}
	if r.Partial[0].Protocol != "flood" || r.Partial[1].Family != "cycle" {
		t.Fatalf("partial order %v", r.Partial)
	}
}

// TestSeriesDuplicateOccurrences: duplicate keys pair by occurrence;
// the common occurrences are tracked and any occurrence-count mismatch
// anywhere in the series flags the key partial — including extras that
// exist only in later artifacts (they must not vanish silently).
func TestSeriesDuplicateOccurrences(t *testing.T) {
	a := cell("ire", "cycle", 16, 5, 5, 100, 1)
	b := cell("ire", "cycle", 16, 5, 5, 200, 1)
	series, err := NewSeries([]harness.Artifact{
		artifact(harness.ArtifactSchema, a),       // one occurrence
		artifact(harness.ArtifactSchema, a, b),    // a second appears later
		artifact(harness.ArtifactSchema, a, b, b), // and a third
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := series.Trends(Thresholds{})
	if len(r.Cells) != 1 {
		t.Fatalf("tracked %d cells, want 1 (the common occurrence)", len(r.Cells))
	}
	if len(r.Partial) != 1 || r.Partial[0].Family != "cycle" {
		t.Fatalf("later-only duplicate occurrences not reported partial: %+v", r.Partial)
	}

	// The mirror case: the first artifact carries MORE occurrences.
	series, err = NewSeries([]harness.Artifact{
		artifact(harness.ArtifactSchema, a, b),
		artifact(harness.ArtifactSchema, a),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r = series.Trends(Thresholds{})
	if len(r.Cells) != 1 || len(r.Partial) != 1 {
		t.Fatalf("first-artifact extra occurrence not partial: cells=%d partial=%v",
			len(r.Cells), r.Partial)
	}

	// Equal occurrence counts everywhere: both tracked, nothing partial.
	series, err = NewSeries([]harness.Artifact{
		artifact(harness.ArtifactSchema, a, b),
		artifact(harness.ArtifactSchema, a, b),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r = series.Trends(Thresholds{})
	if len(r.Cells) != 2 || len(r.Partial) != 0 {
		t.Fatalf("stable duplicates misreported: cells=%d partial=%v", len(r.Cells), r.Partial)
	}
}

// TestSeriesMeansOnlyDowngrade: a v1 point anywhere in the series
// downgrades that cell to the relative tolerance alone, flagged.
func TestSeriesMeansOnlyDowngrade(t *testing.T) {
	v1 := harness.ArtifactCell{
		Protocol: "ire", Family: "expander", N: 64,
		Trials: 10, Successes: 10,
		Messages: 1000, Bits: 1000, Rounds: 1000, Charged: 1000,
	}
	v2head := cell("ire", "expander", 64, 10, 10, 2000, 1)
	series, err := NewSeries([]harness.Artifact{
		artifact(harness.ArtifactSchemaV1, v1),
		artifact(harness.ArtifactSchema, v2head),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := series.Trends(Thresholds{})
	if !r.MeansOnly {
		t.Fatal("v1 point not flagged means-only")
	}
	if r.Regressing == 0 {
		t.Fatalf("2x means-only effect not classified: %+v", r.Cells[0].Metrics[0])
	}
}

func TestNewSeriesValidation(t *testing.T) {
	one := artifact(harness.ArtifactSchema)
	if _, err := NewSeries([]harness.Artifact{one}, nil); err == nil {
		t.Fatal("single-artifact series accepted")
	}
	if _, err := NewSeries([]harness.Artifact{one, one}, []string{"a"}); err == nil {
		t.Fatal("label/artifact length mismatch accepted")
	}
}

// TestLoadSeries round-trips artifacts through disk, labels by basename,
// and disambiguates repeated names.
func TestLoadSeries(t *testing.T) {
	dir := t.TempDir()
	a := artifact(harness.ArtifactSchema, cell("ire", "expander", 64, 10, 10, 1000, 1))
	write := func(sub string) string {
		buf, err := harness.Artifact.JSON(a)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, sub, "BENCH_harness.json")
		if err := os.WriteFile(p, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	s, err := LoadSeries(write("run1"), write("run2"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Labels[0] != "BENCH_harness.json" || !strings.Contains(s.Labels[1], "(2)") {
		t.Fatalf("labels %v", s.Labels)
	}
	r := s.Trends(Thresholds{})
	if len(r.Cells) != 1 || r.Regressing != 0 {
		t.Fatalf("identical series not flat: %+v", r)
	}

	if _, err := LoadSeries(write("run3"), filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
