package trajectory

import (
	"strings"
	"testing"

	"anonlead/internal/harness"
)

// cell builds a v2 artifact cell with a given mean/stddev on every cost
// metric and a success count.
func cell(proto, family string, n, trials, successes int, mean, stddev float64) harness.ArtifactCell {
	dist := func() *harness.ArtifactDist {
		return &harness.ArtifactDist{
			StdDev: stddev, Min: mean - stddev, Max: mean + stddev,
			P50: mean, P90: mean + stddev, P99: mean + stddev,
		}
	}
	return harness.ArtifactCell{
		Protocol: proto, Family: family, N: n,
		Trials: trials, Successes: successes,
		Messages: mean, Bits: mean, Rounds: mean, Charged: mean,
		MessagesDist: dist(), BitsDist: dist(), RoundsDist: dist(), ChargedDist: dist(),
	}
}

func artifact(schema string, cells ...harness.ArtifactCell) harness.Artifact {
	return harness.Artifact{Schema: schema, Cells: cells}
}

func TestDiffIdenticalArtifactsUnchanged(t *testing.T) {
	a := artifact(harness.ArtifactSchema,
		cell("ire", "expander", 64, 10, 10, 1000, 50),
		cell("flood", "complete", 32, 10, 10, 400, 0))
	r := Diff(a, a, Thresholds{})
	if r.Regressed != 0 || r.Improved != 0 {
		t.Fatalf("identical artifacts classified as changed: %+v", r)
	}
	if r.Unchanged != 2*5 { // 4 cost metrics + success per cell
		t.Fatalf("unchanged count %d", r.Unchanged)
	}
	if r.MeansOnly {
		t.Fatal("v2 pair flagged means-only")
	}
	if len(r.Added) != 0 || len(r.Removed) != 0 {
		t.Fatalf("phantom added/removed: %+v", r)
	}
}

func TestDiffFlagsLargeRegression(t *testing.T) {
	base := artifact(harness.ArtifactSchema, cell("ire", "expander", 64, 10, 10, 1000, 50))
	head := artifact(harness.ArtifactSchema, cell("ire", "expander", 64, 10, 10, 2000, 50))
	r := Diff(base, head, Thresholds{})
	if !r.HasRegressions() {
		t.Fatalf("2x cost increase not flagged: %+v", r)
	}
	// All four cost metrics doubled; success rate unchanged.
	if r.Regressed != 4 {
		t.Fatalf("regressed count %d, want 4", r.Regressed)
	}
	md := r.Cells[0].Metrics[0]
	if md.Metric != "messages" || md.Status != Regressed || md.RelDelta != 1 {
		t.Fatalf("messages diff %+v", md)
	}
	if md.StdErr <= 0 {
		t.Fatalf("v2 pair should carry a Welch stderr: %+v", md)
	}
}

func TestDiffFlagsImprovement(t *testing.T) {
	base := artifact(harness.ArtifactSchema, cell("ire", "expander", 64, 10, 10, 1000, 10))
	head := artifact(harness.ArtifactSchema, cell("ire", "expander", 64, 10, 10, 500, 10))
	r := Diff(base, head, Thresholds{})
	if r.Improved != 4 || r.Regressed != 0 {
		t.Fatalf("halved cost not improved: %+v", r)
	}
}

// TestDiffVarianceGate pins the classifier's core property: an effect that
// clears the relative tolerance but sits inside trial noise stays
// unchanged.
func TestDiffVarianceGate(t *testing.T) {
	// 10% effect, but stddev 400 over 4 trials => stderr ~283 per side,
	// Welch ~400, 3σ gate ~1200 >> 100.
	base := artifact(harness.ArtifactSchema, cell("ire", "expander", 64, 4, 4, 1000, 400))
	head := artifact(harness.ArtifactSchema, cell("ire", "expander", 64, 4, 4, 1100, 400))
	r := Diff(base, head, Thresholds{})
	if r.Regressed != 0 {
		t.Fatalf("noise flagged as regression: %+v", r)
	}
	// The same 10% effect with tight variance IS a regression.
	base = artifact(harness.ArtifactSchema, cell("ire", "expander", 64, 4, 4, 1000, 1))
	head = artifact(harness.ArtifactSchema, cell("ire", "expander", 64, 4, 4, 1100, 1))
	if r = Diff(base, head, Thresholds{}); r.Regressed != 4 {
		t.Fatalf("tight-variance effect not flagged: %+v", r)
	}
}

// TestDiffRelativeToleranceGate: a statistically crisp but tiny effect
// stays unchanged.
func TestDiffRelativeToleranceGate(t *testing.T) {
	base := artifact(harness.ArtifactSchema, cell("ire", "expander", 64, 10, 10, 1000, 0))
	head := artifact(harness.ArtifactSchema, cell("ire", "expander", 64, 10, 10, 1010, 0))
	r := Diff(base, head, Thresholds{})
	if r.Regressed != 0 {
		t.Fatalf("1%% drift flagged under 5%% tolerance: %+v", r)
	}
	if r = Diff(base, head, Thresholds{RelTol: 0.005}); r.Regressed != 4 {
		t.Fatalf("1%% drift not flagged under 0.5%% tolerance: %+v", r)
	}
}

func TestDiffSuccessRateWilson(t *testing.T) {
	// 10/10 -> 9/10: Wilson intervals overlap, no verdict.
	base := artifact(harness.ArtifactSchema, cell("ire", "expander", 64, 10, 10, 100, 1))
	head := artifact(harness.ArtifactSchema, cell("ire", "expander", 64, 10, 9, 100, 1))
	r := Diff(base, head, Thresholds{})
	if r.Regressed != 0 {
		t.Fatalf("one lost trial flagged: %+v", r)
	}
	// 50/50 -> 5/50: intervals disjoint, regression.
	base = artifact(harness.ArtifactSchema, cell("ire", "expander", 64, 50, 50, 100, 1))
	head = artifact(harness.ArtifactSchema, cell("ire", "expander", 64, 50, 5, 100, 1))
	r = Diff(base, head, Thresholds{})
	if r.Regressed != 1 {
		t.Fatalf("success collapse not flagged: %+v", r)
	}
	got := r.Cells[0].Metrics[len(r.Cells[0].Metrics)-1]
	if got.Metric != "success_rate" || got.Status != Regressed {
		t.Fatalf("success metric diff %+v", got)
	}
}

// TestDiffSuccessCollapseAtGateTrialCounts guards the gate's sensitivity
// floor: at every trial count the quick sweeps actually use (6 for
// revocable, 8 for table1), a total success collapse k/k -> 0/k must
// separate the Wilson intervals and be flagged. At 3 trials the intervals
// still overlap — which is why no gate cell runs fewer than 6.
func TestDiffSuccessCollapseAtGateTrialCounts(t *testing.T) {
	for _, trials := range []int{6, 8} {
		base := artifact(harness.ArtifactSchema, cell("revocable", "complete", 6, trials, trials, 100, 1))
		head := artifact(harness.ArtifactSchema, cell("revocable", "complete", 6, trials, 0, 100, 1))
		if r := Diff(base, head, Thresholds{}); r.Regressed != 1 {
			t.Fatalf("total collapse at %d trials not flagged: %+v", trials, r)
		}
	}
}

func TestMarkdownZeroBaseRendersNew(t *testing.T) {
	base := artifact(harness.ArtifactSchema, cell("ire", "expander", 64, 10, 10, 0, 0))
	head := artifact(harness.ArtifactSchema, cell("ire", "expander", 64, 10, 10, 50, 0))
	r := Diff(base, head, Thresholds{})
	if r.Regressed != 4 {
		t.Fatalf("metric appearing from zero not flagged: %+v", r)
	}
	md := r.Markdown()
	if strings.Contains(md, "+0.0%") || !strings.Contains(md, "| new |") {
		t.Fatalf("zero-base delta rendered misleadingly:\n%s", md)
	}
}

// TestDiffCellAlignment covers added/removed cells and key identity
// including presumed_n.
func TestDiffCellAlignment(t *testing.T) {
	removed := cell("flood", "complete", 32, 5, 5, 400, 1)
	kept := cell("ire", "expander", 64, 5, 5, 1000, 1)
	added := cell("ire", "cycle", 16, 5, 5, 50, 1)
	presumed := cell("ire", "expander", 64, 5, 5, 900, 1)
	presumed.PresumedN = 128 // distinct key from kept despite same (proto, family, n)

	base := artifact(harness.ArtifactSchema, kept, removed, presumed)
	head := artifact(harness.ArtifactSchema, kept, added, presumed)
	r := Diff(base, head, Thresholds{})
	if len(r.Cells) != 2 {
		t.Fatalf("aligned cells %d, want 2", len(r.Cells))
	}
	if len(r.Removed) != 1 || r.Removed[0] != (Key{Protocol: "flood", Family: "complete", N: 32}) {
		t.Fatalf("removed %+v", r.Removed)
	}
	if len(r.Added) != 1 || r.Added[0] != (Key{Protocol: "ire", Family: "cycle", N: 16}) {
		t.Fatalf("added %+v", r.Added)
	}
	if r.Cells[1].Key.PresumedN != 128 {
		t.Fatalf("presumed cell misaligned: %+v", r.Cells[1].Key)
	}
	if r.Regressed != 0 {
		t.Fatalf("alignment produced spurious regressions: %+v", r)
	}
}

// TestDiffV1MeansOnlyDowngrade: a v1 artifact (no distributions) is
// compared on means alone, flagged in the report, and still classifies
// clear effects.
func TestDiffV1MeansOnlyDowngrade(t *testing.T) {
	v1cell := harness.ArtifactCell{
		Protocol: "ire", Family: "expander", N: 64,
		Trials: 10, Successes: 10,
		Messages: 1000, Bits: 1000, Rounds: 1000, Charged: 1000,
	}
	base := artifact(harness.ArtifactSchemaV1, v1cell)
	headCell := v1cell
	headCell.Messages = 2000
	head := artifact(harness.ArtifactSchemaV1, headCell)
	r := Diff(base, head, Thresholds{})
	if !r.MeansOnly {
		t.Fatal("v1 pair not flagged means-only")
	}
	if r.Regressed != 1 {
		t.Fatalf("means-only regression not flagged: %+v", r)
	}
	if md := r.Cells[0].Metrics[0]; md.StdErr != 0 {
		t.Fatalf("means-only diff grew a stderr: %+v", md)
	}
	if !strings.Contains(r.Markdown(), "means-only comparison") {
		t.Fatal("markdown missing downgrade note")
	}

	// Mixed v1 base / v2 head downgrades the same way.
	r = Diff(base, artifact(harness.ArtifactSchema, cell("ire", "expander", 64, 10, 10, 1000, 5)), Thresholds{})
	if !r.MeansOnly {
		t.Fatal("mixed-schema pair not flagged means-only")
	}
}

func TestDiffDuplicateKeysPairByOccurrence(t *testing.T) {
	a := cell("ire", "cycle", 16, 5, 5, 100, 1)
	b := cell("ire", "cycle", 16, 5, 5, 200, 1)
	base := artifact(harness.ArtifactSchema, a, b)
	head := artifact(harness.ArtifactSchema, a, b, b)
	r := Diff(base, head, Thresholds{})
	if len(r.Cells) != 2 || r.Regressed != 0 {
		t.Fatalf("duplicate keys misaligned: %+v", r)
	}
	if len(r.Added) != 1 {
		t.Fatalf("extra duplicate not reported added: %+v", r.Added)
	}
}

func TestMarkdownRendersChanges(t *testing.T) {
	base := artifact(harness.ArtifactSchema,
		cell("ire", "expander", 64, 10, 10, 1000, 1),
		cell("flood", "complete", 32, 10, 10, 400, 1))
	headCells := []harness.ArtifactCell{
		cell("ire", "expander", 64, 10, 10, 2000, 1),
		cell("flood", "complete", 32, 10, 10, 200, 1),
	}
	head := artifact(harness.ArtifactSchema, headCells...)
	md := Diff(base, head, Thresholds{}).Markdown()
	for _, want := range []string{
		"## benchdiff", "regressed", "improved",
		"ire expander/64", "flood complete/32", "🔴", "🟢",
		"rel-tol 0.05", "sigmas 3",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestMarkdownAllUnchanged(t *testing.T) {
	a := artifact(harness.ArtifactSchema, cell("ire", "expander", 64, 10, 10, 1000, 1))
	md := Diff(a, a, Thresholds{}).Markdown()
	if !strings.Contains(md, "All aligned metrics within thresholds") {
		t.Fatalf("markdown missing all-clear:\n%s", md)
	}
}

func TestReportJSONRoundTrips(t *testing.T) {
	base := artifact(harness.ArtifactSchema, cell("ire", "expander", 64, 10, 10, 1000, 1))
	head := artifact(harness.ArtifactSchema, cell("ire", "expander", 64, 10, 10, 2000, 1))
	buf, err := Diff(base, head, Thresholds{}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"regressed": 4`, `"base_schema"`, `"rel_tol": 0.05`} {
		if !strings.Contains(string(buf), want) {
			t.Fatalf("report JSON missing %s:\n%s", want, buf)
		}
	}
}

// TestDiffRealArtifactsSelf diffs a real orchestrated sweep against
// itself: the full pipeline (run -> artifact -> diff) must come back
// clean.
func TestDiffRealArtifactsSelf(t *testing.T) {
	specs := []harness.CellSpec{
		{Protocol: harness.ProtoIRE, Workload: harness.Workload{Family: "complete", N: 16},
			Opts: harness.TrialOpts{Trials: 3, Seed: 7}},
		{Protocol: harness.ProtoFlood, Workload: harness.Workload{Family: "cycle", N: 12},
			Opts: harness.TrialOpts{Trials: 3, Seed: 7}},
	}
	o := harness.Orchestrator{Workers: 2}
	cells, err := o.RunSweep(specs)
	if err != nil {
		t.Fatal(err)
	}
	a := harness.NewArtifact(o, specs, cells, 0)
	r := Diff(a, a, Thresholds{})
	if r.Regressed != 0 || r.Improved != 0 || len(r.Added)+len(r.Removed) != 0 {
		t.Fatalf("self-diff not clean: %+v", r)
	}
}

// TestAdversaryKeyAlignment: cells identical except for the adversary
// descriptor are distinct sweep cells — a faulted cell never pairs with
// its fault-free sibling.
func TestAdversaryKeyAlignment(t *testing.T) {
	plain := cell("ire", "expander", 64, 5, 5, 100, 1)
	faulted := cell("ire", "expander", 64, 5, 3, 40, 1)
	faulted.Adversary = "loss=0.1"
	base := artifact(harness.ArtifactSchema, plain, faulted)

	// Head with the same two cells: both align by key, nothing added.
	r := Diff(base, base, Thresholds{})
	if len(r.Cells) != 2 || len(r.Added)+len(r.Removed) != 0 {
		t.Fatalf("v3 self-alignment wrong: %+v", r)
	}
	if r.Cells[1].Key.Adversary != "loss=0.1" {
		t.Fatalf("faulted key lost its adversary: %+v", r.Cells[1].Key)
	}
	if !strings.Contains(r.Cells[1].Key.String(), "[loss=0.1]") {
		t.Fatalf("key render missing adversary: %s", r.Cells[1].Key)
	}

	// Dropping the faulted cell from head reports it removed, not merged
	// into the fault-free cell.
	head := artifact(harness.ArtifactSchema, plain)
	r = Diff(base, head, Thresholds{})
	if len(r.Cells) != 1 || len(r.Removed) != 1 || r.Removed[0].Adversary != "loss=0.1" {
		t.Fatalf("faulted cell not tracked separately: %+v", r)
	}

	// A v2 base (descriptor-less cells) aligns against the v3 head's
	// fault-free cell only.
	v2 := artifact(harness.ArtifactSchemaV2, cell("ire", "expander", 64, 5, 5, 100, 1))
	r = Diff(v2, base, Thresholds{})
	if len(r.Cells) != 1 || len(r.Added) != 1 || r.Added[0].Adversary != "loss=0.1" {
		t.Fatalf("v2-vs-v3 alignment wrong: %+v", r)
	}
	if r.MeansOnly {
		t.Fatal("v2-vs-v3 pair downgraded to means-only")
	}
}

// TestProfileModeKeyAlignment: a cell whose profile regime switched between
// base and head (exact → estimate, e.g. a sweep crossing the auto threshold)
// reports as removed+added, never as a cost regression against the
// other-regime sibling.
func TestProfileModeKeyAlignment(t *testing.T) {
	exact := cell("ire", "expander", 300, 5, 5, 100, 1)
	est := cell("ire", "expander", 300, 5, 5, 180, 1)
	est.ProfileMode = "estimate"

	// Same workload, different regime: no pairing, no regression.
	r := Diff(artifact(harness.ArtifactSchema, exact), artifact(harness.ArtifactSchema, est), Thresholds{})
	if len(r.Cells) != 0 || r.Regressed != 0 {
		t.Fatalf("regime switch falsely aligned: %+v", r)
	}
	if len(r.Removed) != 1 || r.Removed[0].ProfileMode != "" {
		t.Fatalf("exact cell not reported removed: %+v", r.Removed)
	}
	if len(r.Added) != 1 || r.Added[0].ProfileMode != "estimate" {
		t.Fatalf("estimate cell not reported added: %+v", r.Added)
	}
	if !strings.Contains(r.Added[0].String(), "{estimate}") {
		t.Fatalf("key render missing profile mode: %s", r.Added[0])
	}

	// Same regime on both sides still aligns cleanly, keeping the mode.
	r = Diff(artifact(harness.ArtifactSchema, est), artifact(harness.ArtifactSchema, est), Thresholds{})
	if len(r.Cells) != 1 || len(r.Added)+len(r.Removed) != 0 {
		t.Fatalf("estimate self-alignment wrong: %+v", r)
	}
	if r.Cells[0].Key.ProfileMode != "estimate" {
		t.Fatalf("aligned key lost its mode: %+v", r.Cells[0].Key)
	}

	// A v3 base (mode-less cells) aligns against the v4 head's exact cell.
	v3 := artifact(harness.ArtifactSchemaV3, exact)
	r = Diff(v3, artifact(harness.ArtifactSchema, exact, est), Thresholds{})
	if len(r.Cells) != 1 || len(r.Added) != 1 || r.Added[0].ProfileMode != "estimate" {
		t.Fatalf("v3-vs-v4 alignment wrong: %+v", r)
	}
}

// predCell attaches predictions to a cell so the drift classifier engages.
func predCell(mean, predMsgs, predTime float64) harness.ArtifactCell {
	c := cell("ire", "expander", 64, 5, 5, mean, 1)
	c.PredictedMsgs, c.PredictedTime = predMsgs, predTime
	return c
}

// TestDriftClassification: the measured/predicted ratio gates on its own
// tolerance, in both directions, independently of the cost classifier.
func TestDriftClassification(t *testing.T) {
	base := artifact(harness.ArtifactSchema, predCell(100, 50, 50))
	// Same measurement, same predictions: no drift.
	r := Diff(base, base, Thresholds{})
	if r.Drifted != 0 || r.HasDrift() {
		t.Fatalf("self-diff drifted: %+v", r)
	}
	found := 0
	for _, md := range r.Cells[0].Metrics {
		if md.Metric == "msgs_vs_pred" || md.Metric == "time_vs_pred" {
			found++
			if md.Base != 2 || md.Head != 2 || md.Status != Unchanged {
				t.Fatalf("drift metric wrong: %+v", md)
			}
		}
	}
	if found != 2 {
		t.Fatalf("drift metrics missing (%d found)", found)
	}

	// Head ratio moves 2x (measured doubled, predictions fixed): drift in
	// the away-from-bound direction.
	head := artifact(harness.ArtifactSchema, predCell(200, 50, 50))
	r = Diff(base, head, Thresholds{})
	if r.Drifted != 2 || !r.HasDrift() {
		t.Fatalf("2x ratio change not flagged: %+v", r)
	}
	// Toward-the-bound movement drifts too (the ratio is a calibration,
	// not a cost).
	headDown := artifact(harness.ArtifactSchema, predCell(40, 50, 50))
	if r = Diff(base, headDown, Thresholds{}); r.Drifted != 2 {
		t.Fatalf("toward-bound drift not flagged: %+v", r)
	}
	// A wide tolerance clears it.
	if r = Diff(base, head, Thresholds{DriftTol: 1.5}); r.Drifted != 0 {
		t.Fatalf("drift flagged despite wide tolerance: %+v", r)
	}
	// Cells without predictions emit no drift metrics at all.
	noPred := artifact(harness.ArtifactSchema, cell("ire", "expander", 64, 5, 5, 100, 1))
	r = Diff(noPred, noPred, Thresholds{})
	for _, md := range r.Cells[0].Metrics {
		if md.Metric == "msgs_vs_pred" || md.Metric == "time_vs_pred" {
			t.Fatalf("drift metric emitted without predictions: %+v", md)
		}
	}
}

// TestCSVRender: the CSV export carries identity columns, one row per
// metric, and added/removed coverage rows.
func TestCSVRender(t *testing.T) {
	faulted := cell("ire", "expander", 64, 5, 3, 40, 1)
	faulted.Adversary = "loss=0.1"
	base := artifact(harness.ArtifactSchema, cell("ire", "expander", 64, 5, 5, 100, 1), faulted)
	head := artifact(harness.ArtifactSchema, cell("ire", "expander", 64, 5, 5, 100, 1),
		cell("flood", "cycle", 32, 5, 5, 10, 1))
	out, err := Diff(base, head, Thresholds{}).CSV()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// header + 5 metrics for the aligned cell + 1 added + 1 removed.
	if len(lines) != 8 {
		t.Fatalf("%d CSV lines, want 8:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "protocol,family,n,presumed_n,adversary,metric") {
		t.Fatalf("header: %s", lines[0])
	}
	if !strings.Contains(out, "loss=0.1") || !strings.Contains(out, ",removed") || !strings.Contains(out, ",added") {
		t.Fatalf("CSV missing identity or coverage rows:\n%s", out)
	}
}
