package trajectory

import (
	"fmt"
	"strings"
)

// Markdown renders the report as a GitHub-flavored summary: headline
// counts, the schema downgrade note when a v1 artifact is involved, a
// table of every changed metric, and the added/removed cell lists. CI
// appends it to $GITHUB_STEP_SUMMARY; it is also benchdiff's stdout.
func (r Report) Markdown() string {
	var b strings.Builder
	b.WriteString("## benchdiff\n\n")
	fmt.Fprintf(&b, "base `%s` · head `%s`\n\n", r.BaseSchema, r.HeadSchema)
	if r.MeansOnly {
		b.WriteString("> ⚠️ schema mismatch, means-only comparison: a v1 artifact carries no " +
			"distributions, so variance-aware thresholds are disabled and only the relative " +
			"tolerance applies.\n\n")
	}
	if r.BasePartial || r.HeadPartial {
		b.WriteString("> ℹ️ partial-coverage comparison: " + partialSides(r) +
			" a distributed-sweep partial artifact covering less than its planned matrix. " +
			"Cells missing from a partial were likely never assigned to it, so the " +
			"removed-cells gate is advisory here.\n\n")
	}
	fmt.Fprintf(&b, "**%d regressed · %d improved · %d drifted · %d unchanged** across %d aligned cells",
		r.Regressed, r.Improved, r.Drifted, r.Unchanged, len(r.Cells))
	if len(r.Added) > 0 || len(r.Removed) > 0 {
		fmt.Fprintf(&b, " (+%d added, −%d removed)", len(r.Added), len(r.Removed))
	}
	b.WriteString("\n\n")

	changed := false
	for _, cd := range r.Cells {
		for _, md := range cd.Metrics {
			if md.Status != Unchanged {
				changed = true
			}
		}
	}
	if changed {
		b.WriteString("| cell | metric | base | head | Δ | effect | status |\n")
		b.WriteString("|---|---|---:|---:|---:|---:|---|\n")
		for _, cd := range r.Cells {
			for _, md := range cd.Metrics {
				if md.Status == Unchanged {
					continue
				}
				fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s | %s %s |\n",
					cd.Key, md.Metric, fmtVal(md.Base), fmtVal(md.Head),
					fmtDelta(md), fmtEffect(md), statusIcon(md.Status), md.Status)
			}
		}
		b.WriteString("\n")
	} else if len(r.Cells) > 0 {
		b.WriteString("All aligned metrics within thresholds.\n\n")
	}

	if len(r.Removed) > 0 {
		b.WriteString("**Removed cells** (in base only — a shrunk sweep can hide regressions):\n")
		for _, k := range r.Removed {
			fmt.Fprintf(&b, "- %s\n", k)
		}
		b.WriteString("\n")
	}
	if len(r.Added) > 0 {
		b.WriteString("**Added cells** (in head only, no baseline to compare):\n")
		for _, k := range r.Added {
			fmt.Fprintf(&b, "- %s\n", k)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "Thresholds: rel-tol %.3g, sigmas %.3g, drift-tol %.3g.\n",
		r.Thresholds.RelTol, r.Thresholds.Sigmas, r.Thresholds.DriftTol)
	return b.String()
}

// partialSides names which side(s) of the comparison are partial
// artifacts, for the markdown note.
func partialSides(r Report) string {
	switch {
	case r.BasePartial && r.HeadPartial:
		return "both sides are"
	case r.BasePartial:
		return "the base is"
	default:
		return "the head is"
	}
}

// fmtVal renders a metric value compactly (counts dominate; rates are
// small and keep their precision).
func fmtVal(v float64) string {
	switch {
	case v != 0 && (v >= 1e7 || v < 1e-2):
		return fmt.Sprintf("%.3g", v)
	case v == float64(int64(v)):
		return fmt.Sprintf("%d", int64(v))
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// fmtDelta renders the relative change. A metric appearing from a zero
// base has no finite relative delta (RelDelta stays 0 in the report);
// rendering that as "+0.0%" would contradict the flagged status.
func fmtDelta(md MetricDiff) string {
	if md.Base == 0 && md.Head != 0 {
		return "new"
	}
	return fmt.Sprintf("%+.1f%%", 100*md.RelDelta)
}

// fmtEffect renders the effect size in standard errors when variance was
// available, or marks the comparison as means-only.
func fmtEffect(md MetricDiff) string {
	if md.Metric == "success_rate" {
		return "Wilson"
	}
	if md.Metric == "msgs_vs_pred" || md.Metric == "time_vs_pred" {
		return "ratio" // measured/predicted, not a raw mean
	}
	if md.StdErr == 0 {
		return "—" // no variance available (v1 pair or zero-spread sample)
	}
	return fmt.Sprintf("%.1fσ", abs(md.Head-md.Base)/md.StdErr)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func statusIcon(s Status) string {
	switch s {
	case Regressed:
		return "🔴"
	case Improved:
		return "🟢"
	case Drifted:
		return "🟠"
	default:
		return "⚪"
	}
}
