// Package trajectory compares bench artifacts across runs: it aligns the
// sweep cells of a base and a head BENCH_harness.json by workload identity
// and classifies each cost metric as improved, unchanged, or regressed.
//
// The paper's guarantees are probabilistic (w.h.p. message/time bounds),
// so per-cell measurements carry real trial variance; a useful regression
// gate must separate effects from noise. With schema-v2 artifacts the
// classifier therefore demands an effect exceed BOTH a relative tolerance
// and a multiple of the Welch standard error of the difference of means.
// Legacy v1 artifacts carry only means, so the comparison downgrades to
// the relative tolerance alone (Report.MeansOnly records this; benchdiff
// prints it as an explicit downgrade note instead of erroring).
package trajectory

import (
	"encoding/json"
	"fmt"
	"math"

	"anonlead/internal/harness"
	"anonlead/internal/stats"
)

// Key identifies a sweep cell across artifacts: the workload coordinates
// that make two cells comparable. Everything else (graph profile, trial
// counts, measurements) may legitimately differ between runs.
type Key struct {
	Protocol  string `json:"protocol"`
	Family    string `json:"family"`
	N         int    `json:"n"`
	PresumedN int    `json:"presumed_n,omitempty"`
	// Adversary is the fault-injection descriptor ("" = fault-free, which
	// is what every v1/v2 cell aligns as). Schema v3.
	Adversary string `json:"adversary,omitempty"`
	// ProfileMode is the resolved profile regime behind the cell's
	// tmix/Φ/diameter columns ("" = exact, which is what every v1–v3 cell
	// aligns as). An exact cell and an estimate cell of the same workload
	// measure against different predicted bounds, so a regime switch
	// reports as added/removed rather than a false cost regression.
	// Schema v4.
	ProfileMode string `json:"profile_mode,omitempty"`
	// Scenario is the epoch scenario descriptor of a repeated-election
	// cell ("" = classic single election, which is what every v1-v5 cell
	// aligns as). A scenario cell's metrics are multi-epoch totals, so a
	// scenario switch reports as added/removed rather than a false cost
	// regression. Schema v6.
	Scenario string `json:"scenario,omitempty"`
}

func keyOf(c harness.ArtifactCell) Key {
	return Key{Protocol: c.Protocol, Family: c.Family, N: c.N,
		PresumedN: c.PresumedN, Adversary: c.Adversary,
		ProfileMode: c.ProfileMode, Scenario: c.Scenario}
}

// String renders the key the way the rendered tables name cells.
func (k Key) String() string {
	s := fmt.Sprintf("%s %s/%d", k.Protocol, k.Family, k.N)
	if k.PresumedN > 0 && k.PresumedN != k.N {
		s += fmt.Sprintf(" (presumed n=%d)", k.PresumedN)
	}
	if k.Adversary != "" {
		s += fmt.Sprintf(" [%s]", k.Adversary)
	}
	if k.ProfileMode != "" {
		s += fmt.Sprintf(" {%s}", k.ProfileMode)
	}
	if k.Scenario != "" {
		s += fmt.Sprintf(" <%s>", k.Scenario)
	}
	return s
}

// Status classifies one metric of one aligned cell.
type Status string

// The classifications. For cost metrics lower is better; for the success
// rate higher is better — Regressed always means "got worse". Drifted is
// reserved for the predicted-vs-measured ratio metrics: the measurement
// moved away from (or toward) the paper's bound relative to the baseline
// by more than the drift tolerance, in either direction.
const (
	Improved  Status = "improved"
	Unchanged Status = "unchanged"
	Regressed Status = "regressed"
	Drifted   Status = "drifted"
)

// Thresholds tunes the classifier. The zero value selects the defaults.
type Thresholds struct {
	// RelTol is the minimum relative effect |head-base|/|base| to call a
	// change (default 0.05). Guards against flagging tiny absolute drifts
	// on metrics with near-zero variance.
	RelTol float64 `json:"rel_tol"`
	// Sigmas is the minimum effect in units of the Welch standard error
	// of the difference of means (default 3). Guards against flagging
	// trial noise. Only applies when both artifacts carry distributions.
	Sigmas float64 `json:"sigmas"`
	// DriftTol is the minimum relative change of a measured/predicted
	// ratio between base and head to flag predicted-vs-measured drift
	// (default 0.25). Both artifacts persist the paper-bound predictions
	// per cell, so this gate catches a cell walking away from its
	// complexity bound even when raw costs moved "legitimately".
	DriftTol float64 `json:"drift_tol"`
}

// withDefaults resolves zero fields to the default thresholds.
func (t Thresholds) withDefaults() Thresholds {
	if t.RelTol <= 0 {
		t.RelTol = 0.05
	}
	if t.Sigmas <= 0 {
		t.Sigmas = 3
	}
	if t.DriftTol <= 0 {
		t.DriftTol = 0.25
	}
	return t
}

// MetricDiff is the comparison of one metric on one aligned cell.
type MetricDiff struct {
	Metric string `json:"metric"`
	// Base and Head are the per-trial means (or rates for success_rate).
	Base float64 `json:"base"`
	Head float64 `json:"head"`
	// RelDelta is (head-base)/|base|. When base is 0 it stays 0 (JSON has
	// no Inf) and Status alone carries the verdict.
	RelDelta float64 `json:"rel_delta"`
	// StdErr is the Welch standard error of head-base (0 when either side
	// lacks distributions or has fewer than two trials).
	StdErr float64 `json:"stderr"`
	Status Status  `json:"status"`
}

// CellDiff is one aligned cell's comparison across all metrics.
type CellDiff struct {
	Key     Key          `json:"key"`
	Metrics []MetricDiff `json:"metrics"`
}

// Report is the full artifact comparison.
type Report struct {
	BaseSchema string     `json:"base_schema"`
	HeadSchema string     `json:"head_schema"`
	MeansOnly  bool       `json:"means_only"`
	Thresholds Thresholds `json:"thresholds"`
	Cells      []CellDiff `json:"cells"`
	// Added and Removed list cells present in only one artifact. They are
	// reported, not classified — a shrunk sweep can hide a regression, so
	// the markdown summary calls them out loudly.
	Added   []Key `json:"added,omitempty"`
	Removed []Key `json:"removed,omitempty"`
	// BasePartial/HeadPartial record that a side is a distributed-sweep
	// partial (an ArtifactPlan header covering less than its planned
	// matrix). Cells "removed" against a partial head are usually cells
	// that worker was never asked to run, not cells a shrunk sweep
	// deleted — benchdiff downgrades its removed-cells gate accordingly.
	BasePartial bool `json:"base_partial,omitempty"`
	HeadPartial bool `json:"head_partial,omitempty"`

	Improved  int `json:"improved"`
	Unchanged int `json:"unchanged"`
	Regressed int `json:"regressed"`
	// Drifted counts predicted-vs-measured ratio metrics that moved
	// beyond DriftTol between base and head (gated by -fail-on drift,
	// independently of the cost-regression gate).
	Drifted int `json:"drifted"`
}

// HasRegressions reports whether any aligned metric regressed.
func (r Report) HasRegressions() bool { return r.Regressed > 0 }

// HasDrift reports whether any measured/predicted ratio drifted.
func (r Report) HasDrift() bool { return r.Drifted > 0 }

// JSON renders the report machine-readably.
func (r Report) JSON() ([]byte, error) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("trajectory: marshal report: %w", err)
	}
	return append(buf, '\n'), nil
}

// costMetrics names the lower-is-better metrics, in report order.
var costMetrics = []string{"messages", "bits", "rounds", "charged"}

// cellDist extracts the named cost metric's distribution from a cell,
// rehydrating trials and mean (a v1 cell yields a zero-spread Dist).
func cellDist(c harness.ArtifactCell, metric string) stats.Dist {
	switch metric {
	case "messages":
		return c.MessagesDist.Dist(c.Trials, c.Messages)
	case "bits":
		return c.BitsDist.Dist(c.Trials, c.Bits)
	case "rounds":
		return c.RoundsDist.Dist(c.Trials, c.Rounds)
	case "charged":
		return c.ChargedDist.Dist(c.Trials, c.Charged)
	default:
		panic("trajectory: unknown metric " + metric)
	}
}

// classifyCost compares one lower-is-better metric. A change is called
// only when the effect clears the relative tolerance AND (when variance is
// available) Sigmas standard errors of the difference.
func classifyCost(metric string, base, head stats.Dist, th Thresholds, meansOnly bool) MetricDiff {
	d := MetricDiff{Metric: metric, Base: base.Mean, Head: head.Mean, Status: Unchanged}
	delta := head.Mean - base.Mean
	if base.Mean != 0 {
		d.RelDelta = delta / math.Abs(base.Mean)
	}
	if !meansOnly {
		d.StdErr = stats.WelchStdErr(base, head)
	}
	if delta == 0 {
		return d
	}
	// Relative gate; a metric appearing from zero is always a change.
	if base.Mean != 0 && math.Abs(delta) <= th.RelTol*math.Abs(base.Mean) {
		return d
	}
	// Variance gate (vacuous for means-only or zero-variance samples).
	if math.Abs(delta) <= th.Sigmas*d.StdErr {
		return d
	}
	if delta > 0 {
		d.Status = Regressed
	} else {
		d.Status = Improved
	}
	return d
}

// classifySuccess compares the success rate (higher is better) by Wilson
// interval disjointness, which both schemas support: successes and trials
// are v1 fields, so this comparison never downgrades.
func classifySuccess(base, head harness.ArtifactCell) MetricDiff {
	baseRate, headRate := rate(base), rate(head)
	d := MetricDiff{Metric: "success_rate", Base: baseRate, Head: headRate, Status: Unchanged}
	if baseRate != 0 {
		d.RelDelta = (headRate - baseRate) / baseRate
	}
	baseLo, baseHi := stats.Wilson(base.Successes, base.Trials)
	headLo, headHi := stats.Wilson(head.Successes, head.Trials)
	switch {
	case headHi < baseLo:
		d.Status = Regressed
	case headLo > baseHi:
		d.Status = Improved
	}
	return d
}

func rate(c harness.ArtifactCell) float64 {
	if c.Trials == 0 {
		return 0
	}
	return float64(c.Successes) / float64(c.Trials)
}

// driftMetrics pairs each persisted prediction with the measurement it
// bounds: the paper's message bound against mean messages, its time bound
// against mean rounds.
var driftMetrics = []struct {
	name      string
	measured  func(harness.ArtifactCell) float64
	predicted func(harness.ArtifactCell) float64
}{
	{"msgs_vs_pred", func(c harness.ArtifactCell) float64 { return c.Messages },
		func(c harness.ArtifactCell) float64 { return c.PredictedMsgs }},
	{"time_vs_pred", func(c harness.ArtifactCell) float64 { return c.Rounds },
		func(c harness.ArtifactCell) float64 { return c.PredictedTime }},
}

// classifyDrift compares one measured/predicted ratio between base and
// head. A cell whose ratio moves by more than DriftTol relative to its
// baseline ratio is Drifted — the measurement walked away from (or
// toward) the paper's bound, a different signal than a raw cost change.
// Returns ok=false when either side lacks a usable prediction (ratio
// undefined), in which case no metric is emitted.
func classifyDrift(name string, baseMeas, basePred, headMeas, headPred float64, th Thresholds) (MetricDiff, bool) {
	if basePred <= 0 || headPred <= 0 || baseMeas <= 0 || headMeas <= 0 {
		return MetricDiff{}, false
	}
	baseRatio, headRatio := baseMeas/basePred, headMeas/headPred
	d := MetricDiff{Metric: name, Base: baseRatio, Head: headRatio, Status: Unchanged}
	d.RelDelta = (headRatio - baseRatio) / baseRatio
	if math.Abs(d.RelDelta) > th.DriftTol {
		d.Status = Drifted
	}
	return d, true
}

// Diff aligns the cells of two artifacts by Key and classifies every
// metric. Aligned cells keep base order; duplicates of a key pair up by
// occurrence index, with unpaired occurrences reported as added/removed.
func Diff(base, head harness.Artifact, th Thresholds) Report {
	th = th.withDefaults()
	r := Report{
		BaseSchema:  base.Schema,
		HeadSchema:  head.Schema,
		BasePartial: base.IsPartial(),
		HeadPartial: head.IsPartial(),
		Thresholds:  th,
	}

	headIdx := make(map[Key][]int, len(head.Cells))
	for i, c := range head.Cells {
		k := keyOf(c)
		headIdx[k] = append(headIdx[k], i)
	}
	matchedHead := make([]bool, len(head.Cells))
	taken := make(map[Key]int, len(headIdx))

	for _, bc := range base.Cells {
		k := keyOf(bc)
		idxs := headIdx[k]
		if taken[k] >= len(idxs) {
			r.Removed = append(r.Removed, k)
			continue
		}
		hc := head.Cells[idxs[taken[k]]]
		matchedHead[idxs[taken[k]]] = true
		taken[k]++

		// The whole pair downgrades to means-only if either side lacks
		// distributions (v1 schema, or a hand-edited v2 cell).
		meansOnly := !bc.HasDists() || !hc.HasDists()
		if meansOnly {
			r.MeansOnly = true
		}
		cd := CellDiff{Key: k}
		for _, m := range costMetrics {
			cd.Metrics = append(cd.Metrics,
				classifyCost(m, cellDist(bc, m), cellDist(hc, m), th, meansOnly))
		}
		cd.Metrics = append(cd.Metrics, classifySuccess(bc, hc))
		for _, dm := range driftMetrics {
			if md, ok := classifyDrift(dm.name,
				dm.measured(bc), dm.predicted(bc),
				dm.measured(hc), dm.predicted(hc), th); ok {
				cd.Metrics = append(cd.Metrics, md)
			}
		}
		for _, md := range cd.Metrics {
			switch md.Status {
			case Improved:
				r.Improved++
			case Regressed:
				r.Regressed++
			case Drifted:
				r.Drifted++
			default:
				r.Unchanged++
			}
		}
		r.Cells = append(r.Cells, cd)
	}
	for i, hc := range head.Cells {
		if !matchedHead[i] {
			r.Added = append(r.Added, keyOf(hc))
		}
	}
	return r
}

// DiffFiles loads two artifact files and diffs them.
func DiffFiles(basePath, headPath string, th Thresholds) (Report, error) {
	base, err := harness.ReadArtifactFile(basePath)
	if err != nil {
		return Report{}, err
	}
	head, err := harness.ReadArtifactFile(headPath)
	if err != nil {
		return Report{}, err
	}
	return Diff(base, head, th), nil
}
