package trajectory

import (
	"fmt"
	"path/filepath"
	"strings"

	"anonlead/internal/harness"
)

// Series is an ordered run of bench artifacts, oldest first — the
// cross-PR trajectory the pairwise Diff only ever sees two points of.
// Build one with NewSeries (in-memory artifacts) or LoadSeries (files),
// then classify per-metric trends with Trends.
type Series struct {
	// Labels name the series points in order (file basenames for
	// LoadSeries, indices otherwise).
	Labels    []string
	Artifacts []harness.Artifact
}

// NewSeries assembles a series from artifacts in chronological order.
// labels may be nil (points are then named by index); a series needs at
// least two points, otherwise there is no trajectory to classify.
func NewSeries(artifacts []harness.Artifact, labels []string) (Series, error) {
	if len(artifacts) < 2 {
		return Series{}, fmt.Errorf("trajectory: series needs >= 2 artifacts, got %d", len(artifacts))
	}
	if labels != nil && len(labels) != len(artifacts) {
		return Series{}, fmt.Errorf("trajectory: %d labels for %d artifacts", len(labels), len(artifacts))
	}
	s := Series{Artifacts: artifacts, Labels: labels}
	if s.Labels == nil {
		s.Labels = make([]string, len(artifacts))
		for i := range s.Labels {
			s.Labels[i] = fmt.Sprintf("#%d", i+1)
		}
	}
	return s, nil
}

// LoadSeries reads artifact files in chronological order (oldest first)
// and labels the points with the file basenames (disambiguated by index
// when names repeat, as they do for archived copies of the same
// BENCH_harness.json).
func LoadSeries(paths ...string) (Series, error) {
	artifacts := make([]harness.Artifact, len(paths))
	labels := make([]string, len(paths))
	seen := map[string]int{}
	for i, p := range paths {
		a, err := harness.ReadArtifactFile(p)
		if err != nil {
			return Series{}, err
		}
		artifacts[i] = a
		name := filepath.Base(p)
		seen[name]++
		if seen[name] > 1 {
			name = fmt.Sprintf("%s (%d)", name, seen[name])
		}
		labels[i] = name
	}
	return NewSeries(artifacts, labels)
}

// Trend classifies one metric's trajectory over a whole series.
type Trend string

// The trend verdicts. Net movement is judged between the series
// endpoints with the same two gates the pairwise classifier uses
// (relative tolerance AND Welch standard errors — or Wilson-interval
// disjointness for the success rate), so a trend is never called on
// trial noise.
const (
	TrendImproving  Trend = "improving"
	TrendFlat       Trend = "flat"
	TrendRegressing Trend = "regressing"
)

// trendOf maps a pairwise endpoint classification onto a trend verdict.
func trendOf(s Status) Trend {
	switch s {
	case Improved:
		return TrendImproving
	case Regressed:
		return TrendRegressing
	default:
		return TrendFlat
	}
}

// MetricTrend is one metric's trajectory on one aligned cell.
type MetricTrend struct {
	Metric string `json:"metric"`
	// Values holds the metric's per-artifact means (the success rate for
	// success_rate), in series order.
	Values []float64 `json:"values"`
	// First and Last are the endpoint values (Values[0] and Values[-1]).
	First float64 `json:"first"`
	Last  float64 `json:"last"`
	// RelDelta is (last-first)/|first| (0 when first is 0).
	RelDelta float64 `json:"rel_delta"`
	// StdErr is the Welch standard error of last-first (0 when either
	// endpoint lacks distributions).
	StdErr float64 `json:"stderr"`
	// Steps classifies each adjacent pair of points with the pairwise
	// machinery (len = points-1): the texture behind the net verdict, so
	// a regression introduced three artifacts ago is distinguishable from
	// a slow drift.
	Steps []Status `json:"steps"`
	Trend Trend    `json:"trend"`
}

// CellTrend is one aligned cell's trajectory across all metrics.
type CellTrend struct {
	Key     Key           `json:"key"`
	Metrics []MetricTrend `json:"metrics"`
}

// SeriesReport is the full trend classification of a series.
type SeriesReport struct {
	Labels     []string    `json:"labels"`
	Schemas    []string    `json:"schemas"`
	MeansOnly  bool        `json:"means_only"`
	Thresholds Thresholds  `json:"thresholds"`
	Cells      []CellTrend `json:"cells"`
	// Partial lists cell keys whose occurrences are missing from at least
	// one series point (including duplicate occurrences that exist only
	// in some artifacts, even when the key's common occurrences are
	// tracked). They are reported, not classified — a cell that comes and
	// goes has no well-defined trajectory, and hiding it could hide a
	// regression.
	Partial []Key `json:"partial,omitempty"`
	// PartialPoints labels series points that are distributed-sweep partial
	// artifacts (an ArtifactPlan header covering less than its planned
	// matrix). Cells absent from those points are usually unassigned, not
	// removed — the Partial list is read accordingly.
	PartialPoints []string `json:"partial_points,omitempty"`

	Improving  int `json:"improving"`
	Flat       int `json:"flat"`
	Regressing int `json:"regressing"`
}

// HasRegressions reports whether any metric's net trend regresses.
func (r SeriesReport) HasRegressions() bool { return r.Regressing > 0 }

// seriesMetrics names the per-cell metrics a trend is computed for, in
// report order: the cost metrics plus the success rate.
var seriesMetrics = append(append([]string{}, costMetrics...), "success_rate")

// Trends aligns the series' cells across every artifact and classifies
// each metric's net trajectory. A cell occurrence is tracked only when
// present in every point (duplicates pair by occurrence index, like
// Diff); tracked cells follow the first artifact's order.
func (s Series) Trends(th Thresholds) SeriesReport {
	th = th.withDefaults()
	r := SeriesReport{Labels: s.Labels, Thresholds: th}
	for i, a := range s.Artifacts {
		r.Schemas = append(r.Schemas, a.Schema)
		if a.IsPartial() {
			r.PartialPoints = append(r.PartialPoints, s.Labels[i])
		}
	}

	// Per-artifact occurrence index: key -> cell indices in order.
	occ := make([]map[Key][]int, len(s.Artifacts))
	for i, a := range s.Artifacts {
		occ[i] = make(map[Key][]int, len(a.Cells))
		for j, c := range a.Cells {
			k := keyOf(c)
			occ[i][k] = append(occ[i][k], j)
		}
	}

	// A key is partial when its occurrence count differs anywhere in the
	// series: occurrences beyond the common minimum exist in some points
	// but not all — whether the extras live in the first artifact, a later
	// one, or the key is absent somewhere entirely.
	partial := map[Key]bool{}
	maxOcc := map[Key]int{}
	for i := range s.Artifacts {
		for k, idxs := range occ[i] {
			if len(idxs) > maxOcc[k] {
				maxOcc[k] = len(idxs)
			}
		}
	}
	for k, mx := range maxOcc {
		mn := mx
		for i := range s.Artifacts {
			if l := len(occ[i][k]); l < mn {
				mn = l
			}
		}
		if mn != mx {
			partial[k] = true
		}
	}

	seen := map[Key]int{} // occurrences of key consumed from the first artifact
	for _, first := range s.Artifacts[0].Cells {
		k := keyOf(first)
		j := seen[k]
		seen[k]++
		// The j-th occurrence must exist in every point of the series.
		cells := make([]harness.ArtifactCell, len(s.Artifacts))
		tracked := true
		for i := range s.Artifacts {
			idxs := occ[i][k]
			if j >= len(idxs) {
				tracked = false
				break
			}
			cells[i] = s.Artifacts[i].Cells[idxs[j]]
		}
		if !tracked {
			continue
		}
		meansOnly := false
		for _, c := range cells {
			if !c.HasDists() {
				meansOnly = true
			}
		}
		if meansOnly {
			r.MeansOnly = true
		}
		ct := CellTrend{Key: k}
		for _, m := range seriesMetrics {
			mt := metricTrend(m, cells, th, meansOnly)
			switch mt.Trend {
			case TrendImproving:
				r.Improving++
			case TrendRegressing:
				r.Regressing++
			default:
				r.Flat++
			}
			ct.Metrics = append(ct.Metrics, mt)
		}
		r.Cells = append(r.Cells, ct)
	}
	// Deterministic partial order: first appearance across the series.
	emitted := map[Key]bool{}
	for _, a := range s.Artifacts {
		for _, c := range a.Cells {
			k := keyOf(c)
			if partial[k] && !emitted[k] {
				emitted[k] = true
				r.Partial = append(r.Partial, k)
			}
		}
	}
	return r
}

// metricTrend classifies one metric's trajectory over the aligned cells
// (one per series point) by reusing the pairwise classifier: the net
// verdict compares the endpoints, Steps compare each adjacent pair.
func metricTrend(metric string, cells []harness.ArtifactCell, th Thresholds, meansOnly bool) MetricTrend {
	classify := func(base, head harness.ArtifactCell) MetricDiff {
		if metric == "success_rate" {
			return classifySuccess(base, head)
		}
		return classifyCost(metric, cellDist(base, metric), cellDist(head, metric), th, meansOnly)
	}
	net := classify(cells[0], cells[len(cells)-1])
	mt := MetricTrend{
		Metric:   metric,
		First:    net.Base,
		Last:     net.Head,
		RelDelta: net.RelDelta,
		StdErr:   net.StdErr,
		Trend:    trendOf(net.Status),
	}
	for _, c := range cells {
		var v float64
		switch metric {
		case "messages":
			v = c.Messages
		case "bits":
			v = c.Bits
		case "rounds":
			v = c.Rounds
		case "charged":
			v = c.Charged
		case "success_rate":
			v = rate(c)
		}
		mt.Values = append(mt.Values, v)
	}
	for i := 1; i < len(cells); i++ {
		mt.Steps = append(mt.Steps, classify(cells[i-1], cells[i]).Status)
	}
	return mt
}

// String renders the trend compactly ("1000 → 900 → 500 (improving)") for
// logs and error messages.
func (mt MetricTrend) String() string {
	vals := make([]string, len(mt.Values))
	for i, v := range mt.Values {
		vals[i] = fmtVal(v)
	}
	return fmt.Sprintf("%s: %s (%s)", mt.Metric, strings.Join(vals, " → "), mt.Trend)
}
