package trajectory

import (
	"bytes"
	"encoding/csv"
	"strconv"
)

// csvHeader is the column layout of Report.CSV: one row per (aligned cell,
// metric), plus one row per added/removed cell with a blank metric.
var csvHeader = []string{
	"protocol", "family", "n", "presumed_n", "adversary",
	"metric", "base", "head", "rel_delta", "stderr", "status",
}

// CSV renders the report flat for spreadsheets and dashboards: every
// aligned metric (changed or not, drift ratios included) becomes one row
// keyed by the cell's identity columns. Added and removed cells appear as
// rows with an empty metric column and status "added"/"removed", so
// coverage changes survive the export too.
func (r Report) CSV() (string, error) {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write(csvHeader); err != nil {
		return "", err
	}
	num := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	keyCols := func(k Key) []string {
		return []string{k.Protocol, k.Family, strconv.Itoa(k.N), strconv.Itoa(k.PresumedN), k.Adversary}
	}
	for _, cd := range r.Cells {
		for _, md := range cd.Metrics {
			row := append(keyCols(cd.Key),
				md.Metric, num(md.Base), num(md.Head), num(md.RelDelta), num(md.StdErr), string(md.Status))
			if err := w.Write(row); err != nil {
				return "", err
			}
		}
	}
	for _, k := range r.Added {
		if err := w.Write(append(keyCols(k), "", "", "", "", "", "added")); err != nil {
			return "", err
		}
	}
	for _, k := range r.Removed {
		if err := w.Write(append(keyCols(k), "", "", "", "", "", "removed")); err != nil {
			return "", err
		}
	}
	w.Flush()
	return buf.String(), w.Error()
}
