package spectral

import "fmt"

// Mode selects the profiling regime: the exact reference computations
// (dense matrix powering for tmix, all-pairs BFS diameter, enumerated
// cuts at tiny n) or the streaming estimators that never materialize an
// n×n matrix and keep profiling O(m·polylog) at large n.
type Mode int

const (
	// ModeAuto resolves to ModeExact for n <= EstimateThreshold and
	// ModeEstimate above it. It is the zero value, so callers that do not
	// care get the exact regime at every historically simulable size and
	// the streaming regime exactly where exactness stops being affordable.
	ModeAuto Mode = iota
	// ModeExact is the legacy reference regime: exact diameter, exact
	// mixing time up to MixingTimeExactLimit (spectral bound above),
	// enumerated cuts up to ExactCutLimit (sweep cut above).
	ModeExact
	// ModeEstimate is the streaming regime: double-sweep diameter lower
	// bound, sampled random-walk mixing time, budgeted power iteration,
	// and sweep cuts — O(m) memory at every size.
	ModeEstimate
)

// EstimateThreshold is the largest n at which ModeAuto still profiles
// exactly. It equals MixingTimeExactLimit: beyond it the exact regime
// already degrades tmix to a spectral bound while keeping the O(n·m)
// exact diameter, so estimation is strictly the better trade.
const EstimateThreshold = MixingTimeExactLimit

// String returns the canonical mode name ("auto", "exact", "estimate") —
// the string the lebench -profile flag accepts and artifacts record.
func (m Mode) String() string {
	switch m {
	case ModeExact:
		return "exact"
	case ModeEstimate:
		return "estimate"
	default:
		return "auto"
	}
}

// ParseMode parses a canonical mode name.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "auto":
		return ModeAuto, nil
	case "exact":
		return ModeExact, nil
	case "estimate":
		return ModeEstimate, nil
	default:
		return ModeAuto, fmt.Errorf("spectral: unknown profile mode %q (want auto, exact, or estimate)", s)
	}
}

// Resolve maps ModeAuto onto the concrete regime for an n-node graph;
// explicit modes resolve to themselves. Caches key on the resolved mode,
// so auto and its resolution share entries.
func (m Mode) Resolve(n int) Mode {
	if m == ModeAuto {
		if n <= EstimateThreshold {
			return ModeExact
		}
		return ModeEstimate
	}
	return m
}
