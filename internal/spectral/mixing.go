package spectral

import (
	"math"

	"anonlead/internal/graph"
)

// MixingTimeExactLimit is the largest n for which ProfileGraph computes the
// exact mixing time by matrix powering; beyond it the spectral estimate is
// used. Exact powering costs O(n³·log tmix) — about a second at the limit.
// The spectral estimate can overshoot fast-mixing graphs by ~10x (it pays
// the full log(4nm) even when the true tmix is O(1)), so exactness up to
// the common experiment sizes keeps protocol parameterizations honest.
const MixingTimeExactLimit = 256

// MixingTimeExact computes the paper's tmix(G) exactly: the minimum t such
// that every row of Pᵗ is within 1/(2n) of the stationary distribution in
// the max norm (point-mass starts are the worst case, so checking rows
// suffices; arbitrary π0 are convex combinations of rows). It brackets t by
// repeated squaring and then binary-searches inside the bracket. maxT caps
// the search; when tmix exceeds it, the result is (maxT, true): an explicit
// capped flag instead of a sentinel the caller must know, so "at least
// this much" is never silently mistaken for a measured crossing.
func MixingTimeExact(g *graph.Graph, maxT int) (tmix int, capped bool) {
	n := g.N()
	if n < 2 {
		return 1, false
	}
	pi := Stationary(g)
	p := LazyWalkMatrix(g)
	if withinMixingTolerance(p, pi) {
		return 1, false
	}

	// Bracket: powers[i] = P^(2^i); find first power that mixes.
	powers := []*Dense{p}
	steps := []int{1}
	cur := p
	t := 1
	for !withinMixingTolerance(cur, pi) {
		if t >= maxT {
			return maxT, true
		}
		cur = cur.Mul(cur)
		t *= 2
		powers = append(powers, cur)
		steps = append(steps, t)
	}

	// Binary search in (t/2, t] by composing saved powers.
	lo, hi := t/2, t // P^lo not mixed, P^hi mixed
	base := powers[len(powers)-2]
	baseSteps := steps[len(steps)-2]
	acc := base
	accSteps := baseSteps
	// Greedily add decreasing powers while staying unmixed.
	for i := len(powers) - 3; i >= 0; i-- {
		trial := acc.Mul(powers[i])
		trialSteps := accSteps + steps[i]
		if withinMixingTolerance(trial, pi) {
			if trialSteps < hi {
				hi = trialSteps
			}
		} else {
			acc = trial
			accSteps = trialSteps
			if trialSteps > lo {
				lo = trialSteps
			}
		}
	}
	// acc is the largest unmixed power found; one more single step at a
	// time closes the gap (the remaining window is at most a few steps).
	for accSteps+1 < hi {
		acc = acc.Mul(p)
		accSteps++
		if withinMixingTolerance(acc, pi) {
			return accSteps, false
		}
	}
	_ = lo
	return hi, false
}

// withinMixingTolerance reports whether every row of p is within 1/(2n) of
// the stationary distribution in max norm.
func withinMixingTolerance(p *Dense, pi []float64) bool {
	n := p.N()
	tol := 1 / (2 * float64(n))
	for i := 0; i < n; i++ {
		row := p.Row(i)
		for j, v := range row {
			if abs(v-pi[j]) > tol {
				return false
			}
		}
	}
	return true
}

// Stationary returns the stationary distribution of the lazy walk on g:
// π_v = deg(v) / (2m).
func Stationary(g *graph.Graph) []float64 {
	n := g.N()
	pi := make([]float64, n)
	total := float64(2 * g.M())
	if total == 0 {
		for v := range pi {
			pi[v] = 1 / float64(n)
		}
		return pi
	}
	for v := 0; v < n; v++ {
		pi[v] = float64(g.Degree(v)) / total
	}
	return pi
}

// MixingTimeSpectral estimates tmix from the spectral gap via the standard
// relaxation-time bound tmix ≤ ln(2n / π_min) / (1 − λ₂), which for the
// paper's 1/(2n) tolerance and π_min ≥ 1/(2m) gives ln(4nm)/gap. The
// estimate is an upper bound up to constants and has the right growth on
// every family in the experiment suite (Θ(n²·log n) on cycles, Θ(log n) on
// expanders).
func MixingTimeSpectral(g *graph.Graph) int {
	n := g.N()
	if n < 2 {
		return 1
	}
	gap := SpectralGap(g)
	if gap <= 0 {
		return math.MaxInt32
	}
	t := math.Log(4*float64(n)*float64(g.M())) / gap
	if t < 1 {
		return 1
	}
	if t > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(math.Ceil(t))
}

// MixingTime returns the exact mixing time when n is small enough and the
// spectral estimate otherwise. See mixingTimeWithCap for the capped flag.
func MixingTime(g *graph.Graph) int {
	t, _ := mixingTimeWithCap(g)
	return t
}

// mixingTimeWithCap is the exact-regime dispatcher with the capped flag:
// exact search up to MixingTimeExactLimit (capped when the generous n²
// budget is exhausted), spectral estimate above (never capped — it is a
// closed-form bound, not a search).
func mixingTimeWithCap(g *graph.Graph) (tmix int, capped bool) {
	if g.N() <= MixingTimeExactLimit {
		// Cap exact search generously; cycles need ~n² steps.
		n := g.N()
		return MixingTimeExact(g, 8*n*n+64)
	}
	return MixingTimeSpectral(g), false
}
