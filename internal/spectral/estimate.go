package spectral

import (
	"math"

	"anonlead/internal/graph"
	"anonlead/internal/rng"
)

// estimateStarts is the number of sampled point-mass start distributions
// the mixing-time estimator evolves. tmix(G) is a maximum over point-mass
// starts; sampling a handful and taking the max underestimates only when
// the sampled starts all miss the slowest-mixing vertex class, which the
// symmetric experiment families do not have.
const estimateStarts = 4

// estimateTmixBudget is the per-start step budget of the sampled walk.
// Starts that have not mixed within it are extrapolated from their
// measured geometric TV decay (and reported as capped).
func estimateTmixBudget(n int) int {
	b := 8 * n
	if b < 512 {
		b = 512
	}
	if b > 4096 {
		b = 4096
	}
	return b
}

// MixingTimeSampled estimates the paper's tmix(G) by evolving exact
// lazy-walk distributions from sampled point-mass starts: x_{t+1} = x_t·P
// is a sparse O(m) product, so no n×n matrix is ever built. Each start
// stops at the first t with max-norm distance to the stationary
// distribution at most 1/(2n) (the paper's tolerance); a start that
// exhausts its step budget is extrapolated along its measured geometric
// decay rate, falling back to the spectral bound when no decay is
// measurable. The returned capped flag reports that at least one start
// was extrapolated, i.e. the value is an estimate beyond the walked
// horizon rather than a measured crossing.
//
// Start selection is deterministic via the rng seed chain, so estimated
// profiles are byte-identical across schedulers and cache hits.
func MixingTimeSampled(g *graph.Graph, seed uint64) (tmix int, capped bool) {
	n := g.N()
	if n < 2 {
		return 1, false
	}
	pi := Stationary(g)
	tol := 1 / (2 * float64(n))
	budget := estimateTmixBudget(n)

	tmix = 1
	for _, start := range sampleStarts(g, seed) {
		t, c := mixFromStart(g, pi, start, tol, budget)
		if t > tmix {
			tmix = t
		}
		capped = capped || c
	}
	return tmix, capped
}

// sampleStarts draws up to estimateStarts distinct start vertices from
// the profile seed chain.
func sampleStarts(g *graph.Graph, seed uint64) []int {
	n := g.N()
	k := estimateStarts
	if k > n {
		k = n
	}
	r := rng.New(seed).SplitString("spectral:tmix-starts")
	starts := make([]int, 0, k)
	seen := make(map[int]bool, k)
	for len(starts) < k {
		v := r.Intn(n)
		if !seen[v] {
			seen[v] = true
			starts = append(starts, v)
		}
	}
	return starts
}

// mixFromStart evolves one point-mass distribution under the lazy walk
// until it is within tol of stationarity in max norm, or the budget runs
// out and the crossing is extrapolated from the measured decay.
func mixFromStart(g *graph.Graph, pi []float64, start int, tol float64, budget int) (int, bool) {
	n := g.N()
	x := make([]float64, n)
	y := make([]float64, n)
	x[start] = 1

	// Geometric-decay checkpoint for extrapolation: the distance halfway
	// through the budget, past any early transient.
	half := budget / 2
	dHalf := math.Inf(1)
	var d float64
	for t := 1; t <= budget; t++ {
		stepLazy(g, x, y)
		x, y = y, x
		d = maxNormDist(x, pi)
		if d <= tol {
			return t, false
		}
		if t == half {
			dHalf = d
		}
	}

	// Budget exhausted: extrapolate d(t) ~ d(budget)·ρ^(t-budget) with the
	// per-step rate measured over the second half of the walk.
	if dHalf > d && dHalf != math.Inf(1) && d > 0 {
		rho := math.Pow(d/dHalf, 1/float64(budget-half))
		if rho > 0 && rho < 1 {
			extra := math.Ceil(math.Log(tol/d) / math.Log(rho))
			t := float64(budget) + extra
			if t > math.MaxInt32 {
				return math.MaxInt32, true
			}
			return int(t), true
		}
	}
	// No measurable decay (flat or numerically degenerate): fall back to
	// the spectral bound, never reporting less than the walked budget.
	t := MixingTimeSpectral(g)
	if t < budget {
		t = budget
	}
	return t, true
}

// stepLazy advances a distribution one step of the lazy walk: y = x·P
// with P = (I + D⁻¹A)/2, a sparse O(m) product.
func stepLazy(g *graph.Graph, x, y []float64) {
	n := g.N()
	for v := 0; v < n; v++ {
		y[v] = 0
	}
	for v := 0; v < n; v++ {
		xv := x[v]
		if xv == 0 {
			continue
		}
		deg := g.Degree(v)
		if deg == 0 {
			y[v] += xv
			continue
		}
		y[v] += xv / 2
		share := xv / (2 * float64(deg))
		for p := 0; p < deg; p++ {
			y[g.Neighbor(v, p)] += share
		}
	}
}

// maxNormDist returns max_v |x[v] - pi[v]|.
func maxNormDist(x, pi []float64) float64 {
	d := 0.0
	for v := range x {
		if diff := math.Abs(x[v] - pi[v]); diff > d {
			d = diff
		}
	}
	return d
}

// estimateProfile computes the streaming-regime profile: every quantity
// from O(m)-per-step passes, no dense matrix, no all-pairs BFS.
func estimateProfile(g *graph.Graph, seed uint64) (*Profile, error) {
	p := &Profile{
		N:         g.N(),
		M:         g.M(),
		Diameter:  g.DiameterLowerBound(),
		MinDegree: g.MinDegree(),
		MaxDegree: g.MaxDegree(),
		Estimated: true,
	}
	lambda, vec := secondEigenpairBudget(g, estimateEigenBudget(g), estimateEigenTol)
	p.Lambda2 = lambda
	p.SpectralGap = 1 - lambda
	p.MixingTime, p.MixingCapped = MixingTimeSampled(g, seed)
	p.Conductance, p.Isoperim = sweepCutFrom(g, walkCoords(g, vec))
	return p, nil
}
