package spectral

import (
	"math"
	"testing"
	"testing/quick"

	"anonlead/internal/graph"
	"anonlead/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLazyWalkMatrixIsStochastic(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Cycle(9), graph.Complete(6), graph.Star(7), graph.Path(5),
	} {
		m := LazyWalkMatrix(g)
		if err := m.RowStochasticError(); err > 1e-12 {
			t.Fatalf("row sums off by %v", err)
		}
		for v := 0; v < g.N(); v++ {
			if m.At(v, v) < 0.5-1e-12 {
				t.Fatalf("laziness violated at %d: %v", v, m.At(v, v))
			}
		}
	}
}

func TestDenseMulIdentity(t *testing.T) {
	g := graph.Cycle(6)
	p := LazyWalkMatrix(g)
	id := Identity(6)
	q := p.Mul(id)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if !almostEqual(p.At(i, j), q.At(i, j), 1e-15) {
				t.Fatalf("P*I != P at (%d,%d)", i, j)
			}
		}
	}
}

func TestDenseMulVecLeftPreservesMass(t *testing.T) {
	g := graph.Complete(5)
	p := LazyWalkMatrix(g)
	x := []float64{1, 0, 0, 0, 0}
	for step := 0; step < 10; step++ {
		x = p.MulVecLeft(x)
		sum := 0.0
		for _, v := range x {
			sum += v
		}
		if !almostEqual(sum, 1, 1e-12) {
			t.Fatalf("mass leaked at step %d: %v", step, sum)
		}
	}
}

func TestDenseMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(3).Mul(NewDense(4))
}

func TestSecondEigenvalueCycleClosedForm(t *testing.T) {
	// Lazy walk on C_n: eigenvalues 1/2 + cos(2πk/n)/2; λ₂ at k=1.
	for _, n := range []int{8, 16, 32} {
		want := 0.5 + 0.5*math.Cos(2*math.Pi/float64(n))
		got := SecondEigenvalue(graph.Cycle(n))
		if !almostEqual(got, want, 1e-6) {
			t.Fatalf("C_%d lambda2 = %v want %v", n, got, want)
		}
	}
}

func TestSecondEigenvalueCompleteClosedForm(t *testing.T) {
	// Lazy walk on K_n: non-top eigenvalues all 1/2 - 1/(2(n-1)).
	for _, n := range []int{5, 10, 20} {
		want := 0.5 - 0.5/float64(n-1)
		got := SecondEigenvalue(graph.Complete(n))
		if !almostEqual(got, want, 1e-6) {
			t.Fatalf("K_%d lambda2 = %v want %v", n, got, want)
		}
	}
}

func TestSecondEigenvalueInUnitInterval(t *testing.T) {
	r := rng.New(1)
	if err := quick.Check(func(seed uint64) bool {
		g, err := graph.GNPConnected(15, 0.35, r.Split(seed))
		if err != nil {
			return true // skip rare disconnected draws
		}
		l := SecondEigenvalue(g)
		return l > 0 && l < 1
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStationaryDistribution(t *testing.T) {
	g := graph.Star(6)
	pi := Stationary(g)
	sum := 0.0
	for _, p := range pi {
		sum += p
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Fatalf("stationary mass %v", sum)
	}
	// Hub has degree 5 of total 2m=10.
	if !almostEqual(pi[0], 0.5, 1e-12) {
		t.Fatalf("hub mass %v want 0.5", pi[0])
	}
	// Stationarity: pi P = pi.
	p := LazyWalkMatrix(g)
	next := p.MulVecLeft(pi)
	for i := range pi {
		if !almostEqual(next[i], pi[i], 1e-12) {
			t.Fatalf("pi not stationary at %d", i)
		}
	}
}

func TestMixingTimeCompleteIsSmall(t *testing.T) {
	tm, capped := MixingTimeExact(graph.Complete(8), 1000)
	if capped {
		t.Fatal("K8 search unexpectedly capped")
	}
	if tm < 1 || tm > 16 {
		t.Fatalf("K8 mixing time %d out of expected range", tm)
	}
}

func TestMixingTimeMonotoneInCycleSize(t *testing.T) {
	t8, _ := MixingTimeExact(graph.Cycle(8), 100000)
	t16, _ := MixingTimeExact(graph.Cycle(16), 100000)
	t32, _ := MixingTimeExact(graph.Cycle(32), 100000)
	if !(t8 < t16 && t16 < t32) {
		t.Fatalf("cycle mixing times not increasing: %d %d %d", t8, t16, t32)
	}
	// Quadratic growth: t32/t16 should be near 4 (within a factor).
	ratio := float64(t32) / float64(t16)
	if ratio < 2.5 || ratio > 6 {
		t.Fatalf("cycle mixing growth ratio %v not ~4", ratio)
	}
}

func TestMixingTimeExactMatchesDefinition(t *testing.T) {
	g := graph.Cycle(8)
	tm, _ := MixingTimeExact(g, 10000)
	pi := Stationary(g)
	p := LazyWalkMatrix(g)
	// P^(tm) mixes, P^(tm-1) does not.
	pow := Identity(g.N())
	for i := 0; i < tm-1; i++ {
		pow = pow.Mul(p)
	}
	if withinMixingTolerance(pow, pi) {
		t.Fatal("P^(tmix-1) already mixed")
	}
	pow = pow.Mul(p)
	if !withinMixingTolerance(pow, pi) {
		t.Fatal("P^tmix not mixed")
	}
}

func TestMixingTimeExactHonorsCap(t *testing.T) {
	got, capped := MixingTimeExact(graph.Cycle(64), 10)
	if got != 10 || !capped {
		t.Fatalf("cap ignored: got %d capped=%v", got, capped)
	}
}

func TestMixingTimeSpectralUpperBoundsExact(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Cycle(16), graph.Complete(12), graph.Hypercube(4)} {
		exact, _ := MixingTimeExact(g, 1000000)
		spec := MixingTimeSpectral(g)
		if spec < exact {
			t.Fatalf("spectral estimate %d below exact %d", spec, exact)
		}
		if spec > exact*200 {
			t.Fatalf("spectral estimate %d too loose vs exact %d", spec, exact)
		}
	}
}

func TestConductanceCycleClosedForm(t *testing.T) {
	// Φ(C_n) = 2 / (2·floor(n/2)·... volume of half = n for even n): 2/n.
	g := graph.Cycle(10)
	want := 2.0 / 10.0
	if got := ConductanceExact(g); !almostEqual(got, want, 1e-12) {
		t.Fatalf("cycle conductance %v want %v", got, want)
	}
}

func TestConductanceCompleteClosedForm(t *testing.T) {
	// K_n even n: cut n/2: edges (n/2)² over vol (n/2)(n-1).
	n := 8
	g := graph.Complete(n)
	want := float64(n*n/4) / float64(n/2*(n-1))
	if got := ConductanceExact(g); !almostEqual(got, want, 1e-12) {
		t.Fatalf("K%d conductance %v want %v", n, got, want)
	}
}

func TestIsoperimetricClosedForms(t *testing.T) {
	// i(C_n) for even n: 2/(n/2) = 4/n.
	if got := IsoperimetricExact(graph.Cycle(12)); !almostEqual(got, 4.0/12.0, 1e-12) {
		t.Fatalf("cycle isoperimetric %v want %v", got, 4.0/12.0)
	}
	// i(K_n) = ceil(n/2): cut n/2 gives (n/2)²/(n/2) = n/2.
	if got := IsoperimetricExact(graph.Complete(8)); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("K8 isoperimetric %v want 4", got)
	}
	// i(Star_n): singleton leaf cut = 1.
	if got := IsoperimetricExact(graph.Star(8)); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("star isoperimetric %v want 1", got)
	}
}

func TestIsoperimetricLowerBound(t *testing.T) {
	// i(G) >= 2/n for connected graphs (paper's Corollary 1 argument).
	r := rng.New(2)
	for seed := uint64(0); seed < 10; seed++ {
		g, err := graph.GNPConnected(12, 0.3, r.Split(seed))
		if err != nil {
			continue
		}
		if got := IsoperimetricExact(g); got < 2.0/float64(g.N())-1e-12 {
			t.Fatalf("isoperimetric %v below 2/n", got)
		}
	}
}

func TestSweepCutUpperBoundsExact(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Cycle(14), graph.Complete(10), graph.Barbell(5, 3), graph.Star(10),
	} {
		exactPhi := ConductanceExact(g)
		exactIso := IsoperimetricExact(g)
		sweepPhi, sweepIso := SweepCut(g)
		if sweepPhi < exactPhi-1e-9 {
			t.Fatalf("sweep conductance %v below exact %v", sweepPhi, exactPhi)
		}
		if sweepIso < exactIso-1e-9 {
			t.Fatalf("sweep isoperimetric %v below exact %v", sweepIso, exactIso)
		}
	}
}

func TestSweepCutTightOnSymmetricFamilies(t *testing.T) {
	// On cycles and barbells the Fiedler sweep finds the optimal cut.
	g := graph.Cycle(16)
	sweepPhi, _ := SweepCut(g)
	if !almostEqual(sweepPhi, ConductanceExact(g), 1e-9) {
		t.Fatalf("sweep not tight on cycle: %v vs %v", sweepPhi, ConductanceExact(g))
	}
	bb := graph.Barbell(6, 4)
	if bb.N() > ExactCutLimit {
		t.Fatalf("test graph too large for exact check")
	}
	sweepPhiB, _ := SweepCut(bb)
	exactB := ConductanceExact(bb)
	if sweepPhiB > exactB*1.5+1e-9 {
		t.Fatalf("sweep loose on barbell: %v vs %v", sweepPhiB, exactB)
	}
}

func TestCheegerBoundsHold(t *testing.T) {
	// gap/2 <= φ(P) <= sqrt(2·gap) for the lazy chain, φ(P) = Φ/2.
	for _, g := range []*graph.Graph{graph.Cycle(12), graph.Complete(8), graph.Hypercube(3)} {
		lo, hi := CheegerBounds(g)
		phi := ChainConductance(g)
		if phi < lo-1e-9 || phi > hi+1e-9 {
			t.Fatalf("chain conductance %v outside Cheeger [%v, %v]", phi, lo, hi)
		}
	}
}

func TestEnumerateCutsPanicsBeyondLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ConductanceExact(graph.Cycle(ExactCutLimit + 2))
}

func TestCutEdges(t *testing.T) {
	g := graph.Cycle(6)
	inS := []bool{true, true, true, false, false, false}
	if got := CutEdges(g, inS); got != 2 {
		t.Fatalf("cycle half cut %d want 2", got)
	}
}

func TestProfileGraph(t *testing.T) {
	g := graph.Cycle(12)
	p, err := ProfileGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 12 || p.M != 12 || p.Diameter != 6 {
		t.Fatalf("profile basics wrong: %+v", p)
	}
	if !p.ExactMixing || !p.ExactCuts {
		t.Fatal("small graph should get exact quantities")
	}
	if !almostEqual(p.Conductance, 2.0/12, 1e-12) {
		t.Fatalf("profile conductance %v", p.Conductance)
	}
	if p.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestProfileRejectsDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if _, err := ProfileGraph(b.Graph()); err == nil {
		t.Fatal("expected error for disconnected graph")
	}
}

func TestSpectralGapOrdersFamilies(t *testing.T) {
	// Expander-like families mix faster than cycles of the same size.
	cyc := SpectralGap(graph.Cycle(16))
	hyp := SpectralGap(graph.Hypercube(4))
	kom := SpectralGap(graph.Complete(16))
	if !(cyc < hyp && hyp < kom) {
		t.Fatalf("gap ordering violated: cycle=%v hypercube=%v complete=%v", cyc, hyp, kom)
	}
}

func BenchmarkSecondEigenvalue(b *testing.B) {
	g := graph.Cycle(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SecondEigenvalue(g)
	}
}

func BenchmarkMixingTimeExact(b *testing.B) {
	g := graph.Cycle(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = MixingTimeExact(g, 1<<20)
	}
}

func BenchmarkConductanceExact(b *testing.B) {
	g := graph.Cycle(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ConductanceExact(g)
	}
}

func TestSweepCutCheegerConsistency(t *testing.T) {
	// Property: the sweep-cut Φ upper bound must be consistent with the
	// Cheeger lower bound gap/2 <= φ(P) = Φ/2, i.e. sweepΦ >= gap.
	r := rng.New(31)
	if err := quick.Check(func(seed uint64) bool {
		g, err := graph.GNPConnected(14, 0.35, r.Split(seed))
		if err != nil {
			return true
		}
		sweepPhi, _ := SweepCut(g)
		return sweepPhi >= SpectralGap(g)-1e-9
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMixingTimeInvariantUnderPortPermutation(t *testing.T) {
	// Mixing time is a graph property: relabeling ports must not change it.
	r := rng.New(12)
	g, err := graph.RandomRegular(24, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	perm := g.PermutePorts(r.Split(5))
	if a, b := MixingTime(g), MixingTime(perm); a != b {
		t.Fatalf("mixing time changed under port permutation: %d vs %d", a, b)
	}
}
