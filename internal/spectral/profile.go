package spectral

import (
	"fmt"
	"strings"

	"anonlead/internal/graph"
)

// Profile aggregates the structural quantities the protocols are
// parameterized by. The harness computes one Profile per (family, n) cell
// and feeds it to protocol configuration.
type Profile struct {
	N           int     // nodes
	M           int     // edges
	Diameter    int     // exact diameter
	MinDegree   int     // minimum degree
	MaxDegree   int     // maximum degree
	Lambda2     float64 // second eigenvalue of the lazy walk
	SpectralGap float64 // 1 - Lambda2
	MixingTime  int     // exact for small n, spectral estimate otherwise
	ExactMixing bool    // whether MixingTime is exact
	Conductance float64 // Φ(G): exact for n <= ExactCutLimit, else sweep bound
	Isoperim    float64 // i(G): same regime split as Conductance
	ExactCuts   bool    // whether Conductance/Isoperim are exact
}

// ProfileGraph computes a Profile for g. g must be connected; profiling a
// disconnected graph returns an error because every quantity is degenerate
// there (tmix = ∞, Φ = 0).
func ProfileGraph(g *graph.Graph) (*Profile, error) {
	if !g.IsConnected() {
		return nil, fmt.Errorf("spectral: profile requires a connected graph (components=%d)", g.ComponentCount())
	}
	p := &Profile{
		N:         g.N(),
		M:         g.M(),
		Diameter:  g.Diameter(),
		MinDegree: g.MinDegree(),
		MaxDegree: g.MaxDegree(),
	}
	p.Lambda2 = SecondEigenvalue(g)
	p.SpectralGap = 1 - p.Lambda2
	p.ExactMixing = g.N() <= MixingTimeExactLimit
	p.MixingTime = MixingTime(g)
	p.ExactCuts = g.N() <= ExactCutLimit
	p.Conductance = Conductance(g)
	p.Isoperim = Isoperimetric(g)
	return p, nil
}

// String renders the profile as a single aligned block for CLI output.
func (p *Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d m=%d diameter=%d degree=[%d,%d]\n", p.N, p.M, p.Diameter, p.MinDegree, p.MaxDegree)
	fmt.Fprintf(&b, "lambda2=%.6f gap=%.6f\n", p.Lambda2, p.SpectralGap)
	exact := map[bool]string{true: "exact", false: "estimate"}
	fmt.Fprintf(&b, "tmix=%d (%s)\n", p.MixingTime, exact[p.ExactMixing])
	fmt.Fprintf(&b, "conductance=%.6f isoperimetric=%.6f (%s)", p.Conductance, p.Isoperim, exact[p.ExactCuts])
	return b.String()
}
