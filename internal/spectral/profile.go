package spectral

import (
	"fmt"
	"strings"

	"anonlead/internal/graph"
)

// Profile aggregates the structural quantities the protocols are
// parameterized by. The harness computes one Profile per (family, n) cell
// and feeds it to protocol configuration.
type Profile struct {
	N           int     // nodes
	M           int     // edges
	Diameter    int     // exact diameter (estimate regime: double-sweep lower bound)
	MinDegree   int     // minimum degree
	MaxDegree   int     // maximum degree
	Lambda2     float64 // second eigenvalue of the lazy walk
	SpectralGap float64 // 1 - Lambda2
	MixingTime  int     // exact for small n, sampled/spectral estimate otherwise
	ExactMixing bool    // whether MixingTime is exact
	// MixingCapped reports that the mixing-time search hit its step
	// budget: the exact regime returns the cap as a lower bound, the
	// estimate regime extrapolates the measured TV decay past its walked
	// horizon. Either way the value is "at least this much", not a
	// measured crossing.
	MixingCapped bool
	Conductance  float64 // Φ(G): exact for n <= ExactCutLimit, else sweep bound
	Isoperim     float64 // i(G): same regime split as Conductance
	ExactCuts    bool    // whether Conductance/Isoperim are exact
	// Estimated reports that the streaming estimate regime produced this
	// profile (ModeEstimate, or ModeAuto above EstimateThreshold):
	// diameter is a lower bound, tmix comes from sampled walks, cuts from
	// a sweep cut over a budgeted eigenvector.
	Estimated bool
}

// ProfileGraph computes the exact-regime Profile for g — the legacy
// reference path, byte-identical to every profile computed before modes
// existed. g must be connected; profiling a disconnected graph returns an
// error because every quantity is degenerate there (tmix = ∞, Φ = 0).
func ProfileGraph(g *graph.Graph) (*Profile, error) {
	return ProfileGraphMode(g, ModeExact, 0)
}

// ProfileGraphMode computes a Profile for g under the given regime. seed
// feeds the estimate regime's deterministic walk-start sampling (the
// exact regime ignores it); same (graph, resolved mode, seed) — same
// profile, bit for bit. The estimate regime never materializes an n×n
// matrix: every pass is O(m) per step.
func ProfileGraphMode(g *graph.Graph, mode Mode, seed uint64) (*Profile, error) {
	if !g.IsConnected() {
		return nil, fmt.Errorf("spectral: profile requires a connected graph (components=%d)", g.ComponentCount())
	}
	if mode.Resolve(g.N()) == ModeEstimate {
		return estimateProfile(g, seed)
	}
	return exactProfile(g)
}

// exactProfile is the legacy exact regime (dense tmix powering at small
// n, all-pairs BFS diameter, enumerated cuts at tiny n).
func exactProfile(g *graph.Graph) (*Profile, error) {
	p := &Profile{
		N:         g.N(),
		M:         g.M(),
		Diameter:  g.Diameter(),
		MinDegree: g.MinDegree(),
		MaxDegree: g.MaxDegree(),
	}
	p.Lambda2 = SecondEigenvalue(g)
	p.SpectralGap = 1 - p.Lambda2
	p.ExactMixing = g.N() <= MixingTimeExactLimit
	p.MixingTime, p.MixingCapped = mixingTimeWithCap(g)
	p.ExactCuts = g.N() <= ExactCutLimit
	p.Conductance = Conductance(g)
	p.Isoperim = Isoperimetric(g)
	return p, nil
}

// Mode returns the resolved regime that produced the profile.
func (p *Profile) Mode() Mode {
	if p.Estimated {
		return ModeEstimate
	}
	return ModeExact
}

// String renders the profile as a single aligned block for CLI output.
func (p *Profile) String() string {
	var b strings.Builder
	diam := fmt.Sprintf("diameter=%d", p.Diameter)
	if p.Estimated {
		diam = fmt.Sprintf("diameter>=%d", p.Diameter)
	}
	fmt.Fprintf(&b, "n=%d m=%d %s degree=[%d,%d]\n", p.N, p.M, diam, p.MinDegree, p.MaxDegree)
	fmt.Fprintf(&b, "lambda2=%.6f gap=%.6f\n", p.Lambda2, p.SpectralGap)
	exact := map[bool]string{true: "exact", false: "estimate"}
	capped := ""
	if p.MixingCapped {
		capped = ", capped"
	}
	fmt.Fprintf(&b, "tmix=%d (%s%s)\n", p.MixingTime, exact[p.ExactMixing], capped)
	fmt.Fprintf(&b, "conductance=%.6f isoperimetric=%.6f (%s)", p.Conductance, p.Isoperim, exact[p.ExactCuts])
	return b.String()
}
