// Package spectral computes the graph quantities the paper's protocols and
// analysis are parameterized by: the lazy random-walk transition matrix,
// its second eigenvalue, the mixing time tmix (exact by matrix powering at
// small sizes, spectral estimate otherwise), the graph conductance Φ, and
// the isoperimetric number i(G) (exact by cut enumeration at small sizes,
// sweep-cut upper bounds plus Cheeger-style lower bounds otherwise).
//
// Definitions follow Section 2 of the paper:
//
//	tmix(G) = min t such that for every start distribution π0,
//	          ||π0·Pᵗ − π*||∞ ≤ 1/(2n),
//	Φ(G)    = min_S |∂S| / min(Vol(S), Vol(S̄)),
//	i(G)    = min_{|S| ≤ n/2} |∂S| / |S|,
//
// where P is the lazy walk (stay with probability 1/2, otherwise uniform
// neighbor), matching the walk used by Algorithm 5.
//
// See docs/ARCHITECTURE.md for where this sits in the paper-to-code map.
package spectral

import (
	"fmt"

	"anonlead/internal/graph"
)

// Dense is a dense square matrix in row-major order. It is the workhorse
// for exact mixing-time computation at small n; protocol code never
// allocates one.
type Dense struct {
	n    int
	data []float64
}

// NewDense returns the zero n x n matrix.
func NewDense(n int) *Dense {
	return &Dense{n: n, data: make([]float64, n*n)}
}

// N returns the dimension.
func (m *Dense) N() int { return m.n }

// At returns entry (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.n+j] }

// Set assigns entry (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.n+j] = v }

// Row returns a live view of row i (internal use: callers do not mutate).
func (m *Dense) Row(i int) []float64 { return m.data[i*m.n : (i+1)*m.n] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.n)
	copy(out.data, m.data)
	return out
}

// Mul returns m · other. It panics on dimension mismatch (programming
// error).
func (m *Dense) Mul(other *Dense) *Dense {
	if m.n != other.n {
		panic(fmt.Sprintf("spectral: dimension mismatch %d vs %d", m.n, other.n))
	}
	n := m.n
	out := NewDense(n)
	for i := 0; i < n; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k := 0; k < n; k++ {
			a := mi[k]
			if a == 0 {
				continue
			}
			ok := other.Row(k)
			for j := 0; j < n; j++ {
				oi[j] += a * ok[j]
			}
		}
	}
	return out
}

// MulVecLeft returns the row vector x · m (distribution evolution).
func (m *Dense) MulVecLeft(x []float64) []float64 {
	if len(x) != m.n {
		panic(fmt.Sprintf("spectral: vector length %d vs matrix %d", len(x), m.n))
	}
	out := make([]float64, m.n)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			out[j] += xi * v
		}
	}
	return out
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// LazyWalkMatrix returns the transition matrix of the paper's lazy random
// walk on g: stay put with probability 1/2, otherwise move to a uniformly
// random neighbor.
func LazyWalkMatrix(g *graph.Graph) *Dense {
	n := g.N()
	m := NewDense(n)
	for v := 0; v < n; v++ {
		deg := g.Degree(v)
		m.Set(v, v, 0.5)
		if deg == 0 {
			m.Set(v, v, 1)
			continue
		}
		share := 0.5 / float64(deg)
		for p := 0; p < deg; p++ {
			w := g.Neighbor(v, p)
			m.Set(v, w, m.At(v, w)+share)
		}
	}
	return m
}

// RowStochasticError returns the maximum over rows of |rowSum - 1|, used by
// tests to validate transition matrices.
func (m *Dense) RowStochasticError() float64 {
	worst := 0.0
	for i := 0; i < m.n; i++ {
		sum := 0.0
		for _, v := range m.Row(i) {
			sum += v
		}
		if d := abs(sum - 1); d > worst {
			worst = d
		}
	}
	return worst
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
