package spectral

import (
	"math"

	"anonlead/internal/graph"
)

// eigenIterations bounds the power-iteration loop. The iterate converges
// geometrically at rate λ₃/λ₂; this budget resolves the spectral gap well
// below harness tolerances even on near-degenerate spectra (long cycles).
const eigenIterations = 10000

// eigenTol is the relative change threshold at which power iteration stops.
const eigenTol = 1e-12

// estimateEigenTol is the looser stopping threshold of the estimate
// regime: λ₂ there only parameterizes the tmix fallback and orders the
// sweep cut, neither of which resolves past ~1e-6.
const estimateEigenTol = 1e-10

// estimateEigenBudget bounds the estimate regime's power iteration by
// flops rather than a fixed count: roughly 4·10⁸ edge visits total, so a
// sparse large graph gets fewer iterations and a small one keeps the full
// exact-regime budget.
func estimateEigenBudget(g *graph.Graph) int {
	work := g.M() + g.N()
	if work < 1 {
		work = 1
	}
	iters := int(4e8 / float64(work))
	if iters > eigenIterations {
		return eigenIterations
	}
	if iters < 800 {
		return 800
	}
	return iters
}

// SecondEigenvalue returns λ₂ of the lazy random-walk matrix of g, the
// quantity controlling mixing (relaxation) time. Because the walk is lazy,
// the spectrum is non-negative, so λ₂ is also the second-largest eigenvalue
// magnitude.
func SecondEigenvalue(g *graph.Graph) float64 {
	lambda, _ := secondEigenpair(g)
	return lambda
}

// SecondEigenvector returns (a numerical approximation of) the eigenvector
// for λ₂ of the lazy walk, mapped back from the symmetrized space to the
// walk's right-eigenvector coordinates. Sweep cuts order vertices by it.
func SecondEigenvector(g *graph.Graph) []float64 {
	_, vec := secondEigenpair(g)
	return walkCoords(g, vec)
}

// walkCoords maps a symmetric-space vector y to the walk's right
// eigenvector x = D^{-1/2} y so that orderings reflect the diffusion
// geometry of the walk.
func walkCoords(g *graph.Graph, vec []float64) []float64 {
	out := make([]float64, len(vec))
	for v := range vec {
		d := g.Degree(v)
		if d == 0 {
			out[v] = vec[v]
			continue
		}
		out[v] = vec[v] / math.Sqrt(float64(d))
	}
	return out
}

// SpectralGap returns 1 − λ₂ of the lazy walk on g.
func SpectralGap(g *graph.Graph) float64 { return 1 - SecondEigenvalue(g) }

// secondEigenpair power-iterates the symmetric matrix N = D^{1/2}·P·D^{-1/2}
// (same spectrum as the lazy walk P, reversible with π_v ∝ deg v) while
// deflating the known top eigenvector √deg. Matrix-free, O(m) per
// iteration.
func secondEigenpair(g *graph.Graph) (float64, []float64) {
	return secondEigenpairBudget(g, eigenIterations, eigenTol)
}

// secondEigenpairBudget is secondEigenpair with an explicit iteration
// budget and stopping tolerance (the estimate regime trades accuracy for
// a flop bound; the exact regime keeps the full budget).
func secondEigenpairBudget(g *graph.Graph, maxIter int, tol float64) (float64, []float64) {
	n := g.N()
	if n < 2 {
		return 0, make([]float64, n)
	}
	top := make([]float64, n)
	for v := 0; v < n; v++ {
		top[v] = math.Sqrt(float64(g.Degree(v)))
	}
	normalize(top)

	// Deterministic, non-degenerate start vector orthogonal to top.
	x := make([]float64, n)
	for v := range x {
		x[v] = math.Sin(float64(v+1)) + 1e-3*float64(v%7)
	}
	orthogonalize(x, top)
	normalize(x)

	y := make([]float64, n)
	lambda := 0.0
	for iter := 0; iter < maxIter; iter++ {
		applyLazySym(g, x, y)
		orthogonalize(y, top)
		newLambda := math.Sqrt(dot(y, y))
		if newLambda == 0 {
			return 0, x // x was numerically inside the top eigenspace
		}
		for v := range y {
			y[v] /= newLambda
		}
		x, y = y, x
		if iter > 8 && math.Abs(newLambda-lambda) <= tol*newLambda {
			return newLambda, x
		}
		lambda = newLambda
	}
	return lambda, x
}

// applyLazySym computes y = N·x for the symmetrized lazy-walk matrix
// N[v][w] = 1/(2·sqrt(deg_v·deg_w)) on edges and N[v][v] = 1/2.
func applyLazySym(g *graph.Graph, x, y []float64) {
	n := g.N()
	for v := 0; v < n; v++ {
		deg := g.Degree(v)
		if deg == 0 {
			y[v] = x[v]
			continue
		}
		acc := 0.0
		for p := 0; p < deg; p++ {
			w := g.Neighbor(v, p)
			acc += x[w] / math.Sqrt(float64(g.Degree(w)))
		}
		y[v] = 0.5*x[v] + acc/(2*math.Sqrt(float64(deg)))
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func normalize(x []float64) {
	n := math.Sqrt(dot(x, x))
	if n == 0 {
		return
	}
	for i := range x {
		x[i] /= n
	}
}

// orthogonalize removes the component of x along the unit vector u.
func orthogonalize(x, u []float64) {
	c := dot(x, u)
	for i := range x {
		x[i] -= c * u[i]
	}
}
