package spectral

import (
	"math"
	"reflect"
	"testing"

	"anonlead/internal/graph"
	"anonlead/internal/rng"
)

// TestMixingTimeSampledMatchesExactOnTransitive pins the sampled-walk
// estimator to the exact definition where the two are provably equal:
// on vertex-transitive graphs every point-mass start has the same mixing
// time, so any sampled start set reproduces the exact row maximum.
func TestMixingTimeSampledMatchesExactOnTransitive(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle8", graph.Cycle(8)},
		{"cycle16", graph.Cycle(16)},
		{"cycle32", graph.Cycle(32)},
		{"complete8", graph.Complete(8)},
		{"complete16", graph.Complete(16)},
		{"complete32", graph.Complete(32)},
		{"hypercube16", graph.Hypercube(4)},
	}
	for _, c := range cases {
		exact, exactCapped := MixingTimeExact(c.g, 1_000_000)
		if exactCapped {
			t.Fatalf("%s: exact reference capped", c.name)
		}
		got, capped := MixingTimeSampled(c.g, 7)
		if capped {
			t.Fatalf("%s: sampled estimator capped at n=%d (budget too small)", c.name, c.g.N())
		}
		if got != exact {
			t.Fatalf("%s: sampled tmix %d != exact %d", c.name, got, exact)
		}
	}
}

// TestEstimateLambda2ClosedForm checks the budgeted power iteration
// against the closed-form lazy-walk eigenvalues: λ₂ = (1+cos(2π/n))/2 on
// the cycle and (1 + (-1/(n-1)))·…  — for K_n the non-trivial eigenvalue
// of D⁻¹A is -1/(n-1), so the lazy λ₂ = (1 - 1/(n-1))/2.
func TestEstimateLambda2ClosedForm(t *testing.T) {
	for _, n := range []int{16, 64} {
		g := graph.Cycle(n)
		p, err := ProfileGraphMode(g, ModeEstimate, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := (1 + math.Cos(2*math.Pi/float64(n))) / 2
		if math.Abs(p.Lambda2-want) > 1e-6 {
			t.Fatalf("cycle%d: lambda2 %v want %v", n, p.Lambda2, want)
		}
	}
	g := graph.Complete(32)
	p, err := ProfileGraphMode(g, ModeEstimate, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := (1 - 1/float64(31)) / 2
	if math.Abs(p.Lambda2-want) > 1e-6 {
		t.Fatalf("K32: lambda2 %v want %v", p.Lambda2, want)
	}
}

// TestEstimateExtrapolationTracksExact exercises the capped/extrapolated
// path: a cycle long enough that the walk budget runs out must still land
// within a small factor of the exact mixing time, with the capped flag
// raised.
func TestEstimateExtrapolationTracksExact(t *testing.T) {
	g := graph.Cycle(96)
	exact, _ := MixingTimeExact(g, 1_000_000)
	got, capped := MixingTimeSampled(g, 3)
	if !capped {
		t.Skip("budget covered the cycle; extrapolation not exercised")
	}
	lo, hi := exact/2, exact*2
	if got < lo || got > hi {
		t.Fatalf("extrapolated tmix %d outside [%d,%d] around exact %d", got, lo, hi, exact)
	}
}

// TestEstimateProfileDeterministic pins byte-identical estimated profiles
// for identical (graph, seed) inputs — the property the profile cache and
// the cross-scheduler determinism tests build on.
func TestEstimateProfileDeterministic(t *testing.T) {
	build := func() *graph.Graph {
		g, err := graph.ByName("expander", 600, rng.New(5).SplitString("graph:expander"))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, err := ProfileGraphMode(build(), ModeEstimate, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ProfileGraphMode(build(), ModeEstimate, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("estimated profiles diverged:\n%+v\n%+v", a, b)
	}
	if !a.Estimated || a.ExactMixing || a.ExactCuts {
		t.Fatalf("estimate regime flags wrong: %+v", a)
	}
}

// TestProfileGraphModeAutoResolution pins the auto split: exact regime
// (byte-identical to ProfileGraph) at n <= EstimateThreshold, estimate
// regime above.
func TestProfileGraphModeAutoResolution(t *testing.T) {
	small, err := graph.ByName("expander", EstimateThreshold, rng.New(2).SplitString("graph:expander"))
	if err != nil {
		t.Fatal(err)
	}
	auto, err := ProfileGraphMode(small, ModeAuto, 9)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ProfileGraph(small)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(auto, exact) {
		t.Fatalf("auto at threshold diverged from exact:\n%+v\n%+v", auto, exact)
	}

	big, err := graph.ByName("expander", EstimateThreshold+44, rng.New(2).SplitString("graph:expander"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := ProfileGraphMode(big, ModeAuto, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Estimated {
		t.Fatalf("auto above threshold stayed exact: %+v", p)
	}
}

// TestParseModeRoundTrips pins the canonical mode strings.
func TestParseModeRoundTrips(t *testing.T) {
	for _, m := range []Mode{ModeAuto, ModeExact, ModeEstimate} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("mode %v: parse(%q) = %v, %v", m, m.String(), got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("bogus mode accepted")
	}
	if m, err := ParseMode(""); err != nil || m != ModeAuto {
		t.Fatalf("empty mode: %v, %v", m, err)
	}
}

// BenchmarkEstimateProfileExpander measures the streaming profile at the
// scaling-sweep anchor size.
func BenchmarkEstimateProfileExpander(b *testing.B) {
	g, err := graph.ByName("expander", 100_000, rng.New(1).SplitString("graph:expander"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ProfileGraphMode(g, ModeEstimate, 1); err != nil {
			b.Fatal(err)
		}
	}
}
