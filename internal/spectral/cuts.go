package spectral

import (
	"math"
	"sort"

	"anonlead/internal/graph"
)

// ExactCutLimit is the largest n for which conductance and isoperimetric
// number are computed by exhaustive cut enumeration (Gray-code walk over
// all 2^n subsets, O(2^n) with O(1) amortized update per step).
const ExactCutLimit = 20

// CutEdges returns |∂S|: the number of edges with exactly one endpoint in S
// (S given as a membership mask).
func CutEdges(g *graph.Graph, inS []bool) int {
	cut := 0
	for _, e := range g.Edges() {
		if inS[e[0]] != inS[e[1]] {
			cut++
		}
	}
	return cut
}

// ConductanceExact computes Φ(G) = min_S |∂S| / min(Vol(S), Vol(S̄)) by
// exhaustive enumeration. Only valid for connected g with n <= ExactCutLimit
// (panics otherwise: the caller chose the wrong tool).
func ConductanceExact(g *graph.Graph) float64 {
	phi, _ := enumerateCuts(g)
	return phi
}

// IsoperimetricExact computes i(G) = min_{|S| <= n/2} |∂S| / |S| by
// exhaustive enumeration. Same size restriction as ConductanceExact.
func IsoperimetricExact(g *graph.Graph) float64 {
	_, iso := enumerateCuts(g)
	return iso
}

// enumerateCuts walks all nonempty proper subsets in Gray-code order,
// maintaining |∂S|, Vol(S) and |S| incrementally, and returns the exact
// conductance and isoperimetric number.
func enumerateCuts(g *graph.Graph) (phi, iso float64) {
	n := g.N()
	if n > ExactCutLimit {
		panic("spectral: enumerateCuts beyond ExactCutLimit; use sweep estimates")
	}
	if n < 2 {
		return 0, 0
	}
	totalVol := 2 * g.M()
	inS := make([]bool, n)
	boundary, vol, size := 0, 0, 0
	phi = math.Inf(1)
	iso = math.Inf(1)

	total := uint64(1) << uint(n)
	prevGray := uint64(0)
	for i := uint64(1); i < total; i++ {
		gray := i ^ (i >> 1)
		flip := gray ^ prevGray
		prevGray = gray
		v := trailingZeros(flip)

		deg := g.Degree(v)
		inSNow := !inS[v]
		// Count v's neighbors currently inside S.
		nbIn := 0
		for p := 0; p < deg; p++ {
			if inS[g.Neighbor(v, p)] {
				nbIn++
			}
		}
		if inSNow {
			// v enters S: edges to in-S neighbors become internal, edges
			// to outside become boundary.
			boundary += deg - 2*nbIn
			vol += deg
			size++
		} else {
			boundary -= deg - 2*nbIn
			vol -= deg
			size--
		}
		inS[v] = inSNow

		if size == 0 || size == n {
			continue
		}
		minVol := vol
		if totalVol-vol < minVol {
			minVol = totalVol - vol
		}
		if minVol > 0 {
			if c := float64(boundary) / float64(minVol); c < phi {
				phi = c
			}
		}
		if size <= n/2 {
			if c := float64(boundary) / float64(size); c < iso {
				iso = c
			}
		} else if n-size <= n/2 {
			if c := float64(boundary) / float64(n-size); c < iso {
				iso = c
			}
		}
	}
	return phi, iso
}

func trailingZeros(x uint64) int {
	tz := 0
	for x&1 == 0 {
		x >>= 1
		tz++
	}
	return tz
}

// SweepCut orders vertices by the second eigenvector and scans prefix cuts,
// returning upper bounds on Φ(G) and i(G). By Cheeger-type results the
// conductance bound is within a quadratic factor of optimal; on all the
// symmetric families in the experiment suite it is exact or near-exact.
func SweepCut(g *graph.Graph) (phi, iso float64) {
	if g.N() < 2 {
		return 0, 0
	}
	return sweepCutFrom(g, SecondEigenvector(g))
}

// sweepCutFrom is SweepCut with the ordering vector supplied by the
// caller, so a profile that already power-iterated can reuse the
// eigenvector instead of recomputing it.
func sweepCutFrom(g *graph.Graph, vec []float64) (phi, iso float64) {
	n := g.N()
	if n < 2 {
		return 0, 0
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return vec[order[a]] < vec[order[b]] })

	totalVol := 2 * g.M()
	inS := make([]bool, n)
	boundary, vol := 0, 0
	phi = math.Inf(1)
	iso = math.Inf(1)
	for idx, v := range order[:n-1] {
		deg := g.Degree(v)
		nbIn := 0
		for p := 0; p < deg; p++ {
			if inS[g.Neighbor(v, p)] {
				nbIn++
			}
		}
		boundary += deg - 2*nbIn
		vol += deg
		inS[v] = true
		size := idx + 1

		minVol := vol
		if totalVol-vol < minVol {
			minVol = totalVol - vol
		}
		if minVol > 0 {
			if c := float64(boundary) / float64(minVol); c < phi {
				phi = c
			}
		}
		minSize := size
		if n-size < minSize {
			minSize = n - size
		}
		if c := float64(boundary) / float64(minSize); c < iso {
			iso = c
		}
	}
	return phi, iso
}

// Conductance returns Φ(G): exact for n <= ExactCutLimit, sweep-cut upper
// bound otherwise.
func Conductance(g *graph.Graph) float64 {
	if g.N() <= ExactCutLimit {
		return ConductanceExact(g)
	}
	phi, _ := SweepCut(g)
	return phi
}

// Isoperimetric returns i(G): exact for n <= ExactCutLimit, sweep-cut upper
// bound otherwise.
func Isoperimetric(g *graph.Graph) float64 {
	if g.N() <= ExactCutLimit {
		return IsoperimetricExact(g)
	}
	_, iso := SweepCut(g)
	return iso
}

// CheegerBounds returns the interval [gap/2, sqrt(2·gap)] that must contain
// the chain conductance φ(P) of the lazy walk, from the standard Cheeger
// inequalities φ²/2 <= gap <= 2φ. Tests cross-check sweep estimates
// against it.
func CheegerBounds(g *graph.Graph) (lo, hi float64) {
	gap := SpectralGap(g)
	return gap / 2, math.Sqrt(2 * gap)
}

// ChainConductance returns the conductance φ(P) of the lazy-walk Markov
// chain per the paper's Section 2 definition (edge measure over stationary
// measure). For the lazy walk, Q(S, S̄) = |∂S|/(4m) and π(S) = Vol(S)/(2m),
// so φ(P) = Φ(G)/2.
func ChainConductance(g *graph.Graph) float64 {
	return Conductance(g) / 2
}
