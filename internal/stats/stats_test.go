package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("stddev %v", s.StdDev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.StdDev != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.StdDev != 0 || s.Median != 7 {
		t.Fatalf("single summary %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 %v", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Fatalf("q1 %v", q)
	}
	if q := Quantile(xs, 0.5); math.Abs(q-2.5) > 1e-12 {
		t.Fatalf("median %v", q)
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Fatal("Quantile sorted caller slice")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
}

func TestQuantileMonotone(t *testing.T) {
	if err := quick.Check(func(raw []float64, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = float64(i)
			}
		}
		a := float64(aRaw) / 255
		b := float64(bRaw) / 255
		if a > b {
			a, b = b, a
		}
		return Quantile(raw, a) <= Quantile(raw, b)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWilson(t *testing.T) {
	lo, hi := Wilson(50, 100)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("interval [%v, %v] should contain 0.5", lo, hi)
	}
	if lo < 0.39 || hi > 0.61 {
		t.Fatalf("interval [%v, %v] too wide for n=100", lo, hi)
	}
	lo0, hi0 := Wilson(0, 10)
	if lo0 != 0 || hi0 < 0.2 {
		t.Fatalf("zero-successes interval [%v, %v]", lo0, hi0)
	}
	loAll, hiAll := Wilson(10, 10)
	if hiAll != 1 || loAll > 0.8 {
		t.Fatalf("all-successes interval [%v, %v]", loAll, hiAll)
	}
	loE, hiE := Wilson(0, 0)
	if loE != 0 || hiE != 1 {
		t.Fatalf("empty interval [%v, %v]", loE, hiE)
	}
}

func TestWilsonInUnitInterval(t *testing.T) {
	if err := quick.Check(func(s, n uint8) bool {
		trials := int(n)
		succ := int(s)
		if succ > trials {
			succ = trials
		}
		lo, hi := Wilson(succ, trials)
		return lo >= 0 && hi <= 1 && lo <= hi
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogLogSlopeExactPowerLaw(t *testing.T) {
	var xs, ys []float64
	for _, x := range []float64{1, 2, 4, 8, 16, 32} {
		xs = append(xs, x)
		ys = append(ys, 3*math.Pow(x, 1.7))
	}
	slope, r2 := LogLogSlope(xs, ys)
	if math.Abs(slope-1.7) > 1e-9 {
		t.Fatalf("slope %v want 1.7", slope)
	}
	if r2 < 0.999999 {
		t.Fatalf("r2 %v", r2)
	}
}

func TestLogLogSlopeSkipsNonPositive(t *testing.T) {
	slope, r2 := LogLogSlope([]float64{0, -1, 2, 4}, []float64{1, 1, 4, 16})
	if math.Abs(slope-2) > 1e-9 || r2 < 0.99 {
		t.Fatalf("slope %v r2 %v", slope, r2)
	}
}

func TestLogLogSlopeDegenerate(t *testing.T) {
	if s, r := LogLogSlope([]float64{5}, []float64{5}); s != 0 || r != 0 {
		t.Fatalf("single point: %v %v", s, r)
	}
	if s, r := LogLogSlope([]float64{3, 3}, []float64{1, 9}); s != 0 || r != 0 {
		t.Fatalf("vertical line: %v %v", s, r)
	}
}

func TestLogLogSlopePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LogLogSlope([]float64{1}, []float64{1, 2})
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean %v want 4", g)
	}
	if g := GeoMean([]float64{-1, 0}); g != 0 {
		t.Fatalf("geomean of nonpositives %v", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("empty geomean %v", g)
	}
}
