package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("stddev %v", s.StdDev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.StdDev != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.StdDev != 0 || s.Median != 7 {
		t.Fatalf("single summary %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 %v", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Fatalf("q1 %v", q)
	}
	if q := Quantile(xs, 0.5); math.Abs(q-2.5) > 1e-12 {
		t.Fatalf("median %v", q)
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Fatal("Quantile sorted caller slice")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
}

func TestQuantileMonotone(t *testing.T) {
	if err := quick.Check(func(raw []float64, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = float64(i)
			}
		}
		a := float64(aRaw) / 255
		b := float64(bRaw) / 255
		if a > b {
			a, b = b, a
		}
		return Quantile(raw, a) <= Quantile(raw, b)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantilesMatchesQuantile(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7, 2, 8}
	qs := []float64{0, 0.25, 0.5, 0.9, 0.99, 1}
	got := Quantiles(xs, qs...)
	for i, q := range qs {
		if want := Quantile(xs, q); got[i] != want {
			t.Fatalf("q=%v: Quantiles %v, Quantile %v", q, got[i], want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 9 {
		t.Fatal("Quantiles sorted caller slice")
	}
}

func TestQuantilesEmpty(t *testing.T) {
	got := Quantiles(nil, 0.5, 0.9)
	if len(got) != 2 || got[0] != 0 || got[1] != 0 {
		t.Fatalf("empty quantiles %v", got)
	}
	if got := Quantiles([]float64{1, 2, 3}); len(got) != 0 {
		t.Fatalf("no qs requested: %v", got)
	}
}

func TestDistOfKnownValues(t *testing.T) {
	d := DistOf([]float64{1, 2, 3, 4, 5})
	if d.N != 5 || d.Mean != 3 || d.Min != 1 || d.Max != 5 || d.P50 != 3 {
		t.Fatalf("dist %+v", d)
	}
	if math.Abs(d.StdDev-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("stddev %v", d.StdDev)
	}
	if d.P90 < d.P50 || d.P99 < d.P90 || d.P99 > d.Max {
		t.Fatalf("tail quantiles disordered: %+v", d)
	}
	if se := d.StdErr(); math.Abs(se-d.StdDev/math.Sqrt(5)) > 1e-12 {
		t.Fatalf("stderr %v", se)
	}
}

func TestDistOfEmpty(t *testing.T) {
	d := DistOf(nil)
	if d != (Dist{}) {
		t.Fatalf("empty dist %+v", d)
	}
	if d.StdErr() != 0 {
		t.Fatal("empty stderr")
	}
}

func TestDistOfSingleTrial(t *testing.T) {
	d := DistOf([]float64{7})
	if d.N != 1 || d.Mean != 7 || d.StdDev != 0 || d.Min != 7 || d.Max != 7 {
		t.Fatalf("single dist %+v", d)
	}
	if d.P50 != 7 || d.P90 != 7 || d.P99 != 7 {
		t.Fatalf("single quantiles %+v", d)
	}
	if d.StdErr() != 0 {
		t.Fatal("single-trial stderr should be 0")
	}
}

func TestDistOfAllEqual(t *testing.T) {
	d := DistOf([]float64{4, 4, 4, 4})
	if d.StdDev != 0 || d.Min != 4 || d.Max != 4 || d.P50 != 4 || d.P99 != 4 {
		t.Fatalf("all-equal dist %+v", d)
	}
	if d.StdErr() != 0 {
		t.Fatal("all-equal stderr should be 0")
	}
}

func TestWelchStdErr(t *testing.T) {
	a := DistOf([]float64{1, 2, 3, 4})
	b := DistOf([]float64{10, 20, 30, 40})
	want := math.Sqrt(a.StdDev*a.StdDev/4 + b.StdDev*b.StdDev/4)
	if got := WelchStdErr(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("welch %v want %v", got, want)
	}
	// Degenerate inputs contribute nothing rather than NaN.
	if got := WelchStdErr(Dist{}, Dist{N: 1}); got != 0 {
		t.Fatalf("degenerate welch %v", got)
	}
}

func TestWilson(t *testing.T) {
	lo, hi := Wilson(50, 100)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("interval [%v, %v] should contain 0.5", lo, hi)
	}
	if lo < 0.39 || hi > 0.61 {
		t.Fatalf("interval [%v, %v] too wide for n=100", lo, hi)
	}
	lo0, hi0 := Wilson(0, 10)
	if lo0 != 0 || hi0 < 0.2 {
		t.Fatalf("zero-successes interval [%v, %v]", lo0, hi0)
	}
	loAll, hiAll := Wilson(10, 10)
	if hiAll != 1 || loAll > 0.8 {
		t.Fatalf("all-successes interval [%v, %v]", loAll, hiAll)
	}
	loE, hiE := Wilson(0, 0)
	if loE != 0 || hiE != 1 {
		t.Fatalf("empty interval [%v, %v]", loE, hiE)
	}
}

func TestWilsonInUnitInterval(t *testing.T) {
	if err := quick.Check(func(s, n uint8) bool {
		trials := int(n)
		succ := int(s)
		if succ > trials {
			succ = trials
		}
		lo, hi := Wilson(succ, trials)
		return lo >= 0 && hi <= 1 && lo <= hi
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogLogSlopeExactPowerLaw(t *testing.T) {
	var xs, ys []float64
	for _, x := range []float64{1, 2, 4, 8, 16, 32} {
		xs = append(xs, x)
		ys = append(ys, 3*math.Pow(x, 1.7))
	}
	slope, r2 := LogLogSlope(xs, ys)
	if math.Abs(slope-1.7) > 1e-9 {
		t.Fatalf("slope %v want 1.7", slope)
	}
	if r2 < 0.999999 {
		t.Fatalf("r2 %v", r2)
	}
}

func TestLogLogSlopeSkipsNonPositive(t *testing.T) {
	slope, r2 := LogLogSlope([]float64{0, -1, 2, 4}, []float64{1, 1, 4, 16})
	if math.Abs(slope-2) > 1e-9 || r2 < 0.99 {
		t.Fatalf("slope %v r2 %v", slope, r2)
	}
}

func TestLogLogSlopeDegenerate(t *testing.T) {
	if s, r := LogLogSlope([]float64{5}, []float64{5}); s != 0 || r != 0 {
		t.Fatalf("single point: %v %v", s, r)
	}
	if s, r := LogLogSlope([]float64{3, 3}, []float64{1, 9}); s != 0 || r != 0 {
		t.Fatalf("vertical line: %v %v", s, r)
	}
}

func TestLogLogSlopePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LogLogSlope([]float64{1}, []float64{1, 2})
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean %v want 4", g)
	}
	if g := GeoMean([]float64{-1, 0}); g != 0 {
		t.Fatalf("geomean of nonpositives %v", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("empty geomean %v", g)
	}
}
