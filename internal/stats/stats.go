// Package stats provides the small statistical toolkit used by the
// experiment harness: summary statistics, success-rate confidence
// intervals, and log-log regression for empirical scaling exponents.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes summary statistics; an empty sample yields zeros.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	s.Median = Quantile(xs, 0.5)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation of
// the sorted sample. An empty sample yields 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Wilson returns the Wilson-score confidence interval for a binomial
// success rate at ~95% confidence (z = 1.96).
func Wilson(successes, trials int) (lo, hi float64) {
	if trials == 0 {
		return 0, 1
	}
	const z = 1.96
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	margin := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo = center - margin
	hi = center + margin
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// LogLogSlope fits y = a·x^b by least squares in log-log space and returns
// the exponent b with the fit's R². Points with non-positive coordinates
// are skipped. Fewer than two usable points yield (0, 0).
func LogLogSlope(xs, ys []float64) (slope, r2 float64) {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: length mismatch %d vs %d", len(xs), len(ys)))
	}
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	if len(lx) < 2 {
		return 0, 0
	}
	n := float64(len(lx))
	var sx, sy, sxx, sxy, syy float64
	for i := range lx {
		sx += lx[i]
		sy += ly[i]
		sxx += lx[i] * lx[i]
		sxy += lx[i] * ly[i]
		syy += ly[i] * ly[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0
	}
	slope = (n*sxy - sx*sy) / den
	// R² from the correlation coefficient.
	varY := n*syy - sy*sy
	if varY == 0 {
		return slope, 1
	}
	r := (n*sxy - sx*sy) / math.Sqrt(den*varY)
	return slope, r * r
}

// GeoMean returns the geometric mean of positive samples (0 if none).
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
