// Package stats provides the statistical toolkit the reproduction's
// verdicts rest on. The paper's guarantees are w.h.p. statements, so
// validating them across runs needs spread, not just point estimates:
//
//   - Dist/DistOf and Quantiles summarize per-trial metric samples
//     (the distributions schema-v2+ bench artifacts persist per cell);
//   - Wilson gives the success-rate confidence interval every rendered
//     table and every benchdiff success verdict uses;
//   - StdErr/WelchStdErr feed the variance-aware effect gates in
//     internal/trajectory (a change must beat both a relative tolerance
//     and k Welch standard errors before it is called);
//   - LogLogSlope fits the empirical scaling exponents the Table 1
//     sections report next to the paper's predicted bounds.
//
// See docs/ARCHITECTURE.md for where this sits in the paper-to-code map.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes summary statistics; an empty sample yields zeros.
func Summarize(xs []float64) Summary {
	d := DistOf(xs)
	return Summary{N: d.N, Mean: d.Mean, StdDev: d.StdDev, Min: d.Min, Max: d.Max, Median: d.P50}
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation of
// the sorted sample. An empty sample yields 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// Quantiles returns the qs-quantiles of xs in one pass: the sample is
// copied and sorted once, then each quantile is read by the same linear
// interpolation as Quantile. An empty sample yields all zeros.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

// quantileSorted reads the q-quantile of an already-sorted non-empty
// sample by linear interpolation.
func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Dist is a compact description of a sample's distribution: the moments
// and tail quantiles the bench artifact persists per metric so regression
// tooling can reason about variance, not just point estimates.
type Dist struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (Bessel-corrected)
	Min    float64
	Max    float64
	P50    float64
	P90    float64
	P99    float64
}

// DistOf computes the distribution of a sample. An empty sample yields the
// zero Dist; a single observation has zero spread.
func DistOf(xs []float64) Dist {
	var d Dist
	d.N = len(xs)
	if d.N == 0 {
		return d
	}
	d.Min, d.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < d.Min {
			d.Min = x
		}
		if x > d.Max {
			d.Max = x
		}
	}
	d.Mean = sum / float64(d.N)
	if d.N > 1 {
		ss := 0.0
		for _, x := range xs {
			dev := x - d.Mean
			ss += dev * dev
		}
		d.StdDev = math.Sqrt(ss / float64(d.N-1))
	}
	q := Quantiles(xs, 0.5, 0.9, 0.99)
	d.P50, d.P90, d.P99 = q[0], q[1], q[2]
	return d
}

// StdErr returns the standard error of the sample mean (0 for fewer than
// two observations).
func (d Dist) StdErr() float64 {
	if d.N < 2 {
		return 0
	}
	return d.StdDev / math.Sqrt(float64(d.N))
}

// WelchStdErr combines two sample means' uncertainty into the standard
// error of their difference (Welch's form: no equal-variance assumption).
func WelchStdErr(a, b Dist) float64 {
	var v float64
	if a.N > 1 {
		v += a.StdDev * a.StdDev / float64(a.N)
	}
	if b.N > 1 {
		v += b.StdDev * b.StdDev / float64(b.N)
	}
	return math.Sqrt(v)
}

// Wilson returns the Wilson-score confidence interval for a binomial
// success rate at ~95% confidence (z = 1.96).
func Wilson(successes, trials int) (lo, hi float64) {
	if trials == 0 {
		return 0, 1
	}
	const z = 1.96
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	margin := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo = center - margin
	hi = center + margin
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// LogLogSlope fits y = a·x^b by least squares in log-log space and returns
// the exponent b with the fit's R². Points with non-positive coordinates
// are skipped. Fewer than two usable points yield (0, 0).
func LogLogSlope(xs, ys []float64) (slope, r2 float64) {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: length mismatch %d vs %d", len(xs), len(ys)))
	}
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	if len(lx) < 2 {
		return 0, 0
	}
	n := float64(len(lx))
	var sx, sy, sxx, sxy, syy float64
	for i := range lx {
		sx += lx[i]
		sy += ly[i]
		sxx += lx[i] * lx[i]
		sxy += lx[i] * ly[i]
		syy += ly[i] * ly[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0
	}
	slope = (n*sxy - sx*sy) / den
	// R² from the correlation coefficient.
	varY := n*syy - sy*sy
	if varY == 0 {
		return slope, 1
	}
	r := (n*sxy - sx*sy) / math.Sqrt(den*varY)
	return slope, r * r
}

// GeoMean returns the geometric mean of positive samples (0 if none).
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
