package sim

import (
	"reflect"
	"testing"

	"anonlead/internal/graph"
	"anonlead/internal/rng"
)

// testAdv is a configurable adversary for exercising the interposition
// layer without importing internal/adversary (which would cycle).
type testAdv struct {
	crash    func(v int) int
	fate     func(round, from, port, to int) (bool, int)
	maxDelay int
}

func (a *testAdv) CrashRound(v int) int {
	if a.crash == nil {
		return -1
	}
	return a.crash(v)
}

func (a *testAdv) MaxDelay() int { return a.maxDelay }

func (a *testAdv) Fate(round, from, port, to int) (bool, int) {
	if a.fate == nil {
		return false, 0
	}
	return a.fate(round, from, port, to)
}

func recorderNetAdv(g *graph.Graph, stopRound int, s Scheduler, adv Adversary) *Network {
	return New(Config{Graph: g, Seed: 1, Scheduler: s, Adversary: adv},
		func(node, degree int, r *rng.RNG) Machine {
			return &recorder{stopRound: stopRound, sendBits: 4}
		})
}

// TestZeroRateAdversaryIsByteIdentical pins the regression contract: an
// adversary that never acts produces exactly the run a nil adversary does —
// same machine observations, same metrics struct.
func TestZeroRateAdversaryIsByteIdentical(t *testing.T) {
	g := graph.Torus(4, 5)
	run := func(adv Adversary) ([][][3]int, Metrics) {
		nw := recorderNetAdv(g, 6, Sequential, adv)
		nw.Run(50)
		obs := make([][][3]int, g.N())
		for v := 0; v < g.N(); v++ {
			obs[v] = nw.Machine(v).(*recorder).received
		}
		return obs, nw.Metrics()
	}
	baseObs, baseMet := run(nil)
	zeroObs, zeroMet := run(&testAdv{}) // never drops, delays, or crashes
	if !reflect.DeepEqual(baseObs, zeroObs) {
		t.Fatal("zero-rate adversary changed delivered packets")
	}
	if baseMet != zeroMet {
		t.Fatalf("zero-rate adversary changed metrics:\nnil:  %+v\nzero: %+v", baseMet, zeroMet)
	}
}

// TestDropAllSilencesNetwork: with every packet dropped, no machine ever
// receives anything, and the drop counter matches the send counter.
func TestDropAllSilencesNetwork(t *testing.T) {
	g := graph.Cycle(6)
	adv := &testAdv{fate: func(int, int, int, int) (bool, int) { return true, 0 }}
	nw := recorderNetAdv(g, 4, Sequential, adv)
	nw.Run(50)
	for v := 0; v < g.N(); v++ {
		if rec := nw.Machine(v).(*recorder); len(rec.received) != 0 {
			t.Fatalf("node %d received %v despite drop-all", v, rec.received)
		}
	}
	m := nw.Metrics()
	if m.Dropped == 0 || m.Dropped != m.Messages {
		t.Fatalf("dropped %d of %d sent", m.Dropped, m.Messages)
	}
}

// TestCrashStopsNode: a crashed node stops stepping and sending, its
// inbound traffic is dropped, and the network still terminates.
func TestCrashStopsNode(t *testing.T) {
	g := graph.Cycle(5)
	adv := &testAdv{crash: func(v int) int {
		if v == 2 {
			return 3
		}
		return -1
	}}
	nw := recorderNetAdv(g, 8, Sequential, adv)
	nw.Run(100)
	if !nw.Crashed(2) || nw.CrashedCount() != 1 {
		t.Fatalf("crash accounting wrong: crashed(2)=%v count=%d", nw.Crashed(2), nw.CrashedCount())
	}
	if nw.Crashed(1) {
		t.Fatal("wrong node crashed")
	}
	if !nw.AllHalted() {
		t.Fatal("network with a crashed node did not terminate")
	}
	rec := nw.Machine(2).(*recorder)
	// Node 2 stepped in rounds 0..2 only: crash fires at the start of
	// round 3.
	if rec.rounds != 3 {
		t.Fatalf("crashed node stepped %d rounds, want 3", rec.rounds)
	}
	for _, r := range rec.received {
		if r[0] >= 3 {
			t.Fatalf("crashed node received a packet in round %d", r[0])
		}
	}
	// Neighbors keep running to their scheduled stop.
	if nw.Machine(0).(*recorder).rounds < 8 {
		t.Fatalf("healthy node stopped early after neighbor crash")
	}
	if nw.Metrics().Crashes != 1 {
		t.Fatalf("metrics.Crashes = %d", nw.Metrics().Crashes)
	}
}

// TestDelayShiftsDelivery: a fixed one-round delay on every packet shifts
// every delivery by exactly one round without losing any packet.
func TestDelayShiftsDelivery(t *testing.T) {
	g := graph.Path(2)
	adv := &testAdv{
		maxDelay: 1,
		fate:     func(int, int, int, int) (bool, int) { return false, 1 },
	}
	nw := recorderNetAdv(g, 5, Sequential, adv)
	nw.Run(50)
	rec := nw.Machine(1).(*recorder)
	// Undelayed schedule is {0,-1},{1,0},{2,1},... — with +1 delay, the
	// Init payload lands in round 1 and round r's payload in round r+2.
	want := [][3]int{{1, 0, -1}, {2, 0, 0}, {3, 0, 1}, {4, 0, 2}, {5, 0, 3}}
	if len(rec.received) < len(want) {
		t.Fatalf("received %v, want prefix %v", rec.received, want)
	}
	for i, w := range want {
		if rec.received[i] != w {
			t.Fatalf("delivery %d: %v, want %v", i, rec.received[i], w)
		}
	}
	if nw.Metrics().Delayed == 0 {
		t.Fatal("Delayed metric not counted")
	}
}

// TestDelayedPacketsToHaltedNodesDiscarded: parking packets for a node
// that halts before arrival must not wedge termination.
func TestDelayedPacketsToHaltedNodesDiscarded(t *testing.T) {
	g := graph.Path(2)
	adv := &testAdv{
		maxDelay: 8,
		fate:     func(round, from, port, to int) (bool, int) { return false, 8 },
	}
	nw := recorderNetAdv(g, 2, Sequential, adv)
	ran := nw.Run(100)
	if !nw.AllHalted() {
		t.Fatal("network did not halt")
	}
	if ran > 12 {
		t.Fatalf("ran %d rounds draining undeliverable futures", ran)
	}
}

// TestAdversarySchedulerIdentity: fault-injected runs are bit-identical
// across Sequential, WorkerPool, and Actors schedulers.
func TestAdversarySchedulerIdentity(t *testing.T) {
	g := graph.Torus(4, 6)
	mkAdv := func() Adversary {
		return &testAdv{
			maxDelay: 2,
			crash: func(v int) int {
				if v%7 == 3 {
					return v % 5
				}
				return -1
			},
			fate: func(round, from, port, to int) (bool, int) {
				// Deterministic pseudo-random mix of drops and delays, a
				// pure function of the coordinates.
				h := uint64(round*1009+from*131+port*17+to) * 0x9e3779b97f4a7c15
				switch h >> 61 {
				case 0:
					return true, 0
				case 1:
					return false, 1 + int(h>>59&1)
				}
				return false, 0
			},
		}
	}
	type result struct {
		obs [][][3]int
		met Metrics
	}
	run := func(s Scheduler) result {
		nw := recorderNetAdv(g, 10, s, mkAdv())
		defer nw.Close()
		nw.Run(60)
		r := result{obs: make([][][3]int, g.N())}
		for v := 0; v < g.N(); v++ {
			r.obs[v] = nw.Machine(v).(*recorder).received
		}
		r.met = nw.Metrics()
		return r
	}
	ref := run(Sequential)
	if ref.met.Dropped == 0 || ref.met.Delayed == 0 || ref.met.Crashes == 0 {
		t.Fatalf("test adversary inert: %+v", ref.met)
	}
	for _, s := range []Scheduler{WorkerPool, Actors} {
		got := run(s)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("scheduler %v diverged under faults:\nseq: %+v\ngot: %+v", s, ref.met, got.met)
		}
	}
}

// TestInitRoundFate: adversary decisions apply to Init sends (round -1)
// too — a drop-all adversary kills even the first delivery.
func TestInitRoundFate(t *testing.T) {
	g := graph.Path(2)
	var sawInit bool
	adv := &testAdv{fate: func(round, from, port, to int) (bool, int) {
		if round == -1 {
			sawInit = true
		}
		return round == -1, 0
	}}
	nw := recorderNetAdv(g, 3, Sequential, adv)
	nw.Run(20)
	if !sawInit {
		t.Fatal("Fate never consulted for Init sends")
	}
	rec := nw.Machine(1).(*recorder)
	for _, r := range rec.received {
		if r[2] == -1 {
			t.Fatal("Init payload delivered despite round -1 drop")
		}
	}
	if len(rec.received) == 0 {
		t.Fatal("later rounds were dropped too")
	}
}
