package sim

import "fmt"

// Metrics aggregates the cost accounting for a run. All counters are totals
// since network construction.
type Metrics struct {
	// Rounds is the number of logical synchronous rounds executed.
	Rounds int
	// ChargedRounds is the CONGEST-model time: per logical round, the
	// maximum over links of the number of budget-sized slots needed to
	// serialize that link's traffic (distinct channels never share a
	// slot), at least 1 per executed round; the Init transmission batch
	// charges one additional round when machines send from Init. This is
	// how super-round multiplexing (paper Section 4) and bit-by-bit
	// potential transmission (Section 5.3 time analysis) enter the time
	// complexity.
	ChargedRounds int64
	// Messages is the number of point-to-point payloads delivered.
	Messages int64
	// Bits is the total payload bits delivered.
	Bits int64
	// CongestBits is the per-link per-round budget B used for slotting.
	CongestBits int
	// MaxLinkSlots is the worst per-link slot count observed in any round
	// (the peak multiplexing depth).
	MaxLinkSlots int
	// MaxChannels is the maximum number of distinct channels active on a
	// single link in a single round.
	MaxChannels int
	// Dropped counts packets destroyed by the configured adversary (loss
	// or link churn). Dropped packets still count in Messages/Bits and in
	// link-slot charging: the sender transmitted them. Always 0 without an
	// adversary.
	Dropped int64
	// Delayed counts packets the adversary deferred past their normal
	// next-round delivery. Always 0 without an adversary.
	Delayed int64
	// Crashes counts nodes crash-stopped by the adversary.
	Crashes int
}

// String renders the metrics compactly for logs and CLI output.
func (m Metrics) String() string {
	return fmt.Sprintf("rounds=%d charged=%d msgs=%d bits=%d maxSlots=%d budget=%db",
		m.Rounds, m.ChargedRounds, m.Messages, m.Bits, m.MaxLinkSlots, m.CongestBits)
}
