package sim

import (
	"testing"

	"anonlead/internal/graph"
	"anonlead/internal/rng"
)

// runGossipScheduler mirrors runGossip with an explicit scheduler choice.
func runGossipScheduler(s Scheduler) ([]uint64, Metrics) {
	g := graph.Torus(4, 5)
	nw := New(Config{Graph: g, Seed: 7, Scheduler: s},
		func(node, degree int, r *rng.RNG) Machine { return &gossiper{} })
	defer nw.Close()
	nw.Run(50)
	vals := make([]uint64, g.N())
	for v := 0; v < g.N(); v++ {
		vals[v] = nw.Machine(v).(*gossiper).val
	}
	return vals, nw.Metrics()
}

func TestActorsMatchSequential(t *testing.T) {
	seqVals, seqMet := runGossipScheduler(Sequential)
	actVals, actMet := runGossipScheduler(Actors)
	for i := range seqVals {
		if seqVals[i] != actVals[i] {
			t.Fatalf("node %d differs: %d vs %d", i, seqVals[i], actVals[i])
		}
	}
	if seqMet != actMet {
		t.Fatalf("metrics differ:\nseq %+v\nact %+v", seqMet, actMet)
	}
}

func TestActorsAutoCloseOnGlobalHalt(t *testing.T) {
	g := graph.Cycle(6)
	nw := New(Config{Graph: g, Seed: 1, Scheduler: Actors},
		func(node, degree int, r *rng.RNG) Machine {
			return &recorder{stopRound: 2, sendBits: 4}
		})
	nw.Run(20)
	if !nw.AllHalted() {
		t.Fatal("network did not halt")
	}
	if nw.actors != nil {
		t.Fatal("actor pool not released after global halt")
	}
	// Close after auto-close must be a no-op.
	nw.Close()
}

func TestActorsExplicitClose(t *testing.T) {
	g := graph.Cycle(6)
	nw := New(Config{Graph: g, Seed: 1, Scheduler: Actors},
		func(node, degree int, r *rng.RNG) Machine {
			return &recorder{stopRound: 1 << 30, sendBits: 4} // never halts
		})
	nw.Run(10)
	nw.Close()
	nw.Close() // idempotent
}

func TestCloseNoOpForOtherSchedulers(t *testing.T) {
	g := graph.Cycle(4)
	nw := New(Config{Graph: g, Seed: 1},
		func(node, degree int, r *rng.RNG) Machine {
			return &recorder{stopRound: 2, sendBits: 4}
		})
	nw.Close()
	nw.Run(10)
}

func TestParallelAliasSelectsWorkerPool(t *testing.T) {
	g := graph.Cycle(4)
	nw := New(Config{Graph: g, Seed: 1, Parallel: true},
		func(node, degree int, r *rng.RNG) Machine {
			return &recorder{stopRound: 2, sendBits: 4}
		})
	if nw.scheduler != WorkerPool {
		t.Fatalf("scheduler %v want WorkerPool", nw.scheduler)
	}
	// Explicit scheduler wins over the alias.
	nw2 := New(Config{Graph: g, Seed: 1, Parallel: true, Scheduler: Actors},
		func(node, degree int, r *rng.RNG) Machine {
			return &recorder{stopRound: 2, sendBits: 4}
		})
	defer nw2.Close()
	if nw2.scheduler != Actors {
		t.Fatalf("scheduler %v want Actors", nw2.scheduler)
	}
}

func TestActorsLongRun(t *testing.T) {
	// A longer run shakes out ordering races between command dispatch and
	// completion collection.
	g := graph.Complete(12)
	nw := New(Config{Graph: g, Seed: 3, Scheduler: Actors},
		func(node, degree int, r *rng.RNG) Machine { return &gossiper{} })
	defer nw.Close()
	nw.Run(40)
	ref := New(Config{Graph: g, Seed: 3},
		func(node, degree int, r *rng.RNG) Machine { return &gossiper{} })
	ref.Run(40)
	for v := 0; v < g.N(); v++ {
		if nw.Machine(v).(*gossiper).val != ref.Machine(v).(*gossiper).val {
			t.Fatalf("node %d diverged", v)
		}
	}
}
