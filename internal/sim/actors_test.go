package sim

import (
	"runtime"
	"testing"
	"time"

	"anonlead/internal/graph"
	"anonlead/internal/rng"
	"anonlead/internal/trace"
)

// runGossipScheduler mirrors runGossip with an explicit scheduler choice.
func runGossipScheduler(s Scheduler) ([]uint64, Metrics) {
	g := graph.Torus(4, 5)
	nw := New(Config{Graph: g, Seed: 7, Scheduler: s},
		func(node, degree int, r *rng.RNG) Machine { return &gossiper{} })
	defer nw.Close()
	nw.Run(50)
	vals := make([]uint64, g.N())
	for v := 0; v < g.N(); v++ {
		vals[v] = nw.Machine(v).(*gossiper).val
	}
	return vals, nw.Metrics()
}

func TestActorsMatchSequential(t *testing.T) {
	seqVals, seqMet := runGossipScheduler(Sequential)
	actVals, actMet := runGossipScheduler(Actors)
	for i := range seqVals {
		if seqVals[i] != actVals[i] {
			t.Fatalf("node %d differs: %d vs %d", i, seqVals[i], actVals[i])
		}
	}
	if seqMet != actMet {
		t.Fatalf("metrics differ:\nseq %+v\nact %+v", seqMet, actMet)
	}
}

func TestActorsAutoCloseOnGlobalHalt(t *testing.T) {
	g := graph.Cycle(6)
	nw := New(Config{Graph: g, Seed: 1, Scheduler: Actors},
		func(node, degree int, r *rng.RNG) Machine {
			return &recorder{stopRound: 2, sendBits: 4}
		})
	nw.Run(20)
	if !nw.AllHalted() {
		t.Fatal("network did not halt")
	}
	if nw.actors != nil {
		t.Fatal("actor pool not released after global halt")
	}
	// Close after auto-close must be a no-op.
	nw.Close()
}

func TestActorsExplicitClose(t *testing.T) {
	g := graph.Cycle(6)
	nw := New(Config{Graph: g, Seed: 1, Scheduler: Actors},
		func(node, degree int, r *rng.RNG) Machine {
			return &recorder{stopRound: 1 << 30, sendBits: 4} // never halts
		})
	nw.Run(10)
	nw.Close()
	nw.Close() // idempotent
}

func TestCloseNoOpForOtherSchedulers(t *testing.T) {
	g := graph.Cycle(4)
	nw := New(Config{Graph: g, Seed: 1},
		func(node, degree int, r *rng.RNG) Machine {
			return &recorder{stopRound: 2, sendBits: 4}
		})
	nw.Close()
	nw.Run(10)
}

func TestParallelAliasSelectsWorkerPool(t *testing.T) {
	g := graph.Cycle(4)
	nw := New(Config{Graph: g, Seed: 1, Parallel: true},
		func(node, degree int, r *rng.RNG) Machine {
			return &recorder{stopRound: 2, sendBits: 4}
		})
	if nw.scheduler != WorkerPool {
		t.Fatalf("scheduler %v want WorkerPool", nw.scheduler)
	}
	// Explicit scheduler wins over the alias.
	nw2 := New(Config{Graph: g, Seed: 1, Parallel: true, Scheduler: Actors},
		func(node, degree int, r *rng.RNG) Machine {
			return &recorder{stopRound: 2, sendBits: 4}
		})
	defer nw2.Close()
	if nw2.scheduler != Actors {
		t.Fatalf("scheduler %v want Actors", nw2.scheduler)
	}
}

// waitGoroutinesBelow polls until the process goroutine count drops to at
// most limit (goroutine exit is asynchronous after wg.Wait in the spawner's
// frame has returned).
func waitGoroutinesBelow(t *testing.T, limit int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= limit {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d goroutines still alive, want <= %d", runtime.NumGoroutine(), limit)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestActorsCloseReleasesGoroutinesMidRun: Close on a network that has NOT
// globally halted must release every per-node goroutine, and the closed
// network must remain restartable (a further Step respawns the pool).
func TestActorsCloseReleasesGoroutinesMidRun(t *testing.T) {
	base := runtime.NumGoroutine()
	g := graph.Complete(16)
	nw := New(Config{Graph: g, Seed: 2, Scheduler: Actors},
		func(node, degree int, r *rng.RNG) Machine {
			return &recorder{stopRound: 1 << 30, sendBits: 4} // never halts
		})
	nw.Run(5)
	if nw.AllHalted() {
		t.Fatal("test wants a non-halted network")
	}
	nw.Close()
	waitGoroutinesBelow(t, base+2)
	// The network is still steppable: the pool respawns on demand and the
	// run continues deterministically.
	if !nw.Step() {
		t.Fatal("closed-but-live network refused to step")
	}
	nw.Close()
	waitGoroutinesBelow(t, base+2)
}

// TestActorsHaltedNodeParking: nodes that halt mid-run stop stepping while
// the rest of the network keeps executing on the persistent goroutines,
// and the mixed run matches the sequential scheduler exactly.
func TestActorsHaltedNodeParking(t *testing.T) {
	g := graph.Torus(4, 5)
	factory := func(node, degree int, r *rng.RNG) Machine {
		stop := 1 << 30
		if node%2 == 0 {
			stop = 3 // half the nodes halt early
		}
		return &recorder{stopRound: stop, sendBits: 4}
	}
	nw := New(Config{Graph: g, Seed: 6, Scheduler: Actors}, factory)
	defer nw.Close()
	nw.Run(12)
	ref := New(Config{Graph: g, Seed: 6}, factory)
	ref.Run(12)
	for v := 0; v < g.N(); v++ {
		got := nw.Machine(v).(*recorder)
		want := ref.Machine(v).(*recorder)
		if got.rounds != want.rounds {
			t.Fatalf("node %d stepped %d rounds under actors, %d sequential", v, got.rounds, want.rounds)
		}
		if v%2 == 0 && got.rounds > 5 {
			t.Fatalf("halted node %d kept stepping (%d rounds)", v, got.rounds)
		}
	}
	if nw.Metrics() != ref.Metrics() {
		t.Fatalf("metrics diverged:\nactors %+v\nseq    %+v", nw.Metrics(), ref.Metrics())
	}
}

// tracingGossiper emits a trace event every step, so the Actors scheduler
// records concurrently from every node goroutine (the -race CI pass runs
// this file and verifies the recorder handoff).
type tracingGossiper struct {
	gossiper
}

func (m *tracingGossiper) Step(ctx *Context, inbox []Packet) {
	ctx.Trace("step", "")
	m.gossiper.Step(ctx, inbox)
}

// TestActorsTracingConcurrentRecord: tracing enabled under the Actors
// scheduler must record exactly the events the sequential run records.
func TestActorsTracingConcurrentRecord(t *testing.T) {
	g := graph.Torus(4, 5)
	run := func(s Scheduler) *trace.Counting {
		rec := trace.NewCounting()
		nw := New(Config{Graph: g, Seed: 9, Scheduler: s, Trace: rec},
			func(node, degree int, r *rng.RNG) Machine { return &tracingGossiper{} })
		defer nw.Close()
		nw.Run(25)
		return rec
	}
	act := run(Actors)
	seq := run(Sequential)
	if act.Count("step") == 0 {
		t.Fatal("no trace events recorded under actors")
	}
	if act.Count("step") != seq.Count("step") {
		t.Fatalf("actors recorded %d step events, sequential %d", act.Count("step"), seq.Count("step"))
	}
}

func TestActorsLongRun(t *testing.T) {
	// A longer run shakes out ordering races between command dispatch and
	// completion collection.
	g := graph.Complete(12)
	nw := New(Config{Graph: g, Seed: 3, Scheduler: Actors},
		func(node, degree int, r *rng.RNG) Machine { return &gossiper{} })
	defer nw.Close()
	nw.Run(40)
	ref := New(Config{Graph: g, Seed: 3},
		func(node, degree int, r *rng.RNG) Machine { return &gossiper{} })
	ref.Run(40)
	for v := 0; v < g.N(); v++ {
		if nw.Machine(v).(*gossiper).val != ref.Machine(v).(*gossiper).val {
			t.Fatalf("node %d diverged", v)
		}
	}
}
