package sim

import (
	"reflect"
	"testing"

	"anonlead/internal/graph"
	"anonlead/internal/rng"
)

// testAdaptive is a traffic-adaptive test adversary: it records every
// observation and, from fireRound on, names the busiest node of each
// round (ties to the lower index, zero traffic never picked).
type testAdaptive struct {
	testAdv
	fireRound int
	fired     bool    // single strike: first qualifying round only
	observed  [][]int // copy of sent per observed round, keyed by round+1
	picks     []int
}

func (a *testAdaptive) ObserveTraffic(round int, sent []int) []int {
	for len(a.observed) <= round+1 {
		a.observed = append(a.observed, nil)
	}
	a.observed[round+1] = append([]int(nil), sent...)
	if round < a.fireRound || a.fired {
		return nil
	}
	best, bestSent := -1, 0
	for v, s := range sent {
		if s > bestSent {
			best, bestSent = v, s
		}
	}
	if best < 0 {
		return nil
	}
	a.fired = true
	a.picks = append(a.picks[:0], best)
	return a.picks
}

// chatty broadcasts every round like recorder, but one designated node
// sends double traffic — a stand-in for the emerging leader's extra load.
type chatty struct {
	recorder
	busy bool
}

func (m *chatty) Step(ctx *Context, inbox []Packet) {
	m.recorder.Step(ctx, inbox)
	if m.busy && ctx.Round() < m.stopRound {
		ctx.Broadcast(testMsg{v: 100 + ctx.Round(), bits: m.sendBits})
	}
}

func chattyNet(g *graph.Graph, busy, stopRound int, s Scheduler, adv Adversary) *Network {
	return New(Config{Graph: g, Seed: 1, Scheduler: s, Adversary: adv},
		func(node, degree int, r *rng.RNG) Machine {
			return &chatty{recorder: recorder{stopRound: stopRound, sendBits: 4}, busy: node == busy}
		})
}

// TestAdaptiveCrashTargetsBusiestNode: the adaptive adversary sees the
// true per-node send counts in node order, and its pick — the busiest
// node — is crash-stopped at the start of the next round.
func TestAdaptiveCrashTargetsBusiestNode(t *testing.T) {
	g := graph.Cycle(8)
	const busy = 3
	adv := &testAdaptive{fireRound: 1}
	nw := chattyNet(g, busy, 10, Sequential, adv)
	nw.Run(20)

	// Round 0 observation (observed[1]): every node broadcast once on its
	// 2 ports, node 3 twice.
	want := []int{2, 2, 2, 4, 2, 2, 2, 2}
	if len(adv.observed) < 2 || !reflect.DeepEqual(adv.observed[1], want) {
		t.Fatalf("round-0 traffic observation: got %v, want %v", adv.observed[1], want)
	}
	if !nw.Crashed(busy) {
		t.Fatalf("busiest node %d was not crashed", busy)
	}
	for v := 0; v < g.N(); v++ {
		if v != busy && nw.Crashed(v) {
			t.Fatalf("node %d crashed; only %d should have", v, busy)
		}
	}
	// Fired after routing round 1 → crash applies at the start of round 2:
	// node 3 stepped rounds 0..1 only.
	if got := nw.Machine(busy).(*chatty).rounds; got != 2 {
		t.Fatalf("busy node stepped %d rounds, want 2", got)
	}
}

// TestAdaptiveSchedulerIdentity: adaptive crashes are a pure function of
// the observed traffic, which route() produces identically under every
// scheduler — so the whole run is identical too.
func TestAdaptiveSchedulerIdentity(t *testing.T) {
	g := graph.Torus(4, 4)
	type result struct {
		obs     [][]int
		crashed []bool
		met     Metrics
	}
	run := func(s Scheduler) result {
		adv := &testAdaptive{fireRound: 2}
		nw := chattyNet(g, 5, 8, s, adv)
		nw.Run(20)
		crashed := make([]bool, g.N())
		for v := range crashed {
			crashed[v] = nw.Crashed(v)
		}
		return result{obs: adv.observed, crashed: crashed, met: nw.Metrics()}
	}
	base := run(Sequential)
	for _, s := range []Scheduler{WorkerPool, Actors} {
		got := run(s)
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("scheduler %v diverges from sequential:\n%+v\nvs\n%+v", s, got, base)
		}
	}
}

// TestAdaptiveOverridesLaterStaticSchedule: a node scheduled to crash at
// round 4 statically but picked by the adaptive adversary after round 0
// dies at round 1 — the earlier of the two rounds wins, and the crash is
// not double-counted when the static schedule comes due.
func TestAdaptiveOverridesLaterStaticSchedule(t *testing.T) {
	g := graph.Cycle(6)
	const victim = 2
	adv := &testAdaptive{fireRound: 0}
	adv.crash = func(v int) int {
		if v == victim {
			return 4
		}
		return -1
	}
	nw := chattyNet(g, victim, 10, Sequential, adv)
	nw.Run(20)
	if !nw.Crashed(victim) {
		t.Fatal("victim not crashed")
	}
	// Adaptive pick after round 0 → crash at the start of round 1: the
	// victim steps round 0 only, three rounds before its static schedule.
	if got := nw.Machine(victim).(*chatty).rounds; got != 1 {
		t.Fatalf("victim stepped %d rounds, want 1 (adaptive round-1 crash should win)", got)
	}
	if nw.CrashedCount() != 1 {
		t.Fatalf("CrashedCount = %d, want 1", nw.CrashedCount())
	}
}

// TestNonAdaptiveAdversarySkipsTrafficFeed: a plain adversary never
// allocates the sent buffer — the adaptive feed is strictly opt-in.
func TestNonAdaptiveAdversarySkipsTrafficFeed(t *testing.T) {
	g := graph.Cycle(4)
	nw := recorderNetAdv(g, 3, Sequential, &testAdv{})
	if nw.sent != nil || nw.adaptive != nil {
		t.Fatal("non-adaptive adversary should not enable the traffic feed")
	}
}
