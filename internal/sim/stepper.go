package sim

import (
	"anonlead/internal/graph"
	"anonlead/internal/rng"
	"anonlead/internal/trace"
)

// View is the read-only surface a protocol's convergence predicate and
// outcome collector need from a finished (or quiescent) execution. Both
// the in-memory simulator (*Network) and the real-transport cluster
// implement it, which is what lets registered protocols run unmodified on
// either backend: the registry's Collect/Converged hooks see the same
// machines either way.
type View interface {
	// N returns the node count.
	N() int
	// Graph returns the underlying topology.
	Graph() *graph.Graph
	// Machine returns node v's protocol machine.
	Machine(v int) Machine
	// Halted reports whether node v has stopped.
	Halted(v int) bool
	// Crashed reports whether node v was crash-stopped by an adversary
	// (always false on backends without fault injection).
	Crashed(v int) bool
}

var _ View = (*Network)(nil)

// Send is one outgoing message produced by a Stepper-driven machine step:
// the public mirror of the simulator's internal send record.
type Send struct {
	// Port is the sender's port the payload leaves on.
	Port int
	// Channel tags the logical protocol execution (see Packet.Channel).
	Channel uint32
	// Payload is the message body.
	Payload Payload
}

// Stepper drives a single protocol machine outside a Network: the
// real-transport node driver owns one Stepper per node and pumps it with
// the packets that arrived over the wire. The Stepper reproduces exactly
// the per-node semantics of Network.stepNode — context reset, inbox
// ordering, halt latching — so a machine cannot tell whether its packets
// came from the in-memory router or a socket.
//
// A Stepper is not safe for concurrent use; drive it from one goroutine.
type Stepper struct {
	ctx Context
	m   Machine
	out []Send
}

// NewStepper builds a stepper for machine m on a node of the given degree.
// node is used for trace attribution only (never exposed to the machine,
// matching the anonymity contract of Factory); r is the node's private
// random stream; rec may be nil to disable tracing.
func NewStepper(m Machine, node, degree int, r *rng.RNG, rec trace.Recorder) *Stepper {
	return &Stepper{
		ctx: Context{degree: degree, rng: r, node: node, rec: rec},
		m:   m,
	}
}

// Init runs the machine's Init (round -1) and returns its sends, which the
// caller must deliver for the start of round 0. The returned slice is
// reused by the next Init/Step call.
func (s *Stepper) Init() []Send {
	s.ctx.reset(-1)
	s.m.Init(&s.ctx)
	return s.collect()
}

// Step runs one round with the packets delivered this round. The inbox is
// sorted in place into the simulator's canonical (port, channel) order, so
// callers only need to preserve per-link arrival order. A halted machine
// is not stepped and sends nothing. The returned slice is reused by the
// next call.
func (s *Stepper) Step(round int, inbox []Packet) []Send {
	s.ctx.reset(round)
	if s.ctx.halted {
		return nil
	}
	sortInbox(inbox)
	s.m.Step(&s.ctx, inbox)
	return s.collect()
}

// collect copies the context's sends into the public reuse buffer.
func (s *Stepper) collect() []Send {
	s.out = s.out[:0]
	for _, sd := range s.ctx.out {
		s.out = append(s.out, Send{Port: sd.port, Channel: sd.channel, Payload: sd.payload})
	}
	return s.out
}

// Halted reports whether the machine has called Halt. Halting is final:
// further Step calls are no-ops.
func (s *Stepper) Halted() bool { return s.ctx.halted }

// Machine returns the driven machine, for outcome collection after a run.
func (s *Stepper) Machine() Machine { return s.m }

// Degree returns the node's port count.
func (s *Stepper) Degree() int { return s.ctx.degree }
