package sim

// WireCodec serializes a protocol's payloads for the real-transport
// backend. The in-memory simulator delivers payloads by reference and
// never needs one; a socket carries bytes, so every protocol that wants to
// run distributed registers a codec alongside its builder. Decode must
// reproduce a value equal to the encoded one — the determinism contract
// (same seed, same leader, same rounds on either backend) depends on
// machines observing identical payloads.
type WireCodec interface {
	// AppendPayload appends p's encoding to dst and returns the extended
	// slice. It fails on payload types the codec does not know.
	AppendPayload(dst []byte, p Payload) ([]byte, error)
	// DecodePayload decodes one payload from src (the exact bytes a single
	// AppendPayload produced).
	DecodePayload(src []byte) (Payload, error)
}

// LeaderReporter is implemented by protocol machines that can report their
// node's leadership claim without the caller knowing the concrete machine
// type. The multi-process launcher uses it to collect election outcomes
// from node processes that only hold their own machine (the registry's
// Collect hooks need the whole network and run coordinator-side instead).
type LeaderReporter interface {
	// LeaderInfo reports whether this node claims leadership, and under
	// which random ID (0 when not a leader).
	LeaderInfo() (leader bool, id uint64)
}
