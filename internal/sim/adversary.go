package sim

// Adversary is a deterministic fault-injection policy interposed between
// send and delivery. The simulator consults it from the single-threaded
// routing/coordination path only, so implementations never see concurrent
// calls — but determinism still must not lean on call order: every decision
// is required to be a pure function of the adversary's own seed material
// and the call's arguments, so that the Sequential, WorkerPool, and Actors
// schedulers observe byte-identical faults. internal/adversary provides
// composable implementations (Bernoulli link loss, crash-stop schedules,
// link churn, delivery-delay jitter) built on rng seed splitting.
//
// A nil Config.Adversary costs nothing: the fault paths are gated on a
// single nil check and the steady-state round stays allocation-free.
type Adversary interface {
	// CrashRound returns the round at whose start node v crash-stops
	// (negative = never). It is consulted once per node at network
	// construction. A crashed node no longer steps, sends nothing, and
	// drops everything addressed to it; Init (round -1) always runs.
	CrashRound(node int) int
	// Fate decides what happens to one packet sent in round round (Init is
	// round -1) by node from on port port toward node to: dropped, or
	// delivered after delay extra rounds on top of the normal next-round
	// delivery (0 = on time).
	Fate(round, from, port, to int) (drop bool, delay int)
	// MaxDelay bounds the delays Fate may return; it sizes the simulator's
	// future-delivery ring. 0 means no jitter.
	MaxDelay() int
}

// TrafficAdaptive is an optional extension of Adversary for adaptive fault
// policies. After every routed round the simulator feeds the adversary the
// per-node send counts of that round and lets it name nodes to crash-stop
// at the start of the next round — the classic adaptive adversary that
// targets the busiest node (≈ the emerging leader) instead of committing
// to a schedule up front.
//
// Determinism is preserved without any extra seed material: route() is
// single-threaded and iterates nodes in index order under every scheduler,
// so the observed counts — and therefore any pure function of them — are
// byte-identical across Sequential, WorkerPool, and Actors.
//
// Adaptive crashes compose with a static CrashRound schedule: the earlier
// of the two rounds wins, and already-crashed nodes are skipped.
type TrafficAdaptive interface {
	Adversary
	// ObserveTraffic receives the send counts of the round just routed
	// (sent[v] = packets node v sent this round; Init is round -1) and
	// returns the nodes to crash at the start of round+1, or nil. The
	// returned slice may be reused by the implementation; the simulator
	// consumes it before the next call.
	ObserveTraffic(round int, sent []int) []int
}

// observeTraffic feeds the round's send counts to the adaptive adversary
// and schedules the returned victims to crash at the start of the next
// round. An earlier existing schedule for a node wins.
func (nw *Network) observeTraffic(round int) {
	for _, v := range nw.adaptive.ObserveTraffic(round, nw.sent) {
		if v < 0 || v >= len(nw.crashAt) || nw.crashed[v] {
			continue
		}
		if at := nw.crashAt[v]; at < 0 || at > round+1 {
			nw.crashAt[v] = round + 1
		}
	}
}

// futureDelivery is a packet held back by adversarial delay, parked until
// its arrival round.
type futureDelivery struct {
	node int
	pkt  Packet
}

// applyCrashes crash-stops every node whose schedule has come due at the
// start of round. Crashing reuses the halt machinery (no further steps,
// inbound packets dropped), but is tracked separately so the harness can
// distinguish "stopped by protocol" from "killed by adversary".
func (nw *Network) applyCrashes(round int) {
	if nw.adv == nil {
		return
	}
	for v, at := range nw.crashAt {
		if at >= 0 && at <= round && !nw.crashed[v] {
			nw.crashed[v] = true
			nw.halted[v] = true
			nw.metrics.Crashes++
		}
	}
}

// releaseFutures merges the delayed packets arriving this round into their
// receivers' inboxes (after the on-time packets routed last round, so
// arrival order is deterministic for every scheduler). Packets for halted
// or crashed receivers are dropped, mirroring normal delivery.
func (nw *Network) releaseFutures(round int) {
	if nw.adv == nil || nw.pendingFuture == 0 {
		return
	}
	slot := round % len(nw.future)
	bucket := nw.future[slot]
	for _, fd := range bucket {
		nw.pendingFuture--
		if nw.halted[fd.node] {
			continue
		}
		nw.inbox[fd.node] = append(nw.inbox[fd.node], fd.pkt)
	}
	nw.future[slot] = bucket[:0]
}

// dropAllFutures discards every parked delayed packet. Called when all
// nodes have halted: nothing in the ring can ever be delivered, so the run
// can terminate without spinning empty drain rounds.
func (nw *Network) dropAllFutures() {
	if nw.pendingFuture == 0 {
		return
	}
	for i := range nw.future {
		nw.future[i] = nw.future[i][:0]
	}
	nw.pendingFuture = 0
}

// Crashed reports whether node v was crash-stopped by the adversary (a
// crashed node also reports Halted).
func (nw *Network) Crashed(v int) bool {
	return nw.crashed != nil && nw.crashed[v]
}

// CrashedCount returns the number of crash-stopped nodes so far.
func (nw *Network) CrashedCount() int {
	return nw.metrics.Crashes
}
