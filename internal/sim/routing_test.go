package sim

import (
	"testing"
	"testing/quick"

	"anonlead/internal/graph"
	"anonlead/internal/rng"
	"anonlead/internal/trace"
)

// scatter sends one uniquely tagged payload on a random port each round
// and records everything received, letting the property test reconstruct
// ground truth delivery.
type scatter struct {
	node     int
	sent     [][3]int // (round, port, tag)
	received [][3]int // (round, port, tag)
	rounds   int
}

func (m *scatter) Init(ctx *Context) {}

func (m *scatter) Step(ctx *Context, inbox []Packet) {
	for _, pkt := range inbox {
		m.received = append(m.received, [3]int{ctx.Round(), pkt.Port, pkt.Payload.(testMsg).v})
	}
	if ctx.Round() >= m.rounds {
		ctx.Halt()
		return
	}
	port := ctx.RNG().Intn(ctx.Degree())
	tag := m.node<<16 | ctx.Round()
	ctx.Send(port, 0, testMsg{v: tag, bits: 24})
	m.sent = append(m.sent, [3]int{ctx.Round(), port, tag})
}

// TestRoutingProperty checks, over random connected graphs, that every
// sent packet is delivered exactly once, to the correct neighbor, on the
// correct reverse port, in the next round.
func TestRoutingProperty(t *testing.T) {
	root := rng.New(42)
	if err := quick.Check(func(seed uint64) bool {
		r := root.Split(seed)
		g, err := graph.GNPConnected(12, 0.4, r)
		if err != nil {
			return true
		}
		nw := New(Config{Graph: g, Seed: seed}, func(node, degree int, rr *rng.RNG) Machine {
			return &scatter{node: node, rounds: 6}
		})
		nw.Run(10)

		// Ground truth: for each send (round t, node v, port p, tag),
		// expect exactly one reception at neighbor w = g.Neighbor(v,p),
		// round t+1, port = g.PortTo(w, v).
		type delivery struct{ round, node, port, tag int }
		expected := make(map[delivery]int)
		for v := 0; v < g.N(); v++ {
			m := nw.Machine(v).(*scatter)
			for _, s := range m.sent {
				w := g.Neighbor(v, s[1])
				expected[delivery{s[0] + 1, w, g.PortTo(w, v), s[2]}]++
			}
		}
		got := make(map[delivery]int)
		for v := 0; v < g.N(); v++ {
			m := nw.Machine(v).(*scatter)
			for _, rec := range m.received {
				got[delivery{rec[0], v, rec[1], rec[2]}]++
			}
		}
		if len(expected) != len(got) {
			return false
		}
		for k, n := range expected {
			if got[k] != n {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// tracer emits one event per round.
type tracer struct{}

func (m *tracer) Init(ctx *Context) { ctx.Trace("init", "") }
func (m *tracer) Step(ctx *Context, inbox []Packet) {
	ctx.Trace("step", "")
	if ctx.Round() >= 2 {
		ctx.Halt()
	}
}

func TestContextTraceRecording(t *testing.T) {
	g := graph.Cycle(4)
	rec := trace.NewRing(64)
	nw := New(Config{Graph: g, Seed: 1, Trace: rec},
		func(node, degree int, r *rng.RNG) Machine { return &tracer{} })
	nw.Run(10)
	if rec.Count("init") != 4 {
		t.Fatalf("init events %d want 4", rec.Count("init"))
	}
	if rec.Count("step") != 12 { // rounds 0,1,2 for 4 nodes
		t.Fatalf("step events %d want 12", rec.Count("step"))
	}
	// Init events carry round -1.
	for _, e := range rec.Filter("init") {
		if e.Round != -1 {
			t.Fatalf("init event round %d", e.Round)
		}
	}
}

func TestContextTraceDisabledIsNoop(t *testing.T) {
	g := graph.Cycle(4)
	nw := New(Config{Graph: g, Seed: 1},
		func(node, degree int, r *rng.RNG) Machine { return &tracer{} })
	nw.Run(10) // must not panic with nil recorder
}

func TestContextTraceConcurrentSchedulers(t *testing.T) {
	g := graph.Torus(4, 4)
	for _, s := range []Scheduler{WorkerPool, Actors} {
		rec := trace.NewCounting()
		nw := New(Config{Graph: g, Seed: 1, Scheduler: s, Trace: rec},
			func(node, degree int, r *rng.RNG) Machine { return &tracer{} })
		nw.Run(10)
		nw.Close()
		if rec.Count("init") != int64(g.N()) {
			t.Fatalf("scheduler %v: init events %d", s, rec.Count("init"))
		}
	}
}
