package sim

import "sync"

// Scheduler selects how node steps are executed each round. All schedulers
// produce bit-identical results: randomness is pre-split per node and
// routing is always performed in node order.
type Scheduler int

const (
	// Sequential runs node steps in index order on the calling goroutine.
	Sequential Scheduler = iota
	// WorkerPool fans node steps out over a bounded goroutine pool that
	// is spawned per round.
	WorkerPool
	// Actors runs every node as a persistent goroutine for the lifetime
	// of the network — message-passing all the way down. Call Close when
	// done with a network that has not globally halted (the goroutines
	// park on their command channels otherwise).
	Actors
)

// actorPool manages the persistent per-node goroutines of the Actors
// scheduler.
type actorPool struct {
	cmds   []chan int // round number; closed on shutdown
	wg     sync.WaitGroup
	done   chan int // node indices reporting step completion
	closed bool
}

// startActors spawns one goroutine per node. Each goroutine parks on its
// command channel, executes its node's step for the announced round, and
// reports completion. The coordinator owns all shared state between
// commands, so no locking is needed beyond the channel handoffs.
func (nw *Network) startActors() {
	n := len(nw.machines)
	p := &actorPool{
		cmds: make([]chan int, n),
		done: make(chan int, n),
	}
	for v := 0; v < n; v++ {
		p.cmds[v] = make(chan int, 1)
		p.wg.Add(1)
		go func(v int) {
			defer p.wg.Done()
			for round := range p.cmds[v] {
				nw.stepNode(v, round)
				p.done <- v
			}
		}(v)
	}
	nw.actors = p
}

// deliverActors dispatches one round to the persistent goroutines and
// waits for all of them.
func (nw *Network) deliverActors(round int) {
	if nw.actors == nil {
		nw.startActors()
	}
	n := len(nw.machines)
	for v := 0; v < n; v++ {
		nw.actors.cmds[v] <- round
	}
	for i := 0; i < n; i++ {
		<-nw.actors.done
	}
}

// Close releases the persistent goroutines of the Actors scheduler. It is
// a no-op for other schedulers and safe to call multiple times. Networks
// whose machines all halt are closed automatically by Step.
func (nw *Network) Close() {
	if nw.actors == nil || nw.actors.closed {
		return
	}
	nw.actors.closed = true
	for _, c := range nw.actors.cmds {
		close(c)
	}
	nw.actors.wg.Wait()
	nw.actors = nil
}
