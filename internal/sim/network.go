package sim

import (
	"context"
	"runtime"
	"sync"

	"anonlead/internal/graph"
	"anonlead/internal/rng"
	"anonlead/internal/trace"
)

// Config configures a Network.
type Config struct {
	// Graph is the topology (required, connected graphs expected).
	Graph *graph.Graph
	// Seed is the root seed; per-node streams are split from it, so runs
	// are reproducible and scheduler-independent.
	Seed uint64
	// CongestBits is the per-link per-round bit budget B. Zero selects the
	// default 8·⌈log₂ n⌉, a concrete constant for the paper's O(log n).
	CongestBits int
	// Scheduler selects the execution engine; all engines are
	// bit-identical. The zero value is Sequential.
	Scheduler Scheduler
	// Parallel is a convenience alias for Scheduler: WorkerPool (it wins
	// over a zero Scheduler, loses to an explicit one).
	Parallel bool
	// Workers sets the pool size for WorkerPool (0 = GOMAXPROCS).
	Workers int
	// Trace, when non-nil, receives protocol events emitted through
	// Context.Trace. Must be safe for concurrent Record calls when a
	// concurrent scheduler is selected.
	Trace trace.Recorder
	// Adversary, when non-nil, perturbs delivery (drops, delays, crashes).
	// Nil costs nothing on the hot path. See the Adversary interface and
	// internal/adversary for deterministic, seed-derived implementations.
	Adversary Adversary
	// Observer, when non-nil, is invoked from the single-threaded
	// coordination path after every executed round with a snapshot of the
	// accumulated cost accounting. Nil costs nothing. Observers are
	// read-only taps: nothing they do flows back into the simulation.
	Observer func(RoundInfo)
}

// RoundInfo is the per-round snapshot handed to a configured Observer.
type RoundInfo struct {
	// Round is the index of the round just executed (0-based; the Init
	// pseudo-round is not observed).
	Round int
	// Halted is the number of nodes stopped so far (protocol halts and
	// adversary crash-stops combined).
	Halted int
	// Metrics is the cumulative cost accounting after this round.
	Metrics Metrics
}

// Network is a running simulation: one Machine per node plus double-buffered
// mailboxes and cost accounting. Not safe for concurrent use by multiple
// callers; internally the parallel scheduler partitions work safely.
type Network struct {
	g         *graph.Graph
	machines  []Machine
	ctxs      []Context
	halted    []bool
	inbox     [][]Packet
	next      [][]Packet
	revPort   []int32 // flat: reverse port of (v, port) = revPort[edgeOff[v]+port]
	edgeOff   []int   // directed edge id of (v, port) = edgeOff[v] + port
	rngs      []rng.RNG
	metrics   Metrics
	scheduler Scheduler
	workers   int
	inflight  int
	actors    *actorPool
	observer  func(RoundInfo)
	// Link accounting: per directed edge, a chain of per-channel bit loads
	// accumulated within one round. linkHead[e] indexes the first load of
	// edge e in loads (valid only when linkEpoch[e] == routeEpoch); loads
	// and touched are truncated and refilled each round, so the routing hot
	// path is allocation-free once the buffers have warmed up.
	linkHead   []int32
	linkEpoch  []uint64
	routeEpoch uint64
	loads      []chanLoad
	touched    []int32
	// Fault injection (all nil/empty when adv is nil — the common case).
	adv           Adversary
	crashAt       []int              // per-node crash round (-1 = never)
	crashed       []bool             // nodes crash-stopped so far
	future        [][]futureDelivery // delay ring, indexed by arrival round mod len
	pendingFuture int                // packets parked in the ring
	adaptive      TrafficAdaptive    // non-nil when adv observes traffic
	sent          []int              // per-node send counts of the routed round (adaptive only)
}

// chanLoad is the bit load of one (directed edge, channel) pair within one
// round. Loads of the same edge are chained through next (-1 terminates).
type chanLoad struct {
	channel uint32
	next    int32
	bits    int
}

// defaultCongestBits returns the default per-link budget for an n-node
// network: 8·⌈log₂ n⌉ bits (a concrete instantiation of O(log n)).
func defaultCongestBits(n int) int {
	bits := 0
	for v := n; v > 1; v >>= 1 {
		bits++
	}
	if (1 << bits) < n {
		bits++
	}
	if bits < 1 {
		bits = 1
	}
	return 8 * bits
}

// DefaultCongestBits exposes the default budget to alternative execution
// backends (internal/transport), which must charge link slots with the
// same budget to stay metric-compatible with the simulator.
func DefaultCongestBits(n int) int { return defaultCongestBits(n) }

// New builds a network, constructs one machine per node via factory, and
// runs every machine's Init (whose sends arrive at the start of round 0).
func New(cfg Config, factory Factory) *Network {
	g := cfg.Graph
	if g == nil || g.N() == 0 {
		panic("sim: config requires a non-empty graph")
	}
	n := g.N()
	budget := cfg.CongestBits
	if budget <= 0 {
		budget = defaultCongestBits(n)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	scheduler := cfg.Scheduler
	if scheduler == Sequential && cfg.Parallel {
		scheduler = WorkerPool
	}
	// Struct-of-arrays state: every per-node and per-edge buffer is carved
	// out of one flat allocation, so building a network is O(m) work with
	// O(1) allocations per *network*, not per node. The per-node slice
	// headers keep len 0 / cap deg windows into shared backing arrays;
	// append within capacity writes into the arena, and the rare protocol
	// that overflows its window (multi-packet rounds) falls back to a
	// normal heap-grown slice with identical semantics.
	nw := &Network{
		g:         g,
		machines:  make([]Machine, n),
		ctxs:      make([]Context, n),
		halted:    make([]bool, n),
		inbox:     make([][]Packet, n),
		next:      make([][]Packet, n),
		revPort:   g.ReversePorts(),
		edgeOff:   g.EdgeOffsets(),
		rngs:      make([]rng.RNG, n),
		scheduler: scheduler,
		workers:   workers,
		observer:  cfg.Observer,
	}
	nw.metrics.CongestBits = budget

	root := rng.New(cfg.Seed)
	off := nw.edgeOff[n]
	inboxBuf := make([]Packet, off)
	nextBuf := make([]Packet, off)
	outBuf := make([]send, off)
	for v := 0; v < n; v++ {
		deg := g.Degree(v)
		lo, hi := nw.edgeOff[v], nw.edgeOff[v+1]
		// Mailboxes and send buffers are sized for one packet per incident
		// link, the common protocol shape, so steady-state rounds reuse
		// them without growth.
		nw.inbox[v] = inboxBuf[lo:lo:hi]
		nw.next[v] = nextBuf[lo:lo:hi]
		nw.rngs[v].Reseed(root.DeriveSeed(uint64(v)))
		nw.ctxs[v] = Context{degree: deg, rng: &nw.rngs[v], node: v, rec: cfg.Trace, out: outBuf[lo:lo:hi]}
		nw.machines[v] = factory(v, deg, nw.ctxs[v].rng)
	}
	nw.linkHead = make([]int32, off)
	nw.linkEpoch = make([]uint64, off)

	if cfg.Adversary != nil {
		nw.adv = cfg.Adversary
		nw.crashAt = make([]int, n)
		nw.crashed = make([]bool, n)
		for v := 0; v < n; v++ {
			nw.crashAt[v] = nw.adv.CrashRound(v)
		}
		if ta, ok := nw.adv.(TrafficAdaptive); ok {
			nw.adaptive = ta
			nw.sent = make([]int, n)
		}
		// Ring size: while routing round r the live arrival rounds span
		// [r+1, r+1+MaxDelay] (slot r was drained first) — MaxDelay+2
		// slots never collide.
		nw.future = make([][]futureDelivery, nw.adv.MaxDelay()+2)
	}

	// Init phase (round -1): run Init on every machine, deliver sends to
	// round 0 mailboxes.
	for v := 0; v < n; v++ {
		ctx := &nw.ctxs[v]
		ctx.reset(-1)
		nw.machines[v].Init(ctx)
	}
	nw.route(-1)
	nw.finishRoundAccounting(false)
	return nw
}

// N returns the node count.
func (nw *Network) N() int { return len(nw.machines) }

// Graph returns the underlying topology.
func (nw *Network) Graph() *graph.Graph { return nw.g }

// Machine returns node v's machine so the harness can read protocol
// outputs after a run.
func (nw *Network) Machine(v int) Machine { return nw.machines[v] }

// Halted reports whether node v has halted.
func (nw *Network) Halted(v int) bool { return nw.halted[v] }

// AllHalted reports whether every node has halted.
func (nw *Network) AllHalted() bool {
	for _, h := range nw.halted {
		if !h {
			return false
		}
	}
	return true
}

// Metrics returns a snapshot of the accumulated cost accounting.
func (nw *Network) Metrics() Metrics { return nw.metrics }

// Step executes one synchronous round and returns false once every node
// has halted and no packets remain in flight (releasing any persistent
// actor goroutines).
func (nw *Network) Step() bool {
	if nw.AllHalted() && nw.inflight == 0 {
		// Parked delayed packets can only target halted receivers now, so
		// they are undeliverable — discard instead of spinning drain rounds.
		nw.dropAllFutures()
		nw.Close()
		return false
	}
	round := nw.metrics.Rounds
	nw.applyCrashes(round)
	nw.releaseFutures(round)
	nw.deliver(round)
	nw.route(round)
	nw.metrics.Rounds++
	nw.finishRoundAccounting(true)
	if nw.observer != nil {
		nw.observer(RoundInfo{Round: round, Halted: nw.haltedCount(), Metrics: nw.metrics})
	}
	return true
}

// haltedCount returns the number of stopped nodes (halts and crashes).
func (nw *Network) haltedCount() int {
	count := 0
	for _, h := range nw.halted {
		if h {
			count++
		}
	}
	return count
}

// Run executes up to rounds rounds, stopping early on global halt. It
// returns the number of rounds executed.
func (nw *Network) Run(rounds int) int {
	executed := 0
	for executed < rounds && nw.Step() {
		executed++
	}
	return executed
}

// RunContext is Run with cooperative cancellation: the context is checked
// between rounds, and a cancellation stops the simulation cleanly (the
// accumulated metrics remain valid). It returns the number of rounds
// executed and the context's error if it caused the stop.
func (nw *Network) RunContext(ctx context.Context, rounds int) (int, error) {
	executed := 0
	for executed < rounds {
		if err := ctx.Err(); err != nil {
			return executed, err
		}
		if !nw.Step() {
			break
		}
		executed++
	}
	return executed, nil
}

// RunUntil executes rounds until done(round) reports true or maxRounds is
// reached, returning the number of rounds executed. done is evaluated after
// each round with the number of rounds completed so far.
func (nw *Network) RunUntil(maxRounds int, done func(completed int) bool) int {
	executed := 0
	for executed < maxRounds && nw.Step() {
		executed++
		if done(executed) {
			break
		}
	}
	return executed
}

// RunUntilContext is RunUntil with cooperative cancellation between rounds
// (see RunContext).
func (nw *Network) RunUntilContext(ctx context.Context, maxRounds int, done func(completed int) bool) (int, error) {
	executed := 0
	for executed < maxRounds {
		if err := ctx.Err(); err != nil {
			return executed, err
		}
		if !nw.Step() {
			break
		}
		executed++
		if done(executed) {
			break
		}
	}
	return executed, nil
}

// stepNode runs one node's step for the round. It touches only node v's
// state, so any scheduler may invoke it concurrently for distinct nodes.
func (nw *Network) stepNode(v, round int) {
	ctx := &nw.ctxs[v]
	ctx.reset(round)
	if nw.halted[v] {
		return
	}
	box := nw.inbox[v]
	sortInbox(box)
	nw.machines[v].Step(ctx, box)
}

// deliver invokes Step on every live machine with this round's inbox,
// using the configured scheduler.
func (nw *Network) deliver(round int) {
	n := len(nw.machines)
	switch {
	case nw.scheduler == Actors:
		nw.deliverActors(round)
	case nw.scheduler == WorkerPool && n >= 2*nw.workers:
		var wg sync.WaitGroup
		chunk := (n + nw.workers - 1) / nw.workers
		for start := 0; start < n; start += chunk {
			end := start + chunk
			if end > n {
				end = n
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for v := lo; v < hi; v++ {
					nw.stepNode(v, round)
				}
			}(start, end)
		}
		wg.Wait()
	default:
		for v := 0; v < n; v++ {
			nw.stepNode(v, round)
		}
	}
	// Clear delivered mailboxes for reuse as the next "next" buffers.
	for v := range nw.inbox {
		nw.inbox[v] = nw.inbox[v][:0]
	}
}

// route moves every context's sends into the receivers' next-round
// mailboxes, in sender order (single-threaded: determinism for every
// scheduler), applies halts, meters traffic, and — when an adversary is
// configured — lets it drop or delay each packet. round is the round whose
// sends are being routed (-1 for Init).
func (nw *Network) route(round int) {
	nw.inflight = 0
	nw.routeEpoch++
	nw.loads = nw.loads[:0]
	nw.touched = nw.touched[:0]
	for v := range nw.machines {
		ctx := &nw.ctxs[v]
		if ctx.halted {
			nw.halted[v] = true
		}
		if nw.adaptive != nil {
			nw.sent[v] = len(ctx.out)
		}
		for _, s := range ctx.out {
			w := nw.g.Neighbor(v, s.port)
			e := nw.edgeOff[v] + s.port
			q := nw.revPort[e]
			bits := s.payload.Bits()
			nw.metrics.Messages++
			nw.metrics.Bits += int64(bits)
			// Link slots are charged before the adversary acts: a dropped
			// or delayed packet was still transmitted by its sender.
			nw.addLinkBits(int32(e), s.channel, bits)
			delay := 0
			if nw.adv != nil {
				drop, d := nw.adv.Fate(round, v, s.port, w)
				if drop {
					nw.metrics.Dropped++
					continue
				}
				delay = d
			}
			if nw.halted[w] {
				continue // receiver stopped: packet dropped
			}
			if delay > 0 {
				nw.metrics.Delayed++
				slot := (round + 1 + delay) % len(nw.future)
				nw.future[slot] = append(nw.future[slot],
					futureDelivery{node: w, pkt: Packet{Port: int(q), Channel: s.channel, Payload: s.payload}})
				nw.pendingFuture++
				continue
			}
			nw.next[w] = append(nw.next[w], Packet{Port: int(q), Channel: s.channel, Payload: s.payload})
			nw.inflight++
		}
		ctx.out = ctx.out[:0]
	}
	nw.inbox, nw.next = nw.next, nw.inbox
	if nw.adaptive != nil {
		nw.observeTraffic(round)
	}
}

// addLinkBits accumulates bits on (directed edge e, channel) for this
// round's slot accounting. The first load of an edge claims a fresh chain
// head (epoch-gated, so no per-round clearing of the per-edge arrays);
// further channels extend the chain. Channel counts per link per round are
// small, so the chain walk beats hashing — and unlike the old map it never
// allocates once loads/touched have warmed up.
func (nw *Network) addLinkBits(e int32, channel uint32, bits int) {
	if nw.linkEpoch[e] != nw.routeEpoch {
		nw.linkEpoch[e] = nw.routeEpoch
		nw.linkHead[e] = int32(len(nw.loads))
		nw.loads = append(nw.loads, chanLoad{channel: channel, bits: bits, next: -1})
		nw.touched = append(nw.touched, e)
		return
	}
	idx := nw.linkHead[e]
	for {
		if nw.loads[idx].channel == channel {
			nw.loads[idx].bits += bits
			return
		}
		next := nw.loads[idx].next
		if next < 0 {
			tail := int32(len(nw.loads))
			nw.loads = append(nw.loads, chanLoad{channel: channel, bits: bits, next: -1})
			nw.loads[idx].next = tail
			return
		}
		idx = next
	}
}

// finishRoundAccounting converts the per-link bit loads of the round just
// routed into CONGEST charged rounds. counted=false is used for the Init
// pseudo-round, which charges slots but not a base round.
func (nw *Network) finishRoundAccounting(counted bool) {
	budget := nw.metrics.CongestBits
	maxSlots, maxChannels := 0, 0
	for _, e := range nw.touched {
		// slots = sum over the edge's channels of ceil(bits/budget);
		// distinct channels never share a slot.
		slots, channels := 0, 0
		for idx := nw.linkHead[e]; idx >= 0; idx = nw.loads[idx].next {
			s := (nw.loads[idx].bits + budget - 1) / budget
			if s < 1 {
				s = 1
			}
			slots += s
			channels++
		}
		if slots > maxSlots {
			maxSlots = slots
		}
		if channels > maxChannels {
			maxChannels = channels
		}
	}
	if maxSlots > nw.metrics.MaxLinkSlots {
		nw.metrics.MaxLinkSlots = maxSlots
	}
	if maxChannels > nw.metrics.MaxChannels {
		nw.metrics.MaxChannels = maxChannels
	}
	charge := int64(maxSlots)
	if counted && charge < 1 {
		charge = 1
	}
	nw.metrics.ChargedRounds += charge
}

// sortInbox orders packets by (port, channel) with stable order for ties
// (a single neighbor's multi-packet sends keep their send order). Insertion
// sort: mailboxes are filled in ascending sender order, so arrivals are
// already nearly sorted by port and the sort runs in ~linear time without
// the allocations of sort.SliceStable.
func sortInbox(box []Packet) {
	for i := 1; i < len(box); i++ {
		p := box[i]
		j := i - 1
		for j >= 0 && (box[j].Port > p.Port || (box[j].Port == p.Port && box[j].Channel > p.Channel)) {
			box[j+1] = box[j]
			j--
		}
		box[j+1] = p
	}
}
