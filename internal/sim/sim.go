// Package sim is a synchronous message-passing simulator for anonymous
// networks under the CONGEST model, the execution substrate for every
// protocol in this repository.
//
// The model follows Section 2 of the paper exactly:
//
//   - Time is slotted into globally synchronous rounds. Messages sent in
//     round t are delivered at the start of round t+1.
//   - Nodes are anonymous: a protocol machine observes only its degree, its
//     private random stream, the current round number, and the ports
//     (0..deg-1) on which packets arrive. The API offers no node identity.
//   - Each link carries O(log n) bits per round. The simulator meters every
//     payload and charges "CONGEST rounds": traffic on one link within one
//     logical round is serialized into budget-sized slots, with distinct
//     logical channels (parallel protocol executions, cf. the paper's
//     super-round multiplexing) never sharing a slot.
//
// Two schedulers execute the same deterministic semantics: a sequential
// loop, and a goroutine worker pool that fans node steps out across CPUs
// and re-merges sends in node order (so results are bit-identical).
package sim

import (
	"fmt"

	"anonlead/internal/rng"
	"anonlead/internal/trace"
)

// Payload is a protocol-defined message body. Bits reports the exact
// CONGEST size of the encoded payload; the simulator uses it for bit
// accounting and slot serialization. Implementations must be immutable
// after send (payloads are delivered by reference).
type Payload interface {
	Bits() int
}

// Packet is a delivered message.
type Packet struct {
	// Port is the receiving node's port on which the packet arrived.
	Port int
	// Channel tags the logical protocol execution (paper super-round slot)
	// the packet belongs to. Traffic on distinct channels never shares a
	// CONGEST slot.
	Channel uint32
	// Payload is the message body.
	Payload Payload
}

// Machine is a per-node protocol state machine. Implementations must not
// retain or share state across machines other than through messages: the
// simulator relies on Step(v) touching only machine v's state so the
// parallel scheduler is race-free.
type Machine interface {
	// Init runs once before round 0. Machines may send from Init; those
	// packets arrive at the start of round 0.
	Init(ctx *Context)
	// Step runs once per round with the packets delivered this round
	// (sent by neighbors in the previous round), in ascending port order.
	Step(ctx *Context, inbox []Packet)
}

// Factory builds the machine for a node. The node index is provided so the
// harness can correlate per-node outputs; protocol logic must not use it
// (anonymity). The RNG is the node's private stream.
type Factory func(node, degree int, r *rng.RNG) Machine

// Context is a machine's window onto the network for one call. It exposes
// exactly the information the paper's model grants an anonymous node.
// Contexts are only valid for the duration of the Init/Step call.
type Context struct {
	degree int
	round  int
	rng    *rng.RNG
	out    []send
	halted bool
	node   int            // for trace attribution only; never exposed
	rec    trace.Recorder // nil when tracing is disabled
}

type send struct {
	port    int
	channel uint32
	payload Payload
}

// Degree returns the number of ports (incident links) of this node.
func (c *Context) Degree() int { return c.degree }

// Round returns the current round number (Init is round -1).
func (c *Context) Round() int { return c.round }

// RNG returns the node's private random stream.
func (c *Context) RNG() *rng.RNG { return c.rng }

// Send enqueues payload on the given port and logical channel; it is
// delivered to the neighbor at the start of the next round. Send panics on
// an out-of-range port (protocol bug) or nil payload.
func (c *Context) Send(port int, channel uint32, payload Payload) {
	if port < 0 || port >= c.degree {
		panic(fmt.Sprintf("sim: send on invalid port %d (degree %d)", port, c.degree))
	}
	if payload == nil {
		panic("sim: send with nil payload")
	}
	c.out = append(c.out, send{port: port, channel: channel, payload: payload})
}

// Broadcast sends payload on every port (channel 0 unless specified via
// BroadcastChannel).
func (c *Context) Broadcast(payload Payload) {
	for p := 0; p < c.degree; p++ {
		c.Send(p, 0, payload)
	}
}

// BroadcastChannel sends payload on every port, tagged with channel.
func (c *Context) BroadcastChannel(channel uint32, payload Payload) {
	for p := 0; p < c.degree; p++ {
		c.Send(p, channel, payload)
	}
}

// Halt marks this node as stopped: Step will no longer be called and the
// node sends nothing further. Halting is how protocols realize the
// "all nodes stop" clause of Irrevocable Leader Election (Definition 1).
func (c *Context) Halt() { c.halted = true }

// Trace records a protocol event when the network was configured with a
// trace recorder; otherwise it is a no-op. Tracing is write-only
// observability: nothing about the network flows back to the machine.
func (c *Context) Trace(kind, detail string) {
	if c.rec == nil {
		return
	}
	c.rec.Record(trace.Event{Round: c.round, Node: c.node, Kind: kind, Detail: detail})
}

// reset prepares the context for the next call.
func (c *Context) reset(round int) {
	c.round = round
	c.out = c.out[:0]
}
